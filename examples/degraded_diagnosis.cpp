// Degraded-telemetry diagnosis campaign: the MTTLF experiment re-run
// while the monitoring plane itself fails. Every degradation profile
// (clean -> mild -> severe -> adversarial) replays the same seeded fault
// schedules through a lossy-collector model — sample loss, collector
// outages, clock skew, duplicated/reordered batches, truncated sFlow
// paths, SNMP counter wraps — and the hierarchical analyzer diagnoses
// from whatever survives. The output is the accuracy / MTTLF-inflation
// curve plus the calibration check the confidence score exists for:
// a wrong answer above 0.9 confidence is a hard failure, and every miss
// must flag itself (needs_manual or confidence < 0.5).
//
// Emits degraded_diagnosis.json (deterministic for a fixed seed) and
// degraded_diagnosis.trace.json (first run of each profile, with the
// degradation events on their own Perfetto track). Exits nonzero when
// the mild accuracy floor or the calibration invariant is violated.
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "core/table.h"
#include "monitor/degrade.h"
#include "obs/trace.h"

using namespace astral;

namespace {

bool write_file(const char* path, const std::string& text) {
  std::ofstream out(path);
  if (!out) {
    std::printf("cannot write %s\n", path);
    return false;
  }
  out << text << '\n';
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  monitor::DegradedCampaignConfig cfg;
  if (argc > 1) cfg.runs = std::max(1, std::atoi(argv[1]));

  core::print_banner("Degraded-telemetry diagnosis - lossy monitoring plane");
  std::printf("%d runs per profile, identical fault schedules, profiles:", cfg.runs);
  for (const auto& p : cfg.profiles) std::printf(" %s", p.c_str());
  std::printf("\n\n");

  obs::Tracer tracer;
  auto result = monitor::run_degraded_campaign(cfg, &tracer);

  core::Table table({"profile", "accuracy", "mean MTTLF", "inflation",
                     "mean conf", "silently wrong", "miss flagged", "records lost"});
  for (const auto& p : result.profiles) {
    std::uint64_t lost = p.stats.dropped + p.stats.outage_dropped;
    std::uint64_t total = lost + p.stats.delivered;
    table.add_row({p.profile,
                   core::Table::pct(p.accuracy(), 1),
                   core::Table::num(p.mean_locate_time() / 60.0, 1) + " min",
                   core::Table::num(result.mttlf_inflation(p), 2) + "x",
                   core::Table::num(p.mean_confidence(), 2),
                   std::to_string(p.silently_wrong_count()),
                   core::Table::pct(p.flagged_miss_rate(), 1),
                   total > 0 ? core::Table::pct(static_cast<double>(lost) /
                                                    static_cast<double>(total),
                                                1)
                             : "0%"});
  }
  table.print();

  auto json = result.to_json();
  if (!write_file("degraded_diagnosis.json", json.dump(2))) return 1;
  auto trace = tracer.to_chrome_trace();
  if (!write_file("degraded_diagnosis.trace.json", trace.dump(2))) return 1;
  std::printf("\nCurve:  degraded_diagnosis.json\n");
  std::printf("Trace:  degraded_diagnosis.trace.json (%zu events; "
              "telemetry track carries outages/resets)\n",
              trace["traceEvents"].size());

  // ---- Acceptance gates.
  int failures = 0;
  for (const auto& p : result.profiles) {
    // Calibration invariant, every severity: no confidently wrong cause.
    if (p.silently_wrong_count() > 0) {
      std::printf("FAIL: %s produced %d silently-wrong confident diagnoses\n",
                  p.profile.c_str(), p.silently_wrong_count());
      ++failures;
    }
    if (p.profile == "mild") {
      if (p.accuracy() < 0.8) {
        std::printf("FAIL: mild accuracy %.1f%% below the 80%% floor\n",
                    p.accuracy() * 100.0);
        ++failures;
      }
      if (p.flagged_miss_rate() < 1.0) {
        std::printf("FAIL: mild left %.0f%% of misses unflagged\n",
                    (1.0 - p.flagged_miss_rate()) * 100.0);
        ++failures;
      }
    }
  }
  if (failures == 0) {
    std::printf("\nAll gates passed: accuracy floor held, no silently-wrong "
                "confident diagnosis at any severity.\n");
  }
  return failures == 0 ? 0 : 1;
}
