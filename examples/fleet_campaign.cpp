// Fleet campaign: a multi-tenant scheduling sweep over arrival rate x
// placement policy on one shared fabric, with fleet-level faults playing
// while mixed-size tenants arrive, queue, preempt each other, and
// elastically shrink/regrow around dead hardware. Emits
//   fleet_campaign.json        per-cell fleet ledgers (goodput, queueing
//                              percentiles, preemption cost, blast radius)
//   fleet_campaign.trace.json  a Perfetto trace of the showcase cell
//                              (open at https://ui.perfetto.dev)
// and prints the sweep table. The binary self-gates (nonzero exit) on:
// single-job fleet/ClusterRuntime ledger equivalence, determinism of a
// re-run cell, at least one elastic shrink and one preemption across the
// sweep, and a fleet-goodput floor.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "core/table.h"
#include "monitor/cluster_runtime.h"
#include "monitor/fleet_runtime.h"
#include "obs/metrics.h"
#include "obs/trace.h"

using namespace astral;

namespace {

bool write_file(const char* path, const std::string& text) {
  std::ofstream out(path);
  if (!out) {
    std::printf("cannot write %s\n", path);
    return false;
  }
  out << text << '\n';
  return out.good();
}

topo::FabricParams fabric_params() {
  topo::FabricParams p;
  p.rails = 2;
  p.hosts_per_block = 4;
  p.blocks_per_pod = 2;
  p.pods = 2;  // 16 hosts: tight enough that tenants contend
  return p;
}

monitor::RecoveryConfig campaign_recovery() {
  monitor::RecoveryConfig rc;
  rc.enabled = true;
  rc.checkpoint_interval = 2;
  rc.max_restarts = 0;  // a dead host is terminal -> elastic shrink path
  rc.detect_time = 0.05;
  rc.restart_time = 0.2;
  rc.backoff_base = 0.05;
  return rc;
}

struct Cell {
  double arrival_rate = 0.0;
  parallel::HostPolicy policy = parallel::HostPolicy::RailAligned;
  monitor::FleetOutcome outcome;
  int shrinks = 0;
  int regrows = 0;
  int preemptions = 0;
};

monitor::FleetOutcome run_cell(double arrival_rate, parallel::HostPolicy policy,
                               int jobs, std::uint64_t seed,
                               obs::Tracer* tracer = nullptr) {
  topo::Fabric fabric(fabric_params());
  monitor::FleetConfig fc;
  fc.placement = policy;
  fc.elastic.cordon_heal_time = 0.15;
  fc.seed = seed;
  monitor::FleetRuntime fleet(fabric, fc);
  if (tracer) fleet.set_tracer(tracer);

  monitor::ArrivalProcessConfig ap;
  ap.jobs = jobs;
  ap.arrival_rate = arrival_rate;
  ap.sizes = {4, 8, 12};
  ap.size_weights = {0.5, 0.3, 0.2};
  ap.priorities = {0, 0, 0, 1};
  ap.iterations = 10;
  ap.comm_bytes = 8ull * 1024 * 1024;
  ap.recovery = campaign_recovery();
  ap.seed = seed;
  for (const monitor::FleetJobSpec& spec : monitor::generate_arrivals(ap)) {
    fleet.submit(spec);
  }

  // A deterministic VIP on top of the stochastic stream: a near-full-rack
  // high-priority tenant arriving while the low-priority stream holds the
  // fabric, so the preemption path is exercised at every seed.
  monitor::FleetJobSpec vip;
  vip.job.hosts = 12;
  vip.job.iterations = 10;
  vip.job.comm_bytes = 8ull * 1024 * 1024;
  vip.job.recovery = campaign_recovery();
  vip.arrival = 0.5;
  vip.priority = 2;
  vip.seed = seed * 1000003ull + 777;
  fleet.submit(vip);

  // Fleet-level faults: a GPU dies under the running VIP (max_restarts = 0
  // makes that terminal -> shrink, then regrow once the cordon heals), and
  // a rail-0 ToR dies mid-campaign and later heals.
  monitor::FleetFault host_death;
  host_death.at_time = 0.7;
  host_death.cause = monitor::RootCause::GpuHardware;
  host_death.manifestation = monitor::Manifestation::FailStop;
  host_death.target_host = 1;
  fleet.inject(host_death);

  monitor::FleetFault tor_death;
  tor_death.at_time = 1.0;
  tor_death.cause = monitor::RootCause::SwitchBug;
  tor_death.manifestation = monitor::Manifestation::FailStop;
  tor_death.target_link = fabric.topo().out_links(fabric.topo().hosts()[0])[0];
  tor_death.switch_scope = true;
  tor_death.heal_after = 1.5;
  fleet.inject(tor_death);

  return fleet.run();
}

/// Gate: a one-tenant fleet must reproduce the single-job ClusterRuntime
/// ledger exactly (same doubles, same mitigation records).
bool single_job_equivalent() {
  monitor::JobConfig job;
  job.hosts = 12;
  job.iterations = 8;
  job.comm_bytes = 8ull * 1024 * 1024;
  job.recovery.enabled = true;

  // Schedule built on a scratch runtime so neither measured side consumes
  // the engine rng for target selection.
  std::vector<monitor::FaultSpec> schedule;
  {
    topo::Fabric scratch(fabric_params());
    monitor::ClusterRuntime rt(scratch, job, /*seed=*/77);
    schedule.push_back(rt.make_fault(monitor::RootCause::GpuHardware,
                                     monitor::Manifestation::FailStop, 2));
    schedule.push_back(rt.make_mid_transfer_tor_death(5, 0.5));
  }

  topo::Fabric ref_fabric(fabric_params());
  monitor::ClusterRuntime ref(ref_fabric, job, /*seed=*/77);
  for (const auto& f : schedule) ref.inject(f);
  monitor::RunOutcome want = ref.run();

  topo::Fabric fleet_fabric(fabric_params());
  monitor::FleetConfig fc;
  fc.placement = parallel::HostPolicy::InOrder;
  monitor::FleetRuntime fleet(fleet_fabric, fc);
  monitor::FleetJobSpec spec;
  spec.job = job;
  spec.seed = 77;
  fleet.submit(spec, schedule);
  monitor::FleetOutcome out = fleet.run();
  if (out.jobs.size() != 1 || out.jobs[0].segments.size() != 1) return false;
  const monitor::RunOutcome& got = out.jobs[0].merged;

  bool same = want.completed == got.completed &&
              want.committed_iterations == got.committed_iterations &&
              want.restarts == got.restarts && want.retries == got.retries &&
              want.reroutes == got.reroutes &&
              want.useful_time == got.useful_time &&
              want.wasted_time == got.wasted_time &&
              want.downtime == got.downtime &&
              want.makespan == got.makespan && want.goodput == got.goodput &&
              want.mitigations.size() == got.mitigations.size();
  if (!same) return false;
  for (std::size_t i = 0; i < want.mitigations.size(); ++i) {
    const auto& a = want.mitigations[i];
    const auto& b = got.mitigations[i];
    if (a.action != b.action || a.detect_time != b.detect_time ||
        a.locate_time != b.locate_time || a.recover_time != b.recover_time) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  int jobs = 10;
  std::uint64_t seed = 1;
  if (argc > 1) jobs = std::max(2, std::atoi(argv[1]));
  if (argc > 2) seed = static_cast<std::uint64_t>(std::atoll(argv[2]));

  core::print_banner("Fleet campaign - multi-tenant scheduling sweep");
  std::printf("16-host fabric, %d jobs/cell (sizes 4/8/12, 25%% high-priority), "
              "GPU death @0.7s + ToR death @1.0s (heals @2.5s)\n\n",
              jobs);

  const double rates[] = {1.0, 6.0};
  const parallel::HostPolicy policies[] = {parallel::HostPolicy::RailAligned,
                                           parallel::HostPolicy::Scattered,
                                           parallel::HostPolicy::LocalityFirst};

  std::vector<Cell> cells;
  obs::Tracer tracer;  // attached to the showcase cell only
  for (double rate : rates) {
    for (parallel::HostPolicy policy : policies) {
      bool showcase = rate == rates[1] && policy == policies[0];
      Cell cell;
      cell.arrival_rate = rate;
      cell.policy = policy;
      cell.outcome =
          run_cell(rate, policy, jobs, seed, showcase ? &tracer : nullptr);
      for (const auto& jl : cell.outcome.jobs) {
        cell.shrinks += jl.shrinks;
        cell.regrows += jl.regrows;
        cell.preemptions += jl.preemptions;
      }
      cells.push_back(std::move(cell));
    }
  }

  core::Table table({"rate", "policy", "goodput", "q-p50", "q-p99",
                     "jobs/h", "preempt", "shrink", "regrow", "done"});
  for (const Cell& cell : cells) {
    const auto& o = cell.outcome;
    table.add_row({core::Table::num(cell.arrival_rate, 1) + "/s",
                   parallel::to_string(cell.policy),
                   core::Table::num(o.fleet_goodput * 100.0, 1) + " %",
                   core::Table::num(o.queue_delay_p50, 2) + " s",
                   core::Table::num(o.queue_delay_p99, 2) + " s",
                   core::Table::num(o.jobs_per_hour, 0),
                   std::to_string(cell.preemptions),
                   std::to_string(cell.shrinks),
                   std::to_string(cell.regrows),
                   core::Table::num(o.completion_rate * 100.0, 0) + " %"});
  }
  table.print();

  // Blast radius of the showcase cell's two hardware events.
  const monitor::FleetOutcome& showcase = cells[3].outcome;
  std::printf("\nBlast radius (rate %.1f/s, rail-aligned):\n", rates[1]);
  for (const auto& fl : showcase.faults) {
    std::printf("  %-14s %-9s at %.2fs: %zu job(s) touched, %.4f host-hours lost\n",
                monitor::to_string(fl.fault.cause),
                monitor::to_string(fl.fault.manifestation), fl.fault.at_time,
                fl.jobs_touched.size(), fl.host_hours_lost);
  }

  // ---- Artifacts.
  core::Json doc = core::Json::object();
  doc["jobs_per_cell"] = static_cast<double>(jobs);
  doc["seed"] = static_cast<double>(seed);
  core::Json jcells = core::Json::array();
  for (const Cell& cell : cells) {
    core::Json c = core::Json::object();
    c["arrival_rate"] = cell.arrival_rate;
    c["policy"] = std::string(parallel::to_string(cell.policy));
    c["preemptions"] = static_cast<double>(cell.preemptions);
    c["shrinks"] = static_cast<double>(cell.shrinks);
    c["regrows"] = static_cast<double>(cell.regrows);
    c["fleet"] = cell.outcome.to_json();
    jcells.push_back(std::move(c));
  }
  doc["cells"] = std::move(jcells);
  if (!write_file("fleet_campaign.json", doc.dump(2))) return 1;

  obs::ChromeTraceBuilder builder;
  tracer.append_chrome_trace(builder, /*pid=*/1);
  if (!write_file("fleet_campaign.trace.json", builder.build().dump(2))) return 1;
  std::printf("\nWrote fleet_campaign.json and fleet_campaign.trace.json\n");

  // ---- Acceptance gates.
  int failures = 0;
  auto gate = [&](bool ok, const char* what) {
    std::printf("gate %-34s %s\n", what, ok ? "PASS" : "FAIL");
    if (!ok) ++failures;
  };

  std::printf("\n");
  gate(single_job_equivalent(), "single-job ledger equivalence");

  std::string once = cells[3].outcome.to_json().dump(0);
  std::string again =
      run_cell(rates[1], policies[0], jobs, seed).to_json().dump(0);
  gate(once == again, "deterministic re-run");

  int shrinks = 0, regrows = 0, preemptions = 0;
  double min_goodput = 1.0, min_completion = 1.0;
  for (const Cell& cell : cells) {
    shrinks += cell.shrinks;
    regrows += cell.regrows;
    preemptions += cell.preemptions;
    min_goodput = std::min(min_goodput, cell.outcome.fleet_goodput);
    min_completion = std::min(min_completion, cell.outcome.completion_rate);
  }
  gate(shrinks >= 1, "elastic shrink exercised");
  gate(regrows >= 1, "elastic regrow exercised");
  gate(preemptions >= 1, "preemption exercised");
  gate(min_goodput >= 0.30, "fleet goodput floor (30%)");
  gate(min_completion >= 0.80, "completion floor (80%)");

  if (failures > 0) {
    std::printf("\n%d gate(s) FAILED\n", failures);
    return 1;
  }
  std::printf("\nAll gates passed\n");
  return 0;
}
