// Flight-recorder campaign: a fault-scheduled training job on a 1K-host
// fabric with the cross-layer Tracer + Metrics attached. The run emits
//   campaign.trace.json    one Chrome/Perfetto trace where tracks =
//                          layers (workload / collective / flow / link /
//                          fault-mitigation) plus a Seer forecast of the
//                          same job as a second process, and
//   campaign.metrics.json  the deterministic metrics snapshot (counters,
//                          gauges, histogram percentiles).
// Open the trace at https://ui.perfetto.dev (see EXPERIMENTS.md). Events
// across tracks share the paper's correlation keys: the flow spans carry
// the job id stamped by the runtime, the fault instants carry the fault
// index, and the MTTR phases appear as back-to-back spans.
#include <cstdio>
#include <fstream>
#include <memory>

#include "core/table.h"
#include "monitor/cluster_runtime.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "seer/engine.h"
#include "seer/templates.h"

using namespace astral;

namespace {

bool write_file(const char* path, const std::string& text) {
  std::ofstream out(path);
  if (!out) {
    std::printf("cannot write %s\n", path);
    return false;
  }
  out << text << '\n';
  return out.good();
}

}  // namespace

int main() {
  core::print_banner("Flight-recorder campaign - cross-layer run tracing");

  // 1K-host fabric: 16 hosts/block x 8 blocks/pod x 8 pods = 1024 hosts.
  topo::FabricParams params;
  params.rails = 2;
  params.hosts_per_block = 16;
  params.blocks_per_pod = 8;
  params.pods = 8;
  topo::Fabric fabric(params);
  std::printf("Fabric: %d hosts, %d rails\n",
              params.hosts_per_block * params.blocks_per_pod * params.pods,
              params.rails);

  monitor::JobConfig job;
  job.job_id = 42;
  job.hosts = 32;
  job.iterations = 6;
  job.comm_bytes = 8ull * 1024 * 1024;
  job.recovery.enabled = true;
  monitor::ClusterRuntime rt(fabric, job, /*seed=*/7);

  // Fault schedule: one taxonomy fault plus the mid-transfer ToR death
  // (the dual-ToR failover showcase), so the Fault track carries the full
  // inject -> detect -> locate -> mitigate chain.
  rt.inject(rt.make_fault(monitor::RootCause::OpticalFiber,
                          monitor::Manifestation::FailStop, /*at_iteration=*/2));
  rt.inject(rt.make_mid_transfer_tor_death(/*at_iteration=*/4));

  obs::Tracer tracer;
  obs::Metrics metrics;
  rt.set_tracer(&tracer);
  rt.set_metrics(&metrics);

  auto outcome = rt.run();
  std::printf("Run %s: %d committed iterations, %zu mitigations, "
              "%d reroutes, goodput %.1f%%\n",
              outcome.completed ? "completed" : "aborted",
              outcome.committed_iterations, outcome.mitigations.size(),
              outcome.reroutes, outcome.goodput * 100.0);

  // Forecast of one iteration's microbatch with the Seer, appended to the
  // same trace as a second process so forecast and measured run sit side
  // by side in one Perfetto view.
  auto graph = seer::build_graph(seer::ModelSpec::llama3_70b(),
                                 {.tp = 8, .dp = 2, .pp = 2, .ep = 1},
                                 seer::WorkloadShape{});
  auto forecast =
      seer::SeerEngine(seer::CostModel(seer::GpuSpec::h100(), seer::CommEnv{},
                                       std::make_shared<seer::TestbedEfficiency>()))
          .run(graph);

  obs::ChromeTraceBuilder builder;
  tracer.append_chrome_trace(builder, /*pid=*/1);
  forecast.append_chrome_trace(builder, /*pid=*/2, "seer forecast");
  auto trace = builder.build();
  if (!write_file("campaign.trace.json", trace.dump(2))) return 1;

  auto snapshot = metrics.to_json();
  if (!write_file("campaign.metrics.json", snapshot.dump(2))) return 1;

  std::printf("\nTrace:   campaign.trace.json (%zu events; open in ui.perfetto.dev)\n",
              trace["traceEvents"].size());
  std::printf("Metrics: campaign.metrics.json\n\n");

  core::Table tracks({"track", "retained", "recorded", "dropped"});
  for (int t = 0; t < obs::kTrackCount; ++t) {
    auto track = static_cast<obs::Track>(t);
    tracks.add_row({obs::to_string(track),
                    std::to_string(tracer.events(track).size()),
                    std::to_string(tracer.recorded(track)),
                    std::to_string(tracer.dropped(track))});
  }
  tracks.print();
  std::printf("\n%s", metrics.to_table().c_str());
  return 0;
}
