// Model-tuning with Seer (§4.1/§4.4): enumerate parallelism plans for a
// GPU budget, reject what doesn't fit in HBM, forecast the rest in
// milliseconds, and print the ranked recommendations.
//
//   $ ./tune_parallelism              # LLaMA-3-70B on 256 GPUs
//   $ ./tune_parallelism 405b 1024    # LLaMA-3-405B on 1024 GPUs
#include <cstdio>
#include <cstring>

#include "core/table.h"
#include "workload/tuner.h"

using namespace astral;

int main(int argc, char** argv) {
  workload::TuningRequest req;
  req.model = seer::ModelSpec::llama3_70b();
  req.gpus = 256;
  req.global_batch = 512;
  req.seq_len = 4096;
  if (argc > 1) {
    if (std::strcmp(argv[1], "405b") == 0) req.model = seer::ModelSpec::llama3_405b();
    if (std::strcmp(argv[1], "moe") == 0) req.model = seer::ModelSpec::hunyuan_moe();
    if (std::strcmp(argv[1], "gpt3") == 0) req.model = seer::ModelSpec::gpt3_175b();
  }
  if (argc > 2) req.gpus = std::atoi(argv[2]);

  std::printf("Tuning %s on %d x %s (%.0f GB HBM), global batch %d, seq %d\n",
              req.model.name.c_str(), req.gpus, req.gpu.name.c_str(),
              static_cast<double>(req.gpu.hbm_size) / 1e9, req.global_batch,
              req.seq_len);

  auto result = workload::tune_parallelism(req);
  std::printf("Evaluated %d plans; %d rejected for memory.\n\n", result.evaluated,
              result.rejected_memory);

  core::print_banner("Top plans (Seer-forecast throughput)");
  core::Table table({"tp", "pp", "dp", "micro", "DP strategy", "mem/GPU", "tokens/s",
                     "MFU", "iteration"});
  int shown = 0;
  for (const auto& c : result.ranked) {
    if (!c.fits || shown >= 8) break;
    table.add_row({std::to_string(c.parallel.tp), std::to_string(c.parallel.pp),
                   std::to_string(c.parallel.dp), std::to_string(c.micro_batch),
                   c.dp_strategy == seer::DpStrategy::Zero3 ? "ZeRO-3" : "AllReduce",
                   core::Table::num(c.memory_bytes / 1e9, 1) + " GB",
                   core::Table::num(c.forecast.tokens_per_sec, 0),
                   core::Table::pct(c.forecast.mfu, 1),
                   core::Table::num(c.forecast.iteration_time, 3) + " s"});
    ++shown;
  }
  table.print();

  if (auto best = result.best()) {
    std::printf("\nRecommendation: tp=%d pp=%d dp=%d micro=%d (%s), %.0f tokens/s.\n",
                best->parallel.tp, best->parallel.pp, best->parallel.dp,
                best->micro_batch,
                best->dp_strategy == seer::DpStrategy::Zero3 ? "ZeRO-3" : "AllReduce",
                best->forecast.tokens_per_sec);
  } else {
    std::printf("\nNo plan fits on this GPU budget — add GPUs or enable ZeRO-3.\n");
  }
  return 0;
}
