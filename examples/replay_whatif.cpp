// Trace-driven replay & what-if re-forecast: feeds a recorded
// `campaign.trace.json` back through the replay engine and re-forecasts
// it under what-if knobs, closing the Seer validation loop (§4) — the
// measured iteration timeline is the ground truth the re-forecast is
// diffed against.
//
//   replay_whatif [campaign.trace.json]
//
// With no argument, a deterministic 64-host scripted campaign is
// recorded in-process first (the same run the golden fixture pins).
// Outputs:
//   replay.deviation.json  side-by-side measured-vs-forecast deviation
//                          report, per iteration and per op, for every
//                          scenario (self-replay + what-ifs),
//   replay.trace.json      one Perfetto view: the measured tracks next
//                          to each re-forecast timeline as its own
//                          process.
// Exit status is nonzero when the self-replay identity fails: replaying
// with unchanged knobs must re-forecast every iteration within 1% of the
// recorded duration.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/table.h"
#include "replay/recorder.h"
#include "replay/reforecast.h"
#include "replay/trace_reader.h"

using namespace astral;

namespace {

bool write_file(const char* path, const std::string& text) {
  std::ofstream out(path);
  if (!out) {
    std::printf("cannot write %s\n", path);
    return false;
  }
  out << text << '\n';
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  core::print_banner("Trace-driven replay - re-forecast a recorded campaign");

  core::Json trace_doc;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::printf("cannot read %s\n", argv[1]);
      return 1;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    std::string err;
    auto parsed = core::Json::parse(buf.str(), &err);
    if (!parsed) {
      std::printf("%s: malformed JSON: %s\n", argv[1], err.c_str());
      return 1;
    }
    trace_doc = std::move(*parsed);
    std::printf("Recorded campaign: %s\n", argv[1]);
  } else {
    std::printf("Recording the scripted 64-host campaign in-process...\n");
    auto artifacts = replay::record_scripted_campaign();
    trace_doc = std::move(artifacts.trace);
    if (!write_file("replay.recorded.trace.json", trace_doc.dump())) return 1;
    std::printf("Recorded campaign: replay.recorded.trace.json\n");
  }

  std::string err;
  auto parsed = replay::parse_chrome_trace(trace_doc, &err);
  if (!parsed) {
    std::printf("trace parse failed: %s\n", err.c_str());
    return 1;
  }
  auto campaign = replay::extract_campaign(*parsed, &err);
  if (!campaign) {
    std::printf("campaign extraction failed: %s\n", err.c_str());
    return 1;
  }
  std::printf("Parsed %zu events; job %lld, %d ranks, %zu committed iterations\n\n",
              parsed->event_count(), static_cast<long long>(campaign->job),
              campaign->ranks, campaign->iterations.size());

  std::vector<replay::WhatIfKnobs> scenarios;
  scenarios.push_back({});  // self-replay identity
  replay::WhatIfKnobs tier2;
  tier2.label = "tier2-bw-2x";
  tier2.nic_bw_scale = 2.0;
  scenarios.push_back(tier2);
  replay::WhatIfKnobs faster;
  faster.label = "compute-1.5x";
  faster.compute_scale = 1.5;
  scenarios.push_back(faster);
  replay::WhatIfKnobs algo;
  algo.label = "reduce-scatter";
  algo.collective = seer::CommKind::ReduceScatter;
  scenarios.push_back(algo);

  obs::ChromeTraceBuilder builder;
  parsed->append_chrome_trace(builder);  // pid 1: the measured tracks

  core::Json scenario_reports = core::Json::array();
  double identity_dev = 0.0;
  int pid = 10;
  for (const auto& knobs : scenarios) {
    auto report = replay::reforecast(*campaign, knobs);
    core::print_banner(report.label);
    std::printf("%s\n", report.to_table().c_str());
    std::printf("max iteration deviation %s, replay makespan %.6fs\n\n",
                core::Table::pct(report.max_iteration_deviation).c_str(),
                report.replay_makespan);
    if (knobs.is_identity()) identity_dev = report.max_iteration_deviation;
    report.append_chrome_trace(builder, pid++, "re-forecast: " + report.label);
    scenario_reports.push_back(report.to_json());
  }

  core::Json report_doc = core::Json::object();
  report_doc["scenarios"] = std::move(scenario_reports);
  if (!write_file("replay.deviation.json", report_doc.dump(2))) return 1;
  auto joined = builder.build();
  if (!write_file("replay.trace.json", joined.dump())) return 1;

  std::printf("Report:  replay.deviation.json\n");
  std::printf("Trace:   replay.trace.json (%zu events; open in ui.perfetto.dev)\n",
              joined["traceEvents"].size());

  if (identity_dev >= 0.01) {
    std::printf("\nFAIL: self-replay identity broken (max iteration deviation "
                "%s >= 1%%)\n", core::Table::pct(identity_dev).c_str());
    return 1;
  }
  std::printf("\nSelf-replay identity holds: %s < 1%%\n",
              core::Table::pct(identity_dev).c_str());
  return 0;
}
