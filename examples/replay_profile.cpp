// Profiler-trace replay and what-if re-forecasting (§4.3 method (i) and
// the §4.1 "verifying in-production results" + "upgrading deployment"
// goals). The example:
//   1. produces a profiler-style trace of a LLaMA-3 microbatch (standing
//      in for a PyTorch/Kineto export from a real run),
//   2. re-imports it through the Chakra-like converter,
//   3. replays it exactly (verification against production), and
//   4. re-forecasts the same workflow on different hardware (what-if:
//      GPU swap, NVLink-domain growth, slower network).
//
//   $ ./replay_profile            # built-in trace
//   $ ./replay_profile trace.json # your own profiler export
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/table.h"
#include "seer/profiler_trace.h"
#include "seer/templates.h"

using namespace astral;

namespace {

seer::SeerEngine engine_for(seer::GpuSpec gpu, seer::CommEnv env) {
  return seer::SeerEngine(seer::CostModel(
      std::move(gpu), env, std::make_shared<seer::TestbedEfficiency>()));
}

}  // namespace

int main(int argc, char** argv) {
  core::Json trace;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::printf("cannot open %s\n", argv[1]);
      return 1;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    std::string err;
    auto parsed = core::Json::parse(buf.str(), &err);
    if (!parsed) {
      std::printf("parse error: %s\n", err.c_str());
      return 1;
    }
    trace = std::move(*parsed);
    std::printf("Loaded profiler trace %s\n", argv[1]);
  } else {
    // Stand-in for a production profile: run the dense template once on
    // the "testbed" and export it in the profiler's format.
    auto graph = seer::build_graph(seer::ModelSpec::llama3_70b(),
                                   {.tp = 8, .dp = 8, .pp = 4, .ep = 1},
                                   seer::WorkloadShape{});
    auto tl = engine_for(seer::GpuSpec::h100(), {}).run(graph);
    trace = seer::export_profiler_trace(tl, graph);
    std::printf("Generated a stand-in profiler trace (LLaMA-3-70B microbatch,"
                " %zu events)\n", trace["traceEvents"].size());
  }

  std::string err;
  auto replay = seer::import_profiler_trace(trace, /*keep_measured_times=*/true, &err);
  auto model_graph = seer::import_profiler_trace(trace, /*keep_measured_times=*/false, &err);
  if (!replay || !model_graph) {
    std::printf("import failed: %s\n", err.c_str());
    return 1;
  }
  std::printf("Reconstructed operator graph: %zu ops, %.1f TFLOP, %.2f GB comm\n\n",
              replay->ops.size(), replay->total_flops() / 1e12,
              replay->total_comm_bytes() / 1e9);

  // Replay: measured durations, exactly as profiled.
  auto replayed = engine_for(seer::GpuSpec::h100(), {}).run(*replay);
  std::printf("Replayed makespan (verification reference): %.3f ms\n",
              replayed.makespan * 1e3);

  // What-if: same workflow, different hardware configurations.
  core::print_banner("What-if re-forecasts of the profiled workflow");
  core::Table table({"configuration", "makespan (ms)", "vs profiled"});
  auto what_if = [&](const char* label, seer::GpuSpec gpu, seer::CommEnv env) {
    auto tl = engine_for(std::move(gpu), env).run(*model_graph);
    table.add_row({label, core::Table::num(tl.makespan * 1e3, 3),
                   core::Table::pct(tl.makespan / replayed.makespan - 1.0)});
  };
  what_if("H100, 400G NIC (as profiled)", seer::GpuSpec::h100(), {});
  what_if("A100 swap", seer::GpuSpec::a100(), {});
  what_if("low-tier export GPU", seer::GpuSpec::low_tier(), {});
  seer::CommEnv big_hb;
  big_hb.hb_domain = 64;
  what_if("H100 + 64-GPU NVLink domain", seer::GpuSpec::h100(), big_hb);
  seer::CommEnv slow_net;
  slow_net.nic_bw = core::gbps(100);
  what_if("H100 + degraded 100G network", seer::GpuSpec::h100(), slow_net);
  table.print();

  std::printf("\nThe replay row is what §3.3 compares in-production NCCL timelines\n"
              "against; the what-if rows are the §4.4 upgrade studies.\n");
  return 0;
}
