// Topology-zoo shootout: every FabricStyle member runs the same
// adversarial campaigns (polarization storm + controller defuse,
// mixed-collective incast, failure blast radius) and is ranked on
// cost / performance / availability. Exits nonzero when any self-gate
// fails — CI runs this binary as the `topology-shootout` job.
//
//   ./topology_shootout            # default 64-host zoo instances
//
// See EXPERIMENTS.md ("Topology shootout") for reading the table.
#include <cstdio>

#include "core/table.h"
#include "zoo/shootout.h"

int main() {
  using namespace astral;

  core::print_banner("Topology-zoo shootout: adversarial routing campaigns");
  zoo::ShootoutConfig cfg;
  std::printf(
      "zoo scale: %d rails x %d hosts/block x %d blocks/pod x %d pods "
      "(dual-ToR), clos oversub %.1f\n"
      "campaigns: polarization storm (adversarial ECMP ports, controller "
      "defuse), rail-0 incast vs rail-1 background, fault blast radius\n\n",
      cfg.rails, cfg.hosts_per_block, cfg.blocks_per_pod, cfg.pods,
      cfg.clos_oversub);

  auto report = zoo::run_shootout(cfg);
  std::printf("%s\n", report.table.c_str());
  std::printf(
      "columns: ecmp-load = adversarial max link load -> after controller "
      "rebalance / documented bound; incast = background makespan alone / "
      "under incast (1.0 = full rail isolation); avail = blast-radius "
      "availability; $/good-gpu-h = cost / (GPUs x availability).\n\n");

  if (!report.ok()) {
    std::printf("GATE FAILURES (%zu):\n", report.gate_failures.size());
    for (const auto& g : report.gate_failures) std::printf("  %s\n", g.c_str());
    return 1;
  }
  std::printf("all self-gates passed (%zu zoo members ranked)\n",
              report.rows.size());
  return 0;
}
