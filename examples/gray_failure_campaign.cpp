// Gray-failure campaign: every topology-zoo member runs crisp, gray,
// and mixed fault profiles under both gray-routing controllers — damped
// WCMP (weight-derate with BGP-style flap damping) and the binary
// isolate-and-reroute baseline — with the stream analyzer's EWMA
// precursor alarms attached. Prints the per-cell campaign table and
// enforces the acceptance self-gates (see zoo/gray_campaign.h); exits
// nonzero when any gate fails, so CI runs it as the
// gray-failure-campaign job.
//
//   gray_failure_campaign [runs-per-cell]
#include <cstdio>
#include <cstdlib>

#include "core/table.h"
#include "zoo/gray_campaign.h"

using namespace astral;

int main(int argc, char** argv) {
  zoo::GrayCampaignConfig cfg;
  if (argc > 1) cfg.runs = std::max(1, std::atoi(argv[1]));

  core::print_banner("Gray-failure campaign - zoo x {crisp, gray, mixed}");
  std::printf("%d runs per cell, %d styles x 3 profiles x 2 controllers; "
              "job: %d hosts, %d iterations\n\n",
              cfg.runs, static_cast<int>(std::size(topo::kAllFabricStyles)),
              cfg.job.hosts, cfg.job.iterations);

  auto report = zoo::run_gray_campaign(cfg);
  std::printf("%s\n", report.table.c_str());

  // Campaign-wide rollup.
  int gray_total = 0, gray_hit = 0;
  double wcmp_gp = 0.0, binary_gp = 0.0;
  int flap_cells = 0;
  for (const auto& c : report.cells) {
    gray_total += c.gray_faults;
    gray_hit += c.gray_alarmed;
    if (c.profile == zoo::GrayProfile::Gray) {
      wcmp_gp += c.goodput_wcmp;
      binary_gp += c.goodput_binary;
      ++flap_cells;
    }
  }
  if (flap_cells > 0) {
    std::printf("Flapping goodput:  wcmp %.1f%% vs binary-isolate %.1f%% "
                "(mean over %d styles)\n",
                wcmp_gp / flap_cells * 100.0, binary_gp / flap_cells * 100.0,
                flap_cells);
  }
  if (gray_total > 0) {
    std::printf("Alarm coverage:    %d/%d gray faults preceded by an EWMA "
                "precursor alarm\n",
                gray_hit, gray_total);
  }

  if (!report.ok()) {
    std::printf("\nSELF-GATE FAILURES:\n");
    for (const auto& g : report.gate_failures) {
      std::printf("  FAIL: %s\n", g.c_str());
    }
    return 1;
  }
  std::printf("\nAll self-gates passed: wcmp+damping > binary under "
              "flapping on every member, >=90%% alarm lead coverage, zero "
              "damped oscillation, clean runs unharmed.\n");
  return 0;
}
