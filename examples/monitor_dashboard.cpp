// Live per-Pod dashboard over the always-on streaming diagnosis
// service: a multi-tenant fleet runs a faulted campaign on a two-pod
// fabric while monitor::StreamAnalyzer consumes every telemetry record
// at the store's ingestion seam, maintains the Pod -> tier -> fabric
// rollups, and re-renders the compact text dashboard once per frame of
// telemetry time. Emits
//   monitor_dashboard.txt   the final rendered frame
//   monitor_dashboard.json  the full "stream.*" metrics snapshot
// and prints the first and final frames. The binary self-gates
// (nonzero exit) on: frames rendered, records streamed, per-pod gauges
// present, blast-radius gauges populated by the injected fleet faults,
// and streaming-vs-batch diagnosis equality on a reference scenario.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/table.h"
#include "monitor/cluster_runtime.h"
#include "monitor/fleet_runtime.h"
#include "monitor/stream_analyzer.h"
#include "obs/metrics.h"

using namespace astral;

namespace {

bool write_file(const char* path, const std::string& text) {
  std::ofstream out(path);
  if (!out) {
    std::printf("cannot write %s\n", path);
    return false;
  }
  out << text << '\n';
  return out.good();
}

topo::FabricParams fabric_params() {
  topo::FabricParams p;
  p.rails = 2;
  p.hosts_per_block = 4;
  p.blocks_per_pod = 2;
  p.pods = 2;  // 16 hosts across two pods: the dashboard has rows to show
  return p;
}

monitor::RecoveryConfig campaign_recovery() {
  monitor::RecoveryConfig rc;
  rc.enabled = true;
  rc.checkpoint_interval = 2;
  rc.max_restarts = 0;  // dead host is terminal -> elastic shrink path
  rc.detect_time = 0.05;
  rc.restart_time = 0.2;
  rc.backoff_base = 0.05;
  return rc;
}

/// Gate: the streaming service must produce the exact batch diagnosis
/// on a reference single-job scenario (the per-scenario equivalence
/// contract monitor_stream_test pins exhaustively).
bool streaming_equals_batch() {
  topo::Fabric fabric(fabric_params());
  monitor::StreamAnalyzer stream(fabric.topo());
  monitor::JobConfig job;
  job.hosts = 8;
  job.iterations = 5;
  job.comm_bytes = 8ull * 1024 * 1024;
  monitor::ClusterRuntime rt(fabric, job, /*seed=*/33);
  rt.set_stream_analyzer(&stream);
  rt.inject(rt.make_fault(monitor::RootCause::OpticalFiber,
                          monitor::Manifestation::FailSlow, 2));
  rt.run();
  monitor::HierarchicalAnalyzer batch(rt.telemetry(), fabric.topo(),
                                      rt.expected_compute(), rt.expected_comm());
  return stream.diagnosis() == batch.diagnose();
}

}  // namespace

int main(int argc, char** argv) {
  int jobs = 8;
  std::uint64_t seed = 1;
  if (argc > 1) jobs = std::max(2, std::atoi(argv[1]));
  if (argc > 2) seed = static_cast<std::uint64_t>(std::atoll(argv[2]));

  core::print_banner("Streaming diagnosis - live per-Pod dashboard");

  topo::Fabric fabric(fabric_params());
  obs::Metrics metrics;
  // The analyzer must outlive the fleet (engines detach at retirement).
  monitor::StreamAnalyzer stream(fabric.topo());

  std::vector<std::string> frames;
  stream.set_frame_callback(0.5, [&](core::Seconds t) {
    stream.publish(metrics);
    frames.push_back("t=" + core::Table::num(t, 2) + "s\n" +
                     monitor::render_pod_dashboard(metrics, stream.pods()));
  });

  monitor::FleetConfig fc;
  fc.elastic.cordon_heal_time = 0.15;
  fc.seed = seed;
  monitor::FleetRuntime fleet(fabric, fc);
  fleet.set_metrics(&metrics);
  fleet.set_stream_analyzer(&stream);

  monitor::ArrivalProcessConfig ap;
  ap.jobs = jobs;
  ap.arrival_rate = 4.0;
  ap.sizes = {4, 8};
  ap.size_weights = {0.6, 0.4};
  ap.iterations = 8;
  ap.comm_bytes = 8ull * 1024 * 1024;
  ap.recovery = campaign_recovery();
  ap.seed = seed;
  for (const monitor::FleetJobSpec& spec : monitor::generate_arrivals(ap)) {
    fleet.submit(spec);
  }

  // A deterministic long-running tenant holding most of the fabric when
  // the faults strike, so the blast-radius charges (shrink rewinds,
  // mitigation MTTR) reliably land on the dashboard at every seed.
  monitor::FleetJobSpec vip;
  vip.job.hosts = 12;
  vip.job.iterations = 16;
  vip.job.comm_bytes = 8ull * 1024 * 1024;
  vip.job.recovery = campaign_recovery();
  vip.arrival = 0.0;
  vip.priority = 1;
  vip.seed = seed * 1000003ull + 777;
  fleet.submit(vip);

  // Fleet faults with distinct blast shapes: a host dies for good, a
  // rail-0 ToR blackholes and heals, a degraded optic drags a link.
  monitor::FleetFault host_death;
  host_death.at_time = 0.7;
  host_death.cause = monitor::RootCause::GpuHardware;
  host_death.manifestation = monitor::Manifestation::FailStop;
  host_death.target_host = 1;
  fleet.inject(host_death);

  monitor::FleetFault tor_death;
  tor_death.at_time = 1.0;
  tor_death.cause = monitor::RootCause::SwitchBug;
  tor_death.manifestation = monitor::Manifestation::FailStop;
  tor_death.target_link = fabric.topo().out_links(fabric.topo().hosts()[0])[0];
  tor_death.switch_scope = true;
  tor_death.heal_after = 1.5;
  fleet.inject(tor_death);

  monitor::FleetFault optic;
  optic.at_time = 1.3;
  optic.cause = monitor::RootCause::OpticalFiber;
  optic.manifestation = monitor::Manifestation::FailSlow;
  optic.target_link = fabric.topo().out_links(fabric.topo().hosts()[8])[0];
  optic.degrade_factor = 0.2;
  optic.heal_after = 1.0;
  fleet.inject(optic);

  monitor::FleetOutcome out = fleet.run();

  // Final frame: publish after the run so retirement-time finalized
  // diagnoses and the last blast charges are on the board.
  stream.publish(metrics);
  std::string final_frame =
      monitor::render_pod_dashboard(metrics, stream.pods());

  if (!frames.empty()) {
    std::printf("first frame (%zu rendered during the run):\n%s\n",
                frames.size(), frames.front().c_str());
  }
  std::printf("final frame:\n%s\n", final_frame.c_str());
  std::printf("fleet: %zu jobs, %zu fleet faults, goodput %.3f, makespan %.2fs\n",
              out.jobs.size(), out.faults.size(), out.fleet_goodput,
              out.makespan);

  bool ok = write_file("monitor_dashboard.txt", final_frame);
  ok = write_file("monitor_dashboard.json", metrics.to_json().dump(2)) && ok;

  // ---- Acceptance gates.
  int failures = 0;
  auto gate = [&](bool pass, const char* what) {
    std::printf("  [%s] %s\n", pass ? "PASS" : "FAIL", what);
    if (!pass) ++failures;
  };
  gate(ok, "artifacts written");
  gate(!frames.empty(), "live frames rendered during the run");
  gate(metrics.gauge("stream.records_ingested") > 0.0,
       "telemetry records streamed through the service");
  gate(metrics.gauge("stream.pods") == 2.0, "per-pod rollups cover both pods");
  gate(metrics.gauge("stream.diag.jobs") >= static_cast<double>(jobs),
       "every tenant has a finalized online diagnosis");
  bool struck = false;
  for (const auto& fl : out.faults) struck = struck || !fl.jobs_touched.empty();
  gate(struck, "fleet faults touched tenants");
  gate(metrics.gauge("stream.blast.jobs_touched") > 0.0,
       "blast-radius jobs-touched gauge populated");
  gate(metrics.gauge("stream.blast.host_hours_lost") > 0.0,
       "blast-radius host-hours gauge populated");
  gate(metrics.gauge("fleet.blast.jobs_touched_total") ==
           metrics.gauge("stream.blast.jobs_touched"),
       "fleet ledger and streaming rollup agree on jobs touched");
  gate(final_frame.find("pod0") != std::string::npos &&
           final_frame.find("pod1") != std::string::npos &&
           final_frame.find("fabric") != std::string::npos,
       "dashboard renders pod and fabric rows");
  gate(streaming_equals_batch(), "streaming diagnosis == batch diagnosis");

  if (failures) {
    std::printf("\n%d gate(s) failed\n", failures);
    return 1;
  }
  std::printf("\nall gates passed\n");
  return 0;
}
