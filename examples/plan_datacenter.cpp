// Physical-deployment planning: size the distributed HVDC power system,
// pick the airflow scheme and the air/liquid cooling split for the
// workload, and report the resulting PUE and renewable mix (§2.2).
//
//   $ ./plan_datacenter
#include <algorithm>
#include <cstdio>
#include <vector>

#include "cooling/airflow.h"
#include "core/table.h"
#include "power/profile.h"
#include "power/pue.h"
#include "power/renewables.h"

using namespace astral;

int main() {
  // Fleet: 64 rows of 8 racks, 8 servers/rack, 8 GPUs/server.
  const int rows = 64;
  const int racks_per_row = 8;
  const double server_kw = 8.0;  // "8 kWh with GPUs" per server (§2.2)
  const double rack_tdp = 8 * server_kw * 1e3;
  const double it_watts = rows * racks_per_row * rack_tdp;
  std::printf("Fleet: %d rows x %d racks, rack TDP %.0f kW -> IT load %.1f MW\n\n",
              rows, racks_per_row, rack_tdp / 1e3, it_watts / 1e6);

  // Power: one HVDC unit per row; a GPU-burst scenario on one rack.
  power::PowerUnitConfig unit_cfg;
  unit_cfg.racks = racks_per_row;
  unit_cfg.rack_tdp_watts = rack_tdp;
  power::PowerUnit unit(unit_cfg);
  std::vector<double> demand(racks_per_row, rack_tdp * 0.9);
  demand[0] = rack_tdp * 1.4;  // one rack bursting past TDP
  auto alloc = unit.allocate(demand);
  std::printf("HVDC row unit: budget %.0f kW; bursting rack granted %.0f kW"
              " (cap = TDP + 30%%), others untouched.\n",
              unit.unit_budget() / 1e3, alloc.granted_watts[0] / 1e3);

  // Grid stability under pulsed LLM load.
  std::vector<double> pulses;
  for (int i = 0; i < 600; ++i) {
    pulses.push_back(i % 2 == 0 ? unit.unit_budget() : unit.unit_budget() * 0.55);
  }
  power::PowerUnit hvdc(unit_cfg);
  auto ups_cfg = unit_cfg;
  ups_cfg.kind = power::ChainKind::AcUps;
  power::PowerUnit ups(ups_cfg);
  std::printf("Grid peak/mean under train pulses: HVDC %.2f vs AC-UPS %.2f\n\n",
              power::grid_stability(hvdc, pulses, 1.0),
              power::grid_stability(ups, pulses, 1.0));

  // Cooling: airflow scheme comparison for one row.
  cooling::RackRowConfig row;
  row.racks = racks_per_row;
  row.heat_watts_per_rack = rack_tdp;
  row.total_airflow_m3s = 60.0;
  core::Table air({"airflow scheme", "temp spread (degC)", "hottest rack (degC)"});
  for (auto scheme : {cooling::AirflowScheme::SideIntake, cooling::AirflowScheme::BottomUp}) {
    auto temps = cooling::rack_temperatures(row, scheme);
    air.add_row({to_string(scheme),
                 core::Table::num(cooling::temperature_spread(row, scheme), 2),
                 core::Table::num(*std::max_element(temps.begin(), temps.end()), 1)});
  }
  air.print();

  // Facility PUE, traditional vs Astral.
  auto trad = power::FacilityConfig::traditional(it_watts);
  auto astral = power::FacilityConfig::astral(it_watts);
  std::printf("\nPUE: traditional %.3f -> Astral %.3f (%.1f%% better)\n",
              power::compute_pue(trad, it_watts), power::compute_pue(astral, it_watts),
              (power::compute_pue(trad, it_watts) - power::compute_pue(astral, it_watts)) /
                  power::compute_pue(trad, it_watts) * 100.0);

  // Renewables sized for ~22% of annual energy.
  auto mix = power::simulate_year(it_watts, it_watts * 0.45, it_watts * 0.25, 0.35);
  std::printf("Renewables: %.1f%% of annual energy, %.0f kt CO2 avoided\n",
              mix.renewable_fraction() * 100.0, mix.avoided_co2_tons() / 1e3);
  return 0;
}
