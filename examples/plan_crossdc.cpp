// Cross-datacenter planning with Seer (§4.4 case study #1): given a
// model and a two-DC deployment, recommend which parallelism dimension
// should cross the long-haul link and the highest oversubscription ratio
// that keeps the efficiency loss under a budget — turning the Appendix B
// fiber-cost trade-off into a concrete purchase recommendation.
//
//   $ ./plan_crossdc           # LLaMA-3-70B
//   $ ./plan_crossdc moe       # Hunyuan-MoE
#include <cstdio>
#include <cstring>
#include <string>

#include "core/table.h"
#include "workload/trainer.h"

using namespace astral;

int main(int argc, char** argv) {
  const bool moe = argc > 1 && std::strcmp(argv[1], "moe") == 0;

  workload::TrainingSetup base;
  base.model = moe ? seer::ModelSpec::hunyuan_moe() : seer::ModelSpec::llama3_70b();
  base.parallel = moe ? parallel::ParallelismConfig{.tp = 8, .dp = 16, .pp = 8, .ep = 8}
                      : parallel::ParallelismConfig{.tp = 8, .dp = 16, .pp = 8, .ep = 1};
  base.global_batch = 512;
  base.seq_len = 4096;
  base.eff = std::make_shared<seer::TestbedEfficiency>();
  base.env.crossdc_rtt = core::msec(3.0);  // ~300 km of fiber

  const double loss_budget = 0.02;  // accept up to 2% efficiency loss
  double single_dc = workload::Trainer(base).forecast_iteration().iteration_time;

  std::printf("Model: %s on %d GPUs across two DCs (300 km apart)\n",
              base.model.name.c_str(), base.parallel.world());
  auto traffic = workload::Trainer(base).traffic();
  std::printf("Per-device traffic per iteration: TP %.1f GB, PP %.2f GB, DP %.1f GB"
              "%s\n\n",
              traffic.tp_bytes / 1e9, traffic.pp_bytes / 1e9, traffic.dp_bytes / 1e9,
              moe ? (", EP " + std::to_string(traffic.ep_bytes / 1e9) + " GB").c_str()
                  : "");

  core::print_banner("Efficiency vs cross-DC oversubscription (Seer forecast)");
  core::Table table({"oversub", "PP across", "DP across", "ZeRO-DP across",
                     "fiber cost/yr"});
  struct Best {
    seer::CrossDcDim dim = seer::CrossDcDim::None;
    seer::DpStrategy dp = seer::DpStrategy::AllReduce;
    double oversub = 1.0;
    const char* label = "";
  } best;

  for (double oversub : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    auto eff = [&](seer::CrossDcDim dim, seer::DpStrategy dp) {
      auto s = base;
      s.cross_dc = dim;
      s.dp_strategy = dp;
      s.env.crossdc_oversub = oversub;
      return single_dc / workload::Trainer(s).forecast_iteration().iteration_time;
    };
    double pp = eff(seer::CrossDcDim::PP, seer::DpStrategy::AllReduce);
    double dpv = eff(seer::CrossDcDim::DP, seer::DpStrategy::AllReduce);
    double zero = eff(seer::CrossDcDim::DP, seer::DpStrategy::Zero3);
    // Higher oversubscription = fewer fibers. Appendix B: ~250K$/yr for a
    // full-rate 300 km bundle; cost scales inversely with oversub.
    double cost_k = 250.0 * 32.0 / oversub;
    table.add_row({core::Table::num(oversub, 0) + ":1", core::Table::pct(pp),
                   core::Table::pct(dpv), core::Table::pct(zero),
                   core::Table::num(cost_k, 0) + " K$"});
    if (pp >= 1.0 - loss_budget && oversub > best.oversub) {
      best = {seer::CrossDcDim::PP, seer::DpStrategy::AllReduce, oversub, "PP"};
    }
    if (dpv >= 1.0 - loss_budget &&
        (oversub > best.oversub || (oversub == best.oversub && dpv > 1.0 - loss_budget))) {
      best = {seer::CrossDcDim::DP, seer::DpStrategy::AllReduce, oversub, "DP"};
    }
  }
  table.print();

  if (best.oversub > 1.0) {
    std::printf("\nRecommendation: route %s traffic across the DCs at %.0f:1"
                " oversubscription (within the %.0f%% loss budget), fiber cost"
                " ~%.0f K$/yr.\n",
                best.label, best.oversub, loss_budget * 100.0,
                250.0 * 32.0 / best.oversub);
  } else {
    std::printf("\nRecommendation: no dimension fits the %.0f%% loss budget at"
                " reduced fiber counts; provision full-rate links.\n",
                loss_budget * 100.0);
  }
  return 0;
}
