// Fault diagnosis walkthrough: inject a root cause into a simulated
// training job, collect full-stack telemetry, and let the hierarchical
// analyzer localize it — then cross-check with the offline toolsets.
//
//   $ ./diagnose_failure              # default: optical fiber fail-slow
//   $ ./diagnose_failure switch-bug   # silent blackhole (fail-hang)
//   $ ./diagnose_failure pcie         # the Section 5 PCIe/PFC incident
//   $ ./diagnose_failure gpu | memory | nic | user-code | env
#include <cstdio>
#include <cstring>

#include "monitor/analyzer.h"
#include "monitor/cluster_runtime.h"
#include "monitor/offline_tools.h"

using namespace astral;
using monitor::Manifestation;
using monitor::RootCause;

namespace {

struct Choice {
  const char* arg;
  RootCause cause;
  Manifestation manifestation;
};

const Choice kChoices[] = {
    {"optical", RootCause::OpticalFiber, Manifestation::FailSlow},
    {"switch-bug", RootCause::SwitchBug, Manifestation::FailHang},
    {"switch-config", RootCause::SwitchConfig, Manifestation::FailSlow},
    {"pcie", RootCause::PcieDegrade, Manifestation::FailSlow},
    {"gpu", RootCause::GpuHardware, Manifestation::FailStop},
    {"memory", RootCause::Memory, Manifestation::FailStop},
    {"nic", RootCause::NicError, Manifestation::FailStop},
    {"user-code", RootCause::UserCode, Manifestation::FailStop},
    {"env", RootCause::HostEnvConfig, Manifestation::FailOnStart},
    {"ccl", RootCause::CclBug, Manifestation::FailHang},
};

}  // namespace

int main(int argc, char** argv) {
  Choice choice = kChoices[0];
  if (argc > 1) {
    bool found = false;
    for (const auto& c : kChoices) {
      if (std::strcmp(argv[1], c.arg) == 0) {
        choice = c;
        found = true;
      }
    }
    if (!found) {
      std::printf("unknown fault '%s'; options:", argv[1]);
      for (const auto& c : kChoices) std::printf(" %s", c.arg);
      std::printf("\n");
      return 1;
    }
  }

  topo::FabricParams fp;
  fp.rails = 2;
  fp.hosts_per_block = 8;
  fp.blocks_per_pod = 2;
  fp.pods = 1;
  topo::Fabric fabric(fp);

  monitor::JobConfig job;
  job.hosts = 12;
  job.iterations = 6;
  job.comm_bytes = 16ull * 1024 * 1024;

  monitor::ClusterRuntime runtime(fabric, job, 2024);
  auto fault = runtime.make_fault(choice.cause, choice.manifestation, 2);
  runtime.inject(fault);
  std::printf("Injected: %s (expected manifestation: %s)\n", to_string(fault.cause),
              to_string(fault.manifestation));

  auto outcome = runtime.run();
  std::printf("Job outcome: %s%s\n",
              outcome.completed ? "completed" : "stopped",
              outcome.observed
                  ? (std::string(" - ") + to_string(*outcome.observed)).c_str()
                  : " - healthy");
  std::printf("Telemetry records: %zu\n\n", runtime.telemetry().record_count());

  monitor::HierarchicalAnalyzer analyzer(runtime.telemetry(), fabric.topo(),
                                         runtime.expected_compute(),
                                         runtime.expected_comm());
  auto d = analyzer.diagnose();
  std::printf("Hierarchical correlation analysis:\n");
  for (const auto& e : d.evidence) std::printf("  -> %s\n", e.c_str());
  if (d.root_cause_found) {
    std::printf("Root cause: %s%s\n", to_string(*d.root_cause),
                d.needs_manual ? " (manual follow-up advised)" : "");
  } else {
    std::printf("Root cause: not identified automatically — offline tools next.\n");
  }
  for (int h : d.culprit_hosts) std::printf("  culprit host rank %d\n", h);
  for (auto l : d.culprit_links) {
    const auto& link = fabric.topo().link(l);
    std::printf("  culprit link %u: %s -> %s\n", l,
                fabric.topo().node(link.src).name.c_str(),
                fabric.topo().node(link.dst).name.c_str());
  }
  std::printf("Modeled locate time: %.1f min\n\n", d.locate_time / 60.0);

  // Offline toolsets (run before delivery / after unhandled failures).
  auto config_issues = monitor::verify_configs(runtime.host_configs());
  std::printf("Offline config verify: %zu mismatch(es)\n", config_issues.size());
  for (const auto& m : config_issues) {
    std::printf("  host %d: %s = %s (fleet majority: %s)\n", m.host_rank,
                m.field.c_str(), m.value.c_str(), m.majority_value.c_str());
  }
  auto wiring = monitor::collect_wiring(fabric);
  std::printf("Offline wiring verify: %zu mismatch(es)\n",
              monitor::verify_wiring(fabric, wiring).size());

  // Consolidated telemetry snapshot for offline tooling (§3.2 "log
  // consolidation"): all four layers in one JSON document.
  auto snapshot = runtime.telemetry().to_json().dump();
  std::printf("Telemetry snapshot: %.1f KB of consolidated JSON"
              " (application/transport/network/physical)\n",
              static_cast<double>(snapshot.size()) / 1024.0);
  return 0;
}
