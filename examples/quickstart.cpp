// Quickstart: build an Astral fabric, run collectives on the network
// simulator, and forecast a training iteration with Seer.
//
//   $ ./quickstart
#include <cstdio>

#include "coll/runner.h"
#include "core/table.h"
#include "parallel/placement.h"
#include "workload/trainer.h"

using namespace astral;

int main() {
  // 1. A scaled-down Astral fabric: same-rail tier-2 aggregation,
  //    dual-ToR, identical aggregated bandwidth across tiers.
  topo::FabricParams params;
  params.style = topo::FabricStyle::AstralSameRail;
  params.rails = 8;           // GPUs / rail NICs per host
  params.hosts_per_block = 8; // paper: 128
  params.blocks_per_pod = 4;  // paper: 64
  params.pods = 2;            // paper: 8
  topo::Fabric fabric(params);
  std::printf("Fabric: %s, %d GPUs, %zu switches, %zu links\n",
              to_string(params.style), fabric.gpu_count(),
              fabric.topo().node_count() - fabric.topo().hosts().size(),
              fabric.topo().link_count());
  double t1 = fabric.topo().tier_bandwidth(topo::NodeKind::Host, topo::NodeKind::Tor);
  double t2 = fabric.topo().tier_bandwidth(topo::NodeKind::Tor, topo::NodeKind::Agg);
  double t3 = fabric.topo().tier_bandwidth(topo::NodeKind::Agg, topo::NodeKind::Core);
  std::printf("Aggregated bandwidth per tier: %.1f / %.1f / %.1f Tbps (identical)\n\n",
              t1 / 1e12, t2 / 1e12, t3 / 1e12);

  // 2. Run collectives on the fluid network simulator.
  net::FluidSim sim(fabric);
  coll::CollectiveRunner runner(sim, {.pxn = true, .sample_rounds = 8});
  auto group = coll::CommGroup{parallel::Placement::packed(fabric, 128).gpus};

  core::Table table({"collective", "size", "time (ms)", "bus bw (Gbps)"});
  auto ar = runner.all_reduce(group, 256ull << 20);
  table.add_row({"AllReduce (ring, 128 GPUs)", "256 MiB",
                 core::Table::num(ar.duration * 1e3, 2),
                 core::Table::num(core::to_gbps(ar.bus_bw), 1)});
  auto a2a = runner.all_to_all(group, 1ull << 20);
  table.add_row({"AllToAll (PXN, 128 GPUs)", "1 MiB/pair",
                 core::Table::num(a2a.duration * 1e3, 2),
                 core::Table::num(core::to_gbps(a2a.bus_bw), 1)});
  table.print();

  // 3. Forecast a LLaMA-3-70B training iteration with Seer.
  workload::TrainingSetup setup;
  setup.model = seer::ModelSpec::llama3_70b();
  setup.parallel = {.tp = 8, .dp = 4, .pp = 4, .ep = 1};  // 128 GPUs
  setup.global_batch = 128;
  setup.seq_len = 4096;
  setup.eff = std::make_shared<seer::TestbedEfficiency>();
  auto f = workload::Trainer(setup).forecast_iteration();
  std::printf("\nSeer forecast, %s on %d GPUs:\n", setup.model.name.c_str(),
              setup.parallel.world());
  std::printf("  iteration time : %.3f s\n", f.iteration_time);
  std::printf("  throughput     : %.0f tokens/s (MFU %.1f%%)\n", f.tokens_per_sec,
              f.mfu * 100.0);
  std::printf("  exposed comm   : %.1f%% of iteration\n", f.comm_fraction * 100.0);
  std::printf("  DP sync        : %.1f ms total, %.1f ms exposed\n",
              f.dp_sync_time * 1e3, f.dp_exposed * 1e3);
  return 0;
}
