// Availability campaign: multi-fault runs with the recovery state machine
// enabled. Every run takes a fault sampled from the Fig. 7 taxonomy plus
// a mid-transfer ToR death; the job survives through retry-with-backoff,
// in-flight dual-ToR failover, and restart-from-checkpoint, and the
// campaign reports MTTR, downtime, and effective training goodput next to
// the familiar MTTLF.
//
//   availability_campaign [runs] [fabric-style]
//
// fabric-style is any topology-zoo member name (astral-same-rail,
// rail-optimized, clos, rail-only, ub-mesh); default astral-same-rail.
#include <cstdio>
#include <cstring>

#include "core/table.h"
#include "monitor/mttlf.h"

using namespace astral;

int main(int argc, char** argv) {
  monitor::AvailabilityConfig cfg;
  if (argc > 1) cfg.runs = std::max(1, std::atoi(argv[1]));
  if (argc > 2) {
    auto style = topo::style_from_string(argv[2]);
    if (!style) {
      std::fprintf(stderr, "unknown fabric style '%s'; members:", argv[2]);
      for (topo::FabricStyle s : topo::kAllFabricStyles) {
        std::fprintf(stderr, " %s", topo::to_string(s));
      }
      std::fprintf(stderr, "\n");
      return 2;
    }
    cfg.fabric.style = *style;
  }

  core::print_banner("Availability campaign - recovery-aware job lifecycle");
  std::printf("%d runs x %d faults (taxonomy sample + mid-transfer ToR death) "
              "on %s, checkpoint every %d iterations\n\n",
              cfg.runs, cfg.faults_per_run, topo::to_string(cfg.fabric.style),
              cfg.job.recovery.checkpoint_interval);

  auto result = monitor::run_availability_campaign(cfg);

  core::Table table({"run", "outcome", "mitigations", "restarts", "reroutes",
                     "MTTR", "downtime", "goodput"});
  int shown = 0;
  for (std::size_t i = 0; i < result.entries.size() && shown < 10; ++i, ++shown) {
    const auto& e = result.entries[i];
    const auto& o = e.outcome;
    table.add_row({std::to_string(i),
                   o.completed ? "completed" : "aborted",
                   std::to_string(o.mitigations.size()),
                   std::to_string(o.restarts),
                   std::to_string(o.reroutes),
                   core::Table::num(e.mttr, 1) + " s",
                   core::Table::num(o.downtime, 1) + " s",
                   core::Table::num(o.goodput * 100.0, 1) + " %"});
  }
  table.print();
  if (result.entries.size() > 10) {
    std::printf("(first 10 of %d runs shown)\n", cfg.runs);
  }

  std::printf("\nCompletion rate:   %.1f%% of runs finished all iterations\n",
              result.completion_rate() * 100.0);
  std::printf("Mean goodput:      %.1f%% (committed iterations / wall clock)\n",
              result.mean_goodput() * 100.0);
  std::printf("Mean MTTR:         %.1f s (detect + locate + recover)\n",
              result.mean_mttr());
  std::printf("Mean MTTLF:        %.1f min (analyzer locate share of MTTR)\n",
              result.mean_mttlf() / 60.0);
  std::printf("Mean downtime:     %.1f s per run\n", result.mean_downtime());
  std::printf("Mitigations:       %d flow reroutes, %d restarts, %d retries across "
              "the campaign\n",
              result.total_reroutes(), result.total_restarts(),
              result.total_retries());

  // The same schedule with recovery disabled: every run dies at its first
  // fault — the before/after picture of the availability work.
  monitor::AvailabilityConfig off = cfg;
  off.job.recovery.enabled = false;
  auto baseline = monitor::run_availability_campaign(off);
  std::printf("\nRecovery disabled: %.1f%% completion, %.1f%% goodput "
              "(stop-at-first-fault baseline)\n",
              baseline.completion_rate() * 100.0,
              baseline.mean_goodput() * 100.0);
  return 0;
}
