// Fig. 7: taxonomy of anomalies in the Astral network — root-cause and
// failure-manifestation distributions observed over a fault-injection
// campaign, compared against the paper's production statistics.
#include <array>
#include <cstdio>
#include <map>

#include "core/table.h"
#include "monitor/mttlf.h"

using namespace astral;
using monitor::Manifestation;
using monitor::RootCause;

int main() {
  monitor::CampaignConfig cfg;
  cfg.faults = 400;
  auto result = monitor::run_campaign(cfg);

  core::print_banner("Fig. 7 - Root causes (inner ring)");
  auto causes = result.cause_counts();
  core::Table cause_table({"root cause", "observed", "paper"});
  for (auto c : {RootCause::HostEnvConfig, RootCause::NicError, RootCause::UserCode,
                 RootCause::SwitchConfig, RootCause::SwitchBug, RootCause::OpticalFiber,
                 RootCause::CclBug, RootCause::WireConnection, RootCause::GpuHardware,
                 RootCause::Memory, RootCause::LinkFlap}) {
    double frac = causes.count(c) ? static_cast<double>(causes[c]) / cfg.faults : 0.0;
    cause_table.add_row({to_string(c), core::Table::pct(frac, 1),
                         core::Table::pct(monitor::prevalence(c), 0)});
  }
  cause_table.print();

  core::print_banner("Fig. 7 - Failure manifestations (outer ring)");
  auto manifs = result.manifestation_counts();
  core::Table m_table({"manifestation", "observed", "paper"});
  struct Row {
    Manifestation m;
    const char* paper;
  };
  for (auto [m, paper] : {Row{Manifestation::FailStop, "66%"},
                          Row{Manifestation::FailHang, "17%"},
                          Row{Manifestation::FailSlow, "13%"},
                          Row{Manifestation::FailOnStart, "4%"}}) {
    double frac = manifs.count(m) ? static_cast<double>(manifs[m]) / cfg.faults : 0.0;
    m_table.add_row({to_string(m), core::Table::pct(frac, 1), paper});
  }
  m_table.print();

  std::printf("\nAnalyzer root-cause accuracy over the campaign: %.1f%%\n",
              result.accuracy() * 100.0);

  core::print_banner("Per-cause localization rate (diagnostic telemetry coverage)");
  core::Table loc({"root cause", "faults", "auto-localized", "manual follow-up"});
  std::map<RootCause, std::array<int, 3>> per_cause;
  for (const auto& e : result.entries) {
    auto& row = per_cause[e.injected_cause];
    ++row[0];
    row[1] += e.cause_correct ? 1 : 0;
    row[2] += e.needs_manual ? 1 : 0;
  }
  for (const auto& [cause, row] : per_cause) {
    loc.add_row({to_string(cause), std::to_string(row[0]),
                 core::Table::pct(static_cast<double>(row[1]) / row[0], 0),
                 core::Table::pct(static_cast<double>(row[2]) / row[0], 0)});
  }
  loc.print();
  return 0;
}
