// Ablation (§4.3 / §5 "Self-correcting model improves accuracy"): the
// fidelity-vs-runtime trade that motivated Seer. For the same ring-step
// collective we compare three fidelity levels:
//   packet-granular  — per-packet switching + DCQCN + PFC (ASTRA-sim's
//                      role; at production scale this is the "one day on
//                      a 48-core server" option)
//   flow-level fluid — max-min rates (our network substrate)
//   Seer cost model  — closed-form with calibrated corrections (µs)
// Accuracy is measured against the packet simulator as ground truth;
// wall-clock shows why Seer wins operationally.
#include <chrono>
#include <cstdio>

#include "core/table.h"
#include "net/fluid_sim.h"
#include "pkt/packet_sim.h"
#include "seer/cost_model.h"

using namespace astral;

namespace {

topo::Fabric make_fabric() {
  topo::FabricParams p;
  p.rails = 8;
  p.hosts_per_block = 8;
  p.blocks_per_pod = 2;
  p.pods = 1;
  return topo::Fabric(p);
}

std::vector<net::FlowSpec> ring_step(const topo::Fabric& f, int hosts, core::Bytes chunk) {
  std::vector<net::FlowSpec> specs;
  for (int i = 0; i < hosts; ++i) {
    net::FlowSpec s;
    s.src_host = f.topo().hosts()[static_cast<std::size_t>(i)];
    s.dst_host = f.topo().hosts()[static_cast<std::size_t>((i + 1) % hosts)];
    s.src_rail = 0;
    s.dst_rail = 0;
    s.size = chunk;
    s.tag = static_cast<std::uint64_t>(i);
    specs.push_back(s);
  }
  return specs;
}

template <typename Sim>
std::pair<double, double> timed_run(Sim& sim, const std::vector<net::FlowSpec>& specs) {
  auto w0 = std::chrono::steady_clock::now();
  core::Seconds t0 = sim.now();
  std::vector<net::FlowId> ids;
  for (const auto& s : specs) ids.push_back(sim.inject(s));
  sim.run();
  core::Seconds fct = 0;
  for (auto id : ids) fct = std::max(fct, sim.flow(id).finish - t0);
  auto w1 = std::chrono::steady_clock::now();
  return {fct, std::chrono::duration<double>(w1 - w0).count()};
}

}  // namespace

int main() {
  const int hosts = 16;
  const core::Bytes chunk = 16ull << 20;

  core::print_banner("Fidelity ladder: one 16-host ring step, 16 MiB chunks");
  core::Table table({"fidelity", "step time (ms)", "error vs packet", "wall-clock (s)",
                     "production-scale cost"});

  auto f1 = make_fabric();
  pkt::PacketSim psim(f1);
  auto [pkt_fct, pkt_wall] = timed_run(psim, ring_step(f1, hosts, chunk));
  table.add_row({"packet (DCQCN+PFC)", core::Table::num(pkt_fct * 1e3, 3), "baseline",
                 core::Table::num(pkt_wall, 3), "~1 day (ASTRA-sim, Sec. 5)"});

  auto f2 = make_fabric();
  net::FluidSim fsim(f2);
  auto [fluid_fct, fluid_wall] = timed_run(fsim, ring_step(f2, hosts, chunk));
  table.add_row({"flow-level fluid", core::Table::num(fluid_fct * 1e3, 3),
                 core::Table::pct(core::relative_deviation(fluid_fct, pkt_fct)),
                 core::Table::num(fluid_wall, 3), "hours (SimAI, Sec. 5)"});

  // Seer: calibrate the network efficiency against the packet simulator
  // (the self-correction loop), then evaluate the closed form.
  auto truth = seer::TestbedEfficiency();
  seer::Calibrator calib;
  // One measured point per probe size: run tiny packet experiments.
  for (core::Bytes sz : {256ull << 10, 1ull << 20, 4ull << 20, 16ull << 20, 64ull << 20}) {
    auto fp = make_fabric();
    pkt::PacketSim probe(fp);
    auto [fct, wall] = timed_run(probe, ring_step(fp, 4, sz));
    (void)wall;
    double achieved = static_cast<double>(sz) * 8.0 / fct;
    calib.add_network_sample(static_cast<double>(sz), achieved / core::gbps(200.0));
  }
  auto corrected = std::make_shared<seer::CalibratedEfficiency>(calib.fit(3));
  seer::CommEnv env;
  env.nic_bw = core::gbps(200.0);  // one ring port
  seer::CostModel model(seer::GpuSpec::h100(), env, corrected);
  auto w0 = std::chrono::steady_clock::now();
  double seer_fct = model.comm_time(seer::CommKind::SendRecv, static_cast<double>(chunk),
                                    2, false);
  auto w1 = std::chrono::steady_clock::now();
  double seer_wall = std::chrono::duration<double>(w1 - w0).count();
  table.add_row({"Seer (calibrated)", core::Table::num(seer_fct * 1e3, 3),
                 core::Table::pct(core::relative_deviation(seer_fct, pkt_fct)),
                 core::Table::num(seer_wall, 6), "seconds (Sec. 4.3)"});
  table.print();

  std::printf("\nPackets simulated: %llu (%llu delivered, %llu ECN marks)\n",
              static_cast<unsigned long long>(psim.stats().packets_sent),
              static_cast<unsigned long long>(psim.stats().packets_delivered),
              static_cast<unsigned long long>(psim.stats().ecn_marks));
  std::printf("The per-event cost of packet fidelity is what makes Seer's\n"
              "operator-granular, measurement-corrected closed forms the only\n"
              "option that answers 'within seconds' at 512K-GPU scale.\n");
  (void)truth;
  return 0;
}
