// Table 1: the computation, memory-access and communication operators
// Seer uses for LLaMA-3, grouped by model section, with their types —
// generated from the dense template (forward pass, pp > 1 so PP ops
// appear, as in the paper's table).
#include <cstdio>

#include "core/table.h"
#include "seer/templates.h"

using namespace astral;

int main() {
  seer::WorkloadShape shape;
  shape.phase = seer::Phase::Prefill;  // the table lists forward operators
  parallel::ParallelismConfig cfg{.tp = 8, .dp = 1, .pp = 4, .ep = 1};
  shape.include_logit = true;
  auto graph = seer::build_graph(seer::ModelSpec::llama3_70b(), cfg, shape);

  core::print_banner("Table 1 - Seer operators for LLaMA-3");
  core::Table table({"section", "operator", "type"});
  for (const auto& row : seer::op_inventory(graph)) {
    table.add_row({row.section, row.name, row.type});
  }
  table.print();

  std::printf("\nGraph: %zu operator instances over %d layers per stage;"
              " total %.1f TFLOP, %.1f GB HBM, %.2f GB comm per microbatch.\n",
              graph.ops.size(), seer::ModelSpec::llama3_70b().layers / cfg.pp,
              graph.total_flops() / 1e12, graph.total_mem_bytes() / 1e9,
              graph.total_comm_bytes() / 1e9);

  // Round-trip through the JSON template format (the handcraft-extension
  // path of Section 4.3).
  auto json = graph.to_json();
  auto parsed = seer::OpGraph::from_json(json);
  std::printf("JSON template round-trip: %s (%zu ops)\n",
              parsed && parsed->ops.size() == graph.ops.size() ? "OK" : "MISMATCH",
              parsed ? parsed->ops.size() : 0);
  return 0;
}
