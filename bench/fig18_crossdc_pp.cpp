// Fig. 18 (Appendix B): training performance with PP traffic across
// datacenters as the intra-DC : cross-DC bandwidth oversubscription
// grows. Paper: 8:1 does not affect performance; 32:1 costs ~4.6%.
#include <cstdio>

#include "core/table.h"
#include "net/fluid_sim.h"
#include "workload/trainer.h"

using namespace astral;

int main() {
  auto run = [&](double oversub, seer::CrossDcDim dim) {
    workload::TrainingSetup s;
    s.model = seer::ModelSpec::llama3_405b();
    s.parallel = {.tp = 8, .dp = 8, .pp = 16, .ep = 1};
    s.global_batch = 512;
    s.seq_len = 4096;
    s.eff = std::make_shared<seer::TestbedEfficiency>();
    s.cross_dc = dim;
    s.env.crossdc_oversub = oversub;
    s.env.crossdc_rtt = core::msec(3.0);
    return workload::Trainer(s).forecast_iteration().iteration_time;
  };

  double base = run(1.0, seer::CrossDcDim::None);

  core::print_banner("Fig. 18 - Training performance, PP traffic across DCs");
  core::Table table({"oversub", "iteration (s)", "degradation", "paper"});
  for (double oversub : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    double t = run(oversub, seer::CrossDcDim::PP);
    const char* paper = oversub <= 8.0   ? "~0%"
                        : oversub == 32.0 ? "4.6%"
                                          : "";
    table.add_row({core::Table::num(oversub, 0) + ":1", core::Table::num(t, 3),
                   core::Table::pct(t / base - 1.0), paper});
  }
  table.print();
  std::printf("\nLong-haul fiber at ~300 km costs ~250K$/yr (Appendix B), so the"
              " knee of this curve sets the fiber purchase.\n");

  // Network-level cross-check on an actual twin-DC fabric: all DP ranks'
  // PP-boundary transfers cross the long haul at once; the per-flow
  // bandwidth they achieve is what the Seer analytic above consumes.
  core::print_banner("Twin-DC fabric: concurrent PP-boundary transfers");
  core::Table net_table({"oversub", "per-flow bw (Gbps)", "vs intra-DC"});
  for (double oversub : {1.0, 8.0, 32.0}) {
    topo::FabricParams fp;
    fp.rails = 8;
    fp.hosts_per_block = 8;
    fp.blocks_per_pod = 2;
    fp.pods = 1;
    fp.datacenters = 2;
    fp.crossdc_oversub = oversub;
    topo::Fabric fabric(fp);
    net::FluidSim sim(fabric);
    int per_dc = fabric.host_count() / 2;
    std::vector<net::FlowId> ids;
    for (int h = 0; h < per_dc; ++h) {
      net::FlowSpec spec;
      spec.src_host = fabric.topo().hosts()[static_cast<std::size_t>(h)];
      spec.dst_host = fabric.topo().hosts()[static_cast<std::size_t>(h + per_dc)];
      spec.src_rail = 0;
      spec.dst_rail = 0;
      spec.size = 64ull << 20;
      spec.tag = static_cast<std::uint64_t>(h);
      ids.push_back(sim.inject(spec));
    }
    sim.run();
    double worst = 0.0;
    for (auto id : ids) worst = std::max(worst, sim.flow(id).finish);
    double per_flow = (64.0 * (1 << 20)) * 8.0 / worst;
    net_table.add_row({core::Table::num(oversub, 0) + ":1",
                       core::Table::num(core::to_gbps(per_flow), 1),
                       core::Table::pct(per_flow / core::gbps(200.0))});
  }
  net_table.print();
  return 0;
}
