// Gray-routing benchmark: the cost of watching link health. Measures
// (a) WcmpController::observe throughput (the per-control-tick hot
// path: every watched link, every iteration), (b) weighted-rebalance
// latency over a ring's flow specs with a derated link in play, (c) one
// campaign-shaped gray run under the damped WCMP controller, and (d)
// the do-no-harm check — a clean run with the controller armed must
// produce the identical availability ledger to the legacy engine.
// Writes BENCH_gray.json (path = argv[1], default ./BENCH_gray.json).
// Exit status mirrors the acceptance checks: observe >= 1M obs/s,
// rebalance >= 100/s, zero oscillation on the gray run, ledger identity
// on the clean pair.
#include <chrono>
#include <cstdio>
#include <string>

#include "monitor/cluster_runtime.h"
#include "net/wcmp.h"
#include "topo/fabric.h"

namespace {

using namespace astral;
using Clock = std::chrono::steady_clock;

topo::FabricParams bench_params() {
  topo::FabricParams p;
  p.rails = 2;
  p.hosts_per_block = 4;
  p.blocks_per_pod = 2;
  p.pods = 2;
  p.dual_tor = true;
  return p;
}

monitor::JobConfig gray_job() {
  monitor::JobConfig job;
  job.hosts = 8;
  job.iterations = 10;
  job.compute_time = 0.005;
  job.comm_bytes = 64ull * 1024 * 1024;
  job.recovery.enabled = true;
  return job;
}

double wall_ms(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_gray.json";
  if (argc > 1) out_path = argv[1];

  topo::Fabric fabric(bench_params());
  net::FluidSim sim(fabric);

  // (a) observe(): 1M health observations over 64 links with an
  // adversarial flapping fraction pattern (worst case for the damping
  // arithmetic: onsets, decay, and state churn all exercised).
  constexpr std::uint64_t kObs = 1'000'000;
  constexpr topo::LinkId kLinks = 64;
  double obs_per_sec = 0.0;
  {
    net::WcmpController wcmp(sim);
    auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < kObs; ++i) {
      topo::LinkId l = static_cast<topo::LinkId>(i % kLinks);
      if (l == 0) wcmp.tick();
      wcmp.observe(l, (i / kLinks) % 2 == 0 ? 0.3 : 1.0);
    }
    obs_per_sec = static_cast<double>(kObs) / (wall_ms(t0) / 1e3);
  }

  // (b) rebalance(): ring-shaped spec set with one link derated hard,
  // so every pass scores the widened candidate sets.
  constexpr int kRebalances = 200;
  double rebalance_per_sec = 0.0;
  {
    net::WcmpController wcmp(sim);
    monitor::JobConfig job = gray_job();
    monitor::ClusterRuntime rt(fabric, job, 1);
    std::vector<net::FlowSpec> ring;
    for (int i = 0; i < job.hosts; ++i) {
      net::FlowSpec s;
      auto hosts = rt.job_hosts();
      s.src_host = hosts[static_cast<std::size_t>(i)];
      s.dst_host = hosts[static_cast<std::size_t>((i + 1) % job.hosts)];
      s.size = job.comm_bytes;
      ring.push_back(s);
    }
    auto path = sim.predict_path(ring[0]);
    if (path && path->size() > 1) {
      wcmp.tick();
      wcmp.observe((*path)[1], 0.2);
    }
    auto t0 = Clock::now();
    for (int i = 0; i < kRebalances; ++i) {
      auto specs = ring;
      wcmp.rebalance(specs);
    }
    rebalance_per_sec = kRebalances / (wall_ms(t0) / 1e3);
  }

  // (c) one campaign-shaped gray run: flapper + partial degrade under
  // the damped controller.
  monitor::RunOutcome gray;
  double gray_run_ms = 0.0;
  {
    monitor::JobConfig job = gray_job();
    job.gray.mode = monitor::GrayRoutingConfig::Mode::Wcmp;
    monitor::ClusterRuntime rt(fabric, job, 7);
    monitor::FaultSchedule s;
    s.add(rt.make_gray_fault(monitor::GrayKind::FlappingLink, 1, 1));
    s.add(rt.make_gray_fault(monitor::GrayKind::PartialDegrade, 2, 2));
    rt.inject(s);
    auto t0 = Clock::now();
    gray = rt.run();
    gray_run_ms = wall_ms(t0);
  }

  // (d) do-no-harm: clean run, legacy engine vs. armed-but-idle WCMP.
  monitor::RunOutcome off, wc;
  {
    monitor::ClusterRuntime rt(fabric, gray_job(), 7);
    off = rt.run();
  }
  {
    monitor::JobConfig job = gray_job();
    job.gray.mode = monitor::GrayRoutingConfig::Mode::Wcmp;
    monitor::ClusterRuntime rt(fabric, job, 7);
    wc = rt.run();
  }
  bool clean_identical = off.makespan == wc.makespan &&
                         off.goodput == wc.goodput &&
                         off.downtime == wc.downtime && wc.derates == 0;

  std::printf("wcmp observe:    %12.0f obs/s (%llu observations)\n",
              obs_per_sec, static_cast<unsigned long long>(kObs));
  std::printf("wcmp rebalance:  %12.0f rebalances/s (%d-flow ring)\n",
              rebalance_per_sec, gray_job().hosts);
  std::printf("gray run:        %8.1f ms wall, goodput %.3f, %d derates, "
              "%d oscillations\n",
              gray_run_ms, gray.goodput, gray.derates, gray.oscillations);
  std::printf("clean identity:  %s\n", clean_identical ? "ok" : "DIVERGED");

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"gray_routing\",\n");
  std::fprintf(f,
               "  \"workload\": \"1M flap observations over 64 links; %d "
               "weighted rebalances of an 8-flow ring; campaign-shaped gray "
               "run on a 16-host dual-ToR fabric\",\n",
               kRebalances);
  std::fprintf(f, "  \"points\": {\n");
  std::fprintf(f, "    \"observe_per_sec\": %.0f,\n", obs_per_sec);
  std::fprintf(f, "    \"rebalance_per_sec\": %.0f,\n", rebalance_per_sec);
  std::fprintf(f, "    \"gray_run_wall_ms\": %.2f,\n", gray_run_ms);
  std::fprintf(f, "    \"gray_run_goodput\": %.4f,\n", gray.goodput);
  std::fprintf(f, "    \"gray_run_derates\": %d,\n", gray.derates);
  std::fprintf(f, "    \"gray_run_oscillations\": %d\n", gray.oscillations);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"criteria\": {\n");
  std::fprintf(f, "    \"observe_per_sec_required\": 1000000,\n");
  std::fprintf(f, "    \"rebalance_per_sec_required\": 100,\n");
  std::fprintf(f, "    \"oscillations_required\": 0,\n");
  std::fprintf(f, "    \"clean_ledger_identical\": %s\n",
               clean_identical ? "true" : "false");
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  const bool ok = obs_per_sec >= 1e6 && rebalance_per_sec >= 100.0 &&
                  gray.oscillations == 0 && gray.completed && clean_identical;
  return ok ? 0 : 2;
}
