// Ablation (P3, §2.1): dual-ToR reliability. Each NIC port lands on a
// different ToR; when one ToR (or the optical modules toward it) dies,
// traffic survives on the sibling plane at reduced bandwidth. Single-ToR
// wiring loses connectivity outright — IBM's and Alibaba's motivation,
// adopted by Astral.
#include <cstdio>

#include "core/table.h"
#include "net/fluid_sim.h"

using namespace astral;

namespace {

topo::FabricParams params_for(bool dual) {
  topo::FabricParams p;
  p.rails = 4;
  p.hosts_per_block = 8;
  p.blocks_per_pod = 4;
  p.pods = 1;
  p.dual_tor = dual;
  return p;
}

struct Outcome {
  double healthy_gbps = 0.0;
  double after_failure_gbps = 0.0;  ///< 0 = unreachable.
  int flows_rerouted = 0;
};

Outcome run(bool dual) {
  topo::Fabric fabric(params_for(dual));
  auto& topo = fabric.topo();

  auto measure = [&](net::FluidSim& sim) {
    // Same-rail permutation: every host's rail-0 GPU to the next block.
    std::vector<net::FlowId> ids;
    core::Seconds t0 = sim.now();
    auto hosts = topo.hosts();
    for (std::size_t h = 0; h < hosts.size(); ++h) {
      net::FlowSpec s;
      s.src_host = hosts[h];
      s.dst_host = hosts[(h + 8) % hosts.size()];
      s.src_rail = 0;
      s.dst_rail = 0;
      s.size = 32ull << 20;
      s.tag = h;
      ids.push_back(sim.inject(s));
    }
    sim.run_watch(ids, sim.now() + 10.0);
    int done = 0;
    double worst = 1e18;
    for (net::FlowId id : ids) {
      const auto& st = sim.flow(id);
      if (st.admitted && st.finish >= 0) {
        ++done;
        worst = std::min(worst, st.finish - t0);
      }
    }
    if (done < static_cast<int>(ids.size())) return 0.0;  // some flows dead
    double bits = (32.0 * (1 << 20)) * 8.0;
    double slowest = 0.0;
    for (net::FlowId id : ids) slowest = std::max(slowest, sim.flow(id).finish - t0);
    return bits / slowest;
  };

  Outcome out;
  {
    net::FluidSim sim(fabric);
    out.healthy_gbps = core::to_gbps(measure(sim));
  }
  // Kill ToR (block 0, rail 0, side 0): take down all its links.
  topo::NodeId dead_tor = fabric.tor_at(0, 0, 0, 0);
  std::vector<topo::LinkId> downed;
  for (const auto& link : topo.links()) {
    if (link.src == dead_tor || link.dst == dead_tor) downed.push_back(link.id);
  }
  for (auto l : downed) topo.set_link_state(l, false);
  {
    net::FluidSim sim(fabric);
    out.after_failure_gbps = core::to_gbps(measure(sim));
  }
  for (auto l : downed) topo.set_link_state(l, true);
  return out;
}

}  // namespace

int main() {
  core::print_banner("Ablation - dual-ToR reliability (P3) under a ToR failure");
  core::Table table({"wiring", "healthy per-flow bw", "after ToR death", "job survives"});
  for (bool dual : {true, false}) {
    auto o = run(dual);
    table.add_row({dual ? "dual-ToR (Astral)" : "single-ToR",
                   core::Table::num(o.healthy_gbps, 1) + " Gbps",
                   o.after_failure_gbps > 0
                       ? core::Table::num(o.after_failure_gbps, 1) + " Gbps"
                       : "unreachable",
                   o.after_failure_gbps > 0 ? "yes" : "NO"});
  }
  table.print();
  std::printf("\nWith dual-ToR wiring the failure halves the affected hosts' rail\n"
              "bandwidth but the job proceeds; single-ToR wiring partitions the\n"
              "rail and the job fail-stops (the optical-module risk of Section 2).\n");
  return 0;
}
