// Ablation (Appendix A): why Astral keeps per-flow ECMP. Three schemes on
// the same same-rail permutation workload:
//   plain ECMP            — hash-pinned paths (polarization risk)
//   ECMP + controller     — the paper's source-port reassignment
//   8-way packet spray    — idealized per-packet balancing (upper bound),
//                           modeled as 8 subflows per message on distinct
//                           hashed paths
// Plus the two operational arguments: the blast radius of a link failure
// (flows affected) and path determinism (can the diagnosis tools replay
// the path of a flow?).
#include <cstdio>
#include <map>
#include <set>

#include "core/table.h"
#include "net/controller.h"

using namespace astral;

namespace {

topo::Fabric make_fabric() {
  topo::FabricParams p;
  p.rails = 4;
  p.hosts_per_block = 16;
  p.blocks_per_pod = 8;
  p.pods = 1;
  return topo::Fabric(p);
}

std::vector<net::FlowSpec> permutation(const topo::Fabric& f, core::Bytes size) {
  std::vector<net::FlowSpec> specs;
  auto hosts = f.topo().hosts();
  for (std::size_t h = 0; h < hosts.size(); ++h) {
    net::FlowSpec s;
    s.src_host = hosts[h];
    s.dst_host = hosts[(h + 16) % hosts.size()];
    s.src_rail = 0;
    s.dst_rail = 0;
    s.size = size;
    s.tag = h;
    specs.push_back(s);
  }
  return specs;
}

core::Seconds run_round(topo::Fabric& f, const std::vector<net::FlowSpec>& specs) {
  net::FluidSim sim(f);
  core::Seconds t0 = sim.now();
  for (const auto& s : specs) sim.inject(s);
  sim.run();
  return sim.now() - t0;
}

std::vector<net::FlowSpec> sprayed(const std::vector<net::FlowSpec>& specs, int ways) {
  std::vector<net::FlowSpec> out;
  for (const auto& s : specs) {
    for (int w = 0; w < ways; ++w) {
      net::FlowSpec sub = s;
      sub.size = s.size / static_cast<core::Bytes>(ways);
      sub.src_port = static_cast<std::uint16_t>(10000 + s.tag * 131 + w * 977);
      sub.tag = s.tag * 100 + static_cast<std::uint64_t>(w);
      out.push_back(sub);
    }
  }
  return out;
}

int blast_radius(topo::Fabric& f, const std::vector<net::FlowSpec>& specs) {
  // Flows whose path crosses the most-loaded ToR->Agg link.
  net::FluidSim sim(f);
  std::map<topo::LinkId, std::set<std::uint64_t>> flows_on;
  for (const auto& s : specs) {
    if (auto p = sim.predict_path(s)) {
      for (auto l : *p) flows_on[l].insert(s.tag / 100 == 0 ? s.tag : s.tag / 100);
    }
  }
  std::size_t worst = 0;
  for (const auto& [l, flows] : flows_on) {
    const auto& link = f.topo().link(l);
    if (f.topo().node(link.src).kind == topo::NodeKind::Tor &&
        f.topo().node(link.dst).kind == topo::NodeKind::Agg) {
      worst = std::max(worst, flows.size());
    }
  }
  return static_cast<int>(worst);
}

}  // namespace

int main() {
  auto fabric = make_fabric();
  const core::Bytes size = 64ull << 20;
  auto base = permutation(fabric, size);

  // Controller-optimized variant.
  auto optimized = base;
  {
    net::FluidSim sim(fabric);
    net::EcmpController ctl(sim);
    for (int i = 0; i < 3; ++i) ctl.rebalance(optimized);
  }
  auto spray = sprayed(base, 8);

  core::print_banner("Appendix A - load balancing schemes, same-rail permutation");
  core::Table table({"scheme", "round time (ms)", "vs spray", "link-failure blast radius",
                     "deterministic path"});
  double t_plain = run_round(fabric, base);
  double t_opt = run_round(fabric, optimized);
  double t_spray = run_round(fabric, spray);
  auto row = [&](const char* name, double t, int blast, const char* det) {
    table.add_row({name, core::Table::num(t * 1e3, 2),
                   core::Table::pct(t / t_spray - 1.0), std::to_string(blast), det});
  };
  row("per-flow ECMP", t_plain, blast_radius(fabric, base), "yes");
  row("ECMP + src-port controller", t_opt, blast_radius(fabric, optimized), "yes");
  row("8-way packet spray (ideal)", t_spray, blast_radius(fabric, spray), "no");
  table.print();

  std::printf(
      "\nThe controller closes most of the gap to ideal spraying while keeping\n"
      "per-flow paths: sFlow/INT can replay any flow's route (fault diagnosis\n"
      "depends on it), legacy NICs keep in-order delivery, and a link failure\n"
      "touches only the flows pinned to it rather than every flow in flight\n"
      "(Appendix A's three arguments).\n");
  return 0;
}
