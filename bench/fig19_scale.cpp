// Fig. 19 (Appendix): training performance at scale. Weak scaling of the
// Hunyuan-MoE model from 1K to 8K GPUs on the same-rail architecture.
// Paper: efficiency improvement consistent with the GPU-scale expansion,
// only 0.6% loss at 8K GPUs.
#include <cstdio>

#include "core/table.h"
#include "workload/trainer.h"

using namespace astral;

int main() {
  auto forecast = [&](int dp, int batch) {
    workload::TrainingSetup s;
    s.model = seer::ModelSpec::hunyuan_moe();
    s.parallel = {.tp = 8, .dp = dp, .pp = 4, .ep = 8};
    s.global_batch = batch;
    s.seq_len = 4096;
    s.eff = std::make_shared<seer::TestbedEfficiency>();
    return workload::Trainer(s).forecast_iteration();
  };

  core::print_banner("Fig. 19 - Hunyuan-MoE weak scaling (same-rail fabric)");
  core::Table table({"GPUs", "dp", "tokens/s", "per-GPU tokens/s", "efficiency",
                     "paper"});
  auto base = forecast(32, 256);
  int base_gpus = 8 * 32 * 4;
  for (int dp : {32, 64, 128, 256}) {
    int gpus = 8 * dp * 4;
    int batch = 256 * dp / 32;  // constant work per GPU
    auto f = forecast(dp, batch);
    double eff = workload::scaling_efficiency(base, base_gpus, 256, f, gpus, batch);
    const char* paper = gpus == 8192 ? "-0.6% at 8K" : "";
    table.add_row({std::to_string(gpus), std::to_string(dp),
                   core::Table::num(f.tokens_per_sec, 0),
                   core::Table::num(f.tokens_per_sec / gpus, 1), core::Table::pct(eff),
                   paper});
  }
  table.print();
  std::printf("\nThe same-rail tier-2 aggregation keeps DP/EP collectives on\n"
              "same-rail minimal-hop paths, so per-GPU throughput holds as the\n"
              "job grows (Section 5 production statistics).\n");
  return 0;
}
