// Streaming-diagnosis ingest benchmark: a synthetic telemetry stream
// (QP-rate samples dominant, link counters with utilization, nccl
// timeline events, INT probes, syslog — roughly the per-record mix a
// faulted campaign produces) is pushed through a TelemetryStore three
// ways: store alone, store with a subscribed StreamAnalyzer, and store
// + analyzer with a live per-frame dashboard publish. Per point it
// records sustained ingest records/sec and the analyzer's rollup
// footprint at 25% / 50% / 100% of the stream — the bounded-memory
// contract says the footprint plateaus (ratio 100%/25% == 1.0) while
// the store keeps growing. Writes BENCH_monitor.json (path = argv[1],
// default ./BENCH_monitor.json). Exit status mirrors the acceptance
// checks: sustained store+analyzer ingest >= 200k records/s and
// plateau_ratio <= 1.001.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "core/rng.h"
#include "monitor/stream_analyzer.h"
#include "obs/metrics.h"
#include "topo/fabric.h"

namespace {

using namespace astral;
using Clock = std::chrono::steady_clock;

topo::FabricParams bench_params() {
  topo::FabricParams p;
  p.rails = 2;
  p.hosts_per_block = 8;
  p.blocks_per_pod = 2;
  p.pods = 4;  // 64 hosts, four dashboard rows
  return p;
}

/// Deterministic synthetic record mix per index: ~60% QP rates, ~25%
/// link counters, ~10% timeline, ~4% INT probes, ~1% syslog. Healthy
/// (no stall / slow / fatal) so the measured hot path is pure rollup
/// ingestion, not batch re-diagnosis.
struct StreamGen {
  topo::Fabric& fabric;
  core::Rng rng;
  int hosts;
  std::size_t links;

  StreamGen(topo::Fabric& f, std::uint64_t seed)
      : fabric(f), rng(seed), hosts(static_cast<int>(f.topo().hosts().size())),
        links(f.topo().link_count()) {}

  void emit(monitor::TelemetryStore& store, std::uint64_t i) {
    double t = 1e-5 * static_cast<double>(i);
    std::uint64_t k = rng.next_u64() % 100;
    if (k < 60) {
      monitor::QpRateSample s;
      s.t = t;
      s.qp = rng.next_u64() % static_cast<std::uint64_t>(hosts);
      s.rate_bps = 1e9 + static_cast<double>(rng.next_u64() % 1000) * 1e8;
      store.record(s);
    } else if (k < 85) {
      monitor::LinkCounterSample s;
      s.t = t;
      s.link = static_cast<topo::LinkId>(rng.next_u64() % links);
      s.ecn_marks = rng.next_u64() % 4;
      s.pfc_pauses = rng.next_u64() % 2;
      s.utilization = 0.3 + static_cast<double>(rng.next_u64() % 60) / 100.0;
      store.record(s);
    } else if (k < 95) {
      monitor::NcclTimelineEvent ev;
      ev.t = t;
      ev.host_rank = static_cast<int>(rng.next_u64() % 8);
      ev.iteration = static_cast<int>(i / 10000);
      ev.compute_time = 0.05;
      ev.comm_time = 0.01;
      store.record(ev);
    } else if (k < 99) {
      monitor::IntProbeResult r;
      r.t = t;
      topo::LinkId l = static_cast<topo::LinkId>(rng.next_u64() % links);
      r.path = {l};
      r.hop_latency = {1e-6 + static_cast<double>(rng.next_u64() % 10) * 1e-7};
      store.record(r);
    } else {
      monitor::SyslogEvent ev;
      ev.t = t;
      ev.node = fabric.topo().hosts()[rng.next_u64() %
                                      static_cast<std::uint64_t>(hosts)];
      ev.host_rank = static_cast<int>(rng.next_u64() % 8);
      ev.severity = "warn";
      ev.message = "link flap notice";
      store.record(ev);
    }
  }
};

struct Point {
  const char* mode = "";
  std::uint64_t records = 0;
  double wall_ms = 0.0;
  double records_per_sec = 0.0;
  std::size_t footprint_25 = 0;
  std::size_t footprint_50 = 0;
  std::size_t footprint_100 = 0;
  double plateau_ratio = 0.0;
};

Point measure(const char* mode, std::uint64_t n, bool attach, bool frames) {
  topo::Fabric fabric(bench_params());
  monitor::TelemetryStore store;
  monitor::StreamAnalyzer stream(fabric.topo());
  obs::Metrics metrics;
  std::uint64_t published = 0;
  if (frames) {
    stream.set_frame_callback(0.05, [&](core::Seconds) {
      stream.publish(metrics);
      ++published;
    });
  }
  if (attach) {
    monitor::StreamAnalyzer::JobContext ctx;
    ctx.job_id = 0;
    ctx.expected_compute = 0.05;
    ctx.expected_comm = 0.01;
    stream.subscribe(store, std::move(ctx));
  }
  // Register the QPs the rate samples reference (job setup cost, not
  // part of the measured stream).
  for (int h = 0; h < static_cast<int>(fabric.topo().hosts().size()); ++h) {
    monitor::QpMeta meta;
    meta.qp = static_cast<monitor::QpId>(h);
    meta.src_host_rank = h % 8;
    meta.src_host = fabric.topo().hosts()[static_cast<std::size_t>(h)];
    store.register_qp(meta);
  }

  StreamGen gen(fabric, /*seed=*/42);
  Point pt;
  pt.mode = mode;
  pt.records = n;
  auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < n; ++i) {
    gen.emit(store, i);
    if (attach) {
      if (i + 1 == n / 4) pt.footprint_25 = stream.footprint_bytes();
      if (i + 1 == n / 2) pt.footprint_50 = stream.footprint_bytes();
    }
  }
  pt.wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  pt.records_per_sec = static_cast<double>(n) / (pt.wall_ms / 1e3);
  if (attach) {
    pt.footprint_100 = stream.footprint_bytes();
    pt.plateau_ratio = pt.footprint_25 > 0
                           ? static_cast<double>(pt.footprint_100) /
                                 static_cast<double>(pt.footprint_25)
                           : 0.0;
    stream.unsubscribe(store);
  }
  if (frames && published == 0) pt.records_per_sec = 0.0;  // gate trips
  return pt;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_monitor.json";
  if (argc > 1) out_path = argv[1];
  std::uint64_t n = 2'000'000;
  if (argc > 2) n = static_cast<std::uint64_t>(std::atoll(argv[2]));

  std::vector<Point> points;
  points.push_back(measure("store_only", n, false, false));
  points.push_back(measure("store_plus_analyzer", n, true, false));
  points.push_back(measure("store_analyzer_dashboard", n, true, true));
  for (const Point& p : points) {
    std::printf("%-26s  %9llu rec  %8.1f ms  %10.0f rec/s", p.mode,
                static_cast<unsigned long long>(p.records), p.wall_ms,
                p.records_per_sec);
    if (p.footprint_100 > 0) {
      std::printf("  footprint 25/50/100%%: %zu/%zu/%zu B (ratio %.4f)",
                  p.footprint_25, p.footprint_50, p.footprint_100,
                  p.plateau_ratio);
    }
    std::printf("\n");
  }

  const Point& attached = points[1];
  double overhead = points[0].records_per_sec > 0.0
                        ? points[0].records_per_sec / attached.records_per_sec
                        : 0.0;
  double worst_ratio = 0.0;
  for (const Point& p : points) {
    if (p.plateau_ratio > worst_ratio) worst_ratio = p.plateau_ratio;
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"streaming_diagnosis_ingest\",\n");
  std::fprintf(f,
               "  \"workload\": \"%llu-record synthetic mix (60%% QP rates, "
               "25%% link counters, 10%% timeline, 4%% INT, 1%% syslog) on a "
               "64-host 4-pod fabric\",\n",
               static_cast<unsigned long long>(n));
  std::fprintf(f, "  \"points\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    std::fprintf(f,
                 "    {\"mode\": \"%s\", \"records\": %llu, \"wall_ms\": %.2f, "
                 "\"records_per_sec\": %.0f, \"footprint_25_bytes\": %zu, "
                 "\"footprint_50_bytes\": %zu, \"footprint_100_bytes\": %zu, "
                 "\"plateau_ratio\": %.6f}%s\n",
                 p.mode, static_cast<unsigned long long>(p.records), p.wall_ms,
                 p.records_per_sec, p.footprint_25, p.footprint_50,
                 p.footprint_100, p.plateau_ratio,
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"criteria\": {\n");
  std::fprintf(f, "    \"records_per_sec\": %.0f,\n", attached.records_per_sec);
  std::fprintf(f, "    \"records_per_sec_required\": 200000,\n");
  std::fprintf(f, "    \"plateau_ratio\": %.6f,\n", worst_ratio);
  std::fprintf(f, "    \"plateau_ratio_required\": 1.001,\n");
  std::fprintf(f, "    \"overhead_vs_store_only\": %.3f\n", overhead);
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s (%.0f rec/s attached, plateau ratio %.4f, %.2fx "
              "overhead vs store-only)\n",
              out_path.c_str(), attached.records_per_sec, worst_ratio,
              overhead);

  const bool ok =
      attached.records_per_sec >= 200000.0 && worst_ratio <= 1.001 &&
      points[2].records_per_sec > 0.0;
  return ok ? 0 : 2;
}
