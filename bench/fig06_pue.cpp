// Fig. 6: evolution of PUE in production. The Astral fleet migrates
// gradually over 8 quarters; the blended PUE falls from the traditional
// baseline to the Astral level. Paper: average PUE improved by 16.34%.
#include <cstdio>

#include "core/table.h"
#include "power/pue.h"

using namespace astral;

int main() {
  const double capacity = 120e6;  // 120 MW facility
  const double it_load = 80e6;
  auto trad = power::FacilityConfig::traditional(capacity);
  auto astral = power::FacilityConfig::astral(capacity);

  core::print_banner("Fig. 6 - Evolution of PUE in production");
  core::Table table({"quarter", "migrated", "traditional PUE", "Astral fleet PUE",
                     "improvement"});
  double p_trad = power::compute_pue(trad, it_load);
  double sum_improvement = 0.0;
  // 18 months of gradual deployment = 6 quarters, front-loaded: the bulk
  // of new capacity lands on Astral early in the programme.
  const int quarters = 6;
  const double ramp[] = {0.25, 0.50, 0.70, 0.85, 0.95, 1.00};
  for (int q = 1; q <= quarters; ++q) {
    double migrated = ramp[q - 1];
    double blended = power::blended_pue(trad, astral, migrated, it_load);
    double improvement = (p_trad - blended) / p_trad;
    sum_improvement += improvement;
    table.add_row({"Q" + std::to_string(q), core::Table::pct(migrated, 0),
                   core::Table::num(p_trad, 3), core::Table::num(blended, 3),
                   core::Table::pct(improvement)});
  }
  table.print();

  double p_astral = power::compute_pue(astral, it_load);
  std::printf("\nTraditional PUE: %.3f   Astral PUE: %.3f\n", p_trad, p_astral);
  std::printf("Average improvement over the rollout: %.2f%%  (paper: 16.34%%)\n",
              sum_improvement / quarters * 100.0);
  std::printf("Fully-migrated improvement: %.2f%%\n", (p_trad - p_astral) / p_trad * 100.0);
  return 0;
}
