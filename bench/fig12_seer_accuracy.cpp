// Fig. 12: timeline comparison between Astral Seer foresight and the
// testbed result. Paper: 0.3% deviation for the Hunyuan (dense-path) and
// other dense models (LLaMA-2/3); MoE models deviate more due to
// unpredictable expert selection; the uncorrected basic model deviates
// >5% when communication becomes the bottleneck (Section 5).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>

#include "core/table.h"
#include "workload/trainer.h"

using namespace astral;

namespace {

struct ModelCase {
  seer::ModelSpec model;
  parallel::ParallelismConfig par;
  /// Expert-selection imbalance the testbed experiences but Seer cannot
  /// know in advance (MoE only).
  double moe_imbalance = 1.0;
};

workload::TrainingSetup setup_for(const ModelCase& c,
                                  std::shared_ptr<const seer::EfficiencyModel> eff) {
  workload::TrainingSetup s;
  s.model = c.model;
  s.parallel = c.par;
  s.global_batch = 256;
  s.seq_len = 4096;
  s.eff = std::move(eff);
  return s;
}

}  // namespace

int main() {
  // "Production" truth the testbed runs with.
  auto testbed_eff = std::make_shared<seer::TestbedEfficiency>();
  // Seer calibrates by probing the testbed offline (NCCL-test sweeps).
  auto calibrated =
      std::make_shared<seer::CalibratedEfficiency>(seer::Calibrator::probe(*testbed_eff).fit());
  auto theoretical = std::make_shared<seer::TheoreticalEfficiency>();

  std::vector<ModelCase> cases = {
      {seer::ModelSpec::hunyuan_moe(), {.tp = 8, .dp = 16, .pp = 4, .ep = 8}, 1.06},
      {seer::ModelSpec::llama2_70b(), {.tp = 8, .dp = 16, .pp = 4, .ep = 1}, 1.0},
      {seer::ModelSpec::llama3_70b(), {.tp = 8, .dp = 16, .pp = 4, .ep = 1}, 1.0},
      {seer::ModelSpec::gpt3_175b(), {.tp = 8, .dp = 8, .pp = 8, .ep = 1}, 1.0},
      // Fine-grained MoE routes tokens over 256 experts: the expert-
      // selection unpredictability is worst here (§4.3 names DeepSeek R1).
      {seer::ModelSpec::deepseek_moe(), {.tp = 8, .dp = 32, .pp = 2, .ep = 32}, 1.09},
  };

  core::print_banner("Fig. 12 - Seer foresight vs testbed iteration time");
  core::Table table({"model", "testbed (s)", "Seer calibrated (s)", "deviation",
                     "basic model dev.", "paper"});
  for (const auto& c : cases) {
    auto testbed = workload::Trainer(setup_for(c, testbed_eff)).forecast_iteration();
    double truth = testbed.iteration_time * c.moe_imbalance;
    auto seer_cal = workload::Trainer(setup_for(c, calibrated)).forecast_iteration();
    auto seer_basic = workload::Trainer(setup_for(c, theoretical)).forecast_iteration();
    double dev_cal = core::relative_deviation(seer_cal.iteration_time, truth);
    double dev_basic = core::relative_deviation(seer_basic.iteration_time, truth);
    const char* paper = c.model.is_moe() ? "higher (MoE)" : "~0.3%";
    table.add_row({c.model.name, core::Table::num(truth, 3),
                   core::Table::num(seer_cal.iteration_time, 3),
                   core::Table::pct(dev_cal), core::Table::pct(dev_basic), paper});
  }
  table.print();

  // Operator-granular timeline of the dense model, forecast vs testbed
  // (the Fig. 12 strip chart, condensed to the slowest operators).
  core::print_banner("Operator timeline: forecast vs testbed (LLaMA-3-70B, 1 microbatch)");
  auto c = cases[2];
  auto mk_timeline = [&](std::shared_ptr<const seer::EfficiencyModel> eff) {
    auto s = setup_for(c, std::move(eff));
    return workload::Trainer(s).forecast_iteration().micro_timeline;
  };
  auto tl_truth = mk_timeline(testbed_eff);
  auto tl_seer = mk_timeline(calibrated);
  core::Table ops({"operator", "testbed (us)", "Seer (us)"});
  std::map<std::string, std::pair<double, double>> per_op;
  for (const auto& ev : tl_truth.events) per_op[ev.name].first += ev.duration() * 1e6;
  for (const auto& ev : tl_seer.events) per_op[ev.name].second += ev.duration() * 1e6;
  std::vector<std::pair<std::string, std::pair<double, double>>> rows(per_op.begin(),
                                                                      per_op.end());
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.second.first > b.second.first; });
  for (std::size_t i = 0; i < std::min<std::size_t>(10, rows.size()); ++i) {
    ops.add_row({rows[i].first, core::Table::num(rows[i].second.first, 1),
                 core::Table::num(rows[i].second.second, 1)});
  }
  ops.print();
  std::printf("micro-timeline makespan deviation: %.2f%%\n",
              seer::timeline_deviation(tl_seer, tl_truth) * 100.0);

  // The efficiency property: a forecast takes milliseconds ("within
  // seconds"), where packet-level simulators need hours to a day.
  auto t0 = std::chrono::steady_clock::now();
  auto f = workload::Trainer(setup_for(cases[0], calibrated)).forecast_iteration();
  auto t1 = std::chrono::steady_clock::now();
  std::printf("\nForecast wall-clock: %.1f ms for a %d-GPU MoE iteration"
              " (ASTRA-sim: ~1 day; SimAI: hours — Section 5)\n",
              std::chrono::duration<double, std::milli>(t1 - t0).count(),
              cases[0].par.world());
  (void)f;
  return 0;
}
