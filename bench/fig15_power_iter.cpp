// Fig. 15: GPU power usage over multiple training and inference
// iterations. Paper: training peaks reach TDP during forward/backward and
// drop in communication; inference peaks in prefill and sits well below
// TDP during decoding.
#include <cstdio>

#include "core/table.h"
#include "power/profile.h"

using namespace astral;

namespace {
void print_trace(const char* title, const std::vector<power::PowerSample>& trace,
                 double tdp, std::size_t rows) {
  core::print_banner(title);
  core::Table table({"t (ms)", "power (W)", "% of TDP"});
  std::size_t stride = std::max<std::size_t>(1, trace.size() / rows);
  for (std::size_t i = 0; i < trace.size(); i += stride) {
    table.add_row({core::Table::num(trace[i].t * 1e3, 0),
                   core::Table::num(trace[i].watts, 0),
                   core::Table::pct(trace[i].watts / tdp, 0)});
  }
  table.print();
  auto s = power::trace_stats(trace);
  std::printf("peak %.0f W (%.0f%% of TDP), mean %.0f W, min %.0f W\n", s.peak_watts,
              s.peak_watts / tdp * 100.0, s.mean_watts, s.min_watts);
}
}  // namespace

int main() {
  power::GpuPowerModel gpu;
  gpu.tdp_watts = 400.0;

  core::Rng rng(7);
  auto train = power::training_power_trace(gpu, power::TrainIterationShape{}, 3, 0.004, rng);
  print_trace("Fig. 15a - GPU power usage for training (3 iterations)", train,
              gpu.tdp_watts, 36);

  core::Rng rng2(8);
  auto infer = power::inference_power_trace(gpu, 0.06, 0.36, 3, 0.004, rng2);
  print_trace("Fig. 15b - GPU power usage for inference (3 requests)", infer,
              gpu.tdp_watts, 36);

  std::printf("\nPeak exceeds TDP -> the distributed HVDC system grants racks an"
              " elastic +30%% above TDP (Section 5).\n");
  return 0;
}
