// Ablation (§2.1 "advantages over other production-ready network
// architectures"): the same 1K-GPU workloads on five fabrics —
//   Astral same-rail  : rail ToRs + same-rail tier-2 aggregation + Core
//   rail-optimized    : rail ToRs, fully-interconnected tier 2 (HPN-like)
//   Clos              : no rail awareness (Meta/ByteDance-like)
//   rail-only         : per-rail islands, no Core (cross-rail via NVLink)
//   ub-mesh           : nD-FullMesh locality fabric (direct ToR mesh,
//                       border switches instead of a Core tier)
// Metrics: same-rail ring step (DP traffic), PXN all-to-all (MoE EP
// traffic), hop counts, and cross-rail reachability.
#include <cstdio>

#include "coll/runner.h"
#include "core/table.h"
#include "parallel/placement.h"

using namespace astral;

namespace {

topo::FabricParams params_for(topo::FabricStyle style) {
  topo::FabricParams p;
  p.style = style;
  p.rails = 8;
  p.hosts_per_block = 16;
  p.blocks_per_pod = 8;
  p.pods = 1;
  return p;
}

struct Metrics {
  double ring_bus_gbps = 0.0;
  double a2a_alg_gbps = 0.0;
  int same_rail_hops = 0;
  bool cross_rail_fabric = false;
};

Metrics measure(topo::FabricStyle style) {
  topo::Fabric fabric(params_for(style));
  net::FluidSim sim(fabric);
  coll::CollectiveRunner runner(sim, {.pxn = true, .sample_rounds = 5});
  auto group = coll::CommGroup{parallel::Placement::packed(fabric, 1024).gpus};

  Metrics m;
  auto ring = runner.all_reduce(group, 512ull << 20);
  m.ring_bus_gbps = core::to_gbps(ring.bus_bw);
  auto a2a = runner.all_to_all(group, 256 * 1024);
  m.a2a_alg_gbps = core::to_gbps(a2a.alg_bw);
  // Same-rail cross-block hop count (rail 0, block 0 -> block 1).
  {
    auto a = fabric.host_at(0, 0, 0);
    auto b = fabric.host_at(0, 1, 0);
    m.same_rail_hops = fabric.topo().distance(a, b);
  }
  m.cross_rail_fabric = fabric.fabric_reachable(0, 9);  // rail 0 -> rail 1, host 1
  return m;
}

}  // namespace

int main() {
  core::print_banner("Ablation - network architectures, 1K GPUs in one pod");
  core::Table table({"architecture", "ring AllReduce bus bw", "PXN all-to-all / GPU",
                     "same-rail hops", "cross-rail via fabric"});
  for (auto style : topo::kAllFabricStyles) {
    auto m = measure(style);
    table.add_row({to_string(style), core::Table::num(m.ring_bus_gbps, 1) + " Gbps",
                   core::Table::num(m.a2a_alg_gbps, 1) + " Gbps",
                   std::to_string(m.same_rail_hops), m.cross_rail_fabric ? "yes" : "no"});
  }
  table.print();
  std::printf(
      "\nPaper claims reproduced: the same-rail tier 2 keeps same-rail traffic on\n"
      "minimal-hop paths (maximizing per-rail GPU counts), unlike full-mesh tier-2\n"
      "designs; rail-only saves the Core tier but loses cross-rail fabric\n"
      "reachability, forcing all-to-all through NVLink forwarding; ub-mesh's\n"
      "direct ToR mesh wins the intra-pod hop count but spreads its bandwidth\n"
      "across all ToR pairs.\n");
  return 0;
}
