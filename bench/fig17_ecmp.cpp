// Fig. 17 (Appendix A): effectiveness of the optimized ECMP scheme — the
// controller reassigns UDP source ports of congested flows using the
// switch hash simulator; per-round ECN counters decrease and stabilize.
#include <cstdio>

#include "core/table.h"
#include "net/controller.h"

using namespace astral;

int main() {
  topo::FabricParams fp;
  fp.rails = 4;
  fp.hosts_per_block = 16;
  fp.blocks_per_pod = 8;
  fp.pods = 1;
  topo::Fabric fabric(fp);
  net::FluidSim sim(fabric);
  net::EcmpController controller(sim);

  // Recurring collective round: same-rail permutation traffic, all hosts
  // to the next block, rail 0 (one collective ring step at scale).
  std::vector<net::FlowSpec> specs;
  int hosts = fabric.host_count();
  for (int h = 0; h < hosts; ++h) {
    net::FlowSpec s;
    s.src_host = fabric.topo().hosts()[static_cast<std::size_t>(h)];
    s.dst_host = fabric.topo().hosts()[static_cast<std::size_t>(
        (h + fp.hosts_per_block) % hosts)];
    s.src_rail = 0;
    s.dst_rail = 0;
    s.size = 32ull * 1024 * 1024;
    s.tag = static_cast<std::uint64_t>(h);
    specs.push_back(s);
  }

  core::print_banner("Fig. 17 - ECN counters across source-port reassignment rounds");
  core::Table table({"round", "ECN marks", "max link load (flows)", "ports reassigned",
                     "round time (ms)"});
  for (int round = 0; round < 8; ++round) {
    sim.reset_stats();
    core::Seconds t0 = sim.now();
    for (auto& s : specs) {
      s.start = sim.now();
      sim.inject(s);
    }
    sim.run();
    std::uint64_t marks = 0;
    for (std::size_t l = 0; l < fabric.topo().link_count(); ++l) {
      marks += sim.link_stats(static_cast<topo::LinkId>(l)).ecn_marks;
    }
    int max_load = controller.max_link_load(specs);
    int moved = controller.rebalance(specs);
    table.add_row({std::to_string(round), std::to_string(marks),
                   std::to_string(max_load), std::to_string(moved),
                   core::Table::num((sim.now() - t0) * 1e3, 2)});
    sim.recycle_finished();
  }
  table.print();
  std::printf("\nPaper: counters decrease and eventually stabilize after multiple"
              " reassignments; reassignment takes effect on the next round of"
              " collectives.\n");
  return 0;
}
