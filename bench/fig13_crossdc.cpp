// Fig. 13: cross-datacenter training efficiency on 1K GPUs. Which
// parallelism dimension's traffic should cross the DCs (paper: PP or DP
// both workable, ZeRO-DP clearly worst), and how far can the cross-DC
// bandwidth be oversubscribed (paper: no significant drop until 16:1).
#include <cstdio>

#include "core/table.h"
#include "workload/trainer.h"

using namespace astral;

namespace {

double efficiency(seer::CrossDcDim dim, seer::DpStrategy dp, double oversub,
                  double baseline) {
  workload::TrainingSetup s;
  s.model = seer::ModelSpec::llama3_70b();
  s.parallel = {.tp = 8, .dp = 16, .pp = 8, .ep = 1};  // 1024 GPUs
  s.global_batch = 512;
  s.seq_len = 4096;
  s.eff = std::make_shared<seer::TestbedEfficiency>();
  s.cross_dc = dim;
  s.dp_strategy = dp;
  s.env.crossdc_oversub = oversub;
  s.env.crossdc_rtt = core::msec(3.0);  // ~300 km of fiber
  double t = workload::Trainer(s).forecast_iteration().iteration_time;
  return baseline / t;
}

}  // namespace

int main() {
  double base_time = 0.0;
  {
    workload::TrainingSetup s;
    s.model = seer::ModelSpec::llama3_70b();
    s.parallel = {.tp = 8, .dp = 16, .pp = 8, .ep = 1};
    s.global_batch = 512;
    s.seq_len = 4096;
    s.eff = std::make_shared<seer::TestbedEfficiency>();
    base_time = workload::Trainer(s).forecast_iteration().iteration_time;
  }

  core::print_banner("Fig. 13 - Cross-DC training efficiency, 1K GPUs (vs single DC)");
  core::Table table({"oversub", "PP across DC", "DP across DC", "ZeRO-DP across DC"});
  for (double oversub : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    table.add_row(
        {core::Table::num(oversub, 0) + ":1",
         core::Table::pct(efficiency(seer::CrossDcDim::PP, seer::DpStrategy::AllReduce,
                                     oversub, base_time)),
         core::Table::pct(efficiency(seer::CrossDcDim::DP, seer::DpStrategy::AllReduce,
                                     oversub, base_time)),
         core::Table::pct(efficiency(seer::CrossDcDim::DP, seer::DpStrategy::Zero3,
                                     oversub, base_time))});
  }
  table.print();
  std::printf("\nPaper: DP can beat PP in some cases (low-frequency, overlappable"
              " traffic); ZeRO-DP is the worst; efficiency holds until ~16:1"
              " oversubscription.\n");
  return 0;
}
