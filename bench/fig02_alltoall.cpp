// Fig. 2: all-to-all collective communication throughput for a 1K-GPU
// job, comparing (a) packed deployment within a single Pod against
// fragmented deployment across 32 Pods of the same shared production
// fabric (paper: -19%..-37%), and (b) the impact of tier-3 bandwidth
// oversubscription (paper: up to -52% on all-to-all; training is less
// affected, with MoE more sensitive than dense).
//
// Mechanisms reproduced: the job uses the optimized ECMP scheme (source
// ports rebalanced by the controller's hash simulator, footnote 1);
// fragmentation pushes its traffic onto 6-hop cross-Pod paths where it
// crosses more ECMP stages and shares Agg/Core links with other tenants'
// background traffic, so hash polarization and queueing bite.
#include <cstdio>
#include <set>
#include <string>

#include "core/rng.h"
#include "core/table.h"
#include "net/controller.h"
#include "parallel/placement.h"
#include "workload/trainer.h"

using namespace astral;

namespace {

topo::FabricParams datacenter(double tier3_oversub) {
  // 32 pods of 1024 GPUs each (scaled-down Astral geometry; ratios kept).
  topo::FabricParams p;
  p.rails = 8;
  p.hosts_per_block = 16;
  p.blocks_per_pod = 8;
  p.pods = 32;
  p.tier3_oversub = tier3_oversub;
  return p;
}

// Other tenants: cross-pod elephant flows from hosts outside the job,
// occupying a share of the Agg/Core fabric for the whole experiment.
void inject_background(net::FluidSim& sim, const topo::Fabric& fabric,
                       const parallel::Placement& job, core::Rng& rng) {
  std::set<topo::NodeId> job_hosts;
  for (int g : job.gpus) job_hosts.insert(fabric.gpu(g).host);
  auto hosts = fabric.topo().hosts();
  // Roughly a third of the rest of the fleet pushes cross-pod traffic at
  // any instant (moderate production occupancy).
  for (std::size_t h = 0; h < hosts.size(); h += 3) {
    topo::NodeId src = hosts[h];
    topo::NodeId dst = hosts[(h + hosts.size() / 2) % hosts.size()];
    if (job_hosts.contains(src) || job_hosts.contains(dst)) continue;
    net::FlowSpec s;
    s.src_host = src;
    s.dst_host = dst;
    s.src_rail = static_cast<int>(rng.uniform_int(8));
    s.dst_rail = s.src_rail;
    s.size = static_cast<core::Bytes>(1) << 50;  // effectively endless
    s.tag = 1'000'000 + h;
    sim.inject(s);
  }
}

// One all-to-all on `gpus` with per-round source-port optimization;
// returns per-GPU algorithm bandwidth.
double run_case(double oversub, bool fragmented, int gpus, core::Bytes per_pair) {
  topo::Fabric fabric(datacenter(oversub));
  auto placement = fragmented ? parallel::Placement::fragmented(fabric, gpus, 32)
                              : parallel::Placement::packed(fabric, gpus);
  net::FluidSim sim(fabric);
  core::Rng rng(7);
  if (fragmented) inject_background(sim, fabric, placement, rng);
  net::EcmpController controller(sim);

  const int n = placement.size();
  const int sample_rounds = 5;
  double total_time = 0.0;
  for (int j = 0; j < sample_rounds; ++j) {
    int r = 1 + j * (n - 2) / (sample_rounds - 1);
    std::vector<net::FlowSpec> specs;
    for (int i = 0; i < n; ++i) {
      int src = placement.gpus[static_cast<std::size_t>(i)];
      int dst = placement.gpus[static_cast<std::size_t>((i + r) % n)];
      auto a = fabric.gpu(src);
      auto b = fabric.gpu(dst);
      if (a.host == b.host) continue;
      net::FlowSpec s;
      s.src_host = a.host;
      s.dst_host = b.host;
      s.src_rail = b.rail;  // PXN: enter the fabric on the peer's rail
      s.dst_rail = b.rail;
      s.size = per_pair;
      s.tag = static_cast<std::uint64_t>(i);
      specs.push_back(s);
    }
    // Footnote-1 optimized ECMP: spread source ports via the controller.
    for (int pass = 0; pass < 2; ++pass) controller.rebalance(specs);
    std::vector<net::FlowId> ids;
    core::Seconds t0 = sim.now();
    for (auto& s : specs) {
      s.start = t0;
      ids.push_back(sim.inject(s));
    }
    sim.run_watch(ids);
    total_time += sim.now() - t0;
    sim.recycle_finished();
  }
  double mean_round = total_time / sample_rounds;
  double per_rank_bits = static_cast<double>(per_pair) * (n - 1) * 8.0;
  return per_rank_bits / (mean_round * (n - 1));  // per-round normalized
}

double train_impact(const seer::ModelSpec& model, parallel::ParallelismConfig par,
                    double bw_ratio) {
  workload::TrainingSetup s;
  s.model = model;
  s.parallel = par;
  s.global_batch = 512;
  s.seq_len = 4096;
  s.eff = std::make_shared<seer::TestbedEfficiency>();
  s.env.nic_bw = core::gbps(400.0) * bw_ratio;
  return workload::Trainer(s).forecast_iteration().iteration_time;
}

}  // namespace

int main() {
  const int gpus = 1024;
  const core::Bytes per_pair = 512 * 1024;

  struct Case {
    std::string label;
    double oversub;
    bool fragmented;
    const char* paper;
  };
  const Case cases[] = {
      {"1 Pod, packed (Astral)", 1.0, false, "baseline"},
      {"32 Pods, fragmented", 1.0, true, "-19%..-37%"},
      {"32 Pods, tier-3 oversub 2:1", 2.0, true, "up to -52%"},
      {"32 Pods, tier-3 oversub 4:1", 4.0, true, "up to -52%"},
  };

  core::print_banner("Fig. 2 - All-to-all communication throughput (1K GPUs)");
  core::Table table({"deployment", "alg bw / GPU (Gbps)", "vs packed", "paper"});
  double base = 0.0;
  std::vector<double> ratios;
  for (const Case& c : cases) {
    double bw = run_case(c.oversub, c.fragmented, gpus, per_pair);
    if (base == 0.0) base = bw;
    ratios.push_back(bw / base);
    table.add_row({c.label, core::Table::num(core::to_gbps(bw), 1),
                   core::Table::pct(bw / base - 1.0), c.paper});
  }
  table.print();

  // End-to-end training impact: the measured all-to-all efficiency acts
  // as the job's effective inter-host bandwidth. Dense models tolerate
  // it (mostly overlapped DP/PP traffic); MoE models are more sensitive.
  core::print_banner("Fig. 2 (cont.) - Training-iteration impact of the fabric");
  core::Table train({"deployment", "GPT-3-175B (dense)", "Hunyuan (MoE)", "paper"});
  parallel::ParallelismConfig dense_par{.tp = 8, .dp = 16, .pp = 8, .ep = 1};
  parallel::ParallelismConfig moe_par{.tp = 8, .dp = 128, .pp = 1, .ep = 16};
  double dense_base = 0.0;
  double moe_base = 0.0;
  for (std::size_t i = 0; i < std::size(cases); ++i) {
    double dense = train_impact(seer::ModelSpec::gpt3_175b(), dense_par, ratios[i]);
    double moe = train_impact(seer::ModelSpec::hunyuan_moe(), moe_par, ratios[i]);
    if (i == 0) {
      dense_base = dense;
      moe_base = moe;
    }
    const char* paper = i == 0 ? "baseline" : "dense ~-3%; MoE more sensitive";
    train.add_row({cases[i].label, core::Table::pct(dense_base / dense - 1.0),
                   core::Table::pct(moe_base / moe - 1.0), paper});
  }
  train.print();
  return 0;
}
