// Fleet-scheduler throughput benchmark: a stream of mixed-size tenants
// arriving at increasing rates on one shared fabric, with a host death
// and a ToR death playing mid-campaign so the mitigation, shrink, and
// preemption paths stay hot. Per arrival-rate point it records the
// simulated fleet metrics (jobs/hour, p50/p99 queueing delay, fleet
// goodput, completion rate) and the wall-clock cost of the scheduler
// itself. Writes BENCH_fleet.json (path = argv[1], default
// ./BENCH_fleet.json) so the repo keeps a scheduling-throughput
// trajectory next to BENCH_fluid.json. Exit status mirrors the
// acceptance checks: every point completes >= 80% of its jobs and the
// per-job scheduling overhead stays under 50ms wall-clock.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "monitor/fleet_runtime.h"
#include "topo/fabric.h"

namespace {

using namespace astral;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

topo::FabricParams bench_params() {
  topo::FabricParams p;
  p.rails = 2;
  p.hosts_per_block = 8;
  p.blocks_per_pod = 2;
  p.pods = 2;  // 32 hosts
  return p;
}

monitor::RecoveryConfig bench_recovery() {
  monitor::RecoveryConfig rc;
  rc.enabled = true;
  rc.checkpoint_interval = 2;
  rc.max_restarts = 0;  // dead host -> elastic shrink path
  rc.detect_time = 0.05;
  rc.restart_time = 0.2;
  rc.backoff_base = 0.05;
  return rc;
}

struct Point {
  double arrival_rate = 0.0;
  int jobs = 0;
  double jobs_per_hour = 0.0;
  double queue_p50_s = 0.0;
  double queue_p99_s = 0.0;
  double fleet_goodput = 0.0;
  double completion_rate = 0.0;
  double makespan_s = 0.0;
  int preemptions = 0;
  int shrinks = 0;
  double wall_ms = 0.0;
};

Point measure(double arrival_rate, int jobs, std::uint64_t seed) {
  topo::Fabric fabric(bench_params());
  monitor::FleetConfig fc;
  fc.placement = parallel::HostPolicy::RailAligned;
  fc.elastic.cordon_heal_time = 0.15;
  fc.seed = seed;
  monitor::FleetRuntime fleet(fabric, fc);

  monitor::ArrivalProcessConfig ap;
  ap.jobs = jobs;
  ap.arrival_rate = arrival_rate;
  ap.sizes = {4, 8, 12};
  ap.size_weights = {0.5, 0.3, 0.2};
  ap.priorities = {0, 0, 0, 1};
  ap.iterations = 10;
  ap.comm_bytes = 8ull * 1024 * 1024;
  ap.recovery = bench_recovery();
  ap.seed = seed;
  for (const monitor::FleetJobSpec& spec : monitor::generate_arrivals(ap)) {
    fleet.submit(spec);
  }

  monitor::FleetFault host_death;
  host_death.at_time = 0.25;
  host_death.cause = monitor::RootCause::GpuHardware;
  host_death.manifestation = monitor::Manifestation::FailStop;
  host_death.target_host = 1;
  fleet.inject(host_death);

  monitor::FleetFault tor_death;
  tor_death.at_time = 1.0;
  tor_death.cause = monitor::RootCause::SwitchBug;
  tor_death.manifestation = monitor::Manifestation::FailStop;
  tor_death.target_link = fabric.topo().out_links(fabric.topo().hosts()[0])[0];
  tor_death.switch_scope = true;
  tor_death.heal_after = 1.5;
  fleet.inject(tor_death);

  auto t0 = Clock::now();
  monitor::FleetOutcome out = fleet.run();
  Point pt;
  pt.wall_ms = ms_since(t0);
  pt.arrival_rate = arrival_rate;
  pt.jobs = jobs;
  pt.jobs_per_hour = out.jobs_per_hour;
  pt.queue_p50_s = out.queue_delay_p50;
  pt.queue_p99_s = out.queue_delay_p99;
  pt.fleet_goodput = out.fleet_goodput;
  pt.completion_rate = out.completion_rate;
  pt.makespan_s = out.makespan;
  for (const auto& jl : out.jobs) {
    pt.preemptions += jl.preemptions;
    pt.shrinks += jl.shrinks;
  }
  return pt;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_fleet.json";
  if (argc > 1) out_path = argv[1];

  const double rates[] = {2.0, 8.0, 32.0};
  const int jobs = 40;
  std::vector<Point> points;
  for (double rate : rates) {
    points.push_back(measure(rate, jobs, /*seed=*/1));
    const Point& p = points.back();
    std::printf(
        "rate=%5.1f/s  jobs/h=%8.0f  q_p50=%6.2fs  q_p99=%6.2fs  "
        "goodput=%5.1f%%  done=%5.1f%%  preempt=%d  shrink=%d  wall=%7.2fms\n",
        p.arrival_rate, p.jobs_per_hour, p.queue_p50_s, p.queue_p99_s,
        p.fleet_goodput * 100.0, p.completion_rate * 100.0, p.preemptions,
        p.shrinks, p.wall_ms);
  }

  double min_completion = 1.0;
  double max_wall_per_job_ms = 0.0;
  for (const Point& p : points) {
    if (p.completion_rate < min_completion) min_completion = p.completion_rate;
    double per_job = p.wall_ms / p.jobs;
    if (per_job > max_wall_per_job_ms) max_wall_per_job_ms = per_job;
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"fleet_scheduler\",\n");
  std::fprintf(f,
               "  \"workload\": \"40 mixed-size jobs (4/8/12 hosts, 25%% "
               "high-priority) per point on a 32-host fabric, GPU death + "
               "ToR death mid-campaign, rail-aligned placement\",\n");
  std::fprintf(f, "  \"points\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    std::fprintf(f,
                 "    {\"arrival_rate\": %.1f, \"jobs\": %d, "
                 "\"jobs_per_hour\": %.1f, \"queue_p50_s\": %.4f, "
                 "\"queue_p99_s\": %.4f, \"fleet_goodput\": %.4f, "
                 "\"completion_rate\": %.4f, \"makespan_s\": %.4f, "
                 "\"preemptions\": %d, \"shrinks\": %d, "
                 "\"wall_ms\": %.2f}%s\n",
                 p.arrival_rate, p.jobs, p.jobs_per_hour, p.queue_p50_s,
                 p.queue_p99_s, p.fleet_goodput, p.completion_rate,
                 p.makespan_s, p.preemptions, p.shrinks, p.wall_ms,
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"criteria\": {\n");
  std::fprintf(f, "    \"min_completion_rate\": %.4f,\n", min_completion);
  std::fprintf(f, "    \"min_completion_rate_required\": 0.80,\n");
  std::fprintf(f, "    \"max_wall_per_job_ms\": %.3f,\n", max_wall_per_job_ms);
  std::fprintf(f, "    \"max_wall_per_job_ms_required\": 50.0\n");
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s (min completion %.0f%%, max wall/job %.2fms)\n",
              out_path.c_str(), min_completion * 100.0, max_wall_per_job_ms);

  const bool ok = min_completion >= 0.80 && max_wall_per_job_ms <= 50.0;
  return ok ? 0 : 2;
}
