// Fig. 5: rack temperature distribution under the traditional side-intake
// airflow vs the optimized bottom-up airflow. Paper: inter-rack variation
// ~1 degC (side) vs 0.11 degC (bottom-up).
#include <cstdio>

#include "cooling/airflow.h"
#include "core/table.h"

using namespace astral;

int main() {
  cooling::RackRowConfig cfg;
  core::print_banner("Fig. 5 - Temperature distribution with air cooling");
  std::printf("Row of %d racks, %.0f kW each, %.0f m^3/s total airflow\n", cfg.racks,
              cfg.heat_watts_per_rack / 1e3, cfg.total_airflow_m3s);

  core::Table table({"rack", "side-intake (degC)", "bottom-up (degC)"});
  auto side = cooling::rack_temperatures(cfg, cooling::AirflowScheme::SideIntake);
  auto bottom = cooling::rack_temperatures(cfg, cooling::AirflowScheme::BottomUp);
  for (std::size_t i = 0; i < side.size(); ++i) {
    table.add_row({std::to_string(i), core::Table::num(side[i], 2),
                   core::Table::num(bottom[i], 2)});
  }
  table.print();

  core::Table summary({"scheme", "duct velocity (m/s)", "temp spread (degC)",
                       "paper spread (degC)"});
  summary.add_row({"side-intake (Fig. 5a)",
                   core::Table::num(duct_velocity(cfg, cooling::AirflowScheme::SideIntake), 1),
                   core::Table::num(temperature_spread(cfg, cooling::AirflowScheme::SideIntake), 2),
                   "~1.0"});
  summary.add_row({"bottom-up (Fig. 5b)",
                   core::Table::num(duct_velocity(cfg, cooling::AirflowScheme::BottomUp), 1),
                   core::Table::num(temperature_spread(cfg, cooling::AirflowScheme::BottomUp), 2),
                   "0.11"});
  summary.print();
  return 0;
}
