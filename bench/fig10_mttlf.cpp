// Fig. 10: stability improvement after deploying the monitoring system —
// Mean Time To Locate Failure (MTTLF) per manifestation, manual process
// vs hierarchical analyzer. Paper: fail-stop 12x, fail-hang 25x faster
// (days -> minutes); fail-slow ~5x.
#include <cstdio>

#include "core/table.h"
#include "monitor/mttlf.h"

using namespace astral;
using monitor::Manifestation;

int main() {
  monitor::CampaignConfig cfg;
  cfg.faults = 400;
  auto result = monitor::run_campaign(cfg);

  core::print_banner("Fig. 10 - MTTLF before/after the monitoring system");
  core::Table table({"manifestation", "faults", "manual MTTLF", "with Astral", "reduction",
                     "paper"});
  struct Row {
    Manifestation m;
    const char* paper;
  };
  auto fmt_dur = [](double s) {
    char buf[32];
    if (s >= 3600) {
      std::snprintf(buf, sizeof(buf), "%.1f h", s / 3600.0);
    } else {
      std::snprintf(buf, sizeof(buf), "%.1f min", s / 60.0);
    }
    return std::string(buf);
  };
  auto counts = result.manifestation_counts();
  for (auto [m, paper] : {Row{Manifestation::FailStop, "12x"},
                          Row{Manifestation::FailHang, "25x"},
                          Row{Manifestation::FailSlow, "~5x"},
                          Row{Manifestation::FailOnStart, "n/a"}}) {
    double manual = result.mttlf_manual(m);
    double with = result.mttlf_with_system(m);
    if (with <= 0) continue;
    table.add_row({to_string(m), std::to_string(counts[m]), fmt_dur(manual), fmt_dur(with),
                   core::Table::num(manual / with, 1) + "x", paper});
  }
  table.print();

  int manual_needed = 0;
  for (const auto& e : result.entries) manual_needed += e.needs_manual ? 1 : 0;
  std::printf("\nRoot-cause accuracy: %.1f%%; %d/%d faults still required manual"
              " follow-up (the paper's 'anomalies the automatic correlation system"
              " cannot recognize').\n",
              result.accuracy() * 100.0, manual_needed,
              static_cast<int>(result.entries.size()));
  return 0;
}
