#!/usr/bin/env bash
# Builds the Release preset, runs the fluid-solver scaling benchmark, and
# writes BENCH_fluid.json at the repo root so every PR leaves a comparable
# perf data point (flows-vs-solve-time, incremental vs pre-change solver,
# steady-state allocation count). Exit status mirrors the benchmark's own
# acceptance checks (>=3x solve speedup at 4K flows, 64K point completed,
# zero steady-state allocations).
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 2)"
cmake --preset release
cmake --build --preset release -j"${jobs}" --target bench_fluid_scaling
./build-release/bench/bench_fluid_scaling BENCH_fluid.json
echo "BENCH_fluid.json written at $(pwd)/BENCH_fluid.json"
