#!/usr/bin/env bash
# Builds the Release preset, runs the fluid-solver scaling benchmark, and
# writes BENCH_fluid.json at the repo root so every PR leaves a comparable
# perf data point (flows-vs-solve-time up to 1M flows, sharded vs
# pre-change solver, 64K thread-count sweep, steady-state allocation
# count). Exit status mirrors the benchmark's own acceptance checks
# (>=3x solve speedup at 4K flows, >=10x at 64K, 64K and 1M points
# completed, zero steady-state allocations).
#
# Usage: run_bench.sh [--threads=1,2,4,8]
#   --threads  comma-separated solver thread counts for the 64K sweep
#              (default 1,2,4,8).
set -euo pipefail
cd "$(dirname "$0")/.."

threads_arg=""
for arg in "$@"; do
  case "$arg" in
    --threads=*) threads_arg="$arg" ;;
    *) echo "unknown argument: $arg" >&2; exit 1 ;;
  esac
done

jobs="$(nproc 2>/dev/null || echo 2)"
cmake --preset release
cmake --build --preset release -j"${jobs}" --target bench_fluid_scaling
./build-release/bench/bench_fluid_scaling BENCH_fluid.json ${threads_arg:+"$threads_arg"}
echo "BENCH_fluid.json written at $(pwd)/BENCH_fluid.json"
