// Fig. 9: the hierarchical-analyzer case study. A fail-slow is injected
// on a job path (a misconfigured switch congesting a downlink); the four
// panels mirror the paper's figure: (a) NCCL timeline, (b) ms-level QP
// rates, (c) INT per-hop latency, (d) PFC counters — followed by the
// analyzer's layer-by-layer evidence chain and diagnosis.
#include <cstdio>
#include <map>

#include "core/table.h"
#include "monitor/analyzer.h"
#include "monitor/cluster_runtime.h"

using namespace astral;

int main() {
  topo::FabricParams fp;
  fp.rails = 2;
  fp.hosts_per_block = 8;
  fp.blocks_per_pod = 2;
  fp.pods = 1;
  topo::Fabric fabric(fp);

  monitor::JobConfig job;
  job.hosts = 12;
  job.iterations = 6;
  job.comm_bytes = 32ull * 1024 * 1024;
  job.qp_sample_interval = core::usec(200.0);  // ms-level rate monitoring

  monitor::ClusterRuntime rt(fabric, job, 42);
  auto fault = rt.make_fault(monitor::RootCause::SwitchConfig,
                             monitor::Manifestation::FailSlow, 2);
  rt.inject(fault);
  auto outcome = rt.run();
  const auto& store = rt.telemetry();

  core::print_banner("Fig. 9a - NCCL timeline (iteration after injection)");
  core::Table tl({"host", "compute (ms)", "comm (ms)", "threshold (ms)", "flag"});
  double comm_threshold = rt.expected_comm() * 3.0;
  for (const auto& ev : store.iteration_events(3)) {
    bool slow = ev.comm_time > comm_threshold;
    tl.add_row({std::to_string(ev.host_rank), core::Table::num(ev.compute_time * 1e3, 2),
                core::Table::num(ev.comm_time * 1e3, 2),
                core::Table::num(comm_threshold * 1e3, 2), slow ? "SLOW" : ""});
  }
  tl.print();

  core::print_banner("Fig. 9b - ms-level QP rate (mean during comm)");
  core::Table qps({"QP", "mean rate (Gbps)", "link bw (Gbps)", "flag"});
  for (monitor::QpId qp = 0; qp < static_cast<monitor::QpId>(job.hosts); ++qp) {
    double rate = store.mean_qp_rate(qp, 0.0, 1e9);
    bool slow = rate > 0 && rate < 0.5 * core::gbps(200);
    qps.add_row({std::to_string(qp), core::Table::num(core::to_gbps(rate), 1), "200",
                 slow ? "<50% of link bw" : ""});
  }
  qps.print();

  core::print_banner("Fig. 9c - INT per-hop latency (worst probe)");
  const monitor::IntProbeResult* worst = nullptr;
  double worst_lat = 0.0;
  for (const auto& probe : store.int_probes()) {
    for (double l : probe.hop_latency) {
      if (l > worst_lat) {
        worst_lat = l;
        worst = &probe;
      }
    }
  }
  if (worst != nullptr) {
    core::Table hops({"hop", "link", "latency (us)"});
    for (std::size_t h = 0; h < worst->path.size(); ++h) {
      hops.add_row({std::to_string(h), std::to_string(worst->path[h]),
                    core::Table::num(worst->hop_latency[h] * 1e6, 1)});
    }
    hops.print();
    std::printf("(paper example: 0.6us, 179us, 266us -> congested Agg->ToR downlink)\n");
  }

  core::print_banner("Fig. 9d - PFC pause counters (nonzero links)");
  core::Table pfc({"link", "pfc pauses", "ecn marks"});
  std::map<topo::LinkId, std::pair<std::uint64_t, std::uint64_t>> agg;
  for (const auto& s : store.link_counters()) {
    agg[s.link].first += s.pfc_pauses;
    agg[s.link].second += s.ecn_marks;
  }
  int shown = 0;
  for (const auto& [link, counts] : agg) {
    if (counts.first == 0) continue;
    pfc.add_row({std::to_string(link), std::to_string(counts.first),
                 std::to_string(counts.second)});
    if (++shown >= 10) break;
  }
  pfc.print();

  core::print_banner("Hierarchical diagnosis");
  monitor::HierarchicalAnalyzer analyzer(store, fabric.topo(), rt.expected_compute(),
                                         rt.expected_comm());
  auto d = analyzer.diagnose();
  std::printf("observed manifestation : %s\n",
              outcome.observed ? to_string(*outcome.observed) : "healthy");
  for (const auto& e : d.evidence) std::printf("  -> %s\n", e.c_str());
  std::printf("root cause found       : %s\n", d.root_cause_found ? "yes" : "no");
  if (d.root_cause) std::printf("root cause             : %s\n", to_string(*d.root_cause));
  std::printf("injected               : %s on link %u\n", to_string(fault.cause),
              fault.target_link);
  std::printf("modeled locate time    : %.1f min (paper: minutes)\n",
              d.locate_time / 60.0);
  return 0;
}
