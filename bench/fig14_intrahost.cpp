// Fig. 14: performance impact of the intra-host (NVLink/HB domain)
// network scale. Paper: MoE training benefits more than GPT-3 (more
// all-to-all traffic); MoE inference (prefill and decoding) also gains.
#include <cstdio>

#include "core/table.h"
#include "workload/trainer.h"

using namespace astral;

namespace {

workload::TrainingSetup moe_setup(int hb) {
  workload::TrainingSetup s;
  s.model = seer::ModelSpec::hunyuan_moe();
  s.parallel = {.tp = 8, .dp = 64, .pp = 1, .ep = 64};
  s.global_batch = 256;
  s.seq_len = 4096;
  s.eff = std::make_shared<seer::TestbedEfficiency>();
  s.env.hb_domain = hb;
  return s;
}

workload::TrainingSetup gpt3_setup(int hb) {
  workload::TrainingSetup s;
  s.model = seer::ModelSpec::gpt3_175b();
  // Data-parallel-heavy layout: the dense model's only fabric traffic is
  // the gradient AllReduce, so the HB-domain benefit is bounded by how
  // much of that sync stays exposed.
  s.parallel = {.tp = 8, .dp = 64, .pp = 1, .ep = 1};
  s.global_batch = 128;
  s.seq_len = 2048;
  s.eff = std::make_shared<seer::TestbedEfficiency>();
  s.env.hb_domain = hb;
  return s;
}

}  // namespace

int main() {
  const int domains[] = {8, 16, 32, 64};

  core::print_banner("Fig. 14a/b - Training throughput vs intra-host network scale");
  core::Table train({"HB domain", "GPT-3-175B (tok/s, norm.)", "MoE (tok/s, norm.)"});
  double gpt_base = 0.0, moe_base = 0.0;
  for (int hb : domains) {
    double gpt = workload::Trainer(gpt3_setup(hb)).forecast_iteration().tokens_per_sec;
    double moe = workload::Trainer(moe_setup(hb)).forecast_iteration().tokens_per_sec;
    if (hb == 8) {
      gpt_base = gpt;
      moe_base = moe;
    }
    train.add_row({std::to_string(hb), core::Table::num(gpt / gpt_base, 3),
                   core::Table::num(moe / moe_base, 3)});
  }
  train.print();
  std::printf("(paper: the MoE model benefits more — all-to-all moves onto NVLink)\n");

  core::print_banner("Fig. 14c/d - MoE inference vs intra-host network scale");
  core::Table infer({"HB domain", "prefill (tok/s, norm.)", "decoding (tok/s, norm.)"});
  double pre_base = 0.0, dec_base = 0.0;
  for (int hb : domains) {
    auto s = moe_setup(hb);
    // Wide expert parallelism, as production MoE serving shards experts
    // across many hosts.
    s.parallel = {.tp = 8, .dp = 64, .pp = 1, .ep = 64};
    workload::Trainer t(s);
    double pre = t.forecast_prefill(8, 4096).tokens_per_sec;
    double dec = t.forecast_decode(64, 4096).tokens_per_sec;
    if (hb == 8) {
      pre_base = pre;
      dec_base = dec;
    }
    infer.add_row({std::to_string(hb), core::Table::num(pre / pre_base, 3),
                   core::Table::num(dec / dec_base, 3)});
  }
  infer.print();
  return 0;
}
