// Fig. 16: GPU power usage over a day in production — the tidal pattern
// (inference declines 10pm-8am) and the effect of the scheduling policy
// that backfills nights with cheap training rentals.
#include <cstdio>

#include "core/table.h"
#include "power/profile.h"
#include "power/scheduler.h"

using namespace astral;

int main() {
  power::GpuPowerModel gpu;
  const int fleet = 10000;

  core::Rng rng_raw(21);
  auto raw = power::diurnal_fleet_trace(gpu, fleet, 0.0, 1800.0, rng_raw);
  core::Rng rng_filled(21);
  auto filled = power::diurnal_fleet_trace(gpu, fleet, 0.9, 1800.0, rng_filled);

  core::print_banner("Fig. 16 - Fleet GPU power over a day (10K GPUs)");
  core::Table table({"hour", "inference only (MW)", "with night training (MW)"});
  for (std::size_t i = 0; i < raw.size(); i += 2) {  // hourly rows
    table.add_row({core::Table::num(raw[i].t / 3600.0, 0),
                   core::Table::num(raw[i].watts / 1e6, 2),
                   core::Table::num(filled[i].watts / 1e6, 2)});
  }
  table.print();

  auto s_raw = power::trace_stats(raw);
  auto s_filled = power::trace_stats(filled);
  std::printf("\nTidal swing (inference only): min %.2f MW .. peak %.2f MW"
              " (%.0f%% trough)\n",
              s_raw.min_watts / 1e6, s_raw.peak_watts / 1e6,
              (1.0 - s_raw.min_watts / s_raw.peak_watts) * 100.0);
  std::printf("With night-training backfill: stddev %.2f MW -> %.2f MW"
              " (constant-power utility contract, Section 5)\n",
              s_raw.stddev_watts / 1e6, s_filled.stddev_watts / 1e6);

  // The scheduling policy behind the flat curve: training rents the
  // nightly trough (cheap night prices), inference keeps its peak.
  core::print_banner("Constant-power day schedule (10K GPUs)");
  auto plan = power::schedule_day(power::tidal_inference_demand(), fleet, gpu, 1e9);
  core::Table sched({"hour", "inference GPUs", "training GPUs", "power (MW)"});
  for (const auto& slot : plan.hours) {
    if (slot.hour % 3 != 0) continue;
    sched.add_row({std::to_string(slot.hour), std::to_string(slot.inference_gpus),
                   std::to_string(slot.training_gpus),
                   core::Table::num(slot.power_watts / 1e6, 2)});
  }
  sched.print();
  std::printf("Scheduled draw peak/mean: %.3f (contract ideal: 1.0);"
              " %.0f training GPU-hours absorbed overnight.\n",
              plan.flatness(), plan.training_gpu_hours);
  return 0;
}
