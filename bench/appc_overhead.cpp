// Appendix C: Astral monitoring system overheads. Paper: mirroring the
// first packet header of each RDMA message costs ~0.8 Mbps per node
// (~10 Gbps for 100K GPUs, 0.00005% of aggregate bandwidth); INT ping
// metadata adds ~173 GB/day of storage for a 10K-GPU cluster, retained
// 15 days.
#include <cstdio>

#include "core/table.h"
#include "monitor/cluster_runtime.h"

using namespace astral;

int main() {
  // Measure message rate from a simulated job, then extrapolate with the
  // paper's constants.
  topo::FabricParams fp;
  fp.rails = 2;
  fp.hosts_per_block = 8;
  fp.blocks_per_pod = 2;
  fp.pods = 1;
  topo::Fabric fabric(fp);
  monitor::JobConfig job;
  job.hosts = 16;
  job.iterations = 8;
  monitor::ClusterRuntime rt(fabric, job, 3);
  rt.run();

  const auto& store = rt.telemetry();
  core::print_banner("Appendix C - Monitoring overheads");
  std::printf("Simulated job telemetry: %zu records over %d iterations on %d hosts\n",
              store.record_count(), job.iterations, job.hosts);

  // Transport mirror overhead: one mirrored header (~128 B on the wire)
  // per RDMA message; a training host moves ~1 message per QP per
  // collective step, hundreds of steps/s.
  const double headers_per_sec_per_node = 800.0;  // messages/s at full tilt
  const double header_bytes = 128.0;
  double per_node_bps = headers_per_sec_per_node * header_bytes * 8.0;

  core::Table mirror({"scale", "mirror traffic", "share of fabric bw"});
  for (int gpus : {1024, 10240, 102400}) {
    int nodes = gpus / 8;
    double total_bps = per_node_bps * nodes;
    double fabric_bps = static_cast<double>(gpus) * core::gbps(400.0);
    char traffic[32];
    std::snprintf(traffic, sizeof(traffic), "%.2f Gbps", total_bps / 1e9);
    char share[32];
    std::snprintf(share, sizeof(share), "%.6f%%", total_bps / fabric_bps * 100.0);
    mirror.add_row({std::to_string(gpus) + " GPUs", traffic, share});
  }
  mirror.print();
  std::printf("per node: %.2f Mbps (paper: ~0.8 Mbps/node, ~10 Gbps @100K GPUs,"
              " 0.00005%% of link bandwidth)\n",
              per_node_bps / 1e6);

  // INT ping storage: pingmesh probes with per-hop metadata.
  core::print_banner("INT pingmesh storage");
  const double probes_per_pair_per_sec = 0.1;
  const double bytes_per_probe = 256.0;  // 5-tuple + per-hop latencies
  core::Table storage({"cluster", "probes/day", "storage/day", "15-day retention"});
  for (int gpus : {10240, 102400}) {
    int nodes = gpus / 8;
    // Pingmesh probes each node against a log-sized peer set.
    double pairs = static_cast<double>(nodes) * 64.0;
    double probes_day = pairs * probes_per_pair_per_sec * 86400.0;
    double gb_day = probes_day * bytes_per_probe / 1e9;
    char p[32], g[32], r[32];
    std::snprintf(p, sizeof(p), "%.1fM", probes_day / 1e6);
    std::snprintf(g, sizeof(g), "%.0f GB", gb_day);
    std::snprintf(r, sizeof(r), "%.1f TB", gb_day * 15.0 / 1000.0);
    storage.add_row({std::to_string(gpus) + " GPUs", p, g, r});
  }
  storage.print();
  std::printf("(paper: 173 GB/day for a 10K-GPU cluster, retained 15 days)\n");
  return 0;
}
