// Flows-vs-solve-time scaling curves for the fluid simulator's max-min
// rate solver: the pod-sharded engine (FluidSim::resolve_rates) against
// the retained pre-change algorithm (MaxMinRef::solve), on the same
// permutation traffic over the micro_perf bench fabric, from 256 flows up
// to the million-flow point. Also sweeps solver thread counts at 64K
// flows (--threads=1,2,4,8 to override), measures the end-to-end
// permutation run, and verifies that the solver performs zero heap
// allocations in steady state via a global operator-new counting hook.
// Writes BENCH_fluid.json (path = argv[1], default ./BENCH_fluid.json)
// so the repo keeps a perf trajectory; bench/run_bench.sh drives it from
// a Release build.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "net/fluid_sim.h"
#include "net/maxmin_ref.h"
#include "obs/metrics.h"
#include "topo/fabric.h"

// ---- allocation counting hook -------------------------------------------
// Counts every operator-new in the process; the steady-state solver check
// reads the delta around a resolve loop. Kept trivially malloc-backed so
// sanitizer builds still interpose correctly underneath.
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t& t) noexcept {
  return ::operator new(size, t);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace {

using namespace astral;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

topo::FabricParams bench_params() {
  topo::FabricParams p;
  p.rails = 8;
  p.hosts_per_block = 16;
  p.blocks_per_pod = 4;
  p.pods = 2;
  return p;
}

std::vector<net::FlowSpec> permutation_specs(const topo::Fabric& fabric, int flows) {
  auto hosts = fabric.topo().hosts();
  std::vector<net::FlowSpec> specs;
  specs.reserve(static_cast<std::size_t>(flows));
  for (int i = 0; i < flows; ++i) {
    net::FlowSpec spec;
    spec.src_host = hosts[static_cast<std::size_t>(i) % hosts.size()];
    spec.dst_host = hosts[(static_cast<std::size_t>(i) + 40) % hosts.size()];
    spec.src_rail = i % 8;
    spec.dst_rail = i % 8;
    spec.size = 4 * 1024 * 1024;
    spec.tag = static_cast<std::uint64_t>(i);
    specs.push_back(spec);
  }
  return specs;
}

struct Point {
  int flows = 0;
  double solve_us_ref = 0.0;
  double solve_us_incremental = 0.0;
  double run_ms_end_to_end = 0.0;
  std::uint64_t steady_state_allocs = 0;
  int solve_iters = 0;
};

int iters_for(int flows) {
  return flows >= 262144 ? 3 : (flows >= 16384 ? 5 : (flows >= 4096 ? 20 : 100));
}

Point measure(topo::Fabric& fabric, int flows) {
  Point pt;
  pt.flows = flows;
  auto specs = permutation_specs(fabric, flows);

  // Per-solve comparison on the full t=0 active set.
  {
    net::FluidSim sim(fabric);
    sim.inject_batch(specs);
    sim.run(0.0);  // admit + first solve, no progress
    const int iters = iters_for(flows);
    pt.solve_iters = iters;

    sim.resolve_rates();  // warm scratch capacities + shard caches
    std::uint64_t allocs0 = g_alloc_count.load(std::memory_order_relaxed);
    auto t0 = Clock::now();
    for (int k = 0; k < iters; ++k) sim.resolve_rates();
    pt.solve_us_incremental = ms_since(t0) * 1000.0 / iters;
    pt.steady_state_allocs =
        g_alloc_count.load(std::memory_order_relaxed) - allocs0;

    // Reference (pre-change) solver over the identical active set.
    std::vector<std::vector<topo::LinkId>> paths;
    paths.reserve(sim.active_flows().size());
    for (net::FlowId id : sim.active_flows()) paths.push_back(sim.flow(id).path);
    std::vector<double> caps(fabric.topo().link_count());
    for (std::size_t l = 0; l < caps.size(); ++l) {
      caps[l] = sim.effective_capacity(static_cast<topo::LinkId>(l));
    }
    std::vector<double> rates;
    net::MaxMinRef::solve(paths, caps, rates);  // warm thread-local scratch
    t0 = Clock::now();
    for (int k = 0; k < iters; ++k) net::MaxMinRef::solve(paths, caps, rates);
    pt.solve_us_ref = ms_since(t0) * 1000.0 / iters;
  }

  // End-to-end permutation run (inject + drain), sharded solver.
  {
    auto t0 = Clock::now();
    net::FluidSim sim(fabric);
    sim.inject_batch(specs);
    sim.run();
    pt.run_ms_end_to_end = ms_since(t0);
  }
  return pt;
}

struct SweepPoint {
  int threads = 0;
  double solve_us = 0.0;
  std::uint64_t steady_state_allocs = 0;
};

// Steady-state re-solve latency at `flows` for each thread count: same
// workload, solver configured with N lanes. Thread count must not change
// the rates (asserted bitwise elsewhere), only the wall clock.
std::vector<SweepPoint> thread_sweep(topo::Fabric& fabric, int flows,
                                     const std::vector<int>& thread_counts) {
  auto specs = permutation_specs(fabric, flows);
  std::vector<SweepPoint> sweep;
  for (int threads : thread_counts) {
    net::FluidSimConfig cfg;
    cfg.solver_threads = threads;
    net::FluidSim sim(fabric, cfg);
    sim.inject_batch(specs);
    sim.run(0.0);
    sim.resolve_rates();  // warm caches; creates the pool on first use
    const int iters = iters_for(flows);
    SweepPoint sp;
    sp.threads = threads;
    std::uint64_t allocs0 = g_alloc_count.load(std::memory_order_relaxed);
    auto t0 = Clock::now();
    for (int k = 0; k < iters; ++k) sim.resolve_rates();
    sp.solve_us = ms_since(t0) * 1000.0 / iters;
    sp.steady_state_allocs =
        g_alloc_count.load(std::memory_order_relaxed) - allocs0;
    sweep.push_back(sp);
    std::printf("threads=%2d  flows=%6d  solve=%8.1fus  steady_allocs=%llu\n",
                sp.threads, flows, sp.solve_us,
                static_cast<unsigned long long>(sp.steady_state_allocs));
  }
  return sweep;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_fluid.json";
  std::vector<int> thread_counts = {1, 2, 4, 8};
  for (int a = 1; a < argc; ++a) {
    if (std::strncmp(argv[a], "--threads=", 10) == 0) {
      thread_counts.clear();
      for (const char* p = argv[a] + 10; *p != '\0';) {
        thread_counts.push_back(std::atoi(p));
        while (*p != '\0' && *p != ',') ++p;
        if (*p == ',') ++p;
      }
    } else {
      out_path = argv[a];
    }
  }
  topo::Fabric fabric(bench_params());

  const int sizes[] = {256, 1024, 4096, 16384, 65536, 262144, 1048576};
  std::vector<Point> points;
  for (int flows : sizes) {
    points.push_back(measure(fabric, flows));
    const Point& p = points.back();
    std::printf(
        "flows=%6d  solve_ref=%10.1fus  solve_incr=%8.1fus  speedup=%5.1fx  "
        "end_to_end=%8.2fms  steady_allocs=%llu\n",
        p.flows, p.solve_us_ref, p.solve_us_incremental,
        p.solve_us_ref / p.solve_us_incremental, p.run_ms_end_to_end,
        static_cast<unsigned long long>(p.steady_state_allocs));
  }

  // Solver-step latency distribution via the obs metrics registry, from a
  // separate instrumented end-to-end run — the timed loops above stay
  // uninstrumented so the trajectory numbers measure the tracing-disabled
  // path.
  obs::Metrics metrics;
  {
    net::FluidSim sim(fabric);
    sim.set_metrics(&metrics);
    sim.inject_batch(permutation_specs(fabric, 4096));
    sim.run();
  }
  const obs::Histogram* solve_hist = metrics.find_histogram("fluidsim.solve_us");

  // Thread-count sweep at 64K flows (the acceptance point).
  const std::vector<SweepPoint> sweep = thread_sweep(fabric, 65536, thread_counts);

  double speedup_4k = 0.0;
  double ref_64k = 0.0;
  bool point_64k = false;
  bool point_1m = false;
  std::uint64_t total_steady_allocs = 0;
  for (const Point& p : points) {
    if (p.flows == 4096) speedup_4k = p.solve_us_ref / p.solve_us_incremental;
    if (p.flows == 65536 && p.run_ms_end_to_end > 0) {
      point_64k = true;
      ref_64k = p.solve_us_ref;
    }
    if (p.flows == 1048576 && p.run_ms_end_to_end > 0) point_1m = true;
    total_steady_allocs += p.steady_state_allocs;
  }
  // Speedup vs the reference at 64K, using the sweep's >=4-thread
  // configurations (falling back to the scaling point's own number when
  // the sweep was narrowed via --threads).
  double speedup_64k = 0.0;
  for (const Point& p : points) {
    if (p.flows == 65536) speedup_64k = p.solve_us_ref / p.solve_us_incremental;
  }
  for (const SweepPoint& sp : sweep) {
    if (sp.threads >= 4 && ref_64k > 0 && sp.solve_us > 0) {
      speedup_64k = std::max(speedup_64k, ref_64k / sp.solve_us);
    }
    total_steady_allocs += sp.steady_state_allocs;
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"fluid_scaling\",\n");
  std::fprintf(f,
               "  \"workload\": \"permutation alltoall, 4MiB flows, "
               "rails=8 hosts_per_block=16 blocks_per_pod=4 pods=2\",\n");
  std::fprintf(f,
               "  \"reference_solver\": \"MaxMinRef::solve — the pre-change "
               "FluidSim::recompute_rates algorithm, retained verbatim\",\n");
  std::fprintf(f,
               "  \"incremental_solver\": \"FluidSim::resolve_rates — "
               "pod-sharded engine: union-find component discovery, cached "
               "shard CSRs + capacity tier, per-shard lazy min-heaps, "
               "optional work-stealing thread pool\",\n");
  std::fprintf(f, "  \"points\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    std::fprintf(f,
                 "    {\"flows\": %d, \"solve_us_ref\": %.2f, "
                 "\"solve_us_incremental\": %.2f, \"solve_speedup\": %.2f, "
                 "\"run_ms_end_to_end\": %.2f, \"steady_state_allocs\": %llu, "
                 "\"solve_iters\": %d}%s\n",
                 p.flows, p.solve_us_ref, p.solve_us_incremental,
                 p.solve_us_ref / p.solve_us_incremental, p.run_ms_end_to_end,
                 static_cast<unsigned long long>(p.steady_state_allocs),
                 p.solve_iters, i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  if (solve_hist != nullptr && solve_hist->count() > 0) {
    std::fprintf(f,
                 "  \"solve_histogram\": {\"flows\": 4096, \"count\": %llu, "
                 "\"p50_us\": %.3f, \"p90_us\": %.3f, \"p99_us\": %.3f, "
                 "\"max_us\": %.3f},\n",
                 static_cast<unsigned long long>(solve_hist->count()),
                 solve_hist->percentile(50), solve_hist->percentile(90),
                 solve_hist->percentile(99), solve_hist->max());
  }
  std::fprintf(f, "  \"thread_sweep\": {\"flows\": 65536, \"points\": [\n");
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    std::fprintf(f,
                 "    {\"threads\": %d, \"solve_us\": %.2f, "
                 "\"steady_state_allocs\": %llu}%s\n",
                 sweep[i].threads, sweep[i].solve_us,
                 static_cast<unsigned long long>(sweep[i].steady_state_allocs),
                 i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(f, "  ]},\n");
  std::fprintf(f, "  \"criteria\": {\n");
  std::fprintf(f, "    \"solve_speedup_4k\": %.2f,\n", speedup_4k);
  std::fprintf(f, "    \"solve_speedup_4k_required\": 3.0,\n");
  std::fprintf(f, "    \"solve_speedup_64k\": %.2f,\n", speedup_64k);
  std::fprintf(f, "    \"solve_speedup_64k_required\": 10.0,\n");
  std::fprintf(f, "    \"point_64k_completed\": %s,\n", point_64k ? "true" : "false");
  std::fprintf(f, "    \"point_1m_completed\": %s,\n", point_1m ? "true" : "false");
  std::fprintf(f, "    \"steady_state_allocs_total\": %llu\n",
               static_cast<unsigned long long>(total_steady_allocs));
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  if (solve_hist != nullptr && solve_hist->count() > 0) {
    std::printf("solve histogram (4k flows, instrumented run): count=%llu "
                "p50=%.1fus p99=%.1fus max=%.1fus\n",
                static_cast<unsigned long long>(solve_hist->count()),
                solve_hist->percentile(50), solve_hist->percentile(99),
                solve_hist->max());
  }
  std::printf(
      "wrote %s (4k speedup %.1fx, 64k speedup %.1fx, 1M point %s)\n",
      out_path.c_str(), speedup_4k, speedup_64k,
      point_1m ? "completed" : "MISSING");

  const bool ok = speedup_4k >= 3.0 && speedup_64k >= 10.0 && point_64k &&
                  point_1m && total_steady_allocs == 0;
  return ok ? 0 : 2;
}
