// Ablation (§2.2): the HVDC design space — chain efficiency, grid
// stability vs battery sizing under pulsed LLM load, and the elastic
// rack headroom trade-off.
#include <cstdio>
#include <vector>

#include "core/table.h"
#include "power/hvdc.h"
#include "power/profile.h"

using namespace astral;

int main() {
  // Pulsed load: a training job alternating compute (peak) and comm
  // (trough) every second on one row of racks.
  std::vector<double> load;
  for (int i = 0; i < 1200; ++i) load.push_back(i % 2 == 0 ? 480e3 : 230e3);

  core::print_banner("Chain efficiency and stability: AC-UPS vs distributed HVDC");
  core::Table chain({"chain", "conversion eff.", "grid peak/mean (pulsed)", "min battery SoC"});
  for (auto kind : {power::ChainKind::AcUps, power::ChainKind::Hvdc}) {
    power::PowerUnitConfig cfg;
    cfg.kind = kind;
    power::PowerUnit unit(cfg);
    double ratio = power::grid_stability(unit, load, 1.0);
    power::PowerUnit probe(cfg);
    double min_soc = 1.0;
    for (double w : load) {
      probe.step(1.0, w);
      min_soc = std::min(min_soc, probe.soc());
    }
    chain.add_row({kind == power::ChainKind::Hvdc ? "HVDC (Astral)" : "AC-UPS",
                   core::Table::pct(power::chain_efficiency(kind), 1),
                   core::Table::num(ratio, 3), core::Table::pct(min_soc, 0)});
  }
  chain.print();

  core::print_banner("Battery sizing vs grid stability (HVDC)");
  core::Table battery({"battery energy (MJ)", "grid peak/mean"});
  for (double mj : {0.05, 0.1, 0.2, 0.5, 1.0, 400.0}) {
    power::PowerUnitConfig cfg;
    cfg.battery_capacity_j = mj * 1e6;
    power::PowerUnit unit(cfg);
    battery.add_row({core::Table::num(mj, 2), core::Table::num(
                                                  power::grid_stability(unit, load, 1.0), 3)});
  }
  battery.print();

  core::print_banner("Elastic headroom: single-rack burst grant");
  core::Table elastic({"headroom", "granted to 150%-demand rack", "clipped"});
  for (double headroom : {0.0, 0.15, 0.30, 0.50}) {
    power::PowerUnitConfig cfg;
    cfg.racks = 8;
    cfg.rack_tdp_watts = 100.0;
    cfg.elastic_headroom = headroom;
    power::PowerUnit unit(cfg);
    std::vector<double> demand(8, 80.0);
    demand[0] = 150.0;
    auto a = unit.allocate(demand);
    elastic.add_row({core::Table::pct(headroom, 0),
                     core::Table::num(a.granted_watts[0], 0) + " W",
                     a.clipped ? "yes" : "no"});
  }
  elastic.print();
  std::printf("\nThe paper's +30%% empirical headroom covers the observed above-TDP\n"
              "peaks (Fig. 15) without growing the shared row budget.\n");
  return 0;
}
