// Micro-benchmarks (google-benchmark) for the performance-sensitive
// kernels: ECMP hashing, routing, the fluid-simulator solver, Seer graph
// construction and end-to-end forecasting (the "within seconds" claim),
// and JSON parsing of operator templates.
#include <benchmark/benchmark.h>

#include "core/json.h"
#include "net/controller.h"
#include "workload/trainer.h"

using namespace astral;

namespace {

topo::Fabric& bench_fabric() {
  static topo::Fabric fabric([] {
    topo::FabricParams p;
    p.rails = 8;
    p.hosts_per_block = 16;
    p.blocks_per_pod = 4;
    p.pods = 2;
    return p;
  }());
  return fabric;
}

void BM_EcmpHash(benchmark::State& state) {
  net::EcmpHash hash;
  net::FiveTuple t{.src_ip = 12, .dst_ip = 9987, .src_port = 4242};
  std::uint32_t salt = 0;
  for (auto _ : state) {
    t.src_port = static_cast<std::uint16_t>(t.src_port + 1);
    benchmark::DoNotOptimize(hash.select(t, ++salt, 64));
  }
}
BENCHMARK(BM_EcmpHash);

void BM_RoutePrediction(benchmark::State& state) {
  auto& fabric = bench_fabric();
  net::FluidSim sim(fabric);
  net::FlowSpec spec;
  spec.src_rail = 0;
  spec.dst_rail = 0;
  spec.size = 1;
  int i = 0;
  auto hosts = fabric.topo().hosts();
  for (auto _ : state) {
    spec.src_host = hosts[static_cast<std::size_t>(i % 64)];
    spec.dst_host = hosts[static_cast<std::size_t>((i * 7 + 100) % hosts.size())];
    spec.tag = static_cast<std::uint64_t>(++i);
    benchmark::DoNotOptimize(sim.predict_path(spec));
  }
}
BENCHMARK(BM_RoutePrediction);

void BM_FluidSimPermutation(benchmark::State& state) {
  auto& fabric = bench_fabric();
  const int flows = static_cast<int>(state.range(0));
  auto hosts = fabric.topo().hosts();
  for (auto _ : state) {
    net::FluidSim sim(fabric);
    for (int i = 0; i < flows; ++i) {
      net::FlowSpec spec;
      spec.src_host = hosts[static_cast<std::size_t>(i) % hosts.size()];
      spec.dst_host = hosts[(static_cast<std::size_t>(i) + 40) % hosts.size()];
      spec.src_rail = i % 8;
      spec.dst_rail = i % 8;
      spec.size = 4 * 1024 * 1024;
      spec.tag = static_cast<std::uint64_t>(i);
      sim.inject(spec);
    }
    sim.run();
    benchmark::DoNotOptimize(sim.now());
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
// 4096 was the pre-change 3x-speedup target; 65536 was previously not a
// feasible benchmark point (see BENCH_fluid.json / bench_fluid_scaling).
BENCHMARK(BM_FluidSimPermutation)->Arg(64)->Arg(256)->Arg(4096)->Arg(65536)
    ->Unit(benchmark::kMillisecond);

void BM_SeerGraphBuild(benchmark::State& state) {
  auto model = seer::ModelSpec::llama3_70b();
  parallel::ParallelismConfig cfg{.tp = 8, .dp = 16, .pp = 4, .ep = 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(seer::build_graph(model, cfg, seer::WorkloadShape{}));
  }
}
BENCHMARK(BM_SeerGraphBuild);

void BM_SeerForecastLlama70B(benchmark::State& state) {
  workload::TrainingSetup s;
  s.model = seer::ModelSpec::llama3_70b();
  s.parallel = {.tp = 8, .dp = 16, .pp = 4, .ep = 1};
  s.global_batch = 512;
  s.eff = std::make_shared<seer::TestbedEfficiency>();
  workload::Trainer trainer(s);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trainer.forecast_iteration().iteration_time);
  }
}
BENCHMARK(BM_SeerForecastLlama70B);

void BM_JsonTemplateParse(benchmark::State& state) {
  auto graph = seer::build_graph(seer::ModelSpec::llama3_70b(),
                                 {.tp = 8, .dp = 8, .pp = 8, .ep = 1},
                                 seer::WorkloadShape{});
  std::string text = graph.to_json().dump();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::Json::parse(text));
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_JsonTemplateParse);

void BM_ControllerRebalance(benchmark::State& state) {
  auto& fabric = bench_fabric();
  net::FluidSim sim(fabric);
  net::EcmpController controller(sim);
  std::vector<net::FlowSpec> specs;
  auto hosts = fabric.topo().hosts();
  for (int h = 0; h < 64; ++h) {
    net::FlowSpec s;
    s.src_host = hosts[static_cast<std::size_t>(h)];
    s.dst_host = hosts[(static_cast<std::size_t>(h) + 16) % hosts.size()];
    s.src_rail = 0;
    s.dst_rail = 0;
    s.size = 1;
    s.tag = static_cast<std::uint64_t>(h);
    specs.push_back(s);
  }
  for (auto _ : state) {
    auto copy = specs;
    benchmark::DoNotOptimize(controller.rebalance(copy));
  }
}
BENCHMARK(BM_ControllerRebalance);

}  // namespace

BENCHMARK_MAIN();
