// Multi-tenant fleet runtime: single-job equivalence with
// ClusterRuntime, queueing, preemption with checkpoint-commit, elastic
// shrink/regrow, blast-radius accounting, and determinism.
#include "monitor/fleet_runtime.h"

#include <gtest/gtest.h>

#include <functional>
#include <stdexcept>

#include "monitor/cluster_runtime.h"

namespace astral::monitor {
namespace {

topo::FabricParams fabric_params() {
  topo::FabricParams p;
  p.rails = 2;
  p.hosts_per_block = 8;
  p.blocks_per_pod = 2;
  p.pods = 1;
  return p;
}

JobConfig job_config(bool recovery = true) {
  JobConfig job;
  job.hosts = 12;
  job.iterations = 8;
  job.comm_bytes = 8ull * 1024 * 1024;
  job.recovery.enabled = recovery;
  return job;
}

void expect_same_record(const MitigationRecord& a, const MitigationRecord& b) {
  EXPECT_EQ(a.fault_index, b.fault_index);
  EXPECT_EQ(a.at_iteration, b.at_iteration);
  EXPECT_EQ(a.observed, b.observed);
  EXPECT_EQ(a.action, b.action);
  EXPECT_EQ(a.succeeded, b.succeeded);
  EXPECT_DOUBLE_EQ(a.detect_time, b.detect_time);
  EXPECT_DOUBLE_EQ(a.locate_time, b.locate_time);
  EXPECT_DOUBLE_EQ(a.recover_time, b.recover_time);
}

void expect_same_outcome(const RunOutcome& a, const RunOutcome& b) {
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.stopped_at_iteration, b.stopped_at_iteration);
  EXPECT_EQ(a.observed, b.observed);
  EXPECT_EQ(a.restarts, b.restarts);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.reroutes, b.reroutes);
  EXPECT_EQ(a.committed_iterations, b.committed_iterations);
  EXPECT_DOUBLE_EQ(a.useful_time, b.useful_time);
  EXPECT_DOUBLE_EQ(a.wasted_time, b.wasted_time);
  EXPECT_DOUBLE_EQ(a.downtime, b.downtime);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.goodput, b.goodput);
  ASSERT_EQ(a.mitigations.size(), b.mitigations.size());
  for (std::size_t i = 0; i < a.mitigations.size(); ++i) {
    expect_same_record(a.mitigations[i], b.mitigations[i]);
  }
}

/// Runs the same (pre-built) fault schedule through the single-job
/// ClusterRuntime and through a one-tenant fleet, and demands the fleet
/// ledger reproduce the ClusterRuntime ledger bit for bit. The schedule
/// is built on a scratch runtime so NEITHER side consumes make_fault rng
/// draws before running.
void expect_single_job_equivalence(const std::vector<FaultSpec>& schedule,
                                   JobConfig job, std::uint64_t seed) {
  topo::Fabric ref_fabric(fabric_params());
  ClusterRuntime ref(ref_fabric, job, seed);
  for (const FaultSpec& f : schedule) ref.inject(f);
  RunOutcome want = ref.run();

  topo::Fabric fleet_fabric(fabric_params());
  FleetConfig fc;
  fc.placement = parallel::HostPolicy::InOrder;  // the legacy acquisition
  FleetRuntime fleet(fleet_fabric, fc);
  FleetJobSpec spec;
  spec.job = job;
  spec.arrival = 0.0;
  spec.seed = seed;
  int id = fleet.submit(spec, schedule);
  FleetOutcome out = fleet.run();

  ASSERT_EQ(out.jobs.size(), 1u);
  const FleetJobLedger& ledger = out.jobs[static_cast<std::size_t>(id)];
  ASSERT_EQ(ledger.segments.size(), 1u);
  EXPECT_DOUBLE_EQ(ledger.first_start, 0.0);
  EXPECT_DOUBLE_EQ(ledger.queue_delay, 0.0);
  EXPECT_EQ(ledger.preemptions, 0);
  EXPECT_EQ(ledger.shrinks, 0);
  expect_same_outcome(ledger.merged, want);
  expect_same_outcome(ledger.segments[0].outcome, want);
}

std::vector<FaultSpec> scratch_schedule(
    const std::function<void(ClusterRuntime&, std::vector<FaultSpec>&)>& build,
    JobConfig job, std::uint64_t seed) {
  topo::Fabric fabric(fabric_params());
  ClusterRuntime scratch(fabric, job, seed);
  std::vector<FaultSpec> out;
  build(scratch, out);
  return out;
}

TEST(Fleet, SingleHealthyJobMatchesClusterRuntime) {
  expect_single_job_equivalence({}, job_config(), 7);
  expect_single_job_equivalence({}, job_config(/*recovery=*/false), 7);
}

TEST(Fleet, SingleFaultedJobMatchesClusterRuntime) {
  JobConfig job = job_config();
  std::uint64_t seed = 77;
  auto schedule = scratch_schedule(
      [](ClusterRuntime& rt, std::vector<FaultSpec>& out) {
        out.push_back(
            rt.make_fault(RootCause::GpuHardware, Manifestation::FailStop, 2));
        out.push_back(rt.make_mid_transfer_tor_death(5, 0.5));
      },
      job, seed);
  expect_single_job_equivalence(schedule, job, seed);
}

TEST(Fleet, SingleDegradedJobMatchesClusterRuntime) {
  JobConfig job = job_config();
  std::uint64_t seed = 13;
  auto schedule = scratch_schedule(
      [](ClusterRuntime& rt, std::vector<FaultSpec>& out) {
        out.push_back(
            rt.make_fault(RootCause::OpticalFiber, Manifestation::FailSlow, 1));
        out.push_back(
            rt.make_fault(RootCause::LinkFlap, Manifestation::FailStop, 4));
      },
      job, seed);
  expect_single_job_equivalence(schedule, job, seed);
}

TEST(Fleet, SubmitRejectsInvalidRecoveryConfig) {
  topo::Fabric fabric(fabric_params());
  FleetRuntime fleet(fabric, FleetConfig{});
  FleetJobSpec spec;
  spec.job = job_config();
  spec.job.recovery.checkpoint_interval = 0;
  EXPECT_THROW(fleet.submit(spec), std::invalid_argument);
}

TEST(Fleet, QueueingSerializesOversubscribedJobs) {
  topo::Fabric fabric(fabric_params());  // 16 hosts
  FleetConfig fc;
  fc.placement = parallel::HostPolicy::InOrder;
  FleetRuntime fleet(fabric, fc);
  for (int i = 0; i < 3; ++i) {
    FleetJobSpec spec;
    spec.job = job_config();
    spec.job.hosts = 12;  // only one fits at a time
    spec.arrival = 0.1 * static_cast<double>(i);
    spec.seed = 100 + static_cast<std::uint64_t>(i);
    fleet.submit(spec);
  }
  FleetOutcome out = fleet.run();
  ASSERT_EQ(out.jobs.size(), 3u);
  EXPECT_DOUBLE_EQ(out.completion_rate, 1.0);
  // FIFO within equal priority: each successor waits for its predecessor.
  EXPECT_DOUBLE_EQ(out.jobs[0].queue_delay, 0.0);
  EXPECT_GT(out.jobs[1].queue_delay, 0.0);
  EXPECT_GT(out.jobs[2].queue_delay, out.jobs[1].queue_delay);
  EXPECT_GE(out.jobs[1].first_start, out.jobs[0].finish);
  EXPECT_GE(out.jobs[2].first_start, out.jobs[1].finish);
  EXPECT_GT(out.queue_delay_p99, 0.0);
  EXPECT_GT(out.fleet_goodput, 0.0);
  EXPECT_GT(out.jobs_per_hour, 0.0);
}

TEST(Fleet, PreemptionChargesOnlyUncheckpointedWork) {
  topo::Fabric fabric(fabric_params());
  FleetConfig fc;
  fc.placement = parallel::HostPolicy::InOrder;
  FleetRuntime fleet(fabric, fc);

  FleetJobSpec victim;
  victim.job = job_config();
  victim.job.hosts = 12;
  victim.job.iterations = 16;
  victim.arrival = 0.0;
  victim.priority = 0;
  victim.seed = 5;
  int victim_id = fleet.submit(victim);

  FleetJobSpec vip;
  vip.job = job_config();
  vip.job.hosts = 12;
  vip.job.iterations = 4;
  vip.arrival = 0.5;  // lands mid-run of the victim
  vip.priority = 1;
  vip.seed = 6;
  int vip_id = fleet.submit(vip);

  FleetOutcome out = fleet.run();
  const FleetJobLedger& v = out.jobs[static_cast<std::size_t>(victim_id)];
  const FleetJobLedger& p = out.jobs[static_cast<std::size_t>(vip_id)];

  EXPECT_TRUE(p.completed);
  EXPECT_TRUE(v.completed);
  ASSERT_GE(v.preemptions, 1);
  ASSERT_GE(v.segments.size(), 2u);
  EXPECT_EQ(v.segments[0].end, SegmentEnd::Preempted);
  // Checkpoint-commit: the charge is bounded by one checkpoint interval
  // of useful time — committed-and-checkpointed work is never re-billed.
  int ci = victim.job.recovery.checkpoint_interval;
  const SegmentRecord& s0 = v.segments[0];
  EXPECT_GE(v.preempted_cost, 0.0);
  EXPECT_LE(v.preempted_cost, s0.outcome.useful_time);
  EXPECT_EQ(v.segments[1].start_iteration,
            (s0.outcome.committed_iterations / ci) * ci);
  // The VIP barely waits (one rewind + requeue, not the victim's whole
  // remaining run).
  EXPECT_LT(p.queue_delay, v.finish - p.arrival);
  // All work eventually lands: the victim finishes all 16 iterations.
  EXPECT_EQ(v.merged.committed_iterations, 16);
  EXPECT_DOUBLE_EQ(out.preemption_cost, v.preempted_cost);
}

TEST(Fleet, ElasticShrinkThenRegrow) {
  topo::FabricParams p;
  p.rails = 2;
  p.hosts_per_block = 2;
  p.blocks_per_pod = 2;
  p.pods = 1;  // 4 hosts: no spare capacity until the cordon heals
  topo::Fabric fabric(p);

  FleetConfig fc;
  fc.placement = parallel::HostPolicy::InOrder;
  fc.elastic.min_hosts = 2;
  fc.elastic.cordon_heal_time = 5.0;
  FleetRuntime fleet(fabric, fc);

  FleetJobSpec spec;
  spec.job = job_config();
  spec.job.hosts = 4;
  spec.job.iterations = 12;
  spec.job.recovery.max_restarts = 0;  // first host loss is terminal
  spec.arrival = 0.0;
  spec.seed = 9;

  FaultSpec dead;
  dead.cause = RootCause::GpuHardware;
  dead.manifestation = Manifestation::FailStop;
  dead.target_host_rank = 1;
  dead.at_iteration = 2;
  int id = fleet.submit(spec, {dead});

  FleetOutcome out = fleet.run();
  const FleetJobLedger& ledger = out.jobs[static_cast<std::size_t>(id)];
  EXPECT_TRUE(ledger.completed);
  EXPECT_GE(ledger.shrinks, 1);
  EXPECT_GE(ledger.regrows, 1);
  ASSERT_GE(ledger.segments.size(), 3u);
  EXPECT_EQ(ledger.segments[0].end, SegmentEnd::Shrunk);
  EXPECT_EQ(ledger.segments[0].hosts, 4);
  // The shrunk segment really runs smaller, then full size returns.
  bool saw_shrunk = false;
  for (const SegmentRecord& seg : ledger.segments) {
    if (seg.end == SegmentEnd::Regrown || seg.end == SegmentEnd::Completed) {
      if (seg.hosts == 3) saw_shrunk = true;
    }
  }
  EXPECT_TRUE(saw_shrunk);
  EXPECT_EQ(ledger.segments.back().end, SegmentEnd::Completed);
  EXPECT_EQ(ledger.segments.back().hosts, 4);
  EXPECT_EQ(ledger.merged.committed_iterations, 12);
}

TEST(Fleet, SwitchFaultBlastRadiusSpansTenants) {
  topo::Fabric fabric(fabric_params());
  FleetConfig fc;
  fc.placement = parallel::HostPolicy::InOrder;
  FleetRuntime fleet(fabric, fc);
  for (int i = 0; i < 2; ++i) {
    FleetJobSpec spec;
    spec.job = job_config();
    spec.job.hosts = 4;  // both tenants land in block 0 (InOrder)
    // Comm-bound (~80 ms transfers) so the strike lands mid-flight.
    spec.job.compute_time = 0.001;
    spec.job.comm_bytes = 2ull * 1024 * 1024 * 1024;
    spec.arrival = 0.0;
    spec.seed = 20 + static_cast<std::uint64_t>(i);
    fleet.submit(spec);
  }
  // Kill the whole rail-0 ToR of block 0 mid-run: one hardware event,
  // every tenant behind that switch is in the blast radius.
  topo::NodeId host0 = fabric.topo().hosts()[0];
  topo::LinkId uplink = fabric.topo().out_links(host0)[0];
  FleetFault ff;
  ff.at_time = 0.3;
  ff.cause = RootCause::SwitchBug;
  ff.manifestation = Manifestation::FailStop;
  ff.target_link = uplink;
  ff.switch_scope = true;
  fleet.inject(ff);

  FleetOutcome out = fleet.run();
  ASSERT_EQ(out.faults.size(), 1u);
  EXPECT_EQ(out.faults[0].jobs_touched.size(), 2u);
  EXPECT_GE(out.faults[0].host_hours_lost, 0.0);
  // Dual-rail failover: both tenants survive the ToR death, and the
  // in-flight reroute is credited to the tenants whose flows moved.
  EXPECT_TRUE(out.jobs[0].completed);
  EXPECT_TRUE(out.jobs[1].completed);
  EXPECT_GE(out.jobs[0].merged.reroutes + out.jobs[1].merged.reroutes, 1);
}

TEST(Fleet, HostFaultTouchesOnlyItsTenant) {
  topo::Fabric fabric(fabric_params());
  FleetConfig fc;
  fc.placement = parallel::HostPolicy::InOrder;
  FleetRuntime fleet(fabric, fc);
  for (int i = 0; i < 2; ++i) {
    FleetJobSpec spec;
    spec.job = job_config();
    spec.job.hosts = 4;
    spec.arrival = 0.0;
    spec.seed = 30 + static_cast<std::uint64_t>(i);
    fleet.submit(spec);
  }
  FleetFault ff;
  ff.at_time = 0.3;
  ff.cause = RootCause::GpuHardware;
  ff.manifestation = Manifestation::FailStop;
  ff.target_host = 1;  // owned by tenant 0 (InOrder)
  fleet.inject(ff);

  FleetOutcome out = fleet.run();
  ASSERT_EQ(out.faults.size(), 1u);
  ASSERT_EQ(out.faults[0].jobs_touched.size(), 1u);
  EXPECT_EQ(out.faults[0].jobs_touched[0], 0);
  EXPECT_GT(out.faults[0].host_hours_lost, 0.0);
  EXPECT_TRUE(out.jobs[1].completed);
  EXPECT_EQ(out.jobs[1].merged.mitigations.size(), 0u);
}

TEST(Fleet, ArrivalProcessIsSeededAndDeterministic) {
  ArrivalProcessConfig cfg;
  cfg.jobs = 16;
  cfg.seed = 42;
  auto a = generate_arrivals(cfg);
  auto b = generate_arrivals(cfg);
  ASSERT_EQ(a.size(), 16u);
  core::Seconds prev = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].job.hosts, b[i].job.hosts);
    EXPECT_DOUBLE_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].priority, b[i].priority);
    EXPECT_GE(a[i].arrival, prev);
    prev = a[i].arrival;
    bool known_size = a[i].job.hosts == 4 || a[i].job.hosts == 8 ||
                      a[i].job.hosts == 12;
    EXPECT_TRUE(known_size);
  }
  cfg.seed = 43;
  auto c = generate_arrivals(cfg);
  bool differs = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].arrival != c[i].arrival || a[i].job.hosts != c[i].job.hosts) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(Fleet, MixedCampaignIsDeterministic) {
  auto run_once = [] {
    topo::Fabric fabric(fabric_params());
    FleetConfig fc;
    fc.placement = parallel::HostPolicy::RailAligned;
    ArrivalProcessConfig ap;
    ap.jobs = 6;
    ap.arrival_rate = 2.0;
    ap.sizes = {4, 8};
    ap.size_weights = {0.6, 0.4};
    ap.iterations = 6;
    ap.seed = 11;
    FleetRuntime fleet(fabric, fc);
    for (const FleetJobSpec& spec : generate_arrivals(ap)) fleet.submit(spec);
    topo::NodeId host0 = fabric.topo().hosts()[0];
    FleetFault ff;
    ff.at_time = 0.4;
    ff.cause = RootCause::OpticalFiber;
    ff.manifestation = Manifestation::FailStop;
    ff.target_link = fabric.topo().out_links(host0)[0];
    ff.heal_after = 5.0;
    fleet.inject(ff);
    return fleet.run().to_json().dump(0);
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace astral::monitor
