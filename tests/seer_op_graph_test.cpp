#include "seer/op_graph.h"

#include <gtest/gtest.h>

namespace astral::seer {
namespace {

Operator comp(int id, std::string name, std::vector<int> deps, double flops = 1e9) {
  Operator op;
  op.id = id;
  op.name = std::move(name);
  op.type = OpType::Compute;
  op.deps = std::move(deps);
  op.flops = flops;
  return op;
}

Operator comm(int id, std::string name, std::vector<int> deps, CommKind kind,
              double bytes = 1e6, int group = 8) {
  Operator op;
  op.id = id;
  op.name = std::move(name);
  op.type = OpType::Comm;
  op.deps = std::move(deps);
  op.comm = kind;
  op.comm_bytes = bytes;
  op.comm_group = group;
  return op;
}

TEST(OpGraph, ValidatesCleanGraph) {
  OpGraph g;
  g.ops.push_back(comp(0, "a", {}));
  g.ops.push_back(comp(1, "b", {0}));
  g.ops.push_back(comm(2, "ar", {1}, CommKind::AllReduce));
  EXPECT_TRUE(g.validate());
}

TEST(OpGraph, RejectsDuplicateIds) {
  OpGraph g;
  g.ops.push_back(comp(0, "a", {}));
  g.ops.push_back(comp(0, "b", {}));
  std::string err;
  EXPECT_FALSE(g.validate(&err));
  EXPECT_NE(err.find("duplicate"), std::string::npos);
}

TEST(OpGraph, RejectsUnknownDeps) {
  OpGraph g;
  g.ops.push_back(comp(0, "a", {42}));
  std::string err;
  EXPECT_FALSE(g.validate(&err));
  EXPECT_NE(err.find("unknown"), std::string::npos);
}

TEST(OpGraph, RejectsSelfDependency) {
  OpGraph g;
  g.ops.push_back(comp(0, "a", {0}));
  EXPECT_FALSE(g.validate());
}

TEST(OpGraph, RejectsCycle) {
  OpGraph g;
  g.ops.push_back(comp(0, "a", {1}));
  g.ops.push_back(comp(1, "b", {0}));
  std::string err;
  EXPECT_FALSE(g.validate(&err));
  EXPECT_NE(err.find("cycle"), std::string::npos);
}

TEST(OpGraph, RejectsCommWithoutKind) {
  OpGraph g;
  Operator op;
  op.id = 0;
  op.type = OpType::Comm;
  g.ops.push_back(op);
  EXPECT_FALSE(g.validate());
}

TEST(OpGraph, TopoOrderRespectsDepsAndIds) {
  OpGraph g;
  g.ops.push_back(comp(3, "d", {1, 2}));
  g.ops.push_back(comp(1, "b", {0}));
  g.ops.push_back(comp(2, "c", {0}));
  g.ops.push_back(comp(0, "a", {}));
  auto order = g.topo_order();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(OpGraph, JsonRoundTrip) {
  OpGraph g;
  g.ops.push_back(comp(0, "SA", {}));
  g.ops.push_back(comm(1, "AttnTPAllReduce", {0}, CommKind::AllReduce, 2e6, 8));
  g.ops.back().cross_dc = true;
  Operator fixed = comp(2, "custom", {1}, 0);
  fixed.fixed_time = 1.5e-3;  // handcrafted execution time
  g.ops.push_back(fixed);

  auto doc = g.to_json();
  auto parsed = OpGraph::from_json(doc);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->ops.size(), 3u);
  EXPECT_EQ(parsed->ops[1].comm, CommKind::AllReduce);
  EXPECT_DOUBLE_EQ(parsed->ops[1].comm_bytes, 2e6);
  EXPECT_EQ(parsed->ops[1].comm_group, 8);
  EXPECT_TRUE(parsed->ops[1].cross_dc);
  EXPECT_DOUBLE_EQ(parsed->ops[2].fixed_time, 1.5e-3);
}

TEST(OpGraph, FromJsonRejectsBadSchema) {
  std::string err;
  auto missing = core::Json::parse(R"({"nope": []})");
  EXPECT_FALSE(OpGraph::from_json(*missing, &err).has_value());

  auto bad_type = core::Json::parse(R"({"ops":[{"id":0,"op":"quantum"}]})");
  EXPECT_FALSE(OpGraph::from_json(*bad_type, &err).has_value());

  auto bad_comm = core::Json::parse(R"({"ops":[{"id":0,"op":"comm","comm":"wat"}]})");
  EXPECT_FALSE(OpGraph::from_json(*bad_comm, &err).has_value());

  auto cyclic = core::Json::parse(
      R"({"ops":[{"id":0,"op":"comp","deps":[1]},{"id":1,"op":"comp","deps":[0]}]})");
  EXPECT_FALSE(OpGraph::from_json(*cyclic, &err).has_value());
}

TEST(OpGraph, HandcraftedTemplateParses) {
  // The documentation's minimal template example (§4.3 "Extending with
  // handcraft").
  auto doc = core::Json::parse(R"({
    "ops": [
      {"id": 0, "name": "SA", "op": "comp", "deps": [], "flops": 1e12},
      {"id": 1, "name": "NewOverlapOp", "op": "comm", "comm": "alltoall",
       "comm_bytes": 4e8, "comm_group": 16, "deps": []},
      {"id": 2, "name": "MLP", "op": "comp", "deps": [0, 1], "time": 0.002}
    ]})");
  ASSERT_TRUE(doc.has_value());
  auto g = OpGraph::from_json(*doc);
  ASSERT_TRUE(g.has_value());
  EXPECT_DOUBLE_EQ(g->ops[2].fixed_time, 0.002);
  EXPECT_DOUBLE_EQ(g->total_flops(), 1e12);
  EXPECT_DOUBLE_EQ(g->total_comm_bytes(), 4e8);
}

TEST(OpGraph, Totals) {
  OpGraph g;
  g.ops.push_back(comp(0, "a", {}, 5e9));
  g.ops.push_back(comp(1, "b", {0}, 3e9));
  g.ops.back().mem_bytes = 7e6;
  g.ops.push_back(comm(2, "c", {1}, CommKind::AllToAll, 11e6));
  EXPECT_DOUBLE_EQ(g.total_flops(), 8e9);
  EXPECT_DOUBLE_EQ(g.total_mem_bytes(), 7e6);
  EXPECT_DOUBLE_EQ(g.total_comm_bytes(), 11e6);
}

}  // namespace
}  // namespace astral::seer
