#include "core/json.h"

#include <gtest/gtest.h>

namespace astral::core {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(Json::parse("null")->is_null());
  EXPECT_TRUE(Json::parse("true")->as_bool());
  EXPECT_FALSE(Json::parse("false")->as_bool());
  EXPECT_DOUBLE_EQ(Json::parse("3.5")->as_number(), 3.5);
  EXPECT_DOUBLE_EQ(Json::parse("-12")->as_number(), -12.0);
  EXPECT_DOUBLE_EQ(Json::parse("1e3")->as_number(), 1000.0);
  EXPECT_EQ(Json::parse("\"hi\"")->as_string(), "hi");
}

TEST(Json, ParsesNestedDocument) {
  auto doc = Json::parse(R"({"ops":[{"id":0,"name":"SA","deps":[]},{"id":1,"deps":[0]}],
                             "ok":true})");
  ASSERT_TRUE(doc.has_value());
  EXPECT_TRUE((*doc)["ok"].as_bool());
  ASSERT_EQ((*doc)["ops"].size(), 2u);
  EXPECT_EQ((*doc)["ops"].at(0)["name"].as_string(), "SA");
  EXPECT_EQ((*doc)["ops"].at(1)["deps"].at(0).as_int(), 0);
}

TEST(Json, ParsesEscapes) {
  auto doc = Json::parse(R"("a\nb\t\"c\" A")");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->as_string(), "a\nb\t\"c\" A");
}

TEST(Json, RejectsMalformedInput) {
  std::string err;
  EXPECT_FALSE(Json::parse("{", &err).has_value());
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(Json::parse("[1,]").has_value());
  EXPECT_FALSE(Json::parse("{\"a\":}").has_value());
  EXPECT_FALSE(Json::parse("12 34").has_value());
  EXPECT_FALSE(Json::parse("\"unterminated").has_value());
  EXPECT_FALSE(Json::parse("nul").has_value());
}

TEST(Json, RoundTripsThroughDump) {
  Json doc = Json::object();
  doc["name"] = Json("llama3");
  doc["layers"] = Json(80);
  doc["ratio"] = Json(0.25);
  Json ops = Json::array();
  ops.push_back(Json("EmbeddingComputation"));
  ops.push_back(Json("GQACoreAttn"));
  doc["ops"] = ops;

  auto parsed = Json::parse(doc.dump());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ((*parsed)["name"].as_string(), "llama3");
  EXPECT_EQ((*parsed)["layers"].as_int(), 80);
  EXPECT_DOUBLE_EQ((*parsed)["ratio"].as_number(), 0.25);
  EXPECT_EQ((*parsed)["ops"].at(1).as_string(), "GQACoreAttn");
}

TEST(Json, PrettyPrintIsStableAndReparsable) {
  auto doc = Json::parse(R"({"b":[1,2],"a":{"x":null}})");
  ASSERT_TRUE(doc.has_value());
  std::string pretty = doc->dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  auto again = Json::parse(pretty);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->dump(), doc->dump());
}

TEST(Json, MissingLookupsAreNullNotFatal) {
  auto doc = Json::parse(R"({"a":1})");
  EXPECT_TRUE((*doc)["missing"].is_null());
  EXPECT_TRUE((*doc)["a"]["nested"].is_null());
  EXPECT_DOUBLE_EQ(doc->number_or("missing", 7.0), 7.0);
  EXPECT_EQ(doc->string_or("missing", "dflt"), "dflt");
  EXPECT_TRUE(doc->at(99).is_null());
}

TEST(Json, ObjectKeysSerializeSorted) {
  auto doc = Json::parse(R"({"zeta":1,"alpha":2})");
  std::string s = doc->dump();
  EXPECT_LT(s.find("alpha"), s.find("zeta"));
}

}  // namespace
}  // namespace astral::core
