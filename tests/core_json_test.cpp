#include "core/json.h"

#include <gtest/gtest.h>

#include <limits>

namespace astral::core {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(Json::parse("null")->is_null());
  EXPECT_TRUE(Json::parse("true")->as_bool());
  EXPECT_FALSE(Json::parse("false")->as_bool());
  EXPECT_DOUBLE_EQ(Json::parse("3.5")->as_number(), 3.5);
  EXPECT_DOUBLE_EQ(Json::parse("-12")->as_number(), -12.0);
  EXPECT_DOUBLE_EQ(Json::parse("1e3")->as_number(), 1000.0);
  EXPECT_EQ(Json::parse("\"hi\"")->as_string(), "hi");
}

TEST(Json, ParsesNestedDocument) {
  auto doc = Json::parse(R"({"ops":[{"id":0,"name":"SA","deps":[]},{"id":1,"deps":[0]}],
                             "ok":true})");
  ASSERT_TRUE(doc.has_value());
  EXPECT_TRUE((*doc)["ok"].as_bool());
  ASSERT_EQ((*doc)["ops"].size(), 2u);
  EXPECT_EQ((*doc)["ops"].at(0)["name"].as_string(), "SA");
  EXPECT_EQ((*doc)["ops"].at(1)["deps"].at(0).as_int(), 0);
}

TEST(Json, ParsesEscapes) {
  auto doc = Json::parse(R"("a\nb\t\"c\" A")");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->as_string(), "a\nb\t\"c\" A");
}

TEST(Json, RejectsMalformedInput) {
  std::string err;
  EXPECT_FALSE(Json::parse("{", &err).has_value());
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(Json::parse("[1,]").has_value());
  EXPECT_FALSE(Json::parse("{\"a\":}").has_value());
  EXPECT_FALSE(Json::parse("12 34").has_value());
  EXPECT_FALSE(Json::parse("\"unterminated").has_value());
  EXPECT_FALSE(Json::parse("nul").has_value());
}

TEST(Json, RoundTripsThroughDump) {
  Json doc = Json::object();
  doc["name"] = Json("llama3");
  doc["layers"] = Json(80);
  doc["ratio"] = Json(0.25);
  Json ops = Json::array();
  ops.push_back(Json("EmbeddingComputation"));
  ops.push_back(Json("GQACoreAttn"));
  doc["ops"] = ops;

  auto parsed = Json::parse(doc.dump());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ((*parsed)["name"].as_string(), "llama3");
  EXPECT_EQ((*parsed)["layers"].as_int(), 80);
  EXPECT_DOUBLE_EQ((*parsed)["ratio"].as_number(), 0.25);
  EXPECT_EQ((*parsed)["ops"].at(1).as_string(), "GQACoreAttn");
}

TEST(Json, PrettyPrintIsStableAndReparsable) {
  auto doc = Json::parse(R"({"b":[1,2],"a":{"x":null}})");
  ASSERT_TRUE(doc.has_value());
  std::string pretty = doc->dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  auto again = Json::parse(pretty);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->dump(), doc->dump());
}

TEST(Json, MissingLookupsAreNullNotFatal) {
  auto doc = Json::parse(R"({"a":1})");
  EXPECT_TRUE((*doc)["missing"].is_null());
  EXPECT_TRUE((*doc)["a"]["nested"].is_null());
  EXPECT_DOUBLE_EQ(doc->number_or("missing", 7.0), 7.0);
  EXPECT_EQ(doc->string_or("missing", "dflt"), "dflt");
  EXPECT_TRUE(doc->at(99).is_null());
}

TEST(Json, ObjectKeysSerializeSorted) {
  auto doc = Json::parse(R"({"zeta":1,"alpha":2})");
  std::string s = doc->dump();
  EXPECT_LT(s.find("alpha"), s.find("zeta"));
}

TEST(Json, NumbersSerializeShortestRoundTrip) {
  // The canonical form is the shortest decimal string that parses back
  // to the same double — not %.17g noise digits.
  EXPECT_EQ(Json(0.1).dump(), "0.1");
  EXPECT_EQ(Json(1.0 / 3.0).dump(), "0.3333333333333333");
  EXPECT_EQ(Json(2.5).dump(), "2.5");
  EXPECT_EQ(Json(1e-9).dump(), "1e-09");
  EXPECT_EQ(Json(-0.25).dump(), "-0.25");
  // Integral doubles keep the integer fast path.
  EXPECT_EQ(Json(3.0).dump(), "3");
  EXPECT_EQ(Json(-42.0).dump(), "-42");
}

TEST(Json, NumberDumpRoundTripsBitExact) {
  // parse(dump(x)) == x for awkward doubles: what makes two
  // serializations of equal values byte-identical and re-loadable.
  for (double d : {0.1, 0.2, 0.30000000000000004, 1.0 / 3.0, 3.141592653589793,
                   1e-300, 1.7976931348623157e308, 123456.789012345,
                   5.0e-324, -0.0078125}) {
    auto parsed = Json::parse(Json(d).dump());
    ASSERT_TRUE(parsed.has_value()) << d;
    EXPECT_EQ(parsed->as_number(), d) << d;
    // And the canonical form is a fixpoint: dump(parse(dump(x))) == dump(x).
    EXPECT_EQ(parsed->dump(), Json(d).dump()) << d;
  }
}

TEST(Json, NonFiniteNumbersDumpAsNull) {
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(), "null");
  EXPECT_EQ(Json(-std::numeric_limits<double>::infinity()).dump(), "null");
  EXPECT_EQ(Json(std::numeric_limits<double>::quiet_NaN()).dump(), "null");
  // The document stays parseable end-to-end.
  Json doc = Json::object();
  doc["bad"] = Json(std::numeric_limits<double>::quiet_NaN());
  auto parsed = Json::parse(doc.dump());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE((*parsed)["bad"].is_null());
}

TEST(Json, DumpIsStableAcrossCalls) {
  Json doc = Json::object();
  doc["ratio"] = Json(0.1);
  doc["ts"] = Json(123456.789012345);
  std::string first = doc.dump(2);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(doc.dump(2), first);
}

}  // namespace
}  // namespace astral::core
