// EWMA precursor alarm precision/recall, measured against the lossy
// monitoring plane: across every degradation profile a fault-free run
// raises zero alarms (precision), and a gray capacity fault raises one
// with usable lead time wherever the plane still delivers enough
// samples to trust (recall).
#include <gtest/gtest.h>

#include <string>

#include "monitor/cluster_runtime.h"
#include "monitor/degrade.h"
#include "monitor/stream_analyzer.h"

namespace astral::monitor {
namespace {

topo::Fabric alarm_fabric() {
  topo::FabricParams p;
  p.rails = 2;
  p.hosts_per_block = 4;
  p.blocks_per_pod = 2;
  p.pods = 2;
  p.dual_tor = true;
  return topo::Fabric(p);
}

// The gray-campaign job shape: comm-heavy iterations so a silent
// capacity loss shows up as a clear QP-goodput regression.
JobConfig alarm_job() {
  JobConfig job;
  job.hosts = 8;
  job.iterations = 10;
  job.compute_time = 0.005;
  job.comm_bytes = 64ull * 1024 * 1024;
  job.recovery.enabled = true;
  return job;
}

struct AlarmRun {
  RunOutcome outcome;
  std::uint64_t alarms = 0;
  core::Seconds first_alarm = -1.0;
  core::Seconds applied = -1.0;
};

AlarmRun run_profiled(const std::string& profile_name, bool with_fault,
                      std::uint64_t seed) {
  auto fabric = alarm_fabric();
  StreamAnalyzerConfig sc;
  sc.gray.enabled = true;
  StreamAnalyzer stream(fabric.topo(), sc);

  auto profile = DegradationProfile::by_name(profile_name);
  EXPECT_TRUE(profile.has_value()) << profile_name;
  TelemetryFaultModel model(*profile, seed + 31);

  ClusterRuntime rt(fabric, alarm_job(), seed);
  rt.set_telemetry_faults(&model);
  rt.set_stream_analyzer(&stream);
  if (with_fault) {
    rt.inject(rt.make_gray_fault(GrayKind::FlappingLink, 2));
  }

  AlarmRun r;
  r.outcome = rt.run();
  r.alarms = stream.alarms_raised();
  r.first_alarm = stream.first_alarm_time();
  if (with_fault) r.applied = rt.fault_applied_time(0);
  rt.set_stream_analyzer(nullptr);
  return r;
}

class GrayAlarmProfile : public ::testing::TestWithParam<std::string> {};

// Precision: a healthy run never alarms, no matter how degraded the
// monitoring plane itself is (drops, outages, skew, reordering must not
// fabricate a regression).
TEST_P(GrayAlarmProfile, FaultFreeRunRaisesNoAlarm) {
  for (std::uint64_t seed : {11ull, 12ull, 13ull}) {
    AlarmRun r = run_profiled(GetParam(), /*with_fault=*/false, seed);
    EXPECT_TRUE(r.outcome.completed);
    EXPECT_EQ(r.alarms, 0u) << GetParam() << " seed " << seed;
    EXPECT_EQ(r.first_alarm, -1.0) << GetParam() << " seed " << seed;
  }
}

// Recall: a flapping link raises a precursor alarm after the fault
// lands, with lead time before run end, on every profile that still
// delivers samples. The adversarial profile guts the plane, so there
// recall is best-effort — but an alarm that does fire must still be
// well-formed.
TEST_P(GrayAlarmProfile, GrayFaultRaisesAlarmWithLead) {
  const std::string profile = GetParam();
  bool plane_mostly_gone = profile == "adversarial";
  // Collector clock error shades every record stamp by up to this much.
  auto p = DegradationProfile::by_name(profile);
  ASSERT_TRUE(p.has_value());
  core::Seconds tol = p->max_clock_skew + p->max_jitter;
  int fired = 0;
  for (std::uint64_t seed : {21ull, 22ull, 23ull}) {
    AlarmRun r = run_profiled(profile, /*with_fault=*/true, seed);
    EXPECT_TRUE(r.outcome.completed);
    ASSERT_GE(r.applied, 0.0) << profile << " seed " << seed;
    if (r.alarms == 0) continue;
    ++fired;
    // Clock skew can shade the stamp, but the alarm belongs to the
    // incident: it rises around the fault (never from the healthy
    // warm-up) and leaves actionable lead before the run ends.
    EXPECT_GE(r.first_alarm, r.applied - tol) << profile << " seed " << seed;
    EXPECT_LT(r.first_alarm, r.applied + r.outcome.makespan + tol)
        << profile << " seed " << seed;
  }
  if (!plane_mostly_gone) {
    EXPECT_EQ(fired, 3) << profile << ": every degraded-but-alive plane "
                           "must still catch the regression";
  }
}

INSTANTIATE_TEST_SUITE_P(Profiles, GrayAlarmProfile,
                         ::testing::Values("clean", "mild", "severe",
                                           "adversarial"),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           return i.param;
                         });

// The alarm records themselves: pod in range, ratio recorded, signal
// printable, and the accessors consistent with each other.
TEST(GrayAlarm, AlarmRecordsAreWellFormed) {
  auto fabric = alarm_fabric();
  StreamAnalyzerConfig sc;
  sc.gray.enabled = true;
  StreamAnalyzer stream(fabric.topo(), sc);
  ClusterRuntime rt(fabric, alarm_job(), 5);
  rt.set_stream_analyzer(&stream);
  rt.inject(rt.make_gray_fault(GrayKind::FlappingLink, 2));
  rt.run();

  ASSERT_GE(stream.alarms_raised(), 1u);
  ASSERT_FALSE(stream.alarms().empty());
  EXPECT_LE(stream.alarms().size(), stream.alarms_raised());
  core::Seconds prev = -1.0;
  for (const GrayAlarm& a : stream.alarms()) {
    EXPECT_GE(a.pod, 0);
    EXPECT_LT(a.pod, fabric.params().pods);
    EXPECT_GT(a.ratio, 0.0);
    EXPECT_STRNE(to_string(a.signal), "");
    EXPECT_GE(a.t, prev);  // oldest first
    prev = a.t;
  }
  EXPECT_EQ(stream.first_alarm_time(), stream.alarms().front().t);
  // Per-pod filter: asking for the alarm's own pod finds it; a pod that
  // never alarmed reports none.
  EXPECT_EQ(stream.first_alarm_time(stream.alarms().front().pod),
            stream.alarms().front().t);
  rt.set_stream_analyzer(nullptr);
}

// Default-off: with cfg.gray.enabled false nothing is recorded even
// through a faulty run — the pre-alarm analyzer behavior.
TEST(GrayAlarm, DisabledConfigRecordsNothing) {
  auto fabric = alarm_fabric();
  StreamAnalyzer stream(fabric.topo(), StreamAnalyzerConfig{});
  ClusterRuntime rt(fabric, alarm_job(), 5);
  rt.set_stream_analyzer(&stream);
  rt.inject(rt.make_gray_fault(GrayKind::FlappingLink, 2));
  rt.run();
  EXPECT_EQ(stream.alarms_raised(), 0u);
  EXPECT_TRUE(stream.alarms().empty());
  EXPECT_EQ(stream.first_alarm_time(), -1.0);
  rt.set_stream_analyzer(nullptr);
}

}  // namespace
}  // namespace astral::monitor
