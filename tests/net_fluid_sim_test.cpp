#include "net/fluid_sim.h"

#include <gtest/gtest.h>

#include <string_view>

#include "core/units.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace astral::net {
namespace {

using core::gbps;
using core::Seconds;
using namespace core;  // literal operators (_MiB)

topo::Fabric small_fabric(topo::FabricStyle style = topo::FabricStyle::AstralSameRail) {
  topo::FabricParams p;
  p.style = style;
  p.rails = 4;
  p.hosts_per_block = 4;
  p.blocks_per_pod = 2;
  p.pods = 2;
  return topo::Fabric(p);
}

FlowSpec make_spec(const topo::Fabric& f, int src_gpu, int dst_gpu, core::Bytes size,
                   std::uint64_t tag = 0) {
  auto a = f.gpu(src_gpu);
  auto b = f.gpu(dst_gpu);
  FlowSpec s;
  s.src_host = a.host;
  s.dst_host = b.host;
  s.src_rail = a.rail;
  s.dst_rail = b.rail;
  s.size = size;
  s.tag = tag;
  return s;
}

TEST(FluidSim, SingleFlowRunsAtLineRate) {
  auto f = small_fabric();
  FluidSim sim(f);
  // Same-rail, cross-block: 200G NIC port is the bottleneck.
  auto spec = make_spec(f, 0, f.params().rails * f.params().hosts_per_block * 1, 25_MiB);
  FlowId id = sim.inject(spec);
  sim.run();
  const auto& st = sim.flow(id);
  ASSERT_TRUE(st.admitted);
  Seconds expected = core::transfer_time(25_MiB, gbps(200));
  EXPECT_NEAR(st.finish, expected, expected * 1e-6);
}

TEST(FluidSim, SameRailPathIsFourHops) {
  auto f = small_fabric();
  FluidSim sim(f);
  int dst = f.params().rails * f.params().hosts_per_block;  // next block, rail 0
  auto path = sim.predict_path(make_spec(f, 0, dst, 1_MiB));
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 4u);  // host->tor->agg->tor->host
}

TEST(FluidSim, CrossPodPathIsSixHops) {
  auto f = small_fabric();
  FluidSim sim(f);
  int dst = f.gpu_count() / 2;  // pod 1, rail 0
  auto path = sim.predict_path(make_spec(f, 0, dst, 1_MiB));
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 6u);
}

TEST(FluidSim, PathStartsOnSourceRailAndEndsOnDestinationRail) {
  auto f = small_fabric();
  FluidSim sim(f);
  int dst = f.params().rails * f.params().hosts_per_block + 2;  // rail 2
  auto spec = make_spec(f, 1, dst, 1_MiB);  // rail 1 -> rail 2
  auto path = sim.predict_path(spec);
  ASSERT_TRUE(path.has_value());
  const auto& topo = f.topo();
  const auto& first_tor = topo.node(topo.link(path->front()).dst);
  const auto& last_tor = topo.node(topo.link(path->back()).src);
  EXPECT_EQ(first_tor.rail, 1);
  EXPECT_EQ(last_tor.rail, 2);
}

TEST(FluidSim, TwoFlowsShareBottleneckFairly) {
  auto f = small_fabric();
  FluidSim sim(f);
  int dst = f.params().rails * f.params().hosts_per_block;
  // Two flows from the same NIC to the same destination NIC: they share
  // the 200G source port.
  auto s1 = make_spec(f, 0, dst, 10_MiB, 1);
  auto s2 = make_spec(f, 0, dst, 10_MiB, 2);
  FlowId f1 = sim.inject(s1);
  FlowId f2 = sim.inject(s2);
  sim.run();
  Seconds expected = core::transfer_time(20_MiB, gbps(200));
  EXPECT_NEAR(sim.flow(f1).finish, expected, expected * 0.02);
  EXPECT_NEAR(sim.flow(f2).finish, expected, expected * 0.02);
}

TEST(FluidSim, MaxMinShortFlowFinishesThenLongSpeedsUp) {
  auto f = small_fabric();
  FluidSim sim(f);
  int dst = f.params().rails * f.params().hosts_per_block;
  FlowId short_id = sim.inject(make_spec(f, 0, dst, 5_MiB, 1));
  FlowId long_id = sim.inject(make_spec(f, 0, dst, 15_MiB, 2));
  sim.run();
  // Shared 200G until the short one finishes at 2*5MiB, then the long
  // one gets the full port: total = (10 + 10) MiB at 200G equivalent.
  Seconds t_short = core::transfer_time(10_MiB, gbps(200));
  Seconds t_long = core::transfer_time(20_MiB, gbps(200));
  EXPECT_NEAR(sim.flow(short_id).finish, t_short, t_short * 0.02);
  EXPECT_NEAR(sim.flow(long_id).finish, t_long, t_long * 0.02);
}

TEST(FluidSim, StaggeredArrivalHonored) {
  auto f = small_fabric();
  FluidSim sim(f);
  int dst = f.params().rails * f.params().hosts_per_block;
  auto s1 = make_spec(f, 0, dst, 10_MiB, 1);
  auto s2 = make_spec(f, 0, dst, 10_MiB, 2);
  s2.start = core::msec(10);
  FlowId f1 = sim.inject(s1);
  sim.inject(s2);
  sim.run();
  // Flow 1 runs alone for 10ms (~25MB at 200G = 250MB/s... it transfers
  // 0.25 GB/s * 10 ms = 250 MB; actually 200G = 25 GB/s so 250 MB >
  // 10 MiB). Flow 1 finishes before flow 2 even starts.
  EXPECT_LT(sim.flow(f1).finish, core::msec(10));
}

TEST(FluidSim, UnroutableFlowRejected) {
  auto f = small_fabric(topo::FabricStyle::RailOnly);
  FluidSim sim(f);
  // Cross-rail on rail-only fabric: no route.
  auto spec = make_spec(f, 0, f.params().rails + 1, 1_MiB);
  FlowId id = sim.inject(spec);
  EXPECT_FALSE(sim.flow(id).admitted);
  sim.run();  // Must not hang.
  EXPECT_TRUE(sim.idle());
}

TEST(FluidSim, SameHostFlowRejected) {
  auto f = small_fabric();
  FluidSim sim(f);
  FlowId id = sim.inject(make_spec(f, 0, 1, 1_MiB));
  EXPECT_FALSE(sim.flow(id).admitted);
}

TEST(FluidSim, DegradedLinkSlowsFlow) {
  auto f = small_fabric();
  FluidSim sim(f);
  int dst = f.params().rails * f.params().hosts_per_block;
  auto spec = make_spec(f, 0, dst, 10_MiB, 7);
  auto path = sim.predict_path(spec);
  ASSERT_TRUE(path.has_value());
  sim.degrade_link(path->at(1), 0.25);  // damaged optical module on ToR->Agg
  FlowId id = sim.inject(spec);
  sim.run();
  Seconds degraded = core::transfer_time(10_MiB, gbps(100));  // 400G * 0.25
  EXPECT_NEAR(sim.flow(id).finish, degraded, degraded * 0.02);
}

TEST(FluidSim, BlockedLinkHangsUntilDeadline) {
  auto f = small_fabric();
  FluidSim sim(f);
  int dst = f.params().rails * f.params().hosts_per_block;
  auto spec = make_spec(f, 0, dst, 10_MiB, 9);
  auto path = sim.predict_path(spec);
  ASSERT_TRUE(path.has_value());
  sim.degrade_link(path->at(1), 0.0);  // silent blackhole -> fail-hang
  FlowId id = sim.inject(spec);
  sim.run(1.0);
  EXPECT_LT(sim.flow(id).finish, 0.0);  // never finished
  EXPECT_DOUBLE_EQ(sim.now(), 1.0);
}

TEST(FluidSim, EcnMarksAccrueUnderOverload) {
  auto f = small_fabric();
  FluidSim sim(f);
  // Many flows from different hosts, same destination NIC: the ToR->host
  // downlink is overloaded several-fold.
  int rails = f.params().rails;
  int dst = 0;
  for (int h = 1; h < 6; ++h) {
    sim.inject(make_spec(f, h * rails, dst, 20_MiB, static_cast<std::uint64_t>(h)));
  }
  sim.run();
  std::uint64_t total_ecn = 0;
  std::uint64_t total_pfc = 0;
  for (std::size_t l = 0; l < f.topo().link_count(); ++l) {
    total_ecn += sim.link_stats(static_cast<topo::LinkId>(l)).ecn_marks;
    total_pfc += sim.link_stats(static_cast<topo::LinkId>(l)).pfc_pauses;
  }
  EXPECT_GT(total_ecn, 0u);
  EXPECT_GT(total_pfc, 0u);  // 5x overload exceeds the PFC threshold
}

TEST(FluidSim, HopLatencyGrowsWithCongestion) {
  auto f = small_fabric();
  FluidSim::Config cfg;
  FluidSim sim(f, cfg);
  int rails = f.params().rails;
  auto spec0 = make_spec(f, rails, 0, 200_MiB, 1);
  auto path = sim.predict_path(spec0);
  ASSERT_TRUE(path.has_value());
  topo::LinkId last_hop = path->back();
  sim.inject(spec0);
  for (int h = 2; h < 6; ++h) {
    sim.inject(make_spec(f, h * rails, 0, 200_MiB, static_cast<std::uint64_t>(h)));
  }
  sim.run(core::msec(1));  // sample mid-transfer
  EXPECT_GT(sim.hop_latency(last_hop), cfg.base_hop_latency * 10);
  EXPECT_LE(sim.hop_latency(last_hop), cfg.base_hop_latency + cfg.max_queue_delay);
  sim.run();
  EXPECT_TRUE(sim.idle());
}

TEST(FluidSim, BytesForwardedMatchesFlowSizes) {
  auto f = small_fabric();
  FluidSim sim(f);
  int dst = f.params().rails * f.params().hosts_per_block;
  auto spec = make_spec(f, 0, dst, 8_MiB, 3);
  FlowId id = sim.inject(spec);
  sim.run();
  const auto& st = sim.flow(id);
  for (topo::LinkId l : st.path) {
    EXPECT_NEAR(sim.link_stats(l).bytes_forwarded, static_cast<double>(8_MiB),
                static_cast<double>(8_MiB) * 1e-6);
  }
}

TEST(FluidSim, RunUntilPausesAndResumes) {
  auto f = small_fabric();
  FluidSim sim(f);
  int dst = f.params().rails * f.params().hosts_per_block;
  FlowId id = sim.inject(make_spec(f, 0, dst, 25_MiB, 1));
  Seconds full = core::transfer_time(25_MiB, gbps(200));
  sim.run(full / 2);
  EXPECT_LT(sim.flow(id).finish, 0.0);
  EXPECT_GT(sim.flow(id).remaining, 0.0);
  sim.run();
  EXPECT_NEAR(sim.flow(id).finish, full, full * 0.01);
}

TEST(FluidSim, RunWatchReturnsWhenWatchedFlowsFinish) {
  auto f = small_fabric();
  FluidSim sim(f);
  int dst = f.params().rails * f.params().hosts_per_block;
  // A short watched flow plus an endless background flow on another rail.
  auto bg_spec = make_spec(f, 2, dst + 2, static_cast<core::Bytes>(1) << 50, 50);
  sim.inject(bg_spec);
  FlowId watched = sim.inject(make_spec(f, 0, dst, 10_MiB, 51));
  std::vector<FlowId> watch{watched};
  sim.run_watch(watch);
  EXPECT_GE(sim.flow(watched).finish, 0.0);
  EXPECT_FALSE(sim.idle());  // background still running
}

TEST(FluidSim, RunWatchSharesBandwidthWithBackground) {
  auto f = small_fabric();
  FluidSim sim(f);
  int dst = f.params().rails * f.params().hosts_per_block;
  // Background pinned to the same NIC port (identical 5-tuple hash):
  // the watched flow gets half rate.
  auto bg = make_spec(f, 0, dst, static_cast<core::Bytes>(1) << 50, 60);
  bg.src_port = 7777;
  sim.inject(bg);
  auto w = make_spec(f, 0, dst, 10_MiB, 61);
  w.src_port = 7777;
  FlowId watched = sim.inject(w);
  std::vector<FlowId> watch{watched};
  sim.run_watch(watch);
  Seconds shared = core::transfer_time(20_MiB, gbps(200));
  EXPECT_NEAR(sim.flow(watched).finish, shared, shared * 0.05);
}

TEST(FluidSim, IdleFabricReportsNoPhantomQueueing) {
  auto f = small_fabric();
  FluidSim::Config cfg;
  FluidSim sim(f, cfg);
  // Overload one destination NIC several-fold, then let everything drain.
  int rails = f.params().rails;
  for (int h = 1; h < 6; ++h) {
    sim.inject(make_spec(f, h * rails, 0, 20_MiB, static_cast<std::uint64_t>(h)));
  }
  sim.run(core::msec(1));
  bool congested_mid_run = false;
  for (std::size_t l = 0; l < f.topo().link_count(); ++l) {
    if (sim.hop_latency(static_cast<topo::LinkId>(l)) > cfg.base_hop_latency) {
      congested_mid_run = true;
    }
  }
  EXPECT_TRUE(congested_mid_run);
  sim.run();
  ASSERT_TRUE(sim.idle());
  // Regression: overloads must clear when the last flow completes; the
  // INT/pingmesh view previously kept reporting phantom queueing.
  for (std::size_t l = 0; l < f.topo().link_count(); ++l) {
    EXPECT_EQ(sim.hop_latency(static_cast<topo::LinkId>(l)), cfg.base_hop_latency)
        << "link " << l << " reports queueing on an idle fabric";
  }
}

TEST(FluidSim, DegradeMidRunKeepsPriorIntervalAttribution) {
  auto f = small_fabric();
  FluidSim sim(f);
  int dst = f.params().rails * f.params().hosts_per_block;
  auto spec = make_spec(f, 0, dst, 25_MiB, 1);
  auto path = sim.predict_path(spec);
  ASSERT_TRUE(path.has_value());
  FlowId id = sim.inject(spec);
  Seconds half = core::transfer_time(25_MiB, gbps(200)) / 2;
  sim.run(half);
  // The first half ran at full rate: counters for that interval must be
  // attributed at pre-degradation rates/overloads, and degrading must not
  // retroactively change them.
  double bytes_before = sim.link_stats(path->front()).bytes_forwarded;
  double busy_before = sim.link_stats(path->front()).busy_time;
  EXPECT_NEAR(bytes_before, static_cast<double>(25_MiB) / 2,
              static_cast<double>(25_MiB) * 1e-6);
  sim.degrade_link(path->at(1), 0.25);
  EXPECT_DOUBLE_EQ(sim.link_stats(path->front()).bytes_forwarded, bytes_before);
  EXPECT_DOUBLE_EQ(sim.link_stats(path->front()).busy_time, busy_before);
  sim.run();
  // Second half at 100G: total time = half + 4*half of the remaining.
  Seconds expected = half + core::transfer_time(25_MiB, gbps(100)) / 2;
  EXPECT_NEAR(sim.flow(id).finish, expected, expected * 0.02);
  EXPECT_NEAR(sim.link_stats(path->front()).bytes_forwarded,
              static_cast<double>(25_MiB), static_cast<double>(25_MiB) * 1e-5);
}

TEST(FluidSim, RecycleFinishedCampaignPreservesInvariants) {
  auto f = small_fabric();
  FluidSim sim(f);
  int rails = f.params().rails;
  int dst = rails * f.params().hosts_per_block;
  Seconds per_iter = core::transfer_time(8_MiB, gbps(200));
  std::vector<FlowId> iter_ids;
  Seconds first_duration = -1.0;
  for (int iter = 0; iter < 100; ++iter) {
    Seconds t0 = sim.now();
    iter_ids.clear();
    // A same-start wave plus one flow arriving mid-iteration (pending
    // while backlog() is sampled).
    for (int i = 0; i < 4; ++i) {
      auto spec = make_spec(f, i * rails, dst + i * rails, 8_MiB,
                            static_cast<std::uint64_t>(iter * 10 + i));
      spec.start = t0;
      iter_ids.push_back(sim.inject(spec));
    }
    auto late = make_spec(f, 4 * rails, dst, 2_MiB, static_cast<std::uint64_t>(iter * 10 + 9));
    late.start = t0 + per_iter / 4;
    FlowId late_id = sim.inject(late);
    // Mid-iteration: pending flow must be counted in the backlog.
    sim.run(t0 + per_iter / 8);
    EXPECT_GE(sim.backlog(), static_cast<core::Bytes>(2_MiB));
    sim.run();
    ASSERT_TRUE(sim.idle());
    EXPECT_EQ(sim.backlog(), 0u);
    for (FlowId id : iter_ids) EXPECT_GE(sim.flow(id).finish, 0.0);
    EXPECT_GE(sim.flow(late_id).finish, 0.0);
    Seconds duration = sim.now() - t0;
    if (iter == 0) {
      first_duration = duration;
    } else {
      // Recycled state must not leak into later iterations' results.
      EXPECT_NEAR(duration, first_duration, first_duration * 1e-9);
    }
    sim.recycle_finished();
    // Paths (and solver bookkeeping) freed for every finished flow.
    for (FlowId id : iter_ids) {
      EXPECT_TRUE(sim.flow(id).path.empty());
      EXPECT_EQ(sim.flow(id).path.capacity(), 0u);
      EXPECT_TRUE(sim.flow(id).member_pos.empty());
    }
  }
  // Counters survive recycling: 100 iterations of 4x8MiB + 1x2MiB.
  double total_bytes = 0.0;
  for (std::size_t l = 0; l < f.topo().link_count(); ++l) {
    total_bytes += sim.link_stats(static_cast<topo::LinkId>(l)).bytes_forwarded;
  }
  // Each flow crosses >= 4 links; lower-bound the aggregate.
  EXPECT_GT(total_bytes, 100 * 4 * static_cast<double>(8_MiB));
  EXPECT_EQ(sim.flow_count(), 500u);
}

TEST(FluidSim, InjectBatchMatchesSequentialInject) {
  auto f = small_fabric();
  int dst = f.params().rails * f.params().hosts_per_block;
  std::vector<FlowSpec> specs;
  for (int i = 0; i < 6; ++i) {
    auto s = make_spec(f, (i % 3) * f.params().rails, dst + (i % 2) * f.params().rails,
                       6_MiB, static_cast<std::uint64_t>(i));
    s.start = i < 4 ? 0.0 : core::usec(40);
    specs.push_back(s);
  }
  FluidSim seq(f);
  for (const auto& s : specs) seq.inject(s);
  seq.run();
  FluidSim bat(f);
  auto ids = bat.inject_batch(specs);
  ASSERT_EQ(ids.size(), specs.size());
  bat.run();
  EXPECT_DOUBLE_EQ(bat.now(), seq.now());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_DOUBLE_EQ(bat.flow(ids[i]).finish, seq.flow(static_cast<FlowId>(i)).finish);
  }
}

TEST(FluidSim, RunForeverSentinel) {
  EXPECT_FALSE(is_bounded(kRunForever));
  EXPECT_TRUE(is_bounded(1.0));
  auto f = small_fabric();
  FluidSim sim(f);
  int dst = f.params().rails * f.params().hosts_per_block;
  FlowId id = sim.inject(make_spec(f, 0, dst, 10_MiB, 1));
  sim.run(kRunForever);  // explicit sentinel: drain, don't park the clock
  EXPECT_GE(sim.flow(id).finish, 0.0);
  EXPECT_DOUBLE_EQ(sim.now(), sim.flow(id).finish);
  sim.run(5.0);  // bounded deadline on an idle sim parks the clock
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(FluidSim, DeterministicAcrossRuns) {
  for (int trial = 0; trial < 2; ++trial) {
    static Seconds first_finish = -1;
    auto f = small_fabric();
    FluidSim sim(f);
    for (int i = 0; i < 8; ++i) {
      sim.inject(make_spec(f, i * f.params().rails % f.gpu_count(),
                           (i * f.params().rails + f.params().rails * 5) % f.gpu_count(),
                           4_MiB, static_cast<std::uint64_t>(i)));
    }
    sim.run();
    if (trial == 0) {
      first_finish = sim.now();
    } else {
      EXPECT_DOUBLE_EQ(sim.now(), first_finish);
    }
  }
}

// Shard telemetry is opt-in: with cfg.shard_telemetry the sharded solver
// reports per-shard spans on the Link track plus shard/reconcile
// counters and a per-shard solve-time histogram.
TEST(FluidSim, ShardTelemetryEmitsSpansAndCounters) {
  auto f = small_fabric();
  FluidSimConfig cfg;
  cfg.shard_telemetry = true;
  FluidSim sim(f, cfg);
  obs::Metrics metrics;
  obs::Tracer tracer;
  sim.set_metrics(&metrics);
  sim.set_tracer(&tracer);
  for (int i = 0; i < 16; ++i) {
    sim.inject(make_spec(f, i % 8, (i + 3) % 8, 4_MiB, static_cast<std::uint64_t>(i)));
  }
  sim.run(core::usec(10));
  sim.resolve_rates();

  EXPECT_GT(metrics.counter("fluidsim.solves.sharded"), 0u);
  EXPECT_GT(metrics.counter("fluidsim.shards.solved"), 0u);
  const obs::Histogram* h = metrics.find_histogram("fluidsim.shard_solve_us");
  ASSERT_NE(h, nullptr);
  EXPECT_GT(h->count(), 0u);
  std::size_t shard_spans = 0;
  for (const auto& ev : tracer.events(obs::Track::Link)) {
    if (std::string_view(ev.name) == "solver.shard") ++shard_spans;
  }
  EXPECT_GT(shard_spans, 0u);
  EXPECT_GT(sim.solver_shard_count(), 1u);
}

// With telemetry off (the default), the sharded solver must add nothing
// to the registry beyond what the monolithic solver records — metric
// snapshots and traces stay byte-identical to pre-sharding fixtures.
TEST(FluidSim, ShardTelemetryOffAddsNoMetrics) {
  auto f = small_fabric();
  FluidSim sim(f);
  obs::Metrics metrics;
  obs::Tracer tracer;
  sim.set_metrics(&metrics);
  sim.set_tracer(&tracer);
  for (int i = 0; i < 16; ++i) {
    sim.inject(make_spec(f, i % 8, (i + 3) % 8, 4_MiB, static_cast<std::uint64_t>(i)));
  }
  sim.run(core::usec(10));
  sim.resolve_rates();

  EXPECT_EQ(metrics.counter("fluidsim.solves.sharded"), 0u);
  EXPECT_EQ(metrics.counter("fluidsim.shards.solved"), 0u);
  EXPECT_EQ(metrics.find_histogram("fluidsim.shard_solve_us"), nullptr);
  for (const auto& ev : tracer.events(obs::Track::Link)) {
    EXPECT_NE(std::string_view(ev.name), "solver.shard");
  }
}

}  // namespace
}  // namespace astral::net
