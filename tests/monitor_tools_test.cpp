#include "monitor/offline_tools.h"

#include <gtest/gtest.h>

#include "monitor/mttlf.h"

namespace astral::monitor {
namespace {

topo::Fabric test_fabric() {
  topo::FabricParams p;
  p.rails = 2;
  p.hosts_per_block = 4;
  p.blocks_per_pod = 2;
  p.pods = 1;
  return topo::Fabric(p);
}

TEST(WiringVerify, CleanBuildPasses) {
  auto f = test_fabric();
  auto wiring = collect_wiring(f);
  EXPECT_TRUE(verify_wiring(f, wiring).empty());
}

TEST(WiringVerify, DetectsSwappedCables) {
  auto f = test_fabric();
  auto wiring = collect_wiring(f);
  swap_wires(wiring, 3, 17);
  auto mismatches = verify_wiring(f, wiring);
  ASSERT_EQ(mismatches.size(), 2u);  // both ends of the swap
  for (const auto& m : mismatches) {
    EXPECT_NE(m.expected_dst, m.observed_dst);
  }
}

TEST(WiringVerify, SwapWithIdenticalDstIsInvisible) {
  auto f = test_fabric();
  auto wiring = collect_wiring(f);
  swap_wires(wiring, 5, 5);  // no-op
  EXPECT_TRUE(verify_wiring(f, wiring).empty());
}

TEST(ConfigVerify, ConsistentFleetPasses) {
  std::vector<ClusterRuntime::HostConfig> configs(8);
  EXPECT_TRUE(verify_configs(configs).empty());
}

TEST(ConfigVerify, FlagsMinorityNcclVersion) {
  std::vector<ClusterRuntime::HostConfig> configs(8);
  configs[3].nccl_version = "2.19.3";
  auto mismatches = verify_configs(configs);
  ASSERT_EQ(mismatches.size(), 1u);
  EXPECT_EQ(mismatches[0].host_rank, 3);
  EXPECT_EQ(mismatches[0].field, "nccl_version");
  EXPECT_EQ(mismatches[0].majority_value, ClusterRuntime::HostConfig{}.nccl_version);
}

TEST(ConfigVerify, FlagsMultipleFields) {
  std::vector<ClusterRuntime::HostConfig> configs(6);
  configs[1].pfc_enabled = false;
  configs[4].dcqcn_k = 5;
  auto mismatches = verify_configs(configs);
  EXPECT_EQ(mismatches.size(), 2u);
}

TEST(Hostping, CleanFabricHasNoSlowPairs) {
  auto f = test_fabric();
  net::FluidSim sim(f);
  auto hosts = f.topo().hosts();
  std::vector<topo::NodeId> job(hosts.begin(), hosts.begin() + 4);
  auto slow = hostping_sweep(sim, job, core::usec(30));
  EXPECT_TRUE(slow.empty());
}

TEST(GpuBurn, FlagsUnderperformers) {
  std::vector<double> gflops{990, 1000, 1010, 995, 700, 1005};
  auto out = gpu_burn_outliers(gflops);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 4);
  EXPECT_TRUE(gpu_burn_outliers({}).empty());
}

TEST(Mttlf, ManualTimesRankHangWorst) {
  core::Rng rng(5);
  double stop = manual_locate_time(RootCause::GpuHardware, Manifestation::FailStop, 16, rng);
  double hang = manual_locate_time(RootCause::SwitchBug, Manifestation::FailHang, 16, rng);
  double slow = manual_locate_time(RootCause::OpticalFiber, Manifestation::FailSlow, 16, rng);
  EXPECT_GT(hang, stop * 2);
  EXPECT_GT(hang, slow * 2);
  EXPECT_GT(stop, 600.0);  // manual is never minutes
}

TEST(Mttlf, CampaignReproducesFig10Shape) {
  CampaignConfig cfg;
  cfg.faults = 60;
  auto result = run_campaign(cfg);
  ASSERT_EQ(result.entries.size(), 60u);

  // Fig. 10: MTTLF reductions. The exact factors depend on the mix, but
  // the ordering and magnitudes must hold: hang benefits most, slow the
  // least, everything improves.
  for (auto m : {Manifestation::FailStop, Manifestation::FailHang,
                 Manifestation::FailSlow}) {
    double with = result.mttlf_with_system(m);
    double manual = result.mttlf_manual(m);
    if (with <= 0) continue;  // manifestation absent from this sample
    EXPECT_LT(with, manual) << to_string(m);
  }
  double stop_gain = result.mttlf_manual(Manifestation::FailStop) /
                     result.mttlf_with_system(Manifestation::FailStop);
  double hang_gain = result.mttlf_manual(Manifestation::FailHang) /
                     result.mttlf_with_system(Manifestation::FailHang);
  EXPECT_GT(stop_gain, 4.0);
  EXPECT_GT(hang_gain, stop_gain * 0.8);  // hang benefits at least as much

  // Most faults are localized automatically.
  EXPECT_GT(result.accuracy(), 0.5);
}

TEST(Mttlf, CampaignTaxonomyMatchesInjection) {
  CampaignConfig cfg;
  cfg.faults = 40;
  cfg.seed = 99;
  auto result = run_campaign(cfg);
  auto counts = result.cause_counts();
  int total = 0;
  for (const auto& [cause, n] : counts) total += n;
  EXPECT_EQ(total, 40);
  // Host env & config should be the plurality over a decent sample.
  EXPECT_GE(counts[RootCause::HostEnvConfig], 5);
}

}  // namespace
}  // namespace astral::monitor
