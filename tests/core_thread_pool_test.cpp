// core::ThreadPool: the work-stealing pool under the sharded max-min
// solver. The contract under test: every item in [0, n) runs exactly
// once, lanes are valid arena indices, back-to-back jobs never bleed
// into each other (the straggler hazard), and a single-lane pool runs
// inline without spawning threads.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <thread>
#include <vector>

#include "core/thread_pool.h"

namespace astral::core {
namespace {

TEST(ThreadPool, SingleLaneRunsInlineInOrder) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.lanes(), 1);
  const auto caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  pool.parallel_for(100, [&](std::size_t i, int lane) {
    EXPECT_EQ(lane, 0);
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  ASSERT_EQ(order.size(), 100u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, LanesClampedToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.lanes(), 1);
  ThreadPool neg(-3);
  EXPECT_EQ(neg.lanes(), 1);
}

TEST(ThreadPool, EveryItemRunsExactlyOnce) {
  for (int lanes : {2, 4, 8}) {
    ThreadPool pool(lanes);
    constexpr std::size_t kItems = 10000;
    std::vector<std::atomic<int>> hits(kItems);
    pool.parallel_for(kItems, [&](std::size_t i, int lane) {
      ASSERT_GE(lane, 0);
      ASSERT_LT(lane, pool.lanes());
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kItems; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "item " << i << " lanes " << lanes;
    }
  }
}

TEST(ThreadPool, EmptyAndSingleItemJobs) {
  ThreadPool pool(4);
  int ran = 0;
  pool.parallel_for(0, [&](std::size_t, int) { ++ran; });
  EXPECT_EQ(ran, 0);
  pool.parallel_for(1, [&](std::size_t i, int lane) {
    EXPECT_EQ(i, 0u);
    EXPECT_EQ(lane, 0);  // n == 1 runs inline on the caller.
    ++ran;
  });
  EXPECT_EQ(ran, 1);
}

// Uneven per-item cost forces stealing: lane 0's chunk is made slow so
// other lanes must steal from its back for the job to finish promptly.
TEST(ThreadPool, StealingCoversSkewedWork) {
  ThreadPool pool(4);
  constexpr std::size_t kItems = 64;
  std::vector<std::atomic<int>> hits(kItems);
  std::atomic<long long> checksum{0};
  pool.parallel_for(kItems, [&](std::size_t i, int) {
    if (i < kItems / 4) {  // lane 0's chunk
      volatile long long sink = 0;
      for (int k = 0; k < 200000; ++k) sink = sink + k;
      checksum.fetch_add(sink, std::memory_order_relaxed);
    }
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kItems; ++i) ASSERT_EQ(hits[i].load(), 1);
}

// Back-to-back jobs with different callables: no item from job k may run
// with job k+1's body (the cross-generation straggler hazard).
TEST(ThreadPool, BackToBackJobsDoNotBleed) {
  ThreadPool pool(4);
  constexpr int kJobs = 200;
  constexpr std::size_t kItems = 257;
  for (int j = 0; j < kJobs; ++j) {
    std::atomic<long long> sum{0};
    pool.parallel_for(kItems, [&sum, j](std::size_t i, int) {
      sum.fetch_add(j * 1000 + static_cast<long long>(i),
                    std::memory_order_relaxed);
    });
    const long long items_sum =
        static_cast<long long>(kItems * (kItems - 1)) / 2;
    ASSERT_EQ(sum.load(), static_cast<long long>(j) * 1000 * kItems + items_sum)
        << "job " << j;
  }
}

// Lane indices let callers write into pre-sized per-lane arenas without
// synchronization; per-lane tallies must add up to every item.
TEST(ThreadPool, PerLaneArenasSeeAllItems) {
  ThreadPool pool(3);
  constexpr std::size_t kItems = 5000;
  std::vector<std::vector<std::size_t>> arenas(
      static_cast<std::size_t>(pool.lanes()));
  pool.parallel_for(kItems, [&](std::size_t i, int lane) {
    arenas[static_cast<std::size_t>(lane)].push_back(i);
  });
  std::vector<char> seen(kItems, 0);
  std::size_t total = 0;
  for (const auto& a : arenas) {
    for (std::size_t i : a) {
      ASSERT_LT(i, kItems);
      ASSERT_EQ(seen[i], 0);
      seen[i] = 1;
      ++total;
    }
  }
  EXPECT_EQ(total, kItems);
}

TEST(ThreadPool, MoreLanesThanItems) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(3, [&](std::size_t i, int) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

}  // namespace
}  // namespace astral::core
