#include "seer/engine.h"

#include <gtest/gtest.h>

#include <memory>

namespace astral::seer {
namespace {

SeerEngine make_engine() {
  return SeerEngine(
      CostModel(GpuSpec::h100(), CommEnv{}, std::make_shared<TheoreticalEfficiency>()));
}

Operator fixed_op(int id, std::string name, OpType type, double time,
                  std::vector<int> deps) {
  Operator op;
  op.id = id;
  op.name = std::move(name);
  op.type = type;
  op.deps = std::move(deps);
  op.fixed_time = time;
  if (type == OpType::Comm) {
    op.comm = CommKind::AllReduce;
    op.comm_group = 8;
  }
  return op;
}

TEST(SeerEngine, EmptyGraph) {
  auto tl = make_engine().run(OpGraph{});
  EXPECT_DOUBLE_EQ(tl.makespan, 0.0);
  EXPECT_TRUE(tl.events.empty());
}

TEST(SeerEngine, SerialChainSumsDurations) {
  OpGraph g;
  g.ops.push_back(fixed_op(0, "a", OpType::Compute, 1.0, {}));
  g.ops.push_back(fixed_op(1, "b", OpType::Compute, 2.0, {0}));
  g.ops.push_back(fixed_op(2, "c", OpType::Compute, 3.0, {1}));
  auto tl = make_engine().run(g);
  EXPECT_DOUBLE_EQ(tl.makespan, 6.0);
  EXPECT_DOUBLE_EQ(tl.exec_busy, 6.0);
  ASSERT_EQ(tl.events.size(), 3u);
  EXPECT_DOUBLE_EQ(tl.events[2].start, 3.0);
}

TEST(SeerEngine, IndependentCommOverlapsCompute) {
  OpGraph g;
  g.ops.push_back(fixed_op(0, "comp", OpType::Compute, 4.0, {}));
  g.ops.push_back(fixed_op(1, "comm", OpType::Comm, 3.0, {}));
  auto tl = make_engine().run(g);
  EXPECT_DOUBLE_EQ(tl.makespan, 4.0);  // full overlap
  EXPECT_DOUBLE_EQ(tl.exposed_comm, 0.0);
}

TEST(SeerEngine, DependentCommIsExposed) {
  OpGraph g;
  g.ops.push_back(fixed_op(0, "comp", OpType::Compute, 2.0, {}));
  g.ops.push_back(fixed_op(1, "comm", OpType::Comm, 3.0, {0}));
  auto tl = make_engine().run(g);
  EXPECT_DOUBLE_EQ(tl.makespan, 5.0);
  EXPECT_DOUBLE_EQ(tl.exposed_comm, 3.0);
}

TEST(SeerEngine, PartialOverlapAccounting) {
  // comm (4s) starts at 0; compute ops cover [0, 2): half the comm time
  // is hidden.
  OpGraph g;
  g.ops.push_back(fixed_op(0, "comm", OpType::Comm, 4.0, {}));
  g.ops.push_back(fixed_op(1, "comp", OpType::Compute, 2.0, {}));
  auto tl = make_engine().run(g);
  EXPECT_DOUBLE_EQ(tl.makespan, 4.0);
  EXPECT_DOUBLE_EQ(tl.exposed_comm, 2.0);
}

TEST(SeerEngine, StreamsSerializeWithinThemselves) {
  OpGraph g;
  g.ops.push_back(fixed_op(0, "c1", OpType::Comm, 2.0, {}));
  g.ops.push_back(fixed_op(1, "c2", OpType::Comm, 2.0, {}));
  auto tl = make_engine().run(g);
  // Same stream: sequential despite no dependency.
  EXPECT_DOUBLE_EQ(tl.makespan, 4.0);
  EXPECT_DOUBLE_EQ(tl.comm_busy, 4.0);
}

TEST(SeerEngine, ReadyTiesDispatchByIdDeterministically) {
  OpGraph g;
  g.ops.push_back(fixed_op(2, "late", OpType::Compute, 1.0, {}));
  g.ops.push_back(fixed_op(1, "early", OpType::Compute, 1.0, {}));
  auto tl = make_engine().run(g);
  ASSERT_EQ(tl.events.size(), 2u);
  EXPECT_EQ(tl.events[0].op_id, 1);
  EXPECT_EQ(tl.events[1].op_id, 2);
}

TEST(SeerEngine, DiamondDependency) {
  OpGraph g;
  g.ops.push_back(fixed_op(0, "src", OpType::Compute, 1.0, {}));
  g.ops.push_back(fixed_op(1, "left", OpType::Compute, 2.0, {0}));
  g.ops.push_back(fixed_op(2, "right", OpType::Comm, 5.0, {0}));
  g.ops.push_back(fixed_op(3, "sink", OpType::Compute, 1.0, {1, 2}));
  auto tl = make_engine().run(g);
  // sink waits for the comm: 1 + 5 + 1.
  EXPECT_DOUBLE_EQ(tl.makespan, 7.0);
  EXPECT_DOUBLE_EQ(tl.find(3)->start, 6.0);
}

TEST(SeerEngine, ModeledTimesFromCostModel) {
  OpGraph g;
  Operator op;
  op.id = 0;
  op.name = "matmul";
  op.type = OpType::Compute;
  op.flops = GpuSpec::h100().flops;  // exactly 1 second theoretical
  g.ops.push_back(op);
  auto tl = make_engine().run(g);
  EXPECT_NEAR(tl.makespan, 1.0, 1e-9);
}

TEST(SeerEngine, ChromeTraceExport) {
  OpGraph g;
  g.ops.push_back(fixed_op(0, "a", OpType::Compute, 1e-3, {}));
  g.ops.push_back(fixed_op(1, "ar", OpType::Comm, 2e-3, {0}));
  auto tl = make_engine().run(g);
  auto trace = tl.to_chrome_trace();
  // The shared exporter prefixes metadata (process/thread names) before
  // the operator spans; the two ops are the only "X" events.
  int spans = 0;
  int comm_lane_spans = 0;
  int thread_names = 0;
  for (const auto& ev : trace["traceEvents"].as_array()) {
    if (ev["ph"].as_string() == "X") {
      ++spans;
      if (ev["tid"].as_int() == 1) ++comm_lane_spans;
    }
    if (ev["ph"].as_string() == "M" && ev["name"].as_string() == "thread_name") {
      ++thread_names;
    }
  }
  EXPECT_EQ(spans, 2);
  EXPECT_EQ(comm_lane_spans, 1);  // the comm op rides tid 1
  EXPECT_EQ(thread_names, 2);     // exec + comm lanes are named
}

TEST(SeerEngine, TimelineDeviationMetric) {
  Timeline a;
  a.makespan = 1.003;
  Timeline b;
  b.makespan = 1.0;
  EXPECT_NEAR(timeline_deviation(a, b), 0.003, 1e-12);
}

}  // namespace
}  // namespace astral::seer
