// In-flight failover in the fluid simulator: reroute_flows() migrates
// live flows off dead links onto the surviving dual-ToR side, and
// abort_flow() tears down flows whose sender died.
#include <gtest/gtest.h>

#include "core/units.h"
#include "net/fluid_sim.h"
#include "topo/fabric.h"

namespace astral::net {
namespace {

using core::Seconds;
using namespace core;  // literal operators (_MiB)

topo::Fabric small_fabric() {
  topo::FabricParams p;
  p.style = topo::FabricStyle::AstralSameRail;
  p.rails = 2;
  p.hosts_per_block = 4;
  p.blocks_per_pod = 2;
  p.pods = 1;
  return topo::Fabric(p);
}

FlowSpec make_spec(const topo::Fabric& f, int src_gpu, int dst_gpu, core::Bytes size,
                   std::uint64_t tag = 0) {
  auto a = f.gpu(src_gpu);
  auto b = f.gpu(dst_gpu);
  FlowSpec s;
  s.src_host = a.host;
  s.dst_host = b.host;
  s.src_rail = a.rail;
  s.dst_rail = b.rail;
  s.size = size;
  s.tag = tag;
  return s;
}

// No active flow may keep a path crossing a dead or blackholed link.
void expect_no_flow_on_dead_links(const FluidSim& sim) {
  const auto& topo = sim.fabric().topo();
  for (FlowId id : sim.active_flows()) {
    for (topo::LinkId l : sim.flow(id).path) {
      EXPECT_TRUE(topo.link(l).up) << "flow " << id << " on down link " << l;
      EXPECT_GT(sim.effective_capacity(l), 0.0)
          << "flow " << id << " on blackholed link " << l;
    }
  }
}

TEST(Reroute, MidTransferUplinkDeathMovesFlowToOtherSide) {
  auto f = small_fabric();
  FluidSim sim(f);
  int dst = f.params().rails * f.params().hosts_per_block;  // other block
  FlowId id = sim.inject(make_spec(f, 0, dst, 20_MiB));
  ASSERT_TRUE(sim.flow(id).admitted);

  // Let roughly half the transfer happen, then kill the first hop.
  Seconds half = core::transfer_time(10_MiB, core::gbps(200));
  sim.run(half);
  topo::LinkId dead = sim.flow(id).path.front();
  sim.set_link_up(dead, false);

  auto rep = sim.reroute_flows();
  ASSERT_EQ(rep.rerouted.size(), 1u);
  EXPECT_EQ(rep.rerouted.front(), id);
  EXPECT_TRUE(rep.all_moved());
  expect_no_flow_on_dead_links(sim);

  sim.run();
  EXPECT_GE(sim.flow(id).finish, half);
  EXPECT_FALSE(sim.flow(id).aborted);
  EXPECT_TRUE(sim.idle());
}

TEST(Reroute, BlackholedLinkCountsAsDead) {
  auto f = small_fabric();
  FluidSim sim(f);
  int dst = f.params().rails * f.params().hosts_per_block;
  FlowId id = sim.inject(make_spec(f, 0, dst, 20_MiB));
  sim.run(core::msec(0.1));

  // Silent blackhole: link stays up for routing but allocates zero.
  sim.degrade_link(sim.flow(id).path.front(), 0.0);
  auto rep = sim.reroute_flows();
  ASSERT_EQ(rep.rerouted.size(), 1u);
  expect_no_flow_on_dead_links(sim);
  sim.run();
  EXPECT_GT(sim.flow(id).finish, 0.0);
}

TEST(Reroute, NoSurvivingSideStrandsThenAbortDrains) {
  auto f = small_fabric();
  auto& topo = f.topo();
  FluidSim sim(f);
  int dst = f.params().rails * f.params().hosts_per_block;
  FlowId id = sim.inject(make_spec(f, 0, dst, 20_MiB));
  sim.run(core::msec(0.1));

  // Kill both NIC ports of the source rail: no plane survives.
  auto spec = sim.flow(id).spec;
  for (int side = 0; side < topo.sides(); ++side) {
    topo::LinkId up = topo.host_uplink(spec.src_host, spec.src_rail, side);
    ASSERT_NE(up, topo::kInvalidLink);
    sim.set_link_up(up, false);
  }
  auto rep = sim.reroute_flows();
  ASSERT_EQ(rep.stranded.size(), 1u);
  EXPECT_FALSE(rep.all_moved());
  EXPECT_TRUE(sim.flow(id).path.empty());
  EXPECT_EQ(sim.current_rate(id), 0.0);

  // The stranded flow holds the sim open until its sender is torn down.
  EXPECT_FALSE(sim.idle());
  sim.abort_flow(id);
  EXPECT_TRUE(sim.idle());
  EXPECT_TRUE(sim.flow(id).aborted);
  EXPECT_LT(sim.flow(id).finish, 0.0);
  sim.run();  // returns immediately; nothing left to simulate
}

TEST(Reroute, AbortReleasesBandwidthToSharers) {
  auto f = small_fabric();
  FluidSim sim(f);
  int dst = f.params().rails * f.params().hosts_per_block;
  FlowId a = sim.inject(make_spec(f, 0, dst, 10_MiB, 1));
  FlowId b = sim.inject(make_spec(f, 0, dst, 10_MiB, 2));
  sim.run(core::msec(0.05));
  double before = sim.current_rate(b);
  sim.abort_flow(a);
  EXPECT_GT(sim.current_rate(b), before * 1.5);  // released the shared port
  sim.run();
  EXPECT_GT(sim.flow(b).finish, 0.0);
  EXPECT_LT(sim.flow(a).finish, 0.0);
}

TEST(Reroute, PendingFlowPinnedPathIsRefreshed) {
  auto f = small_fabric();
  FluidSim sim(f);
  int dst = f.params().rails * f.params().hosts_per_block;
  auto spec = make_spec(f, 0, dst, 4_MiB);
  spec.start = core::msec(10);
  FlowId id = sim.inject(spec);  // path pinned now, starts later

  topo::LinkId pinned_first = sim.flow(id).path.front();
  sim.set_link_up(pinned_first, false);
  auto rep = sim.reroute_flows();
  ASSERT_EQ(rep.rerouted.size(), 1u);
  EXPECT_NE(sim.flow(id).path.front(), pinned_first);

  sim.run();
  EXPECT_GT(sim.flow(id).finish, 0.0);
  EXPECT_TRUE(sim.idle());
}

TEST(Reroute, AbortPendingFlowNeverAdmits) {
  auto f = small_fabric();
  FluidSim sim(f);
  int dst = f.params().rails * f.params().hosts_per_block;
  auto spec = make_spec(f, 0, dst, 4_MiB);
  spec.start = core::msec(10);
  FlowId id = sim.inject(spec);
  sim.abort_flow(id);
  EXPECT_TRUE(sim.idle());
  sim.run();
  EXPECT_TRUE(sim.flow(id).aborted);
  EXPECT_LT(sim.flow(id).finish, 0.0);
}

TEST(Reroute, SetLinkUpRestoresDegradedCapacityNotFull) {
  auto f = small_fabric();
  FluidSim sim(f);
  topo::LinkId l = 0;
  double full = sim.effective_capacity(l);
  sim.degrade_link(l, 0.25);
  sim.set_link_up(l, false);
  EXPECT_EQ(sim.effective_capacity(l), 0.0);
  sim.set_link_up(l, true);
  EXPECT_NEAR(sim.effective_capacity(l), full * 0.25, full * 1e-9);
}

TEST(Reroute, RerouteOnHealthyFabricIsANoop) {
  auto f = small_fabric();
  FluidSim sim(f);
  int dst = f.params().rails * f.params().hosts_per_block;
  sim.inject(make_spec(f, 0, dst, 10_MiB, 1));
  sim.inject(make_spec(f, 2, dst + 2, 10_MiB, 2));
  sim.run(core::msec(0.05));
  auto rep = sim.reroute_flows();
  EXPECT_TRUE(rep.rerouted.empty());
  EXPECT_TRUE(rep.stranded.empty());
  sim.run();
  EXPECT_TRUE(sim.idle());
}

}  // namespace
}  // namespace astral::net
