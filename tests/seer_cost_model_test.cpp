#include "seer/cost_model.h"

#include <gtest/gtest.h>

#include <memory>

namespace astral::seer {
namespace {

CostModel theoretical_model(CommEnv env = {}) {
  return CostModel(GpuSpec::h100(), env, std::make_shared<TheoreticalEfficiency>());
}

TEST(CostModelEq, Eq1MatmulTime) {
  auto m = theoretical_model();
  // (2n-1) m p / flops.
  double expected = (2.0 * 4096 - 1) * 1024 * 2048 / GpuSpec::h100().flops;
  EXPECT_DOUBLE_EQ(m.matmul_time_eq1(1024, 4096, 2048), expected);
}

TEST(CostModelEq, Eq2AdditionTime) {
  auto m = theoretical_model();
  EXPECT_DOUBLE_EQ(m.addition_time_eq2(1024, 4096), 1024.0 * 4096 / GpuSpec::h100().flops);
}

TEST(CostModelEq, Eq3MemTime) {
  auto m = theoretical_model();
  // 16-bit elements.
  EXPECT_DOUBLE_EQ(m.mem_time_eq3(1024, 4096, 16), 1024.0 * 4096 * 2 / GpuSpec::h100().hbm_bw);
}

TEST(CostModelEq, Eq4TpCommTime) {
  CommEnv env;
  env.nic_bw = core::gbps(400);
  auto m = theoretical_model(env);
  double bytes = 4.0 * 4096 * 8192 * 2;  // b*s*h*f
  EXPECT_DOUBLE_EQ(m.tp_comm_time_eq4(4, 4096, 8192, 16), bytes * 8 / core::gbps(400));
}

TEST(CostModelEq, Eq5PpIsTpOverGroups) {
  auto m = theoretical_model();
  EXPECT_DOUBLE_EQ(m.pp_comm_time_eq5(4, 4096, 8192, 16, 8),
                   m.tp_comm_time_eq4(4, 4096, 8192, 16) / 8.0);
}

TEST(CostModelEq, Eq6DpScalesWithParams) {
  auto m = theoretical_model();
  double t1 = m.dp_comm_time_eq6(1e12, 16, 8, 8);
  double t2 = m.dp_comm_time_eq6(2e12, 16, 8, 8);
  EXPECT_DOUBLE_EQ(t2, 2.0 * t1);
  EXPECT_DOUBLE_EQ(m.dp_comm_time_eq6(1e12, 16, 8, 16), t1 / 2.0);
}

TEST(CostModel, ComputeTimeUsesEfficiency) {
  auto theo = theoretical_model();
  CostModel corrected(GpuSpec::h100(), CommEnv{},
                      std::make_shared<TestbedEfficiency>());
  double flops = 1e10;
  EXPECT_GT(corrected.compute_time(flops), theo.compute_time(flops));
}

TEST(CostModel, ZeroWorkCostsNothing) {
  auto m = theoretical_model();
  EXPECT_DOUBLE_EQ(m.compute_time(0), 0.0);
  EXPECT_DOUBLE_EQ(m.memory_time(0), 0.0);
  EXPECT_DOUBLE_EQ(m.comm_time(CommKind::AllReduce, 0, 8, false), 0.0);
  EXPECT_DOUBLE_EQ(m.comm_time(CommKind::AllReduce, 1e6, 1, false), 0.0);
}

TEST(CostModel, AllReduceWithinNvlinkDomainIsFast) {
  CommEnv env;
  env.hb_domain = 8;
  auto m = theoretical_model(env);
  double intra = m.comm_time(CommKind::AllReduce, 1e9, 8, false);
  double inter = m.comm_time(CommKind::AllReduce, 1e9, 16, false);
  EXPECT_GT(inter, intra * 1.3);  // crossing the NIC costs extra
}

TEST(CostModel, LargerHbDomainSpeedsUpAllToAll) {
  // The Fig. 14 mechanism: growing the NVLink domain moves all-to-all
  // traffic off the NIC.
  CommEnv env8;
  env8.hb_domain = 8;
  CommEnv env64;
  env64.hb_domain = 64;
  auto m8 = theoretical_model(env8);
  auto m64 = theoretical_model(env64);
  double t8 = m8.comm_time(CommKind::AllToAll, 1e9, 64, false);
  double t64 = m64.comm_time(CommKind::AllToAll, 1e9, 64, false);
  EXPECT_LT(t64, t8);
}

TEST(CostModel, ReduceScatterIsHalfAllReduce) {
  auto m = theoretical_model();
  double ar = m.comm_time(CommKind::AllReduce, 1e9, 8, false);
  double rs = m.comm_time(CommKind::ReduceScatter, 1e9, 8, false);
  EXPECT_NEAR(ar / rs, 2.0, 1e-9);
}

TEST(CostModel, CrossDcOversubSlowsCollectives) {
  CommEnv dc1;
  CommEnv dc8 = dc1;
  dc8.crossdc_oversub = 8.0;
  dc8.crossdc_rtt = core::msec(3);
  auto m1 = theoretical_model(dc1);
  auto m8 = theoretical_model(dc8);
  double t1 = m1.comm_time(CommKind::AllReduce, 1e9, 64, true);
  double t8 = m8.comm_time(CommKind::AllReduce, 1e9, 64, true);
  EXPECT_GT(t8, t1 * 4);
  // Non-cross-DC ops unaffected.
  EXPECT_DOUBLE_EQ(m8.comm_time(CommKind::AllReduce, 1e9, 64, false),
                   m1.comm_time(CommKind::AllReduce, 1e9, 64, false));
}

TEST(CostModel, SendRecvStreamingHidesMostCrossDcCost) {
  // PP traffic streams over the long haul: only a fraction of the extra
  // wide-area serialization is exposed (Appendix B: 8:1 is ~free).
  CommEnv env;
  env.crossdc_rtt = core::msec(3);
  env.crossdc_oversub = 4.0;
  auto m = theoretical_model(env);
  double local = m.comm_time(CommKind::SendRecv, 1e8, 2, false);
  double remote = m.comm_time(CommKind::SendRecv, 1e8, 2, true);
  EXPECT_NEAR(local, 1e8 * 8 / core::gbps(400), 1e-12);
  EXPECT_GT(remote, local);          // still costs something...
  EXPECT_LT(remote, local * 4.0);    // ...but far less than the full 4x
}

TEST(CostModel, OpTimeRoofline) {
  auto m = theoretical_model();
  Operator op;
  op.type = OpType::Compute;
  op.flops = 1e12;   // 1 ms on H100
  op.mem_bytes = 1e9;  // ~0.3 ms
  EXPECT_DOUBLE_EQ(m.op_time(op), m.compute_time(1e12));
  op.flops = 1e9;  // now memory-bound
  EXPECT_DOUBLE_EQ(m.op_time(op), m.memory_time(1e9));
}

TEST(CostModel, FixedTimeOverrides) {
  auto m = theoretical_model();
  Operator op;
  op.type = OpType::Compute;
  op.flops = 1e15;
  op.fixed_time = 42e-6;
  EXPECT_DOUBLE_EQ(m.op_time(op), 42e-6);
}

}  // namespace
}  // namespace astral::seer
