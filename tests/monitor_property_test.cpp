// Property sweep over the fault space: every (cause, manifestation)
// combination must yield a run the analyzer can process — anomalies are
// always detected, evidence chains are well-formed, and localization
// never fingers an innocent device when it claims success.
#include <gtest/gtest.h>

#include <tuple>

#include "monitor/analyzer.h"
#include "monitor/cluster_runtime.h"

namespace astral::monitor {
namespace {

using Params = std::tuple<RootCause, Manifestation>;

bool plausible(RootCause cause, Manifestation m) {
  // Combinations with zero probability in the Fig. 7 conditional mixes.
  if (m == Manifestation::FailOnStart) {
    return cause == RootCause::HostEnvConfig || cause == RootCause::WireConnection;
  }
  return true;
}

class FaultProperty : public ::testing::TestWithParam<Params> {};

TEST_P(FaultProperty, InjectedFaultIsDetectedAndSafelyDiagnosed) {
  auto [cause, m] = GetParam();
  if (!plausible(cause, m)) GTEST_SKIP() << "combination not in taxonomy";

  topo::FabricParams fp;
  fp.rails = 2;
  fp.hosts_per_block = 8;
  fp.blocks_per_pod = 2;
  fp.pods = 1;
  topo::Fabric fabric(fp);
  JobConfig job;
  job.hosts = 10;
  job.iterations = 5;
  job.comm_bytes = 16ull * 1024 * 1024;

  ClusterRuntime rt(fabric, job, 7);
  auto fault = rt.make_fault(cause, m, 2);
  rt.inject(fault);
  auto outcome = rt.run();

  // The fault always manifests somehow.
  ASSERT_TRUE(outcome.observed.has_value())
      << to_string(cause) << "/" << to_string(m) << " produced a healthy run";

  HierarchicalAnalyzer analyzer(rt.telemetry(), fabric.topo(), rt.expected_compute(),
                                rt.expected_comm());
  auto d = analyzer.diagnose();
  EXPECT_TRUE(d.anomaly_detected);
  ASSERT_TRUE(d.manifestation.has_value());
  EXPECT_FALSE(d.evidence.empty());
  EXPECT_GT(d.locate_time, 0.0);
  // Evidence starts at the application layer (top-down principle).
  EXPECT_EQ(d.evidence.front().substr(0, 4), "app:");

  if (d.root_cause_found) {
    // A confident diagnosis must not blame an innocent device class:
    // either the exact cause, or (for host-adjacent network faults) the
    // NIC/host boundary ambiguity we accept.
    bool acceptable = d.root_cause == cause;
    if (cause == RootCause::LinkFlap || cause == RootCause::WireConnection ||
        cause == RootCause::OpticalFiber) {
      acceptable |= d.root_cause == RootCause::SwitchBug;  // silent twin
    }
    EXPECT_TRUE(acceptable) << "claimed " << to_string(*d.root_cause) << " for "
                            << to_string(cause);
  }

  // Culprit claims must reference real entities.
  for (int h : d.culprit_hosts) {
    EXPECT_GE(h, 0);
    EXPECT_LT(h, job.hosts);
  }
  for (auto l : d.culprit_links) EXPECT_LT(l, fabric.topo().link_count());
}

std::string param_name(const ::testing::TestParamInfo<Params>& info) {
  std::string name = std::string(to_string(std::get<0>(info.param))) + "_" +
                     to_string(std::get<1>(info.param));
  std::string out;
  for (char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      out += c;
    } else {
      out += '_';
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    Taxonomy, FaultProperty,
    ::testing::Combine(
        ::testing::Values(RootCause::HostEnvConfig, RootCause::NicError,
                          RootCause::UserCode, RootCause::SwitchConfig,
                          RootCause::SwitchBug, RootCause::OpticalFiber,
                          RootCause::CclBug, RootCause::WireConnection,
                          RootCause::GpuHardware, RootCause::Memory,
                          RootCause::LinkFlap, RootCause::PcieDegrade),
        ::testing::Values(Manifestation::FailStop, Manifestation::FailSlow,
                          Manifestation::FailHang, Manifestation::FailOnStart)),
    param_name);

}  // namespace
}  // namespace astral::monitor
