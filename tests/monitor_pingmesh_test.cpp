#include "monitor/pingmesh.h"

#include <gtest/gtest.h>

#include "power/scheduler.h"

namespace astral::monitor {
namespace {

topo::Fabric test_fabric() {
  topo::FabricParams p;
  p.rails = 2;
  p.hosts_per_block = 8;
  p.blocks_per_pod = 2;
  p.pods = 1;
  return topo::Fabric(p);
}

std::vector<topo::NodeId> job_hosts(const topo::Fabric& f, int n) {
  auto hosts = f.topo().hosts();
  return {hosts.begin(), hosts.begin() + n};
}

TEST(Pingmesh, SweepRecordsProbesIntoTheStore) {
  auto f = test_fabric();
  net::FluidSim sim(f);
  auto hosts = job_hosts(f, 8);
  IntPingmesh mesh(sim, hosts, {.fanout = 3});
  TelemetryStore store;
  int probes = mesh.sweep(store);
  EXPECT_EQ(probes, 8 * 3);
  EXPECT_EQ(store.int_probes().size(), static_cast<std::size_t>(probes));
  for (const auto& p : store.int_probes()) {
    EXPECT_EQ(p.path.size(), p.hop_latency.size());
    EXPECT_GE(p.path.size(), 2u);
  }
}

TEST(Pingmesh, CleanFabricHasNoHotspots) {
  auto f = test_fabric();
  net::FluidSim sim(f);
  IntPingmesh mesh(sim, job_hosts(f, 8));
  TelemetryStore store;
  mesh.sweep(store);
  EXPECT_TRUE(mesh.hotspots().empty());
  EXPECT_GT(mesh.pair_latency(0, 1), 0.0);
  EXPECT_LT(mesh.pair_latency(0, 1), core::usec(10));
}

TEST(Pingmesh, DetectsCongestionHotspot) {
  auto f = test_fabric();
  net::FluidSim sim(f);
  // Incast congestion onto host 0's NIC.
  for (int h = 1; h <= 5; ++h) {
    net::FlowSpec s;
    s.src_host = f.topo().hosts()[static_cast<std::size_t>(h)];
    s.dst_host = f.topo().hosts()[0];
    s.src_rail = 0;
    s.dst_rail = 0;
    s.size = 64ull << 20;
    s.tag = static_cast<std::uint64_t>(h);
    sim.inject(s);
  }
  sim.run(core::usec(200));  // mid-transfer
  IntPingmesh mesh(sim, job_hosts(f, 8), {.fanout = 7});
  TelemetryStore store;
  mesh.sweep(store);
  ASSERT_FALSE(mesh.hotspots().empty());
  EXPECT_GT(mesh.hotspots()[0].latency, core::usec(50));
  sim.run();
}

TEST(Pingmesh, SweepsRotateCoverage) {
  auto f = test_fabric();
  net::FluidSim sim(f);
  auto hosts = job_hosts(f, 8);
  IntPingmesh mesh(sim, hosts, {.fanout = 2});
  TelemetryStore store;
  mesh.sweep(store);
  core::Seconds first = mesh.pair_latency(0, 1);  // sweep 1 covers peers 1,2
  mesh.sweep(store);  // sweep 2 rotates to peers 3,4
  core::Seconds later = mesh.pair_latency(0, 4);
  EXPECT_GE(first, 0.0);
  EXPECT_GE(later, 0.0);
}

TEST(NightScheduler, FlattensPowerAndFillsNights) {
  auto demand = power::tidal_inference_demand();
  power::GpuPowerModel gpu;
  auto plan = power::schedule_day(demand, 10000, gpu, /*backlog=*/1e9);
  ASSERT_EQ(plan.hours.size(), 24u);
  // Flat within a few percent of the contract line.
  EXPECT_LT(plan.flatness(), 1.05);
  // Training lives at night, not at the afternoon peak.
  int night = plan.hours[3].training_gpus;   // 3 am
  int peak = plan.hours[14].training_gpus;   // 2 pm
  EXPECT_GT(night, peak);
  EXPECT_EQ(peak, 0);  // no headroom at the peak hour
}

TEST(NightScheduler, BacklogBudgetRespected) {
  auto demand = power::tidal_inference_demand();
  power::GpuPowerModel gpu;
  auto plan = power::schedule_day(demand, 10000, gpu, /*backlog=*/5000.0);
  EXPECT_NEAR(plan.training_gpu_hours, 5000.0, 1.0);
  // Scarce training goes to the deepest (cheapest) troughs first: all of
  // it lands in the night hours.
  int night_training = 0;
  for (int h : {0, 1, 2, 3, 4, 5}) night_training += plan.hours[static_cast<std::size_t>(h)].training_gpus;
  EXPECT_NEAR(night_training, 5000, 1);
}

TEST(NightScheduler, NoBacklogMeansRawTide) {
  auto demand = power::tidal_inference_demand();
  power::GpuPowerModel gpu;
  auto plan = power::schedule_day(demand, 10000, gpu, 0.0);
  EXPECT_DOUBLE_EQ(plan.training_gpu_hours, 0.0);
  EXPECT_GT(plan.flatness(), 1.2);  // the tide shows
}

}  // namespace
}  // namespace astral::monitor
