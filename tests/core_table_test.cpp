#include "core/table.h"

#include <gtest/gtest.h>

namespace astral::core {
namespace {

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "22"});
  std::string s = t.str();
  // Every rendered line has the same width.
  std::size_t first_nl = s.find('\n');
  ASSERT_NE(first_nl, std::string::npos);
  std::size_t width = first_nl;
  for (std::size_t pos = 0; pos < s.size();) {
    std::size_t nl = s.find('\n', pos);
    ASSERT_NE(nl, std::string::npos);
    EXPECT_EQ(nl - pos, width);
    pos = nl + 1;
  }
  EXPECT_NE(s.find("longer-name"), std::string::npos);
}

TEST(Table, HandlesRaggedRows) {
  Table t({"a"});
  t.add_row({"1", "2", "3"});
  t.add_row({});
  std::string s = t.str();
  EXPECT_NE(s.find('3'), std::string::npos);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::pct(0.1634), "16.34%");
  EXPECT_EQ(Table::pct(0.5, 0), "50%");
}

}  // namespace
}  // namespace astral::core
