// Topology-zoo conformance harness: every FabricStyle member, across a
// parameter grid that includes oversubscribed and multi-datacenter
// points, is checked against the closed-form oracle in FabricParams
// (node/link/degree censuses, per-tier aggregate capacity, bisection
// bandwidth) plus structural routing invariants (duplex symmetry, ECMP
// candidate-set symmetry, up-down path validity, dual-ToR reachability
// under single-ToR failure). DESIGN.md §"Topology zoo" derives the
// formulas these tests pin.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "topo/fabric.h"

namespace astral::topo {
namespace {

enum class Variant : int {
  Base,       // tier3_oversub = 1, one datacenter
  Oversub,    // tier3_oversub = 4
  TwinDc,     // datacenters = 2, crossdc_oversub = 4
};

const char* to_string(Variant v) {
  switch (v) {
    case Variant::Base: return "base";
    case Variant::Oversub: return "oversub4";
    case Variant::TwinDc: return "twindc";
  }
  return "?";
}

// (style, variant, rails, dual_tor)
using Params = std::tuple<FabricStyle, Variant, int, bool>;

class ZooConformance : public ::testing::TestWithParam<Params> {
 protected:
  FabricParams params() const {
    auto [style, variant, rails, dual] = GetParam();
    FabricParams p;
    p.style = style;
    p.rails = rails;
    p.hosts_per_block = 4;
    p.blocks_per_pod = 2;
    p.pods = 2;
    p.dual_tor = dual;
    if (variant == Variant::Oversub) p.tier3_oversub = 4.0;
    if (variant == Variant::TwinDc) {
      p.datacenters = 2;
      p.crossdc_oversub = 4.0;
    }
    return p;
  }

  static int level(NodeKind k) {
    switch (k) {
      case NodeKind::Host: return 0;
      case NodeKind::Tor: return 1;
      case NodeKind::Agg: return 2;
      case NodeKind::Core: return 3;
    }
    return -1;
  }

  /// Host pairs that exercise every distance class the style can route:
  /// same block, cross block, cross pod, cross datacenter.
  std::vector<std::pair<NodeId, NodeId>> sample_pairs(const Fabric& f) const {
    const auto& p = f.params();
    std::vector<std::pair<NodeId, NodeId>> pairs;
    pairs.emplace_back(f.host_at(0, 0, 0), f.host_at(0, 0, 1));
    pairs.emplace_back(f.host_at(0, 0, 0), f.host_at(0, 1, p.hosts_per_block - 1));
    if (p.style != FabricStyle::RailOnly) {
      pairs.emplace_back(f.host_at(0, 0, 0), f.host_at(p.pods - 1, 0, 0));
      if (p.datacenters > 1) {
        pairs.emplace_back(f.host_at(0, 0, 0),
                           f.host_at(p.total_pods() - 1, p.blocks_per_pod - 1, 0));
      }
    }
    return pairs;
  }
};

TEST_P(ZooConformance, NodeCensusMatchesOracle) {
  auto p = params();
  Fabric f(p);
  std::map<NodeKind, int> by_kind;
  for (const auto& n : f.topo().nodes()) by_kind[n.kind]++;
  EXPECT_EQ(by_kind[NodeKind::Host], p.host_count());
  EXPECT_EQ(by_kind[NodeKind::Tor], p.tor_count());
  EXPECT_EQ(by_kind[NodeKind::Agg], p.agg_count());
  EXPECT_EQ(by_kind[NodeKind::Core], p.core_count());
  EXPECT_EQ(static_cast<int>(f.topo().node_count()), p.node_count());
}

TEST_P(ZooConformance, LinkCensusMatchesOracle) {
  auto p = params();
  Fabric f(p);
  EXPECT_EQ(static_cast<long long>(f.topo().link_count()), p.link_count());
  for (const auto& l : f.topo().links()) {
    EXPECT_GT(l.capacity, 0.0) << f.topo().node(l.src).name << " -> "
                               << f.topo().node(l.dst).name;
    EXPECT_TRUE(l.up);
  }
}

TEST_P(ZooConformance, DegreesMatchOracle) {
  auto p = params();
  Fabric f(p);
  const int uplinks = p.tor_uplinks();
  for (const auto& n : f.topo().nodes()) {
    int to_host = 0, to_tor = 0, to_agg = 0, to_core = 0;
    for (LinkId l : f.topo().out_links(n.id)) {
      switch (f.topo().node(f.topo().link(l).dst).kind) {
        case NodeKind::Host: ++to_host; break;
        case NodeKind::Tor: ++to_tor; break;
        case NodeKind::Agg: ++to_agg; break;
        case NodeKind::Core: ++to_core; break;
      }
    }
    switch (n.kind) {
      case NodeKind::Host:
        // One NIC-port link per (rail, side); hosts never peer directly.
        EXPECT_EQ(to_tor, p.rails * p.sides()) << n.name;
        EXPECT_EQ(to_host + to_agg + to_core, 0) << n.name;
        break;
      case NodeKind::Tor:
        EXPECT_EQ(to_host, p.hosts_per_block) << n.name;
        EXPECT_EQ(to_agg, uplinks) << n.name;
        EXPECT_EQ(to_tor, p.style == FabricStyle::UBMesh ? p.tors_per_pod() - 1 : 0)
            << n.name;
        break;
      case NodeKind::Agg:
        EXPECT_EQ(to_host, 0) << n.name;
        if (p.style == FabricStyle::UBMesh) {
          EXPECT_EQ(to_tor, p.tors_per_pod()) << n.name;
          int mesh = p.pods - 1;  // dim-3 peers
          int haul = 0;           // dim-4 long-haul neighbors
          if (p.datacenters > 1) haul = (n.pod / p.pods == 0 ||
                                         n.pod / p.pods == p.datacenters - 1)
                                            ? 1
                                            : 2;
          EXPECT_EQ(to_agg, mesh + haul) << n.name;
          EXPECT_EQ(to_core, 0) << n.name;
        } else {
          EXPECT_EQ(to_tor, p.blocks_per_pod) << n.name;
          EXPECT_EQ(to_core,
                    p.style == FabricStyle::RailOnly ? 0 : p.blocks_per_pod)
              << n.name;
        }
        break;
      case NodeKind::Core:
        // Every core serves its rank's Aggs across all pods of its DC.
        EXPECT_EQ(to_agg, p.pods * p.rails * p.sides()) << n.name;
        EXPECT_EQ(to_host + to_tor, 0) << n.name;
        break;
    }
  }
}

TEST_P(ZooConformance, DuplexSymmetry) {
  Fabric f(params());
  std::map<std::pair<NodeId, NodeId>, double> cap;
  for (const auto& l : f.topo().links()) cap[{l.src, l.dst}] += l.capacity;
  for (const auto& [key, c] : cap) {
    auto rev = cap.find({key.second, key.first});
    ASSERT_NE(rev, cap.end()) << f.topo().node(key.first).name << " <-> "
                              << f.topo().node(key.second).name;
    EXPECT_NEAR(rev->second, c, c * 1e-9);
  }
}

TEST_P(ZooConformance, TierBandwidthMatchesOracle) {
  auto p = params();
  Fabric f(p);
  const std::pair<NodeKind, NodeKind> tiers[] = {
      {NodeKind::Host, NodeKind::Tor}, {NodeKind::Tor, NodeKind::Host},
      {NodeKind::Tor, NodeKind::Agg},  {NodeKind::Agg, NodeKind::Tor},
      {NodeKind::Tor, NodeKind::Tor},  {NodeKind::Agg, NodeKind::Core},
      {NodeKind::Core, NodeKind::Agg}, {NodeKind::Agg, NodeKind::Agg},
      {NodeKind::Core, NodeKind::Core}};
  for (auto [a, b] : tiers) {
    double expected = core::gbps(p.expected_tier_gbps(a, b));
    double actual = f.topo().tier_bandwidth(a, b);
    EXPECT_NEAR(actual, expected, std::max(1.0, expected) * 1e-9)
        << to_string(a) << " -> " << to_string(b);
  }
}

TEST_P(ZooConformance, BisectionMatchesOracle) {
  auto p = params();
  Fabric f(p);
  const int PT = p.total_pods();
  const int half = PT / 2;
  // Canonical halves: first PT/2 pods vs. the rest. Cores carry their
  // home datacenter's first pod as a marker, so they side with it.
  auto in_half_a = [&](NodeId id) { return f.topo().node(id).pod < half; };
  double cut = 0.0;
  for (const auto& l : f.topo().links()) {
    if (in_half_a(l.src) && !in_half_a(l.dst)) cut += l.capacity;
  }
  double expected = core::gbps(p.expected_bisection_gbps());
  if (p.style == FabricStyle::RailOnly) {
    EXPECT_DOUBLE_EQ(cut, 0.0);
    EXPECT_DOUBLE_EQ(expected, 0.0);
  } else {
    EXPECT_NEAR(cut, expected, expected * 1e-9);
    EXPECT_GT(expected, 0.0);
  }
}

TEST_P(ZooConformance, EcmpCandidateSetSymmetry) {
  Fabric f(params());
  for (auto [a, b] : sample_pairs(f)) {
    int d_ab = f.topo().distance(a, b);
    int d_ba = f.topo().distance(b, a);
    EXPECT_EQ(d_ab, d_ba);
    ASSERT_GT(d_ab, 0);
    // Duplex construction makes the equal-cost path set direction
    // symmetric: each shortest path reverses into one.
    EXPECT_EQ(f.topo().shortest_paths(a, b, 64).size(),
              f.topo().shortest_paths(b, a, 64).size());
    auto fwd = f.topo().next_hops(a, b);
    auto rev = f.topo().next_hops(b, a);
    EXPECT_FALSE(fwd.empty());
    EXPECT_FALSE(rev.empty());
    if (f.params().style != FabricStyle::RailOptimized &&
        f.params().style != FabricStyle::Clos) {
      // Structured (non-scrambled) tiers also mirror the injection-point
      // candidate count; the seeded full-mesh shuffle deliberately breaks
      // this host-level symmetry while keeping the path set symmetric.
      EXPECT_EQ(fwd.size(), rev.size());
    }
    for (LinkId l : fwd) {
      EXPECT_TRUE(f.topo().link(l).up);
      EXPECT_EQ(f.topo().distance(f.topo().link(l).dst, b), d_ab - 1);
    }
  }
}

TEST_P(ZooConformance, ShortestPathsAreUpDownValid) {
  Fabric f(params());
  for (auto [a, b] : sample_pairs(f)) {
    for (const auto& path : f.topo().shortest_paths(a, b, 32)) {
      // Tier levels along the path must rise to the path's summit, may
      // plateau only at the summit (mesh tiers: Tor-Tor on UBMesh,
      // Agg-Agg pod mesh and long haul, Core-Core long haul), and then
      // strictly descend — the up-down rule generalized to meshes.
      std::vector<int> levels;
      levels.push_back(level(f.topo().node(a).kind));
      for (LinkId l : path) {
        levels.push_back(level(f.topo().node(f.topo().link(l).dst).kind));
      }
      int summit = *std::max_element(levels.begin(), levels.end());
      bool descending = false;
      for (std::size_t i = 1; i < levels.size(); ++i) {
        if (levels[i] > levels[i - 1]) {
          EXPECT_FALSE(descending) << "re-ascent at hop " << i;
        } else if (levels[i] == levels[i - 1]) {
          EXPECT_EQ(levels[i], summit) << "plateau below summit at hop " << i;
          EXPECT_FALSE(descending) << "plateau after descent at hop " << i;
        } else {
          descending = true;
        }
      }
      // No intermediate hop transits a host.
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        EXPECT_NE(f.topo().node(f.topo().link(path[i]).dst).kind, NodeKind::Host);
      }
    }
  }
}

TEST_P(ZooConformance, DualTorSurvivesSingleTorFailure) {
  auto p = params();
  if (!p.dual_tor) GTEST_SKIP() << "single-ToR wiring has no ToR redundancy";
  Fabric f(p);
  // Kill every link touching the side-0 ToR of (pod 0, block 0, rail 0).
  NodeId victim = f.tor_at(0, 0, 0, 0);
  ASSERT_NE(victim, kInvalidNode);
  std::vector<LinkId> downed;
  for (LinkId l : f.topo().out_links(victim)) downed.push_back(l);
  for (LinkId l : f.topo().in_links(victim)) downed.push_back(l);
  for (LinkId l : downed) f.topo().set_link_state(l, false);

  // P3: the side-1 twin keeps every sampled pair reachable, and the
  // surviving uplink of the victim's own hosts still routes.
  for (auto [a, b] : sample_pairs(f)) {
    EXPECT_GT(f.topo().distance(a, b), 0);
  }
  NodeId host = f.host_at(0, 0, 0);
  LinkId side1 = f.topo().host_uplink(host, 0, 1);
  ASSERT_NE(side1, kInvalidLink);
  EXPECT_TRUE(f.topo().link(side1).up);
  NodeId twin = f.topo().link(side1).dst;
  EXPECT_GT(f.topo().distance(twin, f.host_at(0, 1, 0)), 0);

  for (LinkId l : downed) f.topo().set_link_state(l, true);
  for (auto [a, b] : sample_pairs(f)) EXPECT_GT(f.topo().distance(a, b), 0);
}

std::string param_name(const ::testing::TestParamInfo<Params>& info) {
  auto [style, variant, rails, dual] = info.param;
  std::string name = astral::topo::to_string(style);
  for (auto& c : name) {
    if (c == '-') c = '_';
  }
  return name + "_" + to_string(variant) + "_r" + std::to_string(rails) +
         (dual ? "_dual" : "_single");
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, ZooConformance,
    ::testing::Combine(::testing::ValuesIn(kAllFabricStyles),
                       ::testing::Values(Variant::Base, Variant::Oversub,
                                         Variant::TwinDc),
                       ::testing::Values(2, 4),        // rails
                       ::testing::Values(true, false)  // dual ToR
                       ),
    param_name);

}  // namespace
}  // namespace astral::topo
