// Recovery-aware job lifecycle: multi-fault schedules, the mitigation
// state machine (retry / reroute / restart-from-checkpoint), in-flight
// dual-ToR failover, and the availability ledger in RunOutcome.
#include "monitor/cluster_runtime.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "monitor/mttlf.h"

namespace astral::monitor {
namespace {

topo::FabricParams fabric_params() {
  topo::FabricParams p;
  p.rails = 2;
  p.hosts_per_block = 8;
  p.blocks_per_pod = 2;
  p.pods = 1;
  return p;
}

JobConfig job_config(bool recovery = true) {
  JobConfig job;
  job.hosts = 12;
  job.iterations = 8;
  job.comm_bytes = 8ull * 1024 * 1024;
  job.recovery.enabled = recovery;
  return job;
}

void expect_same_record(const MitigationRecord& a, const MitigationRecord& b) {
  EXPECT_EQ(a.fault_index, b.fault_index);
  EXPECT_EQ(a.at_iteration, b.at_iteration);
  EXPECT_EQ(a.observed, b.observed);
  EXPECT_EQ(a.action, b.action);
  EXPECT_EQ(a.succeeded, b.succeeded);
  EXPECT_DOUBLE_EQ(a.detect_time, b.detect_time);
  EXPECT_DOUBLE_EQ(a.locate_time, b.locate_time);
  EXPECT_DOUBLE_EQ(a.recover_time, b.recover_time);
}

void expect_same_outcome(const RunOutcome& a, const RunOutcome& b) {
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.stopped_at_iteration, b.stopped_at_iteration);
  EXPECT_EQ(a.observed, b.observed);
  EXPECT_EQ(a.restarts, b.restarts);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.reroutes, b.reroutes);
  EXPECT_EQ(a.committed_iterations, b.committed_iterations);
  EXPECT_DOUBLE_EQ(a.useful_time, b.useful_time);
  EXPECT_DOUBLE_EQ(a.wasted_time, b.wasted_time);
  EXPECT_DOUBLE_EQ(a.downtime, b.downtime);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.goodput, b.goodput);
  ASSERT_EQ(a.mitigations.size(), b.mitigations.size());
  for (std::size_t i = 0; i < a.mitigations.size(); ++i) {
    expect_same_record(a.mitigations[i], b.mitigations[i]);
  }
}

/// Every flow the job ever admitted either finished or was aborted —
/// nothing is left stalled on a link that died during the run.
void expect_all_flows_retired(ClusterRuntime& rt) {
  auto& sim = rt.sim();
  EXPECT_TRUE(sim.idle());
  for (std::size_t i = 0; i < sim.flow_count(); ++i) {
    const auto& f = sim.flow(static_cast<net::FlowId>(i));
    if (!f.admitted) continue;
    EXPECT_TRUE(f.finish >= 0.0 || f.aborted) << "flow " << i << " left live";
  }
}

TEST(Recovery, InjectRejectsInvalidSpecs) {
  topo::Fabric fabric(fabric_params());
  ClusterRuntime rt(fabric, job_config());

  FaultSpec no_link;
  no_link.cause = RootCause::OpticalFiber;  // network cause...
  no_link.target_link = topo::kInvalidLink;  // ...with no target
  EXPECT_THROW(rt.inject(no_link), std::invalid_argument);

  FaultSpec bad_rank;
  bad_rank.cause = RootCause::GpuHardware;
  bad_rank.target_host_rank = 999;
  EXPECT_THROW(rt.inject(bad_rank), std::invalid_argument);

  FaultSpec bad_fraction = rt.make_fault(RootCause::OpticalFiber,
                                         Manifestation::FailSlow, 2);
  bad_fraction.mid_transfer_fraction = 1.5;
  EXPECT_THROW(rt.inject(bad_fraction), std::invalid_argument);

  // A schedule is validated spec by spec.
  FaultSchedule sched;
  sched.add(rt.make_fault(RootCause::NicError, Manifestation::FailStop, 1));
  sched.add(no_link);
  EXPECT_THROW(rt.inject(sched), std::invalid_argument);

  EXPECT_NO_THROW(
      rt.inject(rt.make_fault(RootCause::NicError, Manifestation::FailStop, 1)));
}

TEST(Recovery, DeterministicReplay) {
  topo::FabricParams p = fabric_params();
  auto run_once = [&] {
    topo::Fabric fabric(p);
    ClusterRuntime rt(fabric, job_config(), /*seed=*/77);
    FaultSchedule sched;
    sched.add(rt.make_fault(RootCause::GpuHardware, Manifestation::FailStop, 2));
    sched.add(rt.make_mid_transfer_tor_death(5, 0.5));
    rt.inject(sched);
    RunOutcome out = rt.run();
    return std::pair<RunOutcome, std::size_t>(out, rt.telemetry().syslog().size() +
                                                       rt.telemetry().qp_rates().size() +
                                                       rt.telemetry().nccl_timeline().size());
  };
  auto [a, na] = run_once();
  auto [b, nb] = run_once();
  expect_same_outcome(a, b);
  EXPECT_EQ(na, nb);  // identical telemetry volume, not just outcome
}

TEST(Recovery, CascadingTwoFaultRunCompletes) {
  topo::Fabric fabric(fabric_params());
  ClusterRuntime rt(fabric, job_config(), /*seed=*/5);
  FaultSchedule sched;
  // A GPU dies at iteration 2 (isolate + restart from checkpoint), then a
  // whole ToR dies mid-transfer at iteration 5 (in-flight failover).
  sched.add(rt.make_fault(RootCause::GpuHardware, Manifestation::FailStop, 2));
  sched.add(rt.make_mid_transfer_tor_death(5, 0.5));
  rt.inject(sched);
  RunOutcome out = rt.run();

  EXPECT_TRUE(out.completed);
  EXPECT_EQ(out.committed_iterations, rt.config().iterations);
  EXPECT_GE(out.mitigations.size(), 2u);
  EXPECT_GE(out.restarts, 1);
  EXPECT_GE(out.reroutes, 1);
  expect_all_flows_retired(rt);
}

TEST(Recovery, MidTransferTorDeathSurvivedByDualTor) {
  topo::Fabric fabric(fabric_params());
  ClusterRuntime rt(fabric, job_config(), /*seed=*/9);
  rt.inject(rt.make_mid_transfer_tor_death(3, 0.5));
  RunOutcome out = rt.run();

  EXPECT_TRUE(out.completed);
  EXPECT_GE(out.reroutes, 1);  // flows moved to the surviving side
  bool saw_reroute = false;
  for (const auto& m : out.mitigations) {
    saw_reroute |= m.action == MitigationAction::Reroute;
  }
  EXPECT_TRUE(saw_reroute);
  expect_all_flows_retired(rt);
}

TEST(Recovery, TransientFaultRetriesWithBackoff) {
  topo::Fabric fabric(fabric_params());
  JobConfig job = job_config();
  ClusterRuntime rt(fabric, job, /*seed=*/11);
  // LinkFlap: make_fault marks it transient (repairs after one attempt),
  // so the state machine should wait it out instead of rerouting.
  FaultSpec flap = rt.make_fault(RootCause::LinkFlap, Manifestation::FailStop, 2);
  ASSERT_GE(flap.repair_iterations, 0);
  rt.inject(flap);
  RunOutcome out = rt.run();

  EXPECT_TRUE(out.completed);
  EXPECT_GE(out.retries, 1);
  bool saw_retry = false;
  core::Seconds prev = 0.0;
  for (const auto& m : out.mitigations) {
    if (m.action != MitigationAction::RetryBackoff) continue;
    saw_retry = true;
    EXPECT_GT(m.recover_time, prev);  // exponential backoff grows
    prev = m.recover_time;
  }
  EXPECT_TRUE(saw_retry);
  EXPECT_EQ(out.restarts, 0);
}

TEST(Recovery, DisabledReproducesStopAtFault) {
  topo::Fabric fabric(fabric_params());
  auto make_sched = [](ClusterRuntime& rt) {
    FaultSchedule s;
    s.add(rt.make_fault(RootCause::GpuHardware, Manifestation::FailStop, 2));
    return s;
  };

  ClusterRuntime off(fabric, job_config(/*recovery=*/false), /*seed=*/3);
  off.inject(make_sched(off));
  RunOutcome legacy = off.run();
  EXPECT_FALSE(legacy.completed);
  EXPECT_EQ(legacy.stopped_at_iteration, 2);
  EXPECT_TRUE(legacy.mitigations.empty());
  EXPECT_EQ(legacy.observed, Manifestation::FailStop);

  ClusterRuntime on(fabric, job_config(/*recovery=*/true), /*seed=*/3);
  on.inject(make_sched(on));
  RunOutcome recovered = on.run();
  EXPECT_TRUE(recovered.completed);
  EXPECT_GE(recovered.restarts, 1);
}

TEST(Recovery, RestartAccountingAddsUp) {
  topo::Fabric fabric(fabric_params());
  JobConfig job = job_config();
  job.recovery.checkpoint_interval = 2;
  ClusterRuntime rt(fabric, job, /*seed=*/21);
  // Dies at iteration 3: restart rewinds to the checkpoint at 2, so
  // exactly one committed iteration is replayed as waste.
  rt.inject(rt.make_fault(RootCause::GpuHardware, Manifestation::FailStop, 3));
  RunOutcome out = rt.run();

  ASSERT_TRUE(out.completed);
  EXPECT_EQ(out.restarts, 1);
  EXPECT_GT(out.wasted_time, 0.0);
  EXPECT_GT(out.downtime, 0.0);
  EXPECT_GT(out.useful_time, 0.0);
  // The ledger partitions the wall clock (compute noise makes the split
  // slightly lossy, never the other way around).
  EXPECT_LE(out.useful_time + out.downtime, out.makespan * 1.001);
  double mttr_sum = 0.0;
  for (const auto& m : out.mitigations) mttr_sum += m.mttr();
  EXPECT_NEAR(out.downtime, mttr_sum, 1e-9);
}

TEST(Recovery, LedgerProperties) {
  topo::Fabric fabric(fabric_params());
  for (std::uint64_t seed : {101, 202, 303, 404}) {
    ClusterRuntime rt(fabric, job_config(), seed);
    core::Rng rng(seed);
    FaultSchedule sched;
    RootCause cause = sample_root_cause(rng);
    Manifestation m = sample_manifestation(cause, rng);
    int at = m == Manifestation::FailOnStart
                 ? 0
                 : 1 + static_cast<int>(rng.uniform_int(2));
    sched.add(rt.make_fault(cause, m, at));
    sched.add(rt.make_mid_transfer_tor_death(at + 3, 0.4));
    rt.inject(sched);
    RunOutcome out = rt.run();

    if (out.completed) {
      EXPECT_GT(out.goodput, 0.0) << "seed " << seed;
      EXPECT_LE(out.goodput, 1.0) << "seed " << seed;
      EXPECT_EQ(out.committed_iterations, rt.config().iterations);
    }
    for (const auto& rec : out.mitigations) {
      EXPECT_GE(rec.detect_time, 0.0);
      EXPECT_GE(rec.locate_time, 0.0);
      EXPECT_GE(rec.recover_time, 0.0);
      EXPECT_GE(rec.mttr(), rec.locate_time);  // MTTR includes locate
    }
    EXPECT_GE(out.makespan, 0.0);
    EXPECT_GE(out.useful_time, 0.0);
    EXPECT_GE(out.wasted_time, 0.0);
    expect_all_flows_retired(rt);
  }
}

TEST(Recovery, CampaignSurvivesMultiFaultRuns) {
  AvailabilityConfig cfg;
  cfg.runs = 6;
  auto result = run_availability_campaign(cfg);
  ASSERT_EQ(result.entries.size(), 6u);
  // Every run took >= 2 faults, including a mid-transfer ToR death, and
  // survived them with the recovery machinery engaged.
  EXPECT_DOUBLE_EQ(result.completion_rate(), 1.0);
  EXPECT_GT(result.total_reroutes(), 0);
  EXPECT_GT(result.mean_mttr(), 0.0);
  EXPECT_GT(result.mean_goodput(), 0.0);
  EXPECT_LE(result.mean_goodput(), 1.0);
  for (const auto& e : result.entries) {
    EXPECT_GE(e.faults_injected, 2);
    EXPECT_FALSE(e.outcome.mitigations.empty());
  }

  AvailabilityConfig off = cfg;
  off.job.recovery.enabled = false;
  auto baseline = run_availability_campaign(off);
  EXPECT_DOUBLE_EQ(baseline.completion_rate(), 0.0);  // stop at first fault
}

TEST(Recovery, ValidateRecoveryReportsIndexedDiagnostics) {
  RecoveryConfig rc;
  rc.enabled = true;
  EXPECT_FALSE(validate_recovery(rc).has_value());  // defaults are sane

  rc.checkpoint_interval = 0;
  rc.backoff_base = -1.0;
  rc.backoff_jitter = 1.0;  // must be < 1
  auto err = validate_recovery(rc);
  ASSERT_TRUE(err.has_value());
  // Every problem is reported, each with its own index.
  EXPECT_NE(err->find("[0]"), std::string::npos);
  EXPECT_NE(err->find("[1]"), std::string::npos);
  EXPECT_NE(err->find("[2]"), std::string::npos);
  EXPECT_NE(err->find("checkpoint_interval"), std::string::npos);
  EXPECT_NE(err->find("backoff_base"), std::string::npos);
  EXPECT_NE(err->find("backoff_jitter"), std::string::npos);
}

TEST(Recovery, ConstructionRejectsInvalidRecoveryConfig) {
  topo::Fabric fabric(fabric_params());
  JobConfig job = job_config();
  job.recovery.checkpoint_interval = -2;
  EXPECT_THROW(ClusterRuntime(fabric, job), std::invalid_argument);

  // Disabled recovery is never validated (legacy configs keep working).
  job.recovery.enabled = false;
  EXPECT_NO_THROW(ClusterRuntime(fabric, job));
}

TEST(Recovery, BackoffJitterOffIsByteIdentical) {
  topo::Fabric fabric(fabric_params());
  auto run_once = [&](double jitter) {
    JobConfig job = job_config();
    job.recovery.backoff_jitter = jitter;
    ClusterRuntime rt(fabric, job, /*seed=*/11);
    rt.inject(rt.make_fault(RootCause::LinkFlap, Manifestation::FailStop, 2));
    return rt.run();
  };
  // jitter = 0 must not draw from any rng: bit-identical to the default.
  expect_same_outcome(run_once(0.0), run_once(0.0));

  RunOutcome plain = run_once(0.0);
  RunOutcome jittered = run_once(0.25);
  // Same seed -> deterministic jitter...
  expect_same_outcome(jittered, run_once(0.25));
  // ...that perturbs ONLY retry waits, within the +/-25% band.
  ASSERT_EQ(plain.mitigations.size(), jittered.mitigations.size());
  bool saw_difference = false;
  for (std::size_t i = 0; i < plain.mitigations.size(); ++i) {
    const MitigationRecord& a = plain.mitigations[i];
    const MitigationRecord& b = jittered.mitigations[i];
    EXPECT_EQ(a.action, b.action);
    EXPECT_DOUBLE_EQ(a.detect_time, b.detect_time);
    EXPECT_DOUBLE_EQ(a.locate_time, b.locate_time);
    if (a.action != MitigationAction::RetryBackoff) continue;
    EXPECT_GE(b.recover_time, a.recover_time * 0.75 - 1e-12);
    EXPECT_LE(b.recover_time, a.recover_time * 1.25 + 1e-12);
    if (a.recover_time != b.recover_time) saw_difference = true;
  }
  EXPECT_TRUE(saw_difference);
}

TEST(Recovery, MaxRestartsZeroAbortsOnFirstHostFault) {
  topo::Fabric fabric(fabric_params());
  JobConfig job = job_config();
  job.recovery.max_restarts = 0;
  ClusterRuntime rt(fabric, job, /*seed=*/17);
  rt.inject(rt.make_fault(RootCause::GpuHardware, Manifestation::FailStop, 3));
  RunOutcome out = rt.run();

  EXPECT_FALSE(out.completed);
  EXPECT_EQ(out.stopped_at_iteration, 3);
  EXPECT_EQ(out.restarts, 0);
  ASSERT_FALSE(out.mitigations.empty());
  EXPECT_EQ(out.mitigations.back().action, MitigationAction::Abort);
  EXPECT_FALSE(out.mitigations.back().succeeded);
  // Committed work up to the failure survives in the ledger.
  EXPECT_EQ(out.committed_iterations, 3);
  EXPECT_GT(out.useful_time, 0.0);
}

TEST(Recovery, FaultDuringReplayWindowIsMitigatedAgain) {
  topo::Fabric fabric(fabric_params());
  JobConfig job = job_config();
  job.recovery.checkpoint_interval = 4;
  ClusterRuntime rt(fabric, job, /*seed=*/23);
  // First fault at iteration 5 restarts from the checkpoint at 4; the
  // second fault is scheduled INSIDE the replay window (iteration 5
  // again, after the rewind), so it strikes while the job is replaying
  // already-committed work.
  rt.inject(rt.make_fault(RootCause::GpuHardware, Manifestation::FailStop, 5));
  rt.inject(rt.make_mid_transfer_tor_death(5, 0.5));
  RunOutcome out = rt.run();

  EXPECT_TRUE(out.completed);
  EXPECT_GE(out.restarts, 1);
  ASSERT_GE(out.mitigations.size(), 2u);
  EXPECT_EQ(out.committed_iterations, job.iterations);
  // The replayed iterations are charged to waste, not useful time.
  EXPECT_GT(out.wasted_time, 0.0);
  bool saw_restart = false, saw_other = false;
  for (const auto& m : out.mitigations) {
    if (m.action == MitigationAction::IsolateRestart) saw_restart = true;
    if (m.action != MitigationAction::IsolateRestart &&
        m.action != MitigationAction::Abort) {
      saw_other = true;
    }
    EXPECT_TRUE(m.succeeded);
  }
  EXPECT_TRUE(saw_restart);
  EXPECT_TRUE(saw_other);
}

TEST(Recovery, OverlappingFaultsResolvedByDifferentActions) {
  topo::Fabric fabric(fabric_params());
  JobConfig job = job_config();
  ClusterRuntime rt(fabric, job, /*seed=*/31);
  // Two faults active in the same iteration, resolved by different arms
  // of the state machine: the transient flap is waited out (RetryBackoff)
  // while the dead GPU forces a checkpoint restart (IsolateRestart).
  rt.inject(rt.make_fault(RootCause::LinkFlap, Manifestation::FailStop, 3));
  rt.inject(rt.make_fault(RootCause::GpuHardware, Manifestation::FailStop, 3));
  RunOutcome out = rt.run();

  EXPECT_TRUE(out.completed);
  ASSERT_GE(out.mitigations.size(), 2u);
  bool saw_retry = false, saw_restart = false;
  for (const auto& m : out.mitigations) {
    if (m.action == MitigationAction::RetryBackoff) saw_retry = true;
    if (m.action == MitigationAction::IsolateRestart) saw_restart = true;
  }
  EXPECT_TRUE(saw_retry);
  EXPECT_TRUE(saw_restart);
  EXPECT_GE(out.retries, 1);
  EXPECT_GE(out.restarts, 1);
  // Both mitigations' stalls land in downtime exactly once.
  double mttr_sum = 0.0;
  for (const auto& m : out.mitigations) mttr_sum += m.mttr();
  EXPECT_NEAR(out.downtime, mttr_sum, 1e-9);
}

}  // namespace
}  // namespace astral::monitor
