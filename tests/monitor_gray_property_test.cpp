// Property sweep over adversarial flap schedules: under damped WCMP the
// gray mitigation never oscillates, mitigation events stay bounded (one
// centralized push per control tick at most), and runs complete with
// sane ledgers. A clean run with the controller armed is byte-identical
// to the legacy engine — the do-no-harm half of the contract.
#include <gtest/gtest.h>

#include "core/rng.h"
#include "monitor/cluster_runtime.h"

namespace astral::monitor {
namespace {

topo::Fabric property_fabric() {
  topo::FabricParams p;
  p.rails = 2;
  p.hosts_per_block = 4;
  p.blocks_per_pod = 2;
  p.pods = 1;
  return topo::Fabric(p);
}

// Comm-dominated job so a silently derated link actually slows the wall
// clock past the arm threshold (compute does not mask the degradation).
JobConfig property_job() {
  JobConfig job;
  job.hosts = 6;
  job.iterations = 8;
  job.compute_time = 0.001;
  job.comm_bytes = 32ull * 1024 * 1024;
  job.recovery.enabled = true;
  job.gray.mode = GrayRoutingConfig::Mode::Wcmp;
  job.gray.flap_damping = true;
  return job;
}

// A seeded adversarial flap schedule: 1-2 flapping links on distinct
// path hops, dwells drawn in [1, 3] on each side, severity in a band
// that always arms mitigation during the down phase.
FaultSchedule flap_schedule(ClusterRuntime& rt, core::Rng& rng) {
  FaultSchedule s;
  int flappers = 1 + static_cast<int>(rng.uniform_int(2));
  for (int i = 0; i < flappers; ++i) {
    int at = 1 + static_cast<int>(rng.uniform_int(3));
    auto f = rt.make_gray_fault(GrayKind::FlappingLink, at, 1 + i);
    f.flap_down_iters = 1 + static_cast<int>(rng.uniform_int(3));
    f.flap_up_iters = 1 + static_cast<int>(rng.uniform_int(3));
    f.degrade_factor = 0.15 + 0.35 * rng.uniform();
    s.add(f);
  }
  return s;
}

TEST(GrayProperty, AdversarialFlappingNeverOscillatesAndStaysBounded) {
  auto fabric = property_fabric();
  JobConfig job = property_job();

  int engaged_runs = 0;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    ClusterRuntime rt(fabric, job, seed);
    core::Rng rng(seed * 7919 + 13);
    FaultSchedule sched = flap_schedule(rt, rng);
    rt.inject(sched);
    RunOutcome out = rt.run();

    // The headline guarantee: damped mitigation latches, it never
    // re-engages on a link it already handled.
    EXPECT_EQ(out.oscillations, 0) << "seed " << seed;

    // Bounded churn: at most one weights+ports push per control tick.
    EXPECT_LE(out.derates, job.iterations) << "seed " << seed;
    EXPECT_LE(out.mitigations.size(),
              static_cast<std::size_t>(job.iterations))
        << "seed " << seed;
    EXPECT_EQ(out.gray_isolates, 0) << "seed " << seed;

    // Gray faults degrade, they do not kill: the run always completes
    // with a coherent ledger.
    EXPECT_TRUE(out.completed) << "seed " << seed;
    EXPECT_EQ(out.committed_iterations, job.iterations) << "seed " << seed;
    EXPECT_GT(out.goodput, 0.0) << "seed " << seed;
    EXPECT_LE(out.goodput, 1.0) << "seed " << seed;
    for (const MitigationRecord& rec : out.mitigations) {
      EXPECT_EQ(rec.action, MitigationAction::Derate) << "seed " << seed;
      EXPECT_TRUE(rec.succeeded) << "seed " << seed;
      EXPECT_GE(rec.fault_index, 0) << "seed " << seed;
      EXPECT_LT(rec.fault_index, static_cast<int>(sched.size()))
          << "seed " << seed;
    }
    if (out.derates > 0) ++engaged_runs;
  }
  // The sweep is not vacuous: the schedules genuinely engage mitigation
  // in the vast majority of runs.
  EXPECT_GE(engaged_runs, 180);
}

TEST(GrayProperty, CleanRunUnderWcmpIsByteIdenticalToLegacy) {
  auto fabric = property_fabric();
  for (std::uint64_t seed : {1ull, 7ull, 42ull, 1234ull, 99991ull}) {
    JobConfig off_job = property_job();
    off_job.gray = GrayRoutingConfig{};  // legacy: nobody watches links
    ClusterRuntime off_rt(fabric, off_job, seed);
    RunOutcome off = off_rt.run();

    JobConfig wcmp_job = property_job();  // controller armed, never fires
    ClusterRuntime wcmp_rt(fabric, wcmp_job, seed);
    RunOutcome wc = wcmp_rt.run();

    EXPECT_EQ(off.makespan, wc.makespan) << "seed " << seed;
    EXPECT_EQ(off.useful_time, wc.useful_time) << "seed " << seed;
    EXPECT_EQ(off.wasted_time, wc.wasted_time) << "seed " << seed;
    EXPECT_EQ(off.downtime, wc.downtime) << "seed " << seed;
    EXPECT_EQ(off.goodput, wc.goodput) << "seed " << seed;
    EXPECT_EQ(off.committed_iterations, wc.committed_iterations)
        << "seed " << seed;
    EXPECT_EQ(off.mitigations.size(), wc.mitigations.size()) << "seed " << seed;
    EXPECT_EQ(wc.derates, 0) << "seed " << seed;
    EXPECT_EQ(wc.oscillations, 0) << "seed " << seed;

    // The telemetry plane agrees record for record.
    EXPECT_EQ(off_rt.telemetry().record_count(),
              wcmp_rt.telemetry().record_count())
        << "seed " << seed;
    EXPECT_EQ(off_rt.telemetry().qp_rates().size(),
              wcmp_rt.telemetry().qp_rates().size())
        << "seed " << seed;
    EXPECT_EQ(off_rt.telemetry().nccl_timeline().size(),
              wcmp_rt.telemetry().nccl_timeline().size())
        << "seed " << seed;
    EXPECT_EQ(off_rt.telemetry().link_counters().size(),
              wcmp_rt.telemetry().link_counters().size())
        << "seed " << seed;
    EXPECT_EQ(off_rt.telemetry().int_probes().size(),
              wcmp_rt.telemetry().int_probes().size())
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace astral::monitor
