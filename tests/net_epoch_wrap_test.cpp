// Regression test for epoch-counter wraparound. The solver's scratch
// state is keyed by monotonically increasing epoch stamps (island marks,
// solve touches, per-level changed sets, shard-structure builds) that
// are never cleared in steady state. When a counter wraps to zero, a
// stamp written 2^64 increments ago could alias the new epoch and
// corrupt a solve; each counter therefore carries an explicit reset
// path. debug_set_epoch_counters() fast-forwards every counter so a few
// waves push them across the wrap, and the simulator must behave
// bitwise-identically to a twin that never wrapped.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "core/units.h"
#include "net/fluid_sim.h"

namespace astral::net {
namespace {

using core::Seconds;

topo::FabricParams fabric_params() {
  topo::FabricParams p;
  p.style = topo::FabricStyle::AstralSameRail;
  p.rails = 4;
  p.hosts_per_block = 4;
  p.blocks_per_pod = 2;
  p.pods = 1;
  return p;
}

// A schedule that exercises every counter several times: disjoint waves
// (island fast path → mark epochs), overlapping waves (full solves →
// solve/changed/build epochs), and a mid-run degradation (caps rebuild).
std::vector<std::vector<double>> run_schedule(FluidSim& sim,
                                              const topo::Fabric& fabric) {
  auto hosts = fabric.topo().hosts();
  for (int w = 0; w < 8; ++w) {
    std::vector<FlowSpec> specs;
    for (int i = 0; i < 12; ++i) {
      FlowSpec s;
      // Even waves land on rails 0/1, odd waves on rails 2/3: arrivals
      // alternate between overlapping the previous wave and forming a
      // disjoint island.
      const int rail = (w % 2) * 2 + i % 2;
      s.src_host = hosts[static_cast<std::size_t>(i) % hosts.size()];
      s.dst_host = hosts[(static_cast<std::size_t>(i) + 5) % hosts.size()];
      s.src_rail = rail;
      s.dst_rail = rail;
      s.size = (1 + i % 4) * (1 << 20);
      s.start = core::usec(15.0 * w);
      s.tag = static_cast<std::uint64_t>(w * 100 + i);
      specs.push_back(s);
    }
    sim.inject_batch(specs);
  }

  std::vector<std::vector<double>> rates;
  int step = 0;
  for (Seconds t : {core::usec(20), core::usec(50), core::usec(95),
                    core::usec(140), core::msec(1)}) {
    sim.run(t);
    if (++step == 2) sim.degrade_link(static_cast<topo::LinkId>(5), 0.5);
    std::vector<double> r;
    for (FlowId id : sim.active_flows()) r.push_back(sim.current_rate(id));
    rates.push_back(std::move(r));
  }
  sim.run(1.0);
  return rates;
}

TEST(EpochWrap, SolveAcrossWrapMatchesUnwrappedTwin) {
  topo::Fabric fabric_a(fabric_params());
  topo::Fabric fabric_b(fabric_params());
  FluidSim normal(fabric_a, {}, /*seed=*/5);
  FluidSim wrapping(fabric_b, {}, /*seed=*/5);
  // Three increments from the top: the first few solves straddle the
  // wrap of every counter family.
  wrapping.debug_set_epoch_counters(std::numeric_limits<std::uint64_t>::max() - 3);

  const auto want = run_schedule(normal, fabric_a);
  const auto got = run_schedule(wrapping, fabric_b);

  ASSERT_EQ(want.size(), got.size());
  for (std::size_t s = 0; s < want.size(); ++s) {
    ASSERT_EQ(want[s].size(), got[s].size()) << "checkpoint " << s;
    for (std::size_t i = 0; i < want[s].size(); ++i) {
      ASSERT_EQ(std::memcmp(&want[s][i], &got[s][i], sizeof(double)), 0)
          << "checkpoint " << s << " flow " << i << ": " << want[s][i]
          << " vs " << got[s][i];
    }
  }
}

// Same property for the legacy monolithic solver, whose island-mark and
// changed-set stamps wrap independently of the sharded engine's.
TEST(EpochWrap, LegacySolverAcrossWrapMatchesUnwrappedTwin) {
  FluidSimConfig cfg;
  cfg.sharding = false;
  topo::Fabric fabric_a(fabric_params());
  topo::Fabric fabric_b(fabric_params());
  FluidSim normal(fabric_a, cfg, /*seed=*/5);
  FluidSim wrapping(fabric_b, cfg, /*seed=*/5);
  wrapping.debug_set_epoch_counters(std::numeric_limits<std::uint64_t>::max() - 3);

  const auto want = run_schedule(normal, fabric_a);
  const auto got = run_schedule(wrapping, fabric_b);

  ASSERT_EQ(want.size(), got.size());
  for (std::size_t s = 0; s < want.size(); ++s) {
    ASSERT_EQ(want[s], got[s]) << "checkpoint " << s;
  }
}

// Wrapping must not poison later solves either: park the counters just
// below the wrap, run a full workload to completion, then re-solve and
// check idempotence (stale stamps from before the wrap would produce a
// different fixed point).
TEST(EpochWrap, PostWrapResolveIsIdempotent) {
  topo::Fabric fabric(fabric_params());
  FluidSim sim(fabric, {}, /*seed=*/5);
  sim.debug_set_epoch_counters(std::numeric_limits<std::uint64_t>::max() - 1);
  auto hosts = fabric.topo().hosts();
  for (int i = 0; i < 32; ++i) {
    FlowSpec s;
    s.src_host = hosts[static_cast<std::size_t>(i) % hosts.size()];
    s.dst_host = hosts[(static_cast<std::size_t>(i) + 3) % hosts.size()];
    s.src_rail = i % 4;
    s.dst_rail = i % 4;
    s.size = 16 * (1 << 20);
    s.tag = static_cast<std::uint64_t>(i);
    sim.inject(s);
  }
  sim.run(core::usec(40));
  auto active = sim.active_flows();
  ASSERT_FALSE(active.empty());
  std::vector<double> before;
  for (FlowId id : active) before.push_back(sim.current_rate(id));
  sim.resolve_rates();
  sim.resolve_rates();
  for (std::size_t i = 0; i < active.size(); ++i) {
    EXPECT_DOUBLE_EQ(sim.current_rate(active[i]), before[i]);
  }
}

}  // namespace
}  // namespace astral::net
