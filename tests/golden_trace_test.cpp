// Golden-trace regression lock: the deterministic 64-host scripted
// campaign must reproduce the checked-in fixture byte for byte. Any
// refactor that changes what net/coll/monitor/obs emit — event order,
// key stamping, number formatting, ring-buffer behaviour — trips this
// test before it can silently skew downstream replay/forecast tooling.
//
// Intentional changes regenerate the fixture with one command:
//
//   GOLDEN_REGEN=1 ./build/tests/golden_trace_test
//
// then commit the updated files under tests/fixtures/ (see
// EXPERIMENTS.md, "Replay & what-if").
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "replay/recorder.h"
#include "replay/trace_reader.h"

namespace astral::replay {
namespace {

// Injected by tests/CMakeLists.txt; points at the source-tree fixtures.
#ifndef GOLDEN_FIXTURE_DIR
#error "GOLDEN_FIXTURE_DIR must be defined"
#endif

const char* kTracePath = GOLDEN_FIXTURE_DIR "/golden_campaign.trace.json";
const char* kMetricsPath = GOLDEN_FIXTURE_DIR "/golden_campaign.metrics.json";

std::string read_file(const char* path) {
  std::ifstream in(path);
  if (!in) return {};
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool regen_requested() {
  const char* env = std::getenv("GOLDEN_REGEN");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/// The fixture documents: trace compact (one line, Perfetto-loadable),
/// metrics pretty-printed (small, human-diffable), both newline-ended.
RecordedArtifacts golden_artifacts() { return record_scripted_campaign(); }

TEST(GoldenTrace, MatchesCheckedInFixture) {
  auto art = golden_artifacts();
  const std::string trace_text = art.trace.dump() + "\n";
  const std::string metrics_text = art.metrics.dump(2) + "\n";

  if (regen_requested()) {
    std::ofstream(kTracePath) << trace_text;
    std::ofstream(kMetricsPath) << metrics_text;
    GTEST_LOG_(INFO) << "regenerated " << kTracePath << " and " << kMetricsPath;
  }

  const std::string golden_trace = read_file(kTracePath);
  const std::string golden_metrics = read_file(kMetricsPath);
  ASSERT_FALSE(golden_trace.empty())
      << "missing fixture " << kTracePath
      << " — regenerate with GOLDEN_REGEN=1 ./golden_trace_test";

  EXPECT_EQ(trace_text, golden_trace)
      << "the scripted campaign no longer reproduces the golden trace; if "
         "the change is intentional, run GOLDEN_REGEN=1 ./golden_trace_test "
         "and commit the updated fixtures";
  EXPECT_EQ(metrics_text, golden_metrics)
      << "metrics snapshot drifted from the golden fixture (same "
         "regeneration path as the trace)";
}

TEST(GoldenTrace, FixtureParsesBackIntoTheRecordedCampaign) {
  const std::string golden_trace = read_file(kTracePath);
  ASSERT_FALSE(golden_trace.empty());
  std::string err;
  auto doc = core::Json::parse(golden_trace, &err);
  ASSERT_TRUE(doc.has_value()) << err;

  auto parsed = parse_chrome_trace(*doc, &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  EXPECT_EQ(parsed->find_process("astral"), 1);

  auto campaign = extract_campaign(*parsed, &err);
  ASSERT_TRUE(campaign.has_value()) << err;
  ScriptedCampaignConfig cfg;  // the defaults the fixture was recorded with
  EXPECT_EQ(campaign->job, cfg.job_id);
  EXPECT_EQ(campaign->ranks, cfg.hosts);
  EXPECT_EQ(static_cast<int>(campaign->iterations.size()), cfg.iterations);
  for (const auto& it : campaign->iterations) {
    EXPECT_GT(it.compute, 0.0);
    EXPECT_FALSE(it.collectives.empty());
    EXPECT_NEAR(it.collectives.front().bytes,
                static_cast<double>(cfg.comm_bytes) * cfg.hosts, 1.0);
  }
}

TEST(GoldenTrace, WallClockHistogramsAreRedacted) {
  auto art = golden_artifacts();
  const core::Json& solve = art.metrics["histograms"]["fluidsim.solve_us"];
  ASSERT_TRUE(solve.is_object());
  EXPECT_EQ(solve.size(), 1u);  // count only: values are host wall clock
  EXPECT_GT(solve["count"].as_int(), 0);
}

}  // namespace
}  // namespace astral::replay
