#include "monitor/store.h"

#include <gtest/gtest.h>

#include <map>

#include "monitor/faults.h"

namespace astral::monitor {
namespace {

TEST(TelemetryStore, QpMetaRoundTrip) {
  TelemetryStore store;
  QpMeta meta;
  meta.qp = 7;
  meta.src_host_rank = 1;
  meta.dst_host_rank = 2;
  meta.tuple.src_port = 4242;
  store.register_qp(meta);
  auto got = store.qp_meta(7);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->dst_host_rank, 2);
  EXPECT_EQ(got->tuple.src_port, 4242);
  EXPECT_FALSE(store.qp_meta(8).has_value());
}

TEST(TelemetryStore, QpsOfHostSorted) {
  TelemetryStore store;
  for (QpId qp : {5ull, 1ull, 9ull}) {
    QpMeta meta;
    meta.qp = qp;
    meta.src_host_rank = 3;
    store.register_qp(meta);
  }
  auto qps = store.qps_of_host(3);
  EXPECT_EQ(qps, (std::vector<QpId>{1, 5, 9}));
  EXPECT_TRUE(store.qps_of_host(4).empty());
}

TEST(TelemetryStore, IterationEventsFilteredAndSorted) {
  TelemetryStore store;
  store.record(NcclTimelineEvent{.t = 0, .host_rank = 2, .iteration = 1});
  store.record(NcclTimelineEvent{.t = 0, .host_rank = 0, .iteration = 1});
  store.record(NcclTimelineEvent{.t = 0, .host_rank = 1, .iteration = 2});
  auto evs = store.iteration_events(1);
  ASSERT_EQ(evs.size(), 2u);
  EXPECT_EQ(evs[0].host_rank, 0);
  EXPECT_EQ(evs[1].host_rank, 2);
  EXPECT_EQ(store.last_iteration(), 2);
}

TEST(TelemetryStore, MeanQpRateWindows) {
  TelemetryStore store;
  store.record(QpRateSample{0.001, 1, 100.0});
  store.record(QpRateSample{0.002, 1, 200.0});
  store.record(QpRateSample{0.010, 1, 800.0});
  store.record(QpRateSample{0.002, 2, 999.0});
  EXPECT_DOUBLE_EQ(store.mean_qp_rate(1, 0.0, 0.005), 150.0);
  EXPECT_DOUBLE_EQ(store.mean_qp_rate(1, 0.0, 1.0), 1100.0 / 3);
  EXPECT_DOUBLE_EQ(store.mean_qp_rate(3, 0.0, 1.0), 0.0);
}

TEST(TelemetryStore, CounterTotalsByLink) {
  TelemetryStore store;
  store.record(LinkCounterSample{.t = 0, .link = 4, .ecn_marks = 10, .pfc_pauses = 2});
  store.record(LinkCounterSample{.t = 1, .link = 4, .ecn_marks = 5, .pfc_pauses = 3});
  store.record(LinkCounterSample{.t = 1, .link = 9, .ecn_marks = 99});
  EXPECT_EQ(store.total_ecn(4), 15u);
  EXPECT_EQ(store.total_pfc(4), 5u);
  EXPECT_EQ(store.total_ecn(5), 0u);
}

TEST(TelemetryStore, CounterTotalsMatchBruteForceSums) {
  // total_pfc/total_ecn are served from running per-link aggregates; this
  // pins them to the brute-force definition (sum over every sample of the
  // run) across many links and interleavings.
  TelemetryStore store;
  std::map<topo::LinkId, std::pair<std::uint64_t, std::uint64_t>> expect;
  std::uint64_t state = 12345;
  auto next = [&state] {  // Deterministic xorshift stream.
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int i = 0; i < 2000; ++i) {
    LinkCounterSample s;
    s.t = 0.001 * i;
    s.link = static_cast<topo::LinkId>(next() % 17);
    s.ecn_marks = next() % 100;
    s.pfc_pauses = next() % 10;
    expect[s.link].first += s.ecn_marks;
    expect[s.link].second += s.pfc_pauses;
    store.record(s);
  }
  for (const auto& [link, sums] : expect) {
    std::uint64_t ecn = 0, pfc = 0;
    for (const auto& s : store.link_counters()) {
      if (s.link == link) {
        ecn += s.ecn_marks;
        pfc += s.pfc_pauses;
      }
    }
    EXPECT_EQ(ecn, sums.first);
    EXPECT_EQ(pfc, sums.second);
    EXPECT_EQ(store.total_ecn(link), sums.first) << link;
    EXPECT_EQ(store.total_pfc(link), sums.second) << link;
  }
  EXPECT_EQ(store.total_ecn(99), 0u);
  EXPECT_EQ(store.total_pfc(99), 0u);
}

TEST(TelemetryStore, SyslogByHostAndNode) {
  TelemetryStore store;
  store.record(SyslogEvent{0.0, 42, 3, "fatal", "Xid 79"});
  store.record(SyslogEvent{0.0, 50, -1, "warn", "optical"});
  EXPECT_EQ(store.host_syslog(3).size(), 1u);
  EXPECT_TRUE(store.host_syslog(1).empty());
  EXPECT_EQ(store.node_syslog(50).size(), 1u);
  EXPECT_EQ(store.node_syslog(50)[0].message, "optical");
}

SflowPathRecord sflow(core::Seconds t, QpId qp, std::vector<topo::LinkId> path) {
  SflowPathRecord r;
  r.t = t;
  r.qp = qp;
  r.path = std::move(path);
  return r;
}

TEST(TelemetryStore, SflowPathOverwrites) {
  TelemetryStore store;
  store.record(sflow(0.0, 1, {1, 2, 3}));
  store.record(sflow(0.1, 1, {4, 5}));
  EXPECT_EQ(store.path_of(1), (std::vector<topo::LinkId>{4, 5}));
  EXPECT_TRUE(store.path_of(2).empty());
}

TEST(TelemetryStore, SflowReorderedBatchCannotRegressPath) {
  // Collector batches re-deliver and invert (monitor/degrade.h): the
  // newest reconstruction by collector timestamp must win regardless of
  // arrival order, and exact duplicates must be idempotent.
  TelemetryStore store;
  store.record(sflow(2.0, 7, {4, 5}));
  // A stale reconstruction arrives late (reordered batch): ignored.
  store.record(sflow(1.0, 7, {1, 2, 3}));
  EXPECT_EQ(store.path_of(7), (std::vector<topo::LinkId>{4, 5}));
  // The same batch is re-delivered (duplicate): idempotent.
  store.record(sflow(2.0, 7, {4, 5}));
  EXPECT_EQ(store.path_of(7), (std::vector<topo::LinkId>{4, 5}));
  // A genuinely newer reconstruction still overwrites.
  store.record(sflow(3.0, 7, {9}));
  EXPECT_EQ(store.path_of(7), (std::vector<topo::LinkId>{9}));
}

LinkCounterSample snmp(core::Seconds t, topo::LinkId link, std::uint64_t ecn,
                       std::uint64_t pfc) {
  LinkCounterSample s;
  s.t = t;
  s.link = link;
  s.ecn_marks = ecn;
  s.pfc_pauses = pfc;
  s.cumulative = true;
  return s;
}

TEST(TelemetryStore, CumulativeCountersResyncAcrossSwitchReboot) {
  // SNMP-style since-boot totals with a mid-campaign switch reboot: the
  // totals must count what accumulated, never the raw post-reset values,
  // and duplicated/reordered scrapes must not double-count.
  TelemetryStore store;
  store.record(snmp(0.1, 4, 100, 10));
  store.record(snmp(0.2, 4, 150, 12));   // +50 / +2
  store.record(snmp(0.2, 4, 150, 12));   // duplicate scrape: ignored
  store.record(snmp(0.15, 4, 120, 11));  // reordered stale scrape: ignored
  EXPECT_EQ(store.total_ecn(4), 150u);
  EXPECT_EQ(store.total_pfc(4), 12u);
  // The switch reboots: totals restart below the last-seen baseline.
  // Resynchronize, counting only what accumulated since the reset.
  store.record(snmp(0.3, 4, 30, 5));  // +30 / +5
  EXPECT_EQ(store.total_ecn(4), 180u);
  EXPECT_EQ(store.total_pfc(4), 17u);
  store.record(snmp(0.4, 4, 70, 9));  // +40 / +4
  EXPECT_EQ(store.total_ecn(4), 220u);
  EXPECT_EQ(store.total_pfc(4), 21u);
  // Delta-convention samples on another link are unaffected.
  store.record(LinkCounterSample{.t = 0.5, .link = 9, .ecn_marks = 3});
  EXPECT_EQ(store.total_ecn(9), 3u);
}

TEST(TelemetryStore, JsonSnapshotConsolidatesAllLayers) {
  TelemetryStore store;
  store.record(NcclTimelineEvent{.t = 1.0, .host_rank = 2, .iteration = 0,
                                 .compute_time = 0.05, .comm_time = 0.01,
                                 .wr_started = 1, .wr_finished = 1});
  store.record(QpRateSample{1.1, 2, 5e10});
  store.record(ErrCqeEvent{1.2, 2, 2, "retry exceeded"});
  store.record(sflow(1.25, 2, {3, 4, 5}));
  store.record(LinkCounterSample{.t = 1.3, .link = 4, .ecn_marks = 7, .mod_drops = 9});
  store.record(SyslogEvent{1.4, 42, 2, "fatal", "Xid 79"});

  auto doc = store.to_json();
  EXPECT_EQ(doc["application"].size(), 1u);
  EXPECT_EQ(doc["application"].at(0)["host"].as_int(), 2);
  EXPECT_EQ(doc["transport"]["qp_rates"].size(), 1u);
  EXPECT_EQ(doc["transport"]["err_cqes"].at(0)["error"].as_string(), "retry exceeded");
  EXPECT_EQ(doc["network"]["sflow_paths"].at(0)["path"].size(), 3u);
  EXPECT_EQ(doc["physical"]["link_counters"].at(0)["mod_drops"].as_int(), 9);
  EXPECT_EQ(doc["physical"]["syslog"].at(0)["message"].as_string(), "Xid 79");
  // The snapshot is valid JSON text end-to-end.
  auto reparsed = core::Json::parse(doc.dump(2));
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ((*reparsed)["application"].size(), 1u);
}

TEST(TelemetryStore, QpsOfHostSurvivesReRegistration) {
  // qps_of_host is served from a host->QP index maintained at
  // register_qp time; re-registration (fleet segments re-register ring
  // QPs after elastic transitions, possibly with new host mappings) must
  // neither duplicate entries nor leave stale ones behind.
  TelemetryStore store;
  QpMeta meta;
  meta.qp = 5;
  meta.src_host_rank = 1;
  store.register_qp(meta);
  store.register_qp(meta);  // same host twice: no duplicate
  EXPECT_EQ(store.qps_of_host(1), (std::vector<QpId>{5}));
  meta.src_host_rank = 2;  // the QP moves hosts: erased from the old one
  store.register_qp(meta);
  EXPECT_TRUE(store.qps_of_host(1).empty());
  EXPECT_EQ(store.qps_of_host(2), (std::vector<QpId>{5}));
}

TEST(TelemetryStore, IndexedQueriesMatchBruteForceScans) {
  // mean_qp_rate / last_iteration / qps_of_host are served from indexes
  // maintained at record() time; this pins each to the brute-force
  // definition over the public record spans, under a randomized
  // interleaved ingestion stream (bitwise-identical sums: the index
  // walks samples in the same arrival order the full scan does).
  TelemetryStore store;
  std::uint64_t state = 999;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int i = 0; i < 3000; ++i) {
    switch (next() % 3) {
      case 0: {
        QpRateSample s;
        s.t = 0.001 * static_cast<double>(next() % 5000);
        s.qp = next() % 7;
        s.rate_bps = next() % 4 == 0 ? 0.0 : static_cast<double>(next() % 1000) * 1e8;
        store.record(s);
        break;
      }
      case 1: {
        NcclTimelineEvent ev;
        ev.t = 0.001 * i;
        ev.host_rank = static_cast<int>(next() % 4);
        ev.iteration = static_cast<int>(next() % 40);
        store.record(ev);
        break;
      }
      default: {
        QpMeta meta;
        meta.qp = next() % 11;
        meta.src_host_rank = static_cast<int>(next() % 4);
        store.register_qp(meta);
        break;
      }
    }
  }

  for (QpId qp = 0; qp < 8; ++qp) {
    for (auto [from, to] : {std::pair{0.0, 5.0}, {1.0, 2.5}, {4.9, 4.0}}) {
      double sum = 0.0;
      std::uint64_t n = 0;
      for (const auto& s : store.qp_rates()) {
        if (s.qp == qp && s.t >= from && s.t <= to && s.rate_bps > 0.0) {
          sum += s.rate_bps;
          ++n;
        }
      }
      double brute = n ? sum / static_cast<double>(n) : 0.0;
      EXPECT_DOUBLE_EQ(store.mean_qp_rate(qp, from, to), brute)
          << "qp " << qp << " [" << from << ", " << to << "]";
    }
  }

  int brute_last = -1;
  for (const auto& ev : store.nccl_timeline()) {
    brute_last = std::max(brute_last, ev.iteration);
  }
  EXPECT_EQ(store.last_iteration(), brute_last);

  for (int host = 0; host < 5; ++host) {
    std::vector<QpId> brute;
    for (QpId qp = 0; qp < 11; ++qp) {
      auto meta = store.qp_meta(qp);
      if (meta && meta->src_host_rank == host) brute.push_back(qp);
    }
    EXPECT_EQ(store.qps_of_host(host), brute) << "host " << host;
  }
}

TEST(TelemetryStore, LastIterationEmptySentinel) {
  TelemetryStore store;
  EXPECT_EQ(store.last_iteration(), -1);
  store.record(QpRateSample{0.0, 1, 1.0});  // non-timeline records: still -1
  EXPECT_EQ(store.last_iteration(), -1);
  store.record(NcclTimelineEvent{.t = 0, .host_rank = 0, .iteration = 0});
  EXPECT_EQ(store.last_iteration(), 0);
  store.record(NcclTimelineEvent{.t = 1, .host_rank = 0, .iteration = 3});
  store.record(NcclTimelineEvent{.t = 2, .host_rank = 1, .iteration = 1});
  EXPECT_EQ(store.last_iteration(), 3);  // running max, not last arrival
}

TEST(FaultTaxonomy, PrevalencesSumToOne) {
  double sum = 0.0;
  for (auto c : {RootCause::HostEnvConfig, RootCause::NicError, RootCause::UserCode,
                 RootCause::SwitchConfig, RootCause::SwitchBug, RootCause::OpticalFiber,
                 RootCause::CclBug, RootCause::WireConnection, RootCause::GpuHardware,
                 RootCause::Memory, RootCause::LinkFlap}) {
    sum += prevalence(c);
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(prevalence(RootCause::PcieDegrade), 0.0);
}

TEST(FaultTaxonomy, SampledDistributionMatchesFig7) {
  core::Rng rng(77);
  std::map<RootCause, int> cause_counts;
  std::map<Manifestation, int> manif_counts;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    RootCause c = sample_root_cause(rng);
    ++cause_counts[c];
    ++manif_counts[sample_manifestation(c, rng)];
  }
  EXPECT_NEAR(cause_counts[RootCause::HostEnvConfig] / double(n), 0.32, 0.02);
  EXPECT_NEAR(cause_counts[RootCause::NicError] / double(n), 0.15, 0.02);
  // Fig. 7 outer ring: 66 / 17 / 13 / 4.
  EXPECT_NEAR(manif_counts[Manifestation::FailStop] / double(n), 0.66, 0.04);
  EXPECT_NEAR(manif_counts[Manifestation::FailHang] / double(n), 0.17, 0.04);
  EXPECT_NEAR(manif_counts[Manifestation::FailSlow] / double(n), 0.13, 0.04);
  EXPECT_NEAR(manif_counts[Manifestation::FailOnStart] / double(n), 0.04, 0.02);
}

TEST(FaultTaxonomy, HostVsNetworkSplit) {
  EXPECT_TRUE(is_host_side(RootCause::GpuHardware));
  EXPECT_TRUE(is_host_side(RootCause::PcieDegrade));
  EXPECT_FALSE(is_host_side(RootCause::OpticalFiber));
  EXPECT_FALSE(is_host_side(RootCause::SwitchBug));
}

}  // namespace
}  // namespace astral::monitor
