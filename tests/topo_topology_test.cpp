#include "topo/topology.h"

#include <gtest/gtest.h>

namespace astral::topo {
namespace {

using core::gbps;

// A tiny diamond: h0 -> {s1, s2} -> h3.
struct Diamond : ::testing::Test {
  Topology topo;
  NodeId h0, s1, s2, h3;
  LinkId l01, l02, l13, l23;

  void SetUp() override {
    h0 = topo.add_node({.kind = NodeKind::Host, .name = "h0"});
    s1 = topo.add_node({.kind = NodeKind::Tor, .name = "s1"});
    s2 = topo.add_node({.kind = NodeKind::Tor, .name = "s2"});
    h3 = topo.add_node({.kind = NodeKind::Host, .name = "h3"});
    l01 = topo.add_duplex(h0, s1, gbps(100)).first;
    l02 = topo.add_duplex(h0, s2, gbps(100)).first;
    l13 = topo.add_duplex(s1, h3, gbps(100)).first;
    l23 = topo.add_duplex(s2, h3, gbps(100)).first;
  }
};

TEST_F(Diamond, DistancesAreHopCounts) {
  EXPECT_EQ(topo.distance(h0, h3), 2);
  EXPECT_EQ(topo.distance(s1, h3), 1);
  EXPECT_EQ(topo.distance(h3, h3), 0);
  EXPECT_EQ(topo.distance(h3, h0), 2);
}

TEST_F(Diamond, NextHopsAreEqualCostSets) {
  auto hops = topo.next_hops(h0, h3);
  ASSERT_EQ(hops.size(), 2u);
  EXPECT_EQ(hops[0], l01);
  EXPECT_EQ(hops[1], l02);
  auto final_hop = topo.next_hops(s1, h3);
  ASSERT_EQ(final_hop.size(), 1u);
  EXPECT_EQ(final_hop[0], l13);
}

TEST_F(Diamond, ShortestPathsEnumerateBothRoutes) {
  auto paths = topo.shortest_paths(h0, h3);
  ASSERT_EQ(paths.size(), 2u);
  for (const auto& p : paths) EXPECT_EQ(p.size(), 2u);
}

TEST_F(Diamond, LinkDownReroutes) {
  topo.set_link_state(l01, false);
  EXPECT_EQ(topo.distance(h0, h3), 2);
  auto hops = topo.next_hops(h0, h3);
  ASSERT_EQ(hops.size(), 1u);
  EXPECT_EQ(hops[0], l02);
  topo.set_link_state(l02, false);
  EXPECT_EQ(topo.distance(h0, h3), -1);
  EXPECT_TRUE(topo.next_hops(h0, h3).empty());
  topo.set_link_state(l01, true);
  EXPECT_EQ(topo.distance(h0, h3), 2);
}

TEST_F(Diamond, FindByName) {
  EXPECT_EQ(topo.find("s2"), s2);
  EXPECT_EQ(topo.find("nope"), kInvalidNode);
}

TEST_F(Diamond, TierBandwidthSumsDirectedCapacity) {
  // Four duplex host<->tor pairs -> 4 directed links each way.
  EXPECT_DOUBLE_EQ(topo.tier_bandwidth(NodeKind::Host, NodeKind::Tor), gbps(400));
  EXPECT_DOUBLE_EQ(topo.tier_bandwidth(NodeKind::Tor, NodeKind::Host), gbps(400));
  topo.set_link_state(l01, false);
  EXPECT_DOUBLE_EQ(topo.tier_bandwidth(NodeKind::Host, NodeKind::Tor), gbps(300));
}

TEST_F(Diamond, HostUplinkRegistry) {
  topo.set_host_uplink(h0, 0, 0, l01);
  topo.set_host_uplink(h0, 0, 1, l02);
  EXPECT_EQ(topo.host_uplink(h0, 0, 0), l01);
  EXPECT_EQ(topo.host_uplink(h0, 0, 1), l02);
  EXPECT_EQ(topo.host_uplink(h0, 1, 0), kInvalidLink);
  EXPECT_EQ(topo.host_uplink(h3, 0, 0), kInvalidLink);
  EXPECT_EQ(topo.sides(), 2);
}

TEST(Topology, HostsTracked) {
  Topology t;
  NodeId a = t.add_node({.kind = NodeKind::Host, .name = "a"});
  t.add_node({.kind = NodeKind::Tor, .name = "t"});
  NodeId b = t.add_node({.kind = NodeKind::Host, .name = "b"});
  ASSERT_EQ(t.hosts().size(), 2u);
  EXPECT_EQ(t.hosts()[0], a);
  EXPECT_EQ(t.hosts()[1], b);
}

TEST(Topology, ShortestPathLimitRespected) {
  // Two-stage diamond with 4 equal paths; limit caps enumeration.
  Topology t;
  NodeId s = t.add_node({.kind = NodeKind::Host, .name = "s"});
  NodeId d = t.add_node({.kind = NodeKind::Host, .name = "d"});
  NodeId m1 = t.add_node({.kind = NodeKind::Tor, .name = "m1"});
  NodeId m2 = t.add_node({.kind = NodeKind::Tor, .name = "m2"});
  NodeId n1 = t.add_node({.kind = NodeKind::Agg, .name = "n1"});
  NodeId n2 = t.add_node({.kind = NodeKind::Agg, .name = "n2"});
  for (NodeId m : {m1, m2}) {
    t.add_duplex(s, m, gbps(1));
    for (NodeId n : {n1, n2}) t.add_duplex(m, n, gbps(1));
  }
  for (NodeId n : {n1, n2}) t.add_duplex(n, d, gbps(1));
  EXPECT_EQ(t.shortest_paths(s, d).size(), 4u);
  EXPECT_EQ(t.shortest_paths(s, d, 3).size(), 3u);
}

}  // namespace
}  // namespace astral::topo
