// Property sweeps over the fluid simulator: conservation, feasibility and
// max-min optimality of the computed rates across fabric styles and load
// patterns.
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "core/rng.h"
#include "net/fluid_sim.h"

namespace astral::net {
namespace {

using Params = std::tuple<topo::FabricStyle, int /*flows*/, std::uint64_t /*seed*/>;

class FluidProperty : public ::testing::TestWithParam<Params> {
 protected:
  topo::Fabric make_fabric() const {
    topo::FabricParams p;
    p.style = std::get<0>(GetParam());
    p.rails = 4;
    p.hosts_per_block = 4;
    p.blocks_per_pod = 2;
    p.pods = 2;
    return topo::Fabric(p);
  }

  std::vector<FlowSpec> make_specs(const topo::Fabric& f) const {
    auto [style, nflows, seed] = GetParam();
    (void)style;
    core::Rng rng(seed);
    std::vector<FlowSpec> specs;
    auto hosts = f.topo().hosts();
    // Rail-only fabrics have no inter-pod connectivity: stay in pod 0.
    std::size_t usable = style == topo::FabricStyle::RailOnly
                             ? hosts.size() / static_cast<std::size_t>(f.params().pods)
                             : hosts.size();
    for (int i = 0; i < nflows; ++i) {
      FlowSpec s;
      std::size_t a = rng.uniform_int(usable);
      std::size_t b = rng.uniform_int(usable - 1);
      if (b >= a) ++b;
      s.src_host = hosts[a];
      s.dst_host = hosts[b];
      int rail = static_cast<int>(rng.uniform_int(4));
      s.src_rail = rail;
      s.dst_rail = rail;  // same-rail keeps rail-only routable
      s.size = (1 + rng.uniform_int(16)) * (1 << 20);
      s.tag = static_cast<std::uint64_t>(i);
      specs.push_back(s);
    }
    return specs;
  }
};

TEST_P(FluidProperty, AllAdmittedFlowsComplete) {
  auto f = make_fabric();
  FluidSim sim(f);
  auto specs = make_specs(f);
  std::vector<FlowId> ids;
  for (const auto& s : specs) ids.push_back(sim.inject(s));
  sim.run();
  for (FlowId id : ids) {
    const auto& st = sim.flow(id);
    ASSERT_TRUE(st.admitted);
    EXPECT_GE(st.finish, 0.0);
    EXPECT_NEAR(st.remaining, 0.0, 1.0);
  }
  EXPECT_TRUE(sim.idle());
}

TEST_P(FluidProperty, ByteConservationPerLink) {
  auto f = make_fabric();
  FluidSim sim(f);
  auto specs = make_specs(f);
  std::vector<FlowId> ids;
  for (const auto& s : specs) ids.push_back(sim.inject(s));
  sim.run();
  // Expected per-link bytes = sum of sizes of flows whose path uses it.
  std::map<topo::LinkId, double> expected;
  for (FlowId id : ids) {
    const auto& st = sim.flow(id);
    for (topo::LinkId l : st.path) expected[l] += static_cast<double>(st.spec.size);
  }
  for (const auto& [l, bytes] : expected) {
    EXPECT_NEAR(sim.link_stats(l).bytes_forwarded, bytes, bytes * 1e-6 + 1.0);
  }
}

TEST_P(FluidProperty, RatesNeverExceedCapacity) {
  auto f = make_fabric();
  FluidSim sim(f);
  auto specs = make_specs(f);
  std::vector<FlowId> ids;
  for (const auto& s : specs) ids.push_back(sim.inject(s));
  // Step through the transfer, checking feasibility at several instants.
  for (int step = 0; step < 5 && !sim.idle(); ++step) {
    sim.run(sim.now() + core::usec(150));
    std::map<topo::LinkId, double> load;
    for (FlowId id : ids) {
      const auto& st = sim.flow(id);
      if (st.rate <= 0) continue;
      for (topo::LinkId l : st.path) load[l] += st.rate;
    }
    for (const auto& [l, rate] : load) {
      EXPECT_LE(rate, f.topo().link(l).capacity * (1.0 + 1e-9));
    }
  }
  sim.run();
}

TEST_P(FluidProperty, EveryActiveFlowHasASaturatedBottleneck) {
  // Max-min optimality witness: a flow's rate can only be limited by a
  // saturated link on its own path.
  auto f = make_fabric();
  FluidSim sim(f);
  auto specs = make_specs(f);
  std::vector<FlowId> ids;
  for (const auto& s : specs) ids.push_back(sim.inject(s));
  sim.run(core::usec(100));  // mid-transfer snapshot
  std::map<topo::LinkId, double> load;
  for (FlowId id : ids) {
    const auto& st = sim.flow(id);
    if (st.rate <= 0) continue;
    for (topo::LinkId l : st.path) load[l] += st.rate;
  }
  for (FlowId id : ids) {
    const auto& st = sim.flow(id);
    if (st.rate <= 0 || st.finish >= 0) continue;
    bool has_bottleneck = false;
    for (topo::LinkId l : st.path) {
      if (load[l] >= f.topo().link(l).capacity * (1.0 - 1e-6)) has_bottleneck = true;
    }
    EXPECT_TRUE(has_bottleneck) << "flow " << id << " rate " << st.rate;
  }
  sim.run();
}

TEST_P(FluidProperty, DeterministicReplay) {
  auto run_once = [&] {
    auto f = make_fabric();
    FluidSim sim(f);
    for (const auto& s : make_specs(f)) sim.inject(s);
    sim.run();
    return sim.now();
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

std::string param_name(const ::testing::TestParamInfo<Params>& info) {
  auto [style, flows, seed] = info.param;
  std::string name = to_string(style);
  for (auto& c : name) {
    if (c == '-') c = '_';
  }
  return name + "_f" + std::to_string(flows) + "_s" + std::to_string(seed);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FluidProperty,
    ::testing::Combine(::testing::Values(topo::FabricStyle::AstralSameRail,
                                         topo::FabricStyle::RailOptimized,
                                         topo::FabricStyle::Clos,
                                         topo::FabricStyle::RailOnly,
                                         topo::FabricStyle::UBMesh),
                       ::testing::Values(8, 32, 96),
                       ::testing::Values(1ull, 42ull)),
    param_name);

}  // namespace
}  // namespace astral::net
