// Bit-identity contract of the pod-sharded solver (see shard_solver.h):
// for the default exact component sharding, rates must be *bitwise*
// equal — not merely close — to the pre-sharding monolithic solver, and
// across every thread count. With boundary relaxation the rates may
// differ from the monolithic solver in the last ulps (different
// floating-point evaluation order across reconciliation passes), but
// they must still be bitwise reproducible across thread counts.
//
// One deterministic scenario script (waves of same-pod and cross-pod
// flows on an oversubscribed AstralSameRail fabric, with mid-run
// degradations, a link flap, and an abort) is replayed into identically
// seeded simulators that differ only in solver configuration; flow
// rates, hop latencies (capturing published per-link overloads) and
// final byte counters are compared exactly.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/rng.h"
#include "core/units.h"
#include "net/fluid_sim.h"
#include "parallel/shard_seed.h"

namespace astral::net {
namespace {

using core::Seconds;

topo::FabricParams fabric_params() {
  topo::FabricParams p;
  p.style = topo::FabricStyle::AstralSameRail;
  p.rails = 4;
  p.hosts_per_block = 4;
  p.blocks_per_pod = 2;
  p.pods = 2;
  p.tier3_oversub = 2.0;  // Cross-pod waves saturate the core tier.
  return p;
}

struct Observation {
  std::vector<std::vector<double>> rates;      ///< Per checkpoint.
  std::vector<std::vector<double>> latencies;  ///< Per checkpoint, per link.
  std::vector<double> bytes_forwarded;         ///< Final, per link.
};

// Replays the fixed script into a fresh simulator and records everything
// the solver publishes. `domains` enables boundary relaxation.
Observation run_script(const FluidSimConfig& cfg, bool domains) {
  topo::Fabric fabric(fabric_params());
  FluidSim sim(fabric, cfg, /*seed=*/42);
  if (domains) sim.set_shard_domains(parallel::link_locality_domains(fabric));
  auto hosts = fabric.topo().hosts();
  const std::size_t nhosts = hosts.size();
  core::Rng rng(99);

  // Six waves: even waves stay inside a pod (shardable), odd waves cross
  // pods (boundary traffic under relaxation).
  std::vector<FlowId> tracked;
  for (int w = 0; w < 6; ++w) {
    std::vector<FlowSpec> specs;
    for (int i = 0; i < 24; ++i) {
      FlowSpec s;
      std::size_t a = rng.uniform_int(nhosts / 2);
      std::size_t b = rng.uniform_int(nhosts / 2);
      if (w % 2 == 1) b += nhosts / 2;  // cross into the other pod
      s.src_host = hosts[a];
      s.dst_host = hosts[b];
      s.src_rail = i % 4;
      s.dst_rail = i % 4;
      s.size = (2 + rng.uniform_int(16)) * (1 << 20);
      s.start = core::usec(25.0 * w);
      s.tag = static_cast<std::uint64_t>(w * 100 + i);
      specs.push_back(s);
    }
    auto ids = sim.inject_batch(specs);
    if (w == 0) tracked = ids;
  }

  const std::size_t nlinks = fabric.topo().link_count();
  Observation obs;
  int step = 0;
  for (Seconds t : {core::usec(40), core::usec(90), core::usec(160),
                    core::usec(400), core::msec(2), core::msec(20)}) {
    sim.run(t);
    ++step;
    if (step == 2) sim.degrade_link(static_cast<topo::LinkId>(3), 0.4);
    if (step == 3) {
      sim.set_link_up(static_cast<topo::LinkId>(11), false);
      sim.reroute_flows();
    }
    if (step == 4) {
      sim.set_link_up(static_cast<topo::LinkId>(11), true);
      if (!tracked.empty()) sim.abort_flow(tracked[0]);
    }
    auto active = sim.active_flows();
    std::vector<double> rates;
    for (FlowId id : active) rates.push_back(sim.current_rate(id));
    obs.rates.push_back(std::move(rates));
    std::vector<double> lat(nlinks);
    for (std::size_t l = 0; l < nlinks; ++l) {
      lat[l] = sim.hop_latency(static_cast<topo::LinkId>(l));
    }
    obs.latencies.push_back(std::move(lat));
  }
  sim.run(1.0);
  obs.bytes_forwarded.resize(nlinks);
  for (std::size_t l = 0; l < nlinks; ++l) {
    obs.bytes_forwarded[l] = sim.link_stats(static_cast<topo::LinkId>(l)).bytes_forwarded;
  }
  return obs;
}

// Bitwise equality: 0.0 vs -0.0 and NaN payloads count as differences.
void expect_bitwise(const std::vector<double>& a, const std::vector<double>& b,
                    const char* what, int step) {
  ASSERT_EQ(a.size(), b.size()) << what << " step " << step;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(std::memcmp(&a[i], &b[i], sizeof(double)), 0)
        << what << " step " << step << " index " << i << ": " << a[i]
        << " vs " << b[i];
  }
}

void expect_same(const Observation& a, const Observation& b) {
  ASSERT_EQ(a.rates.size(), b.rates.size());
  for (std::size_t s = 0; s < a.rates.size(); ++s) {
    expect_bitwise(a.rates[s], b.rates[s], "rates", static_cast<int>(s));
    if (::testing::Test::HasFatalFailure()) return;
    expect_bitwise(a.latencies[s], b.latencies[s], "hop latencies",
                   static_cast<int>(s));
    if (::testing::Test::HasFatalFailure()) return;
  }
  expect_bitwise(a.bytes_forwarded, b.bytes_forwarded, "bytes", -1);
}

TEST(ShardedDeterminism, ExactShardingMatchesLegacyBitwise) {
  FluidSimConfig legacy;
  legacy.sharding = false;
  const Observation base = run_script(legacy, /*domains=*/false);
  const Observation sharded = run_script(FluidSimConfig{}, /*domains=*/false);
  expect_same(base, sharded);
}

TEST(ShardedDeterminism, ExactShardingIsThreadCountInvariant) {
  const Observation t1 = run_script(FluidSimConfig{}, /*domains=*/false);
  for (int threads : {2, 4, 8}) {
    FluidSimConfig cfg;
    cfg.solver_threads = threads;
    const Observation tn = run_script(cfg, /*domains=*/false);
    expect_same(t1, tn);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(ShardedDeterminism, RelaxedShardingIsThreadCountInvariant) {
  FluidSimConfig cfg1;
  cfg1.solver_threads = 1;
  const Observation t1 = run_script(cfg1, /*domains=*/true);
  for (int threads : {2, 4}) {
    FluidSimConfig cfg;
    cfg.solver_threads = threads;
    const Observation tn = run_script(cfg, /*domains=*/true);
    expect_same(t1, tn);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(ShardedDeterminism, RepeatedRunsAreBitwiseStable) {
  FluidSimConfig cfg;
  cfg.solver_threads = 4;
  const Observation a = run_script(cfg, /*domains=*/false);
  const Observation b = run_script(cfg, /*domains=*/false);
  expect_same(a, b);
}

}  // namespace
}  // namespace astral::net
