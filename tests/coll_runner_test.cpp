#include "coll/runner.h"

#include <gtest/gtest.h>

#include "parallel/placement.h"

namespace astral::coll {
namespace {

using core::gbps;
using namespace core;  // literal operators (_MiB)

topo::Fabric small_fabric(topo::FabricStyle style = topo::FabricStyle::AstralSameRail) {
  topo::FabricParams p;
  p.style = style;
  p.rails = 4;
  p.hosts_per_block = 4;
  p.blocks_per_pod = 2;
  p.pods = 2;
  return topo::Fabric(p);
}

CommGroup group_of(const topo::Fabric& f, int n) {
  auto placement = parallel::Placement::packed(f, n);
  return CommGroup{placement.gpus};
}

TEST(CollectiveRunner, SendRecvSameHostUsesNvlink) {
  auto f = small_fabric();
  net::FluidSim sim(f);
  CollectiveRunner runner(sim);
  auto res = runner.send_recv(0, 1, 32_MiB);
  EXPECT_DOUBLE_EQ(res.fabric_time, 0.0);
  EXPECT_GT(res.nvlink_time, 0.0);
  EXPECT_NEAR(res.duration, core::transfer_time(32_MiB, core::gBps(450)), 1e-9);
}

TEST(CollectiveRunner, SendRecvCrossHostSameRail) {
  auto f = small_fabric();
  net::FluidSim sim(f);
  CollectiveRunner runner(sim);
  int dst = f.params().rails * f.params().hosts_per_block;  // same rail 0
  auto res = runner.send_recv(0, dst, 25_MiB);
  EXPECT_DOUBLE_EQ(res.nvlink_time, 0.0);
  EXPECT_NEAR(res.duration, core::transfer_time(25_MiB, gbps(200)), 1e-6);
}

TEST(CollectiveRunner, SendRecvCrossRailUsesPxn) {
  auto f = small_fabric();
  net::FluidSim sim(f);
  CollectiveRunner runner(sim);
  int dst = f.params().rails * f.params().hosts_per_block + 2;  // rail 2
  auto res = runner.send_recv(0, dst, 25_MiB);
  EXPECT_GT(res.nvlink_time, 0.0);  // PXN hop
  EXPECT_GT(res.fabric_time, 0.0);
}

TEST(CollectiveRunner, AllReduceScalesWithGroupSize) {
  auto f = small_fabric();
  net::FluidSim sim(f);
  CollectiveRunner runner(sim);
  auto res8 = runner.all_reduce(group_of(f, 8), 256_MiB);
  auto res16 = runner.all_reduce(group_of(f, 16), 256_MiB);
  EXPECT_GT(res8.duration, 0.0);
  EXPECT_GT(res16.duration, 0.0);
  // Ring bus bandwidth should be stable across sizes on a non-blocking
  // fabric (within 2x; intra-host steps differ).
  EXPECT_LT(res16.duration / res8.duration, 3.0);
}

TEST(CollectiveRunner, AllReduceBusBwBoundedByLineRate) {
  auto f = small_fabric();
  net::FluidSim sim(f);
  CollectiveRunner runner(sim);
  auto res = runner.all_reduce(group_of(f, 16), 512_MiB);
  // Host-crossing ring edges ride one 200G NIC port.
  EXPECT_LE(res.bus_bw, gbps(200) * 1.01);
  EXPECT_GT(res.bus_bw, gbps(200) * 0.3);
}

TEST(CollectiveRunner, HierarchicalAllReduceUsesAllRailsConcurrently) {
  // The rail-fabric payoff: per-rail rings keep every NIC of every host
  // busy at once, beating the flat ring that serializes on one lane.
  auto f = small_fabric();
  net::FluidSim sim_flat(f);
  CollectiveRunner flat(sim_flat);
  auto res_flat = flat.all_reduce(group_of(f, 16), 512_MiB);

  auto f2 = small_fabric();
  net::FluidSim sim_h(f2);
  CollectiveRunner hier(sim_h);
  auto res_h = hier.all_reduce_hierarchical(group_of(f2, 16), 512_MiB);

  EXPECT_GT(res_h.bus_bw, res_flat.bus_bw * 2.0);  // 4 rails in parallel
  EXPECT_GT(res_h.nvlink_time, 0.0);               // intra phases present
}

TEST(CollectiveRunner, HierarchicalFallsBackForPartialHosts) {
  auto f = small_fabric();
  net::FluidSim sim(f);
  CollectiveRunner runner(sim);
  // 6 GPUs: host 0 full (4) + half of host 1 (2) -> ragged, falls back.
  auto res = runner.all_reduce_hierarchical(group_of(f, 6), 64_MiB);
  auto flat = CollectiveRunner(sim).all_reduce(group_of(f, 6), 64_MiB);
  EXPECT_NEAR(res.duration, flat.duration, flat.duration * 0.2);
}

TEST(CollectiveRunner, HierarchicalSingleHostIsNvlinkRing) {
  auto f = small_fabric();
  net::FluidSim sim(f);
  CollectiveRunner runner(sim);
  auto res = runner.all_reduce_hierarchical(group_of(f, 4), 64_MiB);
  EXPECT_GT(res.duration, 0.0);
  EXPECT_EQ(res.fabric_bytes, 0u);  // all NVLink
}

TEST(CollectiveRunner, ReduceScatterIsHalfAllReduce) {
  auto f = small_fabric();
  net::FluidSim sim(f);
  CollectiveRunner runner(sim);
  auto ar = runner.all_reduce(group_of(f, 16), 256_MiB);
  auto rs = runner.reduce_scatter(group_of(f, 16), 256_MiB);
  EXPECT_NEAR(ar.duration / rs.duration, 2.0, 0.2);
}

TEST(CollectiveRunner, AllGatherMatchesReduceScatter) {
  auto f = small_fabric();
  net::FluidSim sim(f);
  CollectiveRunner runner(sim);
  auto rs = runner.reduce_scatter(group_of(f, 16), 128_MiB);
  auto ag = runner.all_gather(group_of(f, 16), 128_MiB);
  EXPECT_NEAR(rs.duration, ag.duration, rs.duration * 0.05);
}

TEST(CollectiveRunner, AllToAllWithinHostIsNvlinkOnly) {
  auto f = small_fabric();
  net::FluidSim sim(f);
  CollectiveRunner runner(sim);
  auto res = runner.all_to_all(group_of(f, 4), 8_MiB);  // one host (4 rails)
  EXPECT_EQ(res.fabric_bytes, 0u);
  EXPECT_GT(res.duration, 0.0);
}

TEST(CollectiveRunner, AllToAllPxnMakesAllFlowsSameRail) {
  auto f = small_fabric();
  net::FluidSim sim(f);
  CollectiveRunner runner(sim, {.pxn = true});
  auto res = runner.all_to_all(group_of(f, 16), 4_MiB);
  EXPECT_GT(res.fabric_bytes, 0u);
  // With PXN every fabric flow is same-rail: no flow ever visits a Core
  // switch inside one pod.
  const auto& topo = f.topo();
  for (std::size_t l = 0; l < topo.link_count(); ++l) {
    const auto& link = topo.link(static_cast<topo::LinkId>(l));
    if (topo.node(link.src).kind == topo::NodeKind::Core ||
        topo.node(link.dst).kind == topo::NodeKind::Core) {
      EXPECT_DOUBLE_EQ(sim.link_stats(static_cast<topo::LinkId>(l)).bytes_forwarded, 0.0);
    }
  }
}

TEST(CollectiveRunner, AllToAllWithoutPxnCrossesCore) {
  auto f = small_fabric();
  net::FluidSim sim(f);
  CollectiveRunner runner(sim, {.pxn = false});
  auto res = runner.all_to_all(group_of(f, 16), 4_MiB);
  EXPECT_GT(res.fabric_bytes, 0u);
  const auto& topo = f.topo();
  double core_bytes = 0;
  for (std::size_t l = 0; l < topo.link_count(); ++l) {
    const auto& link = topo.link(static_cast<topo::LinkId>(l));
    if (topo.node(link.dst).kind == topo::NodeKind::Core) {
      core_bytes += sim.link_stats(static_cast<topo::LinkId>(l)).bytes_forwarded;
    }
  }
  EXPECT_GT(core_bytes, 0.0);
}

TEST(CollectiveRunner, AllToAllSamplingApproximatesFullRun) {
  auto f = small_fabric();
  net::FluidSim sim_full(f);
  CollectiveRunner full(sim_full, {.sample_rounds = 0});
  auto res_full = full.all_to_all(group_of(f, 16), 2_MiB);

  auto f2 = small_fabric();
  net::FluidSim sim_sampled(f2);
  CollectiveRunner sampled(sim_sampled, {.sample_rounds = 5});
  auto res_sampled = sampled.all_to_all(group_of(f2, 16), 2_MiB);

  EXPECT_EQ(res_sampled.rounds_simulated, 5);
  EXPECT_NEAR(res_sampled.duration, res_full.duration, res_full.duration * 0.25);
}

TEST(CollectiveRunner, RailOnlyAllToAllStillCompletes) {
  auto f = small_fabric(topo::FabricStyle::RailOnly);
  net::FluidSim sim(f);
  CollectiveRunner runner(sim, {.pxn = false});  // PXN forced when needed
  auto res = runner.all_to_all(group_of(f, 16), 2_MiB);
  EXPECT_GT(res.duration, 0.0);
  EXPECT_GT(res.nvlink_time, 0.0);  // cross-rail had to hop NVLink
}

TEST(CollectiveRunner, StallFailoverReroutesOntoSurvivingTor) {
  auto f = small_fabric();
  net::FluidSim sim(f);
  CollectiveRunner runner(sim, {.reroute_on_stall = true});
  int dst = f.params().rails * f.params().hosts_per_block;  // same rail 0
  // Predict the path the first send_recv flow will pin, then silently
  // blackhole its uplink: the flow admits, stalls at rate 0, and the
  // runner must fail over to the other dual-ToR side in flight.
  net::FlowSpec spec;
  spec.src_host = f.gpu(0).host;
  spec.dst_host = f.gpu(dst).host;
  spec.src_rail = 0;
  spec.dst_rail = 0;
  spec.size = 25_MiB;
  spec.tag = 0;  // first tag the runner hands out
  auto path = sim.predict_path(spec);
  ASSERT_TRUE(path.has_value());
  sim.degrade_link(path->front(), 0.0);

  auto res = runner.send_recv(0, dst, 25_MiB);
  EXPECT_EQ(res.rerouted_flows, 1);
  EXPECT_EQ(res.aborted_flows, 0);
  EXPECT_GT(res.fabric_time, 0.0);
  EXPECT_TRUE(sim.idle());  // the transfer actually finished
}

TEST(CollectiveRunner, StallFailoverAbortsWhenNoPathSurvives) {
  auto f = small_fabric();
  net::FluidSim sim(f);
  CollectiveRunner runner(sim, {.reroute_on_stall = true});
  int dst = f.params().rails * f.params().hosts_per_block;
  // Blackhole both dual-ToR uplinks of the source host's rail-0 NIC:
  // the flow admits (blackholes stay routable), stalls, and has nowhere
  // to go — the runner must drop it rather than hang.
  topo::NodeId src_host = f.gpu(0).host;
  sim.degrade_link(f.topo().host_uplink(src_host, 0, 0), 0.0);
  sim.degrade_link(f.topo().host_uplink(src_host, 0, 1), 0.0);

  auto res = runner.send_recv(0, dst, 25_MiB);
  EXPECT_EQ(res.rerouted_flows, 0);
  EXPECT_EQ(res.aborted_flows, 1);
  EXPECT_TRUE(sim.idle());  // aborted, not left stalled in the solver
}

TEST(CollectiveRunner, StallWithoutFailoverParksLikeAHang) {
  auto f = small_fabric();
  net::FluidSim sim(f);
  CollectiveRunner runner(sim);  // reroute_on_stall off (default)
  int dst = f.params().rails * f.params().hosts_per_block;
  topo::NodeId src_host = f.gpu(0).host;
  sim.degrade_link(f.topo().host_uplink(src_host, 0, 0), 0.0);
  sim.degrade_link(f.topo().host_uplink(src_host, 0, 1), 0.0);

  auto res = runner.send_recv(0, dst, 25_MiB);
  EXPECT_EQ(res.rerouted_flows, 0);
  EXPECT_EQ(res.aborted_flows, 0);
  EXPECT_FALSE(sim.idle());  // stalled flow stays live for the monitors
}

TEST(CollectiveRunner, RingFailoverKeepsAllReduceFinite) {
  auto f = small_fabric();
  net::FluidSim sim(f);
  CollectiveRunner runner(sim, {.reroute_on_stall = true});
  // Blackhole one ToR side of every host on rail 0: each ring edge that
  // picked the dead side stalls and must be moved to the other side.
  const auto& topo = f.topo();
  for (int g = 0; g < 16; g += f.params().rails) {
    sim.degrade_link(topo.host_uplink(f.gpu(g).host, 0, 0), 0.0);
  }
  auto res = runner.all_reduce(group_of(f, 16), 64_MiB);
  EXPECT_GT(res.duration, 0.0);
  EXPECT_EQ(res.aborted_flows, 0);  // the other side always survives
  EXPECT_TRUE(sim.idle());
}

TEST(CollectiveRunner, TrivialGroupsReturnZero) {
  auto f = small_fabric();
  net::FluidSim sim(f);
  CollectiveRunner runner(sim);
  EXPECT_DOUBLE_EQ(runner.all_reduce(group_of(f, 1), 1_MiB).duration, 0.0);
  EXPECT_DOUBLE_EQ(runner.all_to_all(group_of(f, 1), 1_MiB).duration, 0.0);
  EXPECT_DOUBLE_EQ(runner.send_recv(3, 3, 1_MiB).duration, 0.0);
  EXPECT_DOUBLE_EQ(runner.all_reduce(group_of(f, 8), 0).duration, 0.0);
}

}  // namespace
}  // namespace astral::coll
