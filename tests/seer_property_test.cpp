// Property sweeps over Seer: graph validity, monotonicity of forecasts
// in hardware knobs, and internal-consistency invariants across the
// (model x parallelism x phase) grid.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "workload/trainer.h"

namespace astral::seer {
namespace {

enum class Which { Tiny, Llama70B, Gpt3, Moe };

ModelSpec model_of(Which w) {
  switch (w) {
    case Which::Tiny: return ModelSpec::tiny();
    case Which::Llama70B: return ModelSpec::llama3_70b();
    case Which::Gpt3: return ModelSpec::gpt3_175b();
    case Which::Moe: return ModelSpec::hunyuan_moe();
  }
  return ModelSpec::tiny();
}

// (model, tp, dp, pp, phase)
using Params = std::tuple<Which, int, int, int, Phase>;

class SeerProperty : public ::testing::TestWithParam<Params> {
 protected:
  parallel::ParallelismConfig cfg() const {
    auto [w, tp, dp, pp, phase] = GetParam();
    (void)w;
    (void)phase;
    int ep = model_of(std::get<0>(GetParam())).is_moe() ? dp : 1;
    return {.tp = tp, .dp = dp, .pp = pp, .ep = ep};
  }
  WorkloadShape shape() const {
    WorkloadShape s;
    s.phase = std::get<4>(GetParam());
    s.micro_batch = 2;
    s.seq_len = 2048;
    return s;
  }
};

TEST_P(SeerProperty, GraphValidatesAndIsNonTrivial) {
  auto g = build_graph(model_of(std::get<0>(GetParam())), cfg(), shape());
  std::string err;
  ASSERT_TRUE(g.validate(&err)) << err;
  EXPECT_GT(g.ops.size(), 4u);
  EXPECT_GT(g.total_flops(), 0.0);
}

TEST_P(SeerProperty, TimelineCoversEveryOpExactlyOnce) {
  auto g = build_graph(model_of(std::get<0>(GetParam())), cfg(), shape());
  SeerEngine engine(
      CostModel(GpuSpec::h100(), CommEnv{}, std::make_shared<TheoreticalEfficiency>()));
  auto tl = engine.run(g);
  EXPECT_EQ(tl.events.size(), g.ops.size());
  std::set<int> ids;
  for (const auto& ev : tl.events) {
    EXPECT_TRUE(ids.insert(ev.op_id).second);
    EXPECT_GE(ev.start, 0.0);
    EXPECT_GE(ev.end, ev.start);
    EXPECT_LE(ev.end, tl.makespan + 1e-12);
  }
}

TEST_P(SeerProperty, DependenciesRespectedInTimeline) {
  auto g = build_graph(model_of(std::get<0>(GetParam())), cfg(), shape());
  SeerEngine engine(
      CostModel(GpuSpec::h100(), CommEnv{}, std::make_shared<TheoreticalEfficiency>()));
  auto tl = engine.run(g);
  std::map<int, const TimelineEvent*> by_id;
  for (const auto& ev : tl.events) by_id[ev.op_id] = &ev;
  for (const auto& op : g.ops) {
    for (int d : op.deps) {
      EXPECT_LE(by_id[d]->end, by_id[op.id]->start + 1e-12)
          << "op " << op.id << " started before dep " << d;
    }
  }
}

TEST_P(SeerProperty, FasterGpuNeverSlower) {
  auto g = build_graph(model_of(std::get<0>(GetParam())), cfg(), shape());
  auto eff = std::make_shared<TheoreticalEfficiency>();
  auto run_with = [&](GpuSpec gpu) {
    return SeerEngine(CostModel(std::move(gpu), CommEnv{}, eff)).run(g).makespan;
  };
  EXPECT_LE(run_with(GpuSpec::h100()), run_with(GpuSpec::a100()) * (1.0 + 1e-9));
}

TEST_P(SeerProperty, MoreBandwidthNeverSlower) {
  auto g = build_graph(model_of(std::get<0>(GetParam())), cfg(), shape());
  auto eff = std::make_shared<TheoreticalEfficiency>();
  CommEnv slow_env;
  slow_env.nic_bw = core::gbps(100);
  CommEnv fast_env;
  fast_env.nic_bw = core::gbps(800);
  auto run_with = [&](CommEnv env) {
    return SeerEngine(CostModel(GpuSpec::h100(), env, eff)).run(g).makespan;
  };
  EXPECT_LE(run_with(fast_env), run_with(slow_env) * (1.0 + 1e-9));
}

TEST_P(SeerProperty, CorrectionOnlySlowsThingsDown) {
  // Measured efficiency <= 1, so the corrected forecast can never beat
  // the theoretical one.
  auto g = build_graph(model_of(std::get<0>(GetParam())), cfg(), shape());
  auto theo =
      SeerEngine(CostModel(GpuSpec::h100(), CommEnv{},
                           std::make_shared<TheoreticalEfficiency>()))
          .run(g)
          .makespan;
  auto corrected =
      SeerEngine(CostModel(GpuSpec::h100(), CommEnv{},
                           std::make_shared<TestbedEfficiency>()))
          .run(g)
          .makespan;
  EXPECT_GE(corrected, theo * (1.0 - 1e-9));
}

TEST_P(SeerProperty, ExposedCommNeverExceedsCommBusy) {
  auto g = build_graph(model_of(std::get<0>(GetParam())), cfg(), shape());
  SeerEngine engine(
      CostModel(GpuSpec::h100(), CommEnv{}, std::make_shared<TestbedEfficiency>()));
  auto tl = engine.run(g);
  EXPECT_LE(tl.exposed_comm, tl.comm_busy + 1e-12);
  EXPECT_LE(tl.exec_busy, tl.makespan + 1e-12);
}

std::string param_name(const ::testing::TestParamInfo<Params>& info) {
  auto [w, tp, dp, pp, phase] = info.param;
  const char* model = w == Which::Tiny ? "tiny" : w == Which::Llama70B ? "llama" : "moe";
  const char* ph = phase == Phase::Train     ? "train"
                   : phase == Phase::Prefill ? "prefill"
                                             : "decode";
  return std::string(model) + "_tp" + std::to_string(tp) + "dp" + std::to_string(dp) +
         "pp" + std::to_string(pp) + "_" + ph;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SeerProperty,
    ::testing::Combine(::testing::Values(Which::Tiny, Which::Llama70B, Which::Moe),
                       ::testing::Values(1, 8),   // tp
                       ::testing::Values(1, 4),   // dp
                       ::testing::Values(1, 4),   // pp
                       ::testing::Values(Phase::Train, Phase::Prefill, Phase::Decode)),
    param_name);

}  // namespace
}  // namespace astral::seer
