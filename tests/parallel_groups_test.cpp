#include "parallel/groups.h"

#include <gtest/gtest.h>

#include <set>

namespace astral::parallel {
namespace {

topo::Fabric small_fabric() {
  topo::FabricParams p;
  p.rails = 4;
  p.hosts_per_block = 4;
  p.blocks_per_pod = 2;
  p.pods = 2;
  return topo::Fabric(p);
}

TEST(Placement, PackedIsContiguous) {
  auto f = small_fabric();
  auto p = Placement::packed(f, 16);
  ASSERT_EQ(p.size(), 16);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(p.gpus[static_cast<std::size_t>(i)], i);
}

TEST(Placement, FragmentedSpreadsAcrossPods) {
  auto f = small_fabric();
  auto p = Placement::fragmented(f, 16, 2);
  ASSERT_EQ(p.size(), 16);
  std::set<int> pods;
  for (int g : p.gpus) pods.insert(f.gpu(g).pod);
  EXPECT_EQ(pods.size(), 2u);
  // No duplicates.
  std::set<int> uniq(p.gpus.begin(), p.gpus.end());
  EXPECT_EQ(uniq.size(), 16u);
}

TEST(Placement, FragmentedKeepsHostsWhole) {
  auto f = small_fabric();
  auto p = Placement::fragmented(f, 16, 2);
  // Each allocated host contributes all of its rails.
  std::map<topo::NodeId, int> per_host;
  for (int g : p.gpus) per_host[f.gpu(g).host]++;
  for (const auto& [host, count] : per_host) EXPECT_EQ(count, f.params().rails);
}

TEST(ParallelGroups, SizesMatchConfig) {
  auto f = small_fabric();
  ParallelismConfig cfg{.tp = 4, .dp = 4, .pp = 2, .ep = 2};
  ASSERT_TRUE(cfg.valid());
  auto placement = Placement::packed(f, cfg.world());
  auto g = build_groups(placement, cfg);
  EXPECT_EQ(g.tp.size(), static_cast<std::size_t>(cfg.dp * cfg.pp));
  EXPECT_EQ(g.dp.size(), static_cast<std::size_t>(cfg.tp * cfg.pp));
  EXPECT_EQ(g.pp.size(), static_cast<std::size_t>(cfg.tp * cfg.dp));
  EXPECT_EQ(g.ep.size(), static_cast<std::size_t>(cfg.tp * cfg.pp * (cfg.dp / cfg.ep)));
  for (const auto& grp : g.tp) EXPECT_EQ(grp.size(), cfg.tp);
  for (const auto& grp : g.dp) EXPECT_EQ(grp.size(), cfg.dp);
  for (const auto& grp : g.pp) EXPECT_EQ(grp.size(), cfg.pp);
  for (const auto& grp : g.ep) EXPECT_EQ(grp.size(), cfg.ep);
}

TEST(ParallelGroups, TpGroupsAreConsecutiveRanks) {
  auto f = small_fabric();
  ParallelismConfig cfg{.tp = 4, .dp = 2, .pp = 2, .ep = 1};
  auto placement = Placement::packed(f, cfg.world());
  auto g = build_groups(placement, cfg);
  // With tp == rails and packed placement, every TP group sits inside
  // one host (the deployment the paper assumes).
  for (const auto& grp : g.tp) {
    auto host = f.gpu(grp.gpus[0]).host;
    for (int gpu : grp.gpus) EXPECT_EQ(f.gpu(gpu).host, host);
  }
}

TEST(ParallelGroups, DpGroupsAlignOnRails) {
  auto f = small_fabric();
  ParallelismConfig cfg{.tp = 4, .dp = 4, .pp = 1, .ep = 1};
  auto placement = Placement::packed(f, cfg.world());
  auto g = build_groups(placement, cfg);
  // DP peers with packed placement and tp == rails share the same rail:
  // this is why most DP traffic is same-rail (§5 experience).
  for (const auto& grp : g.dp) {
    int rail = f.gpu(grp.gpus[0]).rail;
    for (int gpu : grp.gpus) EXPECT_EQ(f.gpu(gpu).rail, rail);
  }
}

TEST(ParallelGroups, EveryGpuInExactlyOneGroupPerDim) {
  auto f = small_fabric();
  ParallelismConfig cfg{.tp = 2, .dp = 4, .pp = 2, .ep = 2};
  auto placement = Placement::packed(f, cfg.world());
  auto g = build_groups(placement, cfg);
  auto check_partition = [&](const std::vector<coll::CommGroup>& groups) {
    std::set<int> seen;
    for (const auto& grp : groups) {
      for (int gpu : grp.gpus) EXPECT_TRUE(seen.insert(gpu).second);
    }
    EXPECT_EQ(seen.size(), static_cast<std::size_t>(cfg.world()));
  };
  check_partition(g.tp);
  check_partition(g.dp);
  check_partition(g.pp);
  check_partition(g.ep);
}

TEST(ParallelismConfig, Validation) {
  EXPECT_TRUE((ParallelismConfig{.tp = 1, .dp = 1, .pp = 1, .ep = 1}).valid());
  EXPECT_FALSE((ParallelismConfig{.tp = 1, .dp = 3, .pp = 1, .ep = 2}).valid());
  EXPECT_EQ((ParallelismConfig{.tp = 8, .dp = 16, .pp = 4, .ep = 8}).world(), 512);
}

}  // namespace
}  // namespace astral::parallel
