#include <gtest/gtest.h>

#include "cooling/airflow.h"
#include "cooling/integrated.h"

namespace astral::cooling {
namespace {

TEST(Airflow, VelocityInverselyProportionalToArea) {
  // The fluid-dynamics principle the paper invokes: at constant flow,
  // v = V / A, so the bottom plenum's larger area means lower velocity.
  RackRowConfig cfg;
  double v_side = duct_velocity(cfg, AirflowScheme::SideIntake);
  double v_bottom = duct_velocity(cfg, AirflowScheme::BottomUp);
  EXPECT_NEAR(v_side / v_bottom, cfg.bottom_plenum_area_m2 / cfg.side_duct_area_m2, 1e-9);
  EXPECT_GT(v_side, v_bottom);
}

TEST(Airflow, DistributionsSumToOne) {
  RackRowConfig cfg;
  for (auto scheme : {AirflowScheme::SideIntake, AirflowScheme::BottomUp}) {
    auto d = airflow_distribution(cfg, scheme);
    double sum = 0;
    for (double s : d) sum += s;
    EXPECT_NEAR(sum, 1.0, 1e-12);
    for (double s : d) EXPECT_GT(s, 0.0);
  }
}

TEST(Airflow, SideIntakeStarvesRacksNearOutlet) {
  RackRowConfig cfg;
  auto d = airflow_distribution(cfg, AirflowScheme::SideIntake);
  // Center racks (near the outlet, high local velocity) get less air
  // than the end racks.
  EXPECT_LT(d[d.size() / 2], d.front());
  EXPECT_LT(d[d.size() / 2], d.back());
}

TEST(Airflow, Fig5TemperatureSpreads) {
  // Fig. 5: ~1 degC spread with side intake, ~0.11 degC bottom-up.
  RackRowConfig cfg;
  double side = temperature_spread(cfg, AirflowScheme::SideIntake);
  double bottom = temperature_spread(cfg, AirflowScheme::BottomUp);
  EXPECT_NEAR(side, 1.0, 0.5);
  EXPECT_NEAR(bottom, 0.11, 0.09);
  EXPECT_GT(side / bottom, 4.0);
}

TEST(Airflow, BottomUpLowersOverallTemperature) {
  RackRowConfig cfg;
  auto t_side = rack_temperatures(cfg, AirflowScheme::SideIntake);
  auto t_bottom = rack_temperatures(cfg, AirflowScheme::BottomUp);
  double max_side = *std::max_element(t_side.begin(), t_side.end());
  double max_bottom = *std::max_element(t_bottom.begin(), t_bottom.end());
  EXPECT_LT(max_bottom, max_side);
}

TEST(Airflow, MoreHeatMeansHigherRise) {
  RackRowConfig cfg;
  auto base = rack_temperatures(cfg, AirflowScheme::BottomUp);
  cfg.heat_watts_per_rack *= 2;
  auto hot = rack_temperatures(cfg, AirflowScheme::BottomUp);
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_NEAR(hot[i] - cfg.ambient_c, 2.0 * (base[i] - cfg.ambient_c), 1e-9);
  }
}

TEST(Integrated, LiquidCoolingCutsPlantPower) {
  auto air = CoolingConfig::traditional_air(1e8);
  auto integrated = CoolingConfig::astral_integrated(1e8);
  IntegratedCooling plant_air(air);
  IntegratedCooling plant_int(integrated);
  double heat = 5e7;
  EXPECT_LT(plant_int.cooling_power(heat), plant_air.cooling_power(heat) * 0.7);
}

TEST(Integrated, SharedPrimarySourceCoversFullLoad) {
  auto cfg = CoolingConfig::astral_integrated(1e8);
  IntegratedCooling plant(cfg);
  EXPECT_TRUE(plant.can_handle(1e8));
  EXPECT_FALSE(plant.can_handle(1.2e8));
}

TEST(Integrated, AdaptsRatioToWorkload) {
  auto plant = IntegratedCooling(CoolingConfig::astral_integrated(1e8));
  plant.adapt_to(WorkloadKind::CpuIntensive);
  EXPECT_DOUBLE_EQ(plant.config().liquid_fraction,
                   recommended_liquid_fraction(WorkloadKind::CpuIntensive));
  double cpu_power = plant.cooling_power(5e7);
  plant.adapt_to(WorkloadKind::GpuIntensive);
  double gpu_power = plant.cooling_power(5e7);
  // GPU-heavy load puts more heat on efficient cold plates.
  EXPECT_LT(gpu_power, cpu_power);
}

TEST(Integrated, RecommendedFractionsOrdered) {
  EXPECT_GT(recommended_liquid_fraction(WorkloadKind::GpuIntensive),
            recommended_liquid_fraction(WorkloadKind::Mixed));
  EXPECT_GT(recommended_liquid_fraction(WorkloadKind::Mixed),
            recommended_liquid_fraction(WorkloadKind::CpuIntensive));
}

}  // namespace
}  // namespace astral::cooling
