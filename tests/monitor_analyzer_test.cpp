#include "monitor/analyzer.h"

#include "monitor/cluster_runtime.h"

#include "monitor/offline_tools.h"

#include <gtest/gtest.h>

namespace astral::monitor {
namespace {

topo::Fabric test_fabric() {
  topo::FabricParams p;
  p.rails = 2;
  p.hosts_per_block = 8;
  p.blocks_per_pod = 2;
  p.pods = 1;
  return topo::Fabric(p);
}

JobConfig small_job() {
  JobConfig j;
  j.hosts = 8;
  j.iterations = 5;
  j.comm_bytes = 8ull * 1024 * 1024;
  return j;
}

Diagnosis run_and_diagnose(topo::Fabric& f, const JobConfig& job, RootCause cause,
                           Manifestation m, std::uint64_t seed) {
  ClusterRuntime rt(f, job, seed);
  rt.inject(rt.make_fault(cause, m, 2));
  rt.run();
  HierarchicalAnalyzer analyzer(rt.telemetry(), f.topo(), rt.expected_compute(),
                                rt.expected_comm());
  return analyzer.diagnose();
}

TEST(Analyzer, HealthyRunIsClean) {
  auto f = test_fabric();
  ClusterRuntime rt(f, small_job(), 1);
  rt.run();
  HierarchicalAnalyzer analyzer(rt.telemetry(), f.topo(), rt.expected_compute(),
                                rt.expected_comm());
  auto d = analyzer.diagnose();
  EXPECT_FALSE(d.anomaly_detected);
  EXPECT_FALSE(d.manifestation.has_value());
}

TEST(Analyzer, GpuHardwareLocalizedViaFatalLog) {
  auto f = test_fabric();
  auto d = run_and_diagnose(f, small_job(), RootCause::GpuHardware,
                            Manifestation::FailStop, 21);
  EXPECT_EQ(d.manifestation, Manifestation::FailStop);
  ASSERT_TRUE(d.root_cause_found);
  EXPECT_EQ(d.root_cause, RootCause::GpuHardware);
  EXPECT_EQ(d.culprit_hosts.size(), 1u);
  // Minutes, not hours.
  EXPECT_LT(d.locate_time, 15 * 60.0);
}

TEST(Analyzer, MemoryFaultLocalized) {
  auto f = test_fabric();
  auto d = run_and_diagnose(f, small_job(), RootCause::Memory, Manifestation::FailStop, 22);
  ASSERT_TRUE(d.root_cause_found);
  EXPECT_EQ(d.root_cause, RootCause::Memory);
}

TEST(Analyzer, UserCodeRaisesManualAlarm) {
  auto f = test_fabric();
  auto d = run_and_diagnose(f, small_job(), RootCause::UserCode,
                            Manifestation::FailStop, 23);
  EXPECT_EQ(d.root_cause, RootCause::UserCode);
  EXPECT_TRUE(d.needs_manual);
}

TEST(Analyzer, NicErrorViaErrCqePathOverlap) {
  auto f = test_fabric();
  auto d = run_and_diagnose(f, small_job(), RootCause::NicError,
                            Manifestation::FailStop, 24);
  EXPECT_EQ(d.manifestation, Manifestation::FailStop);
  ASSERT_TRUE(d.root_cause_found);
  EXPECT_EQ(d.root_cause, RootCause::NicError);
  EXPECT_FALSE(d.culprit_links.empty());
}

TEST(Analyzer, OpticalFiberViaIntLatency) {
  auto f = test_fabric();
  auto d = run_and_diagnose(f, small_job(), RootCause::OpticalFiber,
                            Manifestation::FailSlow, 25);
  EXPECT_EQ(d.manifestation, Manifestation::FailSlow);
  ASSERT_TRUE(d.root_cause_found);
  EXPECT_EQ(d.root_cause, RootCause::OpticalFiber);
  ASSERT_FALSE(d.culprit_links.empty());
}

TEST(Analyzer, SwitchConfigViaIntLatency) {
  auto f = test_fabric();
  auto d = run_and_diagnose(f, small_job(), RootCause::SwitchConfig,
                            Manifestation::FailSlow, 26);
  ASSERT_TRUE(d.root_cause_found);
  EXPECT_EQ(d.root_cause, RootCause::SwitchConfig);
}

TEST(Analyzer, SwitchBugBlackholeViaModDrops) {
  auto f = test_fabric();
  auto d = run_and_diagnose(f, small_job(), RootCause::SwitchBug,
                            Manifestation::FailHang, 27);
  EXPECT_EQ(d.manifestation, Manifestation::FailHang);
  ASSERT_TRUE(d.root_cause_found);
  EXPECT_EQ(d.root_cause, RootCause::SwitchBug);
}

TEST(Analyzer, CclBugHangFlagsCulpritButNeedsManual) {
  auto f = test_fabric();
  auto d = run_and_diagnose(f, small_job(), RootCause::CclBug, Manifestation::FailHang, 28);
  EXPECT_EQ(d.manifestation, Manifestation::FailHang);
  // The silent software hang: culprit host identified by the missing
  // work request, but no device log names a cause (§3.3 limitations).
  EXPECT_FALSE(d.root_cause_found);
  EXPECT_TRUE(d.needs_manual);
  EXPECT_EQ(d.culprit_hosts.size(), 1u);
}

TEST(Analyzer, PcieDegradeFoundOnlyWithPcieMonitoring) {
  // The §5 PCIe incident, before and after the monitoring upgrade.
  auto f = test_fabric();
  auto job = small_job();
  job.comm_bytes = 32ull * 1024 * 1024;

  job.pcie_monitoring = false;
  {
    ClusterRuntime rt(f, job, 29);
    rt.inject(rt.make_fault(RootCause::PcieDegrade, Manifestation::FailSlow, 1));
    rt.run();
    HierarchicalAnalyzer analyzer(rt.telemetry(), f.topo(), rt.expected_compute(),
                                  rt.expected_comm());
    auto d = analyzer.diagnose();
    EXPECT_TRUE(d.anomaly_detected);
    EXPECT_FALSE(d.root_cause_found);  // invisible without the PCIe layer
    EXPECT_TRUE(d.needs_manual);
  }
  job.pcie_monitoring = true;
  {
    ClusterRuntime rt(f, job, 29);
    rt.inject(rt.make_fault(RootCause::PcieDegrade, Manifestation::FailSlow, 1));
    rt.run();
    HierarchicalAnalyzer analyzer(rt.telemetry(), f.topo(), rt.expected_compute(),
                                  rt.expected_comm());
    auto d = analyzer.diagnose();
    ASSERT_TRUE(d.root_cause_found);
    EXPECT_EQ(d.root_cause, RootCause::PcieDegrade);
  }
}

TEST(Analyzer, FailOnStartClassified) {
  auto f = test_fabric();
  ClusterRuntime rt(f, small_job(), 30);
  rt.inject(rt.make_fault(RootCause::HostEnvConfig, Manifestation::FailOnStart, 0));
  rt.run();
  HierarchicalAnalyzer analyzer(rt.telemetry(), f.topo(), rt.expected_compute(),
                                rt.expected_comm());
  auto d = analyzer.diagnose();
  EXPECT_EQ(d.manifestation, Manifestation::FailOnStart);
  ASSERT_TRUE(d.root_cause_found);
  EXPECT_EQ(d.root_cause, RootCause::HostEnvConfig);
}

TEST(Analyzer, GpuFailSlowFoundByCrossHostComparison) {
  // A thermally-throttled GPU: no job abort, just one slow rank — the
  // horizontal comparison (Branch #1) must find it.
  auto f = test_fabric();
  auto d = run_and_diagnose(f, small_job(), RootCause::GpuHardware,
                            Manifestation::FailSlow, 40);
  EXPECT_EQ(d.manifestation, Manifestation::FailSlow);
  ASSERT_EQ(d.culprit_hosts.size(), 1u);
  ASSERT_TRUE(d.root_cause_found);
  EXPECT_EQ(d.root_cause, RootCause::GpuHardware);
}

TEST(Analyzer, LinkFlapDiagnosedFromTransientSlowdown) {
  auto f = test_fabric();
  auto d = run_and_diagnose(f, small_job(), RootCause::LinkFlap,
                            Manifestation::FailSlow, 41);
  EXPECT_TRUE(d.anomaly_detected);
  if (d.root_cause_found) {
    EXPECT_TRUE(d.root_cause == RootCause::LinkFlap ||
                d.root_cause == RootCause::SwitchBug);
  }
}

TEST(Analyzer, WireConnectionCaughtOnlineAndOffline) {
  auto f = test_fabric();
  ClusterRuntime rt(f, small_job(), 42);
  auto fault = rt.make_fault(RootCause::WireConnection, Manifestation::FailSlow, 2);
  rt.inject(fault);
  rt.run();
  HierarchicalAnalyzer analyzer(rt.telemetry(), f.topo(), rt.expected_compute(),
                                rt.expected_comm());
  auto d = analyzer.diagnose();
  ASSERT_TRUE(d.root_cause_found);
  EXPECT_EQ(d.root_cause, RootCause::WireConnection);
  // And the offline wiring-verify would catch an actual mis-cable before
  // delivery: swap the faulted link's far end in the observation table.
  auto wiring = collect_wiring(f);
  swap_wires(wiring, fault.target_link, (fault.target_link + 7) % wiring.size());
  EXPECT_FALSE(verify_wiring(f, wiring).empty());
}

TEST(Analyzer, LocateTimesAreMinutesForAllBranches) {
  auto f = test_fabric();
  for (auto [cause, m] : {std::pair{RootCause::GpuHardware, Manifestation::FailStop},
                          std::pair{RootCause::OpticalFiber, Manifestation::FailSlow},
                          std::pair{RootCause::SwitchBug, Manifestation::FailHang}}) {
    auto d = run_and_diagnose(f, small_job(), cause, m, 43);
    ASSERT_TRUE(d.root_cause_found) << to_string(cause);
    EXPECT_GT(d.locate_time, 60.0);
    EXPECT_LT(d.locate_time, 20 * 60.0) << to_string(cause);
  }
}

TEST(Analyzer, EvidenceChainIsLayered) {
  auto f = test_fabric();
  auto d = run_and_diagnose(f, small_job(), RootCause::OpticalFiber,
                            Manifestation::FailSlow, 31);
  // The chain walks app -> transport -> network -> physical in order.
  ASSERT_GE(d.evidence.size(), 3u);
  EXPECT_NE(d.evidence.front().find("app:"), std::string::npos);
  EXPECT_NE(d.evidence.back().find("physical:"), std::string::npos);
}

TEST(MonitorLayer, ToStringCoversEveryLayer) {
  EXPECT_STREQ(to_string(Layer::Application), "application");
  EXPECT_STREQ(to_string(Layer::Transport), "transport");
  EXPECT_STREQ(to_string(Layer::Network), "network");
  EXPECT_STREQ(to_string(Layer::Physical), "physical");
}

// Rank of an evidence line in the §3.2 descent order. -1: unknown prefix.
int evidence_rank(const std::string& line) {
  if (line.rfind("app:", 0) == 0) return 0;
  if (line.rfind("cross-host:", 0) == 0) return 1;
  if (line.rfind("transport:", 0) == 0) return 2;
  if (line.rfind("network:", 0) == 0) return 3;
  if (line.rfind("physical:", 0) == 0) return 4;
  return -1;
}

void expect_layer_ordered_evidence(const Diagnosis& d, const char* scenario) {
  ASSERT_FALSE(d.evidence.empty()) << scenario;
  int prev = -1;
  for (const auto& line : d.evidence) {
    int rank = evidence_rank(line);
    ASSERT_GE(rank, 0) << scenario << ": unknown layer prefix in '" << line << "'";
    EXPECT_GE(rank, prev) << scenario << ": chain descends out of order at '" << line
                          << "'";
    prev = rank;
  }
}

TEST(Analyzer, Branch1EvidenceChainIsLayerOrdered) {
  // Branch #1 (computation anomaly): outlier host -> device log.
  auto f = test_fabric();
  auto d = run_and_diagnose(f, small_job(), RootCause::GpuHardware,
                            Manifestation::FailStop, 21);
  ASSERT_TRUE(d.root_cause_found);
  expect_layer_ordered_evidence(d, "Branch #1 GpuHardware/FailStop");
  auto slow = run_and_diagnose(f, small_job(), RootCause::GpuHardware,
                               Manifestation::FailSlow, 33);
  expect_layer_ordered_evidence(slow, "Branch #1 GpuHardware/FailSlow");
}

TEST(Analyzer, Branch2EvidenceChainIsLayerOrdered) {
  // Branch #2 (communication anomaly): errCQEs -> path overlap -> device.
  auto f = test_fabric();
  auto d = run_and_diagnose(f, small_job(), RootCause::NicError,
                            Manifestation::FailStop, 21);
  ASSERT_TRUE(d.root_cause_found);
  expect_layer_ordered_evidence(d, "Branch #2 NicError/FailStop");
  auto fiber = run_and_diagnose(f, small_job(), RootCause::OpticalFiber,
                                Manifestation::FailSlow, 31);
  expect_layer_ordered_evidence(fiber, "Branch #2 OpticalFiber/FailSlow");
}

}  // namespace
}  // namespace astral::monitor
