// Re-forecast unit tests: the calibrated-ratio what-if engine must (a)
// satisfy the self-replay identity — unchanged knobs reproduce the
// measured timeline and the reconstructed OpGraph replays to the same
// makespan — and (b) move in the physically expected direction under
// each knob. Extraction failure modes (missing tracks, iterations
// without phases) must fail loudly with diagnostics.
#include <gtest/gtest.h>

#include <string>

#include "replay/recorder.h"
#include "replay/reforecast.h"
#include "replay/trace_reader.h"

namespace astral::replay {
namespace {

RecordedCampaign recorded_campaign() {
  ScriptedCampaignConfig cfg;
  // 16 hosts > the 8-GPU NVLink domain, so collectives cross the NIC
  // tier and the nic_bw knob has something to bite on.
  cfg.hosts = 16;
  cfg.iterations = 4;
  cfg.inject_faults = false;
  auto art = record_scripted_campaign(cfg);
  std::string err;
  auto parsed = parse_chrome_trace(art.trace, &err);
  EXPECT_TRUE(parsed.has_value()) << err;
  auto campaign = extract_campaign(*parsed, &err);
  EXPECT_TRUE(campaign.has_value()) << err;
  return *campaign;
}

TEST(ReplayReforecast, SelfReplayIdentityHolds) {
  RecordedCampaign campaign = recorded_campaign();
  DeviationReport report = reforecast(campaign, WhatIfKnobs{});
  EXPECT_TRUE(report.knobs.is_identity());
  // The ratio calibration makes identity exact up to float rounding;
  // 0.1% is orders of magnitude above the observed 1e-16.
  EXPECT_LT(report.max_iteration_deviation, 1e-3);
  EXPECT_LT(report.overall_deviation, 1e-3);
  EXPECT_NEAR(report.forecast_total, report.measured_total,
              1e-3 * report.measured_total);
  // OpGraph half of the identity: the engine replay of the reconstructed
  // graph (serial chain with fixed measured durations) matches the sum.
  EXPECT_NEAR(report.replay_makespan, campaign.measured_total(),
              1e-9 + 1e-6 * campaign.measured_total());
}

TEST(ReplayReforecast, ComputeScaleHalvesComputeOps) {
  RecordedCampaign campaign = recorded_campaign();
  WhatIfKnobs knobs;
  knobs.label = "compute-2x";
  knobs.compute_scale = 2.0;
  DeviationReport report = reforecast(campaign, knobs);
  for (const OpDeviation& op : report.per_op) {
    if (op.type == seer::OpType::Compute) {
      EXPECT_NEAR(op.forecast, op.measured / 2.0, 1e-12)
          << "iteration " << op.iteration;
    } else {
      // Comm ops are untouched by the compute knob.
      EXPECT_DOUBLE_EQ(op.forecast, op.measured) << op.name;
    }
  }
  EXPECT_LT(report.forecast_total, report.measured_total);
}

TEST(ReplayReforecast, SlowerNicInflatesCommOnly) {
  RecordedCampaign campaign = recorded_campaign();
  WhatIfKnobs knobs;
  knobs.label = "nic-0.5x";
  knobs.nic_bw_scale = 0.5;
  DeviationReport report = reforecast(campaign, knobs);
  bool saw_comm = false;
  for (const OpDeviation& op : report.per_op) {
    if (op.type == seer::OpType::Comm) {
      saw_comm = true;
      EXPECT_GT(op.forecast, op.measured) << op.name;
    } else {
      EXPECT_DOUBLE_EQ(op.forecast, op.measured) << op.name;
    }
  }
  EXPECT_TRUE(saw_comm);
  EXPECT_GT(report.forecast_total, report.measured_total);
}

TEST(ReplayReforecast, ReduceScatterOverrideIsCheaperThanAllReduce) {
  RecordedCampaign campaign = recorded_campaign();
  WhatIfKnobs knobs;
  knobs.label = "reduce-scatter";
  knobs.collective = seer::CommKind::ReduceScatter;
  DeviationReport report = reforecast(campaign, knobs);
  for (const OpDeviation& op : report.per_op) {
    if (op.type == seer::OpType::Comm) {
      // A reduce-scatter moves strictly less data than the full
      // allreduce the recording performed.
      EXPECT_LT(op.forecast, op.measured) << op.name;
    } else {
      EXPECT_DOUBLE_EQ(op.forecast, op.measured) << op.name;
    }
  }
}

TEST(ReplayReforecast, OpGraphReconstructionValidatesAndChains) {
  RecordedCampaign campaign = recorded_campaign();
  ReforecastConfig cfg;
  seer::OpGraph g = to_op_graph(campaign, cfg, /*keep_measured_times=*/false);
  std::string err;
  EXPECT_TRUE(g.validate(&err)) << err;
  // One compute + one collective per iteration, chained serially.
  ASSERT_EQ(g.ops.size(), 2 * campaign.iterations.size());
  for (std::size_t i = 0; i < g.ops.size(); ++i) {
    const seer::Operator& op = g.ops[i];
    EXPECT_EQ(op.type,
              i % 2 == 0 ? seer::OpType::Compute : seer::OpType::Comm);
    if (i == 0) {
      EXPECT_TRUE(op.deps.empty());
    } else {
      ASSERT_EQ(op.deps.size(), 1u);
      EXPECT_EQ(op.deps[0], static_cast<int>(i) - 1);
    }
    if (op.type == seer::OpType::Comm) {
      EXPECT_EQ(op.comm_group, campaign.ranks);
      EXPECT_GT(op.comm_bytes, 0.0);
    }
  }
}

TEST(ReplayReforecast, ReportJsonIsDeterministic) {
  RecordedCampaign campaign = recorded_campaign();
  WhatIfKnobs knobs;
  knobs.label = "tier2-bw-2x";
  knobs.nic_bw_scale = 2.0;
  const std::string a = reforecast(campaign, knobs).to_json().dump();
  const std::string b = reforecast(campaign, knobs).to_json().dump();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("tier2-bw-2x"), std::string::npos);
  EXPECT_NE(a.find("per_iteration"), std::string::npos);
  EXPECT_NE(a.find("per_op"), std::string::npos);
}

TEST(ReplayReforecast, ExtractionFailsWithoutWorkloadTrack) {
  obs::Tracer tracer;
  tracer.span(obs::Track::Collective, "ring_step", 0.0, 0.1, {.job = 1},
              1e6);
  std::string err;
  auto parsed = parse_chrome_trace(tracer.to_chrome_trace(), &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  auto campaign = extract_campaign(*parsed, &err);
  EXPECT_FALSE(campaign.has_value());
  EXPECT_NE(err.find("workload"), std::string::npos) << err;
}

TEST(ReplayReforecast, ExtractionFailsOnIterationWithoutPhases) {
  // An "iteration" span with no nested compute span: the recording is
  // structurally incomplete and must not silently become a campaign.
  obs::Tracer tracer;
  obs::AmbientScope job(&tracer, {.job = 3});
  tracer.span(obs::Track::Workload, "iteration", 0.0, 0.1, {}, 0.0);
  std::string err;
  auto parsed = parse_chrome_trace(tracer.to_chrome_trace(), &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  auto campaign = extract_campaign(*parsed, &err);
  EXPECT_FALSE(campaign.has_value());
  EXPECT_FALSE(err.empty());
}

}  // namespace
}  // namespace astral::replay
