#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

namespace astral::obs {
namespace {

TEST(Metrics, CountersAccumulateAndDefaultToZero) {
  Metrics m;
  EXPECT_EQ(m.counter("missing"), 0u);
  m.add("flows");
  m.add("flows", 4);
  EXPECT_EQ(m.counter("flows"), 5u);
  EXPECT_FALSE(m.empty());
}

TEST(Metrics, GaugesKeepLatestValue) {
  Metrics m;
  EXPECT_DOUBLE_EQ(m.gauge("util"), 0.0);
  m.set_gauge("util", 0.25);
  m.set_gauge("util", 0.75);
  EXPECT_DOUBLE_EQ(m.gauge("util"), 0.75);
}

TEST(Metrics, HistogramReferenceIsStable) {
  Metrics m;
  Histogram& h = m.histogram("lat");
  m.histogram("a");  // Insert before "lat" in sort order.
  m.histogram("z");
  h.record(1.0);
  EXPECT_EQ(m.find_histogram("lat")->count(), 1u);
  EXPECT_EQ(m.find_histogram("nope"), nullptr);
}

TEST(Histogram, EmptyIsAllZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
}

TEST(Histogram, ExactStatsAreExact) {
  Histogram h;
  for (double v : {3.0, 1.0, 2.0}) h.record(v);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 3.0);
  EXPECT_DOUBLE_EQ(h.sum(), 6.0);
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);
}

TEST(Histogram, PercentilesWithinRelativeErrorBound) {
  // 1..1000: p50 ≈ 500, p90 ≈ 900, p99 ≈ 990. The log-bucket layout
  // guarantees ≤ ~1/kSubBuckets relative error on the representative.
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
  for (auto [p, exact] : std::vector<std::pair<double, double>>{
           {50, 500.0}, {90, 900.0}, {99, 990.0}}) {
    double got = h.percentile(p);
    EXPECT_NEAR(got, exact, exact * 0.04) << "p" << p;
  }
  // p0/p100 clamp to the exact observed extremes.
  EXPECT_DOUBLE_EQ(h.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 1000.0);
}

TEST(Histogram, WideDynamicRange) {
  Histogram h;
  for (double v : {1e-6, 1e-3, 1.0, 1e3, 1e6}) h.record(v);
  EXPECT_NEAR(h.percentile(50), 1.0, 0.04);
  EXPECT_DOUBLE_EQ(h.max(), 1e6);
  EXPECT_DOUBLE_EQ(h.min(), 1e-6);
}

TEST(Histogram, NonPositiveValuesUnderflowButCount) {
  Histogram h;
  h.record(0.0);
  h.record(-5.0);
  h.record(2.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.min(), -5.0);
  // The p-th sample for small p sits in the underflow bucket, whose
  // representative clamps to the observed min.
  EXPECT_DOUBLE_EQ(h.percentile(1), -5.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 2.0);
}

TEST(Histogram, ZeroLandsInUnderflowBucketAndIsExactMin) {
  Histogram h;
  h.record(0.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  // Any percentile of the lone underflow sample reports the exact min.
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(99), 0.0);
}

TEST(Histogram, TinyPositiveBelowRangeUnderflows) {
  // 1e-12 < 2^kMinExponent ≈ 2.3e-10: below the bucketed range, but the
  // exact min/max tracking still reports it faithfully.
  Histogram h;
  h.record(1e-12);
  EXPECT_DOUBLE_EQ(h.min(), 1e-12);
  EXPECT_DOUBLE_EQ(h.percentile(50), 1e-12);
}

TEST(Histogram, OverflowBeyondTopOctaveClampsToExactExtremes) {
  // 1e300 >> 2^kMaxExponent: the sample lands in the top bucket, whose
  // midpoint (~1e19) is far below the sample — percentiles must clamp to
  // the exact observed range instead of reporting the bucket midpoint.
  Histogram h;
  h.record(1e300);
  EXPECT_DOUBLE_EQ(h.max(), 1e300);
  EXPECT_DOUBLE_EQ(h.percentile(50), 1e300);
  EXPECT_DOUBLE_EQ(h.percentile(100), 1e300);

  h.record(1.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  // p100 is the exact max even though both samples' buckets are ~300
  // orders of magnitude apart.
  EXPECT_DOUBLE_EQ(h.percentile(100), 1e300);
  EXPECT_DOUBLE_EQ(h.percentile(0), 1.0);
}

TEST(Histogram, NonFiniteValuesAreCountedWithoutPoisoningBuckets) {
  Histogram h;
  h.record(std::numeric_limits<double>::infinity());
  h.record(2.0);
  EXPECT_EQ(h.count(), 2u);
  // The non-finite sample went to the underflow bucket; finite queries
  // still work and the exact max reflects what was recorded.
  EXPECT_DOUBLE_EQ(h.max(), std::numeric_limits<double>::infinity());
  EXPECT_DOUBLE_EQ(h.percentile(0), 2.0);
}

TEST(Histogram, PercentileBoundaryRanksSelectFirstAndLastSamples) {
  Histogram h;
  for (int i = 0; i < 10; ++i) h.record(100.0);
  h.record(1.0);      // rank 1 of 11
  h.record(10000.0);  // rank 11 of 11
  // Small interior percentile hits the first-ranked (min) sample's
  // bucket, within the relative-error bound.
  EXPECT_NEAR(h.percentile(1), 1.0, 1.0 * 0.04);
  EXPECT_NEAR(h.percentile(50), 100.0, 100.0 * 0.04);
  EXPECT_DOUBLE_EQ(h.percentile(100), 10000.0);
}

TEST(Metrics, SnapshotIsDeterministicAndSorted) {
  auto build = [] {
    Metrics m;
    m.add("b.counter", 2);
    m.add("a.counter", 7);
    m.set_gauge("g", 0.1);
    auto& h = m.histogram("h");
    for (int i = 0; i < 100; ++i) h.record(0.1 * i + 0.05);
    return m.to_json().dump();
  };
  std::string first = build();
  EXPECT_EQ(first, build());  // Byte-identical across constructions.

  std::string err;
  auto parsed = core::Json::parse(first, &err);
  ASSERT_TRUE(parsed) << err;
  EXPECT_EQ((*parsed)["counters"]["a.counter"].as_int(), 7);
  EXPECT_EQ((*parsed)["histograms"]["h"]["count"].as_int(), 100);
  // Counters serialize in sorted name order.
  EXPECT_LT(first.find("a.counter"), first.find("b.counter"));
}

TEST(Metrics, TableListsEveryMetric) {
  Metrics m;
  m.add("flows.completed", 3);
  m.set_gauge("util", 0.5);
  m.histogram("solve_us").record(12.0);
  std::string table = m.to_table();
  EXPECT_NE(table.find("flows.completed"), std::string::npos);
  EXPECT_NE(table.find("util"), std::string::npos);
  EXPECT_NE(table.find("solve_us"), std::string::npos);
}

}  // namespace
}  // namespace astral::obs
