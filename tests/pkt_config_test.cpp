// Packet-simulator configuration behavior: what PFC buys (losslessness),
// what ECN parameters change, and host backpressure semantics.
#include <gtest/gtest.h>

#include "pkt/packet_sim.h"

namespace astral::pkt {
namespace {

using namespace core;  // literal operators

topo::Fabric small_fabric() {
  topo::FabricParams p;
  p.rails = 4;
  p.hosts_per_block = 4;
  p.blocks_per_pod = 2;
  p.pods = 1;
  return topo::Fabric(p);
}

net::FlowSpec incast_spec(const topo::Fabric& f, int src_host, core::Bytes size,
                          std::uint64_t tag) {
  net::FlowSpec s;
  s.src_host = f.topo().hosts()[static_cast<std::size_t>(src_host)];
  s.dst_host = f.topo().hosts()[0];
  s.src_rail = 0;
  s.dst_rail = 0;
  s.size = size;
  s.tag = tag;
  return s;
}

TEST(PacketSimConfig, DisablingPfcCausesDropsUnderIncast) {
  auto f = small_fabric();
  PacketSimConfig cfg;
  // PFC thresholds above the queue capacity: pauses can never assert, so
  // the incast must overflow some queue (what losslessness prevents).
  cfg.pfc_xoff = cfg.queue_capacity * 4;
  cfg.pfc_xon = cfg.queue_capacity * 2;
  PacketSim sim(f, cfg);
  for (int h = 1; h <= 6; ++h) {
    sim.inject(incast_spec(f, h, 4_MiB, static_cast<std::uint64_t>(h)));
  }
  sim.run(0.5);
  EXPECT_GT(sim.stats().packets_dropped, 0u);
  EXPECT_EQ(sim.stats().pfc_pause_events, 0u);
}

TEST(PacketSimConfig, LowerEcnKminMarksMore) {
  auto run_with_kmin = [&](core::Bytes kmin) {
    auto f = small_fabric();
    PacketSimConfig cfg;
    cfg.ecn_kmin = kmin;
    cfg.ecn_kmax = kmin * 4;
    PacketSim sim(f, cfg);
    for (int h = 1; h <= 6; ++h) {
      sim.inject(incast_spec(f, h, 2_MiB, static_cast<std::uint64_t>(h)));
    }
    sim.run();
    return sim.stats().ecn_marks;
  };
  EXPECT_GT(run_with_kmin(8 * 1024), run_with_kmin(128 * 1024));
}

TEST(PacketSimConfig, SmallerMtuMeansMorePackets) {
  auto run_with_mtu = [&](core::Bytes mtu) {
    auto f = small_fabric();
    PacketSimConfig cfg;
    cfg.mtu = mtu;
    PacketSim sim(f, cfg);
    sim.inject(incast_spec(f, 1, 1_MiB, 1));
    sim.run();
    return sim.stats().packets_sent;
  };
  EXPECT_NEAR(static_cast<double>(run_with_mtu(1024)),
              4.0 * static_cast<double>(run_with_mtu(4096)), 4.0);
}

TEST(PacketSimConfig, HostBackpressureNeverDropsAtTheNic) {
  // Many flows from ONE host (its own NIC queue is the constraint):
  // pacing retries instead of dropping.
  auto f = small_fabric();
  PacketSim sim(f);
  for (int i = 0; i < 8; ++i) {
    auto s = incast_spec(f, 1, 1_MiB, static_cast<std::uint64_t>(i));
    s.src_port = 7000;  // all on one NIC port
    sim.inject(s);
  }
  sim.run();
  EXPECT_EQ(sim.stats().packets_dropped, 0u);
  for (std::size_t i = 0; i < sim.flow_count(); ++i) {
    EXPECT_GE(sim.flow(static_cast<net::FlowId>(i)).finish, 0.0);
  }
}

TEST(PacketSimConfig, PfcResumeEventuallyFires) {
  auto f = small_fabric();
  PacketSim sim(f);
  for (int h = 1; h <= 6; ++h) {
    sim.inject(incast_spec(f, h, 2_MiB, static_cast<std::uint64_t>(h)));
  }
  sim.run();
  EXPECT_GT(sim.stats().pfc_pause_events, 0u);
  EXPECT_EQ(sim.stats().pfc_pause_events, sim.stats().pfc_resume_events);
}

}  // namespace
}  // namespace astral::pkt
