// Golden lock on the topology-shootout ranking table: the deterministic
// default-config shootout must reproduce the checked-in fixture byte for
// byte. Any change to the zoo builders, the ECMP controller, the fluid
// solver, the cost model, or table formatting trips this before it can
// silently reorder the published comparison.
//
// Intentional changes regenerate the fixture with one command:
//
//   GOLDEN_REGEN=1 ./build/tests/topo_shootout_golden_test
//
// then commit the updated file under tests/fixtures/ (see EXPERIMENTS.md,
// "Topology shootout").
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "zoo/shootout.h"

namespace astral::zoo {
namespace {

// Injected by tests/CMakeLists.txt; points at the source-tree fixtures.
#ifndef GOLDEN_FIXTURE_DIR
#error "GOLDEN_FIXTURE_DIR must be defined"
#endif

const char* kTablePath = GOLDEN_FIXTURE_DIR "/topology_shootout.table.txt";

std::string read_file(const char* path) {
  std::ifstream in(path);
  if (!in) return {};
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool regen_requested() {
  const char* env = std::getenv("GOLDEN_REGEN");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

TEST(ShootoutGolden, RankedTableMatchesCheckedInFixture) {
  auto report = run_shootout();
  ASSERT_TRUE(report.ok()) << report.gate_failures.front();

  if (regen_requested()) {
    std::ofstream(kTablePath) << report.table;
    GTEST_LOG_(INFO) << "regenerated " << kTablePath;
  }

  const std::string golden = read_file(kTablePath);
  ASSERT_FALSE(golden.empty())
      << "missing fixture " << kTablePath
      << " — regenerate with GOLDEN_REGEN=1 ./topo_shootout_golden_test";
  EXPECT_EQ(report.table, golden)
      << "the shootout no longer reproduces the golden ranking table; if "
         "the change is intentional, run GOLDEN_REGEN=1 "
         "./topo_shootout_golden_test and commit the updated fixture";
}

TEST(ShootoutGolden, ReportIsInternallyConsistent) {
  auto report = run_shootout();
  ASSERT_EQ(report.rows.size(), std::size(topo::kAllFabricStyles));
  for (std::size_t i = 0; i < report.rows.size(); ++i) {
    const auto& r = report.rows[i];
    EXPECT_EQ(r.rank, static_cast<int>(i) + 1);
    if (i > 0) EXPECT_LE(r.score, report.rows[i - 1].score);
    EXPECT_LE(r.storm_load_after, r.storm_bound) << topo::to_string(r.style);
    EXPECT_GT(r.fabric_cost, 0.0);
  }
}

}  // namespace
}  // namespace astral::zoo
