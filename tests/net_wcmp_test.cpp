// WCMP flap damping: fast-down/slow-up hysteresis, suppression latch,
// penalty decay, the oscillation metric, k-widened candidate paths, and
// the weighted rebalance (no-op when healthy, steers off suppressed
// links).
#include <gtest/gtest.h>

#include <algorithm>

#include "core/units.h"
#include "net/wcmp.h"
#include "topo/fabric.h"

namespace astral::net {
namespace {

using namespace core;  // literal operators (_MiB)

topo::Fabric small_fabric() {
  topo::FabricParams p;
  p.style = topo::FabricStyle::AstralSameRail;
  p.rails = 2;
  p.hosts_per_block = 4;
  p.blocks_per_pod = 2;
  p.pods = 1;
  return topo::Fabric(p);
}

FlowSpec make_spec(const topo::Fabric& f, int src_gpu, int dst_gpu) {
  auto a = f.gpu(src_gpu);
  auto b = f.gpu(dst_gpu);
  FlowSpec s;
  s.src_host = a.host;
  s.dst_host = b.host;
  s.src_rail = a.rail;
  s.dst_rail = b.rail;
  s.size = 16_MiB;
  return s;
}

constexpr topo::LinkId kLink = 7;

TEST(Wcmp, UndampedDeratesAndRestoresImmediately) {
  auto f = small_fabric();
  FluidSim sim(f);
  WcmpConfig cfg;
  cfg.damping = false;
  WcmpController wcmp(sim, cfg);

  wcmp.tick();
  EXPECT_TRUE(wcmp.observe(kLink, 0.5));
  EXPECT_EQ(wcmp.health(kLink).state, WcmpState::Derated);
  EXPECT_DOUBLE_EQ(wcmp.weight(kLink), 0.5);
  EXPECT_TRUE(wcmp.usable(kLink));

  // Undamped: the first healthy observation restores, penalty or not.
  wcmp.tick();
  EXPECT_TRUE(wcmp.observe(kLink, 1.0));
  EXPECT_EQ(wcmp.health(kLink).state, WcmpState::Healthy);
  EXPECT_DOUBLE_EQ(wcmp.weight(kLink), 1.0);
  EXPECT_EQ(wcmp.restorations(), 1u);
}

TEST(Wcmp, UndampedFlappingOscillates) {
  auto f = small_fabric();
  FluidSim sim(f);
  WcmpConfig cfg;
  cfg.damping = false;
  WcmpController wcmp(sim, cfg);

  // Adversarial duty cycle: down, up, down, up. Without damping every
  // swing is a route change, and the second engagement is an oscillation.
  for (double fr : {0.4, 1.0, 0.4, 1.0}) {
    wcmp.tick();
    EXPECT_TRUE(wcmp.observe(kLink, fr));
  }
  EXPECT_EQ(wcmp.health(kLink).engagements, 2u);
  EXPECT_EQ(wcmp.oscillations(), 1u);
  EXPECT_EQ(wcmp.route_changes(), 4u);
}

TEST(Wcmp, DampedHealthyPhaseDoesNotRestore) {
  auto f = small_fabric();
  FluidSim sim(f);
  WcmpController wcmp(sim);  // damping on by default

  wcmp.tick();
  EXPECT_TRUE(wcmp.observe(kLink, 0.4));
  EXPECT_EQ(wcmp.health(kLink).state, WcmpState::Derated);
  EXPECT_DOUBLE_EQ(wcmp.weight(kLink), 0.4);

  // Slow up: one tick of decay leaves the penalty far above reuse, so
  // the healthy phase of the flap changes nothing — state and weight
  // stay pinned, no route change to push.
  wcmp.tick();
  EXPECT_FALSE(wcmp.observe(kLink, 1.0));
  EXPECT_EQ(wcmp.health(kLink).state, WcmpState::Derated);
  EXPECT_DOUBLE_EQ(wcmp.weight(kLink), 0.4);
  EXPECT_EQ(wcmp.restorations(), 0u);
  EXPECT_EQ(wcmp.health(kLink).engagements, 1u);
  EXPECT_EQ(wcmp.oscillations(), 0u);
}

TEST(Wcmp, AdversarialFlappingSuppressesAndNeverOscillates) {
  auto f = small_fabric();
  FluidSim sim(f);
  WcmpController wcmp(sim);

  // Flap down/up every tick. Each down onset tops the penalty up faster
  // than the half-life decays it; once it crosses the suppress threshold
  // the link latches out of the candidate set.
  for (int i = 0; i < 10; ++i) {
    wcmp.tick();
    wcmp.observe(kLink, i % 2 == 0 ? 0.3 : 1.0);
  }
  EXPECT_EQ(wcmp.health(kLink).state, WcmpState::Suppressed);
  EXPECT_DOUBLE_EQ(wcmp.weight(kLink), 0.0);
  EXPECT_FALSE(wcmp.usable(kLink));
  EXPECT_EQ(wcmp.suppressions(), 1u);
  // The no-oscillation guarantee: one engagement, however long the flap.
  EXPECT_EQ(wcmp.health(kLink).engagements, 1u);
  EXPECT_EQ(wcmp.oscillations(), 0u);
  EXPECT_GE(wcmp.health(kLink).onsets, 5u);
}

TEST(Wcmp, PenaltyDecayEventuallyRestores) {
  auto f = small_fabric();
  FluidSim sim(f);
  WcmpController wcmp(sim);

  wcmp.tick();
  EXPECT_TRUE(wcmp.observe(kLink, 0.4));

  // One onset = penalty 1.0; with an 8-tick half-life it sinks below the
  // 0.5 reuse threshold right around one half-life of healthy ticks
  // (per-tick rounding may land either side of the exact boundary).
  int restored_at = -1;
  for (int t = 1; t <= 20; ++t) {
    wcmp.tick();
    if (wcmp.observe(kLink, 1.0)) {
      restored_at = t;
      break;
    }
  }
  EXPECT_GE(restored_at, 8);
  EXPECT_LE(restored_at, 9);
  EXPECT_EQ(wcmp.health(kLink).state, WcmpState::Healthy);
  EXPECT_DOUBLE_EQ(wcmp.weight(kLink), 1.0);
  EXPECT_EQ(wcmp.restorations(), 1u);
}

TEST(Wcmp, UntrackedLinksAreHealthy) {
  auto f = small_fabric();
  FluidSim sim(f);
  WcmpController wcmp(sim);
  EXPECT_DOUBLE_EQ(wcmp.weight(12345), 1.0);
  EXPECT_TRUE(wcmp.usable(12345));
  EXPECT_EQ(wcmp.health(12345).state, WcmpState::Healthy);
  EXPECT_EQ(wcmp.oscillations(), 0u);
}

TEST(Wcmp, WeightFloorKeepsCostsFinite) {
  auto f = small_fabric();
  FluidSim sim(f);
  WcmpController wcmp(sim);
  wcmp.tick();
  wcmp.observe(kLink, 0.001);  // nearly dead, but not suppressed yet
  EXPECT_EQ(wcmp.health(kLink).state, WcmpState::Derated);
  EXPECT_DOUBLE_EQ(wcmp.weight(kLink), 0.05);  // min_weight floor
}

TEST(Wcmp, CandidatePathsAreDistinctAndBounded) {
  auto f = small_fabric();
  FluidSim sim(f);
  WcmpController wcmp(sim);

  // Cross-block flow: multiple spine choices exist for the middle hops.
  int dst = f.params().rails * f.params().hosts_per_block;  // other block
  FlowSpec spec = make_spec(f, 0, dst);

  auto cands = wcmp.candidate_paths(spec, 8);
  ASSERT_GE(cands.size(), 2u) << "ECMP fabric should offer >1 distinct path";
  EXPECT_LE(cands.size(), 8u);
  for (std::size_t i = 0; i < cands.size(); ++i) {
    EXPECT_FALSE(cands[i].second.empty());
    for (std::size_t j = i + 1; j < cands.size(); ++j) {
      EXPECT_NE(cands[i].second, cands[j].second)
          << "candidates " << i << " and " << j << " are the same path";
    }
  }

  // k caps the widening.
  EXPECT_EQ(wcmp.candidate_paths(spec, 1).size(), 1u);
}

TEST(Wcmp, RebalanceIsANoOpWhenHealthy) {
  auto f = small_fabric();
  FluidSim sim(f);
  WcmpController wcmp(sim);

  int dst = f.params().rails * f.params().hosts_per_block;
  std::vector<FlowSpec> specs = {make_spec(f, 0, dst), make_spec(f, 2, dst + 2),
                                 make_spec(f, 4, dst + 4)};
  std::vector<FlowSpec> before = specs;

  EXPECT_EQ(wcmp.rebalance(specs), 0);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(specs[i].src_port, before[i].src_port) << "flow " << i;
  }
}

TEST(Wcmp, RebalanceSteersOffSuppressedLink) {
  auto f = small_fabric();
  FluidSim sim(f);
  WcmpConfig cfg;
  cfg.penalty_per_flap = 10.0;  // one onset suppresses outright
  WcmpController wcmp(sim, cfg);

  int dst = f.params().rails * f.params().hosts_per_block;
  std::vector<FlowSpec> specs = {make_spec(f, 0, dst)};
  auto cands = wcmp.candidate_paths(specs[0], 8);
  ASSERT_GE(cands.size(), 2u);

  // Suppress a link the current path crosses but some candidate avoids.
  auto current = sim.predict_path(specs[0]);
  ASSERT_TRUE(current.has_value());
  topo::LinkId victim = topo::kInvalidLink;
  for (topo::LinkId l : *current) {
    for (const auto& [port, path] : cands) {
      if (std::find(path.begin(), path.end(), l) == path.end()) {
        victim = l;
        break;
      }
    }
    if (victim != topo::kInvalidLink) break;
  }
  ASSERT_NE(victim, topo::kInvalidLink) << "no avoidable link on the path";

  wcmp.tick();
  wcmp.observe(victim, 0.2);
  ASSERT_EQ(wcmp.health(victim).state, WcmpState::Suppressed);

  EXPECT_EQ(wcmp.rebalance(specs), 1);
  auto after = sim.predict_path(specs[0]);
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(std::find(after->begin(), after->end(), victim), after->end())
      << "rebalanced path still crosses the suppressed link";
}

}  // namespace
}  // namespace astral::net
