// Replay round-trip property tests: for randomized small campaigns
// (seeded RNG sweep), a recorded trace must survive
//   Tracer → ChromeTraceBuilder → replay::parse_chrome_trace →
//   re-emit via ChromeTraceBuilder
// byte for byte, and the ambient key chains must be prefix-closed and
// the spans well-nested on every track. The same properties are checked
// on full scripted ClusterRuntime campaigns (faults included), which is
// what makes the replay parser a standing differential harness for every
// layer that emits telemetry.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/rng.h"
#include "obs/trace.h"
#include "replay/recorder.h"
#include "replay/trace_reader.h"

namespace astral::replay {
namespace {

// Tracer event names must be static storage; draw from fixed pools.
constexpr const char* kIterNames[] = {"iteration", "step", "epoch"};
constexpr const char* kCollNames[] = {"ring_step", "allreduce", "allgather"};
constexpr const char* kFaultDetails[] = {"optics", "switch_bug", nullptr};

/// Builds a randomized but well-formed campaign: nested ambient scopes
/// (job → group → collective), spans nested by construction, per-link
/// counters, fault instants.
obs::Tracer synthetic_campaign(std::uint64_t seed) {
  core::Rng rng(seed);
  obs::Tracer tracer;
  double t = 0.0;
  const int jobs = 1 + static_cast<int>(rng.next_u64() % 3);
  for (int j = 0; j < jobs; ++j) {
    obs::AmbientScope job_scope(&tracer, {.job = j});
    const int iters = 1 + static_cast<int>(rng.next_u64() % 4);
    for (int it = 0; it < iters; ++it) {
      const double iter_start = t;
      double cursor = iter_start;
      const int groups = 1 + static_cast<int>(rng.next_u64() % 2);
      for (int g = 0; g < groups; ++g) {
        obs::AmbientScope group_scope(&tracer, {.group = 10 + g});
        const int colls = 1 + static_cast<int>(rng.next_u64() % 3);
        for (int c = 0; c < colls; ++c) {
          obs::AmbientScope coll_scope(&tracer, {.collective = 100 * g + c});
          // Whole (even) microseconds: the trace stores integer-µs
          // timestamps, and unquantized durations would accumulate ±1µs
          // rounding that reads back as span overlap.
          const double dur = (100 + rng.next_u64() % 2450) * 2e-6;
          tracer.span(obs::Track::Collective,
                      kCollNames[rng.next_u64() % 3], cursor, dur, {},
                      rng.uniform(1e3, 1e7));
          // A flow nested inside the collective window.
          tracer.span(obs::Track::Flow, "flow", cursor, dur * 0.5,
                      {.flow = static_cast<std::int64_t>(rng.next_u64() % 64),
                       .qp = static_cast<std::int64_t>(rng.next_u64() % 64)},
                      rng.uniform(1e3, 1e6));
          cursor += dur;
        }
      }
      if (rng.next_u64() % 2) {
        tracer.instant(obs::Track::Fault, "fault.injected",
                       rng.uniform(iter_start, cursor),
                       {.fault = static_cast<std::int64_t>(rng.next_u64() % 8)},
                       kFaultDetails[rng.next_u64() % 3]);
      }
      tracer.counter(obs::Track::Link, "util", iter_start,
                     rng.uniform(0.0, 1.0),
                     {.link = static_cast<std::int64_t>(rng.next_u64() % 512)});
      tracer.span(obs::Track::Workload, kIterNames[rng.next_u64() % 3],
                  iter_start, cursor - iter_start, {},
                  static_cast<double>(it));
      t = cursor + (100 + rng.next_u64() % 900) * 1e-6;
    }
  }
  return tracer;
}

void expect_lossless_and_well_formed(const core::Json& doc,
                                     const std::string& context) {
  std::string err;
  auto parsed = parse_chrome_trace(doc, &err);
  ASSERT_TRUE(parsed.has_value()) << context << ": " << err;

  // Losslessness: re-emission through the builder is byte-identical.
  EXPECT_EQ(parsed->to_chrome_trace().dump(), doc.dump())
      << context << ": parse -> re-emit round trip is not lossless";

  // Well-formedness of every track.
  for (const ParsedTrack& track : parsed->tracks) {
    EXPECT_TRUE(spans_well_nested(track, &err)) << context << ": " << err;
    EXPECT_TRUE(key_chain_consistent(track, &err)) << context << ": " << err;
  }
}

TEST(ReplayRoundtrip, SyntheticCampaignSweepIsLossless) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    obs::Tracer tracer = synthetic_campaign(seed);
    expect_lossless_and_well_formed(tracer.to_chrome_trace(),
                                    "seed " + std::to_string(seed));
  }
}

TEST(ReplayRoundtrip, ScriptedRuntimeCampaignsAreLossless) {
  for (std::uint64_t seed : {11ull, 12ull, 13ull}) {
    ScriptedCampaignConfig cfg;
    cfg.hosts = 8;
    cfg.iterations = 3;
    cfg.seed = seed;
    auto art = record_scripted_campaign(cfg);
    expect_lossless_and_well_formed(art.trace, "runtime seed " + std::to_string(seed));
  }
}

TEST(ReplayRoundtrip, ParsedEventsDecodeKeysAndSeries) {
  obs::Tracer tracer;
  tracer.set_ambient({.job = 4});
  tracer.span(obs::Track::Flow, "flow", 0.5, 0.25, {.flow = 3, .qp = 9}, 2048.0);
  tracer.counter(obs::Track::Link, "util", 1.0, 0.75, {.link = 42});
  tracer.instant(obs::Track::Fault, "fault.injected", 2.0, {.fault = 1}, "optics");

  std::string err;
  auto parsed = parse_chrome_trace(tracer.to_chrome_trace(), &err);
  ASSERT_TRUE(parsed.has_value()) << err;

  const ParsedTrack* flow = parsed->find_track(1, "flow");
  ASSERT_NE(flow, nullptr);
  ASSERT_EQ(flow->events.size(), 1u);
  EXPECT_EQ(flow->events[0].kind, ParsedEvent::Kind::Span);
  EXPECT_EQ(flow->events[0].keys.job, 4);
  EXPECT_EQ(flow->events[0].keys.flow, 3);
  EXPECT_EQ(flow->events[0].keys.qp, 9);
  EXPECT_DOUBLE_EQ(flow->events[0].value, 2048.0);
  EXPECT_DOUBLE_EQ(flow->events[0].start, 0.5);
  EXPECT_DOUBLE_EQ(flow->events[0].duration, 0.25);

  // Counters land on the tid-0 lane; the link id is recovered from the
  // per-link series name.
  const ParsedTrack* counters = parsed->find_track(1, 0);
  ASSERT_NE(counters, nullptr);
  ASSERT_EQ(counters->events.size(), 1u);
  EXPECT_EQ(counters->events[0].kind, ParsedEvent::Kind::Counter);
  EXPECT_EQ(counters->events[0].name, "link42.util");
  EXPECT_EQ(counters->events[0].counter_series, "util");
  EXPECT_EQ(counters->events[0].keys.link, 42);

  const ParsedTrack* fault = parsed->find_track(1, "fault");
  ASSERT_NE(fault, nullptr);
  EXPECT_EQ(fault->events[0].detail, "optics");
  EXPECT_EQ(fault->events[0].keys.fault, 1);
}

TEST(ReplayRoundtrip, WellNestedCatchesPartialOverlap) {
  ParsedTrack track;
  track.name = "workload";
  ParsedEvent a;
  a.kind = ParsedEvent::Kind::Span;
  a.name = "a";
  a.start = 0.0;
  a.duration = 10.0;
  ParsedEvent b = a;
  b.name = "b";
  b.start = 5.0;
  b.duration = 10.0;  // ends at 15 — pokes out of a
  track.events = {a, b};
  std::string err;
  EXPECT_FALSE(spans_well_nested(track, &err));
  EXPECT_NE(err.find("partially overlaps"), std::string::npos) << err;

  // Nested and disjoint layouts pass.
  b.duration = 5.0;  // [5, 10) nests in [0, 10)
  track.events = {a, b};
  EXPECT_TRUE(spans_well_nested(track));
  b.start = 10.0;  // disjoint
  track.events = {a, b};
  EXPECT_TRUE(spans_well_nested(track));
}

TEST(ReplayRoundtrip, KeyChainCatchesOrphanKeys) {
  ParsedTrack track;
  track.name = "collective";
  ParsedEvent ev;
  ev.kind = ParsedEvent::Kind::Instant;
  ev.name = "x";
  ev.keys.collective = 5;  // no group, no job
  track.events = {ev};
  std::string err;
  EXPECT_FALSE(key_chain_consistent(track, &err));
  EXPECT_NE(err.find("collective without group"), std::string::npos) << err;

  track.events[0].keys.group = 2;  // still no job
  EXPECT_FALSE(key_chain_consistent(track, &err));
  EXPECT_NE(err.find("group without job"), std::string::npos) << err;

  track.events[0].keys.job = 1;
  EXPECT_TRUE(key_chain_consistent(track));
}

TEST(ReplayRoundtrip, ParserRejectsMalformedDocuments) {
  std::string err;
  auto missing = core::Json::parse(R"({"nope": 1})");
  EXPECT_FALSE(parse_chrome_trace(*missing, &err).has_value());
  EXPECT_NE(err.find("traceEvents"), std::string::npos);

  auto bad_ph = core::Json::parse(
      R"({"traceEvents": [{"name":"x","pid":1,"tid":1,"ts":0}]})");
  EXPECT_FALSE(parse_chrome_trace(*bad_ph, &err).has_value());
  EXPECT_NE(err.find("ph"), std::string::npos);

  auto bad_phase = core::Json::parse(
      R"({"traceEvents": [{"ph":"B","name":"x","pid":1,"tid":1,"ts":0}]})");
  EXPECT_FALSE(parse_chrome_trace(*bad_phase, &err).has_value());
  EXPECT_NE(err.find("unsupported phase"), std::string::npos);

  auto bad_counter = core::Json::parse(
      R"({"traceEvents": [{"ph":"C","name":"c","pid":1,"tid":0,"ts":0,
          "args":{"a":1,"b":2}}]})");
  EXPECT_FALSE(parse_chrome_trace(*bad_counter, &err).has_value());
  EXPECT_NE(err.find("counter"), std::string::npos);

  auto no_dur = core::Json::parse(
      R"({"traceEvents": [{"ph":"X","name":"x","pid":1,"tid":1,"ts":0}]})");
  EXPECT_FALSE(parse_chrome_trace(*no_dur, &err).has_value());
  EXPECT_NE(err.find("dur"), std::string::npos);

  auto non_object = core::Json::parse(R"({"traceEvents": ["junk"]})");
  EXPECT_FALSE(parse_chrome_trace(*non_object, &err).has_value());
  EXPECT_NE(err.find("not an object"), std::string::npos);
}

}  // namespace
}  // namespace astral::replay
