#include "pkt/packet_sim.h"

#include <gtest/gtest.h>

#include "net/fluid_sim.h"

namespace astral::pkt {
namespace {

using core::gbps;
using core::Seconds;
using namespace core;  // literal operators

topo::Fabric small_fabric() {
  topo::FabricParams p;
  p.rails = 4;
  p.hosts_per_block = 4;
  p.blocks_per_pod = 2;
  p.pods = 1;
  return topo::Fabric(p);
}

net::FlowSpec make_spec(const topo::Fabric& f, int src_gpu, int dst_gpu, core::Bytes size,
                        std::uint64_t tag = 0) {
  auto a = f.gpu(src_gpu);
  auto b = f.gpu(dst_gpu);
  net::FlowSpec s;
  s.src_host = a.host;
  s.dst_host = b.host;
  s.src_rail = a.rail;
  s.dst_rail = b.rail;
  s.size = size;
  s.tag = tag;
  return s;
}

TEST(PacketSim, SingleFlowApproachesLineRate) {
  auto f = small_fabric();
  PacketSim sim(f);
  int dst = f.params().rails;  // next host, same rail 0? rail of gpu 4 is 0
  auto id = sim.inject(make_spec(f, 0, dst * 1, 8_MiB));
  sim.run();
  const auto& st = sim.flow(id);
  ASSERT_TRUE(st.admitted);
  ASSERT_GE(st.finish, 0.0);
  Seconds ideal = core::transfer_time(8_MiB, gbps(200));
  // Pipeline latency and pacing overheads allowed, but within 10%.
  EXPECT_NEAR(st.finish, ideal, ideal * 0.10);
  EXPECT_EQ(sim.stats().packets_dropped, 0u);
  EXPECT_EQ(st.delivered, 8_MiB);
}

TEST(PacketSim, UnroutableFlowRejected) {
  topo::FabricParams p;
  p.style = topo::FabricStyle::RailOnly;
  p.rails = 4;
  p.hosts_per_block = 4;
  p.blocks_per_pod = 2;
  p.pods = 1;
  topo::Fabric f(p);
  PacketSim sim(f);
  auto id = sim.inject(make_spec(f, 0, f.params().rails + 1, 1_MiB));  // cross rail
  EXPECT_FALSE(sim.flow(id).admitted);
  sim.run();
  EXPECT_EQ(sim.stats().packets_sent, 0u);
}

TEST(PacketSim, TwoFlowsShareFairly) {
  auto f = small_fabric();
  PacketSim sim(f);
  int dst = f.params().rails;
  auto s1 = make_spec(f, 0, dst, 4_MiB, 1);
  auto s2 = make_spec(f, 0, dst, 4_MiB, 2);
  s1.src_port = 4444;  // pin both to the same NIC port / path
  s2.src_port = 4444;
  auto f1 = sim.inject(s1);
  auto f2 = sim.inject(s2);
  sim.run();
  Seconds shared = core::transfer_time(8_MiB, gbps(200));
  EXPECT_NEAR(sim.flow(f1).finish, shared, shared * 0.25);
  EXPECT_NEAR(sim.flow(f2).finish, shared, shared * 0.25);
}

TEST(PacketSim, IncastIsLosslessViaPfc) {
  auto f = small_fabric();
  PacketSimConfig cfg;
  PacketSim sim(f, cfg);
  // 6 hosts blast one destination NIC: oversubscribed 6:1.
  std::vector<net::FlowId> ids;
  for (int h = 1; h <= 6; ++h) {
    ids.push_back(sim.inject(make_spec(f, h * f.params().rails, 0, 2_MiB,
                                       static_cast<std::uint64_t>(h))));
  }
  sim.run();
  for (auto id : ids) {
    EXPECT_GE(sim.flow(id).finish, 0.0);
    EXPECT_EQ(sim.flow(id).delivered, 2_MiB);
  }
  EXPECT_EQ(sim.stats().packets_dropped, 0u);       // lossless
  EXPECT_GT(sim.stats().pfc_pause_events, 0u);      // PFC engaged
  EXPECT_GT(sim.stats().ecn_marks, 0u);             // ECN marked
  // Aggregate goodput bounded by the destination NIC's two dual-ToR
  // ports (2 x 200G); congestion control keeps it near that bound.
  Seconds ideal = core::transfer_time(12_MiB, gbps(400));
  Seconds worst = 0;
  for (auto id : ids) worst = std::max(worst, sim.flow(id).finish);
  EXPECT_GT(worst, ideal * 0.9);
  EXPECT_LT(worst, ideal * 3.0);
}

TEST(PacketSim, DcqcnCutsRateOnCongestion) {
  auto f = small_fabric();
  PacketSim sim(f);
  std::vector<net::FlowId> ids;
  for (int h = 1; h <= 6; ++h) {
    ids.push_back(sim.inject(make_spec(f, h * f.params().rails, 0, 2_MiB,
                                       static_cast<std::uint64_t>(h))));
  }
  sim.run();
  std::uint64_t feedback = 0;
  double min_rate = 1e18;
  for (auto id : ids) {
    feedback += sim.flow(id).ecn_feedback;
    min_rate = std::min(min_rate, sim.flow(id).rate);
  }
  EXPECT_GT(feedback, 0u);
  EXPECT_LT(min_rate, gbps(200));  // someone backed off
}

TEST(PacketSim, DeterministicForFixedSeed) {
  auto run_once = [] {
    auto f = small_fabric();
    PacketSim sim(f);
    for (int h = 1; h <= 4; ++h) {
      sim.inject(make_spec(f, h * 4, 0, 1_MiB, static_cast<std::uint64_t>(h)));
    }
    sim.run();
    return sim.now();
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(PacketSim, AgreesWithFluidModelOnUncongestedTransfer) {
  // The validation role: on clean paths, packet-level completion times
  // must track the fluid model.
  auto f1 = small_fabric();
  auto f2 = small_fabric();
  PacketSim psim(f1);
  net::FluidSim fsim(f2);
  auto spec = make_spec(f1, 0, 2 * f1.params().rails + 2, 16_MiB, 9);
  auto pid = psim.inject(spec);
  auto fid = fsim.inject(spec);
  psim.run();
  fsim.run();
  double pkt_fct = psim.flow(pid).finish;
  double fluid_fct = fsim.flow(fid).finish;
  EXPECT_NEAR(pkt_fct, fluid_fct, fluid_fct * 0.10);
}

TEST(PacketSim, QueueDepthVisibleDuringIncast) {
  auto f = small_fabric();
  PacketSim sim(f);
  std::vector<net::FlowId> ids;
  net::FlowSpec probe = make_spec(f, f.params().rails, 0, 4_MiB, 1);
  auto path = net::Router(f).route(probe, net::Router(f).tuple_for(probe));
  ASSERT_TRUE(path.has_value());
  for (int h = 1; h <= 6; ++h) {
    sim.inject(make_spec(f, h * f.params().rails, 0, 4_MiB, static_cast<std::uint64_t>(h)));
  }
  sim.run(core::usec(300));  // mid-incast
  // Some egress queue toward host 0 has built up.
  core::Bytes depth = 0;
  for (std::size_t l = 0; l < f.topo().link_count(); ++l) {
    depth = std::max(depth, sim.queue_depth(static_cast<topo::LinkId>(l)));
  }
  EXPECT_GT(depth, 0u);
  sim.run();
}

}  // namespace
}  // namespace astral::pkt
