#include "workload/tuner.h"

#include <gtest/gtest.h>

namespace astral::workload {
namespace {

TEST(MemoryModel, WeightsShardWithTpAndPp) {
  TrainingSetup s;
  s.model = seer::ModelSpec::llama3_70b();
  s.parallel = {.tp = 8, .dp = 8, .pp = 4, .ep = 1};
  double base = training_memory_bytes(s);
  s.parallel.pp = 8;
  EXPECT_LT(training_memory_bytes(s), base);
  s.parallel = {.tp = 4, .dp = 8, .pp = 4, .ep = 1};
  EXPECT_GT(training_memory_bytes(s), base);
}

TEST(MemoryModel, Zero3ShardsOptimizerState) {
  TrainingSetup s;
  s.model = seer::ModelSpec::llama3_70b();
  s.parallel = {.tp = 8, .dp = 16, .pp = 4, .ep = 1};
  double plain = training_memory_bytes(s);
  s.dp_strategy = seer::DpStrategy::Zero3;
  EXPECT_LT(training_memory_bytes(s), plain * 0.5);
}

TEST(MemoryModel, ActivationsScaleWithMicroBatchAndSeq) {
  TrainingSetup s;
  s.model = seer::ModelSpec::llama3_70b();
  s.parallel = {.tp = 8, .dp = 8, .pp = 4, .ep = 1};
  s.micro_batch = 1;
  double m1 = training_memory_bytes(s);
  s.micro_batch = 4;
  double m4 = training_memory_bytes(s);
  EXPECT_GT(m4, m1);
  s.micro_batch = 1;
  s.seq_len *= 2;
  EXPECT_GT(training_memory_bytes(s), m1);
}

TEST(MemoryModel, Llama70BFitsOn64xH100ButNotWithoutSharding) {
  // Sanity against well-known deployments: 70B trains on 8x8 H100 with
  // tp8/pp4, but a single GPU cannot hold the optimizer state.
  TrainingSetup s;
  s.model = seer::ModelSpec::llama3_70b();
  s.parallel = {.tp = 8, .dp = 2, .pp = 4, .ep = 1};
  EXPECT_LT(training_memory_bytes(s), 80e9 * 0.95);
  s.parallel = {.tp = 1, .dp = 1, .pp = 1, .ep = 1};
  EXPECT_GT(training_memory_bytes(s), 1e12);  // ~16 bytes/param >> 80 GB
}

TEST(MemoryModel, InferenceKvCacheGrowsWithContext) {
  auto model = seer::ModelSpec::llama3_70b();
  parallel::ParallelismConfig cfg{.tp = 8, .dp = 1, .pp = 1, .ep = 1};
  double short_ctx = inference_memory_bytes(model, cfg, 16, 2048);
  double long_ctx = inference_memory_bytes(model, cfg, 16, 32768);
  EXPECT_GT(long_ctx, short_ctx);
  // GQA keeps the KV cache manageable: 16 x 32K tokens fit in one
  // tp8 H100 shard alongside the weights.
  EXPECT_LT(long_ctx, 80e9);
}

TEST(Tuner, FindsAFeasiblePlanAndRanksByThroughput) {
  TuningRequest req;
  req.model = seer::ModelSpec::llama3_70b();
  req.gpus = 256;
  req.global_batch = 256;
  req.seq_len = 4096;
  auto result = tune_parallelism(req);
  EXPECT_GT(result.evaluated, 4);
  auto best = result.best();
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->parallel.world(), 256);
  EXPECT_TRUE(best->fits);
  // Ranked by throughput among feasible plans.
  double prev = 1e300;
  for (const auto& c : result.ranked) {
    if (!c.fits) break;
    EXPECT_LE(c.forecast.tokens_per_sec, prev * (1 + 1e-9));
    prev = c.forecast.tokens_per_sec;
  }
}

TEST(Tuner, RejectsMemoryInfeasiblePlans) {
  TuningRequest req;
  req.model = seer::ModelSpec::llama3_405b();  // heavy
  req.gpus = 64;                               // small budget
  req.global_batch = 64;
  auto result = tune_parallelism(req);
  EXPECT_GT(result.rejected_memory, 0);
  for (const auto& c : result.ranked) {
    if (c.fits) {
      EXPECT_LE(c.memory_bytes, static_cast<double>(req.gpu.hbm_size) * req.memory_margin);
    }
  }
}

TEST(Tuner, BestPlanUsesTensorParallelismForBigModels) {
  TuningRequest req;
  req.model = seer::ModelSpec::llama3_70b();
  req.gpus = 128;
  req.global_batch = 128;
  auto best = tune_parallelism(req).best();
  ASSERT_TRUE(best.has_value());
  EXPECT_GT(best->parallel.tp * best->parallel.pp, 1);  // must shard
}

TEST(Tuner, RespectsWorldSize) {
  TuningRequest req;
  req.model = seer::ModelSpec::tiny();
  req.gpus = 32;
  req.global_batch = 64;
  auto result = tune_parallelism(req);
  for (const auto& c : result.ranked) EXPECT_EQ(c.parallel.world(), 32);
}

}  // namespace
}  // namespace astral::workload
