#include "net/controller.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/math.h"
#include "core/rng.h"

namespace astral::net {
namespace {

using namespace core;  // literal operators (_MiB)

topo::Fabric bench_fabric() {
  topo::FabricParams p;
  p.style = topo::FabricStyle::AstralSameRail;
  p.rails = 4;
  p.hosts_per_block = 8;
  p.blocks_per_pod = 4;
  p.pods = 1;
  return topo::Fabric(p);
}

// Same-rail permutation traffic: every host sends on rail 0 to a peer
// host in another block; ECMP hash collisions polarize some ToR->Agg
// links.
std::vector<FlowSpec> permutation_traffic(const topo::Fabric& f) {
  std::vector<FlowSpec> specs;
  int hosts = f.host_count();
  for (int h = 0; h < hosts; ++h) {
    int peer = (h + f.params().hosts_per_block) % hosts;  // next block
    FlowSpec s;
    s.src_host = f.topo().hosts()[static_cast<std::size_t>(h)];
    s.dst_host = f.topo().hosts()[static_cast<std::size_t>(peer)];
    s.src_rail = 0;
    s.dst_rail = 0;
    s.size = 16_MiB;
    s.tag = static_cast<std::uint64_t>(h);
    specs.push_back(s);
  }
  return specs;
}

TEST(EcmpController, EstimateLoadCountsAllPaths) {
  auto f = bench_fabric();
  FluidSim sim(f);
  EcmpController ctl(sim);
  auto specs = permutation_traffic(f);
  auto load = ctl.estimate_load(specs);
  // Total link traversals = sum of path lengths = 4 hops * flows.
  std::size_t total = 0;
  for (const auto& [l, n] : load) total += static_cast<std::size_t>(n);
  EXPECT_EQ(total, specs.size() * 4);
}

TEST(EcmpController, RebalanceReducesMaxLinkLoad) {
  auto f = bench_fabric();
  FluidSim sim(f);
  EcmpController ctl(sim);
  auto specs = permutation_traffic(f);

  int before = ctl.max_link_load(specs);
  int moved_total = 0;
  for (int round = 0; round < 6; ++round) {
    moved_total += ctl.rebalance(specs);
  }
  int after = ctl.max_link_load(specs);
  EXPECT_LE(after, before);
  // Permutation traffic on a non-blocking fabric can always be spread;
  // if hashing polarized anything, the controller must improve it.
  if (before > 1) {
    EXPECT_LT(after, before);
    EXPECT_GT(moved_total, 0);
  }
}

TEST(EcmpController, RebalanceConverges) {
  auto f = bench_fabric();
  FluidSim sim(f);
  EcmpController ctl(sim);
  auto specs = permutation_traffic(f);
  for (int round = 0; round < 8; ++round) ctl.rebalance(specs);
  int stable = ctl.max_link_load(specs);
  // Further rounds change nothing meaningful.
  ctl.rebalance(specs);
  EXPECT_LE(ctl.max_link_load(specs), stable + 1);
}

TEST(EcmpController, ReassignmentLowersEcnMarksAcrossRounds) {
  // The Fig. 17 experiment in miniature: run the same collective round
  // repeatedly; after each round the controller reassigns source ports
  // of congested flows; ECN counters must decrease and stabilize.
  auto f = bench_fabric();
  FluidSim sim(f);
  EcmpController ctl(sim);
  auto specs = permutation_traffic(f);

  std::vector<std::uint64_t> marks_per_round;
  for (int round = 0; round < 6; ++round) {
    sim.reset_stats();
    for (auto& s : specs) {
      s.start = sim.now();
      sim.inject(s);
    }
    sim.run();
    std::uint64_t marks = 0;
    for (std::size_t l = 0; l < f.topo().link_count(); ++l) {
      marks += sim.link_stats(static_cast<topo::LinkId>(l)).ecn_marks;
    }
    marks_per_round.push_back(marks);
    ctl.rebalance(specs);
    sim.recycle_finished();
  }
  EXPECT_LE(marks_per_round.back(), marks_per_round.front());
}

// --- Zoo-wide rebalance-bound property -------------------------------
//
// For every topology-zoo member, seeded adversarial permutations must
// end under the controller's documented guarantee: after convergence no
// link's predicted ECMP load exceeds rebalance_bound() = 2x the
// pigeonhole-balanced load + 1, and Jain's fairness over link loads must
// not degrade. The shootout's polarization-defuse gate enforces the same
// expression at campaign scale.

class RebalanceBound : public ::testing::TestWithParam<topo::FabricStyle> {
 protected:
  topo::Fabric fabric() const {
    topo::FabricParams p;
    p.style = GetParam();
    p.rails = 4;
    p.hosts_per_block = 8;
    p.blocks_per_pod = 4;
    p.pods = 2;
    return topo::Fabric(p);
  }

  // Seeded rail-0 permutation: every host sends to a shuffled peer.
  // Rail-only fabrics route only inside a pod, so the permutation is
  // drawn per pod; the other styles shuffle across the whole cluster.
  std::vector<FlowSpec> seeded_permutation(const topo::Fabric& f,
                                           std::uint64_t seed) const {
    const int hosts = f.host_count();
    const int span = GetParam() == topo::FabricStyle::RailOnly
                         ? f.params().blocks_per_pod * f.params().hosts_per_block
                         : hosts;
    core::Rng rng(seed);
    std::vector<int> perm(static_cast<std::size_t>(hosts));
    for (int h = 0; h < hosts; ++h) perm[static_cast<std::size_t>(h)] = h;
    for (int base = 0; base < hosts; base += span) {
      for (int i = span; i > 1; --i) {
        std::swap(perm[static_cast<std::size_t>(base + i - 1)],
                  perm[static_cast<std::size_t>(base) +
                       rng.uniform_int(static_cast<std::size_t>(i))]);
      }
    }
    std::vector<FlowSpec> specs;
    for (int h = 0; h < hosts; ++h) {
      int peer = perm[static_cast<std::size_t>(h)];
      if (peer == h) continue;
      FlowSpec s;
      s.src_host = f.topo().hosts()[static_cast<std::size_t>(h)];
      s.dst_host = f.topo().hosts()[static_cast<std::size_t>(peer)];
      s.src_rail = 0;
      s.dst_rail = 0;
      s.size = 16_MiB;
      s.tag = static_cast<std::uint64_t>(h);
      specs.push_back(s);
    }
    return specs;
  }

  static std::vector<double> link_loads(const EcmpController& ctl,
                                        const std::vector<FlowSpec>& specs) {
    std::vector<double> loads;
    for (const auto& [l, n] : ctl.estimate_load(specs)) {
      loads.push_back(static_cast<double>(n));
    }
    return loads;
  }
};

TEST_P(RebalanceBound, ConvergedLoadStaysUnderDocumentedBound) {
  auto f = fabric();
  FluidSim sim(f);
  EcmpController ctl(sim);
  for (std::uint64_t seed : {1ull, 7ull, 42ull, 1337ull}) {
    auto specs = seeded_permutation(f, seed);
    ASSERT_FALSE(specs.empty());
    double fairness_before = core::jain_fairness(link_loads(ctl, specs));
    for (int round = 0; round < 8; ++round) {
      if (ctl.rebalance(specs) == 0) break;
    }
    int bound = ctl.rebalance_bound(specs);
    EXPECT_GE(ctl.balanced_load(specs), 1);
    EXPECT_LE(ctl.max_link_load(specs), bound) << "seed " << seed;
    double fairness_after = core::jain_fairness(link_loads(ctl, specs));
    EXPECT_GE(fairness_after, fairness_before - 0.05) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Zoo, RebalanceBound,
                         ::testing::ValuesIn(topo::kAllFabricStyles),
                         [](const auto& info) {
                           std::string name = topo::to_string(info.param);
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(EcmpController, NoTrafficNoWork) {
  auto f = bench_fabric();
  FluidSim sim(f);
  EcmpController ctl(sim);
  std::vector<FlowSpec> empty;
  EXPECT_EQ(ctl.rebalance(empty), 0);
  EXPECT_EQ(ctl.max_link_load(empty), 0);
}

}  // namespace
}  // namespace astral::net
