#include "net/controller.h"

#include <gtest/gtest.h>

namespace astral::net {
namespace {

using namespace core;  // literal operators (_MiB)

topo::Fabric bench_fabric() {
  topo::FabricParams p;
  p.style = topo::FabricStyle::AstralSameRail;
  p.rails = 4;
  p.hosts_per_block = 8;
  p.blocks_per_pod = 4;
  p.pods = 1;
  return topo::Fabric(p);
}

// Same-rail permutation traffic: every host sends on rail 0 to a peer
// host in another block; ECMP hash collisions polarize some ToR->Agg
// links.
std::vector<FlowSpec> permutation_traffic(const topo::Fabric& f) {
  std::vector<FlowSpec> specs;
  int hosts = f.host_count();
  for (int h = 0; h < hosts; ++h) {
    int peer = (h + f.params().hosts_per_block) % hosts;  // next block
    FlowSpec s;
    s.src_host = f.topo().hosts()[static_cast<std::size_t>(h)];
    s.dst_host = f.topo().hosts()[static_cast<std::size_t>(peer)];
    s.src_rail = 0;
    s.dst_rail = 0;
    s.size = 16_MiB;
    s.tag = static_cast<std::uint64_t>(h);
    specs.push_back(s);
  }
  return specs;
}

TEST(EcmpController, EstimateLoadCountsAllPaths) {
  auto f = bench_fabric();
  FluidSim sim(f);
  EcmpController ctl(sim);
  auto specs = permutation_traffic(f);
  auto load = ctl.estimate_load(specs);
  // Total link traversals = sum of path lengths = 4 hops * flows.
  std::size_t total = 0;
  for (const auto& [l, n] : load) total += static_cast<std::size_t>(n);
  EXPECT_EQ(total, specs.size() * 4);
}

TEST(EcmpController, RebalanceReducesMaxLinkLoad) {
  auto f = bench_fabric();
  FluidSim sim(f);
  EcmpController ctl(sim);
  auto specs = permutation_traffic(f);

  int before = ctl.max_link_load(specs);
  int moved_total = 0;
  for (int round = 0; round < 6; ++round) {
    moved_total += ctl.rebalance(specs);
  }
  int after = ctl.max_link_load(specs);
  EXPECT_LE(after, before);
  // Permutation traffic on a non-blocking fabric can always be spread;
  // if hashing polarized anything, the controller must improve it.
  if (before > 1) {
    EXPECT_LT(after, before);
    EXPECT_GT(moved_total, 0);
  }
}

TEST(EcmpController, RebalanceConverges) {
  auto f = bench_fabric();
  FluidSim sim(f);
  EcmpController ctl(sim);
  auto specs = permutation_traffic(f);
  for (int round = 0; round < 8; ++round) ctl.rebalance(specs);
  int stable = ctl.max_link_load(specs);
  // Further rounds change nothing meaningful.
  ctl.rebalance(specs);
  EXPECT_LE(ctl.max_link_load(specs), stable + 1);
}

TEST(EcmpController, ReassignmentLowersEcnMarksAcrossRounds) {
  // The Fig. 17 experiment in miniature: run the same collective round
  // repeatedly; after each round the controller reassigns source ports
  // of congested flows; ECN counters must decrease and stabilize.
  auto f = bench_fabric();
  FluidSim sim(f);
  EcmpController ctl(sim);
  auto specs = permutation_traffic(f);

  std::vector<std::uint64_t> marks_per_round;
  for (int round = 0; round < 6; ++round) {
    sim.reset_stats();
    for (auto& s : specs) {
      s.start = sim.now();
      sim.inject(s);
    }
    sim.run();
    std::uint64_t marks = 0;
    for (std::size_t l = 0; l < f.topo().link_count(); ++l) {
      marks += sim.link_stats(static_cast<topo::LinkId>(l)).ecn_marks;
    }
    marks_per_round.push_back(marks);
    ctl.rebalance(specs);
    sim.recycle_finished();
  }
  EXPECT_LE(marks_per_round.back(), marks_per_round.front());
}

TEST(EcmpController, NoTrafficNoWork) {
  auto f = bench_fabric();
  FluidSim sim(f);
  EcmpController ctl(sim);
  std::vector<FlowSpec> empty;
  EXPECT_EQ(ctl.rebalance(empty), 0);
  EXPECT_EQ(ctl.max_link_load(empty), 0);
}

}  // namespace
}  // namespace astral::net
