#include "core/math.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/rng.h"

namespace astral::core {
namespace {

TEST(Stats, MeanAndStddev) {
  std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{3.0}), 0.0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25.0);
  EXPECT_DOUBLE_EQ(median(xs), 25.0);
}

TEST(Stats, ZscoresFlagOutlier) {
  std::vector<double> xs{10, 10.2, 9.9, 10.1, 30.0};
  auto z = zscores(xs);
  ASSERT_EQ(z.size(), 5u);
  EXPECT_GT(z[4], 1.9);
  for (int i = 0; i < 4; ++i) EXPECT_LT(std::abs(z[static_cast<std::size_t>(i)]), 1.0);
}

TEST(Stats, ZscoresOfConstantSeriesAreZero) {
  std::vector<double> xs{5, 5, 5, 5};
  for (double z : zscores(xs)) EXPECT_DOUBLE_EQ(z, 0.0);
}

TEST(Polyfit, RecoversExactQuadratic) {
  std::vector<double> xs, ys;
  for (int i = 0; i <= 10; ++i) {
    double x = i * 0.3;
    xs.push_back(x);
    ys.push_back(2.0 - 1.5 * x + 0.25 * x * x);
  }
  Polynomial p = polyfit(xs, ys, 2);
  ASSERT_EQ(p.degree(), 2);
  EXPECT_NEAR(p.coeffs[0], 2.0, 1e-9);
  EXPECT_NEAR(p.coeffs[1], -1.5, 1e-9);
  EXPECT_NEAR(p.coeffs[2], 0.25, 1e-9);
  EXPECT_NEAR(poly_rmse(p, xs, ys), 0.0, 1e-9);
}

TEST(Polyfit, SmoothsNoisyData) {
  Rng rng(7);
  std::vector<double> xs, ys;
  for (int i = 0; i < 200; ++i) {
    double x = rng.uniform(0, 4);
    xs.push_back(x);
    ys.push_back(1.0 + 3.0 * x + rng.normal(0, 0.05));
  }
  Polynomial p = polyfit(xs, ys, 1);
  ASSERT_EQ(p.degree(), 1);
  EXPECT_NEAR(p.coeffs[0], 1.0, 0.05);
  EXPECT_NEAR(p.coeffs[1], 3.0, 0.05);
}

TEST(Polyfit, DegenerateInputsReturnEmpty) {
  std::vector<double> xs{1.0};
  std::vector<double> ys{2.0};
  EXPECT_TRUE(polyfit(xs, ys, 2).coeffs.empty());
  EXPECT_TRUE(polyfit({}, {}, 1).coeffs.empty());
  std::vector<double> bad_x{1, 2, 3};
  std::vector<double> bad_y{1, 2};
  EXPECT_TRUE(polyfit(bad_x, bad_y, 1).coeffs.empty());
}

TEST(Polyfit, ConstantXIsSingular) {
  std::vector<double> xs{2, 2, 2, 2};
  std::vector<double> ys{1, 2, 3, 4};
  EXPECT_TRUE(polyfit(xs, ys, 1).coeffs.empty());
}

TEST(LinearSolve, SolvesSmallSystem) {
  // 2x + y = 5; x - y = 1 -> x = 2, y = 1.
  std::vector<double> a{2, 1, 1, -1};
  std::vector<double> b{5, 1};
  ASSERT_TRUE(solve_linear(a, b, 2));
  EXPECT_NEAR(b[0], 2.0, 1e-12);
  EXPECT_NEAR(b[1], 1.0, 1e-12);
}

TEST(LinearSolve, DetectsSingular) {
  std::vector<double> a{1, 2, 2, 4};
  std::vector<double> b{3, 6};
  EXPECT_FALSE(solve_linear(a, b, 2));
}

TEST(RelativeDeviation, Basics) {
  EXPECT_DOUBLE_EQ(relative_deviation(101.0, 100.0), 0.01);
  EXPECT_DOUBLE_EQ(relative_deviation(100.0, 100.0), 0.0);
  EXPECT_GT(relative_deviation(1.0, 0.0), 1e9);
}

TEST(JainFairness, Basics) {
  std::vector<double> even{4, 4, 4, 4};
  EXPECT_DOUBLE_EQ(jain_fairness(even), 1.0);
  std::vector<double> polarized{16, 0, 0, 0};
  EXPECT_DOUBLE_EQ(jain_fairness(polarized), 0.25);  // 1/n
  std::vector<double> skewed{2, 1, 1};
  EXPECT_NEAR(jain_fairness(skewed), 16.0 / 18.0, 1e-12);
  EXPECT_DOUBLE_EQ(jain_fairness({}), 1.0);
  std::vector<double> zeros{0, 0};
  EXPECT_DOUBLE_EQ(jain_fairness(zeros), 1.0);
}

}  // namespace
}  // namespace astral::core
