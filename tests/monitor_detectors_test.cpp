#include "monitor/detectors.h"

#include <gtest/gtest.h>

#include "monitor/analyzer.h"
#include "monitor/cluster_runtime.h"

namespace astral::monitor {
namespace {

SyslogEvent log_with(std::string msg) {
  SyslogEvent ev;
  ev.message = std::move(msg);
  return ev;
}

TEST(DetectorRegistry, DefaultsCoverTheTaxonomy) {
  auto r = DetectorRegistry::with_defaults();
  EXPECT_EQ(r.match(log_with("NVRM: Xid 79: GPU has fallen off the bus")),
            RootCause::GpuHardware);
  EXPECT_EQ(r.match(log_with("EDAC MC0: UCE ECC error")), RootCause::Memory);
  EXPECT_EQ(r.match(log_with("PCIe: link width degraded to x4")),
            RootCause::PcieDegrade);
  EXPECT_EQ(r.match(log_with("transceiver: rx optical power below threshold")),
            RootCause::OpticalFiber);
  EXPECT_FALSE(r.match(log_with("something benign")).has_value());
}

TEST(DetectorRegistry, PreIncidentSetLacksPcie) {
  auto r = DetectorRegistry::without_pcie();
  EXPECT_FALSE(r.match(log_with("PCIe: link width degraded to x4")).has_value());
  EXPECT_TRUE(r.match(log_with("Xid 79")).has_value());
}

TEST(DetectorRegistry, LaterRegistrationsShadowEarlier) {
  DetectorRegistry r;
  r.register_detector("link", RootCause::LinkFlap);
  r.register_detector("link width degraded", RootCause::PcieDegrade);
  EXPECT_EQ(r.match(log_with("PCIe link width degraded")), RootCause::PcieDegrade);
  EXPECT_EQ(r.match(log_with("port: link down")), RootCause::LinkFlap);
}

// The Appendix D evolution story end-to-end: with the old registry the
// PCIe incident is located as congestion but the root cause stays
// unknown; patching one detector at the physical layer — without touching
// any upper analyzer layer — makes the same telemetry fully diagnosable.
TEST(DetectorRegistry, PatchingOneDetectorResolvesTheIncident) {
  topo::FabricParams fp;
  fp.rails = 2;
  fp.hosts_per_block = 8;
  fp.blocks_per_pod = 2;
  fp.pods = 1;
  topo::Fabric fabric(fp);

  JobConfig job;
  job.hosts = 8;
  job.iterations = 5;
  job.comm_bytes = 32ull * 1024 * 1024;
  ClusterRuntime rt(fabric, job, 99);
  rt.inject(rt.make_fault(RootCause::PcieDegrade, Manifestation::FailSlow, 1));
  rt.run();

  auto diagnose_with = [&](DetectorRegistry registry) {
    HierarchicalAnalyzer analyzer(rt.telemetry(), fabric.topo(), rt.expected_compute(),
                                  rt.expected_comm(), AnalyzerConfig{},
                                  std::move(registry));
    return analyzer.diagnose();
  };

  auto before = diagnose_with(DetectorRegistry::without_pcie());
  EXPECT_TRUE(before.anomaly_detected);
  EXPECT_FALSE(before.root_cause_found);

  auto patched_registry = DetectorRegistry::without_pcie();
  patched_registry.register_detector("PCIe", RootCause::PcieDegrade);
  auto after = diagnose_with(std::move(patched_registry));
  ASSERT_TRUE(after.root_cause_found);
  EXPECT_EQ(after.root_cause, RootCause::PcieDegrade);
}

}  // namespace
}  // namespace astral::monitor
