#include "seer/efficiency.h"

#include <gtest/gtest.h>

namespace astral::seer {
namespace {

TEST(TheoreticalEfficiency, AlwaysOne) {
  TheoreticalEfficiency e;
  EXPECT_DOUBLE_EQ(e.compute_eff(1), 1.0);
  EXPECT_DOUBLE_EQ(e.memory_eff(1e9), 1.0);
  EXPECT_DOUBLE_EQ(e.network_eff(1e12), 1.0);
}

TEST(TestbedEfficiency, SaturatesWithSize) {
  TestbedEfficiency e;
  EXPECT_LT(e.network_eff(1e3), e.network_eff(1e9));
  EXPECT_LT(e.compute_eff(1e6), e.compute_eff(1e12));
  EXPECT_LT(e.memory_eff(1e4), e.memory_eff(1e10));
}

TEST(TestbedEfficiency, BoundedAndBelowCeilings) {
  TestbedEfficiency::Params p;
  TestbedEfficiency e(p);
  for (double x : {1e2, 1e5, 1e8, 1e11, 1e14}) {
    EXPECT_GE(e.compute_eff(x), 0.01);
    EXPECT_LE(e.compute_eff(x), 1.0);
    EXPECT_LE(e.network_eff(x), p.network_ceiling * (1 + p.ripple) + 1e-9);
  }
}

TEST(TestbedEfficiency, CongestionReducesNetworkOnly) {
  TestbedEfficiency::Params p;
  p.congestion = 0.3;
  TestbedEfficiency clean;
  TestbedEfficiency congested(p);
  EXPECT_NEAR(congested.network_eff(1e9), clean.network_eff(1e9) * 0.7, 1e-9);
  EXPECT_DOUBLE_EQ(congested.compute_eff(1e9), clean.compute_eff(1e9));
}

TEST(Calibrator, FitTracksGroundTruthClosely) {
  // The §4.3 self-correction loop: probe the "testbed", fit polynomials,
  // and check the calibrated curves track the truth to a couple percent
  // over the operating range.
  TestbedEfficiency truth;
  auto calib = Calibrator::probe(truth).fit();
  // Tightest in the operating range (LLM kernels/messages are MBs+);
  // the steep low-size knee is fit more loosely, which is fine because
  // those ops contribute little to the makespan.
  for (double x : {1e6, 1e7, 1e8, 1e9, 1e10}) {
    EXPECT_NEAR(calib.network_eff(x), truth.network_eff(x), 0.05) << "size " << x;
    EXPECT_NEAR(calib.compute_eff(x * 100), truth.compute_eff(x * 100), 0.05);
    EXPECT_NEAR(calib.memory_eff(x), truth.memory_eff(x), 0.05);
  }
}

TEST(Calibrator, UncalibratedDimensionsFallBackToTheoretical) {
  Calibrator c;
  c.add_network_sample(1e6, 0.5);
  c.add_network_sample(1e7, 0.6);
  c.add_network_sample(1e8, 0.7);
  c.add_network_sample(1e9, 0.8);
  c.add_network_sample(1e10, 0.85);
  auto fit = c.fit(2);
  EXPECT_DOUBLE_EQ(fit.compute_eff(1e9), 1.0);  // no samples -> basic model
  EXPECT_NEAR(fit.network_eff(1e8), 0.7, 0.05);
}

TEST(Calibrator, ClampsOutOfRangeExtrapolation) {
  TestbedEfficiency truth;
  auto calib = Calibrator::probe(truth, 1e6, 1e9, 24).fit();
  // Far outside the sampled range the polynomial may blow up; results
  // must stay in [0.01, 1].
  for (double x : {1.0, 1e15, 1e20}) {
    EXPECT_GE(calib.network_eff(x), 0.01);
    EXPECT_LE(calib.network_eff(x), 1.0);
  }
}

TEST(Calibrator, SampleCountTracksAdds) {
  Calibrator c;
  EXPECT_EQ(c.sample_count(), 0u);
  c.add_compute_sample(1e9, 0.5);
  c.add_memory_sample(1e6, 0.5);
  c.add_network_sample(-5, 0.5);  // invalid, ignored
  EXPECT_EQ(c.sample_count(), 2u);
}

}  // namespace
}  // namespace astral::seer
