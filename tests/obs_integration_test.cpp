// End-to-end flight-recorder coverage: a faulted recovery run with the
// Tracer and Metrics attached populates every track, correlates events
// across layers by the shared job/fault keys, and produces a
// deterministic Chrome trace + metrics snapshot.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "monitor/cluster_runtime.h"
#include "monitor/degrade.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace astral::monitor {
namespace {

topo::FabricParams fabric_params() {
  topo::FabricParams p;
  p.rails = 2;
  p.hosts_per_block = 8;
  p.blocks_per_pod = 2;
  p.pods = 1;
  return p;
}

JobConfig job_config() {
  JobConfig job;
  job.hosts = 12;
  job.iterations = 6;
  job.comm_bytes = 8ull * 1024 * 1024;
  job.recovery.enabled = true;
  job.job_id = 42;
  return job;
}

struct Capture {
  obs::Tracer tracer;
  obs::Metrics metrics;
  RunOutcome outcome;
};

Capture run_traced() {
  Capture cap;
  topo::Fabric fabric(fabric_params());
  ClusterRuntime rt(fabric, job_config(), /*seed=*/7);
  rt.inject(rt.make_fault(RootCause::OpticalFiber, Manifestation::FailStop,
                          /*at_iteration=*/2));
  rt.set_tracer(&cap.tracer);
  rt.set_metrics(&cap.metrics);
  cap.outcome = rt.run();
  return cap;
}

TEST(ObsIntegration, AllTracksPopulated) {
  // The telemetry track only speaks when a lossy collector model is
  // interposed (outage spans, loss counters); every other track
  // populates from the faulted recovery run itself.
  Capture cap;
  topo::Fabric fabric(fabric_params());
  ClusterRuntime rt(fabric, job_config(), /*seed=*/7);
  rt.inject(rt.make_fault(RootCause::OpticalFiber, Manifestation::FailStop,
                          /*at_iteration=*/2));
  TelemetryFaultModel model(DegradationProfile::mild(), /*seed=*/11);
  model.set_tracer(&cap.tracer);
  rt.set_telemetry_faults(&model);
  rt.set_tracer(&cap.tracer);
  rt.set_metrics(&cap.metrics);
  cap.outcome = rt.run();
  EXPECT_TRUE(cap.outcome.completed);
  for (int i = 0; i < obs::kTrackCount; ++i) {
    auto track = static_cast<obs::Track>(i);
    EXPECT_GT(cap.tracer.recorded(track), 0u) << obs::to_string(track);
  }
}

TEST(ObsIntegration, EventsInheritTheJobKey) {
  auto cap = run_traced();
  // Flow spans originate three layers below the runtime, yet carry the
  // ambient job id — the paper's cross-layer key chain.
  for (auto track : {obs::Track::Workload, obs::Track::Flow, obs::Track::Fault}) {
    auto evs = cap.tracer.events(track);
    ASSERT_FALSE(evs.empty());
    for (const auto& ev : evs) {
      EXPECT_EQ(ev.keys.job, 42) << obs::to_string(track) << " " << ev.name;
    }
  }
}

TEST(ObsIntegration, FaultChainSharesTheFaultId) {
  auto cap = run_traced();
  std::set<std::string> names;
  std::set<std::int64_t> fault_ids;
  for (const auto& ev : cap.tracer.events(obs::Track::Fault)) {
    names.insert(ev.name);
    if (ev.keys.fault >= 0) fault_ids.insert(ev.keys.fault);
  }
  for (const char* expected : {"fault.injected", "fault.detected", "fault.located",
                               "fault.mitigated"}) {
    EXPECT_TRUE(names.count(expected)) << expected;
  }
  EXPECT_EQ(fault_ids.size(), 1u);  // One injected fault, one shared id.
}

TEST(ObsIntegration, MttrPhasesDecomposeTheMitigation) {
  auto cap = run_traced();
  ASSERT_FALSE(cap.outcome.mitigations.empty());
  const auto& rec = cap.outcome.mitigations.front();
  double detect = -1.0, locate = -1.0, recover = -1.0;
  for (const auto& ev : cap.tracer.events(obs::Track::Fault)) {
    if (ev.phase != obs::TraceEvent::Phase::Span) continue;
    if (std::string(ev.name) == "mttr.detect") detect = ev.duration;
    if (std::string(ev.name) == "mttr.locate") locate = ev.duration;
    if (std::string(ev.name) == "mttr.recover") recover = ev.duration;
  }
  EXPECT_DOUBLE_EQ(detect, rec.detect_time);
  EXPECT_DOUBLE_EQ(locate, rec.locate_time);
  EXPECT_DOUBLE_EQ(recover, rec.recover_time);

  const auto* hist = cap.metrics.find_histogram("runtime.mttr_s");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count(), cap.outcome.mitigations.size());
}

TEST(ObsIntegration, MetricsMatchTheOutcomeLedger) {
  auto cap = run_traced();
  EXPECT_EQ(cap.metrics.counter("runtime.iterations.committed"),
            static_cast<std::uint64_t>(cap.outcome.committed_iterations));
  EXPECT_EQ(cap.metrics.counter("runtime.mitigations"),
            cap.outcome.mitigations.size());
  EXPECT_GT(cap.metrics.counter("fluidsim.flows.completed"), 0u);
  const auto* solve = cap.metrics.find_histogram("fluidsim.solve_us");
  ASSERT_NE(solve, nullptr);
  EXPECT_GT(solve->count(), 0u);
}

TEST(ObsIntegration, TraceAndSnapshotAreDeterministic) {
  auto a = run_traced();
  auto b = run_traced();
  EXPECT_EQ(a.tracer.to_chrome_trace().dump(), b.tracer.to_chrome_trace().dump());
  // The solver-step histogram is wall-clock timed, so only the sim-time
  // parts of the snapshot are expected to be bit-stable.
  EXPECT_EQ(a.metrics.to_json()["counters"].dump(),
            b.metrics.to_json()["counters"].dump());
  EXPECT_EQ(a.metrics.to_json()["histograms"]["runtime.mttr_s"].dump(),
            b.metrics.to_json()["histograms"]["runtime.mttr_s"].dump());
}

TEST(ObsIntegration, TracingDoesNotPerturbTheRun) {
  topo::Fabric fabric(fabric_params());
  ClusterRuntime plain(fabric, job_config(), /*seed=*/7);
  plain.inject(plain.make_fault(RootCause::OpticalFiber, Manifestation::FailStop, 2));
  auto baseline = plain.run();

  auto traced = run_traced();
  EXPECT_EQ(baseline.completed, traced.outcome.completed);
  EXPECT_EQ(baseline.committed_iterations, traced.outcome.committed_iterations);
  EXPECT_DOUBLE_EQ(baseline.makespan, traced.outcome.makespan);
  EXPECT_DOUBLE_EQ(baseline.goodput, traced.outcome.goodput);
}

}  // namespace
}  // namespace astral::monitor
