// Property test: the max-min solvers inside FluidSim must produce the
// same rates as the retained naive reference solver
// (src/net/maxmin_ref.{h,cpp}, the verbatim pre-incremental algorithm)
// across randomized topologies, degradations and arrival patterns.
//
// Each scenario builds a random fabric, injects a random flow schedule
// (single flows and same-start waves, via both inject and inject_batch),
// optionally degrades or blocks links (both before and mid-run), then
// steps the simulator through several checkpoints. At every checkpoint
// the reference solver is run over the live active set's paths and the
// current effective capacities; every flow's rate must match to 1e-9
// relative. The sweep runs in three configurations: the default
// pod-sharded engine, the legacy monolithic solver, and the sharded
// engine with boundary relaxation + reconciliation on 4 worker threads —
// pinning every engine (epoch-stamped scratch, lazy min-heap, island
// fast paths, shard partition caches, boundary pinning) to the naive
// semantics.
#include <gtest/gtest.h>

#include <vector>

#include "core/rng.h"
#include "core/units.h"
#include "net/fluid_sim.h"
#include "net/maxmin_ref.h"
#include "parallel/shard_seed.h"

namespace astral::net {
namespace {

using core::Seconds;

constexpr double kRelTol = 1e-9;

struct ScenarioStats {
  int scenarios = 0;
  int checkpoints = 0;
  long long rates_compared = 0;
  int degraded = 0;
  int blocked = 0;
  int batched = 0;
  std::size_t max_shards = 0;
  std::uint64_t reconcile_passes = 0;
};

void expect_rates_match(const FluidSim& sim, ScenarioStats& stats, int scenario) {
  auto active = sim.active_flows();
  if (active.empty()) return;
  ++stats.checkpoints;
  std::vector<std::vector<topo::LinkId>> paths;
  paths.reserve(active.size());
  for (FlowId id : active) paths.push_back(sim.flow(id).path);
  const std::size_t nlinks = sim.fabric().topo().link_count();
  std::vector<double> caps(nlinks);
  for (std::size_t l = 0; l < nlinks; ++l) {
    caps[l] = sim.effective_capacity(static_cast<topo::LinkId>(l));
  }
  static std::vector<double> ref_rates;
  MaxMinRef::solve(paths, caps, ref_rates);
  for (std::size_t i = 0; i < active.size(); ++i) {
    const double got = sim.current_rate(active[i]);
    const double want = ref_rates[i];
    const double tol = kRelTol * std::max({1.0, std::abs(got), std::abs(want)});
    ASSERT_NEAR(got, want, tol)
        << "scenario " << scenario << " flow " << active[i] << " of "
        << active.size() << " active";
    ++stats.rates_compared;
  }
}

// Runs `scenarios` randomized scenarios under `cfg` (optionally feeding
// the solver topology-derived locality domains) and checks every
// checkpoint against MaxMinRef. The rng seed is fixed, so every
// configuration sees the identical scenario sequence.
void run_randomized_sweep(const FluidSimConfig& cfg, bool locality_domains,
                          int scenarios, ScenarioStats& stats) {
  core::Rng rng(20250806);
  const topo::FabricStyle styles[] = {
      topo::FabricStyle::AstralSameRail, topo::FabricStyle::RailOptimized,
      topo::FabricStyle::Clos, topo::FabricStyle::RailOnly};

  for (int sc = 0; sc < scenarios; ++sc) {
    topo::FabricParams p;
    p.style = styles[rng.uniform_int(4)];
    p.rails = 2 + 2 * static_cast<int>(rng.uniform_int(2));  // 2 or 4
    p.hosts_per_block = 2 + static_cast<int>(rng.uniform_int(3));
    p.blocks_per_pod = 1 + static_cast<int>(rng.uniform_int(2));
    p.pods = 1 + static_cast<int>(rng.uniform_int(2));
    p.dual_tor = rng.chance(0.5);
    p.tier3_oversub = rng.chance(0.3) ? 2.0 : 1.0;
    topo::Fabric fabric(p);
    FluidSim sim(fabric, cfg, /*seed=*/7 + static_cast<std::uint64_t>(sc));
    if (locality_domains) {
      sim.set_shard_domains(parallel::link_locality_domains(fabric));
    }
    auto hosts = fabric.topo().hosts();
    // Rail-only fabrics have no inter-pod connectivity: stay in pod 0.
    std::size_t usable = p.style == topo::FabricStyle::RailOnly
                             ? hosts.size() / static_cast<std::size_t>(p.pods)
                             : hosts.size();

    // Pre-run degradations (sometimes blocking a link entirely).
    const std::size_t nlinks = fabric.topo().link_count();
    if (rng.chance(0.4)) {
      int n = 1 + static_cast<int>(rng.uniform_int(3));
      for (int d = 0; d < n; ++d) {
        auto l = static_cast<topo::LinkId>(rng.uniform_int(nlinks));
        double factor = rng.chance(0.3) ? 0.0 : rng.uniform(0.1, 0.9);
        sim.degrade_link(l, factor);
        if (factor == 0.0) ++stats.blocked; else ++stats.degraded;
      }
    }

    // Flow schedule: 1-4 waves; each wave has one start time, and some
    // waves go through inject_batch (the collective-runner path).
    const int waves = 1 + static_cast<int>(rng.uniform_int(4));
    for (int w = 0; w < waves; ++w) {
      Seconds start = w == 0 ? 0.0 : core::usec(30.0 * w);
      const int nflows = 1 + static_cast<int>(rng.uniform_int(24));
      std::vector<FlowSpec> specs;
      for (int i = 0; i < nflows; ++i) {
        FlowSpec s;
        std::size_t a = rng.uniform_int(usable);
        std::size_t b = rng.uniform_int(usable);
        s.src_host = hosts[a];
        s.dst_host = hosts[b];
        int rail = static_cast<int>(rng.uniform_int(static_cast<std::uint64_t>(p.rails)));
        s.src_rail = rail;
        // Occasionally cross-rail (unroutable on RailOnly: exercises the
        // rejected-flow path).
        s.dst_rail = rng.chance(0.2)
                         ? static_cast<int>(rng.uniform_int(static_cast<std::uint64_t>(p.rails)))
                         : rail;
        s.size = (1 + rng.uniform_int(32)) * (1 << 20);
        s.start = start;
        s.tag = static_cast<std::uint64_t>(w * 1000 + i);
        s.src_port = static_cast<std::uint16_t>(rng.uniform_int(1 << 16));
        specs.push_back(s);
      }
      if (rng.chance(0.5)) {
        sim.inject_batch(specs);
        ++stats.batched;
      } else {
        for (const auto& s : specs) sim.inject(s);
      }
    }

    // Step through checkpoints; maybe degrade mid-run.
    const Seconds checkpoints[] = {core::usec(20), core::usec(80),
                                   core::usec(400), core::msec(2)};
    for (Seconds t : checkpoints) {
      sim.run(t);
      if (rng.chance(0.15)) {
        auto l = static_cast<topo::LinkId>(rng.uniform_int(nlinks));
        sim.degrade_link(l, rng.chance(0.3) ? 0.0 : rng.uniform(0.2, 1.0));
      }
      expect_rates_match(sim, stats, sc);
      if (::testing::Test::HasFatalFailure()) return;
      stats.max_shards = std::max(stats.max_shards, sim.solver_shard_count());
    }
    // Bounded drain: blocked flows may legitimately never finish.
    sim.run(1.0);
    expect_rates_match(sim, stats, sc);
    if (::testing::Test::HasFatalFailure()) return;
    stats.reconcile_passes += sim.solver_reconcile_passes();
    ++stats.scenarios;
  }
}

TEST(SolverEquivalence, RandomizedScenariosMatchNaiveReference) {
  ScenarioStats stats;
  run_randomized_sweep(FluidSimConfig{}, /*locality_domains=*/false, 1100, stats);
  EXPECT_GE(stats.scenarios, 1000);
  // The sweep must actually exercise the interesting paths.
  EXPECT_GT(stats.checkpoints, 2000);
  EXPECT_GT(stats.rates_compared, 10000);
  EXPECT_GT(stats.degraded, 100);
  EXPECT_GT(stats.blocked, 50);
  EXPECT_GT(stats.batched, 300);
  // Exact component sharding must split the constraint graph sometimes.
  EXPECT_GT(stats.max_shards, 1u);
}

// The pre-sharding monolithic solver stays available (cfg.sharding =
// false) and must still match the reference — it is the baseline the
// determinism test pins the sharded engine against.
TEST(SolverEquivalence, LegacyMonolithicSolverMatchesReference) {
  FluidSimConfig cfg;
  cfg.sharding = false;
  ScenarioStats stats;
  run_randomized_sweep(cfg, /*locality_domains=*/false, 300, stats);
  EXPECT_GE(stats.scenarios, 300);
  EXPECT_GT(stats.checkpoints, 500);
  EXPECT_GT(stats.rates_compared, 3000);
}

// Boundary relaxation (pod-locality domains + sequential reconciliation)
// on 4 worker threads: shard discovery drops core-tier links, saturated
// boundaries are pinned back, and the fixed point must still match the
// global reference to 1e-9.
TEST(SolverEquivalence, RelaxedDomainsParallelMatchReference) {
  FluidSimConfig cfg;
  cfg.solver_threads = 4;
  ScenarioStats stats;
  run_randomized_sweep(cfg, /*locality_domains=*/true, 300, stats);
  EXPECT_GE(stats.scenarios, 300);
  EXPECT_GT(stats.checkpoints, 500);
  EXPECT_GT(stats.rates_compared, 3000);
  EXPECT_GT(stats.max_shards, 1u);
  // Oversubscribed cross-pod scenarios must saturate boundaries and force
  // reconciliation re-solves, or the pinning path went untested.
  EXPECT_GT(stats.reconcile_passes, 0u);
}

// resolve_rates() must be idempotent: re-solving an unchanged active set
// reproduces identical (not merely close) rates.
TEST(SolverEquivalence, ResolveIsIdempotent) {
  topo::FabricParams p;
  p.rails = 4;
  p.hosts_per_block = 4;
  p.blocks_per_pod = 2;
  p.pods = 2;
  topo::Fabric fabric(p);
  FluidSim sim(fabric);
  auto hosts = fabric.topo().hosts();
  for (int i = 0; i < 64; ++i) {
    FlowSpec s;
    s.src_host = hosts[static_cast<std::size_t>(i) % hosts.size()];
    s.dst_host = hosts[(static_cast<std::size_t>(i) + 7) % hosts.size()];
    s.src_rail = i % 4;
    s.dst_rail = i % 4;
    s.size = 64 * 1024 * 1024;
    s.tag = static_cast<std::uint64_t>(i);
    sim.inject(s);
  }
  sim.run(core::usec(50));
  auto active = sim.active_flows();
  ASSERT_FALSE(active.empty());
  std::vector<double> before;
  for (FlowId id : active) before.push_back(sim.current_rate(id));
  sim.resolve_rates();
  sim.resolve_rates();
  for (std::size_t i = 0; i < active.size(); ++i) {
    EXPECT_DOUBLE_EQ(sim.current_rate(active[i]), before[i]);
  }
}

// A wave arriving on links that nobody else uses takes the island fast
// path; a wave overlapping existing flows takes the full solve. Both must
// match the reference.
TEST(SolverEquivalence, DisjointAndOverlappingWavesMatchReference) {
  topo::FabricParams p;
  p.rails = 4;
  p.hosts_per_block = 4;
  p.blocks_per_pod = 2;
  p.pods = 1;
  topo::Fabric fabric(p);
  FluidSim sim(fabric);
  auto hosts = fabric.topo().hosts();
  ScenarioStats stats;

  // Long-lived background flow on rail 0.
  FlowSpec bg;
  bg.src_host = hosts[0];
  bg.dst_host = hosts[4];
  bg.src_rail = 0;
  bg.dst_rail = 0;
  bg.size = static_cast<core::Bytes>(1) << 40;
  bg.tag = 1;
  sim.inject(bg);

  // Disjoint wave on rail 2 (island fast path), then an overlapping wave
  // on rail 0 sharing the background's NIC port (full solve).
  std::vector<FlowSpec> disjoint;
  for (int i = 0; i < 6; ++i) {
    FlowSpec s;
    s.src_host = hosts[static_cast<std::size_t>(1 + i % 3)];
    s.dst_host = hosts[static_cast<std::size_t>(5 + i % 3)];
    s.src_rail = 2;
    s.dst_rail = 2;
    s.size = 8 * 1024 * 1024;
    s.start = core::usec(10);
    s.tag = static_cast<std::uint64_t>(100 + i);
    disjoint.push_back(s);
  }
  sim.inject_batch(disjoint);
  std::vector<FlowSpec> overlapping;
  for (int i = 0; i < 6; ++i) {
    FlowSpec s;
    s.src_host = hosts[0];
    s.dst_host = hosts[4];
    s.src_rail = 0;
    s.dst_rail = 0;
    s.size = 8 * 1024 * 1024;
    s.start = core::usec(20);
    s.tag = static_cast<std::uint64_t>(200 + i);
    overlapping.push_back(s);
  }
  sim.inject_batch(overlapping);

  for (Seconds t : {core::usec(15), core::usec(25), core::usec(200), core::msec(5)}) {
    sim.run(t);
    expect_rates_match(sim, stats, -1);
    if (::testing::Test::HasFatalFailure()) return;
  }
  EXPECT_GE(stats.checkpoints, 4);
}

}  // namespace
}  // namespace astral::net
