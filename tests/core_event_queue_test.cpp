#include "core/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace astral::core {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, TiesBreakFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) q.schedule_at(1.0, [&, i] { order.push_back(i); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, HandlersCanScheduleMore) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1.0, [&] {
    ++fired;
    q.schedule_in(0.5, [&] { ++fired; });
  });
  q.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(q.now(), 1.5);
}

TEST(EventQueue, RunUntilStopsEarly) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1.0, [&] { ++fired; });
  q.schedule_at(5.0, [&] { ++fired; });
  q.run(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.pending(), 1u);
  q.run();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, PastSchedulingClampsToNow) {
  EventQueue q;
  double seen = -1;
  q.schedule_at(2.0, [&] {
    q.schedule_at(1.0, [&] { seen = q.now(); });  // in the past
  });
  q.run();
  EXPECT_DOUBLE_EQ(seen, 2.0);
}

TEST(EventQueue, RunToTimeAdvancesClockWhenEmpty) {
  EventQueue q;
  q.run(7.5);
  EXPECT_DOUBLE_EQ(q.now(), 7.5);
}

}  // namespace
}  // namespace astral::core
