#include "seer/templates.h"

#include <gtest/gtest.h>

#include <set>

#include "seer/configs.h"

namespace astral::seer {
namespace {

parallel::ParallelismConfig cfg(int tp, int dp, int pp, int ep = 1) {
  return parallel::ParallelismConfig{.tp = tp, .dp = dp, .pp = pp, .ep = ep};
}

TEST(Templates, DenseTrainGraphValidates) {
  auto g = build_graph(ModelSpec::llama3_70b(), cfg(8, 4, 2), WorkloadShape{});
  EXPECT_TRUE(g.validate());
  EXPECT_GT(g.ops.size(), 100u);
}

TEST(Templates, Table1OperatorInventoryForLlama3) {
  // Table 1 of the paper: the LLaMA-3 operator list in Seer.
  WorkloadShape shape;
  shape.phase = Phase::Prefill;  // forward ops only, as the table lists
  auto g = build_graph(ModelSpec::llama3_70b(), cfg(8, 1, 4), shape);
  std::set<std::string> names;
  for (const auto& op : g.ops) names.insert(op.name);
  for (const char* expected :
       {"LoadWeight", "EmbeddingComputation", "PPRecv", "RMSNormLoadWeight",
        "RMSNormComputation", "GQAQKVLoadWeight", "GQAQKVComputation", "GQACoreAttn",
        "GQAAttnProjLoadWeight", "GQAAttnProjComputation", "AttnTPAllReduce",
        "SwiMLPUpProj", "SwiMLPGateProj", "SwiMLPDownProj", "MLPTPAllReduce", "PPSend"}) {
    EXPECT_TRUE(names.contains(expected)) << "missing " << expected;
  }
}

TEST(Templates, InventoryTypesMatchTable1) {
  WorkloadShape shape;
  shape.phase = Phase::Prefill;
  auto g = build_graph(ModelSpec::llama3_70b(), cfg(8, 1, 4), shape);
  auto inv = op_inventory(g);
  auto type_of = [&](const std::string& name) -> std::string {
    for (const auto& row : inv) {
      if (row.name == name) return row.type;
    }
    return "absent";
  };
  EXPECT_EQ(type_of("LoadWeight"), "Mem.");
  EXPECT_EQ(type_of("EmbeddingComputation"), "Comp.");
  EXPECT_EQ(type_of("PPRecv"), "Comm.");
  EXPECT_EQ(type_of("RMSNormLoadWeight"), "Mem.");
  EXPECT_EQ(type_of("GQACoreAttn"), "Comp.");
  EXPECT_EQ(type_of("AttnTPAllReduce"), "Comm.");
  EXPECT_EQ(type_of("SwiMLPUpProj"), "Mem. + Comp.");
  EXPECT_EQ(type_of("SwiMLPGateProj"), "Mem. + Comp.");
  EXPECT_EQ(type_of("SwiMLPDownProj"), "Mem. + Comp.");
}

TEST(Templates, NoTpMeansNoTpCollectives) {
  auto g = build_graph(ModelSpec::tiny(), cfg(1, 1, 1), WorkloadShape{});
  for (const auto& op : g.ops) {
    EXPECT_EQ(op.name.find("TPAllReduce"), std::string::npos) << op.name;
  }
}

TEST(Templates, NoPpMeansNoPpOps) {
  auto g = build_graph(ModelSpec::tiny(), cfg(2, 2, 1), WorkloadShape{});
  for (const auto& op : g.ops) {
    EXPECT_NE(op.name.substr(0, 2), "PP") << op.name;
  }
}

TEST(Templates, TrainingAddsBackwardAndDpSync) {
  auto fwd_only = [&] {
    WorkloadShape s;
    s.phase = Phase::Prefill;
    return build_graph(ModelSpec::tiny(), cfg(2, 4, 1), s);
  }();
  auto train = build_graph(ModelSpec::tiny(), cfg(2, 4, 1), WorkloadShape{});
  EXPECT_GT(train.ops.size(), fwd_only.ops.size());
  int dp_ops = 0;
  for (const auto& op : train.ops) {
    if (op.name.rfind("DPGradAllReduce", 0) == 0) ++dp_ops;
  }
  EXPECT_EQ(dp_ops, WorkloadShape{}.dp_buckets);
}

TEST(Templates, DpSyncBytesMatchShardSize) {
  auto model = ModelSpec::tiny();
  auto c = cfg(2, 4, 2);
  auto g = build_graph(model, c, WorkloadShape{});
  double dp_bytes = 0;
  for (const auto& op : g.ops) {
    if (op.name.rfind("DPGradAllReduce", 0) == 0) dp_bytes += op.comm_bytes;
  }
  double expected = model.params() / (c.tp * c.pp) * model.param_bytes;
  EXPECT_NEAR(dp_bytes, expected, expected * 1e-9);
}

TEST(Templates, MoeUsesAllToAllInsteadOfDenseMlp) {
  auto g = build_graph(ModelSpec::hunyuan_moe(), cfg(4, 8, 2, 8), WorkloadShape{});
  std::set<std::string> names;
  for (const auto& op : g.ops) names.insert(op.name);
  EXPECT_TRUE(names.contains("MoEDispatchAllToAll"));
  EXPECT_TRUE(names.contains("MoECombineAllToAll"));
  EXPECT_TRUE(names.contains("ExpertUpProj"));
  EXPECT_FALSE(names.contains("SwiMLPUpProj"));
  // EP group size propagated.
  for (const auto& op : g.ops) {
    if (op.name == "MoEDispatchAllToAll") {
      EXPECT_EQ(op.comm_group, 8);
    }
  }
}

TEST(Templates, Zero3AddsWeightGathersAndReduceScatter) {
  WorkloadShape shape;
  shape.dp_strategy = DpStrategy::Zero3;
  auto g = build_graph(ModelSpec::tiny(), cfg(2, 4, 1), shape);
  int gathers = 0;
  int rs = 0;
  for (const auto& op : g.ops) {
    if (op.name.rfind("ZeroWeightAllGather", 0) == 0) ++gathers;
    if (op.name.rfind("DPGradReduceScatter", 0) == 0) ++rs;
  }
  EXPECT_GT(gathers, 0);
  EXPECT_EQ(rs, shape.dp_buckets);
  // ZeRO-3 moves strictly more bytes than plain DP.
  auto plain = build_graph(ModelSpec::tiny(), cfg(2, 4, 1), WorkloadShape{});
  EXPECT_GT(g.total_comm_bytes(), plain.total_comm_bytes() * 2);
}

TEST(Templates, CrossDcFlagsOnlyTheChosenDimension) {
  WorkloadShape pp_dc;
  pp_dc.cross_dc = CrossDcDim::PP;
  auto g = build_graph(ModelSpec::tiny(), cfg(2, 2, 2), pp_dc);
  for (const auto& op : g.ops) {
    if (op.cross_dc) EXPECT_EQ(op.name.substr(0, 2), "PP") << op.name;
  }
  WorkloadShape dp_dc;
  dp_dc.cross_dc = CrossDcDim::DP;
  auto g2 = build_graph(ModelSpec::tiny(), cfg(2, 2, 2), dp_dc);
  bool any = false;
  for (const auto& op : g2.ops) {
    if (op.cross_dc) {
      any = true;
      EXPECT_NE(op.name.rfind("DPGrad", 0), std::string::npos);
    }
  }
  EXPECT_TRUE(any);
}

TEST(Templates, DecodeIsMemoryBoundInAttention) {
  WorkloadShape shape;
  shape.phase = Phase::Decode;
  shape.micro_batch = 16;
  shape.ctx_len = 8192;
  auto g = build_graph(ModelSpec::llama3_70b(), cfg(8, 1, 1), shape);
  for (const auto& op : g.ops) {
    if (op.name == "GQACoreAttn") {
      // KV-cache read bytes dwarf the per-token flops time on any GPU.
      EXPECT_GT(op.mem_bytes, 0.0);
      EXPECT_GT(op.mem_bytes / GpuSpec::h100().hbm_bw,
                op.flops / GpuSpec::h100().flops);
    }
  }
}

TEST(Templates, LayersDividedAcrossPipelineStages) {
  auto model = ModelSpec::llama3_70b();  // 80 layers
  auto g1 = build_graph(model, cfg(8, 1, 1), WorkloadShape{});
  auto g8 = build_graph(model, cfg(8, 1, 8), WorkloadShape{});
  auto count_attn = [](const OpGraph& g) {
    int n = 0;
    for (const auto& op : g.ops) n += op.name == "GQACoreAttn" ? 1 : 0;
    return n;
  };
  EXPECT_EQ(count_attn(g1), 80);
  EXPECT_EQ(count_attn(g8), 10);
}

TEST(Templates, ModelSpecSanity) {
  // Parameter counts should land near the published sizes.
  EXPECT_NEAR(ModelSpec::gpt3_175b().params(), 175e9, 15e9);
  EXPECT_NEAR(ModelSpec::llama3_70b().params(), 70e9, 8e9);
  EXPECT_NEAR(ModelSpec::llama3_405b().params(), 405e9, 40e9);
  EXPECT_GT(ModelSpec::hunyuan_moe().params(), 3e11);  // MoE total
  EXPECT_LT(ModelSpec::hunyuan_moe().active_params(),
            ModelSpec::hunyuan_moe().params() / 3);
}

}  // namespace
}  // namespace astral::seer
