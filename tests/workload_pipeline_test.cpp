#include "workload/pipeline.h"

#include <gtest/gtest.h>

#include "workload/trainer.h"

namespace astral::workload {
namespace {

std::vector<core::Seconds> uniform(int pp, double v) {
  return std::vector<core::Seconds>(static_cast<std::size_t>(pp), v);
}

TEST(Pipeline1F1B, SingleStageIsSequential) {
  auto plan = schedule_1f1b(uniform(1, 2.0), uniform(1, 3.0), 4);
  EXPECT_DOUBLE_EQ(plan.makespan, 4 * 5.0);
  EXPECT_NEAR(plan.bubble_fraction, 0.0, 1e-12);
}

TEST(Pipeline1F1B, EqualStagesMatchClosedForm) {
  // The Trainer's closed form: (mb + pp - 1) * (tf + tb).
  for (int pp : {2, 4, 8}) {
    for (int mb : {pp, 2 * pp, 4 * pp}) {
      auto plan = schedule_1f1b(uniform(pp, 1.0), uniform(pp, 2.0), mb);
      EXPECT_NEAR(plan.makespan, (mb + pp - 1) * 3.0, 1e-9)
          << "pp=" << pp << " mb=" << mb;
    }
  }
}

TEST(Pipeline1F1B, BubbleFractionShrinksWithMicrobatches) {
  auto small = schedule_1f1b(uniform(4, 1.0), uniform(4, 2.0), 4);
  auto big = schedule_1f1b(uniform(4, 1.0), uniform(4, 2.0), 32);
  EXPECT_GT(small.bubble_fraction, big.bubble_fraction);
  // Closed form for the bubble: (pp-1)/(mb+pp-1) = 3/35 at mb=32, pp=4.
  EXPECT_NEAR(big.bubble_fraction, 3.0 / 35.0, 1e-9);
}

TEST(Pipeline1F1B, DependenciesHold) {
  auto plan = schedule_1f1b(uniform(4, 1.0), uniform(4, 1.5), 8);
  auto find = [&](int stage, int micro, bool bwd) -> const StageSlot* {
    for (const auto& s : plan.slots) {
      if (s.stage == stage && s.micro == micro && s.backward == bwd) return &s;
    }
    return nullptr;
  };
  for (int m = 0; m < 8; ++m) {
    for (int s = 1; s < 4; ++s) {
      EXPECT_GE(find(s, m, false)->start, find(s - 1, m, false)->end - 1e-12);
    }
    for (int s = 0; s < 3; ++s) {
      EXPECT_GE(find(s, m, true)->start, find(s + 1, m, true)->end - 1e-12);
    }
    EXPECT_GE(find(3, m, true)->start, find(3, m, false)->end - 1e-12);
  }
}

TEST(Pipeline1F1B, SlowestStageDominatesUnequalPipelines) {
  std::vector<core::Seconds> fwd{1.0, 1.0, 3.0, 1.0};  // stage 2 is slow
  std::vector<core::Seconds> bwd{2.0, 2.0, 6.0, 2.0};
  auto plan = schedule_1f1b(fwd, bwd, 16);
  // Steady state is gated by the slow stage: >= mb * (3 + 6).
  EXPECT_GE(plan.makespan, 16 * 9.0 - 1e-9);
  // And the slow stage has (almost) no bubble.
  EXPECT_NEAR(plan.stage_busy[2], 16 * 9.0, 1e-9);
}

TEST(Pipeline1F1B, ActivationResidencyNeverExceedsPp) {
  // Count in-flight microbatches per stage: forwards done minus
  // backwards done must never exceed pp - s (the 1F1B memory bound).
  const int pp = 4;
  auto plan = schedule_1f1b(uniform(pp, 1.0), uniform(pp, 2.0), 12);
  for (int s = 0; s < pp; ++s) {
    std::vector<std::pair<double, int>> events;  // (time, +1/-1)
    for (const auto& slot : plan.slots) {
      if (slot.stage != s) continue;
      if (!slot.backward) {
        events.push_back({slot.end, +1});
      } else {
        events.push_back({slot.end, -1});
      }
    }
    std::sort(events.begin(), events.end());
    int live = 0;
    int peak = 0;
    for (auto [t, d] : events) {
      live += d;
      peak = std::max(peak, live);
    }
    EXPECT_LE(peak, pp - s) << "stage " << s;
  }
}

TEST(Pipeline1F1B, CrossValidatesTrainerClosedForm) {
  // The trainer's iteration estimate must match the explicit schedule on
  // its own micro-time.
  TrainingSetup s;
  s.model = seer::ModelSpec::llama3_70b();
  s.parallel = {.tp = 8, .dp = 8, .pp = 4, .ep = 1};
  s.global_batch = 128;
  auto f = Trainer(s).forecast_iteration();
  int mb = s.num_microbatches();
  // Split micro_time into fwd/bwd thirds (fwd ~ 1/3, bwd ~ 2/3).
  double tf = f.micro_time / 3.0;
  double tb = f.micro_time * 2.0 / 3.0;
  auto plan = schedule_1f1b(uniform(4, tf), uniform(4, tb), mb);
  EXPECT_NEAR(plan.makespan + f.dp_exposed, f.iteration_time,
              f.iteration_time * 1e-6);
}

}  // namespace
}  // namespace astral::workload
