// Property sweeps over the fabric-parameter grid: structural invariants
// that must hold for every architecture and size combination.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "topo/fabric.h"

namespace astral::topo {
namespace {

// (style, rails, hosts_per_block, blocks_per_pod, pods, dual_tor)
using Params = std::tuple<FabricStyle, int, int, int, int, bool>;

class FabricProperty : public ::testing::TestWithParam<Params> {
 protected:
  FabricParams params() const {
    auto [style, rails, hosts, blocks, pods, dual] = GetParam();
    FabricParams p;
    p.style = style;
    p.rails = rails;
    p.hosts_per_block = hosts;
    p.blocks_per_pod = blocks;
    p.pods = pods;
    p.dual_tor = dual;
    return p;
  }
};

TEST_P(FabricProperty, GpuIndexBijection) {
  Fabric f(params());
  std::set<std::pair<NodeId, int>> seen;
  for (int g = 0; g < f.gpu_count(); ++g) {
    GpuLoc loc = f.gpu(g);
    EXPECT_TRUE(seen.insert({loc.host, loc.rail}).second) << "gpu " << g;
    EXPECT_LT(loc.rail, params().rails);
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(f.gpu_count()));
}

TEST_P(FabricProperty, EveryHostHasAllRegisteredUplinks) {
  auto p = params();
  Fabric f(p);
  for (NodeId h : f.topo().hosts()) {
    for (int r = 0; r < p.rails; ++r) {
      for (int s = 0; s < p.sides(); ++s) {
        LinkId up = f.topo().host_uplink(h, r, s);
        ASSERT_NE(up, kInvalidLink);
        EXPECT_EQ(f.topo().link(up).src, h);
        EXPECT_EQ(f.topo().node(f.topo().link(up).dst).kind, NodeKind::Tor);
      }
    }
  }
}

TEST_P(FabricProperty, Tier1And2BandwidthIdentical) {
  Fabric f(params());
  double t1 = f.topo().tier_bandwidth(NodeKind::Host, NodeKind::Tor);
  double t2 = f.topo().tier_bandwidth(NodeKind::Tor, NodeKind::Agg);
  // P2 holds across every style (full-mesh variants preserve aggregate
  // bandwidth; they differ in structure, not capacity).
  EXPECT_GE(t2, t1 * 0.999);
}

TEST_P(FabricProperty, Tier3MatchesWhenPresent) {
  auto p = params();
  Fabric f(p);
  double t2 = f.topo().tier_bandwidth(NodeKind::Tor, NodeKind::Agg);
  double t3 = f.topo().tier_bandwidth(NodeKind::Agg, NodeKind::Core);
  if (p.style == FabricStyle::RailOnly) {
    EXPECT_DOUBLE_EQ(t3, 0.0);
  } else if (p.style == FabricStyle::UBMesh) {
    // No Core tier: dimension 3 is the border-switch full mesh, present
    // exactly when there is more than one Pod to interconnect.
    EXPECT_DOUBLE_EQ(t3, 0.0);
    double mesh = f.topo().tier_bandwidth(NodeKind::Agg, NodeKind::Agg);
    if (p.pods > 1) {
      EXPECT_GT(mesh, 0.0);
    } else {
      EXPECT_DOUBLE_EQ(mesh, 0.0);
    }
  } else {
    EXPECT_NEAR(t3 / t2, 1.0, 1e-9);
  }
}

TEST_P(FabricProperty, SameRailPairsReachableEverywhere) {
  auto p = params();
  Fabric f(p);
  // First GPU of rail 0 vs the farthest same-rail GPU. Rail-only fabrics
  // have no Core tier, so their reach ends at the Pod boundary.
  NodeId a = f.gpu(0).host;
  int last = p.style == FabricStyle::RailOnly
                 ? p.blocks_per_pod * p.hosts_per_block * p.rails - p.rails
                 : f.gpu_count() - p.rails;
  NodeId b = f.gpu(last).host;
  if (a != b) EXPECT_GT(f.topo().distance(a, b), 0);
  if (p.style == FabricStyle::RailOnly && p.pods > 1) {
    EXPECT_EQ(f.topo().distance(a, f.gpu(f.gpu_count() - p.rails).host), -1);
  }
}

TEST_P(FabricProperty, PathsNeverTransitHosts) {
  auto p = params();
  Fabric f(p);
  NodeId a = f.host_at(0, 0, 0);
  NodeId b = f.host_at(p.pods - 1, p.blocks_per_pod - 1, p.hosts_per_block - 1);
  if (f.topo().distance(a, b) < 0) return;  // rail-only cross reach gaps
  for (const auto& path : f.topo().shortest_paths(a, b, 16)) {
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      NodeId mid = f.topo().link(path[i]).dst;
      EXPECT_NE(f.topo().node(mid).kind, NodeKind::Host);
    }
  }
}

TEST_P(FabricProperty, SwitchDegreesBalanced) {
  auto p = params();
  Fabric f(p);
  // Every Agg of a fabric has the same total down-capacity: balanced
  // designs keep hotspot risk structural, not accidental.
  std::map<NodeId, double> agg_down;
  for (const auto& l : f.topo().links()) {
    if (f.topo().node(l.src).kind == NodeKind::Tor &&
        f.topo().node(l.dst).kind == NodeKind::Agg) {
      agg_down[l.dst] += l.capacity;
    }
  }
  if (agg_down.empty()) return;
  double first = agg_down.begin()->second;
  for (const auto& [agg, cap] : agg_down) EXPECT_NEAR(cap, first, first * 1e-9);
}

std::string param_name(const ::testing::TestParamInfo<Params>& info) {
  auto [style, rails, hosts, blocks, pods, dual] = info.param;
  std::string name = to_string(style);
  for (auto& c : name) {
    if (c == '-') c = '_';
  }
  return name + "_r" + std::to_string(rails) + "h" + std::to_string(hosts) + "b" +
         std::to_string(blocks) + "p" + std::to_string(pods) +
         (dual ? "_dual" : "_single");
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FabricProperty,
    ::testing::Combine(
        ::testing::Values(FabricStyle::AstralSameRail, FabricStyle::RailOptimized,
                          FabricStyle::Clos, FabricStyle::RailOnly,
                          FabricStyle::UBMesh),
        ::testing::Values(2, 4),        // rails
        ::testing::Values(4, 8),        // hosts per block
        ::testing::Values(2, 4),        // blocks per pod
        ::testing::Values(1, 2),        // pods
        ::testing::Values(true, false)  // dual ToR
        ),
    param_name);

}  // namespace
}  // namespace astral::topo
