// Streaming-vs-batch equivalence and bounded-memory contracts of the
// always-on diagnosis service (monitor::StreamAnalyzer). The streaming
// analyzer's final diagnosis must EQUAL HierarchicalAnalyzer::diagnose()
// (operator==, confidence and evidence chain included) on every
// diagnose_failure scenario, clean and degraded; its rollup footprint
// must plateau while the store's record count keeps growing.
#include "monitor/stream_analyzer.h"

#include <gtest/gtest.h>

#include "monitor/cluster_runtime.h"
#include "monitor/degrade.h"
#include "obs/metrics.h"

namespace astral::monitor {
namespace {

topo::Fabric test_fabric(int pods = 1) {
  topo::FabricParams p;
  p.rails = 2;
  p.hosts_per_block = 8;
  p.blocks_per_pod = 2;
  p.pods = pods;
  return topo::Fabric(p);
}

JobConfig small_job() {
  JobConfig j;
  j.hosts = 8;
  j.iterations = 5;
  j.comm_bytes = 8ull * 1024 * 1024;
  return j;
}

struct Scenario {
  const char* name;
  RootCause cause;
  Manifestation manifestation;
};

// The diagnose_failure scenario table plus the two causes the example
// leaves to tests (LinkFlap, WireConnection) and the healthy baseline.
const Scenario kScenarios[] = {
    {"optical", RootCause::OpticalFiber, Manifestation::FailSlow},
    {"switch_bug", RootCause::SwitchBug, Manifestation::FailHang},
    {"switch_config", RootCause::SwitchConfig, Manifestation::FailSlow},
    {"pcie", RootCause::PcieDegrade, Manifestation::FailSlow},
    {"gpu", RootCause::GpuHardware, Manifestation::FailStop},
    {"memory", RootCause::Memory, Manifestation::FailStop},
    {"nic", RootCause::NicError, Manifestation::FailStop},
    {"user_code", RootCause::UserCode, Manifestation::FailStop},
    {"env", RootCause::HostEnvConfig, Manifestation::FailOnStart},
    {"ccl", RootCause::CclBug, Manifestation::FailHang},
    {"link_flap", RootCause::LinkFlap, Manifestation::FailStop},
    {"wire", RootCause::WireConnection, Manifestation::FailStop},
};

class StreamEquivalence : public ::testing::TestWithParam<Scenario> {};

TEST_P(StreamEquivalence, FinalDiagnosisEqualsBatch) {
  const Scenario& sc = GetParam();
  auto f = test_fabric();
  StreamAnalyzer stream(f.topo());  // outlives the runtime
  ClusterRuntime rt(f, small_job(), 33);
  rt.set_stream_analyzer(&stream);
  rt.inject(rt.make_fault(sc.cause, sc.manifestation, 2));
  rt.run();

  HierarchicalAnalyzer batch(rt.telemetry(), f.topo(), rt.expected_compute(),
                             rt.expected_comm());
  Diagnosis expected = batch.diagnose();
  Diagnosis got = stream.diagnosis();
  EXPECT_EQ(got, expected) << sc.name;
  EXPECT_TRUE(stream.online_anomaly());
  EXPECT_GE(stream.revisions(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Scenarios, StreamEquivalence,
                         ::testing::ValuesIn(kScenarios),
                         [](const auto& info) { return std::string(info.param.name); });

TEST(StreamAnalyzer, HealthyRunEqualsBatchAndStaysCalm) {
  auto f = test_fabric();
  StreamAnalyzer stream(f.topo());
  ClusterRuntime rt(f, small_job(), 1);
  rt.set_stream_analyzer(&stream);
  rt.run();

  HierarchicalAnalyzer batch(rt.telemetry(), f.topo(), rt.expected_compute(),
                             rt.expected_comm());
  EXPECT_EQ(stream.diagnosis(), batch.diagnose());
  // No online trigger fired: the one diagnosis happened lazily on read.
  EXPECT_FALSE(stream.online_anomaly());
  EXPECT_EQ(stream.revisions(), 1u);
  EXPECT_GT(stream.records_ingested(), 0u);
}

// Degraded-telemetry equivalence: both analyzers read the SAME lossy
// store (the model interposes before ingestion), both widen their
// clock-skew tolerance per the campaign convention — outputs match
// exactly for every profile, which keeps the streaming service inside
// the batch analyzer's calibration contract.
TEST(StreamAnalyzer, DegradedProfilesMatchBatch) {
  struct ProfileCase {
    const char* name;
    DegradationProfile profile;
  };
  const ProfileCase cases[] = {
      {"clean", DegradationProfile::clean()},
      {"mild", DegradationProfile::mild()},
      {"severe", DegradationProfile::severe()},
      {"adversarial", DegradationProfile::adversarial()},
  };
  for (const auto& [name, profile] : cases) {
    for (std::uint64_t seed : {7ull, 19ull}) {
      auto f = test_fabric();
      AnalyzerConfig acfg;
      acfg.clock_skew_tolerance = profile.max_clock_skew + profile.max_jitter;
      StreamAnalyzerConfig scfg;
      scfg.analyzer = acfg;
      StreamAnalyzer stream(f.topo(), scfg);
      TelemetryFaultModel model(profile, seed ^ 0xD15EA5Eull);
      ClusterRuntime rt(f, small_job(), seed);
      rt.set_telemetry_faults(&model);
      rt.set_stream_analyzer(&stream);
      rt.inject(rt.make_fault(RootCause::NicError, Manifestation::FailStop, 2));
      rt.run();

      HierarchicalAnalyzer batch(rt.telemetry(), f.topo(), rt.expected_compute(),
                                 rt.expected_comm(), acfg);
      Diagnosis expected = batch.diagnose();
      Diagnosis got = stream.diagnosis();
      EXPECT_EQ(got, expected) << name << " seed " << seed;
      // Calibration contract carries over verbatim.
      if (got.confidence >= 0.9 && got.root_cause_found) {
        EXPECT_EQ(got.root_cause, RootCause::NicError) << name;
      }
    }
  }
}

// Attaching mid-run replays what the store already holds: the rollups
// and final diagnosis are the same as an attached-from-birth analyzer.
TEST(StreamAnalyzer, MidRunAttachReplaysHistory) {
  auto f = test_fabric();
  StreamAnalyzer late(f.topo());
  ClusterRuntime rt(f, small_job(), 5);
  rt.inject(rt.make_fault(RootCause::GpuHardware, Manifestation::FailStop, 2));
  rt.run();
  // Everything already happened; subscribe now and replay.
  rt.set_stream_analyzer(&late);

  HierarchicalAnalyzer batch(rt.telemetry(), f.topo(), rt.expected_compute(),
                             rt.expected_comm());
  EXPECT_EQ(late.diagnosis(), batch.diagnose());
  EXPECT_EQ(late.records_ingested(), rt.telemetry().record_count());
}

// ---- Bounded memory: record_count grows without bound, the rollup
// footprint is EXACTLY constant once the fabric's QPs have been seen.

TEST(StreamAnalyzer, FootprintPlateausWhileStoreGrows) {
  auto f = test_fabric(2);
  TelemetryStore store;
  StreamAnalyzer stream(f.topo());
  stream.subscribe(store, {.job_id = 0,
                           .expected_compute = 0.05,
                           .expected_comm = 0.01,
                           .host_pods = {0, 0, 1, 1}});
  for (QpId qp = 0; qp < 16; ++qp) {
    QpMeta meta;
    meta.qp = qp;
    meta.src_host_rank = static_cast<int>(qp % 4);
    meta.src_host =
        f.topo().hosts()[static_cast<std::size_t>(qp) % f.topo().hosts().size()];
    store.register_qp(meta);
  }
  auto batch = [&](int b) {
    for (int i = 0; i < 500; ++i) {
      double t = b * 500.0 + i;
      store.record(QpRateSample{t, static_cast<QpId>(i % 16), 1e9 + i});
      LinkCounterSample ls;
      ls.t = t;
      ls.link = static_cast<topo::LinkId>(i % f.topo().link_count());
      ls.ecn_marks = 2;
      ls.pfc_pauses = 1;
      ls.utilization = 0.5;
      store.record(ls);
      NcclTimelineEvent ev;
      ev.t = t;
      ev.host_rank = i % 4;
      ev.iteration = b;
      ev.compute_time = 0.05;
      ev.comm_time = 0.01;
      store.record(ev);
    }
  };
  batch(0);
  batch(1);
  std::size_t warm = stream.footprint_bytes();
  std::size_t count_warm = store.record_count();
  for (int b = 2; b < 10; ++b) batch(b);
  EXPECT_GT(store.record_count(), count_warm * 4);
  // Not "grows slowly": exactly flat.
  EXPECT_EQ(stream.footprint_bytes(), warm);
  EXPECT_EQ(stream.records_ingested(), store.record_count());
  stream.unsubscribe(store);
  EXPECT_EQ(store.sink(), nullptr);
}

// ---- Rollup correctness: counters match the store's own totals and
// the upward reduction preserves sums.

TEST(StreamAnalyzer, RollupsMatchStoreTotalsAndReduce) {
  auto f = test_fabric(2);
  TelemetryStore store;
  StreamAnalyzer stream(f.topo());
  stream.subscribe(store, {});

  // A handful of links spanning whatever tiers/pods they land in; the
  // invariant under test is that the reduction loses nothing.
  std::vector<topo::LinkId> links;
  for (std::size_t l = 0; l < std::min<std::size_t>(6, f.topo().link_count()); ++l) {
    links.push_back(static_cast<topo::LinkId>(l));
  }
  std::uint64_t want_ecn = 0;
  std::uint64_t want_pfc = 0;
  for (int i = 0; i < 100; ++i) {
    LinkCounterSample ls;
    ls.t = i;
    ls.link = links[static_cast<std::size_t>(i) % links.size()];
    ls.ecn_marks = static_cast<std::uint64_t>(i % 3);
    ls.pfc_pauses = 1;
    want_ecn += ls.ecn_marks;
    want_pfc += ls.pfc_pauses;
    store.record(ls);
  }
  FabricRollup fab = stream.fabric();
  EXPECT_EQ(fab.links.ecn_marks, want_ecn);
  EXPECT_EQ(fab.links.pfc_pauses, want_pfc);
  EXPECT_EQ(fab.links.counter_samples, 100u);
  // Pod -> tier -> fabric: per-pod sums and per-tier sums both cover
  // exactly the same leaves.
  std::uint64_t pod_sum = 0;
  for (int p = 0; p < stream.pods(); ++p) pod_sum += stream.pod(p).links().pfc_pauses;
  std::uint64_t tier_sum = 0;
  for (int t = 0; t < kLinkTiers; ++t) {
    tier_sum += stream.tier(static_cast<LinkTier>(t)).pfc_pauses;
  }
  EXPECT_EQ(pod_sum, want_pfc);
  EXPECT_EQ(tier_sum, want_pfc);
  stream.unsubscribe(store);
}

TEST(StreamAnalyzer, CumulativeCountersStreamAsDeltas) {
  auto f = test_fabric();
  TelemetryStore store;
  StreamAnalyzer stream(f.topo());
  stream.subscribe(store, {});
  auto cum = [&](double t, std::uint64_t total) {
    LinkCounterSample ls;
    ls.t = t;
    ls.link = 0;
    ls.ecn_marks = total;
    ls.cumulative = true;
    store.record(ls);
  };
  cum(1.0, 100);
  cum(2.0, 150);
  cum(2.0, 150);  // duplicate batch: stale, contributes nothing
  cum(3.0, 30);   // switch reboot: resync, +30
  EXPECT_EQ(stream.fabric().links.ecn_marks, 180u);
  EXPECT_EQ(stream.fabric().links.ecn_marks, store.total_ecn(0));
  stream.unsubscribe(store);

  // A late subscriber replays the same effective deltas.
  StreamAnalyzer late(f.topo());
  late.subscribe(store, {});
  EXPECT_EQ(late.fabric().links.ecn_marks, 180u);
  late.unsubscribe(store);
}

TEST(StreamAnalyzer, MitigationAndBlastFeedsLandInPodRollups) {
  auto f = test_fabric(2);
  StreamAnalyzer stream(f.topo());
  stream.note_mitigation(0, 120.0, 0);
  stream.note_mitigation(0, 240.0, 1);
  stream.note_fleet_fault(1, 3);
  stream.note_blast_radius(1, 1.5);
  EXPECT_EQ(stream.pod(0).faults, 1u);
  EXPECT_EQ(stream.pod(1).faults, 2u);
  EXPECT_EQ(stream.pod(1).blast_jobs_touched, 3u);
  EXPECT_DOUBLE_EQ(stream.pod(1).blast_host_hours_lost, 1.5);
  EXPECT_EQ(stream.fabric_mttr().count(), 2u);
  EXPECT_EQ(stream.fabric().faults, 3u);
  EXPECT_NEAR(stream.pod(0).mttr_s.percentile(50.0), 120.0, 120.0 * 0.05);
}

// ---- Online triggers and the diagnosis callback.

TEST(StreamAnalyzer, CallbackFiresOnAnomalyAndRevisesPerIteration) {
  auto f = test_fabric();
  StreamAnalyzer stream(f.topo());
  int fired = 0;
  Diagnosis last;
  stream.set_on_diagnosis([&](std::int64_t job, const Diagnosis& d, core::Seconds) {
    EXPECT_EQ(job, 0);
    ++fired;
    last = d;
  });
  ClusterRuntime rt(f, small_job(), 11);
  rt.set_stream_analyzer(&stream);
  rt.inject(rt.make_fault(RootCause::OpticalFiber, Manifestation::FailSlow, 2));
  rt.run();
  EXPECT_GE(fired, 1);
  // Bounded eagerness: at most one full re-diagnosis per iteration plus
  // the onset and the finalize.
  EXPECT_LE(stream.revisions(), static_cast<std::uint64_t>(small_job().iterations + 2));
  Diagnosis final = stream.diagnosis();
  EXPECT_EQ(final, last);  // the last callback saw the final revision
}

TEST(StreamAnalyzer, FrameCallbackPacesByTelemetryTime) {
  auto f = test_fabric();
  TelemetryStore store;
  StreamAnalyzer stream(f.topo());
  int frames = 0;
  stream.set_frame_callback(1.0, [&](core::Seconds) { ++frames; });
  stream.subscribe(store, {});
  for (int i = 0; i < 1000; ++i) {
    store.record(QpRateSample{i * 0.01, 0, 1e9});  // 10 s of telemetry
  }
  EXPECT_GE(frames, 9);
  EXPECT_LE(frames, 11);
  stream.unsubscribe(store);
}

// ---- Gauges + dashboard rendering.

TEST(StreamAnalyzer, PublishesGaugesAndRendersDashboard) {
  auto f = test_fabric(2);
  StreamAnalyzer stream(f.topo());
  ClusterRuntime rt(f, small_job(), 3);
  rt.set_stream_analyzer(&stream);
  rt.inject(rt.make_fault(RootCause::NicError, Manifestation::FailStop, 2));
  rt.run();
  stream.diagnosis();  // freshen the cached revision before publishing

  obs::Metrics m;
  stream.publish(m);
  EXPECT_GT(m.gauge("stream.records_ingested"), 0.0);
  EXPECT_GT(m.gauge("stream.footprint_bytes"), 0.0);
  EXPECT_EQ(m.gauge("stream.pods"), 2.0);
  // The NIC fault struck a pod-0 host: its errCQEs roll up there (and
  // into the fabric root), the untouched pod 1 stays clean.
  EXPECT_GE(m.gauge("stream.pod0.err_cqes"), 1.0);
  EXPECT_EQ(m.gauge("stream.pod1.err_cqes"), 0.0);
  EXPECT_EQ(m.gauge("stream.fabric.err_cqes"), m.gauge("stream.pod0.err_cqes"));
  EXPECT_EQ(m.gauge("stream.diag.jobs"), 1.0);
  EXPECT_EQ(m.gauge("stream.diag.anomalies"), 1.0);
  EXPECT_GE(m.gauge("stream.diag.revisions"), 1.0);

  std::string dash = render_pod_dashboard(m, 2);
  EXPECT_NE(dash.find("pod0"), std::string::npos);
  EXPECT_NE(dash.find("pod1"), std::string::npos);
  EXPECT_NE(dash.find("fabric"), std::string::npos);
  EXPECT_NE(dash.find("streaming diagnosis"), std::string::npos);
}

}  // namespace
}  // namespace astral::monitor
