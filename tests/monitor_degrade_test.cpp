#include "monitor/degrade.h"

#include <gtest/gtest.h>

#include <cmath>

#include "monitor/analyzer.h"
#include "monitor/cluster_runtime.h"

namespace astral::monitor {
namespace {

// ---------------------------------------------------------------------------
// Profile presets.

TEST(DegradationProfile, PresetsAndLookup) {
  EXPECT_TRUE(DegradationProfile::clean().is_clean());
  EXPECT_FALSE(DegradationProfile::mild().is_clean());
  EXPECT_FALSE(DegradationProfile::severe().is_clean());
  EXPECT_FALSE(DegradationProfile::adversarial().is_clean());
  for (const auto& name : DegradationProfile::names()) {
    auto p = DegradationProfile::by_name(name);
    ASSERT_TRUE(p.has_value()) << name;
    EXPECT_EQ(p->name, name);
  }
  EXPECT_FALSE(DegradationProfile::by_name("nope").has_value());
}

TEST(DegradationProfile, MildMatchesIssueCalibrationPoint) {
  // The ISSUE's calibration point: ~10% loss on the sampled streams, one
  // collector outage, clock skew bounded by 5ms.
  auto p = DegradationProfile::mild();
  EXPECT_DOUBLE_EQ(p.sflow.drop_prob, 0.10);
  EXPECT_EQ(p.outages, 1);
  EXPECT_LE(p.max_clock_skew, 0.005);
}

// ---------------------------------------------------------------------------
// Fault-model units (synthetic records into a raw store).

NcclTimelineEvent nccl_ev(core::Seconds t, int rank, int iter) {
  NcclTimelineEvent ev;
  ev.t = t;
  ev.host_rank = rank;
  ev.iteration = iter;
  ev.compute_time = 0.05;
  ev.comm_time = 0.01;
  ev.wr_started = 1;
  ev.wr_finished = 1;
  return ev;
}

TEST(TelemetryFaultModel, CleanProfilePassesThroughBitIdentically) {
  TelemetryStore direct;
  TelemetryStore degraded;
  TelemetryFaultModel model(DegradationProfile::clean(), 42);
  for (int i = 0; i < 8; ++i) {
    auto ev = nccl_ev(0.01 * i, i % 4, i / 4);
    direct.record(ev);
    model.record(ev, degraded);
    QpRateSample s{0.01 * i, static_cast<QpId>(i % 4), 1e9 * i};
    direct.record(s);
    model.record(s, degraded);
  }
  SflowPathRecord r;
  r.t = 0.5;
  r.qp = 2;
  r.path = {3, 4, 5};
  direct.record(r);
  model.record(r, degraded);
  model.flush(degraded);
  EXPECT_EQ(direct.to_json().dump(2), degraded.to_json().dump(2));
  EXPECT_EQ(model.stats().total(), 0u);  // passthrough bypasses accounting
}

TEST(TelemetryFaultModel, DropProbabilityOneLosesEveryRecord) {
  DegradationProfile p;
  p.name = "droptest";
  p.nccl.drop_prob = 1.0;
  TelemetryStore store;
  TelemetryFaultModel model(p, 7);
  for (int i = 0; i < 10; ++i) model.record(nccl_ev(0.01 * i, 0, i), store);
  model.flush(store);
  EXPECT_TRUE(store.nccl_timeline().empty());
  EXPECT_EQ(model.stats().dropped, 10u);
  EXPECT_EQ(model.stats().delivered, 0u);
}

TEST(TelemetryFaultModel, DuplicateProbabilityOneDeliversTwice) {
  DegradationProfile p;
  p.name = "duptest";
  p.nccl.duplicate_prob = 1.0;
  TelemetryStore store;
  TelemetryFaultModel model(p, 7);
  for (int i = 0; i < 5; ++i) model.record(nccl_ev(0.01 * i, 0, i), store);
  model.flush(store);
  EXPECT_EQ(store.nccl_timeline().size(), 10u);
  EXPECT_EQ(model.stats().duplicated, 5u);
}

TEST(TelemetryFaultModel, ReorderedRecordsHeldBackUntilFlush) {
  DegradationProfile p;
  p.name = "reordertest";
  p.nccl.reorder_prob = 1.0;
  TelemetryStore store;
  TelemetryFaultModel model(p, 7);
  for (int i = 0; i < 3; ++i) model.record(nccl_ev(0.01 * i, 0, i), store);
  // Every record was held back and nothing delivered after it, so the
  // store is empty until flush drains the hold-back buffer.
  EXPECT_TRUE(store.nccl_timeline().empty());
  EXPECT_EQ(model.stats().reordered, 3u);
  model.flush(store);
  EXPECT_EQ(store.nccl_timeline().size(), 3u);
}

TEST(TelemetryFaultModel, OutageWindowSilentlyDiscards) {
  DegradationProfile p;
  p.name = "outagetest";
  p.outages = 1;
  p.outage_horizon = 0.001;  // start ~0, so the window covers [~0, ~10]
  p.outage_duration = 10.0;
  TelemetryStore store;
  TelemetryFaultModel model(p, 7);
  ASSERT_EQ(model.outage_windows().size(), 1u);
  model.record(nccl_ev(5.0, 0, 0), store);   // inside the window
  model.record(nccl_ev(50.0, 0, 1), store);  // long after it
  model.flush(store);
  ASSERT_EQ(store.nccl_timeline().size(), 1u);
  EXPECT_EQ(store.nccl_timeline().front().iteration, 1);
  EXPECT_EQ(model.stats().outage_dropped, 1u);
}

TEST(TelemetryFaultModel, ClockSkewIsBoundedAndStablePerCollector) {
  DegradationProfile p;
  p.name = "skewtest";
  p.max_clock_skew = 0.05;
  TelemetryStore store;
  TelemetryFaultModel model(p, 7);
  model.record(QpRateSample{1.0, 3, 1e9}, store);
  model.record(QpRateSample{2.0, 3, 1e9}, store);
  model.flush(store);
  ASSERT_EQ(store.qp_rates().size(), 2u);
  double skew0 = store.qp_rates()[0].t - 1.0;
  double skew1 = store.qp_rates()[1].t - 2.0;
  EXPECT_LE(std::abs(skew0), 0.05);
  // One collector, one clock: the same fixed skew on both samples.
  EXPECT_DOUBLE_EQ(skew0, skew1);
}

TEST(TelemetryFaultModel, SflowTruncationDropsTailHops) {
  DegradationProfile p;
  p.name = "trunctest";
  p.sflow_truncate_prob = 1.0;
  TelemetryStore store;
  TelemetryFaultModel model(p, 7);
  SflowPathRecord r;
  r.t = 0.1;
  r.qp = 1;
  r.path = {10, 11, 12, 13};
  model.record(r, store);
  model.flush(store);
  auto path = store.path_of(1);
  ASSERT_FALSE(path.empty());
  EXPECT_LT(path.size(), 4u);  // strictly shorter: the tail was cut
  EXPECT_EQ(path.front(), 10u);  // ... but the head hops survive intact
  EXPECT_EQ(model.stats().truncated, 1u);
}

TEST(TelemetryFaultModel, CumulativeReemissionPreservesTotals) {
  DegradationProfile p;
  p.name = "cumtest";
  p.cumulative_counters = true;
  TelemetryStore store;
  TelemetryFaultModel model(p, 7);
  model.record(LinkCounterSample{.t = 0.1, .link = 2, .ecn_marks = 5, .pfc_pauses = 7},
               store);
  model.record(LinkCounterSample{.t = 0.2, .link = 2, .ecn_marks = 3, .pfc_pauses = 1},
               store);
  model.flush(store);
  // Samples were rewritten as since-boot totals; the store deltas them
  // back, so the aggregate matches the original per-interval deltas.
  ASSERT_EQ(store.link_counters().size(), 2u);
  EXPECT_TRUE(store.link_counters()[0].cumulative);
  EXPECT_EQ(store.link_counters()[1].ecn_marks, 8u);
  EXPECT_EQ(store.total_ecn(2), 8u);
  EXPECT_EQ(store.total_pfc(2), 8u);
}

TEST(TelemetryFaultModel, CounterResetResynchronizesInsteadOfDoubleCounting) {
  DegradationProfile p;
  p.name = "resettest";
  p.cumulative_counters = true;
  p.counter_reset_prob = 1.0;  // the switch reboots before every scrape
  TelemetryStore store;
  TelemetryFaultModel model(p, 7);
  model.record(LinkCounterSample{.t = 0.1, .link = 2, .ecn_marks = 10}, store);
  model.record(LinkCounterSample{.t = 0.2, .link = 2, .ecn_marks = 3}, store);
  model.flush(store);
  EXPECT_EQ(model.stats().counter_resets, 2u);
  // Post-reset totals run backwards (10 -> 3); the store must resync and
  // count 10 + 3, not garbage.
  EXPECT_EQ(store.total_ecn(2), 13u);
}

TEST(TelemetryFaultModel, SameSeedSameProfileIsDeterministic) {
  auto run_once = [] {
    TelemetryStore store;
    TelemetryFaultModel model(DegradationProfile::severe(), 99);
    for (int i = 0; i < 50; ++i) {
      model.record(nccl_ev(0.01 * i, i % 8, i / 8), store);
      model.record(QpRateSample{0.01 * i, static_cast<QpId>(i % 8), 1e9}, store);
      SflowPathRecord r;
      r.t = 0.01 * i;
      r.qp = static_cast<QpId>(i % 8);
      r.path = {1, 2, 3};
      model.record(r, store);
    }
    model.flush(store);
    return std::pair{store.to_json().dump(2), model.stats()};
  };
  auto [json_a, stats_a] = run_once();
  auto [json_b, stats_b] = run_once();
  EXPECT_EQ(json_a, json_b);
  EXPECT_EQ(stats_a.delivered, stats_b.delivered);
  EXPECT_EQ(stats_a.dropped, stats_b.dropped);
  EXPECT_EQ(stats_a.reordered, stats_b.reordered);
  EXPECT_EQ(stats_a.truncated, stats_b.truncated);
}

TEST(CauseAcceptable, ExactAndSilentTwinOnly) {
  EXPECT_TRUE(cause_acceptable(RootCause::NicError, RootCause::NicError));
  // The link-level silent twins may read as a switch bug...
  EXPECT_TRUE(cause_acceptable(RootCause::LinkFlap, RootCause::SwitchBug));
  EXPECT_TRUE(cause_acceptable(RootCause::WireConnection, RootCause::SwitchBug));
  EXPECT_TRUE(cause_acceptable(RootCause::OpticalFiber, RootCause::SwitchBug));
  // ... but not the reverse, and nothing else cross-matches.
  EXPECT_FALSE(cause_acceptable(RootCause::SwitchBug, RootCause::LinkFlap));
  EXPECT_FALSE(cause_acceptable(RootCause::NicError, RootCause::SwitchBug));
  EXPECT_FALSE(cause_acceptable(RootCause::GpuHardware, RootCause::Memory));
}

// ---------------------------------------------------------------------------
// Analyzer fallback ladder (Branch #2 under lost telemetry). Scenarios
// are produced by a real run, then rebuilt with selected streams wiped —
// the lossy collector's worst case, made deterministic.

topo::Fabric test_fabric() {
  topo::FabricParams p;
  p.rails = 2;
  p.hosts_per_block = 8;
  p.blocks_per_pod = 2;
  p.pods = 1;
  return topo::Fabric(p);
}

JobConfig small_job() {
  JobConfig j;
  j.hosts = 8;
  j.iterations = 5;
  j.comm_bytes = 8ull * 1024 * 1024;
  return j;
}

struct StreamFilter {
  bool err_cqe = true;
  bool int_probes = true;
  bool syslog = true;
  // sFlow is always wiped: every scenario here is "paths lost".
};

TelemetryStore rebuild_without(const TelemetryStore& src, int hosts,
                               StreamFilter keep) {
  TelemetryStore out;
  for (const auto& ev : src.nccl_timeline()) out.record(ev);
  for (const auto& s : src.qp_rates()) out.record(s);
  if (keep.err_cqe) {
    for (const auto& ev : src.err_cqes()) out.record(ErrCqeEvent(ev));
  }
  if (keep.int_probes) {
    for (const auto& r : src.int_probes()) out.record(IntProbeResult(r));
  }
  for (const auto& s : src.link_counters()) out.record(s);
  if (keep.syslog) {
    for (const auto& ev : src.syslog()) out.record(SyslogEvent(ev));
  }
  for (int h = 0; h < hosts; ++h) {
    for (QpId qp : src.qps_of_host(h)) out.register_qp(*src.qp_meta(qp));
  }
  return out;
}

TEST(AnalyzerFallback, ErrCqeWithoutSflowFallsBackToPingmeshPaths) {
  // NIC failure: errCQEs arrive but every sFlow reconstruction was lost.
  // The INT pingmesh rides the same fabric, so its probe paths stand in —
  // at a confidence discount.
  auto f = test_fabric();
  ClusterRuntime rt(f, small_job(), 24);
  rt.inject(rt.make_fault(RootCause::NicError, Manifestation::FailStop, 2));
  rt.run();
  ASSERT_FALSE(rt.telemetry().err_cqes().empty());

  auto store = rebuild_without(rt.telemetry(), small_job().hosts, {});
  HierarchicalAnalyzer analyzer(store, f.topo(), rt.expected_compute(),
                                rt.expected_comm());
  auto d = analyzer.diagnose();
  EXPECT_TRUE(d.anomaly_detected);
  bool gap_logged = false;
  for (const auto& g : d.evidence_gaps) {
    gap_logged |= g.find("sflow: no reconstructed path") != std::string::npos;
  }
  EXPECT_TRUE(gap_logged);
  bool substituted = false;
  for (const auto& ev : d.evidence) {
    substituted |= ev.find("substituted") != std::string::npos;
  }
  EXPECT_TRUE(substituted);
  // Inferred paths are weaker evidence: whatever the verdict, it must not
  // claim the confidence a unique sFlow overlap would earn.
  EXPECT_LT(d.confidence, 0.9);
  if (d.root_cause_found) {
    EXPECT_TRUE(cause_acceptable(RootCause::NicError, *d.root_cause));
  } else {
    EXPECT_TRUE(d.needs_manual);
  }
}

TEST(AnalyzerFallback, AllNetworkWitnessesLostYieldsRankedCandidates) {
  // Silent switch blackhole with errCQE, sFlow, and INT probes all lost:
  // no fabricated single cause — ranked candidates plus a manual alarm.
  auto f = test_fabric();
  ClusterRuntime rt(f, small_job(), 27);
  rt.inject(rt.make_fault(RootCause::SwitchBug, Manifestation::FailHang, 2));
  rt.run();

  StreamFilter keep;
  keep.err_cqe = false;
  keep.int_probes = false;
  auto store = rebuild_without(rt.telemetry(), small_job().hosts, keep);
  HierarchicalAnalyzer analyzer(store, f.topo(), rt.expected_compute(),
                                rt.expected_comm());
  auto d = analyzer.diagnose();
  EXPECT_TRUE(d.anomaly_detected);
  EXPECT_FALSE(d.root_cause_found);
  EXPECT_TRUE(d.needs_manual);
  EXPECT_LT(d.confidence, 0.5);
  ASSERT_FALSE(d.candidates.empty());
  EXPECT_FALSE(d.evidence_gaps.empty());
  // The true cause is on the ranked list a human would walk.
  bool listed = false;
  for (const auto& c : d.candidates) listed |= c.cause == RootCause::SwitchBug;
  EXPECT_TRUE(listed);
  // Ranked best-first.
  for (std::size_t i = 1; i < d.candidates.size(); ++i) {
    EXPECT_GE(d.candidates[i - 1].score, d.candidates[i].score);
  }
}

TEST(AnalyzerFallback, SkewToleranceKeepsSlowQpDetection) {
  // Collector clocks skewed against the simulation: QP-rate samples drift
  // up to 4ms early. With the tolerance configured to the plane's NTP
  // bound, the diagnosis matches the clean-clock baseline.
  auto f = test_fabric();
  ClusterRuntime rt(f, small_job(), 25);
  rt.inject(rt.make_fault(RootCause::OpticalFiber, Manifestation::FailSlow, 2));
  rt.run();
  HierarchicalAnalyzer baseline(rt.telemetry(), f.topo(), rt.expected_compute(),
                                rt.expected_comm());
  auto want = baseline.diagnose();
  ASSERT_TRUE(want.root_cause_found);

  TelemetryStore skewed;
  for (const auto& ev : rt.telemetry().nccl_timeline()) skewed.record(ev);
  for (auto s : rt.telemetry().qp_rates()) {
    s.t -= 0.004;
    skewed.record(s);
  }
  for (const auto& ev : rt.telemetry().err_cqes()) skewed.record(ErrCqeEvent(ev));
  for (const auto& r : rt.telemetry().int_probes()) skewed.record(IntProbeResult(r));
  for (const auto& s : rt.telemetry().link_counters()) skewed.record(s);
  for (const auto& ev : rt.telemetry().syslog()) skewed.record(SyslogEvent(ev));
  for (int h = 0; h < small_job().hosts; ++h) {
    for (QpId qp : rt.telemetry().qps_of_host(h)) {
      skewed.register_qp(*rt.telemetry().qp_meta(qp));
    }
    for (QpId qp : rt.telemetry().qps_of_host(h)) {
      auto path = rt.telemetry().path_of(qp);
      if (path.empty()) continue;
      SflowPathRecord r;
      r.qp = qp;
      r.path = path;
      skewed.record(r);
    }
  }

  AnalyzerConfig tolerant;
  tolerant.clock_skew_tolerance = 0.005;
  HierarchicalAnalyzer analyzer(skewed, f.topo(), rt.expected_compute(),
                                rt.expected_comm(), tolerant);
  auto d = analyzer.diagnose();
  ASSERT_TRUE(d.root_cause_found);
  EXPECT_EQ(d.root_cause, want.root_cause);
  EXPECT_EQ(d.culprit_links, want.culprit_links);
}

// ---------------------------------------------------------------------------
// Campaign smoke: a small sweep wires model + runtime + analyzer together.

TEST(DegradedCampaign, SmallSweepHoldsCalibrationContract) {
  DegradedCampaignConfig cfg;
  cfg.runs = 4;
  cfg.profiles = {"clean", "mild"};
  auto result = run_degraded_campaign(cfg);
  ASSERT_EQ(result.profiles.size(), 2u);
  for (const auto& p : result.profiles) {
    EXPECT_EQ(p.entries.size(), 4u);
    EXPECT_EQ(p.silently_wrong_count(), 0) << p.profile;
  }
  EXPECT_EQ(result.profiles[0].profile, "clean");
  EXPECT_EQ(result.profiles[0].stats.total(), 0u);  // passthrough
  EXPECT_GT(result.profiles[1].stats.dropped, 0u);
  auto doc = result.to_json();
  EXPECT_EQ(doc["profiles"].size(), 2u);
  EXPECT_EQ(doc["profiles"].at(1)["profile"].as_string(), "mild");
}

}  // namespace
}  // namespace astral::monitor
