// Property test of the degraded-telemetry calibration contract: over
// hundreds of random (fault schedule x degradation profile) pairs the
// pipeline must (1) never crash, (2) never produce a confident (>= 0.9)
// root cause contradicting every injected fault, and (3) be bit-identical
// to the undegraded analyzer whenever the profile is clean.
#include <gtest/gtest.h>

#include <string>

#include "monitor/analyzer.h"
#include "monitor/cluster_runtime.h"
#include "monitor/degrade.h"

namespace astral::monitor {
namespace {

constexpr int kPairs = 200;
constexpr double kConfident = 0.9;

struct PlannedFault {
  RootCause cause;
  Manifestation m;
  int at_iter;
};

JobConfig property_job() {
  JobConfig j;
  j.hosts = 8;
  j.iterations = 5;
  j.comm_bytes = 8ull * 1024 * 1024;
  return j;
}

TEST(DegradeProperty, RandomSchedulesNeverYieldSilentlyWrongConfidence) {
  topo::FabricParams fp;
  fp.rails = 2;
  fp.hosts_per_block = 8;
  fp.blocks_per_pod = 2;
  fp.pods = 1;
  topo::Fabric fabric(fp);
  const JobConfig job = property_job();
  const auto& names = DegradationProfile::names();

  core::Rng rng(20240806);
  int clean_pairs = 0;
  for (int i = 0; i < kPairs; ++i) {
    // Cycle profiles so every severity (clean included) gets ~kPairs/4.
    auto profile =
        *DegradationProfile::by_name(names[static_cast<std::size_t>(i) % names.size()]);
    SCOPED_TRACE("pair " + std::to_string(i) + " profile " + profile.name);

    // Draw the schedule: mostly single faults, some concurrent pairs.
    int nfaults = rng.chance(0.25) ? 2 : 1;
    std::vector<PlannedFault> plan;
    for (int k = 0; k < nfaults; ++k) {
      RootCause cause = sample_root_cause(rng);
      Manifestation m = sample_manifestation(cause, rng);
      int at_iter = m == Manifestation::FailOnStart
                        ? 0
                        : 1 + static_cast<int>(rng.uniform_int(
                                  static_cast<std::uint64_t>(job.iterations - 2)));
      plan.push_back({cause, m, at_iter});
    }

    auto run_with = [&](TelemetryFaultModel* model) {
      ClusterRuntime rt(fabric, job, 5000 + static_cast<std::uint64_t>(i));
      if (model) rt.set_telemetry_faults(model);
      for (const auto& f : plan) rt.inject(rt.make_fault(f.cause, f.m, f.at_iter));
      rt.run();
      AnalyzerConfig acfg;
      acfg.clock_skew_tolerance = profile.max_clock_skew + profile.max_jitter;
      HierarchicalAnalyzer analyzer(rt.telemetry(), fabric.topo(),
                                    rt.expected_compute(), rt.expected_comm(),
                                    acfg);
      return analyzer.diagnose();
    };

    TelemetryFaultModel model(profile, 0xFEEDull + static_cast<std::uint64_t>(i) *
                                                       2654435761ull);
    Diagnosis d = run_with(&model);

    // (2) Calibration: a confident named cause must match an injected
    // fault (or its accepted silent twin) — the no-silently-wrong rule.
    if (d.root_cause_found && d.root_cause && d.confidence >= kConfident) {
      bool acceptable = false;
      for (const auto& f : plan) {
        acceptable |= cause_acceptable(f.cause, *d.root_cause);
      }
      EXPECT_TRUE(acceptable)
          << "confident (" << d.confidence << ") diagnosis "
          << to_string(*d.root_cause) << " contradicts every injected fault";
    }
    // A detected-but-unlocalized anomaly must never be silent: either
    // the cause is named or the diagnosis flags itself for a human. (A
    // fully blinded plane — no anomaly detected at all — is caught at
    // the application layer: the job itself reports its death, which the
    // campaign books as an automatic manual escalation.)
    if (d.anomaly_detected && !d.root_cause_found) {
      EXPECT_TRUE(d.needs_manual || d.confidence < 0.5);
    }

    // (3) Clean profile: bit-identical to running without the model.
    if (profile.is_clean()) {
      ++clean_pairs;
      Diagnosis undegraded = run_with(nullptr);
      EXPECT_EQ(d, undegraded);
    }
  }
  EXPECT_GE(clean_pairs, kPairs / 4);
}

}  // namespace
}  // namespace astral::monitor
