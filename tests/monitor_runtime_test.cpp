#include "monitor/cluster_runtime.h"

#include <gtest/gtest.h>

namespace astral::monitor {
namespace {

topo::Fabric test_fabric() {
  topo::FabricParams p;
  p.rails = 2;
  p.hosts_per_block = 8;
  p.blocks_per_pod = 2;
  p.pods = 1;
  return topo::Fabric(p);
}

JobConfig small_job() {
  JobConfig j;
  j.hosts = 8;
  j.iterations = 5;
  j.comm_bytes = 8ull * 1024 * 1024;
  return j;
}

TEST(ClusterRuntime, HealthyRunCompletesWithFullTelemetry) {
  auto f = test_fabric();
  ClusterRuntime rt(f, small_job(), 1);
  auto outcome = rt.run();
  EXPECT_TRUE(outcome.completed);
  EXPECT_FALSE(outcome.observed.has_value());
  const auto& store = rt.telemetry();
  EXPECT_EQ(store.last_iteration(), 4);
  EXPECT_EQ(store.iteration_events(0).size(), 8u);
  EXPECT_FALSE(store.qp_rates().empty());
  EXPECT_FALSE(store.int_probes().empty());
  EXPECT_TRUE(store.err_cqes().empty());
  // All ring QPs registered with 5-tuples and sFlow paths.
  for (QpId qp = 0; qp < 8; ++qp) {
    EXPECT_TRUE(store.qp_meta(qp).has_value());
    EXPECT_FALSE(store.path_of(qp).empty());
  }
}

TEST(ClusterRuntime, HealthyCommTimesNearExpected) {
  auto f = test_fabric();
  ClusterRuntime rt(f, small_job(), 2);
  rt.run();
  for (const auto& ev : rt.telemetry().nccl_timeline()) {
    ASSERT_GE(ev.comm_time, 0.0);
    EXPECT_LT(ev.comm_time, rt.expected_comm() * 2.5);
    EXPECT_EQ(ev.wr_finished, 1);
  }
}

TEST(ClusterRuntime, GpuHardwareFailStopAbortsWithFatalLog) {
  auto f = test_fabric();
  ClusterRuntime rt(f, small_job(), 3);
  FaultSpec fault = rt.make_fault(RootCause::GpuHardware, Manifestation::FailStop, 2);
  rt.inject(fault);
  auto outcome = rt.run();
  EXPECT_FALSE(outcome.completed);
  EXPECT_EQ(outcome.stopped_at_iteration, 2);
  EXPECT_EQ(outcome.observed, Manifestation::FailStop);
  auto logs = rt.telemetry().host_syslog(fault.target_host_rank);
  ASSERT_FALSE(logs.empty());
  EXPECT_EQ(logs[0].severity, "fatal");
  EXPECT_NE(logs[0].message.find("Xid"), std::string::npos);
}

TEST(ClusterRuntime, FailOnStartStopsAtIterationZero) {
  auto f = test_fabric();
  ClusterRuntime rt(f, small_job(), 4);
  rt.inject(rt.make_fault(RootCause::HostEnvConfig, Manifestation::FailOnStart, 0));
  auto outcome = rt.run();
  EXPECT_EQ(outcome.stopped_at_iteration, 0);
  EXPECT_EQ(outcome.observed, Manifestation::FailOnStart);
  // The config-verify fingerprint is planted.
  int mismatched = 0;
  for (const auto& c : rt.host_configs()) {
    mismatched += c.nccl_version != ClusterRuntime::HostConfig{}.nccl_version ? 1 : 0;
  }
  EXPECT_EQ(mismatched, 1);
}

TEST(ClusterRuntime, OpticalFiberFailSlowDegradesCommTimes) {
  auto f = test_fabric();
  ClusterRuntime rt(f, small_job(), 5);
  auto fault = rt.make_fault(RootCause::OpticalFiber, Manifestation::FailSlow, 2);
  rt.inject(fault);
  auto outcome = rt.run();
  EXPECT_TRUE(outcome.completed);
  EXPECT_EQ(outcome.observed, Manifestation::FailSlow);
  // Iterations after injection have at least one much slower comm.
  double before = 0.0, after = 0.0;
  for (const auto& ev : rt.telemetry().nccl_timeline()) {
    if (ev.iteration < 2) {
      before = std::max(before, ev.comm_time);
    } else {
      after = std::max(after, ev.comm_time);
    }
  }
  EXPECT_GT(after, before * 2.0);
  // The optical warning is in the switch syslog.
  bool warned = false;
  for (const auto& log : rt.telemetry().syslog()) {
    warned |= log.message.find("optical") != std::string::npos;
  }
  EXPECT_TRUE(warned);
}

TEST(ClusterRuntime, SwitchBugBlackholeHangsSilently) {
  auto f = test_fabric();
  ClusterRuntime rt(f, small_job(), 6);
  rt.inject(rt.make_fault(RootCause::SwitchBug, Manifestation::FailHang, 2));
  auto outcome = rt.run();
  EXPECT_FALSE(outcome.completed);
  EXPECT_EQ(outcome.observed, Manifestation::FailHang);
  EXPECT_TRUE(rt.telemetry().syslog().empty());  // silent
  EXPECT_TRUE(rt.telemetry().err_cqes().empty());
  // But MOD drop counters betray the blackhole.
  bool drops = false;
  for (const auto& s : rt.telemetry().link_counters()) drops |= s.mod_drops > 0;
  EXPECT_TRUE(drops);
}

TEST(ClusterRuntime, NicErrorEmitsErrCqeAndStops) {
  auto f = test_fabric();
  ClusterRuntime rt(f, small_job(), 7);
  rt.inject(rt.make_fault(RootCause::NicError, Manifestation::FailStop, 1));
  auto outcome = rt.run();
  EXPECT_EQ(outcome.observed, Manifestation::FailStop);
  EXPECT_FALSE(rt.telemetry().err_cqes().empty());
}

TEST(ClusterRuntime, CclBugHangShowsMissingWorkRequest) {
  auto f = test_fabric();
  ClusterRuntime rt(f, small_job(), 8);
  auto fault = rt.make_fault(RootCause::CclBug, Manifestation::FailHang, 2);
  rt.inject(fault);
  auto outcome = rt.run();
  EXPECT_EQ(outcome.observed, Manifestation::FailHang);
  auto evs = rt.telemetry().iteration_events(2);
  int not_started = 0;
  for (const auto& ev : evs) {
    if (ev.wr_started == 0) {
      ++not_started;
      EXPECT_EQ(ev.host_rank, fault.target_host_rank);
    }
  }
  EXPECT_EQ(not_started, 1);
}

TEST(ClusterRuntime, PcieDegradeCausesPfcStorm) {
  auto f = test_fabric();
  auto job = small_job();
  job.comm_bytes = 32ull * 1024 * 1024;
  ClusterRuntime rt(f, job, 9);
  auto fault = rt.make_fault(RootCause::PcieDegrade, Manifestation::FailSlow, 1);
  ASSERT_NE(fault.target_link, topo::kInvalidLink);
  rt.inject(fault);
  auto outcome = rt.run();
  EXPECT_EQ(outcome.observed, Manifestation::FailSlow);
  std::uint64_t pfc = 0;
  for (const auto& s : rt.telemetry().link_counters()) pfc += s.pfc_pauses;
  EXPECT_GT(pfc, 0u);  // congestion spreading
  // With PCIe monitoring on, the host log names the culprit.
  bool pcie_log = false;
  for (const auto& log : rt.telemetry().syslog()) {
    pcie_log |= log.message.find("PCIe") != std::string::npos;
  }
  EXPECT_TRUE(pcie_log);
}

TEST(ClusterRuntime, PcieMonitoringFlagGatesTheLog) {
  auto f = test_fabric();
  auto job = small_job();
  job.pcie_monitoring = false;  // the original system (§5 incident)
  ClusterRuntime rt(f, job, 10);
  rt.inject(rt.make_fault(RootCause::PcieDegrade, Manifestation::FailSlow, 1));
  rt.run();
  for (const auto& log : rt.telemetry().syslog()) {
    EXPECT_EQ(log.message.find("PCIe"), std::string::npos);
  }
}

TEST(ClusterRuntime, LinkFlapIsTransient) {
  auto f = test_fabric();
  ClusterRuntime rt(f, small_job(), 11);
  auto fault = rt.make_fault(RootCause::LinkFlap, Manifestation::FailSlow, 2);
  rt.inject(fault);
  auto outcome = rt.run();
  EXPECT_TRUE(outcome.completed);  // healed after one iteration
  EXPECT_EQ(outcome.observed, Manifestation::FailSlow);
}

}  // namespace
}  // namespace astral::monitor
