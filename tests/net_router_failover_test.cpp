// Dual-ToR (P3) failover edge cases in the router: a flow must survive
// the loss of either side of a dual-homed host, and must cleanly fail
// (nullopt, never a stale or dead path) when no side survives.
#include <gtest/gtest.h>

#include "core/units.h"
#include "net/fluid_sim.h"
#include "net/router.h"
#include "topo/fabric.h"

namespace astral::net {
namespace {

using namespace core;  // literal operators (_MiB)

topo::Fabric small_fabric(bool dual_tor = true) {
  topo::FabricParams p;
  p.style = topo::FabricStyle::AstralSameRail;
  p.rails = 2;
  p.hosts_per_block = 4;
  p.blocks_per_pod = 2;
  p.pods = 1;
  p.dual_tor = dual_tor;
  return topo::Fabric(p);
}

FlowSpec make_spec(const topo::Fabric& f, int src_gpu, int dst_gpu) {
  auto a = f.gpu(src_gpu);
  auto b = f.gpu(dst_gpu);
  FlowSpec s;
  s.src_host = a.host;
  s.dst_host = b.host;
  s.src_rail = a.rail;
  s.dst_rail = b.rail;
  s.size = 1_MiB;
  return s;
}

// The ToR->host reverse of a host->ToR uplink.
topo::LinkId downlink_of(const topo::Topology& topo, topo::LinkId uplink) {
  topo::NodeId tor = topo.link(uplink).dst;
  topo::NodeId host = topo.link(uplink).src;
  for (topo::LinkId l : topo.out_links(tor)) {
    if (topo.link(l).dst == host) return l;
  }
  return topo::kInvalidLink;
}

bool path_all_up(const topo::Topology& topo, const std::vector<topo::LinkId>& path) {
  for (topo::LinkId l : path) {
    if (!topo.link(l).up) return false;
  }
  return true;
}

TEST(RouterFailover, SourceUplinkDeadUsesOtherSide) {
  auto f = small_fabric();
  auto& topo = f.topo();
  Router router(f);
  auto spec = make_spec(f, 0, f.params().rails * f.params().hosts_per_block);
  auto tuple = router.tuple_for(spec);

  auto before = router.route(spec, tuple);
  ASSERT_TRUE(before.has_value());
  // Kill the side the hash picked (the first hop of the current path).
  topo.set_link_state(before->front(), false);

  auto after = router.route(spec, tuple);
  ASSERT_TRUE(after.has_value());
  EXPECT_NE(after->front(), before->front());
  EXPECT_TRUE(path_all_up(topo, *after));
}

TEST(RouterFailover, DestinationDownlinkDeadUsesOtherSide) {
  auto f = small_fabric();
  auto& topo = f.topo();
  Router router(f);
  auto spec = make_spec(f, 0, f.params().rails * f.params().hosts_per_block);
  auto tuple = router.tuple_for(spec);

  auto before = router.route(spec, tuple);
  ASSERT_TRUE(before.has_value());
  // Kill the delivering ToR->host downlink the hash picked.
  topo.set_link_state(before->back(), false);

  auto after = router.route(spec, tuple);
  ASSERT_TRUE(after.has_value());
  EXPECT_NE(after->back(), before->back());
  EXPECT_TRUE(path_all_up(topo, *after));
  // Still lands on the destination host.
  EXPECT_EQ(topo.link(after->back()).dst, spec.dst_host);
}

TEST(RouterFailover, BothDestinationSidesDeadReturnsNullopt) {
  auto f = small_fabric();
  auto& topo = f.topo();
  Router router(f);
  auto spec = make_spec(f, 0, f.params().rails * f.params().hosts_per_block);
  auto tuple = router.tuple_for(spec);
  ASSERT_TRUE(router.route(spec, tuple).has_value());

  for (int side = 0; side < topo.sides(); ++side) {
    topo::LinkId up = topo.host_uplink(spec.dst_host, spec.dst_rail, side);
    ASSERT_NE(up, topo::kInvalidLink);
    topo.set_link_state(downlink_of(topo, up), false);
  }
  // No stale path: both delivery planes are gone.
  EXPECT_FALSE(router.route(spec, tuple).has_value());
}

TEST(RouterFailover, BothSourceSidesDeadReturnsNullopt) {
  auto f = small_fabric();
  auto& topo = f.topo();
  Router router(f);
  auto spec = make_spec(f, 0, f.params().rails * f.params().hosts_per_block);
  auto tuple = router.tuple_for(spec);

  for (int side = 0; side < topo.sides(); ++side) {
    topo::LinkId up = topo.host_uplink(spec.src_host, spec.src_rail, side);
    ASSERT_NE(up, topo::kInvalidLink);
    topo.set_link_state(up, false);
  }
  EXPECT_FALSE(router.route(spec, tuple).has_value());
}

TEST(RouterFailover, SingleTorFabricHasNoFailover) {
  auto f = small_fabric(/*dual_tor=*/false);
  auto& topo = f.topo();
  Router router(f);
  auto spec = make_spec(f, 0, f.params().rails * f.params().hosts_per_block);
  auto tuple = router.tuple_for(spec);

  auto before = router.route(spec, tuple);
  ASSERT_TRUE(before.has_value());
  topo.set_link_state(before->front(), false);
  // One side only: no surviving plane to fail over to.
  EXPECT_FALSE(router.route(spec, tuple).has_value());
}

TEST(RouterFailover, RouteReflectsLinkStateImmediately) {
  auto f = small_fabric();
  auto& topo = f.topo();
  Router router(f);
  auto spec = make_spec(f, 0, f.params().rails * f.params().hosts_per_block);
  auto tuple = router.tuple_for(spec);

  auto before = router.route(spec, tuple);
  ASSERT_TRUE(before.has_value());
  topo.set_link_state(before->front(), false);
  auto rerouted = router.route(spec, tuple);
  ASSERT_TRUE(rerouted.has_value());
  topo.set_link_state(before->front(), true);
  // Healed: the hashed side is preferred again (no stale cache).
  auto healed = router.route(spec, tuple);
  ASSERT_TRUE(healed.has_value());
  EXPECT_EQ(healed->front(), before->front());
}

}  // namespace
}  // namespace astral::net
