#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>

namespace astral::obs {
namespace {

TEST(Tracer, RecordsSpansInstantsAndCounters) {
  Tracer t;
  t.span(Track::Flow, "flow", 1.0, 2.0, {.flow = 7}, 4096.0);
  t.instant(Track::Fault, "fault.injected", 3.0, {.fault = 0}, "optics");
  t.counter(Track::Link, "util", 0.5, 0.9, {.link = 12});

  auto flows = t.events(Track::Flow);
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].phase, TraceEvent::Phase::Span);
  EXPECT_STREQ(flows[0].name, "flow");
  EXPECT_DOUBLE_EQ(flows[0].start, 1.0);
  EXPECT_DOUBLE_EQ(flows[0].duration, 2.0);
  EXPECT_DOUBLE_EQ(flows[0].value, 4096.0);
  EXPECT_EQ(flows[0].keys.flow, 7);

  auto faults = t.events(Track::Fault);
  ASSERT_EQ(faults.size(), 1u);
  EXPECT_STREQ(faults[0].detail, "optics");
  EXPECT_TRUE(t.events(Track::Workload).empty());
}

TEST(Tracer, RingOverwritesOldestAndCountsDrops) {
  Tracer t(TracerConfig{.ring_capacity = 4});
  for (int i = 0; i < 10; ++i) {
    t.instant(Track::Flow, "e", static_cast<double>(i));
  }
  EXPECT_EQ(t.recorded(Track::Flow), 10u);
  EXPECT_EQ(t.dropped(Track::Flow), 6u);
  auto evs = t.events(Track::Flow);
  ASSERT_EQ(evs.size(), 4u);
  // Oldest-first reassembly across the wrap point.
  EXPECT_DOUBLE_EQ(evs.front().start, 6.0);
  EXPECT_DOUBLE_EQ(evs.back().start, 9.0);
}

TEST(Tracer, ExactCapacityBoundaryDropsNothing) {
  Tracer t(TracerConfig{.ring_capacity = 4});
  for (int i = 0; i < 4; ++i) {
    t.instant(Track::Flow, "e", static_cast<double>(i));
  }
  EXPECT_EQ(t.recorded(Track::Flow), 4u);
  EXPECT_EQ(t.dropped(Track::Flow), 0u);
  auto evs = t.events(Track::Flow);
  ASSERT_EQ(evs.size(), 4u);
  EXPECT_DOUBLE_EQ(evs.front().start, 0.0);
  EXPECT_DOUBLE_EQ(evs.back().start, 3.0);

  // One more: exactly the oldest event is overwritten.
  t.instant(Track::Flow, "e", 4.0);
  EXPECT_EQ(t.dropped(Track::Flow), 1u);
  evs = t.events(Track::Flow);
  ASSERT_EQ(evs.size(), 4u);
  EXPECT_DOUBLE_EQ(evs.front().start, 1.0);
  EXPECT_DOUBLE_EQ(evs.back().start, 4.0);
}

TEST(Tracer, MultiWrapKeepsNewestWindowInOrder) {
  // 2.5 full wraps: retention must be the newest `capacity` events,
  // oldest-first, with the head mid-ring.
  Tracer t(TracerConfig{.ring_capacity = 4});
  for (int i = 0; i < 10; ++i) {
    t.instant(Track::Link, "e", static_cast<double>(i));
  }
  EXPECT_EQ(t.recorded(Track::Link), 10u);
  EXPECT_EQ(t.dropped(Track::Link), 6u);
  auto evs = t.events(Track::Link);
  ASSERT_EQ(evs.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(evs[static_cast<std::size_t>(i)].start, 6.0 + i) << i;
  }
}

TEST(Tracer, DropCountersArePerTrack) {
  Tracer t(TracerConfig{.ring_capacity = 2});
  for (int i = 0; i < 5; ++i) {
    t.instant(Track::Flow, "f", static_cast<double>(i));
  }
  t.instant(Track::Fault, "x", 0.0);
  EXPECT_EQ(t.dropped(Track::Flow), 3u);
  EXPECT_EQ(t.dropped(Track::Fault), 0u);
  EXPECT_EQ(t.dropped(Track::Workload), 0u);
  EXPECT_EQ(t.recorded(Track::Fault), 1u);
  ASSERT_EQ(t.events(Track::Fault).size(), 1u);
}

TEST(Tracer, ChromeExportAfterWrapEmitsOnlyRetainedEvents) {
  Tracer t(TracerConfig{.ring_capacity = 2});
  for (int i = 0; i < 5; ++i) {
    t.instant(Track::Flow, "e", static_cast<double>(i));
  }
  auto doc = t.to_chrome_trace();
  int instants = 0;
  for (const auto& ev : doc["traceEvents"].as_array()) {
    if (ev["ph"].as_string() == "i") {
      ++instants;
      EXPECT_GE(ev["ts"].as_int(), 3000000);  // only ts 3s and 4s survive
    }
  }
  EXPECT_EQ(instants, 2);
}

TEST(Tracer, AmbientKeysFillUnsetFieldsOnly) {
  Tracer t;
  t.set_ambient({.job = 3, .group = 8});
  t.span(Track::Flow, "flow", 0.0, 1.0, {.group = 99, .flow = 5});
  auto evs = t.events(Track::Flow);
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(evs[0].keys.job, 3);    // inherited
  EXPECT_EQ(evs[0].keys.group, 99); // event's own key wins
  EXPECT_EQ(evs[0].keys.flow, 5);
  EXPECT_EQ(evs[0].keys.fault, -1);
}

TEST(Tracer, AmbientScopesNest) {
  Tracer t;
  {
    AmbientScope job(&t, {.job = 1});
    {
      AmbientScope coll(&t, {.collective = 7});
      EXPECT_EQ(t.ambient().job, 1);  // push_ambient keeps the outer key
      EXPECT_EQ(t.ambient().collective, 7);
      t.instant(Track::Collective, "x", 0.0);
    }
    EXPECT_EQ(t.ambient().collective, -1);
    EXPECT_EQ(t.ambient().job, 1);
  }
  EXPECT_EQ(t.ambient().job, -1);
  auto evs = t.events(Track::Collective);
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(evs[0].keys.job, 1);
  EXPECT_EQ(evs[0].keys.collective, 7);
}

TEST(AmbientScope, NullTracerIsSafe) {
  AmbientScope scope(nullptr, {.job = 1});  // must not crash
}

TEST(Tracer, ChromeExportNamesAllFiveTracks) {
  Tracer t;
  t.span(Track::Workload, "iteration", 0.0, 1.0);
  auto doc = t.to_chrome_trace();
  int thread_names = 0;
  bool saw[kTrackCount] = {};
  for (const auto& ev : doc["traceEvents"].as_array()) {
    if (ev["ph"].as_string() == "M" && ev["name"].as_string() == "thread_name") {
      ++thread_names;
      for (int i = 0; i < kTrackCount; ++i) {
        if (ev["args"]["name"].as_string() == to_string(static_cast<Track>(i))) {
          saw[i] = true;
        }
      }
    }
  }
  EXPECT_EQ(thread_names, kTrackCount);
  for (int i = 0; i < kTrackCount; ++i) EXPECT_TRUE(saw[i]) << i;
}

TEST(Tracer, ChromeExportCarriesKeysAndMicroseconds) {
  Tracer t;
  t.set_ambient({.job = 11});
  t.span(Track::Flow, "flow", 0.5, 0.25, {.flow = 3}, 1024.0);
  auto doc = t.to_chrome_trace();
  const core::Json* span = nullptr;
  for (const auto& ev : doc["traceEvents"].as_array()) {
    if (ev["ph"].as_string() == "X") span = &ev;
  }
  ASSERT_NE(span, nullptr);
  EXPECT_EQ((*span)["ts"].as_int(), 500000);
  EXPECT_EQ((*span)["dur"].as_int(), 250000);
  EXPECT_EQ((*span)["args"]["job"].as_int(), 11);
  EXPECT_EQ((*span)["args"]["flow"].as_int(), 3);
  EXPECT_DOUBLE_EQ((*span)["args"]["value"].as_number(), 1024.0);
  // Unset keys are omitted, not emitted as -1.
  EXPECT_FALSE((*span)["args"].contains("fault"));
}

TEST(Tracer, LinkCountersGetPerLinkSeries) {
  Tracer t;
  t.counter(Track::Link, "util", 1.0, 0.5, {.link = 42});
  auto doc = t.to_chrome_trace();
  bool found = false;
  for (const auto& ev : doc["traceEvents"].as_array()) {
    if (ev["ph"].as_string() == "C") {
      EXPECT_EQ(ev["name"].as_string(), "link42.util");
      EXPECT_DOUBLE_EQ(ev["args"]["util"].as_number(), 0.5);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Tracer, ChromeExportIsDeterministic) {
  auto build = [] {
    Tracer t;
    t.span(Track::Workload, "iteration", 0.0, 1.0, {.job = 1});
    t.instant(Track::Fault, "fault.injected", 0.5, {.fault = 0});
    t.counter(Track::Link, "util", 0.25, 0.125, {.link = 3});
    return t.to_chrome_trace().dump();
  };
  std::string dump = build();
  EXPECT_EQ(dump, build());
  std::string err;
  EXPECT_TRUE(core::Json::parse(dump, &err)) << err;
}

TEST(ChromeTraceBuilder, SharedBuilderMergesProcesses) {
  ChromeTraceBuilder b;
  Tracer t;
  t.span(Track::Flow, "flow", 0.0, 1.0);
  t.append_chrome_trace(b, /*pid=*/1);
  b.process_name(2, "forecast");
  b.complete(2, 0, "op", 0.0, 1.0);
  auto doc = b.build();
  int pids_seen = 0;
  for (const auto& ev : doc["traceEvents"].as_array()) {
    if (ev["ph"].as_string() == "M" && ev["name"].as_string() == "process_name") {
      ++pids_seen;
    }
  }
  EXPECT_EQ(pids_seen, 2);
}

}  // namespace
}  // namespace astral::obs
