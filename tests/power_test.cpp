#include <gtest/gtest.h>

#include "power/hvdc.h"
#include "power/profile.h"
#include "power/pue.h"
#include "power/renewables.h"

namespace astral::power {
namespace {

TEST(PowerProfile, TrainingPeaksAtOrAboveTdpAndDipsInComm) {
  GpuPowerModel gpu;
  core::Rng rng(1);
  auto trace = training_power_trace(gpu, TrainIterationShape{}, 5, 0.002, rng);
  auto s = trace_stats(trace);
  EXPECT_GE(s.peak_watts, gpu.tdp_watts);               // Fig. 15a: peak hits TDP+
  EXPECT_LT(s.min_watts, gpu.tdp_watts * 0.65);          // comm troughs
  EXPECT_LT(s.mean_watts, s.peak_watts);
}

TEST(PowerProfile, InferencePrefillHighDecodeLow) {
  GpuPowerModel gpu;
  core::Rng rng(2);
  auto trace = inference_power_trace(gpu, 0.05, 0.4, 6, 0.002, rng);
  auto s = trace_stats(trace);
  EXPECT_GE(s.peak_watts, gpu.tdp_watts);
  EXPECT_LT(s.min_watts, gpu.tdp_watts * 0.55);  // decode well under TDP
  // Decode dominates time, so the mean sits closer to the decode level.
  EXPECT_LT(s.mean_watts, gpu.tdp_watts * 0.7);
}

TEST(PowerProfile, DiurnalTraceShowsNightDip) {
  GpuPowerModel gpu;
  core::Rng rng(3);
  auto trace = diurnal_fleet_trace(gpu, 1000, /*train_fill=*/0.0, 600.0, rng);
  ASSERT_FALSE(trace.empty());
  auto watts_at = [&](double hour) {
    std::size_t idx = static_cast<std::size_t>(hour * 3600.0 / 600.0);
    return trace[std::min(idx, trace.size() - 1)].watts;
  };
  EXPECT_GT(watts_at(14.5), watts_at(3.0) * 1.5);  // tidal pattern
}

TEST(PowerProfile, NightTrainingFlattensTheTide) {
  GpuPowerModel gpu;
  core::Rng rng(4);
  auto raw = trace_stats(diurnal_fleet_trace(gpu, 1000, 0.0, 600.0, rng));
  core::Rng rng2(4);
  auto filled = trace_stats(diurnal_fleet_trace(gpu, 1000, 0.9, 600.0, rng2));
  EXPECT_LT(filled.stddev_watts, raw.stddev_watts * 0.6);
}

TEST(Hvdc, ChainEfficienciesOrdered) {
  EXPECT_GT(chain_efficiency(ChainKind::Hvdc), chain_efficiency(ChainKind::AcUps));
  EXPECT_LT(chain_efficiency(ChainKind::Hvdc), 1.0);
}

TEST(Hvdc, AllocationHonorsTdpDemand) {
  PowerUnitConfig cfg;
  cfg.racks = 4;
  cfg.rack_tdp_watts = 100.0;
  PowerUnit unit(cfg);
  std::vector<double> demand{100, 100, 100, 100};
  auto a = unit.allocate(demand);
  EXPECT_FALSE(a.clipped);
  for (double g : a.granted_watts) EXPECT_DOUBLE_EQ(g, 100.0);
}

TEST(Hvdc, SingleRackBurstsTo130Percent) {
  // §2.2 / §5: one rack may elastically draw up to 30% above TDP.
  PowerUnitConfig cfg;
  cfg.racks = 4;
  cfg.rack_tdp_watts = 100.0;
  PowerUnit unit(cfg);
  std::vector<double> demand{150, 80, 80, 80};  // others idle-ish
  auto a = unit.allocate(demand);
  EXPECT_DOUBLE_EQ(a.granted_watts[0], 130.0);  // clamped at +30%
  EXPECT_TRUE(a.clipped);
  EXPECT_DOUBLE_EQ(a.granted_watts[1], 80.0);
}

TEST(Hvdc, AggregateBudgetShavesElasticShare) {
  PowerUnitConfig cfg;
  cfg.racks = 4;
  cfg.rack_tdp_watts = 100.0;
  PowerUnit unit(cfg);
  std::vector<double> demand{130, 130, 130, 130};  // all bursting
  auto a = unit.allocate(demand);
  EXPECT_TRUE(a.clipped);
  EXPECT_LE(a.total_granted, unit.unit_budget() + 1e-9);
  // Everyone keeps at least TDP.
  for (double g : a.granted_watts) EXPECT_GE(g, 100.0 - 1e-9);
}

TEST(Hvdc, BatterySmoothsPulsedLoadBetterThanUps) {
  auto pulsed_load = [] {
    std::vector<double> load;
    for (int i = 0; i < 600; ++i) {
      load.push_back(i % 2 == 0 ? 300e3 : 150e3);  // compute/comm pulses
    }
    return load;
  }();
  PowerUnitConfig hvdc_cfg;
  hvdc_cfg.kind = ChainKind::Hvdc;
  PowerUnitConfig ups_cfg = hvdc_cfg;
  ups_cfg.kind = ChainKind::AcUps;
  PowerUnit hvdc(hvdc_cfg);
  PowerUnit ups(ups_cfg);
  double hvdc_ratio = grid_stability(hvdc, pulsed_load, 1.0);
  double ups_ratio = grid_stability(ups, pulsed_load, 1.0);
  EXPECT_LT(hvdc_ratio, ups_ratio);
  EXPECT_LT(hvdc_ratio, 1.15);  // near-constant grid draw
}

TEST(Hvdc, UpsBatteryCapacityFluctuatesUnderLlmLoad) {
  PowerUnitConfig cfg;
  cfg.kind = ChainKind::AcUps;
  PowerUnit ups(cfg);
  double min_soc = 1.0;
  for (int i = 0; i < 3000; ++i) {
    ups.step(1.0, i % 2 == 0 ? 450e3 : 150e3);
    min_soc = std::min(min_soc, ups.soc());
  }
  // The paper reports 20-30% fluctuation.
  EXPECT_LT(min_soc, 0.81);
  EXPECT_GE(min_soc, 0.55);
}

TEST(Renewables, SolarFollowsDaylight) {
  EXPECT_DOUBLE_EQ(solar_output(0.0, 1000), 0.0);
  EXPECT_DOUBLE_EQ(solar_output(22.0, 1000), 0.0);
  EXPECT_NEAR(solar_output(12.0, 1000), 1000.0, 1e-6);
  EXPECT_GT(solar_output(9.0, 1000), 0.0);
}

TEST(Renewables, YearMixProducesRenewableFractionAndCo2) {
  // Sized so renewables cover roughly the paper's 22%.
  double load = 100e6;  // 100 MW fleet
  auto mix = simulate_year(load, /*solar*/ 45e6, /*wind*/ 25e6, 0.35);
  EXPECT_NEAR(mix.renewable_fraction(), 0.22, 0.08);
  EXPECT_GT(mix.avoided_co2_tons(), 50e3);
  EXPECT_NEAR(mix.total_kwh(), load / 1000.0 * 24 * 365, load / 1000.0 * 24 * 365 * 0.01);
}

TEST(Pue, AstralBeatsTraditional) {
  auto trad = FacilityConfig::traditional(1e8);
  auto astral = FacilityConfig::astral(1e8);
  double p_trad = compute_pue(trad, 5e7);
  double p_astral = compute_pue(astral, 5e7);
  EXPECT_GT(p_trad, 1.3);
  EXPECT_LT(p_astral, 1.25);
  double improvement = (p_trad - p_astral) / p_trad;
  EXPECT_GT(improvement, 0.12);
  EXPECT_LT(improvement, 0.30);
}

TEST(Pue, BlendedPueInterpolates) {
  auto trad = FacilityConfig::traditional(1e8);
  auto astral = FacilityConfig::astral(1e8);
  double p0 = blended_pue(trad, astral, 0.0, 5e7);
  double p1 = blended_pue(trad, astral, 1.0, 5e7);
  double p_half = blended_pue(trad, astral, 0.5, 5e7);
  EXPECT_DOUBLE_EQ(p0, compute_pue(trad, 5e7));
  EXPECT_DOUBLE_EQ(p1, compute_pue(astral, 5e7));
  EXPECT_GT(p_half, p1);
  EXPECT_LT(p_half, p0);
}

}  // namespace
}  // namespace astral::power
