#include "core/rng.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/math.h"

namespace astral::core {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  bool diverged = false;
  for (int i = 0; i < 100; ++i) {
    auto va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
    if (va != c.next_u64()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(Rng, UniformStaysInRange) {
  Rng r(1);
  for (int i = 0; i < 10000; ++i) {
    double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    double v = r.uniform(5.0, 6.0);
    EXPECT_GE(v, 5.0);
    EXPECT_LT(v, 6.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng r(2);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(r.uniform());
  EXPECT_NEAR(mean(xs), 0.5, 0.01);
}

TEST(Rng, NormalMomentsMatch) {
  Rng r(3);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(r.normal(10.0, 2.0));
  EXPECT_NEAR(mean(xs), 10.0, 0.1);
  EXPECT_NEAR(stddev(xs), 2.0, 0.1);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng r(4);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(r.exponential(0.5));
  EXPECT_NEAR(mean(xs), 2.0, 0.1);
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng r(5);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += r.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, UniformIntCoversRange) {
  Rng r(6);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 7000; ++i) ++counts[r.uniform_int(7)];
  for (int c : counts) EXPECT_GT(c, 700);
}

}  // namespace
}  // namespace astral::core
