// Gray-field and whole-schedule validation: every rejection carries a
// numbered "[N]" diagnostic, overlapping fault windows on one element
// are refused, and JobEngine::inject surfaces the same message for
// gray-containing schedules.
#include <gtest/gtest.h>

#include <stdexcept>

#include "monitor/cluster_runtime.h"
#include "monitor/faults.h"

namespace astral::monitor {
namespace {

constexpr int kHosts = 8;
constexpr std::size_t kLinks = 100;

void expect_contains(const std::optional<std::string>& msg,
                     const std::string& needle) {
  ASSERT_TRUE(msg.has_value()) << "expected a rejection containing '" << needle
                               << "'";
  EXPECT_NE(msg->find(needle), std::string::npos) << *msg;
}

// A gray spec that passes both validate_fault and validate_gray; the
// tests below break one field at a time.
FaultSpec link_gray(GrayKind kind, topo::LinkId link, int at = 1) {
  FaultSpec f;
  f.cause = kind == GrayKind::FlappingLink ? RootCause::LinkFlap
                                           : RootCause::OpticalFiber;
  f.manifestation = Manifestation::FailSlow;
  f.gray = kind;
  f.target_link = link;
  f.at_iteration = at;
  f.degrade_factor = 0.25;
  return f;
}

FaultSpec slow_nic(int rank, topo::LinkId anchor, int at = 1) {
  FaultSpec f;
  f.cause = RootCause::NicError;
  f.manifestation = Manifestation::FailSlow;
  f.gray = GrayKind::SlowNic;
  f.target_host_rank = rank;
  f.target_link = anchor;
  f.at_iteration = at;
  f.degrade_factor = 0.5;
  return f;
}

TEST(ValidateGray, CrispSpecAlwaysPasses) {
  // Crisp specs never enter gray validation, however odd their fields.
  FaultSpec f;
  f.gray = GrayKind::None;
  f.degrade_factor = 7.0;
  f.flap_up_iters = 0;
  EXPECT_FALSE(validate_gray(f, kHosts, kLinks).has_value());
}

TEST(ValidateGray, ValidSpecsPass) {
  EXPECT_FALSE(validate_gray(link_gray(GrayKind::FlappingLink, 3), kHosts,
                             kLinks)
                   .has_value());
  EXPECT_FALSE(
      validate_gray(link_gray(GrayKind::PartialDegrade, 4), kHosts, kLinks)
          .has_value());
  EXPECT_FALSE(validate_gray(slow_nic(2, 5), kHosts, kLinks).has_value());
}

TEST(ValidateGray, SlowNicRankOutsideJob) {
  auto msg = validate_gray(slow_nic(kHosts, 5), kHosts, kLinks);
  expect_contains(msg, "[0]");
  expect_contains(msg, "target_host_rank");
  expect_contains(msg, "outside job");
  expect_contains(validate_gray(slow_nic(-1, 5), kHosts, kLinks),
                  "target_host_rank");
}

TEST(ValidateGray, LinkGrayNeedsValidTargetLink) {
  auto f = link_gray(GrayKind::PartialDegrade, topo::kInvalidLink);
  expect_contains(validate_gray(f, kHosts, kLinks), "needs a valid target_link");
  f.target_link = static_cast<topo::LinkId>(kLinks);  // one past the end
  expect_contains(validate_gray(f, kHosts, kLinks), "needs a valid target_link");
}

TEST(ValidateGray, SwitchScopeRejected) {
  auto f = link_gray(GrayKind::FlappingLink, 3);
  f.switch_scope = true;
  expect_contains(validate_gray(f, kHosts, kLinks), "switch_scope");
}

TEST(ValidateGray, DegradeFactorMustBeFractional) {
  for (double bad : {0.0, 1.0, 1.5, -0.25}) {
    auto f = link_gray(GrayKind::PartialDegrade, 3);
    f.degrade_factor = bad;
    expect_contains(validate_gray(f, kHosts, kLinks),
                    "degrade_factor must be in (0, 1)");
  }
}

TEST(ValidateGray, FlapDwellFloorIsOneIteration) {
  auto f = link_gray(GrayKind::FlappingLink, 3);
  f.flap_up_iters = 0;
  expect_contains(validate_gray(f, kHosts, kLinks), "flap_up_iters");
  f = link_gray(GrayKind::FlappingLink, 3);
  f.flap_down_iters = -2;
  expect_contains(validate_gray(f, kHosts, kLinks), "flap_down_iters");
}

TEST(ValidateGray, ManifestationMustBeFailSlow) {
  auto f = link_gray(GrayKind::PartialDegrade, 3);
  f.manifestation = Manifestation::FailStop;
  expect_contains(validate_gray(f, kHosts, kLinks),
                  "manifestation must be fail-slow");
}

TEST(ValidateGray, MidTransferStrikeRejected) {
  auto f = link_gray(GrayKind::PartialDegrade, 3);
  f.mid_transfer_fraction = 0.5;
  expect_contains(validate_gray(f, kHosts, kLinks), "mid_transfer_fraction");
}

TEST(ValidateGray, MultipleProblemsAreNumbered) {
  auto f = link_gray(GrayKind::FlappingLink, topo::kInvalidLink);
  f.degrade_factor = 2.0;
  f.flap_up_iters = 0;
  auto msg = validate_gray(f, kHosts, kLinks);
  expect_contains(msg, "[0] ");
  expect_contains(msg, "[1] ");
  expect_contains(msg, "[2] ");
  expect_contains(msg, "; ");
}

TEST(ValidateSchedule, OverlappingWindowsOnOneLinkRejected) {
  FaultSchedule s;
  s.add(link_gray(GrayKind::FlappingLink, 3, 1));      // permanent
  s.add(link_gray(GrayKind::PartialDegrade, 3, 4));    // same link, inside
  auto msg = validate_schedule(s, kHosts, kLinks);
  expect_contains(msg, "faults 0 and 1");
  expect_contains(msg, "overlapping windows on link 3");
}

TEST(ValidateSchedule, OverlappingWindowsOnOneHostRejected) {
  FaultSchedule s;
  s.add(slow_nic(2, 5, 1));
  s.add(slow_nic(2, 6, 3));  // same straggler rank, both permanent
  expect_contains(validate_schedule(s, kHosts, kLinks),
                  "overlapping windows on host rank 2");
}

TEST(ValidateSchedule, DisjointWindowsAccepted) {
  FaultSchedule s;
  auto a = link_gray(GrayKind::PartialDegrade, 3, 1);
  a.repair_iterations = 2;  // active [1, 3)
  auto b = link_gray(GrayKind::PartialDegrade, 3, 3);
  b.repair_iterations = 2;  // active [3, 5)
  s.add(a);
  s.add(b);
  EXPECT_FALSE(validate_schedule(s, kHosts, kLinks).has_value());
}

TEST(ValidateSchedule, DistinctTargetsAccepted) {
  FaultSchedule s;
  s.add(link_gray(GrayKind::FlappingLink, 3, 1));
  s.add(link_gray(GrayKind::PartialDegrade, 4, 1));
  s.add(slow_nic(2, 5, 1));
  EXPECT_FALSE(validate_schedule(s, kHosts, kLinks).has_value());
}

TEST(ValidateSchedule, PerSpecProblemsCarryFaultIndex) {
  FaultSchedule s;
  s.add(link_gray(GrayKind::PartialDegrade, 3, 1));
  auto bad = link_gray(GrayKind::PartialDegrade, 4, 1);
  bad.degrade_factor = 1.5;
  s.add(bad);
  auto msg = validate_schedule(s, kHosts, kLinks);
  expect_contains(msg, "[0] fault 1: ");
  expect_contains(msg, "degrade_factor");
}

// inject(schedule) enforces validate_schedule only when the schedule
// contains a gray fault; the numbered diagnostic reaches the caller.
TEST(ValidateSchedule, InjectRejectsGraySchedulesWithNumberedDiagnostic) {
  topo::FabricParams fp;
  fp.rails = 2;
  fp.hosts_per_block = 4;
  fp.blocks_per_pod = 2;
  fp.pods = 1;
  topo::Fabric fabric(fp);
  JobConfig job;
  job.hosts = 6;
  job.iterations = 4;
  ClusterRuntime rt(fabric, job, 7);

  FaultSchedule s;
  s.add(rt.make_gray_fault(GrayKind::FlappingLink, 1, 1));
  s.add(rt.make_gray_fault(GrayKind::PartialDegrade, 2, 1));  // same hop
  try {
    rt.inject(s);
    FAIL() << "overlapping gray schedule was accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("[0]"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("overlapping windows"),
              std::string::npos)
        << e.what();
  }

  // Distinct hops pass (the documented make_gray_fault contract).
  FaultSchedule ok;
  ok.add(rt.make_gray_fault(GrayKind::FlappingLink, 1, 1));
  ok.add(rt.make_gray_fault(GrayKind::PartialDegrade, 2, 2));
  EXPECT_NO_THROW(rt.inject(ok));
}

}  // namespace
}  // namespace astral::monitor
