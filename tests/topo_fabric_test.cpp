#include "topo/fabric.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "net/fluid_sim.h"

namespace astral::topo {
namespace {

FabricParams small_params(FabricStyle style) {
  FabricParams p;
  p.style = style;
  p.rails = 4;
  p.hosts_per_block = 4;
  p.blocks_per_pod = 2;
  p.pods = 2;
  return p;
}

TEST(FabricParams, PaperScaleMatchesPublication) {
  auto p = FabricParams::paper_scale();
  EXPECT_EQ(p.gpu_count(), 512 * 1024);  // 512K GPUs.
  EXPECT_EQ(p.hosts_per_block * p.rails, 1024);  // 1024-GPU block.
  EXPECT_EQ(p.blocks_per_pod * p.hosts_per_block * p.rails, 64 * 1024);  // 64K pod.
  EXPECT_EQ(p.tor_uplinks(), 64);  // 64 Aggs per same-rail group.
}

TEST(Fabric, GpuIndexRoundTrips) {
  Fabric f(small_params(FabricStyle::AstralSameRail));
  ASSERT_EQ(f.gpu_count(), 4 * 4 * 2 * 2);
  for (int g = 0; g < f.gpu_count(); ++g) {
    GpuLoc loc = f.gpu(g);
    EXPECT_EQ(f.host_at(loc.pod, loc.block, loc.host_index), loc.host);
    const Node& host = f.topo().node(loc.host);
    EXPECT_EQ(host.pod, loc.pod);
    EXPECT_EQ(host.block, loc.block);
    EXPECT_EQ(host.index, loc.host_index);
  }
}

TEST(Fabric, AstralIdenticalAggregatedBandwidthAcrossTiers) {
  // P2: the aggregated bandwidth between tiers is identical — the
  // defining property of the Astral architecture (§2.1).
  Fabric f(small_params(FabricStyle::AstralSameRail));
  const auto& t = f.topo();
  double host_tor = t.tier_bandwidth(NodeKind::Host, NodeKind::Tor);
  double tor_agg = t.tier_bandwidth(NodeKind::Tor, NodeKind::Agg);
  double agg_core = t.tier_bandwidth(NodeKind::Agg, NodeKind::Core);
  EXPECT_NEAR(tor_agg / host_tor, 1.0, 1e-9);
  EXPECT_NEAR(agg_core / tor_agg, 1.0, 1e-9);
}

TEST(Fabric, Tier3OversubscriptionThinsCoreBandwidth) {
  auto params = small_params(FabricStyle::AstralSameRail);
  params.tier3_oversub = 4.0;
  Fabric f(params);
  const auto& t = f.topo();
  double tor_agg = t.tier_bandwidth(NodeKind::Tor, NodeKind::Agg);
  double agg_core = t.tier_bandwidth(NodeKind::Agg, NodeKind::Core);
  EXPECT_NEAR(tor_agg / agg_core, 4.0, 1e-9);
}

TEST(Fabric, SameRailCrossBlockIsFourHops) {
  // P1: same-rail cross-block stays inside the rail's Agg group:
  // host -> ToR -> Agg -> ToR -> host.
  Fabric f(small_params(FabricStyle::AstralSameRail));
  NodeId a = f.host_at(0, 0, 0);
  NodeId b = f.host_at(0, 1, 0);
  EXPECT_EQ(f.topo().distance(a, b), 4);
}

TEST(Fabric, CrossPodIsSixHops) {
  Fabric f(small_params(FabricStyle::AstralSameRail));
  NodeId a = f.host_at(0, 0, 0);
  NodeId b = f.host_at(1, 0, 0);
  // host -> ToR -> Agg -> Core -> Agg -> ToR -> host.
  EXPECT_EQ(f.topo().distance(a, b), 6);
}

TEST(Fabric, DualTorGivesTwoUplinksPerRail) {
  // P3: each port of a NIC connects to a different ToR.
  Fabric f(small_params(FabricStyle::AstralSameRail));
  NodeId h = f.host_at(0, 0, 0);
  const auto& t = f.topo();
  for (int r = 0; r < 4; ++r) {
    LinkId u0 = t.host_uplink(h, r, 0);
    LinkId u1 = t.host_uplink(h, r, 1);
    ASSERT_NE(u0, kInvalidLink);
    ASSERT_NE(u1, kInvalidLink);
    EXPECT_NE(t.link(u0).dst, t.link(u1).dst);  // distinct ToRs
  }
}

TEST(Fabric, SingleTorVariantHasOneSide) {
  auto params = small_params(FabricStyle::AstralSameRail);
  params.dual_tor = false;
  Fabric f(params);
  EXPECT_EQ(f.topo().sides(), 1);
  NodeId h = f.host_at(0, 0, 0);
  LinkId u = f.topo().host_uplink(h, 0, 0);
  ASSERT_NE(u, kInvalidLink);
  // Both NIC ports collapse onto one 400G link.
  EXPECT_DOUBLE_EQ(f.topo().link(u).capacity, core::gbps(400));
}

TEST(Fabric, RailOnlyHasNoCoreAndNoCrossRailRoute) {
  Fabric f(small_params(FabricStyle::RailOnly));
  const auto& t = f.topo();
  EXPECT_DOUBLE_EQ(t.tier_bandwidth(NodeKind::Agg, NodeKind::Core), 0.0);
  // Same rail reachable; same-host pairs always fine (NVLink).
  EXPECT_TRUE(f.fabric_reachable(0, f.gpu_count() - 4));  // rail 0 to rail 0
  EXPECT_TRUE(f.fabric_reachable(0, 1));                  // same host
}

TEST(Fabric, RailOnlyCrossRailDifferentHostsUnreachable) {
  Fabric f(small_params(FabricStyle::RailOnly));
  int rails = f.params().rails;
  int gpu_a = 0;              // host 0, rail 0
  int gpu_b = rails + 1;      // host 1, rail 1
  EXPECT_FALSE(f.fabric_reachable(gpu_a, gpu_b));
  EXPECT_TRUE(f.fabric_reachable(gpu_a, rails));  // host 1, rail 0
}

TEST(Fabric, ClosScramblesRailToTorBinding) {
  Fabric f(small_params(FabricStyle::Clos));
  const auto& t = f.topo();
  // Same-rank GPUs on different hosts land on different ToRs (no rail
  // locality), unlike the Astral fabric.
  NodeId h0 = f.host_at(0, 0, 0);
  NodeId h1 = f.host_at(0, 0, 1);
  NodeId tor0 = t.link(t.host_uplink(h0, 0, 0)).dst;
  NodeId tor1 = t.link(t.host_uplink(h1, 0, 0)).dst;
  EXPECT_NE(tor0, tor1);
}

TEST(Fabric, RailOptimizedKeepsRailTorsButMeshesTier2) {
  Fabric f(small_params(FabricStyle::RailOptimized));
  const auto& t = f.topo();
  NodeId h0 = f.host_at(0, 0, 0);
  NodeId h1 = f.host_at(0, 0, 1);
  // Rail ToR binding preserved at tier 1...
  EXPECT_EQ(t.link(t.host_uplink(h0, 0, 0)).dst, t.link(t.host_uplink(h1, 0, 0)).dst);
  // ...and tier-2 aggregate bandwidth still matches tier 1.
  double host_tor = t.tier_bandwidth(NodeKind::Host, NodeKind::Tor);
  double tor_agg = t.tier_bandwidth(NodeKind::Tor, NodeKind::Agg);
  EXPECT_NEAR(tor_agg / host_tor, 1.0, 1e-9);
}

TEST(Fabric, TwinDatacentersConnectViaLongHaul) {
  auto params = small_params(FabricStyle::AstralSameRail);
  params.pods = 1;
  params.datacenters = 2;
  params.crossdc_oversub = 8.0;
  Fabric f(params);
  const auto& t = f.topo();
  // Host in DC0 reaches host in DC1 in 7 links:
  // host-tor-agg-core =core= agg-tor-host.
  NodeId a = f.host_at(0, 0, 0);
  NodeId b = f.host_at(1, 0, 0);  // pod 1 = DC 1 (1 pod per DC)
  EXPECT_EQ(t.distance(a, b), 7);
  EXPECT_EQ(f.datacenter_of(0), 0);
  EXPECT_EQ(f.datacenter_of(f.gpu_count() - 1), 1);
  // One-way long-haul aggregate = per-DC tier-3 bandwidth / oversub.
  // (Core->Core counts both directions of the duplex pairs; Agg->Core
  // covers both DCs.)
  double agg_core_per_dc = t.tier_bandwidth(NodeKind::Agg, NodeKind::Core) / 2.0;
  double haul_one_way = t.tier_bandwidth(NodeKind::Core, NodeKind::Core) / 2.0;
  EXPECT_NEAR(haul_one_way / agg_core_per_dc, 1.0 / 8.0, 1e-9);
}

TEST(Fabric, CrossDcFlowsAreBandwidthLimited) {
  auto params = small_params(FabricStyle::AstralSameRail);
  params.pods = 1;
  params.datacenters = 2;
  params.crossdc_oversub = 16.0;
  Fabric f(params);
  net::FluidSim sim(f);
  // Saturate the long haul: every host in DC0 sends to its DC1 twin.
  std::vector<net::FlowId> ids;
  int hosts_per_dc = f.host_count() / 2;
  for (int h = 0; h < hosts_per_dc; ++h) {
    net::FlowSpec s;
    s.src_host = f.topo().hosts()[static_cast<std::size_t>(h)];
    s.dst_host = f.topo().hosts()[static_cast<std::size_t>(h + hosts_per_dc)];
    s.src_rail = 0;
    s.dst_rail = 0;
    s.size = 8ull << 20;
    s.tag = static_cast<std::uint64_t>(h);
    ids.push_back(sim.inject(s));
  }
  sim.run();
  // Aggregate cross-DC goodput is bounded by the thin long haul, so the
  // transfer takes far longer than the intra-DC equivalent would.
  double total_bits = static_cast<double>(hosts_per_dc) * (8ull << 20) * 8.0;
  double goodput = total_bits / sim.now();
  double haul = f.topo().tier_bandwidth(NodeKind::Core, NodeKind::Core) / 2.0;  // one way
  EXPECT_LE(goodput, haul * 1.01);
  EXPECT_GE(goodput, haul * 0.4);  // and it actually uses the haul
}

TEST(Fabric, AllStylesConnectAllHostPairsExceptRailOnly) {
  for (auto style : {FabricStyle::AstralSameRail, FabricStyle::RailOptimized,
                     FabricStyle::Clos, FabricStyle::UBMesh}) {
    Fabric f(small_params(style));
    NodeId a = f.host_at(0, 0, 0);
    NodeId b = f.host_at(1, 1, 3);
    EXPECT_GT(f.topo().distance(a, b), 0) << to_string(style);
  }
}

TEST(Fabric, UBMeshIntraPodIsTwoSwitchHops) {
  // The locality claim: any two hosts of a Pod are host -> ToR -> ToR ->
  // host over the dimension-2 full mesh, one switch hop fewer than the
  // Clos-style host-ToR-Agg-ToR-host path.
  Fabric f(small_params(FabricStyle::UBMesh));
  NodeId a = f.host_at(0, 0, 0);
  NodeId b = f.host_at(0, 1, 3);
  EXPECT_EQ(f.topo().distance(a, b), 3);
  Fabric clos(small_params(FabricStyle::Clos));
  EXPECT_EQ(clos.topo().distance(clos.host_at(0, 0, 0), clos.host_at(0, 1, 3)), 4);
}

TEST(Fabric, UBMeshHasNoCoreTier) {
  Fabric f(small_params(FabricStyle::UBMesh));
  EXPECT_EQ(f.params().core_count(), 0);
  EXPECT_DOUBLE_EQ(f.topo().tier_bandwidth(NodeKind::Agg, NodeKind::Core), 0.0);
  // Cross-pod traffic instead rides the dimension-3 border-switch mesh.
  EXPECT_GT(f.topo().tier_bandwidth(NodeKind::Agg, NodeKind::Agg), 0.0);
}

TEST(Fabric, UBMeshTorMeshCapacityMatchesHostDownlinks) {
  // Dimension-2 sizing rule: a ToR's mesh capacity toward the other ToRs
  // of its Pod equals its host-side down capacity, spread evenly.
  auto p = small_params(FabricStyle::UBMesh);
  Fabric f(p);
  const auto& t = f.topo();
  int tors_per_pod = p.tors_per_pod();
  double per_link = p.hosts_per_block * p.host_link_gbps() / (tors_per_pod - 1);
  NodeId tor = f.tor_at(0, 0, 0, 0);
  double mesh_out = 0.0;
  for (LinkId l : t.out_links(tor)) {
    if (t.node(t.link(l).dst).kind != NodeKind::Tor) continue;
    EXPECT_NEAR(core::to_gbps(t.link(l).capacity), per_link, 1e-9);
    mesh_out += core::to_gbps(t.link(l).capacity);
  }
  EXPECT_NEAR(mesh_out, p.hosts_per_block * p.host_link_gbps(), 1e-6);
}

// --- construction-time validation: one test per rejection -------------

// Fabric's constructor must throw std::invalid_argument whose message
// contains `fragment`, instead of silently building a malformed graph.
void expect_rejected(const FabricParams& p, const std::string& fragment) {
  ASSERT_TRUE(validate_params(p).has_value()) << fragment;
  EXPECT_NE(validate_params(p)->find(fragment), std::string::npos)
      << "actual: " << *validate_params(p);
  try {
    Fabric f(p);
    FAIL() << "construction accepted invalid params: " << fragment;
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos) << e.what();
  }
}

TEST(FabricValidation, AcceptsEveryZooStyleAtDefaults) {
  for (auto style : kAllFabricStyles) {
    EXPECT_FALSE(validate_params(small_params(style)).has_value()) << to_string(style);
  }
}

TEST(FabricValidation, RejectsNonPositiveRails) {
  auto p = small_params(FabricStyle::AstralSameRail);
  p.rails = 0;
  expect_rejected(p, "rails must be > 0");
}

TEST(FabricValidation, RejectsNonPositiveHostsPerBlock) {
  auto p = small_params(FabricStyle::AstralSameRail);
  p.hosts_per_block = -1;
  expect_rejected(p, "hosts_per_block must be > 0");
}

TEST(FabricValidation, RejectsNonPositiveBlocksPerPod) {
  auto p = small_params(FabricStyle::RailOptimized);
  p.blocks_per_pod = 0;
  expect_rejected(p, "blocks_per_pod must be > 0");
}

TEST(FabricValidation, RejectsNonPositivePods) {
  auto p = small_params(FabricStyle::Clos);
  p.pods = 0;
  expect_rejected(p, "pods must be > 0");
}

TEST(FabricValidation, RejectsNonPositiveDatacenters) {
  auto p = small_params(FabricStyle::AstralSameRail);
  p.datacenters = 0;
  expect_rejected(p, "datacenters must be > 0");
}

TEST(FabricValidation, RejectsNonPositiveHostPortGbps) {
  auto p = small_params(FabricStyle::UBMesh);
  p.host_port_gbps = 0.0;
  expect_rejected(p, "host_port_gbps must be > 0");
}

TEST(FabricValidation, RejectsNonPositiveTrunkGbps) {
  auto p = small_params(FabricStyle::RailOnly);
  p.trunk_gbps = -400.0;
  expect_rejected(p, "trunk_gbps must be > 0");
}

TEST(FabricValidation, RejectsSubUnityTier3Oversub) {
  auto p = small_params(FabricStyle::AstralSameRail);
  p.tier3_oversub = 0.5;
  expect_rejected(p, "tier3_oversub must be >= 1");
}

TEST(FabricValidation, RejectsNonPositiveCrossDcOversubWhenMultiDc) {
  auto p = small_params(FabricStyle::AstralSameRail);
  p.datacenters = 2;
  p.crossdc_oversub = 0.0;
  expect_rejected(p, "crossdc_oversub must be > 0");
  // Single-DC fabrics never consult the knob, so the same value passes.
  p.datacenters = 1;
  EXPECT_FALSE(validate_params(p).has_value());
}

TEST(FabricValidation, ReportsEveryProblemNumbered) {
  FabricParams p;
  p.rails = 0;
  p.pods = -2;
  p.trunk_gbps = 0.0;
  auto err = validate_params(p);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("[0] "), std::string::npos) << *err;
  EXPECT_NE(err->find("[1] "), std::string::npos) << *err;
  EXPECT_NE(err->find("[2] "), std::string::npos) << *err;
}

}  // namespace
}  // namespace astral::topo
