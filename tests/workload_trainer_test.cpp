#include "workload/trainer.h"

#include <gtest/gtest.h>

namespace astral::workload {
namespace {

TrainingSetup base_setup() {
  TrainingSetup s;
  s.model = seer::ModelSpec::llama3_70b();
  s.parallel = {.tp = 8, .dp = 8, .pp = 4, .ep = 1};
  s.global_batch = 128;
  s.micro_batch = 1;
  s.seq_len = 4096;
  return s;
}

TEST(Trainer, ForecastIsFastAndPositive) {
  Trainer t(base_setup());
  auto f = t.forecast_iteration();
  EXPECT_GT(f.micro_time, 0.0);
  EXPECT_GT(f.iteration_time, f.micro_time);
  EXPECT_GT(f.tokens_per_sec, 0.0);
  EXPECT_GT(f.mfu, 0.05);
  EXPECT_LT(f.mfu, 1.0);
}

TEST(Trainer, IterationFollows1F1BFormula) {
  auto s = base_setup();
  Trainer t(s);
  auto f = t.forecast_iteration();
  int mb = s.num_microbatches();
  EXPECT_NEAR(f.iteration_time, (mb + s.parallel.pp - 1) * f.micro_time + f.dp_exposed,
              1e-9);
}

TEST(Trainer, DpSyncMostlyOverlapsBackward) {
  Trainer t(base_setup());
  auto f = t.forecast_iteration();
  EXPECT_GT(f.dp_sync_time, 0.0);
  // Bucketed gradient sync hides most of itself behind backward compute.
  EXPECT_LT(f.dp_exposed, f.dp_sync_time);
}

TEST(Trainer, MoreMicrobatchesAmortizePipelineBubble) {
  auto s1 = base_setup();
  s1.global_batch = 64;
  auto s2 = base_setup();
  s2.global_batch = 512;
  auto f1 = Trainer(s1).forecast_iteration();
  auto f2 = Trainer(s2).forecast_iteration();
  // Throughput per token improves with more microbatches (bubble
  // fraction (pp-1)/(mb+pp-1) shrinks).
  EXPECT_GT(f2.tokens_per_sec, f1.tokens_per_sec);
}

TEST(Trainer, CalibratedSlowerThanTheoretical) {
  auto s = base_setup();
  auto f_theo = Trainer(s).forecast_iteration();
  s.eff = std::make_shared<seer::TestbedEfficiency>();
  auto f_real = Trainer(s).forecast_iteration();
  EXPECT_GT(f_real.iteration_time, f_theo.iteration_time);
}

TEST(Trainer, CrossDcDpSlowsWithOversubscription) {
  auto s = base_setup();
  s.cross_dc = seer::CrossDcDim::DP;
  s.env.crossdc_oversub = 1.0;
  auto f1 = Trainer(s).forecast_iteration();
  s.env.crossdc_oversub = 32.0;
  s.env.crossdc_rtt = core::msec(3);
  auto f32 = Trainer(s).forecast_iteration();
  EXPECT_GE(f32.iteration_time, f1.iteration_time);
}

TEST(Trainer, Zero3CrossDcWorseThanPlainDp) {
  // Fig. 13's headline: ZeRO-DP across datacenters is the worst option
  // because of its heavy, poorly-overlapped traffic.
  auto s = base_setup();
  s.cross_dc = seer::CrossDcDim::DP;
  s.env.crossdc_oversub = 8.0;
  s.env.crossdc_rtt = core::msec(3);
  auto plain = Trainer(s).forecast_iteration();
  s.dp_strategy = seer::DpStrategy::Zero3;
  auto zero = Trainer(s).forecast_iteration();
  EXPECT_GT(zero.iteration_time, plain.iteration_time);
}

TEST(Trainer, PrefillComputeBoundDecodeMemoryBound) {
  auto s = base_setup();
  s.parallel = {.tp = 8, .dp = 1, .pp = 1, .ep = 1};
  Trainer t(s);
  auto prefill = t.forecast_prefill(4, 4096);
  auto decode = t.forecast_decode(4, 4096);
  EXPECT_GT(prefill.latency, 0.0);
  EXPECT_GT(decode.tokens_per_sec, 0.0);
  // One decoded token is far cheaper than a full prefill.
  EXPECT_LT(decode.timeline.makespan, prefill.timeline.makespan);
}

TEST(Trainer, LargerHbDomainHelpsMoeMoreThanDense) {
  // The Fig. 14 comparison at test scale.
  auto make = [&](seer::ModelSpec model, int ep, int hb) {
    TrainingSetup s;
    s.model = std::move(model);
    s.parallel = {.tp = 8, .dp = 64, .pp = 1, .ep = ep};
    s.global_batch = 128;
    s.seq_len = 2048;
    s.env.hb_domain = hb;
    return Trainer(s).forecast_iteration().iteration_time;
  };
  double dense_gain = make(seer::ModelSpec::gpt3_175b(), 1, 8) /
                      make(seer::ModelSpec::gpt3_175b(), 1, 64);
  double moe_gain = make(seer::ModelSpec::hunyuan_moe(), 64, 8) /
                    make(seer::ModelSpec::hunyuan_moe(), 64, 64);
  EXPECT_GE(moe_gain, dense_gain);
  EXPECT_GT(moe_gain, 1.0);
}

TEST(Trainer, TrafficRanking) {
  // §4.4: PP generates the least traffic; ZeRO-DP the most.
  auto s = base_setup();
  auto t = Trainer(s).traffic();
  EXPECT_GT(t.tp_bytes, 0.0);
  EXPECT_GT(t.pp_bytes, 0.0);
  EXPECT_GT(t.dp_bytes, 0.0);
  EXPECT_LT(t.pp_bytes, t.dp_bytes);
  EXPECT_LT(t.pp_bytes, t.tp_bytes);

  s.dp_strategy = seer::DpStrategy::Zero3;
  auto tz = Trainer(s).traffic();
  EXPECT_GT(tz.dp_bytes, t.dp_bytes * 2);
}

TEST(Trainer, ScalingEfficiencyIsNearOneForWeakScaling) {
  auto s1 = base_setup();
  s1.parallel = {.tp = 8, .dp = 4, .pp = 4, .ep = 1};
  s1.global_batch = 64;
  auto s2 = base_setup();
  s2.parallel = {.tp = 8, .dp = 16, .pp = 4, .ep = 1};
  s2.global_batch = 256;
  auto f1 = Trainer(s1).forecast_iteration();
  auto f2 = Trainer(s2).forecast_iteration();
  double eff = scaling_efficiency(f1, s1.parallel.world(), s1.global_batch, f2,
                                  s2.parallel.world(), s2.global_batch);
  EXPECT_GT(eff, 0.95);
  EXPECT_LE(eff, 1.02);
}

}  // namespace
}  // namespace astral::workload
