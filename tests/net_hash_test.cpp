#include "net/hash.h"

#include <gtest/gtest.h>

#include <set>

namespace astral::net {
namespace {

TEST(Crc16, DeterministicAndSpread) {
  std::uint8_t a[] = {1, 2, 3, 4};
  std::uint8_t b[] = {1, 2, 3, 5};
  EXPECT_EQ(crc16(a, 4), crc16(a, 4));
  EXPECT_NE(crc16(a, 4), crc16(b, 4));
}

TEST(Crc16, IsLinearOverGf2) {
  // crc(x ^ y) == crc(x) ^ crc(y) for equal-length inputs — the hashing
  // linearity property [Zhang et al. ATC'21] that makes source-port
  // based path control predictable.
  std::uint8_t x[] = {0x12, 0x34, 0x56, 0x78, 0x9a};
  std::uint8_t y[] = {0xff, 0x00, 0xaa, 0x55, 0x0f};
  std::uint8_t xy[5];
  for (int i = 0; i < 5; ++i) xy[i] = x[i] ^ y[i];
  EXPECT_EQ(crc16(xy, 5), static_cast<std::uint16_t>(crc16(x, 5) ^ crc16(y, 5)));
}

TEST(EcmpHash, PortChangesMoveTheHash) {
  EcmpHash h;
  FiveTuple t{.src_ip = 10, .dst_ip = 20, .src_port = 1000};
  std::set<std::uint16_t> seen;
  for (std::uint16_t p = 1000; p < 1064; ++p) {
    t.src_port = p;
    seen.insert(h.hash(t, 0));
  }
  // 64 ports should produce many distinct hashes.
  EXPECT_GT(seen.size(), 32u);
}

TEST(EcmpHash, SaltDecorrelatesSwitches) {
  EcmpHash h;
  FiveTuple t{.src_ip = 10, .dst_ip = 20, .src_port = 4242};
  int diffs = 0;
  for (std::uint32_t salt = 1; salt <= 64; ++salt) {
    if (h.hash(t, salt) != h.hash(t, 0)) ++diffs;
  }
  EXPECT_GT(diffs, 48);
}

TEST(EcmpHash, TupleLinearityHoldsPerSwitch) {
  // Flipping the same source-port bits shifts the hash by the same XOR
  // delta irrespective of base port: H(p ^ d) = H(p) ^ (H(d) ^ H(0)).
  EcmpHash h;
  FiveTuple base{.src_ip = 7, .dst_ip = 9, .src_port = 0};
  auto hash_with_port = [&](std::uint16_t port) {
    FiveTuple t = base;
    t.src_port = port;
    return h.hash(t, 123);
  };
  std::uint16_t delta = 0x0204;
  std::uint16_t shift =
      static_cast<std::uint16_t>(hash_with_port(delta) ^ hash_with_port(0));
  for (std::uint16_t p : {std::uint16_t{1024}, std::uint16_t{4791}, std::uint16_t{60000}}) {
    EXPECT_EQ(hash_with_port(static_cast<std::uint16_t>(p ^ delta)),
              static_cast<std::uint16_t>(hash_with_port(p) ^ shift));
  }
}

TEST(EcmpHash, SelectCoversAllCandidates) {
  EcmpHash h;
  std::set<int> picks;
  FiveTuple t{.src_ip = 1, .dst_ip = 2};
  for (std::uint16_t p = 0; p < 512; ++p) {
    t.src_port = p;
    int pick = h.select(t, 99, 8);
    ASSERT_GE(pick, 0);
    ASSERT_LT(pick, 8);
    picks.insert(pick);
  }
  EXPECT_EQ(picks.size(), 8u);
}

}  // namespace
}  // namespace astral::net
