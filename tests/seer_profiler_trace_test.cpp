#include "seer/profiler_trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "seer/templates.h"

namespace astral::seer {
namespace {

SeerEngine make_engine() {
  return SeerEngine(
      CostModel(GpuSpec::h100(), CommEnv{}, std::make_shared<TheoreticalEfficiency>()));
}

const char* kTrace = R"({
  "traceEvents": [
    {"name":"embed","ph":"X","ts":0,"dur":100,"tid":0,"args":{"flops":1e9}},
    {"name":"qkv","ph":"X","ts":100,"dur":200,"tid":0,"args":{"flops":2e9}},
    {"name":"allreduce","ph":"X","ts":300,"dur":150,"tid":1,
     "args":{"comm":"allreduce","comm_bytes":4e6,"comm_group":8}},
    {"name":"mlp","ph":"X","ts":310,"dur":400,"tid":0,"args":{"flops":8e9,"mem_bytes":1e7}},
    {"name":"counter","ph":"C","ts":0,"args":{"v":1}}
  ]})";

TEST(ProfilerTrace, ImportsKernelAndCommEvents) {
  auto doc = core::Json::parse(kTrace);
  ASSERT_TRUE(doc.has_value());
  auto g = import_profiler_trace(*doc);
  ASSERT_TRUE(g.has_value());
  ASSERT_EQ(g->ops.size(), 4u);  // 'C' event skipped
  EXPECT_EQ(g->ops[0].name, "embed");
  EXPECT_EQ(g->ops[2].type, OpType::Comm);
  EXPECT_EQ(g->ops[2].comm, CommKind::AllReduce);
  EXPECT_EQ(g->ops[2].comm_group, 8);
  EXPECT_TRUE(g->validate());
}

TEST(ProfilerTrace, RecoversStreamOrderDependencies) {
  auto doc = core::Json::parse(kTrace);
  auto g = import_profiler_trace(*doc);
  ASSERT_TRUE(g.has_value());
  // qkv follows embed on stream 0.
  const Operator& qkv = g->ops[1];
  EXPECT_NE(std::find(qkv.deps.begin(), qkv.deps.end(), 0), qkv.deps.end());
  // allreduce (stream 1, ts 300) happens after qkv finished (ts 300):
  // the cross-stream witness edge.
  const Operator& ar = g->ops[2];
  EXPECT_NE(std::find(ar.deps.begin(), ar.deps.end(), 1), ar.deps.end());
}

TEST(ProfilerTrace, MeasuredTimesReplayExactly) {
  auto doc = core::Json::parse(kTrace);
  auto g = import_profiler_trace(*doc, /*keep_measured_times=*/true);
  ASSERT_TRUE(g.has_value());
  auto tl = make_engine().run(*g);
  // mlp starts at 310us (cross-stream dep on qkv end 300us, stream-0
  // chain) and runs 400us; allreduce overlaps on the comm stream.
  EXPECT_NEAR(tl.makespan, 710e-6, 15e-6);
}

TEST(ProfilerTrace, ReforecastUsesCostModel) {
  auto doc = core::Json::parse(kTrace);
  auto g = import_profiler_trace(*doc, /*keep_measured_times=*/false);
  ASSERT_TRUE(g.has_value());
  auto tl = make_engine().run(*g);
  EXPECT_GT(tl.makespan, 0.0);
  // Modeled H100 times differ from the profiled 710us.
  EXPECT_LT(tl.makespan, 500e-6);
}

TEST(ProfilerTrace, RoundTripsThroughExport) {
  // Template graph -> timeline -> trace -> graph: op inventory and
  // attributes survive.
  auto model = ModelSpec::tiny();
  auto graph = build_graph(model, {.tp = 2, .dp = 2, .pp = 1, .ep = 1}, WorkloadShape{});
  auto tl = make_engine().run(graph);
  auto trace = export_profiler_trace(tl, graph);
  auto back = import_profiler_trace(trace, /*keep_measured_times=*/true);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->ops.size(), graph.ops.size());
  EXPECT_NEAR(back->total_comm_bytes(), graph.total_comm_bytes(), 1.0);
  // Replaying the exported durations reproduces the makespan.
  auto tl2 = make_engine().run(*back);
  EXPECT_NEAR(tl2.makespan, tl.makespan, tl.makespan * 0.02);
}

TEST(ProfilerTrace, RejectsBadDocuments) {
  std::string err;
  auto empty = core::Json::parse(R"({"traceEvents": []})");
  EXPECT_FALSE(import_profiler_trace(*empty, false, &err).has_value());
  EXPECT_FALSE(err.empty());
  auto missing = core::Json::parse(R"({"nope": 1})");
  EXPECT_FALSE(import_profiler_trace(*missing).has_value());
}

TEST(ProfilerTrace, MalformedEntriesFailTheWholeImport) {
  // A garbage entry must not silently shrink the graph — a partial
  // import replays to a shorter makespan, which reads as a bogus speedup.
  std::string err;

  auto non_object = core::Json::parse(R"({"traceEvents": ["junk"]})");
  EXPECT_FALSE(import_profiler_trace(*non_object, false, &err).has_value());
  EXPECT_NE(err.find("traceEvents[0]"), std::string::npos) << err;
  EXPECT_NE(err.find("not an object"), std::string::npos) << err;

  // Entry without a 'ph' string: previously defaulted to "X" and became
  // a zero-duration op.
  auto no_ph = core::Json::parse(
      R"({"traceEvents": [
        {"name":"a","ph":"X","ts":0,"dur":10,"args":{"flops":1e9}},
        {"name":"garbage"}
      ]})");
  EXPECT_FALSE(import_profiler_trace(*no_ph, false, &err).has_value());
  EXPECT_NE(err.find("traceEvents[1]"), std::string::npos) << err;
  EXPECT_NE(err.find("'ph'"), std::string::npos) << err;

  auto no_ts = core::Json::parse(
      R"({"traceEvents": [{"name":"a","ph":"X","dur":10}]})");
  EXPECT_FALSE(import_profiler_trace(*no_ts, false, &err).has_value());
  EXPECT_NE(err.find("'ts'"), std::string::npos) << err;

  auto no_dur = core::Json::parse(
      R"({"traceEvents": [{"name":"a","ph":"X","ts":0}]})");
  EXPECT_FALSE(import_profiler_trace(*no_dur, false, &err).has_value());
  EXPECT_NE(err.find("'dur'"), std::string::npos) << err;

  auto neg_dur = core::Json::parse(
      R"({"traceEvents": [{"name":"a","ph":"X","ts":0,"dur":-5}]})");
  EXPECT_FALSE(import_profiler_trace(*neg_dur, false, &err).has_value());
  EXPECT_NE(err.find("negative"), std::string::npos) << err;

  auto bad_args = core::Json::parse(
      R"({"traceEvents": [{"name":"a","ph":"X","ts":0,"dur":1,"args":[1]}]})");
  EXPECT_FALSE(import_profiler_trace(*bad_args, false, &err).has_value());
  EXPECT_NE(err.find("'args'"), std::string::npos) << err;

  auto bad_kind = core::Json::parse(
      R"({"traceEvents": [{"name":"a","ph":"X","ts":0,"dur":1,
          "args":{"comm":"warpspeed"}}]})");
  EXPECT_FALSE(import_profiler_trace(*bad_kind, false, &err).has_value());
  EXPECT_NE(err.find("warpspeed"), std::string::npos) << err;
}

TEST(ProfilerTrace, NonCompleteEventsNeedNoTimestamps) {
  // Metadata / counter / instant phases are skipped without demanding
  // the X-event fields.
  auto doc = core::Json::parse(
      R"({"traceEvents": [
        {"ph":"M","name":"process_name","args":{"name":"p"}},
        {"ph":"C","name":"c","args":{"v":1}},
        {"ph":"i","name":"mark"},
        {"name":"a","ph":"X","ts":0,"dur":10,"args":{"flops":1e9}}
      ]})");
  std::string err;
  auto g = import_profiler_trace(*doc, false, &err);
  ASSERT_TRUE(g.has_value()) << err;
  EXPECT_EQ(g->ops.size(), 1u);
}

}  // namespace
}  // namespace astral::seer
