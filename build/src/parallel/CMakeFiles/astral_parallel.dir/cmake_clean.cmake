file(REMOVE_RECURSE
  "CMakeFiles/astral_parallel.dir/groups.cpp.o"
  "CMakeFiles/astral_parallel.dir/groups.cpp.o.d"
  "CMakeFiles/astral_parallel.dir/placement.cpp.o"
  "CMakeFiles/astral_parallel.dir/placement.cpp.o.d"
  "libastral_parallel.a"
  "libastral_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astral_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
