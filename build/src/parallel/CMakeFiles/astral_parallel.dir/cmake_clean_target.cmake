file(REMOVE_RECURSE
  "libastral_parallel.a"
)
