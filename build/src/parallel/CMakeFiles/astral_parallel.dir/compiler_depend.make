# Empty compiler generated dependencies file for astral_parallel.
# This may be replaced when dependencies are built.
