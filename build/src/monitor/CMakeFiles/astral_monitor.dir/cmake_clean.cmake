file(REMOVE_RECURSE
  "CMakeFiles/astral_monitor.dir/analyzer.cpp.o"
  "CMakeFiles/astral_monitor.dir/analyzer.cpp.o.d"
  "CMakeFiles/astral_monitor.dir/cluster_runtime.cpp.o"
  "CMakeFiles/astral_monitor.dir/cluster_runtime.cpp.o.d"
  "CMakeFiles/astral_monitor.dir/detectors.cpp.o"
  "CMakeFiles/astral_monitor.dir/detectors.cpp.o.d"
  "CMakeFiles/astral_monitor.dir/faults.cpp.o"
  "CMakeFiles/astral_monitor.dir/faults.cpp.o.d"
  "CMakeFiles/astral_monitor.dir/mttlf.cpp.o"
  "CMakeFiles/astral_monitor.dir/mttlf.cpp.o.d"
  "CMakeFiles/astral_monitor.dir/offline_tools.cpp.o"
  "CMakeFiles/astral_monitor.dir/offline_tools.cpp.o.d"
  "CMakeFiles/astral_monitor.dir/pingmesh.cpp.o"
  "CMakeFiles/astral_monitor.dir/pingmesh.cpp.o.d"
  "CMakeFiles/astral_monitor.dir/store.cpp.o"
  "CMakeFiles/astral_monitor.dir/store.cpp.o.d"
  "libastral_monitor.a"
  "libastral_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astral_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
