# Empty compiler generated dependencies file for astral_monitor.
# This may be replaced when dependencies are built.
