file(REMOVE_RECURSE
  "libastral_monitor.a"
)
