
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/monitor/analyzer.cpp" "src/monitor/CMakeFiles/astral_monitor.dir/analyzer.cpp.o" "gcc" "src/monitor/CMakeFiles/astral_monitor.dir/analyzer.cpp.o.d"
  "/root/repo/src/monitor/cluster_runtime.cpp" "src/monitor/CMakeFiles/astral_monitor.dir/cluster_runtime.cpp.o" "gcc" "src/monitor/CMakeFiles/astral_monitor.dir/cluster_runtime.cpp.o.d"
  "/root/repo/src/monitor/detectors.cpp" "src/monitor/CMakeFiles/astral_monitor.dir/detectors.cpp.o" "gcc" "src/monitor/CMakeFiles/astral_monitor.dir/detectors.cpp.o.d"
  "/root/repo/src/monitor/faults.cpp" "src/monitor/CMakeFiles/astral_monitor.dir/faults.cpp.o" "gcc" "src/monitor/CMakeFiles/astral_monitor.dir/faults.cpp.o.d"
  "/root/repo/src/monitor/mttlf.cpp" "src/monitor/CMakeFiles/astral_monitor.dir/mttlf.cpp.o" "gcc" "src/monitor/CMakeFiles/astral_monitor.dir/mttlf.cpp.o.d"
  "/root/repo/src/monitor/offline_tools.cpp" "src/monitor/CMakeFiles/astral_monitor.dir/offline_tools.cpp.o" "gcc" "src/monitor/CMakeFiles/astral_monitor.dir/offline_tools.cpp.o.d"
  "/root/repo/src/monitor/pingmesh.cpp" "src/monitor/CMakeFiles/astral_monitor.dir/pingmesh.cpp.o" "gcc" "src/monitor/CMakeFiles/astral_monitor.dir/pingmesh.cpp.o.d"
  "/root/repo/src/monitor/store.cpp" "src/monitor/CMakeFiles/astral_monitor.dir/store.cpp.o" "gcc" "src/monitor/CMakeFiles/astral_monitor.dir/store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/astral_net.dir/DependInfo.cmake"
  "/root/repo/build/src/coll/CMakeFiles/astral_coll.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/astral_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/astral_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
