file(REMOVE_RECURSE
  "libastral_pkt.a"
)
