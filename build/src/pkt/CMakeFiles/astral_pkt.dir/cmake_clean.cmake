file(REMOVE_RECURSE
  "CMakeFiles/astral_pkt.dir/packet_sim.cpp.o"
  "CMakeFiles/astral_pkt.dir/packet_sim.cpp.o.d"
  "libastral_pkt.a"
  "libastral_pkt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astral_pkt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
