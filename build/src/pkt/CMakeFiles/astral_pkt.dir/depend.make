# Empty dependencies file for astral_pkt.
# This may be replaced when dependencies are built.
