file(REMOVE_RECURSE
  "CMakeFiles/astral_coll.dir/runner.cpp.o"
  "CMakeFiles/astral_coll.dir/runner.cpp.o.d"
  "libastral_coll.a"
  "libastral_coll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astral_coll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
