file(REMOVE_RECURSE
  "libastral_coll.a"
)
