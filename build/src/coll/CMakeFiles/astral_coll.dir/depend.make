# Empty dependencies file for astral_coll.
# This may be replaced when dependencies are built.
