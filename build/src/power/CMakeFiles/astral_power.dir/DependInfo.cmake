
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/hvdc.cpp" "src/power/CMakeFiles/astral_power.dir/hvdc.cpp.o" "gcc" "src/power/CMakeFiles/astral_power.dir/hvdc.cpp.o.d"
  "/root/repo/src/power/profile.cpp" "src/power/CMakeFiles/astral_power.dir/profile.cpp.o" "gcc" "src/power/CMakeFiles/astral_power.dir/profile.cpp.o.d"
  "/root/repo/src/power/pue.cpp" "src/power/CMakeFiles/astral_power.dir/pue.cpp.o" "gcc" "src/power/CMakeFiles/astral_power.dir/pue.cpp.o.d"
  "/root/repo/src/power/renewables.cpp" "src/power/CMakeFiles/astral_power.dir/renewables.cpp.o" "gcc" "src/power/CMakeFiles/astral_power.dir/renewables.cpp.o.d"
  "/root/repo/src/power/scheduler.cpp" "src/power/CMakeFiles/astral_power.dir/scheduler.cpp.o" "gcc" "src/power/CMakeFiles/astral_power.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/astral_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cooling/CMakeFiles/astral_cooling.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
