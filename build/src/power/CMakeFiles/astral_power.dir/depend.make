# Empty dependencies file for astral_power.
# This may be replaced when dependencies are built.
