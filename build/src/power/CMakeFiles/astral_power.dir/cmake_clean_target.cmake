file(REMOVE_RECURSE
  "libastral_power.a"
)
