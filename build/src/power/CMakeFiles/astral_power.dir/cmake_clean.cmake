file(REMOVE_RECURSE
  "CMakeFiles/astral_power.dir/hvdc.cpp.o"
  "CMakeFiles/astral_power.dir/hvdc.cpp.o.d"
  "CMakeFiles/astral_power.dir/profile.cpp.o"
  "CMakeFiles/astral_power.dir/profile.cpp.o.d"
  "CMakeFiles/astral_power.dir/pue.cpp.o"
  "CMakeFiles/astral_power.dir/pue.cpp.o.d"
  "CMakeFiles/astral_power.dir/renewables.cpp.o"
  "CMakeFiles/astral_power.dir/renewables.cpp.o.d"
  "CMakeFiles/astral_power.dir/scheduler.cpp.o"
  "CMakeFiles/astral_power.dir/scheduler.cpp.o.d"
  "libastral_power.a"
  "libastral_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astral_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
