file(REMOVE_RECURSE
  "libastral_cooling.a"
)
