file(REMOVE_RECURSE
  "CMakeFiles/astral_cooling.dir/airflow.cpp.o"
  "CMakeFiles/astral_cooling.dir/airflow.cpp.o.d"
  "CMakeFiles/astral_cooling.dir/integrated.cpp.o"
  "CMakeFiles/astral_cooling.dir/integrated.cpp.o.d"
  "libastral_cooling.a"
  "libastral_cooling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astral_cooling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
