
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cooling/airflow.cpp" "src/cooling/CMakeFiles/astral_cooling.dir/airflow.cpp.o" "gcc" "src/cooling/CMakeFiles/astral_cooling.dir/airflow.cpp.o.d"
  "/root/repo/src/cooling/integrated.cpp" "src/cooling/CMakeFiles/astral_cooling.dir/integrated.cpp.o" "gcc" "src/cooling/CMakeFiles/astral_cooling.dir/integrated.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/astral_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
