# Empty dependencies file for astral_cooling.
# This may be replaced when dependencies are built.
