# CMake generated Testfile for 
# Source directory: /root/repo/src/cooling
# Build directory: /root/repo/build/src/cooling
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
