
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/seer/configs.cpp" "src/seer/CMakeFiles/astral_seer.dir/configs.cpp.o" "gcc" "src/seer/CMakeFiles/astral_seer.dir/configs.cpp.o.d"
  "/root/repo/src/seer/cost_model.cpp" "src/seer/CMakeFiles/astral_seer.dir/cost_model.cpp.o" "gcc" "src/seer/CMakeFiles/astral_seer.dir/cost_model.cpp.o.d"
  "/root/repo/src/seer/efficiency.cpp" "src/seer/CMakeFiles/astral_seer.dir/efficiency.cpp.o" "gcc" "src/seer/CMakeFiles/astral_seer.dir/efficiency.cpp.o.d"
  "/root/repo/src/seer/engine.cpp" "src/seer/CMakeFiles/astral_seer.dir/engine.cpp.o" "gcc" "src/seer/CMakeFiles/astral_seer.dir/engine.cpp.o.d"
  "/root/repo/src/seer/model_spec.cpp" "src/seer/CMakeFiles/astral_seer.dir/model_spec.cpp.o" "gcc" "src/seer/CMakeFiles/astral_seer.dir/model_spec.cpp.o.d"
  "/root/repo/src/seer/op_graph.cpp" "src/seer/CMakeFiles/astral_seer.dir/op_graph.cpp.o" "gcc" "src/seer/CMakeFiles/astral_seer.dir/op_graph.cpp.o.d"
  "/root/repo/src/seer/profiler_trace.cpp" "src/seer/CMakeFiles/astral_seer.dir/profiler_trace.cpp.o" "gcc" "src/seer/CMakeFiles/astral_seer.dir/profiler_trace.cpp.o.d"
  "/root/repo/src/seer/templates.cpp" "src/seer/CMakeFiles/astral_seer.dir/templates.cpp.o" "gcc" "src/seer/CMakeFiles/astral_seer.dir/templates.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/astral_core.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/astral_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/coll/CMakeFiles/astral_coll.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/astral_net.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/astral_topo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
