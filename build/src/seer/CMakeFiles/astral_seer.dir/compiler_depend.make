# Empty compiler generated dependencies file for astral_seer.
# This may be replaced when dependencies are built.
