file(REMOVE_RECURSE
  "libastral_seer.a"
)
