file(REMOVE_RECURSE
  "CMakeFiles/astral_seer.dir/configs.cpp.o"
  "CMakeFiles/astral_seer.dir/configs.cpp.o.d"
  "CMakeFiles/astral_seer.dir/cost_model.cpp.o"
  "CMakeFiles/astral_seer.dir/cost_model.cpp.o.d"
  "CMakeFiles/astral_seer.dir/efficiency.cpp.o"
  "CMakeFiles/astral_seer.dir/efficiency.cpp.o.d"
  "CMakeFiles/astral_seer.dir/engine.cpp.o"
  "CMakeFiles/astral_seer.dir/engine.cpp.o.d"
  "CMakeFiles/astral_seer.dir/model_spec.cpp.o"
  "CMakeFiles/astral_seer.dir/model_spec.cpp.o.d"
  "CMakeFiles/astral_seer.dir/op_graph.cpp.o"
  "CMakeFiles/astral_seer.dir/op_graph.cpp.o.d"
  "CMakeFiles/astral_seer.dir/profiler_trace.cpp.o"
  "CMakeFiles/astral_seer.dir/profiler_trace.cpp.o.d"
  "CMakeFiles/astral_seer.dir/templates.cpp.o"
  "CMakeFiles/astral_seer.dir/templates.cpp.o.d"
  "libastral_seer.a"
  "libastral_seer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astral_seer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
