file(REMOVE_RECURSE
  "CMakeFiles/astral_workload.dir/pipeline.cpp.o"
  "CMakeFiles/astral_workload.dir/pipeline.cpp.o.d"
  "CMakeFiles/astral_workload.dir/trainer.cpp.o"
  "CMakeFiles/astral_workload.dir/trainer.cpp.o.d"
  "CMakeFiles/astral_workload.dir/tuner.cpp.o"
  "CMakeFiles/astral_workload.dir/tuner.cpp.o.d"
  "libastral_workload.a"
  "libastral_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astral_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
