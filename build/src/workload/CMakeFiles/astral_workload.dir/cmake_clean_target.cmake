file(REMOVE_RECURSE
  "libastral_workload.a"
)
