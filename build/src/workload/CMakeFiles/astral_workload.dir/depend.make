# Empty dependencies file for astral_workload.
# This may be replaced when dependencies are built.
