file(REMOVE_RECURSE
  "CMakeFiles/astral_topo.dir/fabric.cpp.o"
  "CMakeFiles/astral_topo.dir/fabric.cpp.o.d"
  "CMakeFiles/astral_topo.dir/topology.cpp.o"
  "CMakeFiles/astral_topo.dir/topology.cpp.o.d"
  "libastral_topo.a"
  "libastral_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astral_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
