# Empty dependencies file for astral_topo.
# This may be replaced when dependencies are built.
