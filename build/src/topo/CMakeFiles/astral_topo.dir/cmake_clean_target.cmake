file(REMOVE_RECURSE
  "libastral_topo.a"
)
