
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/controller.cpp" "src/net/CMakeFiles/astral_net.dir/controller.cpp.o" "gcc" "src/net/CMakeFiles/astral_net.dir/controller.cpp.o.d"
  "/root/repo/src/net/fluid_sim.cpp" "src/net/CMakeFiles/astral_net.dir/fluid_sim.cpp.o" "gcc" "src/net/CMakeFiles/astral_net.dir/fluid_sim.cpp.o.d"
  "/root/repo/src/net/hash.cpp" "src/net/CMakeFiles/astral_net.dir/hash.cpp.o" "gcc" "src/net/CMakeFiles/astral_net.dir/hash.cpp.o.d"
  "/root/repo/src/net/router.cpp" "src/net/CMakeFiles/astral_net.dir/router.cpp.o" "gcc" "src/net/CMakeFiles/astral_net.dir/router.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topo/CMakeFiles/astral_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/astral_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
