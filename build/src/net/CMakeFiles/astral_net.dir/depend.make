# Empty dependencies file for astral_net.
# This may be replaced when dependencies are built.
