file(REMOVE_RECURSE
  "libastral_net.a"
)
