file(REMOVE_RECURSE
  "CMakeFiles/astral_net.dir/controller.cpp.o"
  "CMakeFiles/astral_net.dir/controller.cpp.o.d"
  "CMakeFiles/astral_net.dir/fluid_sim.cpp.o"
  "CMakeFiles/astral_net.dir/fluid_sim.cpp.o.d"
  "CMakeFiles/astral_net.dir/hash.cpp.o"
  "CMakeFiles/astral_net.dir/hash.cpp.o.d"
  "CMakeFiles/astral_net.dir/router.cpp.o"
  "CMakeFiles/astral_net.dir/router.cpp.o.d"
  "libastral_net.a"
  "libastral_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astral_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
