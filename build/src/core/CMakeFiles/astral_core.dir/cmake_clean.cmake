file(REMOVE_RECURSE
  "CMakeFiles/astral_core.dir/json.cpp.o"
  "CMakeFiles/astral_core.dir/json.cpp.o.d"
  "CMakeFiles/astral_core.dir/math.cpp.o"
  "CMakeFiles/astral_core.dir/math.cpp.o.d"
  "CMakeFiles/astral_core.dir/table.cpp.o"
  "CMakeFiles/astral_core.dir/table.cpp.o.d"
  "libastral_core.a"
  "libastral_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astral_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
