file(REMOVE_RECURSE
  "libastral_core.a"
)
