# Empty dependencies file for astral_core.
# This may be replaced when dependencies are built.
