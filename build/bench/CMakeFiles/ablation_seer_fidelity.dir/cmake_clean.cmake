file(REMOVE_RECURSE
  "CMakeFiles/ablation_seer_fidelity.dir/ablation_seer_fidelity.cpp.o"
  "CMakeFiles/ablation_seer_fidelity.dir/ablation_seer_fidelity.cpp.o.d"
  "ablation_seer_fidelity"
  "ablation_seer_fidelity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_seer_fidelity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
