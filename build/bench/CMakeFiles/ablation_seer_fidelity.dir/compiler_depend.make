# Empty compiler generated dependencies file for ablation_seer_fidelity.
# This may be replaced when dependencies are built.
