file(REMOVE_RECURSE
  "CMakeFiles/fig16_power_day.dir/fig16_power_day.cpp.o"
  "CMakeFiles/fig16_power_day.dir/fig16_power_day.cpp.o.d"
  "fig16_power_day"
  "fig16_power_day.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_power_day.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
