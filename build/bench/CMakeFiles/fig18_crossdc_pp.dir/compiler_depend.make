# Empty compiler generated dependencies file for fig18_crossdc_pp.
# This may be replaced when dependencies are built.
