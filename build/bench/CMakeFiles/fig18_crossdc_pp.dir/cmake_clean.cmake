file(REMOVE_RECURSE
  "CMakeFiles/fig18_crossdc_pp.dir/fig18_crossdc_pp.cpp.o"
  "CMakeFiles/fig18_crossdc_pp.dir/fig18_crossdc_pp.cpp.o.d"
  "fig18_crossdc_pp"
  "fig18_crossdc_pp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_crossdc_pp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
