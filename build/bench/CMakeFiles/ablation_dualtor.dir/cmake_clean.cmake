file(REMOVE_RECURSE
  "CMakeFiles/ablation_dualtor.dir/ablation_dualtor.cpp.o"
  "CMakeFiles/ablation_dualtor.dir/ablation_dualtor.cpp.o.d"
  "ablation_dualtor"
  "ablation_dualtor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dualtor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
