# Empty dependencies file for ablation_dualtor.
# This may be replaced when dependencies are built.
