file(REMOVE_RECURSE
  "CMakeFiles/fig15_power_iter.dir/fig15_power_iter.cpp.o"
  "CMakeFiles/fig15_power_iter.dir/fig15_power_iter.cpp.o.d"
  "fig15_power_iter"
  "fig15_power_iter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_power_iter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
