# Empty dependencies file for fig15_power_iter.
# This may be replaced when dependencies are built.
