file(REMOVE_RECURSE
  "CMakeFiles/fig10_mttlf.dir/fig10_mttlf.cpp.o"
  "CMakeFiles/fig10_mttlf.dir/fig10_mttlf.cpp.o.d"
  "fig10_mttlf"
  "fig10_mttlf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_mttlf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
