# Empty compiler generated dependencies file for fig10_mttlf.
# This may be replaced when dependencies are built.
