# Empty compiler generated dependencies file for fig14_intrahost.
# This may be replaced when dependencies are built.
