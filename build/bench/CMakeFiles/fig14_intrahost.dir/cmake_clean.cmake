file(REMOVE_RECURSE
  "CMakeFiles/fig14_intrahost.dir/fig14_intrahost.cpp.o"
  "CMakeFiles/fig14_intrahost.dir/fig14_intrahost.cpp.o.d"
  "fig14_intrahost"
  "fig14_intrahost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_intrahost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
