file(REMOVE_RECURSE
  "CMakeFiles/fig05_airflow.dir/fig05_airflow.cpp.o"
  "CMakeFiles/fig05_airflow.dir/fig05_airflow.cpp.o.d"
  "fig05_airflow"
  "fig05_airflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_airflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
