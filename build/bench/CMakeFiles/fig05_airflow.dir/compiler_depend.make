# Empty compiler generated dependencies file for fig05_airflow.
# This may be replaced when dependencies are built.
