file(REMOVE_RECURSE
  "CMakeFiles/ablation_architectures.dir/ablation_architectures.cpp.o"
  "CMakeFiles/ablation_architectures.dir/ablation_architectures.cpp.o.d"
  "ablation_architectures"
  "ablation_architectures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_architectures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
