file(REMOVE_RECURSE
  "CMakeFiles/fig02_alltoall.dir/fig02_alltoall.cpp.o"
  "CMakeFiles/fig02_alltoall.dir/fig02_alltoall.cpp.o.d"
  "fig02_alltoall"
  "fig02_alltoall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_alltoall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
