# Empty compiler generated dependencies file for fig02_alltoall.
# This may be replaced when dependencies are built.
