# Empty compiler generated dependencies file for fig13_crossdc.
# This may be replaced when dependencies are built.
