file(REMOVE_RECURSE
  "CMakeFiles/fig13_crossdc.dir/fig13_crossdc.cpp.o"
  "CMakeFiles/fig13_crossdc.dir/fig13_crossdc.cpp.o.d"
  "fig13_crossdc"
  "fig13_crossdc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_crossdc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
