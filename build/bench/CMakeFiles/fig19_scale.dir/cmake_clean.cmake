file(REMOVE_RECURSE
  "CMakeFiles/fig19_scale.dir/fig19_scale.cpp.o"
  "CMakeFiles/fig19_scale.dir/fig19_scale.cpp.o.d"
  "fig19_scale"
  "fig19_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
