file(REMOVE_RECURSE
  "CMakeFiles/appc_overhead.dir/appc_overhead.cpp.o"
  "CMakeFiles/appc_overhead.dir/appc_overhead.cpp.o.d"
  "appc_overhead"
  "appc_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appc_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
