# Empty compiler generated dependencies file for appc_overhead.
# This may be replaced when dependencies are built.
