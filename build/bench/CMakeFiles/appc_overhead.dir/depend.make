# Empty dependencies file for appc_overhead.
# This may be replaced when dependencies are built.
