# Empty dependencies file for fig09_case.
# This may be replaced when dependencies are built.
