file(REMOVE_RECURSE
  "CMakeFiles/fig09_case.dir/fig09_case.cpp.o"
  "CMakeFiles/fig09_case.dir/fig09_case.cpp.o.d"
  "fig09_case"
  "fig09_case.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_case.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
