# Empty compiler generated dependencies file for fig06_pue.
# This may be replaced when dependencies are built.
