file(REMOVE_RECURSE
  "CMakeFiles/fig06_pue.dir/fig06_pue.cpp.o"
  "CMakeFiles/fig06_pue.dir/fig06_pue.cpp.o.d"
  "fig06_pue"
  "fig06_pue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_pue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
