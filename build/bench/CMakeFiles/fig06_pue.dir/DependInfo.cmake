
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig06_pue.cpp" "bench/CMakeFiles/fig06_pue.dir/fig06_pue.cpp.o" "gcc" "bench/CMakeFiles/fig06_pue.dir/fig06_pue.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/power/CMakeFiles/astral_power.dir/DependInfo.cmake"
  "/root/repo/build/src/cooling/CMakeFiles/astral_cooling.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/astral_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
