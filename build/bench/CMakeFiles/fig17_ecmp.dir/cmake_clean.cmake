file(REMOVE_RECURSE
  "CMakeFiles/fig17_ecmp.dir/fig17_ecmp.cpp.o"
  "CMakeFiles/fig17_ecmp.dir/fig17_ecmp.cpp.o.d"
  "fig17_ecmp"
  "fig17_ecmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_ecmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
