# Empty compiler generated dependencies file for fig17_ecmp.
# This may be replaced when dependencies are built.
