file(REMOVE_RECURSE
  "CMakeFiles/fig07_taxonomy.dir/fig07_taxonomy.cpp.o"
  "CMakeFiles/fig07_taxonomy.dir/fig07_taxonomy.cpp.o.d"
  "fig07_taxonomy"
  "fig07_taxonomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_taxonomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
