# Empty dependencies file for fig07_taxonomy.
# This may be replaced when dependencies are built.
