file(REMOVE_RECURSE
  "CMakeFiles/diagnose_failure.dir/diagnose_failure.cpp.o"
  "CMakeFiles/diagnose_failure.dir/diagnose_failure.cpp.o.d"
  "diagnose_failure"
  "diagnose_failure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diagnose_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
