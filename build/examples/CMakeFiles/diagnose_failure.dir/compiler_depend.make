# Empty compiler generated dependencies file for diagnose_failure.
# This may be replaced when dependencies are built.
