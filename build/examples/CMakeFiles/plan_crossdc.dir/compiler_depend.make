# Empty compiler generated dependencies file for plan_crossdc.
# This may be replaced when dependencies are built.
