file(REMOVE_RECURSE
  "CMakeFiles/plan_crossdc.dir/plan_crossdc.cpp.o"
  "CMakeFiles/plan_crossdc.dir/plan_crossdc.cpp.o.d"
  "plan_crossdc"
  "plan_crossdc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_crossdc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
