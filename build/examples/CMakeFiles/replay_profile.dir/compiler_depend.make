# Empty compiler generated dependencies file for replay_profile.
# This may be replaced when dependencies are built.
