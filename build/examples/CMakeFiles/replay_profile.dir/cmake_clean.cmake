file(REMOVE_RECURSE
  "CMakeFiles/replay_profile.dir/replay_profile.cpp.o"
  "CMakeFiles/replay_profile.dir/replay_profile.cpp.o.d"
  "replay_profile"
  "replay_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replay_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
