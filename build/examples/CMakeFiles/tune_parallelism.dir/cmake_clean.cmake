file(REMOVE_RECURSE
  "CMakeFiles/tune_parallelism.dir/tune_parallelism.cpp.o"
  "CMakeFiles/tune_parallelism.dir/tune_parallelism.cpp.o.d"
  "tune_parallelism"
  "tune_parallelism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tune_parallelism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
