file(REMOVE_RECURSE
  "CMakeFiles/plan_datacenter.dir/plan_datacenter.cpp.o"
  "CMakeFiles/plan_datacenter.dir/plan_datacenter.cpp.o.d"
  "plan_datacenter"
  "plan_datacenter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_datacenter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
