# Empty dependencies file for plan_datacenter.
# This may be replaced when dependencies are built.
