file(REMOVE_RECURSE
  "CMakeFiles/parallel_groups_test.dir/parallel_groups_test.cpp.o"
  "CMakeFiles/parallel_groups_test.dir/parallel_groups_test.cpp.o.d"
  "parallel_groups_test"
  "parallel_groups_test.pdb"
  "parallel_groups_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_groups_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
