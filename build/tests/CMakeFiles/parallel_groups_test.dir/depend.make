# Empty dependencies file for parallel_groups_test.
# This may be replaced when dependencies are built.
