file(REMOVE_RECURSE
  "CMakeFiles/topo_property_test.dir/topo_property_test.cpp.o"
  "CMakeFiles/topo_property_test.dir/topo_property_test.cpp.o.d"
  "topo_property_test"
  "topo_property_test.pdb"
  "topo_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topo_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
