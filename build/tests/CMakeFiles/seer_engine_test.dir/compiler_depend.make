# Empty compiler generated dependencies file for seer_engine_test.
# This may be replaced when dependencies are built.
