file(REMOVE_RECURSE
  "CMakeFiles/seer_engine_test.dir/seer_engine_test.cpp.o"
  "CMakeFiles/seer_engine_test.dir/seer_engine_test.cpp.o.d"
  "seer_engine_test"
  "seer_engine_test.pdb"
  "seer_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seer_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
