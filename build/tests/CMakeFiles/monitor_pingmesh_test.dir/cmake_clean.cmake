file(REMOVE_RECURSE
  "CMakeFiles/monitor_pingmesh_test.dir/monitor_pingmesh_test.cpp.o"
  "CMakeFiles/monitor_pingmesh_test.dir/monitor_pingmesh_test.cpp.o.d"
  "monitor_pingmesh_test"
  "monitor_pingmesh_test.pdb"
  "monitor_pingmesh_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitor_pingmesh_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
