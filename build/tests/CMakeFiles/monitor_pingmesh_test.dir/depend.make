# Empty dependencies file for monitor_pingmesh_test.
# This may be replaced when dependencies are built.
