file(REMOVE_RECURSE
  "CMakeFiles/seer_property_test.dir/seer_property_test.cpp.o"
  "CMakeFiles/seer_property_test.dir/seer_property_test.cpp.o.d"
  "seer_property_test"
  "seer_property_test.pdb"
  "seer_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seer_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
