# Empty compiler generated dependencies file for seer_property_test.
# This may be replaced when dependencies are built.
