file(REMOVE_RECURSE
  "CMakeFiles/net_controller_test.dir/net_controller_test.cpp.o"
  "CMakeFiles/net_controller_test.dir/net_controller_test.cpp.o.d"
  "net_controller_test"
  "net_controller_test.pdb"
  "net_controller_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_controller_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
