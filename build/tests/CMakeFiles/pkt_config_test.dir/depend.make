# Empty dependencies file for pkt_config_test.
# This may be replaced when dependencies are built.
