file(REMOVE_RECURSE
  "CMakeFiles/pkt_config_test.dir/pkt_config_test.cpp.o"
  "CMakeFiles/pkt_config_test.dir/pkt_config_test.cpp.o.d"
  "pkt_config_test"
  "pkt_config_test.pdb"
  "pkt_config_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pkt_config_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
