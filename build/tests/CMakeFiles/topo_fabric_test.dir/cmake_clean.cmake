file(REMOVE_RECURSE
  "CMakeFiles/topo_fabric_test.dir/topo_fabric_test.cpp.o"
  "CMakeFiles/topo_fabric_test.dir/topo_fabric_test.cpp.o.d"
  "topo_fabric_test"
  "topo_fabric_test.pdb"
  "topo_fabric_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topo_fabric_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
