file(REMOVE_RECURSE
  "CMakeFiles/monitor_tools_test.dir/monitor_tools_test.cpp.o"
  "CMakeFiles/monitor_tools_test.dir/monitor_tools_test.cpp.o.d"
  "monitor_tools_test"
  "monitor_tools_test.pdb"
  "monitor_tools_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitor_tools_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
