# Empty dependencies file for monitor_tools_test.
# This may be replaced when dependencies are built.
