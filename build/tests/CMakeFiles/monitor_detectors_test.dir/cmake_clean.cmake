file(REMOVE_RECURSE
  "CMakeFiles/monitor_detectors_test.dir/monitor_detectors_test.cpp.o"
  "CMakeFiles/monitor_detectors_test.dir/monitor_detectors_test.cpp.o.d"
  "monitor_detectors_test"
  "monitor_detectors_test.pdb"
  "monitor_detectors_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitor_detectors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
