# Empty dependencies file for pkt_packet_sim_test.
# This may be replaced when dependencies are built.
