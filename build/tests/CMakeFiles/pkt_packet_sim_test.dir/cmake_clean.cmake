file(REMOVE_RECURSE
  "CMakeFiles/pkt_packet_sim_test.dir/pkt_packet_sim_test.cpp.o"
  "CMakeFiles/pkt_packet_sim_test.dir/pkt_packet_sim_test.cpp.o.d"
  "pkt_packet_sim_test"
  "pkt_packet_sim_test.pdb"
  "pkt_packet_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pkt_packet_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
