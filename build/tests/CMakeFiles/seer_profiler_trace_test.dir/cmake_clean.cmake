file(REMOVE_RECURSE
  "CMakeFiles/seer_profiler_trace_test.dir/seer_profiler_trace_test.cpp.o"
  "CMakeFiles/seer_profiler_trace_test.dir/seer_profiler_trace_test.cpp.o.d"
  "seer_profiler_trace_test"
  "seer_profiler_trace_test.pdb"
  "seer_profiler_trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seer_profiler_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
