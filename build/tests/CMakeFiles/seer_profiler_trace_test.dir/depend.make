# Empty dependencies file for seer_profiler_trace_test.
# This may be replaced when dependencies are built.
