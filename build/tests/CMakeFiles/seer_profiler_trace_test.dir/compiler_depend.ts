# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for seer_profiler_trace_test.
