file(REMOVE_RECURSE
  "CMakeFiles/net_hash_test.dir/net_hash_test.cpp.o"
  "CMakeFiles/net_hash_test.dir/net_hash_test.cpp.o.d"
  "net_hash_test"
  "net_hash_test.pdb"
  "net_hash_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_hash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
