file(REMOVE_RECURSE
  "CMakeFiles/cooling_test.dir/cooling_test.cpp.o"
  "CMakeFiles/cooling_test.dir/cooling_test.cpp.o.d"
  "cooling_test"
  "cooling_test.pdb"
  "cooling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cooling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
