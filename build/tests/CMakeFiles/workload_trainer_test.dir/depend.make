# Empty dependencies file for workload_trainer_test.
# This may be replaced when dependencies are built.
