file(REMOVE_RECURSE
  "CMakeFiles/workload_trainer_test.dir/workload_trainer_test.cpp.o"
  "CMakeFiles/workload_trainer_test.dir/workload_trainer_test.cpp.o.d"
  "workload_trainer_test"
  "workload_trainer_test.pdb"
  "workload_trainer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_trainer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
