file(REMOVE_RECURSE
  "CMakeFiles/monitor_runtime_test.dir/monitor_runtime_test.cpp.o"
  "CMakeFiles/monitor_runtime_test.dir/monitor_runtime_test.cpp.o.d"
  "monitor_runtime_test"
  "monitor_runtime_test.pdb"
  "monitor_runtime_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitor_runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
