# Empty compiler generated dependencies file for monitor_runtime_test.
# This may be replaced when dependencies are built.
