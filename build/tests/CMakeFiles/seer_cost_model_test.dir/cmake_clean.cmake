file(REMOVE_RECURSE
  "CMakeFiles/seer_cost_model_test.dir/seer_cost_model_test.cpp.o"
  "CMakeFiles/seer_cost_model_test.dir/seer_cost_model_test.cpp.o.d"
  "seer_cost_model_test"
  "seer_cost_model_test.pdb"
  "seer_cost_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seer_cost_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
