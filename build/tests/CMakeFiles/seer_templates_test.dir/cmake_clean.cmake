file(REMOVE_RECURSE
  "CMakeFiles/seer_templates_test.dir/seer_templates_test.cpp.o"
  "CMakeFiles/seer_templates_test.dir/seer_templates_test.cpp.o.d"
  "seer_templates_test"
  "seer_templates_test.pdb"
  "seer_templates_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seer_templates_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
