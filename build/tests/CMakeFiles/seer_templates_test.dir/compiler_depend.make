# Empty compiler generated dependencies file for seer_templates_test.
# This may be replaced when dependencies are built.
