# Empty dependencies file for coll_runner_test.
# This may be replaced when dependencies are built.
