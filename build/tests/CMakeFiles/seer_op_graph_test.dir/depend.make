# Empty dependencies file for seer_op_graph_test.
# This may be replaced when dependencies are built.
