file(REMOVE_RECURSE
  "CMakeFiles/seer_op_graph_test.dir/seer_op_graph_test.cpp.o"
  "CMakeFiles/seer_op_graph_test.dir/seer_op_graph_test.cpp.o.d"
  "seer_op_graph_test"
  "seer_op_graph_test.pdb"
  "seer_op_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seer_op_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
