# Empty dependencies file for monitor_store_test.
# This may be replaced when dependencies are built.
