
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/monitor_store_test.cpp" "tests/CMakeFiles/monitor_store_test.dir/monitor_store_test.cpp.o" "gcc" "tests/CMakeFiles/monitor_store_test.dir/monitor_store_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/monitor/CMakeFiles/astral_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/coll/CMakeFiles/astral_coll.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/astral_net.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/astral_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/astral_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
