# Empty dependencies file for workload_pipeline_test.
# This may be replaced when dependencies are built.
