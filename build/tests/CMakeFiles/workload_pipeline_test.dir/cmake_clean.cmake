file(REMOVE_RECURSE
  "CMakeFiles/workload_pipeline_test.dir/workload_pipeline_test.cpp.o"
  "CMakeFiles/workload_pipeline_test.dir/workload_pipeline_test.cpp.o.d"
  "workload_pipeline_test"
  "workload_pipeline_test.pdb"
  "workload_pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
