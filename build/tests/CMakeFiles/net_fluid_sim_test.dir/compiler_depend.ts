# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for net_fluid_sim_test.
