# Empty dependencies file for net_fluid_sim_test.
# This may be replaced when dependencies are built.
