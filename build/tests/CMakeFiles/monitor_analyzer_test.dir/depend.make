# Empty dependencies file for monitor_analyzer_test.
# This may be replaced when dependencies are built.
