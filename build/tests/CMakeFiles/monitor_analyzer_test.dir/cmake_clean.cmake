file(REMOVE_RECURSE
  "CMakeFiles/monitor_analyzer_test.dir/monitor_analyzer_test.cpp.o"
  "CMakeFiles/monitor_analyzer_test.dir/monitor_analyzer_test.cpp.o.d"
  "monitor_analyzer_test"
  "monitor_analyzer_test.pdb"
  "monitor_analyzer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitor_analyzer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
