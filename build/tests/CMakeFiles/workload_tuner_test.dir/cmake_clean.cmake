file(REMOVE_RECURSE
  "CMakeFiles/workload_tuner_test.dir/workload_tuner_test.cpp.o"
  "CMakeFiles/workload_tuner_test.dir/workload_tuner_test.cpp.o.d"
  "workload_tuner_test"
  "workload_tuner_test.pdb"
  "workload_tuner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_tuner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
