# Empty compiler generated dependencies file for workload_tuner_test.
# This may be replaced when dependencies are built.
