file(REMOVE_RECURSE
  "CMakeFiles/core_math_test.dir/core_math_test.cpp.o"
  "CMakeFiles/core_math_test.dir/core_math_test.cpp.o.d"
  "core_math_test"
  "core_math_test.pdb"
  "core_math_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_math_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
