# Empty dependencies file for core_math_test.
# This may be replaced when dependencies are built.
