file(REMOVE_RECURSE
  "CMakeFiles/monitor_property_test.dir/monitor_property_test.cpp.o"
  "CMakeFiles/monitor_property_test.dir/monitor_property_test.cpp.o.d"
  "monitor_property_test"
  "monitor_property_test.pdb"
  "monitor_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitor_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
