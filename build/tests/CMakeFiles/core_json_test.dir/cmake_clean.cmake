file(REMOVE_RECURSE
  "CMakeFiles/core_json_test.dir/core_json_test.cpp.o"
  "CMakeFiles/core_json_test.dir/core_json_test.cpp.o.d"
  "core_json_test"
  "core_json_test.pdb"
  "core_json_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_json_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
