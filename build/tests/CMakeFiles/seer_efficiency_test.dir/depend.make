# Empty dependencies file for seer_efficiency_test.
# This may be replaced when dependencies are built.
