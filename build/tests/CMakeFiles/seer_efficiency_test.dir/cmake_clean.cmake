file(REMOVE_RECURSE
  "CMakeFiles/seer_efficiency_test.dir/seer_efficiency_test.cpp.o"
  "CMakeFiles/seer_efficiency_test.dir/seer_efficiency_test.cpp.o.d"
  "seer_efficiency_test"
  "seer_efficiency_test.pdb"
  "seer_efficiency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seer_efficiency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
