// Basic vocabulary of the fabric model: nodes (hosts and switches) and
// directed links. Coordinates (pod / block / rail / side / index) encode
// where a node sits in the hierarchy so builders, routing and the
// monitoring system can reason about locality without string parsing.
#pragma once

#include <cstdint>
#include <string>

#include "core/units.h"

namespace astral::topo {

using NodeId = std::uint32_t;
using LinkId = std::uint32_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);
inline constexpr LinkId kInvalidLink = static_cast<LinkId>(-1);

enum class NodeKind : std::uint8_t {
  Host,  ///< A GPU server: 8 GPUs, 8 rail NICs (2x200G ports each).
  Tor,   ///< Tier-1 top-of-rack switch, bound to one rail and one side.
  Agg,   ///< Tier-2 aggregation switch.
  Core,  ///< Tier-3 core switch (cross-rail / cross-pod).
};

/// Returns a short human-readable label for a node kind.
const char* to_string(NodeKind kind);

struct Node {
  NodeId id = kInvalidNode;
  NodeKind kind = NodeKind::Host;
  std::string name;

  // Hierarchy coordinates; -1 where not applicable.
  int pod = -1;    ///< Pod index (hosts, ToRs, Aggs). Cores span pods.
  int block = -1;  ///< Block index within the pod (hosts, ToRs).
  int rail = -1;   ///< Rail (same-rank GPU/NIC index) for ToRs/Aggs.
  int side = -1;   ///< Dual-ToR side (0/1) for ToRs/Aggs.
  int group = -1;  ///< Agg group within pod, or Core group.
  int index = -1;  ///< Index within the node's own group.
};

struct Link {
  LinkId id = kInvalidLink;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  core::Bps capacity = 0;
  bool up = true;  ///< False when failed/drained; routing skips it.
};

}  // namespace astral::topo
