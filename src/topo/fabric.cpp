#include "topo/fabric.h"

#include <cassert>
#include <cmath>
#include <stdexcept>
#include <string>

#include "core/rng.h"

namespace astral::topo {

const char* to_string(FabricStyle style) {
  switch (style) {
    case FabricStyle::AstralSameRail: return "astral-same-rail";
    case FabricStyle::RailOptimized: return "rail-optimized";
    case FabricStyle::Clos: return "clos";
    case FabricStyle::RailOnly: return "rail-only";
    case FabricStyle::UBMesh: return "ub-mesh";
  }
  return "?";
}

std::optional<FabricStyle> style_from_string(const std::string& name) {
  for (FabricStyle s : kAllFabricStyles) {
    if (name == to_string(s)) return s;
  }
  return std::nullopt;
}

std::optional<std::string> validate_params(const FabricParams& p) {
  std::vector<std::string> problems;
  auto bad = [&](std::string msg) {
    problems.push_back("[" + std::to_string(problems.size()) + "] " + std::move(msg));
  };
  auto positive = [&](const char* name, int v) {
    if (v <= 0) bad(std::string(name) + " must be > 0 (got " + std::to_string(v) + ")");
  };
  positive("rails", p.rails);
  positive("hosts_per_block", p.hosts_per_block);
  positive("blocks_per_pod", p.blocks_per_pod);
  positive("pods", p.pods);
  positive("datacenters", p.datacenters);
  if (p.host_port_gbps <= 0.0) {
    bad("host_port_gbps must be > 0 (got " + std::to_string(p.host_port_gbps) + ")");
  }
  if (p.trunk_gbps <= 0.0) {
    bad("trunk_gbps must be > 0 (got " + std::to_string(p.trunk_gbps) + ")");
  }
  if (p.tier3_oversub < 1.0) {
    bad("tier3_oversub must be >= 1 (got " + std::to_string(p.tier3_oversub) +
        "); oversubscription thins the core, it cannot add capacity");
  }
  if (p.datacenters > 1 && p.crossdc_oversub <= 0.0) {
    bad("crossdc_oversub must be > 0 when datacenters > 1 (got " +
        std::to_string(p.crossdc_oversub) + ")");
  }
  if (problems.empty()) return std::nullopt;
  std::string joined = problems.front();
  for (std::size_t i = 1; i < problems.size(); ++i) joined += "; " + problems[i];
  return joined;
}

FabricParams FabricParams::paper_scale() {
  FabricParams p;
  p.style = FabricStyle::AstralSameRail;
  p.rails = 8;
  p.hosts_per_block = 128;
  p.blocks_per_pod = 64;
  p.pods = 8;
  p.host_port_gbps = 200.0;
  p.trunk_gbps = 400.0;
  return p;
}

int FabricParams::tor_uplinks() const {
  // ToR downlink capacity must equal uplink capacity (identical aggregated
  // bandwidth); with single-ToR wiring both NIC ports land on one link.
  double down = hosts_per_block * host_link_gbps();
  return static_cast<int>(std::ceil(down / trunk_gbps));
}

int FabricParams::agg_count() const {
  // Same-rail styles: rails*sides groups of tor_uplinks() Aggs per pod.
  // Full-mesh styles: one pod-wide group of the same total. UBMesh: the
  // pod's tor_uplinks() border switches.
  int per_pod = style == FabricStyle::UBMesh ? tor_uplinks()
                                             : rails * sides() * tor_uplinks();
  return total_pods() * per_pod;
}

int FabricParams::core_count() const {
  if (style == FabricStyle::RailOnly || style == FabricStyle::UBMesh) return 0;
  return datacenters * tor_uplinks() * blocks_per_pod;
}

long long FabricParams::link_count() const {
  const long long hosts = host_count();
  const long long tier1 = 2ll * hosts * rails * sides();
  // Every style wires blocks_per_pod*rails*sides ToRs to tor_uplinks()
  // Aggs-worth of trunk per pod (same-rail: per group; full-mesh: shuffled
  // slots; UBMesh: every ToR to every border switch).
  const long long tier2 = 2ll * total_pods() * tors_per_pod() * tor_uplinks();
  long long total = tier1 + tier2;
  const int T = tors_per_pod();
  switch (style) {
    case FabricStyle::RailOnly:
      break;
    case FabricStyle::AstralSameRail:
    case FabricStyle::RailOptimized:
    case FabricStyle::Clos:
      // Each Agg uplinks to blocks_per_pod same-rank cores; long haul
      // pairs same-index cores of adjacent datacenters.
      total += 2ll * total_pods() * rails * sides() * tor_uplinks() * blocks_per_pod;
      total += 2ll * (datacenters - 1) * tor_uplinks() * blocks_per_pod;
      break;
    case FabricStyle::UBMesh:
      // Dim-2 intra-pod ToR mesh, dim-3 per-rank pod mesh per DC, dim-4
      // same-(pod,rank) long-haul pairs.
      total += static_cast<long long>(total_pods()) * T * (T - 1);
      total += static_cast<long long>(datacenters) * tor_uplinks() * pods * (pods - 1);
      total += 2ll * (datacenters - 1) * pods * tor_uplinks();
      break;
  }
  return total;
}

double FabricParams::expected_tier_gbps(NodeKind a, NodeKind b) const {
  const double per_link = host_link_gbps();
  const int U = tor_uplinks();
  const int T = tors_per_pod();
  const int PT = total_pods();
  const bool has_core = style != FabricStyle::RailOnly && style != FabricStyle::UBMesh;
  if ((a == NodeKind::Host && b == NodeKind::Tor) ||
      (a == NodeKind::Tor && b == NodeKind::Host)) {
    return static_cast<double>(host_count()) * rails * sides() * per_link;
  }
  if ((a == NodeKind::Tor && b == NodeKind::Agg) ||
      (a == NodeKind::Agg && b == NodeKind::Tor)) {
    return static_cast<double>(PT) * T * U * trunk_gbps;
  }
  if (a == NodeKind::Tor && b == NodeKind::Tor) {
    // UBMesh dim 2: per-ToR mesh capacity = host-side down capacity,
    // spread across T-1 neighbors; tier_bandwidth sums both directions.
    if (style != FabricStyle::UBMesh || T <= 1) return 0.0;
    return static_cast<double>(PT) * T * hosts_per_block * per_link;
  }
  if ((a == NodeKind::Agg && b == NodeKind::Core) ||
      (a == NodeKind::Core && b == NodeKind::Agg)) {
    if (!has_core) return 0.0;
    return static_cast<double>(PT) * rails * sides() * U * blocks_per_pod * trunk_gbps /
           tier3_oversub;
  }
  if (a == NodeKind::Agg && b == NodeKind::Agg) {
    if (style != FabricStyle::UBMesh) return 0.0;
    // Dim 3: per-rank pod mesh, each border switch spending its ToR-side
    // down capacity (T*trunk) over pods-1 peers, thinned by the
    // oversubscription knob...
    double total = pods > 1 ? static_cast<double>(datacenters) * U * pods * T *
                                  trunk_gbps / tier3_oversub
                            : 0.0;
    // ...plus dim 4: both directions of the long-haul pairs.
    if (datacenters > 1) {
      total += 2.0 * (datacenters - 1) * pods * U * T * trunk_gbps /
               (tier3_oversub * crossdc_oversub);
    }
    return total;
  }
  if (a == NodeKind::Core && b == NodeKind::Core) {
    if (!has_core || datacenters <= 1) return 0.0;
    return 2.0 * (datacenters - 1) * U * blocks_per_pod * pods * rails * sides() *
           trunk_gbps / (tier3_oversub * crossdc_oversub);
  }
  return 0.0;
}

double FabricParams::expected_bisection_gbps() const {
  const int PT = total_pods();
  if (PT < 2 || PT % 2 != 0) return 0.0;
  if (style == FabricStyle::RailOnly) return 0.0;
  const int U = tor_uplinks();
  const int T = tors_per_pod();
  if (datacenters == 1) {
    if (style == FabricStyle::UBMesh) {
      // Full-mesh capacity between the halves: (P/2)^2 same-rank border
      // pairs out of the P-1 peers each switch spreads its uplink over.
      return static_cast<double>(U) * (PT / 2) * (PT / 2) * T * trunk_gbps /
             ((PT - 1) * tier3_oversub);
    }
    // Clos-like: the cut runs between one half's Aggs and the shared
    // core layer — half the pods' worth of Agg->Core capacity.
    return static_cast<double>(PT / 2) * rails * sides() * U * blocks_per_pod *
           trunk_gbps / tier3_oversub;
  }
  if (datacenters % 2 != 0) return 0.0;
  // The canonical halves split between datacenters: the cut is one
  // long-haul boundary (identical per boundary for both wirings).
  return static_cast<double>(pods) * U * T * trunk_gbps /
         (tier3_oversub * crossdc_oversub);
}

Fabric::Fabric(FabricParams params) : params_(params) {
  if (auto err = validate_params(params_)) {
    throw std::invalid_argument("Fabric: invalid FabricParams: " + *err);
  }
  build();
}

Fabric build_fabric(FabricParams params) { return Fabric(params); }

NodeId Fabric::host_at(int pod, int block, int host_index) const {
  int idx = (pod * params_.blocks_per_pod + block) * params_.hosts_per_block + host_index;
  return hosts_[static_cast<std::size_t>(idx)];
}

NodeId Fabric::tor_at(int pod, int block, int rail, int side) const {
  int per_block = params_.rails * params_.sides();
  int idx = (pod * params_.blocks_per_pod + block) * per_block + rail * params_.sides() + side;
  if (idx < 0 || static_cast<std::size_t>(idx) >= tors_.size()) return kInvalidNode;
  return tors_[static_cast<std::size_t>(idx)];
}

GpuLoc Fabric::gpu(int global_gpu) const {
  GpuLoc loc;
  loc.rail = global_gpu % params_.rails;
  int host = global_gpu / params_.rails;
  loc.host_index = host % params_.hosts_per_block;
  int block = host / params_.hosts_per_block;
  loc.block = block % params_.blocks_per_pod;
  loc.pod = block / params_.blocks_per_pod;  // global pod across DCs
  loc.host = hosts_[static_cast<std::size_t>(host)];
  return loc;
}

bool Fabric::fabric_reachable(int gpu_a, int gpu_b) const {
  if (params_.style != FabricStyle::RailOnly) return true;
  GpuLoc a = gpu(gpu_a);
  GpuLoc b = gpu(gpu_b);
  // Rail-only fabrics connect only same-rail NICs; different rails must
  // first hop through NVLink inside the host.
  return a.rail == b.rail || a.host == b.host;
}

void Fabric::build() {
  build_tier1();
  switch (params_.style) {
    case FabricStyle::AstralSameRail:
      build_tier2_same_rail();
      build_tier3();
      break;
    case FabricStyle::RailOnly:
      build_tier2_same_rail();  // per-rail islands; no Core tier
      break;
    case FabricStyle::RailOptimized:
    case FabricStyle::Clos:
      build_tier2_full_mesh();
      build_tier3();
      break;
    case FabricStyle::UBMesh:
      build_tier2_ubmesh();
      build_tier3_ubmesh();
      break;
  }
}

void Fabric::build_tier1() {
  const int sides = params_.sides();
  const double per_link_gbps = params_.host_port_gbps * (params_.dual_tor ? 1.0 : 2.0);

  for (int p = 0; p < params_.total_pods(); ++p) {
    for (int b = 0; b < params_.blocks_per_pod; ++b) {
      // ToRs first so host wiring can reference them.
      for (int r = 0; r < params_.rails; ++r) {
        for (int s = 0; s < sides; ++s) {
          Node n;
          n.kind = NodeKind::Tor;
          n.pod = p;
          n.block = b;
          n.rail = r;
          n.side = s;
          n.name = "p" + std::to_string(p) + ".b" + std::to_string(b) + ".tor.r" +
                   std::to_string(r) + ".s" + std::to_string(s);
          tors_.push_back(topo_.add_node(std::move(n)));
        }
      }
      for (int h = 0; h < params_.hosts_per_block; ++h) {
        Node n;
        n.kind = NodeKind::Host;
        n.pod = p;
        n.block = b;
        n.index = h;
        n.name = "p" + std::to_string(p) + ".b" + std::to_string(b) + ".h" + std::to_string(h);
        NodeId host = topo_.add_node(std::move(n));
        hosts_.push_back(host);
        for (int r = 0; r < params_.rails; ++r) {
          for (int s = 0; s < sides; ++s) {
            // Clos scrambles the rail->ToR binding per host so same-rank
            // GPUs do not share a ToR; rail styles keep it aligned (P1/P3).
            int tor_rail = params_.style == FabricStyle::Clos
                               ? (r + h) % params_.rails
                               : r;
            NodeId tor = tor_at(p, b, tor_rail, s);
            auto [up, down] = topo_.add_duplex(host, tor, core::gbps(per_link_gbps));
            (void)down;
            topo_.set_host_uplink(host, r, s, up);
          }
        }
      }
    }
  }
}

void Fabric::build_tier2_same_rail() {
  const int sides = params_.sides();
  const int groups = params_.rails * sides;
  const int aggs_per_group = params_.tor_uplinks();
  agg_groups_per_pod_ = groups;
  aggs_by_group_.assign(static_cast<std::size_t>(params_.total_pods()) * groups, {});

  for (int p = 0; p < params_.total_pods(); ++p) {
    for (int r = 0; r < params_.rails; ++r) {
      for (int s = 0; s < sides; ++s) {
        int g = r * sides + s;
        auto& group = aggs_by_group_[static_cast<std::size_t>(p) * groups + g];
        for (int i = 0; i < aggs_per_group; ++i) {
          Node n;
          n.kind = NodeKind::Agg;
          n.pod = p;
          n.rail = r;
          n.side = s;
          n.group = g;
          n.index = i;
          n.name = "p" + std::to_string(p) + ".agg.g" + std::to_string(g) + ".i" +
                   std::to_string(i);
          group.push_back(topo_.add_node(std::move(n)));
        }
        // Every same-rail (and same-side) ToR of every block in the pod
        // connects once to each Agg of this group: this is P1, the
        // same-rail aggregation that maximizes the per-rail GPU count.
        for (int b = 0; b < params_.blocks_per_pod; ++b) {
          NodeId tor = tor_at(p, b, r, s);
          for (NodeId agg : group) {
            topo_.add_duplex(tor, agg, core::gbps(params_.trunk_gbps));
          }
        }
      }
    }
  }
}

void Fabric::build_tier2_full_mesh() {
  const int sides = params_.sides();
  const int uplinks = params_.tor_uplinks();
  const int total_aggs = params_.rails * sides * uplinks;
  agg_groups_per_pod_ = 1;
  aggs_by_group_.assign(static_cast<std::size_t>(params_.total_pods()), {});

  for (int p = 0; p < params_.total_pods(); ++p) {
    auto& group = aggs_by_group_[static_cast<std::size_t>(p)];
    for (int i = 0; i < total_aggs; ++i) {
      Node n;
      n.kind = NodeKind::Agg;
      n.pod = p;
      n.group = 0;
      n.index = i;
      n.name = "p" + std::to_string(p) + ".agg.mesh.i" + std::to_string(i);
      group.push_back(topo_.add_node(std::move(n)));
    }
    // Fully interconnected tier 2 without rail structure: each ToR gets
    // full-rate trunk uplinks to a pseudo-random subset of Aggs so that
    // Aggs serve ToRs of many rails (cross-rail reachability at tier 2).
    // The shuffled slot list keeps per-Agg down-degree exactly balanced
    // at `blocks_per_pod` while breaking the modular structure that would
    // otherwise recreate same-rail groups.
    const int tors = params_.blocks_per_pod * params_.rails * sides;
    std::vector<NodeId> slots;
    slots.reserve(static_cast<std::size_t>(tors) * uplinks);
    for (int rep = 0; rep < params_.blocks_per_pod; ++rep) {
      for (NodeId agg : group) slots.push_back(agg);
    }
    core::Rng rng(0xA55ull + static_cast<std::uint64_t>(p));
    for (std::size_t i = slots.size(); i > 1; --i) {
      std::swap(slots[i - 1], slots[rng.uniform_int(i)]);
    }
    std::size_t cursor = 0;
    for (int b = 0; b < params_.blocks_per_pod; ++b) {
      for (int r = 0; r < params_.rails; ++r) {
        for (int s = 0; s < sides; ++s) {
          NodeId tor = tor_at(p, b, r, s);
          // Occasional duplicate picks become parallel links — fine for
          // both capacity accounting and ECMP.
          for (int k = 0; k < uplinks; ++k) {
            topo_.add_duplex(tor, slots[cursor++], core::gbps(params_.trunk_gbps));
          }
        }
      }
    }
  }
}

void Fabric::build_tier2_ubmesh() {
  // Dimension 2 of the nD-FullMesh: every ToR of a pod links directly to
  // every other ToR of the pod (across blocks, rails AND sides — locality
  // replaces the aggregation tier for intra-pod traffic). Each ToR's
  // aggregate mesh capacity equals its host-side down capacity (the P2
  // invariant at the ToR boundary), spread evenly over its T-1 neighbors.
  const int T = params_.tors_per_pod();
  if (T <= 1) return;
  const double mesh_gbps =
      params_.hosts_per_block * params_.host_link_gbps() / (T - 1);
  for (int p = 0; p < params_.total_pods(); ++p) {
    const int base = p * T;  // tors_ is flattened pod-major
    for (int i = 0; i < T; ++i) {
      for (int j = i + 1; j < T; ++j) {
        topo_.add_duplex(tors_[static_cast<std::size_t>(base + i)],
                         tors_[static_cast<std::size_t>(base + j)],
                         core::gbps(mesh_gbps));
      }
    }
  }
}

void Fabric::build_tier3_ubmesh() {
  // Dimensions 3 and 4: each pod gets tor_uplinks() border switches
  // (NodeKind::Agg), every ToR trunk-connected to each of them. Same-rank
  // border switches form a full mesh across the pods of a datacenter —
  // each spreads its ToR-side down capacity (T * trunk / tier3_oversub)
  // over its pods-1 peers — and same-(pod,rank) switches of adjacent
  // datacenters carry the long haul, further thinned by crossdc_oversub.
  const int U = params_.tor_uplinks();
  const int T = params_.tors_per_pod();
  agg_groups_per_pod_ = 1;
  aggs_by_group_.assign(static_cast<std::size_t>(params_.total_pods()), {});

  for (int p = 0; p < params_.total_pods(); ++p) {
    auto& group = aggs_by_group_[static_cast<std::size_t>(p)];
    for (int i = 0; i < U; ++i) {
      Node n;
      n.kind = NodeKind::Agg;
      n.pod = p;
      n.group = 0;
      n.index = i;
      n.name = "p" + std::to_string(p) + ".agg.ub.i" + std::to_string(i);
      group.push_back(topo_.add_node(std::move(n)));
    }
    const int base = p * T;
    for (int t = 0; t < T; ++t) {
      for (NodeId agg : group) {
        topo_.add_duplex(tors_[static_cast<std::size_t>(base + t)], agg,
                         core::gbps(params_.trunk_gbps));
      }
    }
  }

  if (params_.pods > 1) {
    const double pod_gbps =
        T * params_.trunk_gbps / ((params_.pods - 1) * params_.tier3_oversub);
    for (int dc = 0; dc < params_.datacenters; ++dc) {
      for (int rank = 0; rank < U; ++rank) {
        for (int pa = 0; pa < params_.pods; ++pa) {
          for (int pb = pa + 1; pb < params_.pods; ++pb) {
            NodeId a = aggs_by_group_[static_cast<std::size_t>(dc * params_.pods + pa)]
                                     [static_cast<std::size_t>(rank)];
            NodeId b = aggs_by_group_[static_cast<std::size_t>(dc * params_.pods + pb)]
                                     [static_cast<std::size_t>(rank)];
            topo_.add_duplex(a, b, core::gbps(pod_gbps));
          }
        }
      }
    }
  }

  if (params_.datacenters > 1) {
    const double haul_gbps = T * params_.trunk_gbps /
                             (params_.tier3_oversub * params_.crossdc_oversub);
    for (int dc = 0; dc + 1 < params_.datacenters; ++dc) {
      for (int p = 0; p < params_.pods; ++p) {
        for (int rank = 0; rank < U; ++rank) {
          NodeId a = aggs_by_group_[static_cast<std::size_t>(dc * params_.pods + p)]
                                   [static_cast<std::size_t>(rank)];
          NodeId b =
              aggs_by_group_[static_cast<std::size_t>((dc + 1) * params_.pods + p)]
                            [static_cast<std::size_t>(rank)];
          topo_.add_duplex(a, b, core::gbps(haul_gbps));
        }
      }
    }
  }
}

void Fabric::build_tier3() {
  const int ranks = params_.tor_uplinks();  // core groups, by Agg rank
  const int cores_per_group = params_.blocks_per_pod;
  const double up_gbps = params_.trunk_gbps / params_.tier3_oversub;
  const int groups_per_pod = agg_groups_per_pod_;

  // One core layer per datacenter.
  std::vector<std::vector<NodeId>> cores_by_dc(static_cast<std::size_t>(params_.datacenters));
  for (int dc = 0; dc < params_.datacenters; ++dc) {
    for (int g = 0; g < ranks; ++g) {
      for (int i = 0; i < cores_per_group; ++i) {
        Node n;
        n.kind = NodeKind::Core;
        n.pod = dc * params_.pods;  // home DC marker (first pod of the DC)
        n.group = g;
        n.index = i;
        n.name = "dc" + std::to_string(dc) + ".core.g" + std::to_string(g) + ".i" +
                 std::to_string(i);
        cores_by_dc[static_cast<std::size_t>(dc)].push_back(topo_.add_node(std::move(n)));
      }
    }
  }

  // Same-rank Aggs across all groups and pods of a datacenter connect to
  // that DC's core group, giving cross-rail and cross-pod reachability in
  // exactly two extra hops. tier3_oversub > 1 thins each uplink (the
  // Fig. 2 study).
  for (std::size_t gi = 0; gi < aggs_by_group_.size(); ++gi) {
    int pod = static_cast<int>(gi) / groups_per_pod;
    int dc = pod / params_.pods;
    const auto& group = aggs_by_group_[gi];
    for (std::size_t i = 0; i < group.size(); ++i) {
      int rank = static_cast<int>(i) % ranks;
      for (int c = 0; c < cores_per_group; ++c) {
        NodeId core = cores_by_dc[static_cast<std::size_t>(dc)]
                                 [static_cast<std::size_t>(rank * cores_per_group + c)];
        topo_.add_duplex(group[i], core, core::gbps(up_gbps));
      }
    }
  }

  if (params_.datacenters > 1) build_long_haul(cores_by_dc);
}

void Fabric::build_long_haul(const std::vector<std::vector<NodeId>>& cores_by_dc) {
  // Appendix B: long-haul trunks pair same-rank cores of neighboring
  // datacenters. Each core's cross-DC capacity is its aggregate down
  // capacity (pods * rails * sides links of trunk/tier3_oversub each)
  // divided by the cross-DC oversubscription ratio.
  const double core_down_gbps = params_.pods * params_.rails * params_.sides() *
                                params_.trunk_gbps / params_.tier3_oversub;
  const double haul_gbps = core_down_gbps / params_.crossdc_oversub;
  for (int dc = 0; dc + 1 < params_.datacenters; ++dc) {
    const auto& a = cores_by_dc[static_cast<std::size_t>(dc)];
    const auto& b = cores_by_dc[static_cast<std::size_t>(dc + 1)];
    for (std::size_t i = 0; i < a.size() && i < b.size(); ++i) {
      topo_.add_duplex(a[i], b[i], core::gbps(haul_gbps));
    }
  }
}

}  // namespace astral::topo
