#include "topo/fabric.h"

#include <cassert>
#include <cmath>
#include <string>

#include "core/rng.h"

namespace astral::topo {

const char* to_string(FabricStyle style) {
  switch (style) {
    case FabricStyle::AstralSameRail: return "astral-same-rail";
    case FabricStyle::RailOptimized: return "rail-optimized";
    case FabricStyle::Clos: return "clos";
    case FabricStyle::RailOnly: return "rail-only";
  }
  return "?";
}

FabricParams FabricParams::paper_scale() {
  FabricParams p;
  p.style = FabricStyle::AstralSameRail;
  p.rails = 8;
  p.hosts_per_block = 128;
  p.blocks_per_pod = 64;
  p.pods = 8;
  p.host_port_gbps = 200.0;
  p.trunk_gbps = 400.0;
  return p;
}

int FabricParams::tor_uplinks() const {
  // ToR downlink capacity must equal uplink capacity (identical aggregated
  // bandwidth); with single-ToR wiring both NIC ports land on one link.
  double per_link = host_port_gbps * (dual_tor ? 1.0 : 2.0);
  double down = hosts_per_block * per_link;
  return static_cast<int>(std::ceil(down / trunk_gbps));
}

Fabric::Fabric(FabricParams params) : params_(params) { build(); }

Fabric build_fabric(FabricParams params) { return Fabric(params); }

NodeId Fabric::host_at(int pod, int block, int host_index) const {
  int idx = (pod * params_.blocks_per_pod + block) * params_.hosts_per_block + host_index;
  return hosts_[static_cast<std::size_t>(idx)];
}

NodeId Fabric::tor_at(int pod, int block, int rail, int side) const {
  int per_block = params_.rails * params_.sides();
  int idx = (pod * params_.blocks_per_pod + block) * per_block + rail * params_.sides() + side;
  if (idx < 0 || static_cast<std::size_t>(idx) >= tors_.size()) return kInvalidNode;
  return tors_[static_cast<std::size_t>(idx)];
}

GpuLoc Fabric::gpu(int global_gpu) const {
  GpuLoc loc;
  loc.rail = global_gpu % params_.rails;
  int host = global_gpu / params_.rails;
  loc.host_index = host % params_.hosts_per_block;
  int block = host / params_.hosts_per_block;
  loc.block = block % params_.blocks_per_pod;
  loc.pod = block / params_.blocks_per_pod;  // global pod across DCs
  loc.host = hosts_[static_cast<std::size_t>(host)];
  return loc;
}

bool Fabric::fabric_reachable(int gpu_a, int gpu_b) const {
  if (params_.style != FabricStyle::RailOnly) return true;
  GpuLoc a = gpu(gpu_a);
  GpuLoc b = gpu(gpu_b);
  // Rail-only fabrics connect only same-rail NICs; different rails must
  // first hop through NVLink inside the host.
  return a.rail == b.rail || a.host == b.host;
}

void Fabric::build() {
  build_tier1();
  switch (params_.style) {
    case FabricStyle::AstralSameRail:
    case FabricStyle::RailOnly:
      build_tier2_same_rail();
      break;
    case FabricStyle::RailOptimized:
    case FabricStyle::Clos:
      build_tier2_full_mesh();
      break;
  }
  if (params_.style != FabricStyle::RailOnly) build_tier3();
}

void Fabric::build_tier1() {
  const int sides = params_.sides();
  const double per_link_gbps = params_.host_port_gbps * (params_.dual_tor ? 1.0 : 2.0);

  for (int p = 0; p < params_.total_pods(); ++p) {
    for (int b = 0; b < params_.blocks_per_pod; ++b) {
      // ToRs first so host wiring can reference them.
      for (int r = 0; r < params_.rails; ++r) {
        for (int s = 0; s < sides; ++s) {
          Node n;
          n.kind = NodeKind::Tor;
          n.pod = p;
          n.block = b;
          n.rail = r;
          n.side = s;
          n.name = "p" + std::to_string(p) + ".b" + std::to_string(b) + ".tor.r" +
                   std::to_string(r) + ".s" + std::to_string(s);
          tors_.push_back(topo_.add_node(std::move(n)));
        }
      }
      for (int h = 0; h < params_.hosts_per_block; ++h) {
        Node n;
        n.kind = NodeKind::Host;
        n.pod = p;
        n.block = b;
        n.index = h;
        n.name = "p" + std::to_string(p) + ".b" + std::to_string(b) + ".h" + std::to_string(h);
        NodeId host = topo_.add_node(std::move(n));
        hosts_.push_back(host);
        for (int r = 0; r < params_.rails; ++r) {
          for (int s = 0; s < sides; ++s) {
            // Clos scrambles the rail->ToR binding per host so same-rank
            // GPUs do not share a ToR; rail styles keep it aligned (P1/P3).
            int tor_rail = params_.style == FabricStyle::Clos
                               ? (r + h) % params_.rails
                               : r;
            NodeId tor = tor_at(p, b, tor_rail, s);
            auto [up, down] = topo_.add_duplex(host, tor, core::gbps(per_link_gbps));
            (void)down;
            topo_.set_host_uplink(host, r, s, up);
          }
        }
      }
    }
  }
}

void Fabric::build_tier2_same_rail() {
  const int sides = params_.sides();
  const int groups = params_.rails * sides;
  const int aggs_per_group = params_.tor_uplinks();
  agg_groups_per_pod_ = groups;
  aggs_by_group_.assign(static_cast<std::size_t>(params_.total_pods()) * groups, {});

  for (int p = 0; p < params_.total_pods(); ++p) {
    for (int r = 0; r < params_.rails; ++r) {
      for (int s = 0; s < sides; ++s) {
        int g = r * sides + s;
        auto& group = aggs_by_group_[static_cast<std::size_t>(p) * groups + g];
        for (int i = 0; i < aggs_per_group; ++i) {
          Node n;
          n.kind = NodeKind::Agg;
          n.pod = p;
          n.rail = r;
          n.side = s;
          n.group = g;
          n.index = i;
          n.name = "p" + std::to_string(p) + ".agg.g" + std::to_string(g) + ".i" +
                   std::to_string(i);
          group.push_back(topo_.add_node(std::move(n)));
        }
        // Every same-rail (and same-side) ToR of every block in the pod
        // connects once to each Agg of this group: this is P1, the
        // same-rail aggregation that maximizes the per-rail GPU count.
        for (int b = 0; b < params_.blocks_per_pod; ++b) {
          NodeId tor = tor_at(p, b, r, s);
          for (NodeId agg : group) {
            topo_.add_duplex(tor, agg, core::gbps(params_.trunk_gbps));
          }
        }
      }
    }
  }
}

void Fabric::build_tier2_full_mesh() {
  const int sides = params_.sides();
  const int uplinks = params_.tor_uplinks();
  const int total_aggs = params_.rails * sides * uplinks;
  agg_groups_per_pod_ = 1;
  aggs_by_group_.assign(static_cast<std::size_t>(params_.total_pods()), {});

  for (int p = 0; p < params_.total_pods(); ++p) {
    auto& group = aggs_by_group_[static_cast<std::size_t>(p)];
    for (int i = 0; i < total_aggs; ++i) {
      Node n;
      n.kind = NodeKind::Agg;
      n.pod = p;
      n.group = 0;
      n.index = i;
      n.name = "p" + std::to_string(p) + ".agg.mesh.i" + std::to_string(i);
      group.push_back(topo_.add_node(std::move(n)));
    }
    // Fully interconnected tier 2 without rail structure: each ToR gets
    // full-rate trunk uplinks to a pseudo-random subset of Aggs so that
    // Aggs serve ToRs of many rails (cross-rail reachability at tier 2).
    // The shuffled slot list keeps per-Agg down-degree exactly balanced
    // at `blocks_per_pod` while breaking the modular structure that would
    // otherwise recreate same-rail groups.
    const int tors = params_.blocks_per_pod * params_.rails * sides;
    std::vector<NodeId> slots;
    slots.reserve(static_cast<std::size_t>(tors) * uplinks);
    for (int rep = 0; rep < params_.blocks_per_pod; ++rep) {
      for (NodeId agg : group) slots.push_back(agg);
    }
    core::Rng rng(0xA55ull + static_cast<std::uint64_t>(p));
    for (std::size_t i = slots.size(); i > 1; --i) {
      std::swap(slots[i - 1], slots[rng.uniform_int(i)]);
    }
    std::size_t cursor = 0;
    for (int b = 0; b < params_.blocks_per_pod; ++b) {
      for (int r = 0; r < params_.rails; ++r) {
        for (int s = 0; s < sides; ++s) {
          NodeId tor = tor_at(p, b, r, s);
          // Occasional duplicate picks become parallel links — fine for
          // both capacity accounting and ECMP.
          for (int k = 0; k < uplinks; ++k) {
            topo_.add_duplex(tor, slots[cursor++], core::gbps(params_.trunk_gbps));
          }
        }
      }
    }
  }
}

void Fabric::build_tier3() {
  const int ranks = params_.tor_uplinks();  // core groups, by Agg rank
  const int cores_per_group = params_.blocks_per_pod;
  const double up_gbps = params_.trunk_gbps / params_.tier3_oversub;
  const int groups_per_pod = agg_groups_per_pod_;

  // One core layer per datacenter.
  std::vector<std::vector<NodeId>> cores_by_dc(static_cast<std::size_t>(params_.datacenters));
  for (int dc = 0; dc < params_.datacenters; ++dc) {
    for (int g = 0; g < ranks; ++g) {
      for (int i = 0; i < cores_per_group; ++i) {
        Node n;
        n.kind = NodeKind::Core;
        n.pod = dc * params_.pods;  // home DC marker (first pod of the DC)
        n.group = g;
        n.index = i;
        n.name = "dc" + std::to_string(dc) + ".core.g" + std::to_string(g) + ".i" +
                 std::to_string(i);
        cores_by_dc[static_cast<std::size_t>(dc)].push_back(topo_.add_node(std::move(n)));
      }
    }
  }

  // Same-rank Aggs across all groups and pods of a datacenter connect to
  // that DC's core group, giving cross-rail and cross-pod reachability in
  // exactly two extra hops. tier3_oversub > 1 thins each uplink (the
  // Fig. 2 study).
  for (std::size_t gi = 0; gi < aggs_by_group_.size(); ++gi) {
    int pod = static_cast<int>(gi) / groups_per_pod;
    int dc = pod / params_.pods;
    const auto& group = aggs_by_group_[gi];
    for (std::size_t i = 0; i < group.size(); ++i) {
      int rank = static_cast<int>(i) % ranks;
      for (int c = 0; c < cores_per_group; ++c) {
        NodeId core = cores_by_dc[static_cast<std::size_t>(dc)]
                                 [static_cast<std::size_t>(rank * cores_per_group + c)];
        topo_.add_duplex(group[i], core, core::gbps(up_gbps));
      }
    }
  }

  if (params_.datacenters > 1) build_long_haul(cores_by_dc);
}

void Fabric::build_long_haul(const std::vector<std::vector<NodeId>>& cores_by_dc) {
  // Appendix B: long-haul trunks pair same-rank cores of neighboring
  // datacenters. Each core's cross-DC capacity is its aggregate down
  // capacity (pods * rails * sides links of trunk/tier3_oversub each)
  // divided by the cross-DC oversubscription ratio.
  const double core_down_gbps = params_.pods * params_.rails * params_.sides() *
                                params_.trunk_gbps / params_.tier3_oversub;
  const double haul_gbps = core_down_gbps / params_.crossdc_oversub;
  for (int dc = 0; dc + 1 < params_.datacenters; ++dc) {
    const auto& a = cores_by_dc[static_cast<std::size_t>(dc)];
    const auto& b = cores_by_dc[static_cast<std::size_t>(dc + 1)];
    for (std::size_t i = 0; i < a.size() && i < b.size(); ++i) {
      topo_.add_duplex(a[i], b[i], core::gbps(haul_gbps));
    }
  }
}

}  // namespace astral::topo
