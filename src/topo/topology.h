// The fabric graph: nodes, directed links, host uplink bookkeeping, and
// destination-rooted shortest-path routing with ECMP candidate sets.
#pragma once

#include <span>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "topo/types.h"

namespace astral::topo {

/// A directed multigraph of hosts and switches. Links are added in pairs
/// (one per direction) by `add_duplex`. Routing uses hop-count shortest
/// paths, which in these Clos-like fabrics coincides with up-down routing;
/// equal-cost next hops form the ECMP candidate set.
class Topology {
 public:
  /// Adds a node and returns its id.
  NodeId add_node(Node node);

  /// Adds a single directed link.
  LinkId add_link(NodeId src, NodeId dst, core::Bps capacity);

  /// Adds both directions with equal capacity; returns {src->dst, dst->src}.
  std::pair<LinkId, LinkId> add_duplex(NodeId a, NodeId b, core::Bps capacity);

  const Node& node(NodeId id) const { return nodes_[id]; }
  Node& node(NodeId id) { return nodes_[id]; }
  const Link& link(LinkId id) const { return links_[id]; }
  Link& link(LinkId id) { return links_[id]; }

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t link_count() const { return links_.size(); }
  std::span<const Node> nodes() const { return nodes_; }
  std::span<const Link> links() const { return links_; }

  /// Outgoing link ids of a node.
  std::span<const LinkId> out_links(NodeId id) const { return out_[id]; }
  /// Incoming link ids of a node.
  std::span<const LinkId> in_links(NodeId id) const { return in_[id]; }

  /// All host node ids in creation order.
  std::span<const NodeId> hosts() const { return hosts_; }

  /// Registers a host uplink for (rail, side); builders call this so flow
  /// admission can pick the right NIC port.
  void set_host_uplink(NodeId host, int rail, int side, LinkId link);

  /// The uplink a GPU on `rail` of `host` uses via NIC port `side`;
  /// kInvalidLink when that rail/side does not exist (e.g. rail-only
  /// fabrics with a single side).
  LinkId host_uplink(NodeId host, int rail, int side) const;

  /// Number of dual-ToR sides host uplinks were registered with (1 or 2).
  int sides() const { return sides_; }
  /// Number of rails host uplinks were registered with.
  int rails() const { return rails_; }

  /// Marks a link (single direction) up or down and invalidates routes.
  void set_link_state(LinkId id, bool up);

  /// Equal-cost next-hop links from `from` toward destination node `dst`
  /// over up links only. Empty when `dst` is unreachable. Distances are
  /// cached per destination; the cache resets on link state changes.
  std::vector<LinkId> next_hops(NodeId from, NodeId dst) const;

  /// Hop distance from `from` to `dst` over up links; -1 if unreachable.
  int distance(NodeId from, NodeId dst) const;

  /// Enumerates every distinct shortest path (as link id sequences) from
  /// src to dst, up to `limit` paths. Used by tests and the path-overlap
  /// failure localizer.
  std::vector<std::vector<LinkId>> shortest_paths(NodeId src, NodeId dst,
                                                  std::size_t limit = 64) const;

  /// Sum of capacities of up links from tier `a` to tier `b` (aggregate
  /// bandwidth between tiers; the paper's "identical aggregated
  /// bandwidth" invariant).
  core::Bps tier_bandwidth(NodeKind a, NodeKind b) const;

  /// Looks up a node id by name; kInvalidNode when absent.
  NodeId find(std::string_view name) const;

 private:
  // Only distances are cached (O(nodes) per destination); next-hop sets
  // are derived on demand from the distance field, keeping the cache
  // small even with thousands of destinations.
  struct DestRoutes {
    std::vector<int> dist;  // per node, hops to the destination
  };

  const DestRoutes& routes_for(NodeId dst) const;

  std::vector<Node> nodes_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> out_;
  std::vector<std::vector<LinkId>> in_;
  std::vector<NodeId> hosts_;
  std::unordered_map<std::string, NodeId> by_name_;
  // host -> rail -> side -> uplink
  std::unordered_map<NodeId, std::vector<LinkId>> uplinks_;
  int rails_ = 0;
  int sides_ = 1;

  mutable std::unordered_map<NodeId, DestRoutes> route_cache_;
};

}  // namespace astral::topo
