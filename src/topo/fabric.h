// Fabric builders for the architectures compared in the paper:
//
//  * AstralSameRail — the paper's contribution (§2.1): rail ToRs at tier 1
//    (dual-ToR per NIC), tier-2 Agg groups that aggregate *same-rail* ToRs
//    across all blocks of a Pod, tier-3 Cores connecting same-rank Aggs;
//    identical aggregated bandwidth at every tier.
//  * RailOptimized — Alibaba-HPN-like: rail ToRs, but tier 2 fully
//    interconnects all ToRs of a Pod (cross-rail at Agg).
//  * Clos — Meta/ByteDance-like 3-tier Clos with no rail awareness: a
//    host's NIC ports are scrambled across ToRs; tier 2 is a full mesh.
//  * RailOnly — Meta's rail-only design: per-rail islands, no Core tier;
//    cross-rail traffic must use the intra-host interconnect.
//  * UBMesh — UB-Mesh-like hierarchically localized nD-FullMesh: rail
//    ToRs at dimension 1 (dual-ToR preserved), a direct full mesh over
//    all ToRs of a Pod at dimension 2 (per-ToR mesh capacity equals its
//    host-side down capacity), per-Pod border switches forming a
//    same-rank full mesh across the Pods of a datacenter at dimension 3
//    (thinned by tier3_oversub), and same-(pod,rank) long-haul pairs
//    between adjacent datacenters at dimension 4. Short traffic stays
//    low-dimension (2 switch hops intra-Pod vs. Clos's 3) at the price
//    of bisection bandwidth spread across all Pod pairs.
//
// All builders expose a tier-3 oversubscription knob (the paper's Fig. 2
// study) and produce scaled-down instances by default; paper_scale()
// gives the published 512K-GPU parameterization for capacity math.
//
// FabricParams doubles as the closed-form oracle for the topology-zoo
// conformance suite: expected node/link censuses, per-tier aggregate
// bandwidth, and bisection bandwidth are all derivable from the
// parameters alone (see the "closed-form census" block below), and
// tests/topo_zoo_conformance_test.cpp checks every built member against
// them.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "topo/topology.h"

namespace astral::topo {

enum class FabricStyle : std::uint8_t {
  AstralSameRail,
  RailOptimized,
  Clos,
  RailOnly,
  UBMesh,
};

const char* to_string(FabricStyle style);
/// Inverse of to_string (the CLI seam for style-parameterized
/// campaigns); nullopt for an unknown name.
std::optional<FabricStyle> style_from_string(const std::string& name);

/// All zoo members, in canonical comparison order.
inline constexpr FabricStyle kAllFabricStyles[] = {
    FabricStyle::AstralSameRail, FabricStyle::RailOptimized, FabricStyle::Clos,
    FabricStyle::RailOnly, FabricStyle::UBMesh};

struct FabricParams {
  FabricStyle style = FabricStyle::AstralSameRail;
  int rails = 8;            ///< GPUs (= rail NICs) per host.
  int hosts_per_block = 16; ///< Paper: 128 (1024-GPU block).
  int blocks_per_pod = 8;   ///< Paper: 64 (64K-GPU pod).
  int pods = 2;             ///< Paper: 8 (512K-GPU cluster).
  double host_port_gbps = 200.0;  ///< Per NIC port (2 ports per NIC).
  double trunk_gbps = 400.0;      ///< ToR-Agg and Agg-Core links.
  double tier3_oversub = 1.0;     ///< >1 divides Agg->Core capacity.
  bool dual_tor = true;           ///< P3: each NIC port on a distinct ToR.

  // Appendix B extension: multiple datacenters hundreds of km apart,
  // joined by long-haul trunks between same-rank Core switches. `pods`
  // counts pods per datacenter; the long-haul aggregate bandwidth is the
  // tier-3 bandwidth divided by `crossdc_oversub`.
  int datacenters = 1;
  double crossdc_oversub = 8.0;

  /// The published production parameterization (512K GPUs). Do not
  /// instantiate as a Topology — used for capacity accounting only.
  static FabricParams paper_scale();

  int sides() const { return dual_tor ? 2 : 1; }
  /// ToR uplink count; equals Aggs per tier-2 group for same-rail styles
  /// and border switches per Pod for UBMesh.
  int tor_uplinks() const;
  int total_pods() const { return pods * datacenters; }
  int gpu_count() const { return total_pods() * blocks_per_pod * hosts_per_block * rails; }
  int host_count() const { return total_pods() * blocks_per_pod * hosts_per_block; }

  // --- closed-form census & capacity math (the conformance oracle) ---

  /// Host-side capacity of one host<->ToR link, Gbps (both NIC ports
  /// collapse onto one link without dual-ToR wiring).
  double host_link_gbps() const { return host_port_gbps * (dual_tor ? 1.0 : 2.0); }
  /// ToRs per pod (every style keeps one ToR per rail and side per block).
  int tors_per_pod() const { return blocks_per_pod * rails * sides(); }

  int tor_count() const { return total_pods() * tors_per_pod(); }
  int agg_count() const;
  int core_count() const;
  int switch_count() const { return tor_count() + agg_count() + core_count(); }
  int node_count() const { return host_count() + switch_count(); }
  /// Total directed link count (add_duplex adds two).
  long long link_count() const;

  /// What Topology::tier_bandwidth(a, b) must report for the built
  /// fabric, in Gbps: one direction for up/down tier pairs, both
  /// directions of each duplex pair for same-kind mesh tiers (Tor-Tor,
  /// Agg-Agg, Core-Core). Zero for pairs the style does not wire.
  double expected_tier_gbps(NodeKind a, NodeKind b) const;

  /// Aggregate one-way capacity crossing the canonical pod bisection
  /// (first total_pods()/2 pods vs. the rest; cores side with their home
  /// datacenter's pods). Defined for an even total pod count with
  /// datacenters == 1 or an even datacenter count; 0 for rail-only
  /// fabrics (no inter-pod connectivity) and degenerate splits.
  double expected_bisection_gbps() const;
};

/// Construction-time validation: nullopt when the parameters describe a
/// buildable fabric, otherwise a description of every problem found
/// (mirrors monitor::validate_recovery). Fabric's constructor throws
/// std::invalid_argument with this message instead of silently building
/// a malformed graph.
std::optional<std::string> validate_params(const FabricParams& params);

/// Where a global GPU index lives.
struct GpuLoc {
  NodeId host = kInvalidNode;
  int rail = 0;  ///< Also the GPU's index within its host.
  int pod = 0;
  int block = 0;
  int host_index = 0;  ///< Host index within the block.
};

/// A built fabric: the topology graph plus index helpers. GPUs are
/// numbered host-major: gpu = ((pod * blocks + block) * hosts + host) *
/// rails + rail.
class Fabric {
 public:
  explicit Fabric(FabricParams params);

  Topology& topo() { return topo_; }
  const Topology& topo() const { return topo_; }
  const FabricParams& params() const { return params_; }

  int gpu_count() const { return params_.gpu_count(); }
  int host_count() const { return params_.host_count(); }

  GpuLoc gpu(int global_gpu) const;
  NodeId host_at(int pod, int block, int host_index) const;
  /// ToR id for (pod, block, rail, side); kInvalidNode if absent.
  NodeId tor_at(int pod, int block, int rail, int side) const;

  /// True when two GPUs can reach each other through the fabric without
  /// an intra-host hop (always true except cross-rail on RailOnly).
  bool fabric_reachable(int gpu_a, int gpu_b) const;

  /// Datacenter index of a global GPU (Appendix B twin-DC fabrics).
  int datacenter_of(int global_gpu) const {
    return gpu(global_gpu).pod / params_.pods;
  }

 private:
  void build();
  void build_tier1();
  void build_tier2_same_rail();
  void build_tier2_full_mesh();
  void build_tier2_ubmesh();
  void build_tier3();
  void build_tier3_ubmesh();
  void build_long_haul(const std::vector<std::vector<NodeId>>& cores_by_dc);

  FabricParams params_;
  Topology topo_;
  std::vector<NodeId> hosts_;                       // flattened
  std::vector<NodeId> tors_;                        // flattened
  std::vector<std::vector<NodeId>> aggs_by_group_;  // [pod * groups + g]
  int agg_groups_per_pod_ = 0;
};

/// Convenience factory.
Fabric build_fabric(FabricParams params);

}  // namespace astral::topo
