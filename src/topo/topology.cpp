#include "topo/topology.h"

#include <algorithm>
#include <deque>

namespace astral::topo {

const char* to_string(NodeKind kind) {
  switch (kind) {
    case NodeKind::Host: return "host";
    case NodeKind::Tor: return "tor";
    case NodeKind::Agg: return "agg";
    case NodeKind::Core: return "core";
  }
  return "?";
}

NodeId Topology::add_node(Node node) {
  node.id = static_cast<NodeId>(nodes_.size());
  if (!node.name.empty()) by_name_[node.name] = node.id;
  if (node.kind == NodeKind::Host) hosts_.push_back(node.id);
  nodes_.push_back(std::move(node));
  out_.emplace_back();
  in_.emplace_back();
  return nodes_.back().id;
}

LinkId Topology::add_link(NodeId src, NodeId dst, core::Bps capacity) {
  Link l;
  l.id = static_cast<LinkId>(links_.size());
  l.src = src;
  l.dst = dst;
  l.capacity = capacity;
  links_.push_back(l);
  out_[src].push_back(l.id);
  in_[dst].push_back(l.id);
  route_cache_.clear();
  return l.id;
}

std::pair<LinkId, LinkId> Topology::add_duplex(NodeId a, NodeId b, core::Bps capacity) {
  LinkId ab = add_link(a, b, capacity);
  LinkId ba = add_link(b, a, capacity);
  return {ab, ba};
}

void Topology::set_host_uplink(NodeId host, int rail, int side, LinkId link) {
  rails_ = std::max(rails_, rail + 1);
  sides_ = std::max(sides_, side + 1);
  auto& v = uplinks_[host];
  std::size_t slot = static_cast<std::size_t>(rail) * 2 + static_cast<std::size_t>(side);
  if (v.size() <= slot) v.resize(slot + 1, kInvalidLink);
  v[slot] = link;
}

LinkId Topology::host_uplink(NodeId host, int rail, int side) const {
  auto it = uplinks_.find(host);
  if (it == uplinks_.end()) return kInvalidLink;
  std::size_t slot = static_cast<std::size_t>(rail) * 2 + static_cast<std::size_t>(side);
  if (slot >= it->second.size()) return kInvalidLink;
  return it->second[slot];
}

void Topology::set_link_state(LinkId id, bool up) {
  if (links_[id].up != up) {
    links_[id].up = up;
    route_cache_.clear();
  }
}

const Topology::DestRoutes& Topology::routes_for(NodeId dst) const {
  auto it = route_cache_.find(dst);
  if (it != route_cache_.end()) return it->second;

  DestRoutes routes;
  routes.dist.assign(nodes_.size(), -1);

  // BFS from dst over reversed up links yields the hop distance of every
  // node to dst; a link u->v is a valid next hop iff dist[v] == dist[u]-1.
  // Hosts never forward transit traffic, so they are only expanded when
  // they are the destination itself.
  std::deque<NodeId> queue;
  routes.dist[dst] = 0;
  queue.push_back(dst);
  while (!queue.empty()) {
    NodeId v = queue.front();
    queue.pop_front();
    if (nodes_[v].kind == NodeKind::Host && v != dst) continue;
    for (LinkId lid : in_[v]) {
      const Link& l = links_[lid];
      if (!l.up) continue;
      if (routes.dist[l.src] == -1) {
        routes.dist[l.src] = routes.dist[v] + 1;
        queue.push_back(l.src);
      }
    }
  }
  return route_cache_.emplace(dst, std::move(routes)).first->second;
}

std::vector<LinkId> Topology::next_hops(NodeId from, NodeId dst) const {
  const auto& dist = routes_for(dst).dist;
  std::vector<LinkId> hops;
  if (dist[from] <= 0) return hops;
  // out_ link ids are in insertion order, so candidates are deterministic.
  for (LinkId lid : out_[from]) {
    const Link& l = links_[lid];
    if (l.up && dist[l.dst] == dist[from] - 1) hops.push_back(lid);
  }
  return hops;
}

int Topology::distance(NodeId from, NodeId dst) const { return routes_for(dst).dist[from]; }

std::vector<std::vector<LinkId>> Topology::shortest_paths(NodeId src, NodeId dst,
                                                          std::size_t limit) const {
  std::vector<std::vector<LinkId>> result;
  if (distance(src, dst) < 0) return result;
  // DFS over the next-hop DAG; depth bounded by the shortest-path length.
  std::vector<LinkId> stack;
  auto dfs = [&](auto&& self, NodeId at) -> void {
    if (result.size() >= limit) return;
    if (at == dst) {
      result.push_back(stack);
      return;
    }
    for (LinkId lid : next_hops(at, dst)) {
      stack.push_back(lid);
      self(self, links_[lid].dst);
      stack.pop_back();
      if (result.size() >= limit) return;
    }
  };
  dfs(dfs, src);
  return result;
}

core::Bps Topology::tier_bandwidth(NodeKind a, NodeKind b) const {
  core::Bps total = 0;
  for (const Link& l : links_) {
    if (l.up && nodes_[l.src].kind == a && nodes_[l.dst].kind == b) total += l.capacity;
  }
  return total;
}

NodeId Topology::find(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? kInvalidNode : it->second;
}

}  // namespace astral::topo
