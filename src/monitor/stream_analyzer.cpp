#include "monitor/stream_analyzer.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "core/table.h"

namespace astral::monitor {

namespace {

/// Bytes one obs::Histogram retains (fixed bucket array + bookkeeping).
constexpr std::size_t kHistogramBytes =
    sizeof(obs::Histogram) +
    static_cast<std::size_t>(1 + (obs::Histogram::kMaxExponent -
                                  obs::Histogram::kMinExponent) *
                                     obs::Histogram::kSubBuckets) *
        sizeof(std::uint32_t);

/// Hierarchy rank of a node kind, for tier classification.
int kind_rank(topo::NodeKind k) {
  switch (k) {
    case topo::NodeKind::Host: return 0;
    case topo::NodeKind::Tor: return 1;
    case topo::NodeKind::Agg: return 2;
    case topo::NodeKind::Core: return 3;
  }
  return 0;
}

void ewma_update(double& ewma, std::uint64_t& n, double x, double alpha) {
  ewma = n == 0 ? x : alpha * x + (1.0 - alpha) * ewma;
  ++n;
}

/// Sample-weighted EWMA merge for the upward reduction.
void ewma_merge(double& ewma, std::uint64_t& n, double other, std::uint64_t m) {
  if (m == 0) return;
  ewma = n == 0 ? other
                : (ewma * static_cast<double>(n) + other * static_cast<double>(m)) /
                      static_cast<double>(n + m);
  n += m;
}

}  // namespace

const char* to_string(GraySignal s) {
  switch (s) {
    case GraySignal::QpRateRegression: return "qp-rate-regression";
    case GraySignal::PfcPrecursor: return "pfc-precursor";
    case GraySignal::HopLatencyRegression: return "hop-latency-regression";
  }
  return "?";
}

const char* to_string(LinkTier tier) {
  switch (tier) {
    case LinkTier::HostUplink: return "host-tor";
    case LinkTier::LeafAgg: return "tor-agg";
    case LinkTier::Spine: return "agg-core";
  }
  return "?";
}

LinkTier link_tier(const topo::Topology& topo, topo::LinkId link) {
  const auto& l = topo.link(link);
  int hi = std::max(kind_rank(topo.node(l.src).kind), kind_rank(topo.node(l.dst).kind));
  // Host<->Tor -> 0, Tor<->Agg -> 1, Agg<->Core (and core<->core) -> 2.
  return static_cast<LinkTier>(std::clamp(hi - 1, 0, kLinkTiers - 1));
}

int link_pod(const topo::Topology& topo, topo::LinkId link) {
  const auto& l = topo.link(link);
  int p = topo.node(l.src).pod;
  if (p < 0) p = topo.node(l.dst).pod;
  return p;
}

void TierRollup::reduce_from(const TierRollup& child) {
  counter_samples += child.counter_samples;
  ecn_marks += child.ecn_marks;
  pfc_pauses += child.pfc_pauses;
  mod_drops += child.mod_drops;
  ewma_merge(util_ewma, util_samples, child.util_ewma, child.util_samples);
  ewma_merge(hop_latency_ewma, probe_hops, child.hop_latency_ewma, child.probe_hops);
}

TierRollup PodRollup::links() const {
  TierRollup out;
  for (const TierRollup& t : tiers) out.reduce_from(t);
  return out;
}

// ---- Subscription: forward each sink callback into the owner with the
// subscription identity attached.

void StreamAnalyzer::Subscription::on_record(const NcclTimelineEvent& ev) {
  owner->ingest(*this, ev);
}
void StreamAnalyzer::Subscription::on_record(const QpRateSample& s) {
  owner->ingest(*this, s);
}
void StreamAnalyzer::Subscription::on_record(const ErrCqeEvent& ev) {
  owner->ingest(*this, ev);
}
void StreamAnalyzer::Subscription::on_record(const SflowPathRecord& r) {
  owner->ingest(*this, r);
}
void StreamAnalyzer::Subscription::on_record(const IntProbeResult& r) {
  owner->ingest(*this, r);
}
void StreamAnalyzer::Subscription::on_link_counters(const LinkCounterSample& raw,
                                                    std::uint64_t d_ecn,
                                                    std::uint64_t d_pfc) {
  owner->ingest_link(*this, raw, d_ecn, d_pfc);
}
void StreamAnalyzer::Subscription::on_record(const SyslogEvent& ev) {
  owner->ingest(*this, ev);
}
void StreamAnalyzer::Subscription::on_register_qp(const QpMeta& meta) {
  owner->ingest_meta(*this, meta);
}

// ---- Service lifecycle.

StreamAnalyzer::StreamAnalyzer(const topo::Topology& topo, StreamAnalyzerConfig cfg)
    : topo_(topo), cfg_(cfg) {
  int npods = 0;
  for (const auto& n : topo.nodes()) npods = std::max(npods, n.pod + 1);
  pods_.resize(static_cast<std::size_t>(std::max(npods, 1)));
  gray_.resize(pods_.size());
  if (cfg_.gray.enabled && cfg_.gray.max_alarms > 0) {
    gray_alarms_.reserve(cfg_.gray.max_alarms);
  }
}

StreamAnalyzer::~StreamAnalyzer() {
  // Detach from any store still pointing at one of our subscriptions so
  // a store outliving the analyzer never calls into freed memory.
  for (Subscription& s : subs_) {
    if (s.active && s.store && s.store->sink() == &s) s.store->set_sink(nullptr);
  }
}

void StreamAnalyzer::subscribe(TelemetryStore& store, JobContext ctx) {
  subs_.emplace_back();
  Subscription& s = subs_.back();
  s.owner = this;
  s.store = &store;
  s.ctx = std::move(ctx);
  s.active = true;
  ++live_;
  store.set_sink(&s);

  // Replay what the store already holds (QP registrations happen at job
  // setup, before the runtime exposes its attach hook), reproducing the
  // exact per-record feed a from-the-start subscriber would have seen.
  for (const auto& [qp, meta] : store.qp_metas()) ingest_meta(s, meta);
  for (const auto& ev : store.nccl_timeline()) ingest(s, ev);
  for (const auto& smp : store.qp_rates()) ingest(s, smp);
  for (const auto& ev : store.err_cqes()) ingest(s, ev);
  for (const auto& [qp, rec] : store.sflow_paths()) ingest(s, rec);
  for (const auto& r : store.int_probes()) ingest(s, r);
  {
    // Re-derive the effective deltas the store credited at ingestion
    // (same cumulative-counter resynchronization, in arrival order).
    struct Baseline {
      std::uint64_t ecn = 0, pfc = 0;
      core::Seconds t = 0.0;
      bool have = false;
    };
    std::unordered_map<topo::LinkId, Baseline> base;
    for (const auto& smp : store.link_counters()) {
      std::uint64_t d_ecn = 0, d_pfc = 0;
      if (smp.cumulative) {
        Baseline& b = base[smp.link];
        if (!b.have || smp.t > b.t) {
          d_ecn = b.have && smp.ecn_marks >= b.ecn ? smp.ecn_marks - b.ecn
                                                   : smp.ecn_marks;
          d_pfc = b.have && smp.pfc_pauses >= b.pfc ? smp.pfc_pauses - b.pfc
                                                    : smp.pfc_pauses;
          b.ecn = smp.ecn_marks;
          b.pfc = smp.pfc_pauses;
          b.t = smp.t;
          b.have = true;
        }
      } else {
        d_ecn = smp.ecn_marks;
        d_pfc = smp.pfc_pauses;
      }
      ingest_link(s, smp, d_ecn, d_pfc);
    }
  }
  for (const auto& ev : store.syslog()) ingest(s, ev);
}

void StreamAnalyzer::unsubscribe(TelemetryStore& store) {
  for (Subscription& s : subs_) {
    if (!s.active || s.store != &store) continue;
    if (store.sink() == &s) store.set_sink(nullptr);
    // Final (flush) diagnosis over everything the store holds.
    if (s.dirty || !s.have_diag) rediagnose(s);
    Finalized& fin = finalized_[s.ctx.job_id];
    fin.diag = s.diag;
    fin.revisions = s.revisions;
    fin.anomaly = s.anomaly;
    s.active = false;
    s.store = nullptr;
    s.qp_pod.clear();
    --live_;
    return;
  }
}

// ---- Diagnosis (delegated drill-down + online triggers).

void StreamAnalyzer::rediagnose(Subscription& s) {
  HierarchicalAnalyzer analyzer(*s.store, topo_, s.ctx.expected_compute,
                                s.ctx.expected_comm, cfg_.analyzer);
  Diagnosis d = analyzer.diagnose();
  ++s.revisions;
  bool changed = !s.have_diag || !(d == s.diag);
  s.diag = std::move(d);
  s.have_diag = true;
  s.dirty = false;
  s.last_diag_iter = s.max_iteration;
  if (changed && on_diagnosis_) on_diagnosis_(s.ctx.job_id, s.diag, now_);
}

void StreamAnalyzer::maybe_rediagnose(Subscription& s, bool eager) {
  s.dirty = true;
  if (eager) rediagnose(s);
}

Diagnosis StreamAnalyzer::diagnosis(std::int64_t job_id) {
  for (auto it = subs_.rbegin(); it != subs_.rend(); ++it) {
    if (it->active && it->ctx.job_id == job_id) {
      if (it->dirty || !it->have_diag) rediagnose(*it);
      return it->diag;
    }
  }
  auto fit = finalized_.find(job_id);
  if (fit != finalized_.end()) return fit->second.diag;
  return {};
}

std::uint64_t StreamAnalyzer::revisions(std::int64_t job_id) const {
  for (auto it = subs_.rbegin(); it != subs_.rend(); ++it) {
    if (it->active && it->ctx.job_id == job_id) return it->revisions;
  }
  auto fit = finalized_.find(job_id);
  return fit != finalized_.end() ? fit->second.revisions : 0;
}

bool StreamAnalyzer::online_anomaly(std::int64_t job_id) const {
  for (auto it = subs_.rbegin(); it != subs_.rend(); ++it) {
    if (it->active && it->ctx.job_id == job_id) return it->anomaly;
  }
  auto fit = finalized_.find(job_id);
  return fit != finalized_.end() && fit->second.anomaly;
}

void StreamAnalyzer::set_frame_callback(core::Seconds interval, FrameCallback cb) {
  frame_interval_ = interval;
  on_frame_ = std::move(cb);
  next_frame_ = now_;
}

// ---- Per-record ingestion (the O(1) hot path).

PodRollup& StreamAnalyzer::pod_of(int pod) {
  if (pod < 0) pod = 0;
  if (pod >= static_cast<int>(pods_.size())) pod = static_cast<int>(pods_.size()) - 1;
  return pods_[static_cast<std::size_t>(pod)];
}

int StreamAnalyzer::pod_of_rank(const Subscription& s, int host_rank) const {
  if (host_rank >= 0 && host_rank < static_cast<int>(s.ctx.host_pods.size())) {
    return s.ctx.host_pods[static_cast<std::size_t>(host_rank)];
  }
  return 0;
}

void StreamAnalyzer::advance_clock(core::Seconds t) {
  ++records_;
  if (t > now_) now_ = t;
  if (frame_interval_ > 0.0 && on_frame_ && now_ >= next_frame_) {
    next_frame_ = now_ + frame_interval_;
    on_frame_(now_);
  }
}

// One observation of a gray signal: update the fast/slow EWMA pair and
// run the edge detector. An alarm is the RISING edge of the ratio
// crossing its threshold; the latch clears only once the ratio retreats
// past the threshold by clear_margin, so a ratio hovering at the
// boundary raises once, not per sample. A raised alarm feeds the
// existing trigger policy exactly like the binary detectors: the
// subscription turns anomalous and an eager re-diagnosis fires.
void StreamAnalyzer::gray_observe(Subscription& s, int pod, GraySignal signal,
                                  double x, core::Seconds t) {
  const GrayAlarmConfig& gc = cfg_.gray;
  if (!gc.enabled) return;
  if (pod < 0) pod = 0;
  if (pod >= static_cast<int>(gray_.size())) pod = static_cast<int>(gray_.size()) - 1;
  GrayPodState& g = gray_[static_cast<std::size_t>(pod)];
  auto si = static_cast<std::size_t>(signal);
  GrayEwma& e = g.sig[si];
  e.fast = e.n == 0 ? x : gc.fast_alpha * x + (1.0 - gc.fast_alpha) * e.fast;
  e.slow = e.n == 0 ? x : gc.slow_alpha * x + (1.0 - gc.slow_alpha) * e.slow;
  ++e.n;
  if (e.n < gc.min_samples) return;

  double ratio = e.slow > 0.0 ? e.fast / e.slow : (e.fast > 0.0 ? 1e9 : 1.0);
  bool over;   // Condition currently met.
  bool clear;  // Condition retreated past the hysteresis band.
  switch (signal) {
    case GraySignal::QpRateRegression:
      over = ratio < gc.qp_regress_factor;
      clear = ratio > gc.qp_regress_factor * (1.0 + gc.clear_margin);
      break;
    case GraySignal::PfcPrecursor:
      over = e.fast > gc.pfc_storm_min && ratio > gc.pfc_storm_factor;
      clear = ratio < gc.pfc_storm_factor * (1.0 - gc.clear_margin) ||
              e.fast < gc.pfc_storm_min;
      break;
    case GraySignal::HopLatencyRegression:
    default:
      over = ratio > gc.hop_regress_factor;
      clear = ratio < gc.hop_regress_factor * (1.0 - gc.clear_margin);
      break;
  }
  if (over && !g.raised[si]) {
    g.raised[si] = true;
    ++g.alarms;
    ++gray_raised_;
    if (gray_alarms_.size() < gc.max_alarms) {
      gray_alarms_.push_back({t, pod, signal, ratio, s.ctx.job_id});
    }
    s.gray_seen = true;
    bool was = s.anomaly;
    s.anomaly = true;
    maybe_rediagnose(s, !was);
  } else if (clear && g.raised[si]) {
    g.raised[si] = false;
  }
}

core::Seconds StreamAnalyzer::first_alarm_time(int pod) const {
  for (const GrayAlarm& a : gray_alarms_) {
    if (pod < 0 || a.pod == pod) return a.t;
  }
  return -1.0;
}

void StreamAnalyzer::ingest(Subscription& s, const NcclTimelineEvent& ev) {
  advance_clock(ev.t);
  bool completed_new_iter = ev.iteration > s.max_iteration;
  if (completed_new_iter) s.max_iteration = ev.iteration;
  if (ev.comm_time < 0.0) s.stall_seen = true;
  if ((s.ctx.expected_comm > 0.0 &&
       ev.comm_time > cfg_.analyzer.comm_slow_factor * s.ctx.expected_comm) ||
      (s.ctx.expected_compute > 0.0 &&
       ev.compute_time > cfg_.analyzer.compute_slow_factor * s.ctx.expected_compute)) {
    s.slow_seen = true;
  }
  bool was = s.anomaly;
  s.anomaly = s.stall_seen || s.slow_seen || s.gray_seen || s.cqe_count > 0 ||
              s.fatal_count > 0;
  // Eager refresh on anomaly onset, then once per newly seen iteration
  // while the job stays anomalous — bounds full re-diagnoses per job to
  // O(iterations), everything else only marks the cache dirty.
  bool eager = s.anomaly && (!was || (completed_new_iter &&
                                      s.max_iteration > s.last_diag_iter));
  maybe_rediagnose(s, eager);
}

void StreamAnalyzer::ingest(Subscription& s, const QpRateSample& smp) {
  advance_clock(smp.t);
  auto it = s.qp_pod.find(smp.qp);
  int pod = it != s.qp_pod.end() ? it->second : 0;
  PodRollup& p = pod_of(pod);
  ewma_update(p.qp_rate_ewma_bps, p.qp_samples, smp.rate_bps, cfg_.ewma_alpha);
  // Zero-rate samples (drained or unadmitted QPs) are not a gray signal:
  // a degraded link slows its flows, it never nulls them — and a clean
  // run's drain tail would otherwise read as a regression.
  if (smp.rate_bps > 0.0) {
    gray_observe(s, pod, GraySignal::QpRateRegression, smp.rate_bps, smp.t);
  }
  s.dirty = true;
}

void StreamAnalyzer::ingest(Subscription& s, const ErrCqeEvent& ev) {
  advance_clock(ev.t);
  auto it = s.qp_pod.find(ev.qp);
  PodRollup& p =
      pod_of(it != s.qp_pod.end() ? it->second : pod_of_rank(s, ev.host_rank));
  ++p.err_cqes;
  ++s.cqe_count;
  bool was = s.anomaly;
  s.anomaly = true;
  maybe_rediagnose(s, !was);
}

void StreamAnalyzer::ingest(Subscription& s, const SflowPathRecord& r) {
  advance_clock(r.t);
  s.dirty = true;
}

void StreamAnalyzer::ingest(Subscription& s, const IntProbeResult& r) {
  advance_clock(r.t);
  std::size_t hops = std::min(r.path.size(), r.hop_latency.size());
  for (std::size_t i = 0; i < hops; ++i) {
    auto [pod, tier] = [&] {
      auto it = link_class_.find(r.path[i]);
      if (it == link_class_.end()) {
        it = link_class_
                 .emplace(r.path[i],
                          std::pair<std::int16_t, std::int8_t>(
                              static_cast<std::int16_t>(link_pod(topo_, r.path[i])),
                              static_cast<std::int8_t>(link_tier(topo_, r.path[i]))))
                 .first;
      }
      return it->second;
    }();
    TierRollup& t = pod_of(pod).tiers[static_cast<std::size_t>(tier)];
    ewma_update(t.hop_latency_ewma, t.probe_hops, r.hop_latency[i], cfg_.ewma_alpha);
    gray_observe(s, pod, GraySignal::HopLatencyRegression, r.hop_latency[i], r.t);
  }
  s.dirty = true;
}

void StreamAnalyzer::ingest_link(Subscription& s, const LinkCounterSample& raw,
                                 std::uint64_t d_ecn, std::uint64_t d_pfc) {
  advance_clock(raw.t);
  auto it = link_class_.find(raw.link);
  if (it == link_class_.end()) {
    it = link_class_
             .emplace(raw.link, std::pair<std::int16_t, std::int8_t>(
                                    static_cast<std::int16_t>(link_pod(topo_, raw.link)),
                                    static_cast<std::int8_t>(link_tier(topo_, raw.link))))
             .first;
  }
  TierRollup& t = pod_of(it->second.first).tiers[static_cast<std::size_t>(it->second.second)];
  ++t.counter_samples;
  t.ecn_marks += d_ecn;
  t.pfc_pauses += d_pfc;
  t.mod_drops += raw.mod_drops;
  if (raw.utilization > 0.0) {
    ewma_update(t.util_ewma, t.util_samples, raw.utilization, cfg_.ewma_alpha);
  }
  gray_observe(s, it->second.first, GraySignal::PfcPrecursor,
               static_cast<double>(d_pfc) +
                   cfg_.gray.ecn_weight * static_cast<double>(d_ecn),
               raw.t);
  s.dirty = true;
}

void StreamAnalyzer::ingest(Subscription& s, const SyslogEvent& ev) {
  advance_clock(ev.t);
  int pod = ev.node != topo::kInvalidNode &&
                    ev.node < static_cast<topo::NodeId>(topo_.node_count())
                ? topo_.node(ev.node).pod
                : pod_of_rank(s, ev.host_rank);
  PodRollup& p = pod_of(pod);
  if (ev.severity == "fatal") {
    ++p.syslog_fatal;
    ++s.fatal_count;
    bool was = s.anomaly;
    s.anomaly = true;
    maybe_rediagnose(s, !was);
    return;
  }
  if (ev.severity == "error") {
    ++p.syslog_error;
  } else {
    ++p.syslog_warn;
  }
  s.dirty = true;
}

void StreamAnalyzer::ingest_meta(Subscription& s, const QpMeta& meta) {
  int pod = 0;
  if (meta.src_host != topo::kInvalidNode &&
      meta.src_host < static_cast<topo::NodeId>(topo_.node_count())) {
    pod = topo_.node(meta.src_host).pod;
  }
  s.qp_pod[meta.qp] = pod;
}

// ---- Runtime ledger feeds.

void StreamAnalyzer::note_mitigation(std::int64_t job_id, core::Seconds mttr_s,
                                     int pod) {
  (void)job_id;
  PodRollup& p = pod_of(pod);
  ++p.faults;
  p.mttr_s.record(mttr_s);
  fabric_mttr_.record(mttr_s);
}

void StreamAnalyzer::note_fleet_fault(int pod, std::size_t jobs_touched) {
  PodRollup& p = pod_of(pod);
  ++p.faults;
  p.blast_jobs_touched += jobs_touched;
}

void StreamAnalyzer::note_blast_radius(int pod, double host_hours_lost) {
  pod_of(pod).blast_host_hours_lost += host_hours_lost;
}

// ---- Upward reduction.

TierRollup StreamAnalyzer::tier(LinkTier t) const {
  TierRollup out;
  for (const PodRollup& p : pods_) {
    out.reduce_from(p.tiers[static_cast<std::size_t>(t)]);
  }
  return out;
}

FabricRollup StreamAnalyzer::fabric() const {
  FabricRollup out;
  for (const PodRollup& p : pods_) {
    out.links.reduce_from(p.links());
    ewma_merge(out.qp_rate_ewma_bps, out.qp_samples, p.qp_rate_ewma_bps,
               p.qp_samples);
    out.err_cqes += p.err_cqes;
    out.syslog_fatal += p.syslog_fatal;
    out.faults += p.faults;
    out.blast_jobs_touched += p.blast_jobs_touched;
    out.blast_host_hours_lost += p.blast_host_hours_lost;
  }
  return out;
}

std::size_t StreamAnalyzer::footprint_bytes() const {
  std::size_t b = sizeof(*this);
  b += pods_.capacity() * (sizeof(PodRollup) - sizeof(obs::Histogram) + kHistogramBytes);
  b += kHistogramBytes - sizeof(obs::Histogram);  // fabric_mttr_ buckets
  b += gray_.capacity() * sizeof(GrayPodState);
  b += gray_alarms_.capacity() * sizeof(GrayAlarm);
  b += link_class_.bucket_count() * sizeof(void*) +
       link_class_.size() *
           (sizeof(std::pair<topo::LinkId, std::pair<std::int16_t, std::int8_t>>) +
            2 * sizeof(void*));
  for (const Subscription& s : subs_) {
    b += sizeof(Subscription);
    b += s.qp_pod.bucket_count() * sizeof(void*) +
         s.qp_pod.size() * (sizeof(std::pair<QpId, int>) + 2 * sizeof(void*));
    b += s.diag.evidence.size() * sizeof(std::string) +
         s.diag.evidence_gaps.size() * sizeof(std::string) +
         s.diag.candidates.size() * sizeof(CandidateCause) +
         s.diag.culprit_hosts.size() * sizeof(int) +
         s.diag.culprit_links.size() * sizeof(topo::LinkId) +
         s.ctx.host_pods.size() * sizeof(int);
  }
  for (const auto& [id, fin] : finalized_) {
    b += sizeof(std::int64_t) + sizeof(Finalized) +
         fin.diag.evidence.size() * sizeof(std::string) +
         fin.diag.evidence_gaps.size() * sizeof(std::string) +
         fin.diag.candidates.size() * sizeof(CandidateCause);
  }
  return b;
}

// ---- Metrics publication.

void StreamAnalyzer::publish(obs::Metrics& m) const {
  char name[96];
  for (std::size_t pi = 0; pi < pods_.size(); ++pi) {
    const PodRollup& p = pods_[pi];
    auto set = [&](const char* suffix, double v) {
      std::snprintf(name, sizeof(name), "stream.pod%zu.%s", pi, suffix);
      m.set_gauge(name, v);
    };
    TierRollup all = p.links();
    set("qp_rate_gbps", core::to_gbps(p.qp_rate_ewma_bps));
    set("util", all.util_ewma);
    set("hop_us", all.hop_latency_ewma * 1e6);
    set("pfc", static_cast<double>(all.pfc_pauses));
    set("ecn", static_cast<double>(all.ecn_marks));
    set("drops", static_cast<double>(all.mod_drops));
    set("err_cqes", static_cast<double>(p.err_cqes));
    set("syslog_fatal", static_cast<double>(p.syslog_fatal));
    set("faults", static_cast<double>(p.faults));
    set("mttr_p99_s", p.mttr_s.percentile(99.0));
    set("blast.jobs_touched", static_cast<double>(p.blast_jobs_touched));
    set("blast.host_hours_lost", p.blast_host_hours_lost);
    for (int ti = 0; ti < kLinkTiers; ++ti) {
      const TierRollup& t = p.tiers[static_cast<std::size_t>(ti)];
      auto set_tier = [&](const char* suffix, double v) {
        std::snprintf(name, sizeof(name), "stream.pod%zu.tier%d.%s", pi, ti, suffix);
        m.set_gauge(name, v);
      };
      set_tier("pfc", static_cast<double>(t.pfc_pauses));
      set_tier("ecn", static_cast<double>(t.ecn_marks));
      set_tier("drops", static_cast<double>(t.mod_drops));
      set_tier("util", t.util_ewma);
      set_tier("hop_us", t.hop_latency_ewma * 1e6);
    }
  }

  FabricRollup f = fabric();
  m.set_gauge("stream.fabric.qp_rate_gbps", core::to_gbps(f.qp_rate_ewma_bps));
  m.set_gauge("stream.fabric.util", f.links.util_ewma);
  m.set_gauge("stream.fabric.hop_us", f.links.hop_latency_ewma * 1e6);
  m.set_gauge("stream.fabric.pfc", static_cast<double>(f.links.pfc_pauses));
  m.set_gauge("stream.fabric.ecn", static_cast<double>(f.links.ecn_marks));
  m.set_gauge("stream.fabric.drops", static_cast<double>(f.links.mod_drops));
  m.set_gauge("stream.fabric.err_cqes", static_cast<double>(f.err_cqes));
  m.set_gauge("stream.fabric.faults", static_cast<double>(f.faults));
  m.set_gauge("stream.fabric.mttr_p50_s", fabric_mttr_.percentile(50.0));
  m.set_gauge("stream.fabric.mttr_p99_s", fabric_mttr_.percentile(99.0));
  m.set_gauge("stream.blast.jobs_touched", static_cast<double>(f.blast_jobs_touched));
  m.set_gauge("stream.blast.host_hours_lost", f.blast_host_hours_lost);

  std::uint64_t revs = 0;
  std::uint64_t anomalies = 0;
  std::uint64_t located = 0;
  std::uint64_t manual = 0;
  std::uint64_t jobs = 0;
  double conf_sum = 0.0;
  std::uint64_t conf_n = 0;
  auto tally = [&](const Diagnosis& d, bool have, std::uint64_t r, bool anom) {
    ++jobs;
    revs += r;
    if (anom) ++anomalies;
    if (!have) return;
    if (d.root_cause_found) ++located;
    if (d.needs_manual) ++manual;
    conf_sum += d.confidence;
    ++conf_n;
  };
  for (const Subscription& s : subs_) {
    if (s.active) tally(s.diag, s.have_diag, s.revisions, s.anomaly);
  }
  for (const auto& [id, fin] : finalized_) {
    tally(fin.diag, true, fin.revisions, fin.anomaly);
  }
  m.set_gauge("stream.diag.jobs", static_cast<double>(jobs));
  m.set_gauge("stream.diag.revisions", static_cast<double>(revs));
  m.set_gauge("stream.diag.anomalies", static_cast<double>(anomalies));
  m.set_gauge("stream.diag.root_cause_found", static_cast<double>(located));
  m.set_gauge("stream.diag.needs_manual", static_cast<double>(manual));
  m.set_gauge("stream.diag.confidence_mean",
              conf_n ? conf_sum / static_cast<double>(conf_n) : 0.0);

  // Gray precursor gauges exist only when the alarms are on, so a
  // default-config metrics snapshot is unchanged by this subsystem.
  if (cfg_.gray.enabled) {
    m.set_gauge("stream.gray.alarms", static_cast<double>(gray_raised_));
    m.set_gauge("stream.gray.first_alarm_t", first_alarm_time());
    for (std::size_t pi = 0; pi < gray_.size(); ++pi) {
      const GrayPodState& g = gray_[pi];
      auto set_gray = [&](const char* suffix, double v) {
        std::snprintf(name, sizeof(name), "stream.pod%zu.gray.%s", pi, suffix);
        m.set_gauge(name, v);
      };
      set_gray("alarms", static_cast<double>(g.alarms));
      auto ratio = [](const GrayEwma& e) {
        return e.slow > 0.0 ? e.fast / e.slow : 1.0;
      };
      set_gray("qp_ratio",
               ratio(g.sig[static_cast<std::size_t>(GraySignal::QpRateRegression)]));
      set_gray("pfc_ratio",
               ratio(g.sig[static_cast<std::size_t>(GraySignal::PfcPrecursor)]));
      set_gray("hop_ratio", ratio(g.sig[static_cast<std::size_t>(
                   GraySignal::HopLatencyRegression)]));
    }
  }

  m.set_gauge("stream.records_ingested", static_cast<double>(records_));
  m.set_gauge("stream.footprint_bytes", static_cast<double>(footprint_bytes()));
  m.set_gauge("stream.pods", static_cast<double>(pods_.size()));
}

std::string render_pod_dashboard(const obs::Metrics& m, int pods) {
  char name[96];
  auto g = [&](const char* fmt, auto... a) {
    std::snprintf(name, sizeof(name), fmt, a...);
    return m.gauge(name);
  };
  using core::Table;
  Table t({"pod", "qp Gb/s", "util", "hop us", "pfc", "ecn", "drops", "errCQE",
           "fatal", "faults", "mttr p99 s", "blast hh"});
  for (int p = 0; p < pods; ++p) {
    t.add_row({"pod" + std::to_string(p),
               Table::num(g("stream.pod%d.qp_rate_gbps", p), 2),
               Table::num(g("stream.pod%d.util", p), 3),
               Table::num(g("stream.pod%d.hop_us", p), 2),
               Table::num(g("stream.pod%d.pfc", p), 0),
               Table::num(g("stream.pod%d.ecn", p), 0),
               Table::num(g("stream.pod%d.drops", p), 0),
               Table::num(g("stream.pod%d.err_cqes", p), 0),
               Table::num(g("stream.pod%d.syslog_fatal", p), 0),
               Table::num(g("stream.pod%d.faults", p), 0),
               Table::num(g("stream.pod%d.mttr_p99_s", p), 1),
               Table::num(g("stream.pod%d.blast.host_hours_lost", p), 3)});
  }
  t.add_row({"fabric", Table::num(g("stream.fabric.qp_rate_gbps"), 2),
             Table::num(g("stream.fabric.util"), 3),
             Table::num(g("stream.fabric.hop_us"), 2),
             Table::num(g("stream.fabric.pfc"), 0),
             Table::num(g("stream.fabric.ecn"), 0),
             Table::num(g("stream.fabric.drops"), 0),
             Table::num(g("stream.fabric.err_cqes"), 0), "",
             Table::num(g("stream.fabric.faults"), 0),
             Table::num(g("stream.fabric.mttr_p99_s"), 1),
             Table::num(g("stream.blast.host_hours_lost"), 3)});

  char head[256];
  std::snprintf(head, sizeof(head),
                "== streaming diagnosis | records %.0f | jobs %.0f | anomalies "
                "%.0f | located %.0f | manual %.0f | revisions %.0f | mean conf "
                "%.2f | footprint %.0f B ==\n",
                m.gauge("stream.records_ingested"), m.gauge("stream.diag.jobs"),
                m.gauge("stream.diag.anomalies"),
                m.gauge("stream.diag.root_cause_found"),
                m.gauge("stream.diag.needs_manual"),
                m.gauge("stream.diag.revisions"),
                m.gauge("stream.diag.confidence_mean"),
                m.gauge("stream.footprint_bytes"));
  return std::string(head) + t.str();
}

}  // namespace astral::monitor
