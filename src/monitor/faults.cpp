#include "monitor/faults.h"

#include <algorithm>
#include <array>
#include <limits>
#include <utility>

namespace astral::monitor {

const char* to_string(RootCause cause) {
  switch (cause) {
    case RootCause::HostEnvConfig: return "Host Env&Conf.";
    case RootCause::NicError: return "NIC Error";
    case RootCause::UserCode: return "User code";
    case RootCause::SwitchConfig: return "Switch Conf.";
    case RootCause::SwitchBug: return "Switch BUG";
    case RootCause::OpticalFiber: return "Optical Fiber";
    case RootCause::CclBug: return "CCL Bug";
    case RootCause::WireConnection: return "Wire conn.";
    case RootCause::GpuHardware: return "GPU Hardware";
    case RootCause::Memory: return "Memory";
    case RootCause::LinkFlap: return "Link Flap";
    case RootCause::PcieDegrade: return "PCIe Degrade";
  }
  return "?";
}

const char* to_string(GrayKind k) {
  switch (k) {
    case GrayKind::None: return "none";
    case GrayKind::FlappingLink: return "flapping-link";
    case GrayKind::PartialDegrade: return "partial-degrade";
    case GrayKind::SlowNic: return "slow-nic";
  }
  return "?";
}

const char* to_string(Manifestation m) {
  switch (m) {
    case Manifestation::FailStop: return "fail-stop";
    case Manifestation::FailSlow: return "fail-slow";
    case Manifestation::FailHang: return "fail-hang";
    case Manifestation::FailOnStart: return "fail-on-start";
  }
  return "?";
}

namespace {
struct CauseWeight {
  RootCause cause;
  double weight;
};
// Fig. 7 root-cause ring.
constexpr std::array<CauseWeight, 11> kCauses{{
    {RootCause::HostEnvConfig, 0.32},
    {RootCause::NicError, 0.15},
    {RootCause::UserCode, 0.14},
    {RootCause::SwitchConfig, 0.14},
    {RootCause::SwitchBug, 0.07},
    {RootCause::OpticalFiber, 0.07},
    {RootCause::CclBug, 0.03},
    {RootCause::WireConnection, 0.03},
    {RootCause::GpuHardware, 0.02},
    {RootCause::Memory, 0.02},
    {RootCause::LinkFlap, 0.01},
}};
}  // namespace

double prevalence(RootCause cause) {
  for (const auto& cw : kCauses) {
    if (cw.cause == cause) return cw.weight;
  }
  return 0.0;
}

RootCause sample_root_cause(core::Rng& rng) {
  double x = rng.uniform();
  double acc = 0.0;
  for (const auto& cw : kCauses) {
    acc += cw.weight;
    if (x < acc) return cw.cause;
  }
  return kCauses.back().cause;
}

Manifestation sample_manifestation(RootCause cause, core::Rng& rng) {
  // Conditional manifestation mixes; weighting by cause prevalence gives
  // a marginal close to (stop .66, hang .17, slow .13, on-start .04).
  struct Mix {
    double stop, slow, hang, on_start;
  };
  auto mix_of = [](RootCause c) -> Mix {
    switch (c) {
      case RootCause::HostEnvConfig: return {0.78, 0.04, 0.08, 0.10};
      case RootCause::NicError: return {0.62, 0.13, 0.25, 0.00};
      case RootCause::UserCode: return {0.80, 0.05, 0.15, 0.00};
      case RootCause::SwitchConfig: return {0.40, 0.35, 0.25, 0.00};
      case RootCause::SwitchBug: return {0.30, 0.25, 0.45, 0.00};
      case RootCause::OpticalFiber: return {0.55, 0.30, 0.15, 0.00};
      case RootCause::CclBug: return {0.40, 0.15, 0.45, 0.00};
      case RootCause::WireConnection: return {0.60, 0.20, 0.10, 0.10};
      case RootCause::GpuHardware: return {0.80, 0.10, 0.10, 0.00};
      case RootCause::Memory: return {0.85, 0.05, 0.10, 0.00};
      case RootCause::LinkFlap: return {0.55, 0.30, 0.15, 0.00};
      case RootCause::PcieDegrade: return {0.05, 0.85, 0.10, 0.00};
    }
    return {1, 0, 0, 0};
  };
  Mix m = mix_of(cause);
  double x = rng.uniform();
  if (x < m.stop) return Manifestation::FailStop;
  if (x < m.stop + m.slow) return Manifestation::FailSlow;
  if (x < m.stop + m.slow + m.hang) return Manifestation::FailHang;
  return Manifestation::FailOnStart;
}

std::optional<std::string> validate_fault(const FaultSpec& f, int hosts,
                                          std::size_t links) {
  auto cause_name = std::string(to_string(f.cause));
  if (f.at_iteration < 0) {
    return cause_name + ": at_iteration must be >= 0, got " +
           std::to_string(f.at_iteration);
  }
  if (f.degrade_factor < 0.0) {
    return cause_name + ": degrade_factor must be >= 0, got " +
           std::to_string(f.degrade_factor);
  }
  if (f.mid_transfer_fraction < 0.0 || f.mid_transfer_fraction >= 1.0) {
    return cause_name + ": mid_transfer_fraction must be in [0, 1), got " +
           std::to_string(f.mid_transfer_fraction);
  }
  if (is_host_side(f.cause)) {
    if (f.target_host_rank < 0 || f.target_host_rank >= hosts) {
      return cause_name + ": target_host_rank " +
             std::to_string(f.target_host_rank) + " outside job of " +
             std::to_string(hosts) + " hosts";
    }
    // PcieDegrade additionally pins the host's ToR downlink.
    if (f.target_link != topo::kInvalidLink &&
        static_cast<std::size_t>(f.target_link) >= links) {
      return cause_name + ": target_link " + std::to_string(f.target_link) +
             " outside fabric of " + std::to_string(links) + " links";
    }
    if (f.switch_scope) {
      return cause_name + ": switch_scope is only meaningful for network causes";
    }
  } else {
    if (f.target_link == topo::kInvalidLink) {
      return cause_name + ": network fault needs a valid target_link "
             "(make_fault found no job-path link, or the spec was never targeted)";
    }
    if (static_cast<std::size_t>(f.target_link) >= links) {
      return cause_name + ": target_link " + std::to_string(f.target_link) +
             " outside fabric of " + std::to_string(links) + " links";
    }
  }
  return std::nullopt;
}

namespace {

// Appends every gray-field problem of `f` to `out` (unnumbered prose;
// callers number). Crisp specs (`gray == None`) contribute nothing.
void gray_problems(const FaultSpec& f, int hosts, std::size_t links,
                   const std::string& where, std::vector<std::string>& out) {
  if (f.gray == GrayKind::None) return;
  std::string kind = to_string(f.gray);
  if (f.gray == GrayKind::SlowNic) {
    if (f.target_host_rank < 0 || f.target_host_rank >= hosts) {
      out.push_back(where + kind + " target_host_rank " +
                    std::to_string(f.target_host_rank) + " outside job of " +
                    std::to_string(hosts) + " hosts");
    }
  } else {
    if (f.target_link == topo::kInvalidLink ||
        static_cast<std::size_t>(f.target_link) >= links) {
      out.push_back(where + kind + " needs a valid target_link (got " +
                    std::to_string(f.target_link) + " in a fabric of " +
                    std::to_string(links) + " links)");
    }
    if (f.switch_scope) {
      out.push_back(where + kind +
                    " cannot be switch_scope (gray faults degrade one "
                    "element, they do not kill switches)");
    }
  }
  if (!(f.degrade_factor > 0.0 && f.degrade_factor < 1.0)) {
    out.push_back(where + kind + " degrade_factor must be in (0, 1) (got " +
                  std::to_string(f.degrade_factor) +
                  "); 0 is a crisp outage, 1 is no fault");
  }
  if (f.gray == GrayKind::FlappingLink) {
    if (f.flap_up_iters < 1) {
      out.push_back(where + kind + " flap_up_iters must be >= 1 (got " +
                    std::to_string(f.flap_up_iters) + ")");
    }
    if (f.flap_down_iters < 1) {
      out.push_back(where + kind + " flap_down_iters must be >= 1 (got " +
                    std::to_string(f.flap_down_iters) + ")");
    }
  }
  if (f.manifestation != Manifestation::FailSlow) {
    out.push_back(where + kind + " manifestation must be fail-slow (got " +
                  std::string(to_string(f.manifestation)) +
                  "); gray faults never trip binary detectors");
  }
  if (f.mid_transfer_fraction != 0.0) {
    out.push_back(where + kind +
                  " mid_transfer_fraction must be 0; gray faults apply at "
                  "iteration boundaries");
  }
}

// Joins problems as "[0] ...; [1] ..." (validate_recovery's style).
std::string numbered(const std::vector<std::string>& problems) {
  std::string msg;
  for (std::size_t i = 0; i < problems.size(); ++i) {
    if (!msg.empty()) msg += "; ";
    msg += "[" + std::to_string(i) + "] " + problems[i];
  }
  return msg;
}

// Active-iteration window of a fault as [start, end); permanent faults
// extend to the horizon.
constexpr int kForever = std::numeric_limits<int>::max();

std::pair<int, int> fault_window(const FaultSpec& f) {
  if (f.repair_iterations < 0) return {f.at_iteration, kForever};
  return {f.at_iteration, f.at_iteration + f.repair_iterations};
}

bool fault_is_host_scoped(const FaultSpec& f) {
  if (f.gray == GrayKind::SlowNic) return true;
  if (f.gray != GrayKind::None) return false;
  return is_host_side(f.cause);
}

}  // namespace

std::optional<std::string> validate_gray(const FaultSpec& f, int hosts,
                                         std::size_t links) {
  std::vector<std::string> problems;
  gray_problems(f, hosts, links, "", problems);
  if (problems.empty()) return std::nullopt;
  return numbered(problems);
}

std::optional<std::string> validate_schedule(const FaultSchedule& s,
                                             int hosts, std::size_t links) {
  std::vector<std::string> problems;
  for (std::size_t i = 0; i < s.faults.size(); ++i) {
    const auto& f = s.faults[i];
    std::string where = "fault " + std::to_string(i) + ": ";
    if (auto m = validate_fault(f, hosts, links)) problems.push_back(where + *m);
    gray_problems(f, hosts, links, where, problems);
  }
  for (std::size_t i = 0; i < s.faults.size(); ++i) {
    for (std::size_t j = i + 1; j < s.faults.size(); ++j) {
      const auto& a = s.faults[i];
      const auto& b = s.faults[j];
      bool ah = fault_is_host_scoped(a), bh = fault_is_host_scoped(b);
      if (ah != bh) continue;
      if (ah ? a.target_host_rank != b.target_host_rank
             : a.target_link != b.target_link) {
        continue;
      }
      auto [as, ae] = fault_window(a);
      auto [bs, be] = fault_window(b);
      if (std::max(as, bs) >= std::min(ae, be)) continue;
      std::string target = ah ? "host rank " + std::to_string(a.target_host_rank)
                              : "link " + std::to_string(a.target_link);
      problems.push_back(
          "faults " + std::to_string(i) + " and " + std::to_string(j) +
          " have overlapping windows on " + target +
          "; capacity restoration would be ambiguous (split the windows or "
          "retarget one fault)");
    }
  }
  if (problems.empty()) return std::nullopt;
  return numbered(problems);
}

bool has_gray(const FaultSchedule& s) {
  for (const auto& f : s.faults) {
    if (f.gray != GrayKind::None) return true;
  }
  return false;
}

bool is_host_side(RootCause cause) {
  switch (cause) {
    case RootCause::HostEnvConfig:
    case RootCause::UserCode:
    case RootCause::CclBug:
    case RootCause::GpuHardware:
    case RootCause::Memory:
    case RootCause::PcieDegrade:
      return true;
    case RootCause::NicError:
    case RootCause::SwitchConfig:
    case RootCause::SwitchBug:
    case RootCause::OpticalFiber:
    case RootCause::WireConnection:
    case RootCause::LinkFlap:
      return false;
  }
  return true;
}

}  // namespace astral::monitor
