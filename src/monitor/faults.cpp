#include "monitor/faults.h"

#include <array>

namespace astral::monitor {

const char* to_string(RootCause cause) {
  switch (cause) {
    case RootCause::HostEnvConfig: return "Host Env&Conf.";
    case RootCause::NicError: return "NIC Error";
    case RootCause::UserCode: return "User code";
    case RootCause::SwitchConfig: return "Switch Conf.";
    case RootCause::SwitchBug: return "Switch BUG";
    case RootCause::OpticalFiber: return "Optical Fiber";
    case RootCause::CclBug: return "CCL Bug";
    case RootCause::WireConnection: return "Wire conn.";
    case RootCause::GpuHardware: return "GPU Hardware";
    case RootCause::Memory: return "Memory";
    case RootCause::LinkFlap: return "Link Flap";
    case RootCause::PcieDegrade: return "PCIe Degrade";
  }
  return "?";
}

const char* to_string(Manifestation m) {
  switch (m) {
    case Manifestation::FailStop: return "fail-stop";
    case Manifestation::FailSlow: return "fail-slow";
    case Manifestation::FailHang: return "fail-hang";
    case Manifestation::FailOnStart: return "fail-on-start";
  }
  return "?";
}

namespace {
struct CauseWeight {
  RootCause cause;
  double weight;
};
// Fig. 7 root-cause ring.
constexpr std::array<CauseWeight, 11> kCauses{{
    {RootCause::HostEnvConfig, 0.32},
    {RootCause::NicError, 0.15},
    {RootCause::UserCode, 0.14},
    {RootCause::SwitchConfig, 0.14},
    {RootCause::SwitchBug, 0.07},
    {RootCause::OpticalFiber, 0.07},
    {RootCause::CclBug, 0.03},
    {RootCause::WireConnection, 0.03},
    {RootCause::GpuHardware, 0.02},
    {RootCause::Memory, 0.02},
    {RootCause::LinkFlap, 0.01},
}};
}  // namespace

double prevalence(RootCause cause) {
  for (const auto& cw : kCauses) {
    if (cw.cause == cause) return cw.weight;
  }
  return 0.0;
}

RootCause sample_root_cause(core::Rng& rng) {
  double x = rng.uniform();
  double acc = 0.0;
  for (const auto& cw : kCauses) {
    acc += cw.weight;
    if (x < acc) return cw.cause;
  }
  return kCauses.back().cause;
}

Manifestation sample_manifestation(RootCause cause, core::Rng& rng) {
  // Conditional manifestation mixes; weighting by cause prevalence gives
  // a marginal close to (stop .66, hang .17, slow .13, on-start .04).
  struct Mix {
    double stop, slow, hang, on_start;
  };
  auto mix_of = [](RootCause c) -> Mix {
    switch (c) {
      case RootCause::HostEnvConfig: return {0.78, 0.04, 0.08, 0.10};
      case RootCause::NicError: return {0.62, 0.13, 0.25, 0.00};
      case RootCause::UserCode: return {0.80, 0.05, 0.15, 0.00};
      case RootCause::SwitchConfig: return {0.40, 0.35, 0.25, 0.00};
      case RootCause::SwitchBug: return {0.30, 0.25, 0.45, 0.00};
      case RootCause::OpticalFiber: return {0.55, 0.30, 0.15, 0.00};
      case RootCause::CclBug: return {0.40, 0.15, 0.45, 0.00};
      case RootCause::WireConnection: return {0.60, 0.20, 0.10, 0.10};
      case RootCause::GpuHardware: return {0.80, 0.10, 0.10, 0.00};
      case RootCause::Memory: return {0.85, 0.05, 0.10, 0.00};
      case RootCause::LinkFlap: return {0.55, 0.30, 0.15, 0.00};
      case RootCause::PcieDegrade: return {0.05, 0.85, 0.10, 0.00};
    }
    return {1, 0, 0, 0};
  };
  Mix m = mix_of(cause);
  double x = rng.uniform();
  if (x < m.stop) return Manifestation::FailStop;
  if (x < m.stop + m.slow) return Manifestation::FailSlow;
  if (x < m.stop + m.slow + m.hang) return Manifestation::FailHang;
  return Manifestation::FailOnStart;
}

std::optional<std::string> validate_fault(const FaultSpec& f, int hosts,
                                          std::size_t links) {
  auto cause_name = std::string(to_string(f.cause));
  if (f.at_iteration < 0) {
    return cause_name + ": at_iteration must be >= 0, got " +
           std::to_string(f.at_iteration);
  }
  if (f.degrade_factor < 0.0) {
    return cause_name + ": degrade_factor must be >= 0, got " +
           std::to_string(f.degrade_factor);
  }
  if (f.mid_transfer_fraction < 0.0 || f.mid_transfer_fraction >= 1.0) {
    return cause_name + ": mid_transfer_fraction must be in [0, 1), got " +
           std::to_string(f.mid_transfer_fraction);
  }
  if (is_host_side(f.cause)) {
    if (f.target_host_rank < 0 || f.target_host_rank >= hosts) {
      return cause_name + ": target_host_rank " +
             std::to_string(f.target_host_rank) + " outside job of " +
             std::to_string(hosts) + " hosts";
    }
    // PcieDegrade additionally pins the host's ToR downlink.
    if (f.target_link != topo::kInvalidLink &&
        static_cast<std::size_t>(f.target_link) >= links) {
      return cause_name + ": target_link " + std::to_string(f.target_link) +
             " outside fabric of " + std::to_string(links) + " links";
    }
    if (f.switch_scope) {
      return cause_name + ": switch_scope is only meaningful for network causes";
    }
  } else {
    if (f.target_link == topo::kInvalidLink) {
      return cause_name + ": network fault needs a valid target_link "
             "(make_fault found no job-path link, or the spec was never targeted)";
    }
    if (static_cast<std::size_t>(f.target_link) >= links) {
      return cause_name + ": target_link " + std::to_string(f.target_link) +
             " outside fabric of " + std::to_string(links) + " links";
    }
  }
  return std::nullopt;
}

bool is_host_side(RootCause cause) {
  switch (cause) {
    case RootCause::HostEnvConfig:
    case RootCause::UserCode:
    case RootCause::CclBug:
    case RootCause::GpuHardware:
    case RootCause::Memory:
    case RootCause::PcieDegrade:
      return true;
    case RootCause::NicError:
    case RootCause::SwitchConfig:
    case RootCause::SwitchBug:
    case RootCause::OpticalFiber:
    case RootCause::WireConnection:
    case RootCause::LinkFlap:
      return false;
  }
  return true;
}

}  // namespace astral::monitor
