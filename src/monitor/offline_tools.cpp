#include "monitor/offline_tools.h"

#include <algorithm>

#include "core/math.h"

namespace astral::monitor {

std::vector<WiringObservation> collect_wiring(const topo::Fabric& fabric) {
  std::vector<WiringObservation> out;
  for (const auto& link : fabric.topo().links()) {
    out.push_back({link.id, link.src, link.dst});
  }
  return out;
}

void swap_wires(std::vector<WiringObservation>& wiring, std::size_t a, std::size_t b) {
  if (a >= wiring.size() || b >= wiring.size() || a == b) return;
  std::swap(wiring[a].observed_dst, wiring[b].observed_dst);
}

std::vector<WiringMismatch> verify_wiring(const topo::Fabric& fabric,
                                          std::span<const WiringObservation> observed) {
  std::vector<WiringMismatch> out;
  for (const auto& obs : observed) {
    if (obs.link == topo::kInvalidLink ||
        static_cast<std::size_t>(obs.link) >= fabric.topo().link_count()) {
      continue;
    }
    const auto& expected = fabric.topo().link(obs.link);
    if (expected.dst != obs.observed_dst || expected.src != obs.observed_src) {
      out.push_back({obs.link, expected.dst, obs.observed_dst});
    }
  }
  return out;
}

std::vector<ConfigMismatch> verify_configs(
    std::span<const ClusterRuntime::HostConfig> configs) {
  std::vector<ConfigMismatch> out;
  if (configs.empty()) return out;

  auto majority_of = [&](auto field) {
    std::vector<std::pair<decltype(field(configs[0])), int>> counts;
    for (const auto& c : configs) {
      auto v = field(c);
      bool found = false;
      for (auto& [val, n] : counts) {
        if (val == v) {
          ++n;
          found = true;
        }
      }
      if (!found) counts.push_back({v, 1});
    }
    return std::max_element(counts.begin(), counts.end(), [](const auto& a, const auto& b) {
             return a.second < b.second;
           })->first;
  };

  auto check = [&](const std::string& name, auto field, auto to_str) {
    auto majority = majority_of(field);
    for (std::size_t i = 0; i < configs.size(); ++i) {
      if (field(configs[i]) != majority) {
        out.push_back({static_cast<int>(i), name, to_str(field(configs[i])),
                       to_str(majority)});
      }
    }
  };
  auto id = [](const std::string& s) { return s; };
  auto b2s = [](bool b) { return std::string(b ? "true" : "false"); };
  auto i2s = [](int v) { return std::to_string(v); };
  check("nccl_version", [](const auto& c) { return c.nccl_version; }, id);
  check("driver_version", [](const auto& c) { return c.driver_version; }, id);
  check("pfc_enabled", [](const auto& c) { return c.pfc_enabled; }, b2s);
  check("dcqcn_k", [](const auto& c) { return c.dcqcn_k; }, i2s);
  return out;
}

std::vector<SlowPair> hostping_sweep(net::FluidSim& sim,
                                     std::span<const topo::NodeId> hosts,
                                     core::Seconds threshold) {
  std::vector<SlowPair> out;
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    for (std::size_t j = 0; j < hosts.size(); ++j) {
      if (i == j) continue;
      net::FlowSpec spec;
      spec.src_host = hosts[i];
      spec.dst_host = hosts[j];
      spec.src_rail = 0;
      spec.dst_rail = 0;
      spec.tag = i * hosts.size() + j;
      auto path = sim.predict_path(spec);
      if (!path) continue;
      core::Seconds latency = 0.0;
      for (topo::LinkId l : *path) latency += sim.hop_latency(l);
      if (latency > threshold) {
        out.push_back({static_cast<int>(i), static_cast<int>(j), latency});
      }
    }
  }
  return out;
}

std::vector<int> gpu_burn_outliers(std::span<const double> gflops, double fraction) {
  std::vector<int> out;
  if (gflops.empty()) return out;
  double med = core::median(gflops);
  for (std::size_t i = 0; i < gflops.size(); ++i) {
    if (gflops[i] < med * (1.0 - fraction)) out.push_back(static_cast<int>(i));
  }
  return out;
}

}  // namespace astral::monitor
