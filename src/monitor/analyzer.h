// Cross-host + hierarchical correlation analysis (§3.3).
//
// The algorithm starts at the application layer (closest to the user's
// perception), classifies the failure manifestation, horizontally
// compares hosts to find outliers, then drills down:
//   Branch #1 (computation anomalies) — correlate the outlier host with
//   its physical-layer syslog; a fatal log names the root cause; multiple
//   anomalous hosts without hardware logs indicate software/user code and
//   raise a manual-intervention alarm.
//   Branch #2 (communication anomalies) — errCQE events identify failed
//   QPs whose sFlow paths are overlapped to locate the failure point;
//   absent errCQE, QPs running below 50% of link bandwidth are traced via
//   INT per-hop latency to the congested link, whose switch counters
//   (PFC/ECN/MOD) and syslog reveal the root cause.
// Every conclusion carries the evidence chain, and a modeled analysis
// latency accumulates per layer visited (the minutes-scale MTTLF the
// paper reports after deployment).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "monitor/detectors.h"
#include "monitor/store.h"
#include "topo/topology.h"

namespace astral::monitor {

struct AnalyzerConfig {
  double compute_zscore = 2.5;       ///< Cross-host outlier threshold.
  double comm_slow_factor = 2.0;     ///< vs the Seer-forecast threshold.
  double compute_slow_factor = 2.0;
  double qp_rate_fraction = 0.5;     ///< Paper: below 50% of link bw.
  core::Bps link_bw = core::gbps(200.0);
  core::Seconds hop_latency_threshold = core::usec(50.0);
  std::uint64_t pfc_storm_threshold = 1000;
  /// Collector clocks may disagree by up to this much (degraded
  /// monitoring plane); timestamp-window queries are widened by it so a
  /// skewed sample still lands in its iteration. 0 = trust clocks.
  core::Seconds clock_skew_tolerance = 0.0;

  // Modeled per-layer analysis latencies (minutes-scale automation).
  core::Seconds step_application = 60.0;
  core::Seconds step_cross_host = 60.0;
  core::Seconds step_transport = 120.0;
  core::Seconds step_network = 180.0;
  core::Seconds step_physical = 120.0;
};

/// One entry of the ranked fallback when the evidence cannot pin a single
/// root cause: a plausible cause with a relative score (descending).
struct CandidateCause {
  RootCause cause;
  double score = 0.0;
  friend bool operator==(const CandidateCause&, const CandidateCause&) = default;
};

struct Diagnosis {
  std::optional<Manifestation> manifestation;  ///< Empty: healthy run.
  bool anomaly_detected = false;
  bool root_cause_found = false;
  bool needs_manual = false;  ///< Alarm raised for human follow-up.
  std::optional<RootCause> root_cause;
  std::vector<int> culprit_hosts;            ///< Job host ranks.
  std::vector<topo::LinkId> culprit_links;
  std::vector<std::string> evidence;  ///< Layer-by-layer chain, in order.
  core::Seconds locate_time = 0.0;    ///< Modeled time to localization.

  /// How strongly the evidence chain supports `root_cause`, in [0, 1].
  /// Direct fatal-log matches over uniquely-overlapping sFlow paths score
  /// near 1; every fallback hop (inferred paths, rate heuristics instead
  /// of errCQE, counter-only attribution) discounts multiplicatively.
  /// The calibration contract: a diagnosis at >= 0.9 must never name a
  /// wrong cause, and a miss must surface as needs_manual or < 0.5.
  double confidence = 1.0;
  /// Telemetry the algorithm wanted but did not find (lost sFlow paths,
  /// silent transport stream, missing device logs) — the explicit record
  /// of *why* confidence is below 1, in the order gaps were hit.
  std::vector<std::string> evidence_gaps;
  /// When the evidence is too thin for a single answer, the ranked
  /// plausible causes (best first) that a human should check; paired
  /// with needs_manual instead of a confidently wrong root_cause.
  std::vector<CandidateCause> candidates;

  friend bool operator==(const Diagnosis&, const Diagnosis&) = default;
};

class HierarchicalAnalyzer {
 public:
  /// `detectors` is the evolvable physical-layer pattern set (Appendix
  /// D); defaults to the full production registry.
  HierarchicalAnalyzer(const TelemetryStore& store, const topo::Topology& topo,
                       core::Seconds expected_compute, core::Seconds expected_comm,
                       AnalyzerConfig cfg = {},
                       DetectorRegistry detectors = DetectorRegistry::with_defaults());

  /// Runs the full §3.3 algorithm over the recorded telemetry.
  Diagnosis diagnose() const;

 private:
  Manifestation classify_manifestation(int last_iter, Diagnosis& d) const;
  void branch_computation(int last_iter, Diagnosis& d) const;
  void branch_communication(int last_iter, Diagnosis& d) const;
  /// `path_conf` is the confidence of the localization that nominated
  /// `culprit` (1.0 = unique sFlow overlap; fallbacks discount it); the
  /// final diagnosis confidence multiplies it with the strength of the
  /// physical evidence found here.
  void physical_drilldown(topo::LinkId culprit, Diagnosis& d,
                          double path_conf = 1.0) const;
  std::optional<RootCause> cause_from_syslog(const SyslogEvent& ev) const;
  std::optional<Detection> detection_from_syslog(const SyslogEvent& ev) const;

  const TelemetryStore& store_;
  const topo::Topology& topo_;
  core::Seconds expected_compute_;
  core::Seconds expected_comm_;
  AnalyzerConfig cfg_;
  DetectorRegistry detectors_;
};

}  // namespace astral::monitor
