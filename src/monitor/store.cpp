#include "monitor/store.h"

#include <algorithm>

namespace astral::monitor {

const char* to_string(Layer layer) {
  switch (layer) {
    case Layer::Application: return "application";
    case Layer::Transport: return "transport";
    case Layer::Network: return "network";
    case Layer::Physical: return "physical";
  }
  return "?";
}

std::optional<QpMeta> TelemetryStore::qp_meta(QpId qp) const {
  auto it = qp_meta_.find(qp);
  if (it == qp_meta_.end()) return std::nullopt;
  return it->second;
}

std::vector<topo::LinkId> TelemetryStore::path_of(QpId qp) const {
  auto it = sflow_.find(qp);
  if (it == sflow_.end()) return {};
  return it->second.path;
}

std::vector<QpId> TelemetryStore::qps_of_host(int host_rank) const {
  // Served from the host -> QP index maintained by register_qp; the old
  // implementation scanned every QP's metadata per call.
  auto it = host_qps_.find(host_rank);
  if (it == host_qps_.end()) return {};
  std::vector<QpId> out = it->second;
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<NcclTimelineEvent> TelemetryStore::iteration_events(int iteration) const {
  std::vector<NcclTimelineEvent> out;
  for (const auto& ev : nccl_) {
    if (ev.iteration == iteration) out.push_back(ev);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.host_rank < b.host_rank; });
  return out;
}

double TelemetryStore::mean_qp_rate(QpId qp, core::Seconds from, core::Seconds to) const {
  // Mean rate while transmitting: idle samples (QP drained between
  // messages) are excluded, matching how the ms-level monitor computes
  // per-message throughput from mirrored RETH lengths.
  // Served from the per-QP sample index maintained by record(): only this
  // QP's samples are touched, in arrival order, so the floating-point sum
  // is bitwise identical to the old whole-stream scan.
  double sum = 0.0;
  int n = 0;
  auto it = qp_sample_idx_.find(qp);
  if (it == qp_sample_idx_.end()) return 0.0;
  for (std::uint32_t idx : it->second) {
    const QpRateSample& s = qp_rates_[idx];
    if (s.t >= from && s.t <= to && s.rate_bps > 0.0) {
      sum += s.rate_bps;
      ++n;
    }
  }
  return n > 0 ? sum / n : 0.0;
}

std::uint64_t TelemetryStore::total_pfc(topo::LinkId link) const {
  auto it = link_totals_.find(link);
  return it == link_totals_.end() ? 0 : it->second.pfc_pauses;
}

std::uint64_t TelemetryStore::total_ecn(topo::LinkId link) const {
  auto it = link_totals_.find(link);
  return it == link_totals_.end() ? 0 : it->second.ecn_marks;
}

std::vector<SyslogEvent> TelemetryStore::host_syslog(int host_rank) const {
  std::vector<SyslogEvent> out;
  for (const auto& ev : syslog_) {
    if (ev.host_rank == host_rank) out.push_back(ev);
  }
  return out;
}

std::vector<SyslogEvent> TelemetryStore::node_syslog(topo::NodeId node) const {
  std::vector<SyslogEvent> out;
  for (const auto& ev : syslog_) {
    if (ev.node == node) out.push_back(ev);
  }
  return out;
}

int TelemetryStore::last_iteration() const {
  // Running max maintained at ingestion (empty sentinel stays -1); the
  // old implementation rescanned the whole timeline per call.
  return last_iteration_;
}

std::size_t TelemetryStore::record_count() const {
  return nccl_.size() + qp_rates_.size() + err_cqes_.size() + sflow_.size() +
         int_probes_.size() + link_counters_.size() + syslog_.size();
}

core::Json TelemetryStore::to_json() const {
  using core::Json;
  Json doc = Json::object();

  Json app = Json::array();
  for (const auto& ev : nccl_) {
    Json j = Json::object();
    j["t"] = Json(ev.t);
    j["host"] = Json(ev.host_rank);
    j["iter"] = Json(ev.iteration);
    j["compute"] = Json(ev.compute_time);
    j["comm"] = Json(ev.comm_time);
    j["wr_started"] = Json(ev.wr_started);
    j["wr_finished"] = Json(ev.wr_finished);
    app.push_back(std::move(j));
  }
  doc["application"] = std::move(app);

  Json transport = Json::object();
  Json rates = Json::array();
  for (const auto& s : qp_rates_) {
    Json j = Json::object();
    j["t"] = Json(s.t);
    j["qp"] = Json(s.qp);
    j["rate_bps"] = Json(s.rate_bps);
    rates.push_back(std::move(j));
  }
  transport["qp_rates"] = std::move(rates);
  Json errs = Json::array();
  for (const auto& e : err_cqes_) {
    Json j = Json::object();
    j["t"] = Json(e.t);
    j["qp"] = Json(e.qp);
    j["host"] = Json(e.host_rank);
    j["error"] = Json(e.error);
    errs.push_back(std::move(j));
  }
  transport["err_cqes"] = std::move(errs);
  doc["transport"] = std::move(transport);

  Json network = Json::object();
  Json paths = Json::array();
  for (const auto& [qp, rec] : sflow_) {
    Json j = Json::object();
    j["qp"] = Json(qp);
    j["src_port"] = Json(rec.tuple.src_port);
    Json p = Json::array();
    for (auto l : rec.path) p.push_back(Json(static_cast<std::uint64_t>(l)));
    j["path"] = std::move(p);
    paths.push_back(std::move(j));
  }
  network["sflow_paths"] = std::move(paths);
  network["int_probes"] = Json(static_cast<std::uint64_t>(int_probes_.size()));
  doc["network"] = std::move(network);

  Json physical = Json::object();
  Json counters = Json::array();
  for (const auto& s : link_counters_) {
    Json j = Json::object();
    j["t"] = Json(s.t);
    j["link"] = Json(static_cast<std::uint64_t>(s.link));
    j["ecn"] = Json(s.ecn_marks);
    j["pfc"] = Json(s.pfc_pauses);
    if (s.mod_drops) j["mod_drops"] = Json(s.mod_drops);
    counters.push_back(std::move(j));
  }
  physical["link_counters"] = std::move(counters);
  Json logs = Json::array();
  for (const auto& ev : syslog_) {
    Json j = Json::object();
    j["t"] = Json(ev.t);
    j["node"] = Json(static_cast<std::uint64_t>(ev.node));
    j["host"] = Json(ev.host_rank);
    j["severity"] = Json(ev.severity);
    j["message"] = Json(ev.message);
    logs.push_back(std::move(j));
  }
  physical["syslog"] = std::move(logs);
  doc["physical"] = std::move(physical);
  return doc;
}

}  // namespace astral::monitor
