#include "monitor/cluster_runtime.h"

#include <algorithm>
#include <cassert>

namespace astral::monitor {

using core::Seconds;

ClusterRuntime::ClusterRuntime(topo::Fabric& fabric, JobConfig cfg, std::uint64_t seed)
    : fabric_(fabric), cfg_(cfg), rng_(seed) {
  sim_ = std::make_unique<net::FluidSim>(fabric_, net::FluidSimConfig{}, seed);
  assert(cfg_.hosts >= 2);
  assert(static_cast<std::size_t>(cfg_.hosts) <= fabric_.topo().hosts().size());
  for (int i = 0; i < cfg_.hosts; ++i) {
    hosts_.push_back(fabric_.topo().hosts()[static_cast<std::size_t>(i)]);
  }
  host_configs_.assign(static_cast<std::size_t>(cfg_.hosts), HostConfig{});
  host_slow_.assign(static_cast<std::size_t>(cfg_.hosts), 1.0);

  // Register the job's ring QPs (host i -> host i+1 on rail 0) with their
  // transport 5-tuples — the cross-layer key chain of §3.2.
  for (int i = 0; i < cfg_.hosts; ++i) {
    int j = (i + 1) % cfg_.hosts;
    net::FlowSpec spec;
    spec.src_host = hosts_[static_cast<std::size_t>(i)];
    spec.dst_host = hosts_[static_cast<std::size_t>(j)];
    spec.src_rail = 0;
    spec.dst_rail = 0;
    spec.tag = static_cast<std::uint64_t>(i);
    QpMeta meta;
    meta.qp = static_cast<QpId>(i);
    meta.src_host_rank = i;
    meta.dst_host_rank = j;
    meta.src_host = spec.src_host;
    meta.dst_host = spec.dst_host;
    meta.tuple.src_ip = spec.src_host;
    meta.tuple.dst_ip = spec.dst_host;
    store_.register_qp(meta);
  }
}

Seconds ClusterRuntime::expected_comm() const {
  // One ring flow per NIC port at line rate.
  return core::transfer_time(cfg_.comm_bytes, core::gbps(200.0));
}

void ClusterRuntime::inject(const FaultSpec& fault) { fault_ = fault; }

topo::LinkId ClusterRuntime::pick_job_path_link(int hops_from_src) const {
  // A link actually on a job QP's path, so the fault is visible. Prefer a
  // cross-block ring edge: its 4-hop path exposes the Agg tier (the
  // Fig. 9 case congests an Agg->ToR downlink).
  int src_rank = 0;
  const auto& topo = fabric_.topo();
  for (int i = 0; i + 1 < cfg_.hosts; ++i) {
    if (topo.node(hosts_[static_cast<std::size_t>(i)]).block !=
        topo.node(hosts_[static_cast<std::size_t>(i + 1)]).block) {
      src_rank = i;
      break;
    }
  }
  net::FlowSpec spec;
  spec.src_host = hosts_[static_cast<std::size_t>(src_rank)];
  spec.dst_host = hosts_[static_cast<std::size_t>(src_rank + 1)];
  spec.src_rail = 0;
  spec.dst_rail = 0;
  spec.tag = static_cast<std::uint64_t>(src_rank);
  auto path = sim_->predict_path(spec);
  if (!path || path->empty()) return topo::kInvalidLink;
  std::size_t idx = std::min<std::size_t>(static_cast<std::size_t>(hops_from_src),
                                          path->size() - 1);
  return (*path)[idx];
}

FaultSpec ClusterRuntime::make_fault(RootCause cause, Manifestation m, int at_iteration) {
  FaultSpec f;
  f.cause = cause;
  f.manifestation = m;
  f.at_iteration = at_iteration;
  if (is_host_side(cause)) {
    f.target_host_rank = static_cast<int>(rng_.uniform_int(
        static_cast<std::uint64_t>(cfg_.hosts)));
    if (cause == RootCause::PcieDegrade) {
      // The PCIe bottleneck surfaces at the receiving NIC: the culprit is
      // the ToR -> host downlink of the affected host.
      net::FlowSpec spec;
      int prev = (f.target_host_rank + cfg_.hosts - 1) % cfg_.hosts;
      spec.src_host = hosts_[static_cast<std::size_t>(prev)];
      spec.dst_host = hosts_[static_cast<std::size_t>(f.target_host_rank)];
      spec.src_rail = 0;
      spec.dst_rail = 0;
      spec.tag = static_cast<std::uint64_t>(prev);
      if (auto path = sim_->predict_path(spec); path && !path->empty()) {
        f.target_link = path->back();
      }
    }
  } else {
    // Network-side: the NIC uplink (hop 0) for NIC errors, otherwise the
    // Agg->ToR downlink (hop 2 of a 4-hop same-rail path) — the hop the
    // paper's Fig. 9 case study congests.
    int hop = cause == RootCause::NicError ? 0 : 2;
    f.target_link = pick_job_path_link(hop);
  }
  switch (m) {
    case Manifestation::FailSlow: f.degrade_factor = 0.2; break;
    case Manifestation::FailHang: f.degrade_factor = 0.0; break;
    default: break;
  }
  return f;
}

void ClusterRuntime::emit_injection_syslog(Seconds t) {
  const FaultSpec& f = *fault_;
  auto host_node = [&](int rank) { return hosts_[static_cast<std::size_t>(rank)]; };
  auto switch_of_link = [&](topo::LinkId l) { return fabric_.topo().link(l).src; };
  switch (f.cause) {
    case RootCause::HostEnvConfig:
      store_.record(SyslogEvent{t, host_node(f.target_host_rank), f.target_host_rank,
                                "fatal", "nccl init failed: peer env/config mismatch"});
      host_configs_[static_cast<std::size_t>(f.target_host_rank)].nccl_version = "2.19.3";
      break;
    case RootCause::GpuHardware:
      store_.record(SyslogEvent{t, host_node(f.target_host_rank), f.target_host_rank,
                                "fatal", "NVRM: Xid 79: GPU has fallen off the bus"});
      break;
    case RootCause::Memory:
      store_.record(SyslogEvent{t, host_node(f.target_host_rank), f.target_host_rank,
                                "fatal", "EDAC MC0: UCE ECC error on DIMM"});
      break;
    case RootCause::UserCode:
      // A python exception surfaces on every rank — no hardware log.
      for (int i = 0; i < cfg_.hosts; ++i) {
        store_.record(SyslogEvent{t, host_node(i), i, "error",
                                  "trainer: RuntimeError in user forward()"});
      }
      break;
    case RootCause::CclBug:
      // Silent: the collective just never completes.
      break;
    case RootCause::PcieDegrade:
      if (cfg_.pcie_monitoring) {
        store_.record(SyslogEvent{t, host_node(f.target_host_rank), f.target_host_rank,
                                  "warn", "PCIe: link width degraded to x4"});
      }
      break;
    case RootCause::NicError:
      if (f.target_link != topo::kInvalidLink) {
        const auto& link = fabric_.topo().link(f.target_link);
        int rank = 0;
        for (int i = 0; i < cfg_.hosts; ++i) {
          if (hosts_[static_cast<std::size_t>(i)] == link.src) rank = i;
        }
        store_.record(SyslogEvent{t, link.src, rank, "error",
                                  "mlx5: CQE error syndrome 0x04 (retry exceeded)"});
      }
      break;
    case RootCause::SwitchConfig:
      store_.record(SyslogEvent{t, switch_of_link(f.target_link), -1, "warn",
                                "qos: ecn threshold misconfigured on egress queue"});
      break;
    case RootCause::SwitchBug:
      // Silent blackhole; only MOD drop counters betray it.
      break;
    case RootCause::OpticalFiber:
      store_.record(SyslogEvent{t, switch_of_link(f.target_link), -1, "warn",
                                "transceiver: rx optical power below threshold"});
      break;
    case RootCause::WireConnection:
      store_.record(SyslogEvent{t, switch_of_link(f.target_link), -1, "warn",
                                "lldp: neighbor mismatch with cabling plan"});
      break;
    case RootCause::LinkFlap:
      store_.record(SyslogEvent{t, switch_of_link(f.target_link), -1, "warn",
                                "port: link down"});
      store_.record(SyslogEvent{t + 0.5, switch_of_link(f.target_link), -1, "warn",
                                "port: link up"});
      break;
  }
}

void ClusterRuntime::apply_network_fault() {
  const FaultSpec& f = *fault_;
  if (f.target_link == topo::kInvalidLink) return;
  double factor = 1.0;
  switch (f.manifestation) {
    case Manifestation::FailSlow: factor = f.degrade_factor; break;
    case Manifestation::FailHang: factor = 0.0; break;
    case Manifestation::FailStop: factor = 0.0; break;  // + errCQE below
    case Manifestation::FailOnStart: factor = 0.0; break;
  }
  sim_->degrade_link(f.target_link, factor);
}

RunOutcome ClusterRuntime::run() {
  RunOutcome out;
  const Seconds hang_deadline = expected_comm() * cfg_.hang_timeout_factor;
  Seconds now = 0.0;

  // Host-side compute effects that persist across iterations.
  if (fault_ && is_host_side(fault_->cause) &&
      fault_->manifestation == Manifestation::FailSlow &&
      fault_->cause != RootCause::PcieDegrade) {
    host_slow_[static_cast<std::size_t>(fault_->target_host_rank)] = 3.0;
  }

  for (int iter = 0; iter < cfg_.iterations; ++iter) {
    const bool fault_active = fault_ && iter >= fault_->at_iteration;
    const bool fault_starts = fault_ && iter == fault_->at_iteration;

    if (fault_starts) {
      emit_injection_syslog(now);
      if (!is_host_side(fault_->cause) || fault_->cause == RootCause::PcieDegrade) {
        apply_network_fault();
      }
    }

    // Fail-on-start / host-side fail-stop: job aborts before or during
    // this iteration's compute.
    if (fault_active && (fault_->manifestation == Manifestation::FailOnStart ||
                         (fault_->manifestation == Manifestation::FailStop &&
                          is_host_side(fault_->cause)))) {
      for (int i = 0; i < cfg_.hosts; ++i) {
        NcclTimelineEvent ev;
        ev.t = now;
        ev.host_rank = i;
        ev.iteration = iter;
        ev.compute_time = i == fault_->target_host_rank ? 0.0 : cfg_.compute_time;
        ev.comm_time = -1.0;
        ev.wr_started = 1;
        ev.wr_finished = 0;
        store_.record(ev);
      }
      out.stopped_at_iteration = iter;
      out.observed = fault_->manifestation;
      return out;
    }

    // Host-side fail-hang (driver/CCL bug, hung user code): the target
    // host never posts its work request; every rank blocks in the
    // collective. wr_started distinguishes the culprit (§3.2).
    if (fault_active && is_host_side(fault_->cause) &&
        fault_->manifestation == Manifestation::FailHang) {
      for (int i = 0; i < cfg_.hosts; ++i) {
        NcclTimelineEvent ev;
        ev.t = now;
        ev.host_rank = i;
        ev.iteration = iter;
        ev.compute_time = cfg_.compute_time;
        ev.comm_time = -1.0;
        ev.wr_started = i == fault_->target_host_rank ? 0 : 1;
        ev.wr_finished = 0;
        store_.record(ev);
      }
      out.stopped_at_iteration = iter;
      out.observed = Manifestation::FailHang;
      return out;
    }

    // ---- Compute phase.
    std::vector<Seconds> compute(static_cast<std::size_t>(cfg_.hosts));
    Seconds max_compute = 0.0;
    for (int i = 0; i < cfg_.hosts; ++i) {
      double noise = 1.0 + std::abs(rng_.normal(0.0, 0.01));
      compute[static_cast<std::size_t>(i)] =
          cfg_.compute_time * noise * host_slow_[static_cast<std::size_t>(i)];
      max_compute = std::max(max_compute, compute[static_cast<std::size_t>(i)]);
    }

    // ---- Communication phase: ring flows on rail 0.
    Seconds comm_start = now + max_compute;
    sim_->run(comm_start);  // advance the network clock
    sim_->reset_stats();
    std::vector<net::FlowId> flows;
    for (int i = 0; i < cfg_.hosts; ++i) {
      net::FlowSpec spec;
      spec.src_host = hosts_[static_cast<std::size_t>(i)];
      spec.dst_host = hosts_[static_cast<std::size_t>((i + 1) % cfg_.hosts)];
      spec.src_rail = 0;
      spec.dst_rail = 0;
      spec.size = cfg_.comm_bytes;
      spec.start = comm_start;
      spec.tag = static_cast<std::uint64_t>(i);
      flows.push_back(sim_->inject(spec));
    }
    // sFlow path reconstruction + tuple registration (first iteration).
    for (int i = 0; i < cfg_.hosts; ++i) {
      const auto& st = sim_->flow(flows[static_cast<std::size_t>(i)]);
      if (!st.admitted) continue;
      SflowPathRecord rec;
      rec.qp = static_cast<QpId>(i);
      rec.tuple = st.tuple;
      rec.path = st.path;
      store_.record(rec);
      if (iter == 0) {
        auto meta = *store_.qp_meta(static_cast<QpId>(i));
        meta.tuple = st.tuple;
        store_.register_qp(meta);
      }
    }

    // One INT pingmesh sweep per iteration, taken mid-transfer: admit the
    // wave (zero-progress run) so the solver has published this wave's
    // overloads, then sample hop latencies while the flows are in flight.
    // Sweeping after a fixed-interval step instead would race the transfer
    // itself — a short iteration drains within one sample interval and the
    // probes would read an idle fabric.
    sim_->run(comm_start);
    for (int i = 0; i < cfg_.hosts; ++i) {
      const auto& st = sim_->flow(flows[static_cast<std::size_t>(i)]);
      if (!st.admitted) continue;
      IntProbeResult probe;
      probe.t = sim_->now();
      probe.path = st.path;
      for (topo::LinkId l : st.path) probe.hop_latency.push_back(sim_->hop_latency(l));
      store_.record(probe);
    }

    // Step the simulation, sampling QP rates (ms-level monitoring).
    Seconds deadline = comm_start + hang_deadline;
    while (!sim_->idle() && sim_->now() < deadline) {
      sim_->run(std::min(deadline, sim_->now() + cfg_.qp_sample_interval));
      for (int i = 0; i < cfg_.hosts; ++i) {
        store_.record(QpRateSample{sim_->now(), static_cast<QpId>(i),
                                   sim_->current_rate(flows[static_cast<std::size_t>(i)])});
      }
    }

    // Per-iteration switch counter collection (SNMP + MOD).
    for (std::size_t l = 0; l < fabric_.topo().link_count(); ++l) {
      const auto& ls = sim_->link_stats(static_cast<topo::LinkId>(l));
      std::uint64_t drops = 0;
      if (fault_active && fault_->target_link == static_cast<topo::LinkId>(l)) {
        for (net::FlowId fid : flows) {
          const auto& st = sim_->flow(fid);
          if (st.finish < 0) drops += static_cast<std::uint64_t>(st.remaining);
        }
      }
      if (ls.ecn_marks || ls.pfc_pauses || drops) {
        store_.record(LinkCounterSample{sim_->now(), static_cast<topo::LinkId>(l),
                                        ls.ecn_marks, ls.pfc_pauses, drops, 0.0});
      }
    }

    // Application-layer iteration record.
    bool hung = false;
    for (int i = 0; i < cfg_.hosts; ++i) {
      const auto& st = sim_->flow(flows[static_cast<std::size_t>(i)]);
      NcclTimelineEvent ev;
      ev.t = now;
      ev.host_rank = i;
      ev.iteration = iter;
      ev.compute_time = compute[static_cast<std::size_t>(i)];
      ev.wr_started = 1;
      if (st.admitted && st.finish >= 0) {
        ev.comm_time = st.finish - comm_start;
        ev.wr_finished = 1;
      } else {
        ev.comm_time = -1.0;
        ev.wr_finished = 0;
        hung = true;
      }
      store_.record(ev);
    }

    // A hard network fault (dead port, misconfigured switch dropping the
    // queue, severed fiber...) exhausts transport retries: errCQE events
    // surface on every QP crossing it and the job aborts (fail-stop).
    // Silent blackholes (switch bugs) drop traffic without errors and
    // manifest as fail-hang instead.
    if (fault_active && !is_host_side(fault_->cause) &&
        fault_->manifestation == Manifestation::FailStop && hung) {
      for (int i = 0; i < cfg_.hosts; ++i) {
        const auto& st = sim_->flow(flows[static_cast<std::size_t>(i)]);
        if (st.finish < 0) {
          store_.record(ErrCqeEvent{sim_->now(), static_cast<QpId>(i), i,
                                    "local protection error / retry exceeded"});
        }
      }
      out.stopped_at_iteration = iter;
      out.observed = Manifestation::FailStop;
      return out;
    }

    if (hung) {
      out.stopped_at_iteration = iter;
      out.observed = Manifestation::FailHang;
      return out;
    }

    now = sim_->now();
    sim_->recycle_finished();

    // Transient link flap heals after one iteration.
    if (fault_active && fault_->cause == RootCause::LinkFlap &&
        iter == fault_->at_iteration) {
      sim_->degrade_link(fault_->target_link, 1.0);
    }
  }

  out.completed = true;
  // A run that completed but ran slow is a fail-slow manifestation.
  if (fault_ && (fault_->manifestation == Manifestation::FailSlow ||
                 fault_->cause == RootCause::LinkFlap)) {
    out.observed = Manifestation::FailSlow;
  }
  return out;
}

}  // namespace astral::monitor
