#include "monitor/cluster_runtime.h"

#include <stdexcept>
#include <string>
#include <utility>

#include "parallel/placement.h"

namespace astral::monitor {

ClusterRuntime::ClusterRuntime(topo::Fabric& fabric, JobConfig cfg,
                               std::uint64_t seed)
    : fabric_(fabric) {
  sim_ = std::make_unique<net::FluidSim>(fabric_, net::FluidSimConfig{}, seed);
  std::vector<int> placed =
      parallel::place_hosts(fabric_, cfg.hosts, cfg.placement);
  if (placed.empty()) {
    throw std::invalid_argument(
        "ClusterRuntime: placement " +
        std::string(parallel::to_string(cfg.placement)) + " cannot fit " +
        std::to_string(cfg.hosts) + " hosts on this fabric");
  }
  std::vector<topo::NodeId> hosts;
  hosts.reserve(placed.size());
  for (int h : placed) {
    hosts.push_back(fabric_.topo().hosts()[static_cast<std::size_t>(h)]);
  }
  engine_ = std::make_unique<JobEngine>(fabric_, *sim_, std::move(cfg), seed,
                                        std::move(hosts));
}

void ClusterRuntime::set_tracer(obs::Tracer* tracer) {
  engine_->set_tracer(tracer);
  sim_->set_tracer(tracer);
}

void ClusterRuntime::set_stream_analyzer(StreamAnalyzer* stream) {
  engine_->set_stream_analyzer(stream);
}

void ClusterRuntime::set_metrics(obs::Metrics* metrics) {
  engine_->set_metrics(metrics);
  sim_->set_metrics(metrics);
}

RunOutcome ClusterRuntime::run() {
  engine_->start();
  while (!engine_->done()) engine_->resume();  // single mode: already done
  RunOutcome out = engine_->outcome();
  // Held-back (reordered) collector batches land after the run ends.
  engine_->flush_telemetry();
  // Undo fabric-level link state so a shared fabric (campaigns run many
  // jobs over one topology) starts the next job repaired.
  engine_->restore_downed_links();
  return out;
}

}  // namespace astral::monitor
