#include "monitor/cluster_runtime.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "monitor/analyzer.h"
#include "monitor/degrade.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace astral::monitor {

using core::Seconds;

const char* to_string(MitigationAction a) {
  switch (a) {
    case MitigationAction::None: return "none";
    case MitigationAction::RetryBackoff: return "retry-backoff";
    case MitigationAction::Reroute: return "reroute";
    case MitigationAction::IsolateRestart: return "isolate-restart";
    case MitigationAction::Abort: return "abort";
  }
  return "?";
}

ClusterRuntime::ClusterRuntime(topo::Fabric& fabric, JobConfig cfg, std::uint64_t seed)
    : fabric_(fabric), cfg_(cfg), rng_(seed) {
  sim_ = std::make_unique<net::FluidSim>(fabric_, net::FluidSimConfig{}, seed);
  assert(cfg_.hosts >= 2);
  assert(static_cast<std::size_t>(cfg_.hosts) <= fabric_.topo().hosts().size());
  for (int i = 0; i < cfg_.hosts; ++i) {
    hosts_.push_back(fabric_.topo().hosts()[static_cast<std::size_t>(i)]);
  }
  host_configs_.assign(static_cast<std::size_t>(cfg_.hosts), HostConfig{});
  host_slow_.assign(static_cast<std::size_t>(cfg_.hosts), 1.0);

  // Register the job's ring QPs (host i -> host i+1 on rail 0) with their
  // transport 5-tuples — the cross-layer key chain of §3.2.
  for (int i = 0; i < cfg_.hosts; ++i) {
    int j = (i + 1) % cfg_.hosts;
    net::FlowSpec spec;
    spec.src_host = hosts_[static_cast<std::size_t>(i)];
    spec.dst_host = hosts_[static_cast<std::size_t>(j)];
    spec.src_rail = 0;
    spec.dst_rail = 0;
    spec.tag = static_cast<std::uint64_t>(i);
    QpMeta meta;
    meta.qp = static_cast<QpId>(i);
    meta.src_host_rank = i;
    meta.dst_host_rank = j;
    meta.src_host = spec.src_host;
    meta.dst_host = spec.dst_host;
    meta.tuple.src_ip = spec.src_host;
    meta.tuple.dst_ip = spec.dst_host;
    store_.register_qp(meta);
  }
}

void ClusterRuntime::set_tracer(obs::Tracer* tracer) {
  tracer_ = tracer;
  sim_->set_tracer(tracer);
}

void ClusterRuntime::set_metrics(obs::Metrics* metrics) {
  metrics_ = metrics;
  sim_->set_metrics(metrics);
}

Seconds ClusterRuntime::expected_comm() const {
  // One ring flow per NIC port at line rate.
  return core::transfer_time(cfg_.comm_bytes, core::gbps(200.0));
}

void ClusterRuntime::inject(const FaultSpec& fault) {
  if (auto err = validate_fault(fault, cfg_.hosts, fabric_.topo().link_count())) {
    throw std::invalid_argument("ClusterRuntime::inject: " + *err);
  }
  faults_.push_back(FaultRt{fault});
}

void ClusterRuntime::inject(const FaultSchedule& schedule) {
  for (const FaultSpec& f : schedule.faults) inject(f);
}

topo::LinkId ClusterRuntime::pick_job_path_link(int hops_from_src) const {
  // A link actually on a job QP's path, so the fault is visible. Prefer a
  // cross-block ring edge: its 4-hop path exposes the Agg tier (the
  // Fig. 9 case congests an Agg->ToR downlink).
  int src_rank = 0;
  const auto& topo = fabric_.topo();
  for (int i = 0; i + 1 < cfg_.hosts; ++i) {
    if (topo.node(hosts_[static_cast<std::size_t>(i)]).block !=
        topo.node(hosts_[static_cast<std::size_t>(i + 1)]).block) {
      src_rank = i;
      break;
    }
  }
  net::FlowSpec spec;
  spec.src_host = hosts_[static_cast<std::size_t>(src_rank)];
  spec.dst_host = hosts_[static_cast<std::size_t>(src_rank + 1)];
  spec.src_rail = 0;
  spec.dst_rail = 0;
  spec.tag = static_cast<std::uint64_t>(src_rank);
  auto path = sim_->predict_path(spec);
  if (!path || path->empty()) return topo::kInvalidLink;
  std::size_t idx = std::min<std::size_t>(static_cast<std::size_t>(hops_from_src),
                                          path->size() - 1);
  return (*path)[idx];
}

FaultSpec ClusterRuntime::make_fault(RootCause cause, Manifestation m, int at_iteration) {
  FaultSpec f;
  f.cause = cause;
  f.manifestation = m;
  f.at_iteration = at_iteration;
  if (is_host_side(cause)) {
    f.target_host_rank = static_cast<int>(rng_.uniform_int(
        static_cast<std::uint64_t>(cfg_.hosts)));
    if (cause == RootCause::PcieDegrade) {
      // The PCIe bottleneck surfaces at the receiving NIC: the culprit is
      // the ToR -> host downlink of the affected host.
      net::FlowSpec spec;
      int prev = (f.target_host_rank + cfg_.hosts - 1) % cfg_.hosts;
      spec.src_host = hosts_[static_cast<std::size_t>(prev)];
      spec.dst_host = hosts_[static_cast<std::size_t>(f.target_host_rank)];
      spec.src_rail = 0;
      spec.dst_rail = 0;
      spec.tag = static_cast<std::uint64_t>(prev);
      if (auto path = sim_->predict_path(spec); path && !path->empty()) {
        f.target_link = path->back();
      }
    }
  } else {
    // Network-side: the NIC uplink (hop 0) for NIC errors, otherwise the
    // Agg->ToR downlink (hop 2 of a 4-hop same-rail path) — the hop the
    // paper's Fig. 9 case study congests.
    int hop = cause == RootCause::NicError ? 0 : 2;
    f.target_link = pick_job_path_link(hop);
  }
  // A link flap is the taxonomy's transient: it self-heals after one
  // iteration (legacy behaviour, now expressed through repair_iterations).
  if (cause == RootCause::LinkFlap) f.repair_iterations = 1;
  switch (m) {
    case Manifestation::FailSlow: f.degrade_factor = 0.2; break;
    case Manifestation::FailHang: f.degrade_factor = 0.0; break;
    default: break;
  }
  return f;
}

FaultSpec ClusterRuntime::make_mid_transfer_tor_death(int at_iteration, double fraction) {
  // The whole ToR over the job's rail-0 uplink dies with flows in flight:
  // the switch_scope takes every port of the switch down, and the
  // mid-transfer strike exercises the dual-ToR in-flight failover.
  FaultSpec f;
  f.cause = RootCause::SwitchBug;
  f.manifestation = Manifestation::FailStop;
  f.at_iteration = at_iteration;
  f.target_link = pick_job_path_link(0);  // host -> ToR uplink
  f.switch_scope = true;
  f.mid_transfer_fraction = fraction;
  return f;
}

void ClusterRuntime::emit_injection_syslog(const FaultSpec& f, Seconds t) {
  auto host_node = [&](int rank) { return hosts_[static_cast<std::size_t>(rank)]; };
  auto switch_of_link = [&](topo::LinkId l) { return fabric_.topo().link(l).src; };
  switch (f.cause) {
    case RootCause::HostEnvConfig:
      ingest(SyslogEvent{t, host_node(f.target_host_rank), f.target_host_rank,
                                "fatal", "nccl init failed: peer env/config mismatch"});
      host_configs_[static_cast<std::size_t>(f.target_host_rank)].nccl_version = "2.19.3";
      break;
    case RootCause::GpuHardware:
      ingest(SyslogEvent{t, host_node(f.target_host_rank), f.target_host_rank,
                                "fatal", "NVRM: Xid 79: GPU has fallen off the bus"});
      break;
    case RootCause::Memory:
      ingest(SyslogEvent{t, host_node(f.target_host_rank), f.target_host_rank,
                                "fatal", "EDAC MC0: UCE ECC error on DIMM"});
      break;
    case RootCause::UserCode:
      // A python exception surfaces on every rank — no hardware log.
      for (int i = 0; i < cfg_.hosts; ++i) {
        ingest(SyslogEvent{t, host_node(i), i, "error",
                                  "trainer: RuntimeError in user forward()"});
      }
      break;
    case RootCause::CclBug:
      // Silent: the collective just never completes.
      break;
    case RootCause::PcieDegrade:
      if (cfg_.pcie_monitoring) {
        ingest(SyslogEvent{t, host_node(f.target_host_rank), f.target_host_rank,
                                  "warn", "PCIe: link width degraded to x4"});
      }
      break;
    case RootCause::NicError:
      if (f.target_link != topo::kInvalidLink) {
        const auto& link = fabric_.topo().link(f.target_link);
        int rank = 0;
        for (int i = 0; i < cfg_.hosts; ++i) {
          if (hosts_[static_cast<std::size_t>(i)] == link.src) rank = i;
        }
        ingest(SyslogEvent{t, link.src, rank, "error",
                                  "mlx5: CQE error syndrome 0x04 (retry exceeded)"});
      }
      break;
    case RootCause::SwitchConfig:
      ingest(SyslogEvent{t, switch_of_link(f.target_link), -1, "warn",
                                "qos: ecn threshold misconfigured on egress queue"});
      break;
    case RootCause::SwitchBug:
      // Silent blackhole; only MOD drop counters betray it.
      break;
    case RootCause::OpticalFiber:
      ingest(SyslogEvent{t, switch_of_link(f.target_link), -1, "warn",
                                "transceiver: rx optical power below threshold"});
      break;
    case RootCause::WireConnection:
      ingest(SyslogEvent{t, switch_of_link(f.target_link), -1, "warn",
                                "lldp: neighbor mismatch with cabling plan"});
      break;
    case RootCause::LinkFlap:
      ingest(SyslogEvent{t, switch_of_link(f.target_link), -1, "warn",
                                "port: link down"});
      ingest(SyslogEvent{t + 0.5, switch_of_link(f.target_link), -1, "warn",
                                "port: link up"});
      break;
  }
}

void ClusterRuntime::apply_network_fault(const FaultSpec& f) {
  if (f.target_link == topo::kInvalidLink) return;
  double factor = 1.0;
  switch (f.manifestation) {
    case Manifestation::FailSlow: factor = f.degrade_factor; break;
    case Manifestation::FailHang: factor = 0.0; break;
    case Manifestation::FailStop: factor = 0.0; break;  // + errCQE below
    case Manifestation::FailOnStart: factor = 0.0; break;
  }
  sim_->degrade_link(f.target_link, factor);
}

void ClusterRuntime::fail_links(const FaultSpec& f) {
  if (f.target_link == topo::kInvalidLink) return;
  auto& topo = fabric_.topo();
  auto down = [&](topo::LinkId l) {
    if (topo.link(l).up) {
      sim_->set_link_up(l, false);
      downed_links_.push_back(l);
    }
  };
  if (f.switch_scope) {
    // The whole switch at the link's fabric end goes dark: every port.
    const auto& link = topo.link(f.target_link);
    topo::NodeId sw =
        topo.node(link.src).kind == topo::NodeKind::Host ? link.dst : link.src;
    for (topo::LinkId l : topo.out_links(sw)) down(l);
    for (topo::LinkId l : topo.in_links(sw)) down(l);
  } else {
    down(f.target_link);
  }
}

void ClusterRuntime::heal_fault(FaultRt& fr) {
  const FaultSpec& f = fr.spec;
  if (is_host_side(f.cause)) {
    host_slow_[static_cast<std::size_t>(f.target_host_rank)] = 1.0;
    host_configs_[static_cast<std::size_t>(f.target_host_rank)] = HostConfig{};
    if (f.target_link != topo::kInvalidLink) sim_->degrade_link(f.target_link, 1.0);
  } else if (f.target_link != topo::kInvalidLink) {
    sim_->degrade_link(f.target_link, 1.0);
  }
  fr.healed = true;
}

Seconds ClusterRuntime::analyzer_locate_time() const {
  HierarchicalAnalyzer analyzer(store_, fabric_.topo(), expected_compute(),
                                expected_comm());
  return analyzer.diagnose().locate_time;
}

RunOutcome ClusterRuntime::run() {
  RunOutcome out = run_job();
  // Held-back (reordered) collector batches land after the run ends.
  if (degrade_) degrade_->flush(store_);
  // Undo fabric-level link state so a shared fabric (campaigns run many
  // jobs over one topology) starts the next job repaired.
  auto& topo = fabric_.topo();
  for (topo::LinkId l : downed_links_) topo.set_link_state(l, true);
  downed_links_.clear();
  return out;
}

template <typename T>
void ClusterRuntime::ingest(T rec) {
  if (degrade_) {
    degrade_->record(std::move(rec), store_);
  } else {
    store_.record(std::move(rec));
  }
}

RunOutcome ClusterRuntime::run_job() {
  RunOutcome out;
  // Every event recorded below (including FluidSim's flow events) carries
  // this job's id through the ambient key chain.
  obs::TraceKeys job_keys;
  job_keys.job = cfg_.job_id;
  obs::AmbientScope job_scope(tracer_, job_keys);
  const RecoveryConfig& rc = cfg_.recovery;
  const Seconds hang_deadline = expected_comm() * cfg_.hang_timeout_factor;
  const Seconds healthy_iter = cfg_.compute_time + expected_comm();
  Seconds now = 0.0;
  int iter = 0;
  std::vector<Seconds> iter_useful(static_cast<std::size_t>(cfg_.iterations), 0.0);
  std::vector<net::FlowId> flows;

  auto finalize = [&](RunOutcome& o) {
    o.makespan = std::max(now, sim_->now());
    o.committed_iterations = iter;
    if (o.makespan > 0.0) {
      o.goodput = std::min(1.0, static_cast<double>(iter) * healthy_iter / o.makespan);
    }
  };

  // Host-side compute effects that persist across iterations.
  for (const FaultRt& fr : faults_) {
    if (is_host_side(fr.spec.cause) &&
        fr.spec.manifestation == Manifestation::FailSlow &&
        fr.spec.cause != RootCause::PcieDegrade) {
      host_slow_[static_cast<std::size_t>(fr.spec.target_host_rank)] = 3.0;
    }
  }

  // The failure the current iteration attempt died of, if any.
  FaultRt* resp = nullptr;

  // Fault-track events share the fault's schedule index as their key.
  auto trace_injection = [&](const FaultRt& fr, Seconds t) {
    if (metrics_) metrics_->add("runtime.faults.injected");
    if (!tracer_) return;
    obs::TraceKeys k;
    k.fault = static_cast<std::int64_t>(&fr - faults_.data());
    if (fr.spec.target_link != topo::kInvalidLink) k.link = fr.spec.target_link;
    tracer_->instant(obs::Track::Fault, "fault.injected", t, k,
                     to_string(fr.spec.cause));
  };

  // The MTTR phase breakdown as Fault-track spans, with instants marking
  // the paper's detect -> locate -> mitigate pipeline stages.
  auto trace_mitigation = [&](const MitigationRecord& rec, Seconds t0) {
    if (metrics_) {
      metrics_->add("runtime.mitigations");
      metrics_->histogram("runtime.mttr_s").record(rec.mttr());
    }
    if (!tracer_) return;
    obs::TraceKeys k;
    k.fault = rec.fault_index;
    tracer_->span(obs::Track::Fault, "mttr.detect", t0, rec.detect_time, k);
    tracer_->instant(obs::Track::Fault, "fault.detected", t0 + rec.detect_time, k);
    tracer_->span(obs::Track::Fault, "mttr.locate", t0 + rec.detect_time,
                  rec.locate_time, k);
    tracer_->instant(obs::Track::Fault, "fault.located",
                     t0 + rec.detect_time + rec.locate_time, k);
    tracer_->span(obs::Track::Fault, "mttr.recover",
                  t0 + rec.detect_time + rec.locate_time, rec.recover_time, k, 0.0,
                  to_string(rec.action));
    tracer_->instant(obs::Track::Fault, "fault.mitigated", t0 + rec.mttr(), k,
                     to_string(rec.action));
  };

  // Picks the fault a failure is attributed to: the most recently
  // activated unresolved fault, falling back to the last activated one
  // (residual damage of an already-mitigated fault).
  auto responsible = [&]() -> FaultRt* {
    FaultRt* best = nullptr;
    for (FaultRt& fr : faults_) {
      if (fr.applied && !fr.resolved()) best = &fr;
    }
    if (best) return best;
    for (FaultRt& fr : faults_) {
      if (fr.applied) best = &fr;
    }
    return best;
  };

  // Runs the mitigation state machine after the analyzer has had its
  // look at the telemetry. Returns false when the job must abort
  // (budget exhausted / recovery disabled).
  auto mitigate = [&](FaultRt* fr, Manifestation observed,
                      Seconds attempt_wall) -> bool {
    out.wasted_time += attempt_wall;
    if (!rc.enabled || fr == nullptr) return false;
    MitigationRecord rec;
    rec.fault_index = static_cast<int>(fr - faults_.data());
    rec.at_iteration = iter;
    rec.observed = observed;
    rec.detect_time = rc.detect_time;
    rec.locate_time = analyzer_locate_time();
    MitigationAction action;
    if (fr->resolved()) {
      // Residual damage from an already-handled fault: just retry.
      action = MitigationAction::RetryBackoff;
    } else if (is_host_side(fr->spec.cause)) {
      action = MitigationAction::IsolateRestart;
    } else if (fr->spec.repair_iterations >= 0) {
      action = MitigationAction::RetryBackoff;
    } else {
      action = MitigationAction::Reroute;
    }
    if (action == MitigationAction::IsolateRestart && out.restarts >= rc.max_restarts) {
      action = MitigationAction::Abort;
    }
    if (action == MitigationAction::RetryBackoff && fr->retries >= rc.max_retries) {
      action = MitigationAction::Abort;
    }
    rec.action = action;
    if (action == MitigationAction::Abort) {
      rec.succeeded = false;
      out.mitigations.push_back(rec);
      if (metrics_) metrics_->add("runtime.mitigation_aborts");
      if (tracer_) {
        obs::TraceKeys k;
        k.fault = rec.fault_index;
        tracer_->instant(obs::Track::Fault, "mitigation.abort", sim_->now(), k,
                         to_string(rec.observed));
      }
      return false;
    }
    switch (action) {
      case MitigationAction::RetryBackoff:
        rec.recover_time = rc.backoff_base *
                           std::pow(rc.backoff_factor, static_cast<double>(fr->retries));
        ++fr->retries;
        ++out.retries;
        // Waiting out a transient counts as an attempt toward self-heal.
        if (!fr->healed && fr->spec.repair_iterations >= 0) {
          ++fr->active_iters;
          if (fr->active_iters >= fr->spec.repair_iterations) heal_fault(*fr);
        }
        break;
      case MitigationAction::Reroute:
        // Cordon the dead link/switch so routing (and the next attempt's
        // fresh flows) steers around it.
        fail_links(fr->spec);
        sim_->reroute_flows();
        fr->mitigated = true;
        break;
      case MitigationAction::IsolateRestart: {
        heal_fault(*fr);
        fr->mitigated = true;
        rec.recover_time = rc.restart_time;
        ++out.restarts;
        int cp = rc.checkpoint_interval > 0
                     ? (iter / rc.checkpoint_interval) * rc.checkpoint_interval
                     : iter;
        // Committed-but-uncheckpointed iterations are replayed: their
        // time moves from useful to wasted.
        for (int k = cp; k < iter; ++k) {
          out.wasted_time += iter_useful[static_cast<std::size_t>(k)];
          out.useful_time -= iter_useful[static_cast<std::size_t>(k)];
          iter_useful[static_cast<std::size_t>(k)] = 0.0;
        }
        iter = cp;
        break;
      }
      default: break;
    }
    rec.succeeded = true;
    // Tear down whatever the failed attempt left in the fabric, then let
    // the wall clock absorb the outage (detect + locate + recover).
    for (net::FlowId fid : flows) {
      const auto& st = sim_->flow(fid);
      if (st.admitted && st.finish < 0 && !st.aborted) sim_->abort_flow(fid);
    }
    trace_mitigation(rec, sim_->now());
    sim_->run(sim_->now() + rec.mttr());
    out.downtime += rec.mttr();
    out.mitigations.push_back(rec);
    now = sim_->now();
    sim_->recycle_finished();
    return true;
  };

  while (iter < cfg_.iterations) {
    const Seconds iter_start = now;
    flows.clear();

    // Iteration-boundary fault activation (mid-transfer faults strike
    // inside the communication phase instead).
    for (FaultRt& fr : faults_) {
      if (!fr.applied && fr.spec.mid_transfer_fraction <= 0.0 &&
          iter >= fr.spec.at_iteration) {
        emit_injection_syslog(fr.spec, now);
        trace_injection(fr, now);
        if (!is_host_side(fr.spec.cause) || fr.spec.cause == RootCause::PcieDegrade) {
          apply_network_fault(fr.spec);
        }
        fr.applied = true;
      }
    }

    // Fail-on-start / host-side fail-stop: job aborts before or during
    // this iteration's compute.
    resp = nullptr;
    for (FaultRt& fr : faults_) {
      if (fr.applied && !fr.resolved() && fr.spec.mid_transfer_fraction <= 0.0 &&
          (fr.spec.manifestation == Manifestation::FailOnStart ||
           (fr.spec.manifestation == Manifestation::FailStop &&
            is_host_side(fr.spec.cause)))) {
        resp = &fr;
        break;
      }
    }
    if (resp) {
      for (int i = 0; i < cfg_.hosts; ++i) {
        NcclTimelineEvent ev;
        ev.t = now;
        ev.host_rank = i;
        ev.iteration = iter;
        ev.compute_time = i == resp->spec.target_host_rank ? 0.0 : cfg_.compute_time;
        ev.comm_time = -1.0;
        ev.wr_started = 1;
        ev.wr_finished = 0;
        ingest(ev);
      }
      if (mitigate(resp, resp->spec.manifestation, 0.0)) continue;
      out.stopped_at_iteration = iter;
      out.observed = resp->spec.manifestation;
      finalize(out);
      return out;
    }

    // Host-side fail-hang (driver/CCL bug, hung user code): the target
    // host never posts its work request; every rank blocks in the
    // collective. wr_started distinguishes the culprit (§3.2).
    for (FaultRt& fr : faults_) {
      if (fr.applied && !fr.resolved() && is_host_side(fr.spec.cause) &&
          fr.spec.mid_transfer_fraction <= 0.0 &&
          fr.spec.manifestation == Manifestation::FailHang) {
        resp = &fr;
        break;
      }
    }
    if (resp) {
      for (int i = 0; i < cfg_.hosts; ++i) {
        NcclTimelineEvent ev;
        ev.t = now;
        ev.host_rank = i;
        ev.iteration = iter;
        ev.compute_time = cfg_.compute_time;
        ev.comm_time = -1.0;
        ev.wr_started = i == resp->spec.target_host_rank ? 0 : 1;
        ev.wr_finished = 0;
        ingest(ev);
      }
      // The collective timeout burns before anyone notices a hang.
      Seconds stall = rc.enabled ? hang_deadline : 0.0;
      if (stall > 0.0) sim_->run(sim_->now() + stall);
      if (mitigate(resp, Manifestation::FailHang, stall)) continue;
      out.stopped_at_iteration = iter;
      out.observed = Manifestation::FailHang;
      finalize(out);
      return out;
    }

    // ---- Compute phase.
    std::vector<Seconds> compute(static_cast<std::size_t>(cfg_.hosts));
    Seconds max_compute = 0.0;
    for (int i = 0; i < cfg_.hosts; ++i) {
      double noise = 1.0 + std::abs(rng_.normal(0.0, 0.01));
      compute[static_cast<std::size_t>(i)] =
          cfg_.compute_time * noise * host_slow_[static_cast<std::size_t>(i)];
      max_compute = std::max(max_compute, compute[static_cast<std::size_t>(i)]);
    }

    // ---- Communication phase: ring flows on rail 0.
    Seconds comm_start = now + max_compute;
    sim_->run(comm_start);  // advance the network clock
    sim_->reset_stats();
    for (int i = 0; i < cfg_.hosts; ++i) {
      net::FlowSpec spec;
      spec.src_host = hosts_[static_cast<std::size_t>(i)];
      spec.dst_host = hosts_[static_cast<std::size_t>((i + 1) % cfg_.hosts)];
      spec.src_rail = 0;
      spec.dst_rail = 0;
      spec.size = cfg_.comm_bytes;
      spec.start = comm_start;
      spec.tag = static_cast<std::uint64_t>(i);
      flows.push_back(sim_->inject(spec));
    }
    // sFlow path reconstruction + tuple registration (first iteration).
    for (int i = 0; i < cfg_.hosts; ++i) {
      const auto& st = sim_->flow(flows[static_cast<std::size_t>(i)]);
      if (!st.admitted) continue;
      SflowPathRecord rec;
      rec.t = sim_->now();
      rec.qp = static_cast<QpId>(i);
      rec.tuple = st.tuple;
      rec.path = st.path;
      ingest(rec);
      if (iter == 0) {
        auto meta = *store_.qp_meta(static_cast<QpId>(i));
        meta.tuple = st.tuple;
        store_.register_qp(meta);
      }
    }

    // One INT pingmesh sweep per iteration, taken mid-transfer: admit the
    // wave (zero-progress run) so the solver has published this wave's
    // overloads, then sample hop latencies while the flows are in flight.
    // Sweeping after a fixed-interval step instead would race the transfer
    // itself — a short iteration drains within one sample interval and the
    // probes would read an idle fabric.
    sim_->run(comm_start);
    for (int i = 0; i < cfg_.hosts; ++i) {
      const auto& st = sim_->flow(flows[static_cast<std::size_t>(i)]);
      if (!st.admitted) continue;
      IntProbeResult probe;
      probe.t = sim_->now();
      probe.path = st.path;
      for (topo::LinkId l : st.path) probe.hop_latency.push_back(sim_->hop_latency(l));
      ingest(probe);
    }

    // Mid-transfer strikes scheduled inside this iteration's transfer.
    struct Strike {
      FaultRt* fr;
      Seconds t;
    };
    std::vector<Strike> strikes;
    for (FaultRt& fr : faults_) {
      if (!fr.applied && fr.spec.mid_transfer_fraction > 0.0 &&
          iter >= fr.spec.at_iteration) {
        strikes.push_back(
            {&fr, comm_start + fr.spec.mid_transfer_fraction * expected_comm()});
      }
    }
    std::sort(strikes.begin(), strikes.end(),
              [](const Strike& a, const Strike& b) { return a.t < b.t; });
    std::size_t next_strike = 0;

    auto strike_fault = [&](FaultRt& fr) {
      const FaultSpec& f = fr.spec;
      emit_injection_syslog(f, sim_->now());
      trace_injection(fr, sim_->now());
      fr.applied = true;
      if (is_host_side(f.cause)) {
        if (f.manifestation == Manifestation::FailStop) {
          // The host dies with flows in flight: its QPs abort and the
          // peers see remote errors.
          topo::NodeId dead = hosts_[static_cast<std::size_t>(f.target_host_rank)];
          for (int i = 0; i < cfg_.hosts; ++i) {
            const auto& st = sim_->flow(flows[static_cast<std::size_t>(i)]);
            if (!st.admitted || st.finish >= 0 || st.aborted) continue;
            if (st.spec.src_host == dead || st.spec.dst_host == dead) {
              sim_->abort_flow(flows[static_cast<std::size_t>(i)]);
              ingest(ErrCqeEvent{sim_->now(), static_cast<QpId>(i), i,
                                        "remote operation error / peer died"});
            }
          }
        } else {
          host_slow_[static_cast<std::size_t>(f.target_host_rank)] = 3.0;
        }
        return;
      }
      // Network fault in flight: degrade for fail-slow, dead otherwise.
      if (f.manifestation == Manifestation::FailSlow) {
        sim_->degrade_link(f.target_link, f.degrade_factor);
        return;
      }
      fail_links(f);
      if (rc.enabled) {
        // In-flight failover (P3): migrate live flows onto the surviving
        // dual-ToR side. The job never stops, so MTTR is the transport's
        // sub-second failover — modeled as zero against minutes-scale
        // detect/locate pipelines.
        auto rep = sim_->reroute_flows();
        out.reroutes += static_cast<int>(rep.rerouted.size());
        if (metrics_) metrics_->add("runtime.inflight_reroutes", rep.rerouted.size());
        if (tracer_) {
          obs::TraceKeys k;
          k.fault = static_cast<std::int64_t>(&fr - faults_.data());
          tracer_->instant(obs::Track::Fault, "fault.inflight_reroute", sim_->now(),
                           k, to_string(f.cause));
        }
        for (net::FlowId fid : rep.stranded) sim_->abort_flow(fid);
        MitigationRecord rec;
        rec.fault_index = static_cast<int>(&fr - faults_.data());
        rec.at_iteration = iter;
        rec.observed = f.manifestation;
        rec.action = MitigationAction::Reroute;
        rec.succeeded = rep.all_moved();
        out.mitigations.push_back(rec);
        fr.mitigated = true;
      }
    };

    // Step the simulation, sampling QP rates (ms-level monitoring).
    Seconds deadline = comm_start + hang_deadline;
    while (!sim_->idle() && sim_->now() < deadline) {
      Seconds step_to = std::min(deadline, sim_->now() + cfg_.qp_sample_interval);
      if (next_strike < strikes.size()) {
        step_to = std::min(step_to, strikes[next_strike].t);
      }
      sim_->run(step_to);
      for (int i = 0; i < cfg_.hosts; ++i) {
        ingest(QpRateSample{sim_->now(), static_cast<QpId>(i),
                                   sim_->current_rate(flows[static_cast<std::size_t>(i)])});
      }
      while (next_strike < strikes.size() &&
             sim_->now() >= strikes[next_strike].t - 1e-12) {
        strike_fault(*strikes[next_strike].fr);
        ++next_strike;
      }
    }
    // Strikes the transfer outran (it finished first) still land, on an
    // idle fabric — the fault exists from now on, it just hit nobody.
    while (next_strike < strikes.size()) {
      strike_fault(*strikes[next_strike].fr);
      ++next_strike;
    }

    // Per-iteration switch counter collection (SNMP + MOD).
    for (std::size_t l = 0; l < fabric_.topo().link_count(); ++l) {
      const auto& ls = sim_->link_stats(static_cast<topo::LinkId>(l));
      std::uint64_t drops = 0;
      for (const FaultRt& fr : faults_) {
        if (fr.applied && !fr.healed &&
            fr.spec.target_link == static_cast<topo::LinkId>(l)) {
          for (net::FlowId fid : flows) {
            const auto& st = sim_->flow(fid);
            if (st.finish < 0) drops += static_cast<std::uint64_t>(st.remaining);
          }
          break;
        }
      }
      if (ls.ecn_marks || ls.pfc_pauses || drops) {
        ingest(LinkCounterSample{sim_->now(), static_cast<topo::LinkId>(l),
                                        ls.ecn_marks, ls.pfc_pauses, drops, 0.0});
      }
    }

    // Application-layer iteration record.
    bool hung = false;
    for (int i = 0; i < cfg_.hosts; ++i) {
      const auto& st = sim_->flow(flows[static_cast<std::size_t>(i)]);
      NcclTimelineEvent ev;
      ev.t = now;
      ev.host_rank = i;
      ev.iteration = iter;
      ev.compute_time = compute[static_cast<std::size_t>(i)];
      ev.wr_started = 1;
      if (st.admitted && st.finish >= 0) {
        ev.comm_time = st.finish - comm_start;
        ev.wr_finished = 1;
      } else {
        ev.comm_time = -1.0;
        ev.wr_finished = 0;
        hung = true;
      }
      ingest(ev);
    }

    if (hung) {
      // A hard network fault (dead port, misconfigured switch dropping
      // the queue, severed fiber...) exhausts transport retries: errCQE
      // events surface on every QP crossing it and the job observes a
      // fail-stop. Silent blackholes (switch bugs) drop traffic without
      // errors and manifest as fail-hang instead.
      FaultRt* netstop = nullptr;
      for (FaultRt& fr : faults_) {
        if (fr.applied && !fr.resolved() && !is_host_side(fr.spec.cause) &&
            fr.spec.manifestation == Manifestation::FailStop) {
          netstop = &fr;
        }
      }
      if (netstop) {
        for (int i = 0; i < cfg_.hosts; ++i) {
          const auto& st = sim_->flow(flows[static_cast<std::size_t>(i)]);
          if (st.finish < 0) {
            ingest(ErrCqeEvent{sim_->now(), static_cast<QpId>(i), i,
                                      "local protection error / retry exceeded"});
          }
        }
        if (mitigate(netstop, Manifestation::FailStop, sim_->now() - iter_start)) {
          continue;
        }
        out.stopped_at_iteration = iter;
        out.observed = Manifestation::FailStop;
        finalize(out);
        return out;
      }

      resp = responsible();
      // A host that died mid-transfer reads as fail-stop (its peers got
      // remote errCQEs); anything else that starves the collective past
      // its timeout reads as a hang.
      Manifestation observed =
          resp && resp->spec.mid_transfer_fraction > 0.0 &&
                  resp->spec.manifestation == Manifestation::FailStop &&
                  is_host_side(resp->spec.cause)
              ? Manifestation::FailStop
              : Manifestation::FailHang;
      if (mitigate(resp, observed, sim_->now() - iter_start)) continue;
      out.stopped_at_iteration = iter;
      out.observed = observed;
      finalize(out);
      return out;
    }

    now = sim_->now();
    sim_->recycle_finished();

    // Transient faults self-heal after surviving enough iterations.
    for (FaultRt& fr : faults_) {
      if (fr.applied && !fr.healed && fr.spec.repair_iterations >= 0) {
        ++fr.active_iters;
        if (fr.active_iters >= fr.spec.repair_iterations) heal_fault(fr);
      }
    }

    if (metrics_) metrics_->add("runtime.iterations.committed");
    if (tracer_) {
      // The ring comm phase is the job's collective: one Collective-track
      // span (value = bytes over the fabric) nested under the Workload
      // iteration span, all stamped with the ambient job key.
      tracer_->span(obs::Track::Workload, "compute", iter_start, max_compute);
      tracer_->span(obs::Track::Collective, "ring_step", comm_start,
                    now - comm_start, {},
                    static_cast<double>(cfg_.comm_bytes) * cfg_.hosts);
      tracer_->span(obs::Track::Workload, "iteration", iter_start, now - iter_start,
                    {}, static_cast<double>(iter));
    }
    iter_useful[static_cast<std::size_t>(iter)] = now - iter_start;
    out.useful_time += now - iter_start;
    ++iter;
  }

  out.completed = true;
  finalize(out);
  // A run that completed but ran slow is a fail-slow manifestation.
  for (const FaultRt& fr : faults_) {
    if (fr.spec.manifestation == Manifestation::FailSlow ||
        fr.spec.cause == RootCause::LinkFlap) {
      out.observed = Manifestation::FailSlow;
    }
  }
  if (!out.observed && !out.mitigations.empty()) {
    out.observed = out.mitigations.front().observed;
  }
  return out;
}

}  // namespace astral::monitor
