#include "monitor/fleet_runtime.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/math.h"
#include "monitor/stream_analyzer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace astral::monitor {

using core::Seconds;

namespace {
constexpr Seconds kNever = std::numeric_limits<double>::infinity();
}  // namespace

const char* to_string(SegmentEnd end) {
  switch (end) {
    case SegmentEnd::Completed: return "completed";
    case SegmentEnd::Aborted: return "aborted";
    case SegmentEnd::Preempted: return "preempted";
    case SegmentEnd::Shrunk: return "shrunk";
    case SegmentEnd::Regrown: return "regrown";
    case SegmentEnd::Deadline: return "deadline";
  }
  return "?";
}

std::vector<FleetJobSpec> generate_arrivals(const ArrivalProcessConfig& cfg) {
  assert(cfg.sizes.size() == cfg.size_weights.size());
  assert(!cfg.sizes.empty());
  assert(cfg.arrival_rate > 0.0);
  core::Rng rng(cfg.seed);
  double weight_sum = 0.0;
  for (double w : cfg.size_weights) weight_sum += w;
  std::vector<FleetJobSpec> out;
  out.reserve(static_cast<std::size_t>(cfg.jobs));
  Seconds t = 0.0;
  for (int i = 0; i < cfg.jobs; ++i) {
    t += rng.exponential(cfg.arrival_rate);
    double u = rng.uniform() * weight_sum;
    std::size_t pick = 0;
    for (; pick + 1 < cfg.sizes.size(); ++pick) {
      if (u < cfg.size_weights[pick]) break;
      u -= cfg.size_weights[pick];
    }
    FleetJobSpec spec;
    spec.job.hosts = cfg.sizes[pick];
    spec.job.iterations = cfg.iterations;
    spec.job.comm_bytes = cfg.comm_bytes;
    spec.job.recovery = cfg.recovery;
    spec.arrival = t;
    spec.priority =
        cfg.priorities.empty()
            ? 0
            : cfg.priorities[static_cast<std::size_t>(
                  rng.uniform_int(static_cast<int>(cfg.priorities.size())))];
    spec.seed = cfg.seed * 1000003ull + static_cast<std::uint64_t>(i) * 7919ull + 1;
    out.push_back(spec);
  }
  return out;
}

core::Json FleetOutcome::to_json() const {
  core::Json j = core::Json::object();
  j["makespan_s"] = makespan;
  j["fleet_goodput"] = fleet_goodput;
  j["allocated_host_hours"] = allocated_host_hours;
  j["useful_host_hours"] = useful_host_hours;
  j["queue_delay_mean_s"] = queue_delay_mean;
  j["queue_delay_p50_s"] = queue_delay_p50;
  j["queue_delay_p99_s"] = queue_delay_p99;
  j["jobs_per_hour"] = jobs_per_hour;
  j["preemption_cost_s"] = preemption_cost;
  j["completion_rate"] = completion_rate;
  core::Json ja = core::Json::array();
  for (const FleetJobLedger& jl : jobs) {
    core::Json o = core::Json::object();
    o["job_id"] = static_cast<double>(jl.job_id);
    o["priority"] = static_cast<double>(jl.priority);
    o["arrival_s"] = jl.arrival;
    o["first_start_s"] = jl.first_start;
    o["finish_s"] = jl.finish;
    o["completed"] = jl.completed;
    o["queue_delay_s"] = jl.queue_delay;
    o["preemptions"] = static_cast<double>(jl.preemptions);
    o["shrinks"] = static_cast<double>(jl.shrinks);
    o["regrows"] = static_cast<double>(jl.regrows);
    o["preempted_cost_s"] = jl.preempted_cost;
    o["committed_iterations"] =
        static_cast<double>(jl.merged.committed_iterations);
    o["useful_s"] = jl.merged.useful_time;
    o["wasted_s"] = jl.merged.wasted_time;
    o["downtime_s"] = jl.merged.downtime;
    o["goodput"] = jl.merged.goodput;
    core::Json segs = core::Json::array();
    for (const SegmentRecord& s : jl.segments) {
      core::Json so = core::Json::object();
      so["start_s"] = s.start_time;
      so["end_s"] = s.end_time;
      so["start_iteration"] = static_cast<double>(s.start_iteration);
      so["hosts"] = static_cast<double>(s.hosts);
      so["end"] = std::string(to_string(s.end));
      so["committed_iterations"] =
          static_cast<double>(s.outcome.committed_iterations);
      so["mitigations"] = static_cast<double>(s.outcome.mitigations.size());
      segs.push_back(std::move(so));
    }
    o["segments"] = std::move(segs);
    ja.push_back(std::move(o));
  }
  j["jobs"] = std::move(ja);
  core::Json jf = core::Json::array();
  for (const FleetFaultLedger& fl : faults) {
    core::Json o = core::Json::object();
    o["at_time_s"] = fl.fault.at_time;
    o["cause"] = std::string(to_string(fl.fault.cause));
    o["manifestation"] = std::string(to_string(fl.fault.manifestation));
    o["switch_scope"] = fl.fault.switch_scope;
    o["heal_after_s"] = fl.fault.heal_after;
    core::Json touched = core::Json::array();
    for (int id : fl.jobs_touched) touched.push_back(static_cast<double>(id));
    o["jobs_touched"] = std::move(touched);
    o["host_hours_lost"] = fl.host_hours_lost;
    jf.push_back(std::move(o));
  }
  j["faults"] = std::move(jf);
  return j;
}

FleetRuntime::FleetRuntime(topo::Fabric& fabric, FleetConfig cfg)
    : fabric_(fabric), cfg_(cfg), rng_(cfg.seed) {
  sim_ = std::make_unique<net::FluidSim>(fabric_, net::FluidSimConfig{},
                                         cfg_.seed);
  free_.assign(fabric_.topo().hosts().size(), 1);
}

void FleetRuntime::set_tracer(obs::Tracer* tracer) {
  tracer_ = tracer;
  sim_->set_tracer(tracer);
}

void FleetRuntime::set_metrics(obs::Metrics* metrics) {
  metrics_ = metrics;
  sim_->set_metrics(metrics);
}

int FleetRuntime::submit(FleetJobSpec spec, std::vector<FaultSpec> local_faults) {
  assert(!ran_);
  int id = static_cast<int>(jobs_.size());
  if (spec.job.recovery.enabled) {
    if (auto err = validate_recovery(spec.job.recovery)) {
      throw std::invalid_argument("FleetRuntime::submit: job " +
                                  std::to_string(id) +
                                  " has an invalid RecoveryConfig: " + *err);
    }
  }
  spec.job.job_id = id;
  // The fleet owns placement: every tenant goes through the sweep's
  // policy so campaigns compare policies apples to apples.
  spec.job.placement = cfg_.placement;
  jobs_.emplace_back();
  JobRt& job = jobs_.back();
  job.spec = std::move(spec);
  job.local_faults = std::move(local_faults);
  job.ledger.job_id = id;
  job.ledger.priority = job.spec.priority;
  job.ledger.arrival = job.spec.arrival;
  push_event(job.spec.arrival, EventKind::Arrival, id);
  return id;
}

void FleetRuntime::inject(const FleetFault& fault) {
  assert(!ran_);
  assert(fault.target_host >= 0 || fault.target_link != topo::kInvalidLink);
  assert(fault.target_host < 0 ||
         static_cast<std::size_t>(fault.target_host) < free_.size());
  int id = static_cast<int>(faults_.size());
  faults_.push_back(FleetFaultLedger{fault, {}, 0.0});
  fault_links_.emplace_back();
  push_event(fault.at_time, EventKind::FaultStrike, id);
}

const TelemetryStore* FleetRuntime::job_telemetry(int job_id) const {
  const JobRt& job = jobs_[static_cast<std::size_t>(job_id)];
  if (job.engine) return &job.engine->store();
  if (!job.retired.empty()) return &job.retired.back()->store();
  return nullptr;
}

void FleetRuntime::push_event(Seconds t, EventKind kind, int idx) {
  events_.push_back(Event{t, kind, idx, event_seq_++});
}

bool FleetRuntime::pop_next_event(Seconds before_or_at, Event* out) {
  const Event* best = nullptr;
  for (const Event& e : events_) {
    if (e.t > before_or_at) continue;
    if (!best || e.t < best->t ||
        (e.t == best->t && (e.kind < best->kind ||
                            (e.kind == best->kind && e.seq < best->seq)))) {
      best = &e;
    }
  }
  if (!best) return false;
  *out = *best;
  events_.erase(events_.begin() + (best - events_.data()));
  return true;
}

bool FleetRuntime::admit(JobRt& job, std::vector<int> hosts) {
  job.host_idx = std::move(hosts);
  job.host_nodes.clear();
  for (int h : job.host_idx) {
    free_[static_cast<std::size_t>(h)] = 0;
    job.host_nodes.push_back(
        fabric_.topo().hosts()[static_cast<std::size_t>(h)]);
  }
  if (metrics_) metrics_->add("fleet.admissions");
  if (job.ledger.first_start < 0.0) {
    job.ledger.first_start = sim_->now();
    job.ledger.queue_delay = sim_->now() - job.ledger.arrival;
    if (tracer_ && job.ledger.queue_delay > 0.0) {
      obs::TraceKeys k;
      k.job = job.ledger.job_id;
      tracer_->span(obs::Track::Workload, "fleet.queued", job.ledger.arrival,
                    job.ledger.queue_delay, k);
    }
    start_segment(job);
  } else {
    // Re-admission (post-preemption / shrink / regrow): the next segment
    // pays the checkpoint-reload gap before compute resumes.
    job.state = JobState::Starting;
    job.ledger.merged.downtime += job.spec.job.recovery.restart_time;
    push_event(sim_->now() + job.spec.job.recovery.restart_time,
               EventKind::StartSegment, job.ledger.job_id);
  }
  return true;
}

void FleetRuntime::start_segment(JobRt& job) {
  job.segment_start = sim_->now();
  job.segment_start_iteration = job.start_iteration;
  JobConfig jc = job.spec.job;
  jc.hosts = static_cast<int>(job.host_nodes.size());
  // Segment 0 uses the tenant seed verbatim (the ClusterRuntime
  // equivalence contract); later segments decorrelate their noise.
  std::uint64_t salt = static_cast<std::uint64_t>(job.ledger.segments.size());
  std::uint64_t seed = job.spec.seed + salt * 0x9e3779b97f4a7c15ull;
  job.engine = std::make_unique<JobEngine>(fabric_, *sim_, jc, seed,
                                           job.host_nodes, /*fleet_mode=*/true,
                                           job.start_iteration);
  job.engine->set_tracer(tracer_);
  job.engine->set_metrics(metrics_);
  if (stream_) job.engine->set_stream_analyzer(stream_);
  job.fault_map.clear();
  if (!job.local_faults_spent) {
    for (const FaultSpec& f : job.local_faults) job.engine->inject(f);
    job.local_faults_spent = true;
  }
  job.state = JobState::Running;
  job.engine->start();
  if (job.engine->done()) handle_engine_done(job);
}

void FleetRuntime::try_admit() {
  if (sim_->now() >= cfg_.drain_deadline) return;
  std::vector<int> queued;
  for (const JobRt& j : jobs_) {
    if (j.state == JobState::Queued && j.spec.arrival <= sim_->now()) {
      queued.push_back(j.ledger.job_id);
    }
  }
  std::sort(queued.begin(), queued.end(), [&](int a, int b) {
    const JobRt& ja = jobs_[static_cast<std::size_t>(a)];
    const JobRt& jb = jobs_[static_cast<std::size_t>(b)];
    if (ja.spec.priority != jb.spec.priority) {
      return ja.spec.priority > jb.spec.priority;
    }
    if (ja.spec.arrival != jb.spec.arrival) {
      return ja.spec.arrival < jb.spec.arrival;
    }
    return a < b;
  });
  for (int id : queued) {
    JobRt& job = jobs_[static_cast<std::size_t>(id)];
    if (job.state != JobState::Queued) continue;
    int n = job.spec.job.hosts;
    if (static_cast<std::size_t>(n) > free_.size()) {
      finish_job(job, false);  // can never fit this fabric
      continue;
    }
    std::vector<int> hosts =
        parallel::place_hosts(fabric_, n, cfg_.placement, free_);
    if (!hosts.empty()) {
      admit(job, std::move(hosts));
      continue;  // backfill: keep scanning lower-priority jobs
    }
    if (!cfg_.preemption) continue;
    // Victim scan: lower-priority running tenants, cheapest first (lowest
    // priority, then youngest), tentatively freed until the demand fits.
    std::vector<int> pool;
    for (const JobRt& j : jobs_) {
      if (j.state == JobState::Running && j.spec.priority < job.spec.priority) {
        pool.push_back(j.ledger.job_id);
      }
    }
    std::sort(pool.begin(), pool.end(), [&](int a, int b) {
      const JobRt& ja = jobs_[static_cast<std::size_t>(a)];
      const JobRt& jb = jobs_[static_cast<std::size_t>(b)];
      if (ja.spec.priority != jb.spec.priority) {
        return ja.spec.priority < jb.spec.priority;
      }
      if (ja.spec.arrival != jb.spec.arrival) {
        return ja.spec.arrival > jb.spec.arrival;
      }
      return a > b;
    });
    std::vector<char> tentative = free_;
    std::vector<int> victims;
    std::vector<int> fit;
    for (int vid : pool) {
      const JobRt& v = jobs_[static_cast<std::size_t>(vid)];
      for (int h : v.host_idx) tentative[static_cast<std::size_t>(h)] = 1;
      victims.push_back(vid);
      fit = parallel::place_hosts(fabric_, n, cfg_.placement, tentative);
      if (!fit.empty()) break;
    }
    if (fit.empty()) continue;  // even preempting everything doesn't help
    for (int vid : victims) preempt(jobs_[static_cast<std::size_t>(vid)], id);
    hosts = parallel::place_hosts(fabric_, n, cfg_.placement, free_);
    assert(!hosts.empty());
    admit(job, std::move(hosts));
  }
}

void FleetRuntime::preempt(JobRt& victim, int for_job) {
  assert(victim.state == JobState::Running && victim.engine);
  (void)for_job;
  obs::TraceKeys k;
  k.job = victim.ledger.job_id;
  {
    obs::AmbientScope scope(tracer_, k);
    victim.engine->interrupt();
  }
  Seconds moved = 0.0;
  int cp = victim.engine->rewind_to_checkpoint(&moved);
  victim.start_iteration = cp;
  victim.ledger.preempted_cost += moved;
  ++victim.ledger.preemptions;
  if (metrics_) metrics_->add("fleet.preemptions");
  if (tracer_) {
    tracer_->instant(obs::Track::Workload, "fleet.preempt", sim_->now(), k);
  }
  retire_segment(victim, SegmentEnd::Preempted);
  for (int h : victim.host_idx) free_[static_cast<std::size_t>(h)] = 1;
  victim.host_idx.clear();
  victim.host_nodes.clear();
  victim.state = JobState::Queued;
}

void FleetRuntime::retire_segment(JobRt& job, SegmentEnd end) {
  assert(job.engine);
  JobEngine& e = *job.engine;
  SegmentRecord seg;
  seg.start_time = job.segment_start;
  seg.end_time = sim_->now();
  seg.start_iteration = job.segment_start_iteration;
  seg.hosts = static_cast<int>(job.host_nodes.size());
  seg.end = end;
  seg.outcome = e.outcome();
  job.ledger.segments.push_back(seg);

  RunOutcome& m = job.ledger.merged;
  if (job.ledger.segments.size() == 1) {
    // Single segment: the merged ledger IS the engine's outcome, field
    // for field — the bit-identity contract with ClusterRuntime::run().
    m = seg.outcome;
  } else {
    for (const MitigationRecord& rec : seg.outcome.mitigations) {
      m.mitigations.push_back(rec);
    }
    m.restarts += seg.outcome.restarts;
    m.retries += seg.outcome.retries;
    m.reroutes += seg.outcome.reroutes;
    m.useful_time += seg.outcome.useful_time;
    m.wasted_time += seg.outcome.wasted_time;
    m.downtime += seg.outcome.downtime;
    m.completed = seg.outcome.completed;
    m.stopped_at_iteration = seg.outcome.stopped_at_iteration;
    m.committed_iterations = seg.outcome.committed_iterations;
    if (seg.outcome.observed) m.observed = seg.outcome.observed;
    m.makespan = seg.start_time + seg.outcome.makespan - job.ledger.first_start;
    m.goodput = 0.0;
    if (m.makespan > 0.0) {
      m.goodput = std::min(1.0, static_cast<double>(m.committed_iterations) *
                                    e.healthy_iteration() / m.makespan);
    }
  }
  // Blast-radius attribution: mitigation stalls caused by fleet faults
  // cost the whole segment's allocation for their MTTR.
  for (const MitigationRecord& rec : seg.outcome.mitigations) {
    auto it = job.fault_map.find(rec.fault_index);
    if (it != job.fault_map.end()) {
      charge_blast(it->second, host_hours(rec.mttr(), seg.hosts));
    }
  }
  e.flush_telemetry();
  // Post-flush, so the final online diagnosis saw every held-back
  // collector batch the batch analyzer would see.
  e.set_stream_analyzer(nullptr);
  // Restore this segment's Reroute-cordoned links through the shared sim
  // (capacity AND routing: the fabric outlives the tenant).
  for (topo::LinkId l : e.downed_links()) sim_->set_link_up(l, true);
  e.restore_downed_links();
  if (tracer_) {
    obs::TraceKeys k;
    k.job = job.ledger.job_id;
    tracer_->span(obs::Track::Workload, "fleet.segment", seg.start_time,
                  seg.end_time - seg.start_time, k,
                  static_cast<double>(seg.hosts), to_string(end));
  }
  job.retired.push_back(std::move(job.engine));
}

void FleetRuntime::finish_job(JobRt& job, bool completed) {
  job.ledger.completed = completed;
  job.ledger.finish = sim_->now();
  job.state = JobState::Done;
  for (int h : job.host_idx) free_[static_cast<std::size_t>(h)] = 1;
  for (int h : job.reserved) free_[static_cast<std::size_t>(h)] = 1;
  job.reserved.clear();
  job.host_idx.clear();
  job.host_nodes.clear();
  try_admit();
}

void FleetRuntime::heal_cordon(int host) {
  auto it = cordon_owner_.find(host);
  if (it != cordon_owner_.end()) {
    JobRt& job = jobs_[static_cast<std::size_t>(it->second)];
    cordon_owner_.erase(it);
    if (job.state != JobState::Done && job.regrow_pending) {
      // The replacement goes back to the tenant it was pulled from; it
      // rejoins the job at its next iteration boundary (try_regrow).
      job.reserved.push_back(host);
      return;
    }
  }
  free_[static_cast<std::size_t>(host)] = 1;
  try_admit();
}

void FleetRuntime::handle_engine_done(JobRt& job) {
  const RunOutcome& o = job.engine->outcome();
  if (o.completed) {
    retire_segment(job, SegmentEnd::Completed);
    finish_job(job, true);
    return;
  }
  // Terminal stop. Elastic way out: a host-side fault that exhausted the
  // restart budget lets the job shed the bad host and continue smaller.
  bool shrinkable = cfg_.elastic.enabled && !o.mitigations.empty() &&
                    o.mitigations.back().action == MitigationAction::Abort;
  int dead_rank = -1;
  int fault_idx = -1;
  if (shrinkable) {
    fault_idx = o.mitigations.back().fault_index;
    const FaultSpec& fs = job.engine->fault_spec(fault_idx);
    if (is_host_side(fs.cause)) {
      dead_rank = fs.target_host_rank;
    } else {
      shrinkable = false;
    }
  }
  int cur_hosts = static_cast<int>(job.host_nodes.size());
  int min_hosts = std::max(2, cfg_.elastic.min_hosts);
  if (cur_hosts - 1 < min_hosts) shrinkable = false;
  if (!shrinkable) {
    retire_segment(job, SegmentEnd::Aborted);
    finish_job(job, false);
    return;
  }

  Seconds moved = 0.0;
  int cp = job.engine->rewind_to_checkpoint(&moved);
  job.start_iteration = cp;
  auto it = job.fault_map.find(fault_idx);
  if (it != job.fault_map.end()) {
    // The shrink's rewind + restart gap are part of the fault's blast.
    charge_blast(it->second,
                 host_hours(moved + job.spec.job.recovery.restart_time, cur_hosts));
  }
  retire_segment(job, SegmentEnd::Shrunk);
  // Cordon the dead host: it leaves the job but NOT the free pool until
  // it heals (hardware swap).
  int dead_idx = job.host_idx[static_cast<std::size_t>(dead_rank)];
  job.host_idx.erase(job.host_idx.begin() + dead_rank);
  job.host_nodes.erase(job.host_nodes.begin() + dead_rank);
  cordon_owner_[dead_idx] = job.ledger.job_id;
  push_event(sim_->now() + cfg_.elastic.cordon_heal_time, EventKind::CordonHeal,
             dead_idx);
  ++job.ledger.shrinks;
  job.regrow_pending = true;
  job.ledger.merged.downtime += job.spec.job.recovery.restart_time;
  if (metrics_) metrics_->add("fleet.shrinks");
  if (tracer_) {
    obs::TraceKeys k;
    k.job = job.ledger.job_id;
    tracer_->instant(obs::Track::Workload, "fleet.shrink", sim_->now(), k);
  }
  job.state = JobState::Starting;
  push_event(sim_->now() + job.spec.job.recovery.restart_time,
             EventKind::StartSegment, job.ledger.job_id);
}

bool FleetRuntime::try_regrow(JobRt& job) {
  int full = job.spec.job.hosts;
  if (static_cast<int>(job.host_nodes.size()) >= full) {
    // Already back at full size (a preemption round-trip re-admitted the
    // job at its requested size); release any replacement still held.
    job.regrow_pending = false;
    if (!job.reserved.empty()) {
      for (int h : job.reserved) free_[static_cast<std::size_t>(h)] = 1;
      job.reserved.clear();
      try_admit();
    }
    return false;
  }
  std::vector<char> tentative = free_;
  for (int h : job.host_idx) tentative[static_cast<std::size_t>(h)] = 1;
  for (int h : job.reserved) tentative[static_cast<std::size_t>(h)] = 1;
  std::vector<int> hosts =
      parallel::place_hosts(fabric_, full, cfg_.placement, tentative);
  if (hosts.empty()) return false;
  // Regrow transition at a clean boundary: no attempt in flight, so the
  // only charge is the restart gap + any uncheckpointed iterations.
  obs::TraceKeys k;
  k.job = job.ledger.job_id;
  {
    obs::AmbientScope scope(tracer_, k);
    job.engine->interrupt();
  }
  int cp = job.engine->rewind_to_checkpoint();
  job.start_iteration = cp;
  retire_segment(job, SegmentEnd::Regrown);
  for (int h : job.host_idx) free_[static_cast<std::size_t>(h)] = 1;
  for (int h : job.reserved) free_[static_cast<std::size_t>(h)] = 1;
  job.reserved.clear();
  job.host_idx.clear();
  job.host_nodes.clear();
  ++job.ledger.regrows;
  job.regrow_pending = false;
  if (metrics_) metrics_->add("fleet.regrows");
  if (tracer_) {
    tracer_->instant(obs::Track::Workload, "fleet.regrow", sim_->now(), k);
  }
  admit(job, std::move(hosts));  // schedules the restart-delayed segment
  try_admit();                   // the freed fragment may fit someone else
  return true;
}

int FleetRuntime::fault_pod(const FleetFault& f) const {
  const auto& topo = fabric_.topo();
  if (f.target_link != topo::kInvalidLink) return link_pod(topo, f.target_link);
  if (f.target_host >= 0 &&
      f.target_host < static_cast<int>(topo.hosts().size())) {
    return topo.node(topo.hosts()[static_cast<std::size_t>(f.target_host)]).pod;
  }
  return 0;
}

void FleetRuntime::charge_blast(int fault_id, double hours) {
  FleetFaultLedger& fl = faults_[static_cast<std::size_t>(fault_id)];
  fl.host_hours_lost += hours;
  if (stream_) stream_->note_blast_radius(fault_pod(fl.fault), hours);
}

void FleetRuntime::strike_fleet_fault(int fault_id) {
  FleetFaultLedger& fl = faults_[static_cast<std::size_t>(fault_id)];
  const FleetFault& f = fl.fault;
  if (metrics_) metrics_->add("fleet.faults.injected");
  // Blast-radius export once the strike's delivery is known: jobs
  // touched as a fleet counter, and the fault landing in its pod's
  // streaming rollup.
  auto export_blast = [&] {
    if (metrics_) metrics_->add("fleet.blast.jobs_touched", fl.jobs_touched.size());
    if (stream_) stream_->note_fleet_fault(fault_pod(f), fl.jobs_touched.size());
  };

  if (f.target_host >= 0) {
    // Host fault: lands on whoever owns the host right now.
    topo::NodeId host =
        fabric_.topo().hosts()[static_cast<std::size_t>(f.target_host)];
    for (JobRt& job : jobs_) {
      if (job.state != JobState::Running || !job.engine) continue;
      int rank = job.engine->rank_of_host(host);
      if (rank < 0) continue;
      FaultSpec spec;
      spec.cause = f.cause;
      spec.manifestation = f.manifestation;
      spec.target_host_rank = rank;
      spec.at_iteration = job.engine->current_iteration();
      spec.degrade_factor = f.degrade_factor;
      if (f.heal_after >= 0.0) spec.repair_iterations = 1;
      obs::TraceKeys k;
      k.job = job.ledger.job_id;
      obs::AmbientScope scope(tracer_, k);
      int idx = job.engine->deliver_fault(spec);
      job.fault_map[idx] = fault_id;
      fl.jobs_touched.push_back(job.ledger.job_id);
      export_blast();
      return;  // a host belongs to at most one tenant
    }
    // Unowned host: cordon it so nobody lands on dead hardware.
    if (free_[static_cast<std::size_t>(f.target_host)]) {
      free_[static_cast<std::size_t>(f.target_host)] = 0;
      if (f.heal_after >= 0.0) {
        push_event(sim_->now() + f.heal_after, EventKind::CordonHeal,
                   f.target_host);
      }
    }
    export_blast();
    return;
  }

  assert(f.target_link != topo::kInvalidLink);
  if (f.manifestation == Manifestation::FailSlow) {
    // Soft fault: capacity degrades; tenants crossing it just run slow.
    for (JobRt& job : jobs_) {
      if (job.state != JobState::Running || !job.engine) continue;
      topo::LinkId one[] = {f.target_link};
      if (!job.engine->crosses_any(one)) continue;
      FaultSpec spec;
      spec.cause = f.cause;
      spec.manifestation = f.manifestation;
      spec.target_link = f.target_link;
      spec.at_iteration = job.engine->current_iteration();
      spec.degrade_factor = f.degrade_factor;
      if (f.heal_after >= 0.0) spec.repair_iterations = 1;
      obs::TraceKeys k;
      k.job = job.ledger.job_id;
      obs::AmbientScope scope(tracer_, k);
      int idx = job.engine->deliver_fault(spec);
      job.fault_map[idx] = fault_id;
      fl.jobs_touched.push_back(job.ledger.job_id);
    }
    sim_->degrade_link(f.target_link, f.degrade_factor);
    if (f.heal_after >= 0.0) {
      push_event(sim_->now() + f.heal_after, EventKind::FaultHeal, fault_id);
    }
    export_blast();
    return;
  }

  // Hard network fault: the blast set is every link the failure takes
  // down (one port, or the whole switch). Membership is judged on
  // pre-fault paths — crosses_any must run before the links go dark.
  auto& topo = fabric_.topo();
  std::vector<topo::LinkId> candidates;
  if (f.switch_scope) {
    const auto& link = topo.link(f.target_link);
    topo::NodeId sw =
        topo.node(link.src).kind == topo::NodeKind::Host ? link.dst : link.src;
    for (topo::LinkId l : topo.out_links(sw)) candidates.push_back(l);
    for (topo::LinkId l : topo.in_links(sw)) candidates.push_back(l);
  } else {
    candidates.push_back(f.target_link);
  }
  std::vector<int> affected;
  for (JobRt& job : jobs_) {
    if (job.state != JobState::Running || !job.engine) continue;
    if (job.engine->crosses_any(candidates)) {
      affected.push_back(job.ledger.job_id);
    }
  }
  std::vector<topo::LinkId>& downed =
      fault_links_[static_cast<std::size_t>(fault_id)];
  for (topo::LinkId l : candidates) {
    if (topo.link(l).up) {
      sim_->set_link_up(l, false);
      downed.push_back(l);
    }
  }
  // ONE global in-flight failover for the shared fabric; each tenant's
  // ledger is credited with its own share of moved/stranded flows.
  auto rep = sim_->reroute_flows();
  for (int id : affected) {
    JobRt& job = jobs_[static_cast<std::size_t>(id)];
    int moved = 0;
    int stranded = 0;
    for (net::FlowId fid : rep.rerouted) {
      if (job.engine->owns_flow(fid)) ++moved;
    }
    for (net::FlowId fid : rep.stranded) {
      if (job.engine->owns_flow(fid)) ++stranded;
    }
    FaultSpec spec;
    spec.cause = f.cause;
    spec.manifestation = f.manifestation;
    spec.target_link = f.target_link;
    spec.switch_scope = f.switch_scope;
    spec.at_iteration = job.engine->current_iteration();
    if (f.heal_after >= 0.0) spec.repair_iterations = 1;
    obs::TraceKeys k;
    k.job = job.ledger.job_id;
    obs::AmbientScope scope(tracer_, k);
    int idx = job.engine->deliver_fault(spec);
    job.fault_map[idx] = fault_id;
    fl.jobs_touched.push_back(job.ledger.job_id);
    if (moved + stranded > 0) {
      job.engine->note_inflight_reroute(idx, moved, stranded == 0);
    }
  }
  for (net::FlowId fid : rep.stranded) sim_->abort_flow(fid);
  if (f.heal_after >= 0.0) {
    push_event(sim_->now() + f.heal_after, EventKind::FaultHeal, fault_id);
  }
  export_blast();
}

void FleetRuntime::heal_fleet_fault(int fault_id) {
  const FleetFault& f = faults_[static_cast<std::size_t>(fault_id)].fault;
  if (f.manifestation == Manifestation::FailSlow &&
      f.target_link != topo::kInvalidLink) {
    sim_->degrade_link(f.target_link, 1.0);
    return;
  }
  for (topo::LinkId l : fault_links_[static_cast<std::size_t>(fault_id)]) {
    sim_->set_link_up(l, true);
  }
  fault_links_[static_cast<std::size_t>(fault_id)].clear();
  try_admit();
}

void FleetRuntime::resume_engine(JobRt& job) {
  if (job.engine->at_boundary() && job.regrow_pending && try_regrow(job)) {
    return;
  }
  job.engine->resume();
  if (job.engine->done()) handle_engine_done(job);
}

FleetOutcome FleetRuntime::run() {
  assert(!ran_);
  ran_ = true;

  while (true) {
    JobRt* next = nullptr;
    for (JobRt& j : jobs_) {
      if (j.state != JobState::Running || !j.engine || j.engine->done()) {
        continue;
      }
      if (!next || j.engine->wake_time() < next->engine->wake_time()) {
        next = &j;
      }
    }
    Seconds wake = next ? next->engine->wake_time() : kNever;
    Event ev;
    // Events at or before the earliest engine wake run first; otherwise
    // the earliest engine advances the shared sim to its awaited time
    // (boundary-parked engines have wake == park time, so the sim never
    // outruns a parked iteration start).
    if (pop_next_event(wake, &ev)) {
      if (ev.t > cfg_.drain_deadline) break;
      sim_->run(ev.t);
      switch (ev.kind) {
        case EventKind::FaultHeal:
          heal_fleet_fault(ev.idx);
          break;
        case EventKind::CordonHeal:
          heal_cordon(ev.idx);
          break;
        case EventKind::FaultStrike:
          strike_fleet_fault(ev.idx);
          break;
        case EventKind::Arrival:
          try_admit();
          break;
        case EventKind::StartSegment: {
          JobRt& job = jobs_[static_cast<std::size_t>(ev.idx)];
          if (job.state == JobState::Starting) start_segment(job);
          break;
        }
      }
      continue;
    }
    if (!next) break;
    if (wake > cfg_.drain_deadline) break;
    resume_engine(*next);
  }

  // Drain: anything still alive is cut off at the deadline; anything
  // still queued never fit (or the fleet stopped first).
  for (JobRt& job : jobs_) {
    if (job.state == JobState::Done) continue;
    if (job.state == JobState::Running && job.engine && !job.engine->done()) {
      obs::TraceKeys k;
      k.job = job.ledger.job_id;
      {
        obs::AmbientScope scope(tracer_, k);
        job.engine->interrupt();
      }
      retire_segment(job, SegmentEnd::Deadline);
    }
    job.ledger.completed = false;
    job.ledger.finish = job.ledger.first_start >= 0.0 ? sim_->now() : -1.0;
    for (int h : job.host_idx) free_[static_cast<std::size_t>(h)] = 1;
    for (int h : job.reserved) free_[static_cast<std::size_t>(h)] = 1;
    job.reserved.clear();
    job.host_idx.clear();
    job.host_nodes.clear();
    job.state = JobState::Done;
  }

  FleetOutcome out;
  out.faults = faults_;
  double completed = 0.0;
  std::vector<double> delays;
  for (JobRt& job : jobs_) {
    out.jobs.push_back(job.ledger);
    if (job.ledger.completed) completed += 1.0;
    if (job.ledger.first_start >= 0.0) {
      delays.push_back(job.ledger.queue_delay);
      out.makespan = std::max(out.makespan, job.ledger.finish);
    }
    for (const SegmentRecord& seg : job.ledger.segments) {
      out.allocated_host_hours +=
          host_hours(seg.end_time - seg.start_time, seg.hosts);
      out.useful_host_hours += host_hours(seg.outcome.useful_time, seg.hosts);
    }
    out.preemption_cost += job.ledger.preempted_cost;
  }
  if (out.allocated_host_hours > 0.0) {
    out.fleet_goodput = out.useful_host_hours / out.allocated_host_hours;
  }
  if (!delays.empty()) {
    double sum = 0.0;
    for (double d : delays) sum += d;
    out.queue_delay_mean = sum / static_cast<double>(delays.size());
    std::sort(delays.begin(), delays.end());
    out.queue_delay_p50 = core::percentile(delays, 50.0);
    out.queue_delay_p99 = core::percentile(delays, 99.0);
  }
  if (out.makespan > 0.0) {
    out.jobs_per_hour = completed / (out.makespan / 3600.0);
  }
  if (!jobs_.empty()) {
    out.completion_rate = completed / static_cast<double>(jobs_.size());
  }
  // Final blast-radius ledger export: totals as gauges next to the
  // per-strike counters, so dashboards see jobs touched AND host-hours
  // lost without reading FleetOutcome.
  if (metrics_) {
    double hours = 0.0;
    std::size_t touched = 0;
    for (const FleetFaultLedger& fl : faults_) {
      hours += fl.host_hours_lost;
      touched += fl.jobs_touched.size();
    }
    metrics_->set_gauge("fleet.blast.host_hours_lost", hours);
    metrics_->set_gauge("fleet.blast.jobs_touched_total",
                        static_cast<double>(touched));
    metrics_->set_gauge("fleet.blast.faults", static_cast<double>(faults_.size()));
  }
  return out;
}

}  // namespace astral::monitor
