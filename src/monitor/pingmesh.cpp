#include "monitor/pingmesh.h"

#include <algorithm>

namespace astral::monitor {

IntPingmesh::IntPingmesh(net::FluidSim& sim, std::span<const topo::NodeId> hosts,
                         Config cfg)
    : sim_(sim), hosts_(hosts.begin(), hosts.end()), cfg_(cfg) {
  latency_.assign(hosts_.size(), std::vector<core::Seconds>(hosts_.size(), -1.0));
}

int IntPingmesh::sweep(TelemetryStore& store) {
  hotspots_.clear();
  const int n = static_cast<int>(hosts_.size());
  if (n < 2) return 0;
  int probes = 0;
  // Strided peer choice rotates with the sweep counter so consecutive
  // sweeps jointly cover every pair.
  for (int i = 0; i < n; ++i) {
    for (int k = 1; k <= cfg_.fanout; ++k) {
      int j = (i + k + sweep_count_ * cfg_.fanout) % n;
      if (j == i) continue;
      net::FlowSpec spec;
      spec.src_host = hosts_[static_cast<std::size_t>(i)];
      spec.dst_host = hosts_[static_cast<std::size_t>(j)];
      spec.src_rail = 0;
      spec.dst_rail = 0;
      spec.tag = 0x9A6E5Dull + static_cast<std::uint64_t>(i) * 131 +
                 static_cast<std::uint64_t>(k);
      auto path = sim_.predict_path(spec);
      if (!path) {
        latency_[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = -1.0;
        continue;
      }
      IntProbeResult probe;
      probe.t = sim_.now();
      probe.path = *path;
      core::Seconds total = 0.0;
      for (topo::LinkId l : *path) {
        core::Seconds hop = sim_.hop_latency(l);
        probe.hop_latency.push_back(hop);
        total += hop;
        if (hop > cfg_.hotspot_threshold) hotspots_.push_back({l, hop});
      }
      latency_[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = total;
      store.record(std::move(probe));
      ++probes;
    }
  }
  ++sweep_count_;
  // Dedup hotspots, keep worst per link, order worst-first.
  std::sort(hotspots_.begin(), hotspots_.end(), [](const Hotspot& a, const Hotspot& b) {
    if (a.link != b.link) return a.link < b.link;
    return a.latency > b.latency;
  });
  hotspots_.erase(std::unique(hotspots_.begin(), hotspots_.end(),
                              [](const Hotspot& a, const Hotspot& b) {
                                return a.link == b.link;
                              }),
                  hotspots_.end());
  std::sort(hotspots_.begin(), hotspots_.end(),
            [](const Hotspot& a, const Hotspot& b) { return a.latency > b.latency; });
  return probes;
}

std::vector<topo::LinkId> infer_path_from_probes(const TelemetryStore& store,
                                                 const QpMeta& meta,
                                                 const topo::Topology& topo) {
  if (meta.src_host == topo::kInvalidNode) return {};
  const std::vector<topo::LinkId>* best = nullptr;
  bool best_reaches_dst = false;
  core::Seconds best_t = 0.0;
  for (const IntProbeResult& probe : store.int_probes()) {
    if (probe.path.empty()) continue;
    if (topo.link(probe.path.front()).src != meta.src_host) continue;
    bool reaches_dst = meta.dst_host != topo::kInvalidNode &&
                       topo.link(probe.path.back()).dst == meta.dst_host;
    bool better = best == nullptr ||
                  (reaches_dst && !best_reaches_dst) ||
                  (reaches_dst == best_reaches_dst && probe.t > best_t);
    if (better) {
      best = &probe.path;
      best_reaches_dst = reaches_dst;
      best_t = probe.t;
    }
  }
  // A probe that only shares the source host still pins the first hops
  // (NIC uplink, ToR) — the hops host-adjacent failures live on.
  return best ? *best : std::vector<topo::LinkId>{};
}

core::Seconds IntPingmesh::pair_latency(int src_index, int dst_index) const {
  if (src_index < 0 || dst_index < 0 ||
      static_cast<std::size_t>(src_index) >= latency_.size() ||
      static_cast<std::size_t>(dst_index) >= latency_.size()) {
    return -1.0;
  }
  return latency_[static_cast<std::size_t>(src_index)][static_cast<std::size_t>(dst_index)];
}

}  // namespace astral::monitor
