#include "monitor/job_engine.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "monitor/analyzer.h"
#include "monitor/degrade.h"
#include "monitor/stream_analyzer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace astral::monitor {

using core::Seconds;

const char* to_string(MitigationAction a) {
  switch (a) {
    case MitigationAction::None: return "none";
    case MitigationAction::RetryBackoff: return "retry-backoff";
    case MitigationAction::Reroute: return "reroute";
    case MitigationAction::Derate: return "derate";
    case MitigationAction::IsolateRestart: return "isolate-restart";
    case MitigationAction::Abort: return "abort";
  }
  return "?";
}

std::optional<std::string> validate_recovery(const RecoveryConfig& rc) {
  std::vector<std::string> problems;
  auto bad = [&](std::string msg) {
    problems.push_back("[" + std::to_string(problems.size()) + "] " + std::move(msg));
  };
  if (rc.checkpoint_interval <= 0) {
    bad("checkpoint_interval must be > 0 (got " +
        std::to_string(rc.checkpoint_interval) + ")");
  }
  if (rc.max_restarts < 0) {
    bad("max_restarts must be >= 0 (got " + std::to_string(rc.max_restarts) + ")");
  }
  if (rc.max_retries < 0) {
    bad("max_retries must be >= 0 (got " + std::to_string(rc.max_retries) + ")");
  }
  if (rc.detect_time < 0.0) {
    bad("detect_time must be >= 0 (got " + std::to_string(rc.detect_time) + ")");
  }
  if (rc.restart_time < 0.0) {
    bad("restart_time must be >= 0 (got " + std::to_string(rc.restart_time) + ")");
  }
  if (rc.backoff_base < 0.0) {
    bad("backoff_base must be >= 0 (got " + std::to_string(rc.backoff_base) + ")");
  }
  if (rc.backoff_factor < 0.0) {
    bad("backoff_factor must be >= 0 (got " + std::to_string(rc.backoff_factor) + ")");
  }
  if (rc.backoff_jitter < 0.0 || rc.backoff_jitter >= 1.0) {
    bad("backoff_jitter must lie in [0, 1) (got " +
        std::to_string(rc.backoff_jitter) + ")");
  }
  if (problems.empty()) return std::nullopt;
  std::string joined;
  for (std::size_t i = 0; i < problems.size(); ++i) {
    if (i) joined += "; ";
    joined += problems[i];
  }
  return joined;
}

void JobEngine::RunTask::promise_type::unhandled_exception() {
  engine->pending_exception_ = std::current_exception();
}

JobEngine::JobEngine(topo::Fabric& fabric, net::FluidSim& sim, JobConfig cfg,
                     std::uint64_t seed, std::vector<topo::NodeId> hosts,
                     bool fleet_mode, int start_iteration)
    : fabric_(fabric),
      sim_(&sim),
      cfg_(std::move(cfg)),
      rng_(seed),
      jitter_rng_(seed ^ 0x6a09e667f3bcc909ull),
      hosts_(std::move(hosts)),
      fleet_(fleet_mode),
      start_iteration_(start_iteration) {
  if (cfg_.recovery.enabled) {
    if (auto err = validate_recovery(cfg_.recovery)) {
      throw std::invalid_argument("JobEngine: invalid RecoveryConfig: " + *err);
    }
  }
  assert(cfg_.hosts >= 2);
  assert(static_cast<int>(hosts_.size()) == cfg_.hosts);
  assert(start_iteration_ >= 0 && start_iteration_ < cfg_.iterations);
  assert(cfg_.recovery.checkpoint_interval <= 0 ||
         start_iteration_ % cfg_.recovery.checkpoint_interval == 0);
  host_configs_.assign(static_cast<std::size_t>(cfg_.hosts), HostConfig{});
  host_slow_.assign(static_cast<std::size_t>(cfg_.hosts), 1.0);
  if (cfg_.gray.mode == GrayRoutingConfig::Mode::Wcmp) {
    net::WcmpConfig wc = cfg_.gray.wcmp;
    wc.damping = cfg_.gray.flap_damping;
    wcmp_ = std::make_unique<net::WcmpController>(*sim_, wc);
    ring_ports_.assign(static_cast<std::size_t>(cfg_.hosts), 0);
  }
  iter_useful_.assign(static_cast<std::size_t>(cfg_.iterations), 0.0);
  hang_deadline_ = expected_comm() * cfg_.hang_timeout_factor;
  healthy_iter_ = cfg_.compute_time + expected_comm();
  start_time_ = sim_->now();
  now_ = start_time_;
  iter_ = start_iteration_;
  iter_start_ = now_;

  // Register the job's ring QPs (host i -> host i+1 on rail 0) with their
  // transport 5-tuples — the cross-layer key chain of §3.2. A fleet
  // segment re-registers over its (possibly shrunk) host set: this is
  // where the collective group is recomputed after an elastic transition.
  for (int i = 0; i < cfg_.hosts; ++i) {
    int j = (i + 1) % cfg_.hosts;
    net::FlowSpec spec = ring_spec(i);
    QpMeta meta;
    meta.qp = static_cast<QpId>(i);
    meta.src_host_rank = i;
    meta.dst_host_rank = j;
    meta.src_host = spec.src_host;
    meta.dst_host = spec.dst_host;
    meta.tuple.src_ip = spec.src_host;
    meta.tuple.dst_ip = spec.dst_host;
    store_.register_qp(meta);
  }
}

JobEngine::~JobEngine() {
  if (stream_) stream_->unsubscribe(store_);
  if (handle_) handle_.destroy();
}

void JobEngine::set_stream_analyzer(StreamAnalyzer* stream) {
  if (stream_ == stream) return;
  if (stream_) stream_->unsubscribe(store_);
  stream_ = stream;
  if (!stream_) return;
  StreamAnalyzer::JobContext ctx;
  ctx.job_id = cfg_.job_id;
  ctx.expected_compute = expected_compute();
  ctx.expected_comm = expected_comm();
  ctx.host_pods.reserve(hosts_.size());
  for (topo::NodeId h : hosts_) ctx.host_pods.push_back(fabric_.topo().node(h).pod);
  stream_->subscribe(store_, std::move(ctx));
}

net::FlowSpec JobEngine::ring_spec(int rank) const {
  net::FlowSpec spec;
  spec.src_host = hosts_[static_cast<std::size_t>(rank)];
  spec.dst_host = hosts_[static_cast<std::size_t>((rank + 1) % cfg_.hosts)];
  spec.src_rail = 0;
  spec.dst_rail = 0;
  spec.tag = static_cast<std::uint64_t>(rank);
  // WCMP derate pushes steer ranks off degraded links by overriding the
  // deterministic default source port (0 = untouched legacy spread).
  if (!ring_ports_.empty() && ring_ports_[static_cast<std::size_t>(rank)] != 0) {
    spec.src_port = ring_ports_[static_cast<std::size_t>(rank)];
  }
  return spec;
}

Seconds JobEngine::expected_comm() const {
  // One ring flow per NIC port at line rate.
  return core::transfer_time(cfg_.comm_bytes, core::gbps(200.0));
}

void JobEngine::inject(const FaultSpec& fault) {
  if (auto err = validate_fault(fault, cfg_.hosts, fabric_.topo().link_count())) {
    throw std::invalid_argument("ClusterRuntime::inject: " + *err);
  }
  if (auto err = validate_gray(fault, cfg_.hosts, fabric_.topo().link_count())) {
    throw std::invalid_argument("ClusterRuntime::inject: " + *err);
  }
  FaultRt fr;
  fr.spec = fault;
  fr.index = static_cast<int>(faults_.size());
  faults_.push_back(std::move(fr));
}

void JobEngine::inject(const FaultSchedule& schedule) {
  // Gray windows toggle link capacity, so two faults owning one element
  // would make restoration ambiguous; crisp-only schedules keep the
  // permissive legacy validation (cascades on one element are a feature).
  if (has_gray(schedule)) {
    if (auto err =
            validate_schedule(schedule, cfg_.hosts, fabric_.topo().link_count())) {
      throw std::invalid_argument("JobEngine::inject: " + *err);
    }
  }
  for (const FaultSpec& f : schedule.faults) inject(f);
}

topo::LinkId JobEngine::pick_job_path_link(int hops_from_src) const {
  // A link actually on a job QP's path, so the fault is visible. Prefer a
  // cross-block ring edge: its 4-hop path exposes the Agg tier (the
  // Fig. 9 case congests an Agg->ToR downlink).
  int src_rank = 0;
  const auto& topo = fabric_.topo();
  for (int i = 0; i + 1 < cfg_.hosts; ++i) {
    if (topo.node(hosts_[static_cast<std::size_t>(i)]).block !=
        topo.node(hosts_[static_cast<std::size_t>(i + 1)]).block) {
      src_rank = i;
      break;
    }
  }
  net::FlowSpec spec;
  spec.src_host = hosts_[static_cast<std::size_t>(src_rank)];
  spec.dst_host = hosts_[static_cast<std::size_t>(src_rank + 1)];
  spec.src_rail = 0;
  spec.dst_rail = 0;
  spec.tag = static_cast<std::uint64_t>(src_rank);
  auto path = sim_->predict_path(spec);
  if (!path || path->empty()) return topo::kInvalidLink;
  std::size_t idx = std::min<std::size_t>(static_cast<std::size_t>(hops_from_src),
                                          path->size() - 1);
  return (*path)[idx];
}

FaultSpec JobEngine::make_fault(RootCause cause, Manifestation m, int at_iteration) {
  FaultSpec f;
  f.cause = cause;
  f.manifestation = m;
  f.at_iteration = at_iteration;
  if (is_host_side(cause)) {
    f.target_host_rank = static_cast<int>(rng_.uniform_int(
        static_cast<std::uint64_t>(cfg_.hosts)));
    if (cause == RootCause::PcieDegrade) {
      // The PCIe bottleneck surfaces at the receiving NIC: the culprit is
      // the ToR -> host downlink of the affected host.
      net::FlowSpec spec;
      int prev = (f.target_host_rank + cfg_.hosts - 1) % cfg_.hosts;
      spec.src_host = hosts_[static_cast<std::size_t>(prev)];
      spec.dst_host = hosts_[static_cast<std::size_t>(f.target_host_rank)];
      spec.src_rail = 0;
      spec.dst_rail = 0;
      spec.tag = static_cast<std::uint64_t>(prev);
      if (auto path = sim_->predict_path(spec); path && !path->empty()) {
        f.target_link = path->back();
      }
    }
  } else {
    // Network-side: the NIC uplink (hop 0) for NIC errors, otherwise the
    // Agg->ToR downlink (hop 2 of a 4-hop same-rail path) — the hop the
    // paper's Fig. 9 case study congests.
    int hop = cause == RootCause::NicError ? 0 : 2;
    f.target_link = pick_job_path_link(hop);
  }
  // A link flap is the taxonomy's transient: it self-heals after one
  // iteration (legacy behaviour, now expressed through repair_iterations).
  if (cause == RootCause::LinkFlap) f.repair_iterations = 1;
  switch (m) {
    case Manifestation::FailSlow: f.degrade_factor = 0.2; break;
    case Manifestation::FailHang: f.degrade_factor = 0.0; break;
    default: break;
  }
  return f;
}

FaultSpec JobEngine::make_gray_fault(GrayKind kind, int at_iteration,
                                     int hops_from_src) {
  FaultSpec f;
  f.gray = kind;
  f.manifestation = Manifestation::FailSlow;
  f.at_iteration = at_iteration;
  switch (kind) {
    case GrayKind::FlappingLink:
      f.cause = RootCause::LinkFlap;
      f.target_link = pick_job_path_link(hops_from_src);
      f.degrade_factor = 0.2;
      f.repair_iterations = -1;  // flaps until the run ends
      break;
    case GrayKind::PartialDegrade:
      f.cause = RootCause::OpticalFiber;
      f.target_link = pick_job_path_link(hops_from_src);
      f.degrade_factor = 0.5;
      break;
    case GrayKind::SlowNic: {
      f.cause = RootCause::NicError;
      f.target_host_rank = static_cast<int>(
          rng_.uniform_int(static_cast<std::uint64_t>(cfg_.hosts)));
      f.degrade_factor = 0.5;
      // The telemetry anchor: the straggler's rail-0 uplink (activation
      // degrades every side's uplink).
      f.target_link = fabric_.topo().host_uplink(
          hosts_[static_cast<std::size_t>(f.target_host_rank)], 0, 0);
      break;
    }
    case GrayKind::None: break;
  }
  return f;
}

FaultSpec JobEngine::make_mid_transfer_tor_death(int at_iteration, double fraction) {
  // The whole ToR over the job's rail-0 uplink dies with flows in flight:
  // the switch_scope takes every port of the switch down, and the
  // mid-transfer strike exercises the dual-ToR in-flight failover.
  FaultSpec f;
  f.cause = RootCause::SwitchBug;
  f.manifestation = Manifestation::FailStop;
  f.at_iteration = at_iteration;
  f.target_link = pick_job_path_link(0);  // host -> ToR uplink
  f.switch_scope = true;
  f.mid_transfer_fraction = fraction;
  return f;
}

void JobEngine::emit_injection_syslog(const FaultSpec& f, Seconds t) {
  auto host_node = [&](int rank) { return hosts_[static_cast<std::size_t>(rank)]; };
  auto switch_of_link = [&](topo::LinkId l) { return fabric_.topo().link(l).src; };
  switch (f.cause) {
    case RootCause::HostEnvConfig:
      ingest(SyslogEvent{t, host_node(f.target_host_rank), f.target_host_rank,
                                "fatal", "nccl init failed: peer env/config mismatch"});
      host_configs_[static_cast<std::size_t>(f.target_host_rank)].nccl_version = "2.19.3";
      break;
    case RootCause::GpuHardware:
      ingest(SyslogEvent{t, host_node(f.target_host_rank), f.target_host_rank,
                                "fatal", "NVRM: Xid 79: GPU has fallen off the bus"});
      break;
    case RootCause::Memory:
      ingest(SyslogEvent{t, host_node(f.target_host_rank), f.target_host_rank,
                                "fatal", "EDAC MC0: UCE ECC error on DIMM"});
      break;
    case RootCause::UserCode:
      // A python exception surfaces on every rank — no hardware log.
      for (int i = 0; i < cfg_.hosts; ++i) {
        ingest(SyslogEvent{t, host_node(i), i, "error",
                                  "trainer: RuntimeError in user forward()"});
      }
      break;
    case RootCause::CclBug:
      // Silent: the collective just never completes.
      break;
    case RootCause::PcieDegrade:
      if (cfg_.pcie_monitoring) {
        ingest(SyslogEvent{t, host_node(f.target_host_rank), f.target_host_rank,
                                  "warn", "PCIe: link width degraded to x4"});
      }
      break;
    case RootCause::NicError:
      if (f.target_link != topo::kInvalidLink) {
        const auto& link = fabric_.topo().link(f.target_link);
        int rank = 0;
        for (int i = 0; i < cfg_.hosts; ++i) {
          if (hosts_[static_cast<std::size_t>(i)] == link.src) rank = i;
        }
        ingest(SyslogEvent{t, link.src, rank, "error",
                                  "mlx5: CQE error syndrome 0x04 (retry exceeded)"});
      }
      break;
    case RootCause::SwitchConfig:
      ingest(SyslogEvent{t, switch_of_link(f.target_link), -1, "warn",
                                "qos: ecn threshold misconfigured on egress queue"});
      break;
    case RootCause::SwitchBug:
      // Silent blackhole; only MOD drop counters betray it.
      break;
    case RootCause::OpticalFiber:
      ingest(SyslogEvent{t, switch_of_link(f.target_link), -1, "warn",
                                "transceiver: rx optical power below threshold"});
      break;
    case RootCause::WireConnection:
      ingest(SyslogEvent{t, switch_of_link(f.target_link), -1, "warn",
                                "lldp: neighbor mismatch with cabling plan"});
      break;
    case RootCause::LinkFlap:
      ingest(SyslogEvent{t, switch_of_link(f.target_link), -1, "warn",
                                "port: link down"});
      ingest(SyslogEvent{t + 0.5, switch_of_link(f.target_link), -1, "warn",
                                "port: link up"});
      break;
  }
}

void JobEngine::apply_network_fault(const FaultSpec& f) {
  if (f.target_link == topo::kInvalidLink) return;
  double factor = 1.0;
  switch (f.manifestation) {
    case Manifestation::FailSlow: factor = f.degrade_factor; break;
    case Manifestation::FailHang: factor = 0.0; break;
    case Manifestation::FailStop: factor = 0.0; break;  // + errCQE below
    case Manifestation::FailOnStart: factor = 0.0; break;
  }
  sim_->degrade_link(f.target_link, factor);
}

void JobEngine::fail_links(const FaultSpec& f) {
  if (f.target_link == topo::kInvalidLink) return;
  auto& topo = fabric_.topo();
  auto down = [&](topo::LinkId l) {
    if (topo.link(l).up) {
      sim_->set_link_up(l, false);
      downed_links_.push_back(l);
    }
  };
  if (f.switch_scope) {
    // The whole switch at the link's fabric end goes dark: every port.
    const auto& link = topo.link(f.target_link);
    topo::NodeId sw =
        topo.node(link.src).kind == topo::NodeKind::Host ? link.dst : link.src;
    for (topo::LinkId l : topo.out_links(sw)) down(l);
    for (topo::LinkId l : topo.in_links(sw)) down(l);
  } else {
    down(f.target_link);
  }
}

// Seeds a gray fault's degraded-link set and applies the initial
// degradation. Silent by design: no syslog, no errCQE — gray faults are
// visible only through their effect on rates and counters.
void JobEngine::activate_gray(FaultRt& fr) {
  const FaultSpec& f = fr.spec;
  fr.gray_links.clear();
  if (f.gray == GrayKind::SlowNic) {
    topo::NodeId host = hosts_[static_cast<std::size_t>(f.target_host_rank)];
    for (int side = 0; side < fabric_.topo().sides(); ++side) {
      topo::LinkId l = fabric_.topo().host_uplink(host, 0, side);
      if (l != topo::kInvalidLink) fr.gray_links.push_back(l);
    }
  } else if (f.target_link != topo::kInvalidLink) {
    fr.gray_links.push_back(f.target_link);
  }
  fr.gray_down_phase = true;  // flapping starts in its degraded phase
  for (topo::LinkId l : fr.gray_links) sim_->degrade_link(l, f.degrade_factor);
}

// FlappingLink duty cycle, driven off committed active iterations so the
// phase pattern is deterministic: `flap_down_iters` degraded, then
// `flap_up_iters` healthy, repeating. Runs at iteration boundaries.
void JobEngine::tick_gray_phases() {
  for (FaultRt& fr : faults_) {
    if (!fr.applied || fr.healed || fr.spec.gray != GrayKind::FlappingLink) continue;
    int cycle = fr.spec.flap_down_iters + fr.spec.flap_up_iters;
    bool down = fr.active_iters % cycle < fr.spec.flap_down_iters;
    if (down != fr.gray_down_phase) {
      fr.gray_down_phase = down;
      for (topo::LinkId l : fr.gray_links) {
        sim_->degrade_link(l, down ? fr.spec.degrade_factor : 1.0);
      }
    }
  }
}

std::vector<std::pair<topo::LinkId, double>> JobEngine::gray_observations()
    const {
  std::vector<topo::LinkId> watch;
  auto add = [&](topo::LinkId l) {
    if (l == topo::kInvalidLink) return;
    if (std::find(watch.begin(), watch.end(), l) == watch.end()) watch.push_back(l);
  };
  for (net::FlowId fid : flows_) {
    const auto& st = sim_->flow(fid);
    if (!st.admitted) continue;
    for (topo::LinkId l : st.path) add(l);
  }
  for (const FaultRt& fr : faults_) {
    if (!fr.applied || fr.healed) continue;
    for (topo::LinkId l : fr.gray_links) add(l);
  }
  // Cordoned links stay under observation so recovery is noticed.
  for (topo::LinkId l : gray_cordoned_) add(l);
  std::vector<std::pair<topo::LinkId, double>> out;
  out.reserve(watch.size());
  for (topo::LinkId l : watch) {
    double nominal = static_cast<double>(fabric_.topo().link(l).capacity);
    double frac =
        nominal > 0.0 ? sim_->effective_capacity(l) / nominal : 1.0;
    out.emplace_back(l, frac);
  }
  return out;
}

int JobEngine::gray_fault_index_for(topo::LinkId link) const {
  for (const FaultRt& fr : faults_) {
    if (!fr.applied) continue;
    for (topo::LinkId l : fr.gray_links) {
      if (l == link) return fr.index;
    }
  }
  for (const FaultRt& fr : faults_) {
    if (fr.applied && fr.spec.target_link == link) return fr.index;
  }
  for (const FaultRt& fr : faults_) {
    if (fr.applied && fr.spec.gray != GrayKind::None) return fr.index;
  }
  return -1;
}

void JobEngine::heal_fault(FaultRt& fr) {
  const FaultSpec& f = fr.spec;
  if (f.gray != GrayKind::None) {
    for (topo::LinkId l : fr.gray_links) sim_->degrade_link(l, 1.0);
    fr.healed = true;
    return;
  }
  if (is_host_side(f.cause)) {
    host_slow_[static_cast<std::size_t>(f.target_host_rank)] = 1.0;
    host_configs_[static_cast<std::size_t>(f.target_host_rank)] = HostConfig{};
    if (f.target_link != topo::kInvalidLink) sim_->degrade_link(f.target_link, 1.0);
  } else if (f.target_link != topo::kInvalidLink) {
    sim_->degrade_link(f.target_link, 1.0);
  }
  fr.healed = true;
}

Seconds JobEngine::analyzer_locate_time() const {
  HierarchicalAnalyzer analyzer(store_, fabric_.topo(), expected_compute(),
                                expected_comm());
  return analyzer.diagnose().locate_time;
}

template <typename T>
void JobEngine::ingest(T rec) {
  if (degrade_) {
    degrade_->record(std::move(rec), store_);
  } else {
    store_.record(std::move(rec));
  }
}

void JobEngine::flush_telemetry() {
  if (degrade_) degrade_->flush(store_);
}

void JobEngine::restore_downed_links() {
  auto& topo = fabric_.topo();
  for (topo::LinkId l : downed_links_) topo.set_link_state(l, true);
  downed_links_.clear();
}

void JobEngine::finalize_outcome() {
  out_.makespan = std::max(now_, sim_->now()) - start_time_;
  out_.committed_iterations = iter_;
  out_.oscillations =
      gray_binary_osc_ +
      (wcmp_ ? static_cast<int>(wcmp_->oscillations()) : 0);
  out_.goodput = 0.0;
  if (out_.makespan > 0.0) {
    out_.goodput =
        std::min(1.0, static_cast<double>(iter_) * healthy_iter_ / out_.makespan);
  }
}

// Fault-track events share the fault's schedule index as their key.
void JobEngine::trace_injection(const FaultRt& fr, Seconds t) {
  if (metrics_) metrics_->add("runtime.faults.injected");
  if (!tracer_) return;
  obs::TraceKeys k;
  k.fault = fr.index;
  if (fr.spec.target_link != topo::kInvalidLink) k.link = fr.spec.target_link;
  tracer_->instant(obs::Track::Fault, "fault.injected", t, k,
                   to_string(fr.spec.cause));
}

// The MTTR phase breakdown as Fault-track spans, with instants marking
// the paper's detect -> locate -> mitigate pipeline stages.
void JobEngine::trace_mitigation(const MitigationRecord& rec, Seconds t0) {
  if (metrics_) {
    metrics_->add("runtime.mitigations");
    metrics_->histogram("runtime.mttr_s").record(rec.mttr());
  }
  if (stream_) {
    // Attribute the repair to the pod the fault lives in (the stricken
    // link's pod, or the culprit host's).
    const FaultSpec& fs = fault_spec(rec.fault_index);
    int pod = 0;
    if (fs.target_link != topo::kInvalidLink) {
      pod = link_pod(fabric_.topo(), fs.target_link);
    } else if (fs.target_host_rank >= 0 &&
               fs.target_host_rank < static_cast<int>(hosts_.size())) {
      pod = fabric_.topo().node(hosts_[static_cast<std::size_t>(fs.target_host_rank)]).pod;
    }
    stream_->note_mitigation(cfg_.job_id, rec.mttr(), pod);
  }
  if (!tracer_) return;
  obs::TraceKeys k;
  k.fault = rec.fault_index;
  tracer_->span(obs::Track::Fault, "mttr.detect", t0, rec.detect_time, k);
  tracer_->instant(obs::Track::Fault, "fault.detected", t0 + rec.detect_time, k);
  tracer_->span(obs::Track::Fault, "mttr.locate", t0 + rec.detect_time,
                rec.locate_time, k);
  tracer_->instant(obs::Track::Fault, "fault.located",
                   t0 + rec.detect_time + rec.locate_time, k);
  tracer_->span(obs::Track::Fault, "mttr.recover",
                t0 + rec.detect_time + rec.locate_time, rec.recover_time, k, 0.0,
                to_string(rec.action));
  tracer_->instant(obs::Track::Fault, "fault.mitigated", t0 + rec.mttr(), k,
                   to_string(rec.action));
}

// Picks the fault a failure is attributed to: the most recently
// activated unresolved fault, falling back to the last activated one
// (residual damage of an already-mitigated fault).
JobEngine::FaultRt* JobEngine::responsible() {
  // Gray faults never cause the hard failures this attributes (they only
  // shift capacity), so they are skipped: blaming a flapping link for an
  // unrelated hang would steer the crisp ladder at the wrong element.
  FaultRt* best = nullptr;
  for (FaultRt& fr : faults_) {
    if (fr.spec.gray != GrayKind::None) continue;
    if (fr.applied && !fr.resolved()) best = &fr;
  }
  if (best) return best;
  for (FaultRt& fr : faults_) {
    if (fr.spec.gray != GrayKind::None) continue;
    if (fr.applied) best = &fr;
  }
  return best;
}

// Runs the mitigation state machine after the analyzer has had its look
// at the telemetry, up to (not including) the MTTR wall-clock stall;
// the coroutine awaits pending_rec_.mttr() and calls finish_mitigation().
// Returns false when the job must abort (budget exhausted / recovery
// disabled).
bool JobEngine::begin_mitigation(FaultRt* fr, Manifestation observed,
                                 Seconds attempt_wall) {
  const RecoveryConfig& rc = cfg_.recovery;
  out_.wasted_time += attempt_wall;
  if (!rc.enabled || fr == nullptr) return false;
  MitigationRecord rec;
  rec.fault_index = fr->index;
  rec.at_iteration = iter_;
  rec.observed = observed;
  rec.detect_time = rc.detect_time;
  rec.locate_time = analyzer_locate_time();
  MitigationAction action;
  if (fr->resolved()) {
    // Residual damage from an already-handled fault: just retry.
    action = MitigationAction::RetryBackoff;
  } else if (is_host_side(fr->spec.cause) ||
             fr->spec.gray == GrayKind::SlowNic) {
    // SlowNic is host-scoped despite its network-side cause: the ladder
    // escalation from Derate cordons the straggler host itself.
    action = MitigationAction::IsolateRestart;
  } else if (fr->spec.repair_iterations >= 0) {
    action = MitigationAction::RetryBackoff;
  } else {
    action = MitigationAction::Reroute;
  }
  if (action == MitigationAction::IsolateRestart && out_.restarts >= rc.max_restarts) {
    action = MitigationAction::Abort;
  }
  if (action == MitigationAction::RetryBackoff && fr->retries >= rc.max_retries) {
    action = MitigationAction::Abort;
  }
  rec.action = action;
  if (action == MitigationAction::Abort) {
    rec.succeeded = false;
    out_.mitigations.push_back(rec);
    if (metrics_) metrics_->add("runtime.mitigation_aborts");
    if (tracer_) {
      obs::TraceKeys k;
      k.fault = rec.fault_index;
      tracer_->instant(obs::Track::Fault, "mitigation.abort", sim_->now(), k,
                       to_string(rec.observed));
    }
    return false;
  }
  switch (action) {
    case MitigationAction::RetryBackoff:
      rec.recover_time = rc.backoff_base *
                         std::pow(rc.backoff_factor, static_cast<double>(fr->retries));
      // Opt-in seeded jitter decorrelates tenants retrying after one
      // shared fault; at 0 no draw happens and the wait is unchanged.
      if (rc.backoff_jitter > 0.0) {
        rec.recover_time *=
            1.0 + rc.backoff_jitter * (2.0 * jitter_rng_.uniform() - 1.0);
      }
      ++fr->retries;
      ++out_.retries;
      // Waiting out a transient counts as an attempt toward self-heal.
      if (!fr->healed && fr->spec.repair_iterations >= 0) {
        ++fr->active_iters;
        if (fr->active_iters >= fr->spec.repair_iterations) heal_fault(*fr);
      }
      break;
    case MitigationAction::Reroute:
      // Cordon the dead link/switch so routing (and the next attempt's
      // fresh flows) steers around it.
      fail_links(fr->spec);
      sim_->reroute_flows();
      fr->mitigated = true;
      break;
    case MitigationAction::IsolateRestart: {
      heal_fault(*fr);
      fr->mitigated = true;
      rec.recover_time = rc.restart_time;
      ++out_.restarts;
      int cp = rc.checkpoint_interval > 0
                   ? (iter_ / rc.checkpoint_interval) * rc.checkpoint_interval
                   : iter_;
      // Committed-but-uncheckpointed iterations are replayed: their
      // time moves from useful to wasted.
      for (int k = cp; k < iter_; ++k) {
        out_.wasted_time += iter_useful_[static_cast<std::size_t>(k)];
        out_.useful_time -= iter_useful_[static_cast<std::size_t>(k)];
        iter_useful_[static_cast<std::size_t>(k)] = 0.0;
      }
      iter_ = cp;
      break;
    }
    default: break;
  }
  rec.succeeded = true;
  // Tear down whatever the failed attempt left in the fabric, then let
  // the wall clock absorb the outage (detect + locate + recover).
  for (net::FlowId fid : flows_) {
    const auto& st = sim_->flow(fid);
    if (st.admitted && st.finish < 0 && !st.aborted) sim_->abort_flow(fid);
  }
  trace_mitigation(rec, sim_->now());
  pending_rec_ = rec;
  return true;
}

void JobEngine::finish_mitigation() {
  out_.downtime += pending_rec_.mttr();
  out_.mitigations.push_back(pending_rec_);
  now_ = sim_->now();
  sim_->recycle_finished();
}

void JobEngine::strike_fault(FaultRt& fr) {
  const RecoveryConfig& rc = cfg_.recovery;
  const FaultSpec& f = fr.spec;
  emit_injection_syslog(f, sim_->now());
  trace_injection(fr, sim_->now());
  fr.applied = true;
  fr.applied_at = sim_->now();
  if (is_host_side(f.cause)) {
    if (f.manifestation == Manifestation::FailStop) {
      // The host dies with flows in flight: its QPs abort and the
      // peers see remote errors.
      topo::NodeId dead = hosts_[static_cast<std::size_t>(f.target_host_rank)];
      for (int i = 0; i < cfg_.hosts; ++i) {
        const auto& st = sim_->flow(flows_[static_cast<std::size_t>(i)]);
        if (!st.admitted || st.finish >= 0 || st.aborted) continue;
        if (st.spec.src_host == dead || st.spec.dst_host == dead) {
          sim_->abort_flow(flows_[static_cast<std::size_t>(i)]);
          ingest(ErrCqeEvent{sim_->now(), static_cast<QpId>(i), i,
                                    "remote operation error / peer died"});
        }
      }
    } else {
      host_slow_[static_cast<std::size_t>(f.target_host_rank)] = 3.0;
    }
    return;
  }
  // Network fault in flight: degrade for fail-slow, dead otherwise.
  if (f.manifestation == Manifestation::FailSlow) {
    sim_->degrade_link(f.target_link, f.degrade_factor);
    return;
  }
  fail_links(f);
  if (rc.enabled) {
    // In-flight failover (P3): migrate live flows onto the surviving
    // dual-ToR side. The job never stops, so MTTR is the transport's
    // sub-second failover — modeled as zero against minutes-scale
    // detect/locate pipelines.
    auto rep = sim_->reroute_flows();
    out_.reroutes += static_cast<int>(rep.rerouted.size());
    if (metrics_) metrics_->add("runtime.inflight_reroutes", rep.rerouted.size());
    if (tracer_) {
      obs::TraceKeys k;
      k.fault = fr.index;
      tracer_->instant(obs::Track::Fault, "fault.inflight_reroute", sim_->now(),
                       k, to_string(f.cause));
    }
    for (net::FlowId fid : rep.stranded) sim_->abort_flow(fid);
    MitigationRecord rec;
    rec.fault_index = fr.index;
    rec.at_iteration = iter_;
    rec.observed = f.manifestation;
    rec.action = MitigationAction::Reroute;
    rec.succeeded = rep.all_moved();
    out_.mitigations.push_back(rec);
    fr.mitigated = true;
  }
}

bool JobEngine::own_flows_drained() const {
  for (net::FlowId fid : flows_) {
    const auto& st = sim_->flow(fid);
    if (st.admitted && st.finish < 0 && !st.aborted) return false;
  }
  return true;
}

JobEngine::RunTask JobEngine::run_co() {
  const RecoveryConfig& rc = cfg_.recovery;

  // Host-side compute effects that persist across iterations.
  for (const FaultRt& fr : faults_) {
    if (is_host_side(fr.spec.cause) &&
        fr.spec.manifestation == Manifestation::FailSlow &&
        fr.spec.cause != RootCause::PcieDegrade) {
      host_slow_[static_cast<std::size_t>(fr.spec.target_host_rank)] = 3.0;
    }
  }

  // The failure the current iteration attempt died of, if any.
  FaultRt* resp = nullptr;

  while (iter_ < cfg_.iterations) {
    // Fleet interposition point: in fleet mode the engine parks here once
    // per iteration so the scheduler can deliver faults or interrupt with
    // no attempt in flight. Zero-advance; single mode skips it entirely.
    co_await boundary();
    iter_start_ = now_;
    in_attempt_ = true;
    flows_.clear();

    // Iteration-boundary fault activation (mid-transfer faults strike
    // inside the communication phase instead). Gray faults activate
    // silently — no syslog, no binary detector ever fires.
    for (FaultRt& fr : faults_) {
      if (!fr.applied && fr.spec.mid_transfer_fraction <= 0.0 &&
          iter_ >= fr.spec.at_iteration) {
        if (fr.spec.gray != GrayKind::None) {
          trace_injection(fr, now_);
          activate_gray(fr);
          fr.applied = true;
          fr.applied_at = now_;
          continue;
        }
        emit_injection_syslog(fr.spec, now_);
        trace_injection(fr, now_);
        if (!is_host_side(fr.spec.cause) || fr.spec.cause == RootCause::PcieDegrade) {
          apply_network_fault(fr.spec);
        }
        fr.applied = true;
        fr.applied_at = now_;
      }
    }
    // Flapping links swing between phases at iteration boundaries.
    tick_gray_phases();

    // Fail-on-start / host-side fail-stop: job aborts before or during
    // this iteration's compute.
    resp = nullptr;
    for (FaultRt& fr : faults_) {
      if (fr.applied && !fr.resolved() && fr.spec.mid_transfer_fraction <= 0.0 &&
          (fr.spec.manifestation == Manifestation::FailOnStart ||
           (fr.spec.manifestation == Manifestation::FailStop &&
            is_host_side(fr.spec.cause)))) {
        resp = &fr;
        break;
      }
    }
    if (resp) {
      for (int i = 0; i < cfg_.hosts; ++i) {
        NcclTimelineEvent ev;
        ev.t = now_;
        ev.host_rank = i;
        ev.iteration = iter_;
        ev.compute_time = i == resp->spec.target_host_rank ? 0.0 : cfg_.compute_time;
        ev.comm_time = -1.0;
        ev.wr_started = 1;
        ev.wr_finished = 0;
        ingest(ev);
      }
      if (begin_mitigation(resp, resp->spec.manifestation, 0.0)) {
        in_attempt_ = false;
        co_await sim_until(sim_->now() + pending_rec_.mttr());
        finish_mitigation();
        continue;
      }
      out_.stopped_at_iteration = iter_;
      out_.observed = resp->spec.manifestation;
      finalize_outcome();
      co_return;
    }

    // Host-side fail-hang (driver/CCL bug, hung user code): the target
    // host never posts its work request; every rank blocks in the
    // collective. wr_started distinguishes the culprit (§3.2).
    for (FaultRt& fr : faults_) {
      if (fr.applied && !fr.resolved() && is_host_side(fr.spec.cause) &&
          fr.spec.mid_transfer_fraction <= 0.0 &&
          fr.spec.manifestation == Manifestation::FailHang) {
        resp = &fr;
        break;
      }
    }
    if (resp) {
      for (int i = 0; i < cfg_.hosts; ++i) {
        NcclTimelineEvent ev;
        ev.t = now_;
        ev.host_rank = i;
        ev.iteration = iter_;
        ev.compute_time = cfg_.compute_time;
        ev.comm_time = -1.0;
        ev.wr_started = i == resp->spec.target_host_rank ? 0 : 1;
        ev.wr_finished = 0;
        ingest(ev);
      }
      // The collective timeout burns before anyone notices a hang.
      Seconds stall = rc.enabled ? hang_deadline_ : 0.0;
      if (stall > 0.0) co_await sim_until(sim_->now() + stall);
      if (begin_mitigation(resp, Manifestation::FailHang, stall)) {
        in_attempt_ = false;
        co_await sim_until(sim_->now() + pending_rec_.mttr());
        finish_mitigation();
        continue;
      }
      out_.stopped_at_iteration = iter_;
      out_.observed = Manifestation::FailHang;
      finalize_outcome();
      co_return;
    }

    // ---- Compute phase.
    std::vector<Seconds> compute(static_cast<std::size_t>(cfg_.hosts));
    Seconds max_compute = 0.0;
    for (int i = 0; i < cfg_.hosts; ++i) {
      double noise = 1.0 + std::abs(rng_.normal(0.0, 0.01));
      compute[static_cast<std::size_t>(i)] =
          cfg_.compute_time * noise * host_slow_[static_cast<std::size_t>(i)];
      max_compute = std::max(max_compute, compute[static_cast<std::size_t>(i)]);
    }

    // ---- Communication phase: ring flows on rail 0.
    Seconds comm_start = now_ + max_compute;
    co_await sim_until(comm_start);  // advance the network clock
    sim_->reset_stats();
    for (int i = 0; i < cfg_.hosts; ++i) {
      net::FlowSpec spec = ring_spec(i);
      spec.size = cfg_.comm_bytes;
      spec.start = comm_start;
      flows_.push_back(sim_->inject(spec));
    }
    // sFlow path reconstruction + tuple registration (first iteration).
    for (int i = 0; i < cfg_.hosts; ++i) {
      const auto& st = sim_->flow(flows_[static_cast<std::size_t>(i)]);
      if (!st.admitted) continue;
      SflowPathRecord rec;
      rec.t = sim_->now();
      rec.qp = static_cast<QpId>(i);
      rec.tuple = st.tuple;
      rec.path = st.path;
      ingest(rec);
      if (iter_ == 0) {
        auto meta = *store_.qp_meta(static_cast<QpId>(i));
        meta.tuple = st.tuple;
        store_.register_qp(meta);
      }
    }

    // One INT pingmesh sweep per iteration, taken mid-transfer: admit the
    // wave (zero-progress run) so the solver has published this wave's
    // overloads, then sample hop latencies while the flows are in flight.
    // Sweeping after a fixed-interval step instead would race the transfer
    // itself — a short iteration drains within one sample interval and the
    // probes would read an idle fabric.
    co_await sim_until(comm_start);
    for (int i = 0; i < cfg_.hosts; ++i) {
      const auto& st = sim_->flow(flows_[static_cast<std::size_t>(i)]);
      if (!st.admitted) continue;
      IntProbeResult probe;
      probe.t = sim_->now();
      probe.path = st.path;
      for (topo::LinkId l : st.path) probe.hop_latency.push_back(sim_->hop_latency(l));
      ingest(probe);
    }

    // Mid-transfer strikes scheduled inside this iteration's transfer.
    struct Strike {
      FaultRt* fr;
      Seconds t;
    };
    std::vector<Strike> strikes;
    for (FaultRt& fr : faults_) {
      if (!fr.applied && fr.spec.mid_transfer_fraction > 0.0 &&
          iter_ >= fr.spec.at_iteration) {
        strikes.push_back(
            {&fr, comm_start + fr.spec.mid_transfer_fraction * expected_comm()});
      }
    }
    std::sort(strikes.begin(), strikes.end(),
              [](const Strike& a, const Strike& b) { return a.t < b.t; });
    std::size_t next_strike = 0;

    // Step the simulation, sampling QP rates (ms-level monitoring). On a
    // shared fleet fabric "the fabric is idle" no longer means "my wave
    // drained": fleet mode tracks the job's own flows instead (provably
    // the same condition when the job is alone on the fabric).
    Seconds deadline = comm_start + hang_deadline_;
    while (!(fleet_ ? own_flows_drained() : sim_->idle()) &&
           sim_->now() < deadline) {
      Seconds step_to = std::min(deadline, sim_->now() + cfg_.qp_sample_interval);
      if (next_strike < strikes.size()) {
        step_to = std::min(step_to, strikes[next_strike].t);
      }
      co_await sim_until(step_to);
      for (int i = 0; i < cfg_.hosts; ++i) {
        ingest(QpRateSample{sim_->now(), static_cast<QpId>(i),
                                   sim_->current_rate(flows_[static_cast<std::size_t>(i)])});
      }
      while (next_strike < strikes.size() &&
             sim_->now() >= strikes[next_strike].t - 1e-12) {
        strike_fault(*strikes[next_strike].fr);
        ++next_strike;
      }
    }
    // Strikes the transfer outran (it finished first) still land, on an
    // idle fabric — the fault exists from now on, it just hit nobody.
    while (next_strike < strikes.size()) {
      strike_fault(*strikes[next_strike].fr);
      ++next_strike;
    }

    // Per-iteration switch counter collection (SNMP + MOD).
    for (std::size_t l = 0; l < fabric_.topo().link_count(); ++l) {
      const auto& ls = sim_->link_stats(static_cast<topo::LinkId>(l));
      std::uint64_t drops = 0;
      for (const FaultRt& fr : faults_) {
        // Gray faults slow traffic down but drop nothing; phantom MOD
        // drops would read as a blackhole to the analyzer.
        if (fr.spec.gray != GrayKind::None) continue;
        if (fr.applied && !fr.healed &&
            fr.spec.target_link == static_cast<topo::LinkId>(l)) {
          for (net::FlowId fid : flows_) {
            const auto& st = sim_->flow(fid);
            if (st.finish < 0) drops += static_cast<std::uint64_t>(st.remaining);
          }
          break;
        }
      }
      if (ls.ecn_marks || ls.pfc_pauses || drops) {
        ingest(LinkCounterSample{sim_->now(), static_cast<topo::LinkId>(l),
                                        ls.ecn_marks, ls.pfc_pauses, drops, 0.0});
      }
    }

    // Application-layer iteration record.
    bool hung = false;
    for (int i = 0; i < cfg_.hosts; ++i) {
      const auto& st = sim_->flow(flows_[static_cast<std::size_t>(i)]);
      NcclTimelineEvent ev;
      ev.t = now_;
      ev.host_rank = i;
      ev.iteration = iter_;
      ev.compute_time = compute[static_cast<std::size_t>(i)];
      ev.wr_started = 1;
      if (st.admitted && st.finish >= 0) {
        ev.comm_time = st.finish - comm_start;
        ev.wr_finished = 1;
      } else {
        ev.comm_time = -1.0;
        ev.wr_finished = 0;
        hung = true;
      }
      ingest(ev);
    }

    if (hung) {
      // A hard network fault (dead port, misconfigured switch dropping
      // the queue, severed fiber...) exhausts transport retries: errCQE
      // events surface on every QP crossing it and the job observes a
      // fail-stop. Silent blackholes (switch bugs) drop traffic without
      // errors and manifest as fail-hang instead.
      FaultRt* netstop = nullptr;
      for (FaultRt& fr : faults_) {
        if (fr.applied && !fr.resolved() && !is_host_side(fr.spec.cause) &&
            fr.spec.manifestation == Manifestation::FailStop) {
          netstop = &fr;
        }
      }
      if (netstop) {
        for (int i = 0; i < cfg_.hosts; ++i) {
          const auto& st = sim_->flow(flows_[static_cast<std::size_t>(i)]);
          if (st.finish < 0) {
            ingest(ErrCqeEvent{sim_->now(), static_cast<QpId>(i), i,
                                      "local protection error / retry exceeded"});
          }
        }
        if (begin_mitigation(netstop, Manifestation::FailStop,
                             sim_->now() - iter_start_)) {
          in_attempt_ = false;
          co_await sim_until(sim_->now() + pending_rec_.mttr());
          finish_mitigation();
          continue;
        }
        out_.stopped_at_iteration = iter_;
        out_.observed = Manifestation::FailStop;
        finalize_outcome();
        co_return;
      }

      resp = responsible();
      // A host that died mid-transfer reads as fail-stop (its peers got
      // remote errCQEs); anything else that starves the collective past
      // its timeout reads as a hang.
      Manifestation observed =
          resp && resp->spec.mid_transfer_fraction > 0.0 &&
                  resp->spec.manifestation == Manifestation::FailStop &&
                  is_host_side(resp->spec.cause)
              ? Manifestation::FailStop
              : Manifestation::FailHang;
      if (begin_mitigation(resp, observed, sim_->now() - iter_start_)) {
        in_attempt_ = false;
        co_await sim_until(sim_->now() + pending_rec_.mttr());
        finish_mitigation();
        continue;
      }
      out_.stopped_at_iteration = iter_;
      out_.observed = observed;
      finalize_outcome();
      co_return;
    }

    now_ = sim_->now();
    sim_->recycle_finished();

    // Transient faults self-heal after surviving enough iterations.
    for (FaultRt& fr : faults_) {
      if (fr.applied && !fr.healed && fr.spec.repair_iterations >= 0) {
        ++fr.active_iters;
        if (fr.active_iters >= fr.spec.repair_iterations) heal_fault(fr);
      }
    }
    // Permanent gray faults tick too: FlappingLink's duty cycle runs off
    // active_iters (legacy permanent faults never read theirs).
    for (FaultRt& fr : faults_) {
      if (fr.applied && !fr.healed && fr.spec.gray != GrayKind::None &&
          fr.spec.repair_iterations < 0) {
        ++fr.active_iters;
      }
    }

    if (metrics_) metrics_->add("runtime.iterations.committed");
    if (tracer_) {
      // The ring comm phase is the job's collective: one Collective-track
      // span (value = bytes over the fabric) nested under the Workload
      // iteration span, all stamped with the ambient job key.
      tracer_->span(obs::Track::Workload, "compute", iter_start_, max_compute);
      tracer_->span(obs::Track::Collective, "ring_step", comm_start,
                    now_ - comm_start, {},
                    static_cast<double>(cfg_.comm_bytes) * cfg_.hosts);
      tracer_->span(obs::Track::Workload, "iteration", iter_start_, now_ - iter_start_,
                    {}, static_cast<double>(iter_));
    }
    iter_useful_[static_cast<std::size_t>(iter_)] = now_ - iter_start_;
    out_.useful_time += now_ - iter_start_;
    in_attempt_ = false;
    ++iter_;

    // ---- Gray routing control tick (no-op with GrayRoutingConfig off).
    // Runs on the committed iteration's observations, outside the useful
    // wall clock: push stalls are downtime, not training time.
    if (cfg_.gray.mode != GrayRoutingConfig::Mode::Off) {
      const GrayRoutingConfig& gc = cfg_.gray;
      const double thr = gc.wcmp.derate_threshold;
      const bool slow_iter =
          now_ - iter_start_ > healthy_iter_ * gc.arm_slowdown;
      const auto observations = gray_observations();
      if (gc.mode == GrayRoutingConfig::Mode::Wcmp) {
        wcmp_->tick();
        bool changed = false;
        topo::LinkId changed_link = topo::kInvalidLink;
        for (const auto& [l, frac] : observations) {
          // Engage only when the job actually runs slow (clean runs never
          // mitigate on noise); a derated/suppressed link stays under
          // observation until the damper restores it.
          bool tracked = wcmp_->health(l).state != net::WcmpState::Healthy;
          if (!tracked && !slow_iter) continue;
          if (wcmp_->observe(l, frac)) {
            if (changed_link == topo::kInvalidLink || frac < thr) changed_link = l;
            changed = true;
          }
        }
        if (changed) {
          // One centralized weights + ports push per control tick, however
          // many links changed — the churn asymmetry vs. binary isolate.
          std::vector<net::FlowSpec> specs;
          specs.reserve(static_cast<std::size_t>(cfg_.hosts));
          for (int i = 0; i < cfg_.hosts; ++i) specs.push_back(ring_spec(i));
          wcmp_->rebalance(specs);
          for (int i = 0; i < cfg_.hosts; ++i) {
            ring_ports_[static_cast<std::size_t>(i)] =
                specs[static_cast<std::size_t>(i)].src_port;
          }
          ++out_.derates;
          if (metrics_) metrics_->add("runtime.gray.derates");
          int fi = gray_fault_index_for(changed_link);
          if (fi >= 0) {
            MitigationRecord rec;
            rec.fault_index = fi;
            rec.at_iteration = iter_ - 1;
            rec.observed = Manifestation::FailSlow;
            rec.action = MitigationAction::Derate;
            rec.succeeded = true;
            rec.recover_time = gc.derate_push_time;
            trace_mitigation(rec, sim_->now());
            out_.mitigations.push_back(rec);
          }
          co_await sim_until(sim_->now() + gc.derate_push_time);
          out_.downtime += gc.derate_push_time;
          now_ = sim_->now();
        }
        // Ladder escalation: a SlowNic straggler the derate cannot route
        // around climbs from Derate to IsolateRestart.
        if (gc.escalate_after_ticks > 0 && rc.enabled) {
          for (FaultRt& fr : faults_) {
            if (fr.spec.gray != GrayKind::SlowNic || !fr.applied ||
                fr.resolved()) {
              continue;
            }
            bool degraded = false;
            for (const auto& [l, frac] : observations) {
              for (topo::LinkId gl : fr.gray_links) {
                degraded |= l == gl && frac < thr;
              }
            }
            fr.gray_degraded_ticks = degraded ? fr.gray_degraded_ticks + 1 : 0;
            if (fr.gray_degraded_ticks >= gc.escalate_after_ticks &&
                out_.restarts < rc.max_restarts &&
                begin_mitigation(&fr, Manifestation::FailSlow, 0.0)) {
              co_await sim_until(sim_->now() + pending_rec_.mttr());
              finish_mitigation();
            }
          }
        }
      } else {
        // BinaryIsolate baseline: cordon on degradation, restore on
        // recovery — every swing of a flapping link is a fresh drain +
        // config push (the churn WCMP + damping exists to avoid).
        for (const auto& [l, frac] : observations) {
          bool cordoned = std::find(gray_cordoned_.begin(), gray_cordoned_.end(),
                                    l) != gray_cordoned_.end();
          bool degraded = frac < thr;
          if (degraded && !cordoned && slow_iter) {
            sim_->set_link_up(l, false);
            // Pre-flight: never cordon a link the ring cannot live
            // without (a single-homed NIC uplink).
            bool routable = true;
            for (int i = 0; i < cfg_.hosts && routable; ++i) {
              routable = sim_->predict_path(ring_spec(i)).has_value();
            }
            if (!routable) {
              sim_->set_link_up(l, true);
              continue;
            }
            gray_cordoned_.push_back(l);
            downed_links_.push_back(l);
            if (++gray_cordon_count_[l] > 1) ++gray_binary_osc_;
            sim_->reroute_flows();
          } else if (!degraded && cordoned) {
            sim_->set_link_up(l, true);
            gray_cordoned_.erase(
                std::remove(gray_cordoned_.begin(), gray_cordoned_.end(), l),
                gray_cordoned_.end());
            downed_links_.erase(
                std::remove(downed_links_.begin(), downed_links_.end(), l),
                downed_links_.end());
          } else {
            continue;
          }
          ++out_.gray_isolates;
          if (metrics_) metrics_->add("runtime.gray.isolates");
          int fi = gray_fault_index_for(l);
          if (fi >= 0) {
            MitigationRecord rec;
            rec.fault_index = fi;
            rec.at_iteration = iter_ - 1;
            rec.observed = Manifestation::FailSlow;
            rec.action = MitigationAction::Reroute;
            rec.succeeded = true;
            rec.recover_time = gc.isolate_push_time;
            trace_mitigation(rec, sim_->now());
            out_.mitigations.push_back(rec);
          }
          co_await sim_until(sim_->now() + gc.isolate_push_time);
          out_.downtime += gc.isolate_push_time;
          now_ = sim_->now();
        }
      }
    }
  }

  out_.completed = true;
  finalize_outcome();
  // A run that completed but ran slow is a fail-slow manifestation.
  for (const FaultRt& fr : faults_) {
    if (fr.spec.manifestation == Manifestation::FailSlow ||
        fr.spec.cause == RootCause::LinkFlap) {
      out_.observed = Manifestation::FailSlow;
    }
  }
  if (!out_.observed && !out_.mitigations.empty()) {
    out_.observed = out_.mitigations.front().observed;
  }
  co_return;
}

void JobEngine::start() {
  assert(!started_);
  started_ = true;
  RunTask task = run_co();
  handle_ = task.handle;
  handle_.promise().engine = this;
  resume();
}

void JobEngine::resume() {
  if (done_ || !handle_) return;
  // Every event recorded during this slice of execution (including the
  // FluidSim flow events emitted while the engine advances the sim)
  // carries this job's id through the ambient key chain.
  obs::TraceKeys job_keys;
  job_keys.job = cfg_.job_id;
  obs::AmbientScope job_scope(tracer_, job_keys);
  handle_.resume();
  if (handle_.done()) {
    handle_.destroy();
    handle_ = nullptr;
    done_ = true;
    if (pending_exception_) {
      std::rethrow_exception(std::exchange(pending_exception_, nullptr));
    }
  }
}

int JobEngine::checkpoint_iteration() const {
  const int ci = cfg_.recovery.checkpoint_interval;
  return ci > 0 ? (iter_ / ci) * ci : iter_;
}

int JobEngine::rank_of_host(topo::NodeId host) const {
  for (int i = 0; i < cfg_.hosts; ++i) {
    if (hosts_[static_cast<std::size_t>(i)] == host) return i;
  }
  return -1;
}

bool JobEngine::comm_in_flight() const {
  for (net::FlowId fid : flows_) {
    const auto& st = sim_->flow(fid);
    if (st.admitted && st.finish < 0 && !st.aborted) return true;
  }
  return false;
}

bool JobEngine::owns_flow(net::FlowId id) const {
  return std::find(flows_.begin(), flows_.end(), id) != flows_.end();
}

bool JobEngine::crosses_any(std::span<const topo::LinkId> links) const {
  auto hit = [&](const std::vector<topo::LinkId>& path) {
    for (topo::LinkId l : path) {
      for (topo::LinkId d : links) {
        if (l == d) return true;
      }
    }
    return false;
  };
  bool any_live = false;
  for (net::FlowId fid : flows_) {
    const auto& st = sim_->flow(fid);
    if (!st.admitted || st.finish >= 0 || st.aborted) continue;
    any_live = true;
    if (hit(st.path)) return true;
  }
  if (any_live) return false;
  // Nothing in flight: judge by where the next wave would route.
  for (int i = 0; i < cfg_.hosts; ++i) {
    if (auto path = sim_->predict_path(ring_spec(i)); path && hit(*path)) {
      return true;
    }
  }
  return false;
}

int JobEngine::deliver_fault(FaultSpec spec) {
  // A host dying while its flows are in flight reads as fail-stop to its
  // peers (remote errCQEs), the same observation the mid-transfer strike
  // path produces.
  if (is_host_side(spec.cause) && spec.manifestation == Manifestation::FailStop &&
      spec.mid_transfer_fraction <= 0.0 && comm_in_flight()) {
    spec.mid_transfer_fraction = 0.5;
  }
  FaultRt rt;
  rt.spec = spec;
  rt.index = static_cast<int>(faults_.size());
  faults_.push_back(std::move(rt));
  FaultRt& fr = faults_.back();
  if (fr.spec.gray != GrayKind::None) {
    // Gray faults are silent: trace for the ledger, but no syslog — the
    // binary detectors must never see them.
    trace_injection(fr, sim_->now());
    activate_gray(fr);
    fr.applied = true;
    fr.applied_at = sim_->now();
    return fr.index;
  }
  emit_injection_syslog(fr.spec, sim_->now());
  trace_injection(fr, sim_->now());
  fr.applied = true;
  fr.applied_at = sim_->now();
  const FaultSpec& f = fr.spec;
  if (is_host_side(f.cause)) {
    if (f.manifestation == Manifestation::FailStop) {
      topo::NodeId dead = hosts_[static_cast<std::size_t>(f.target_host_rank)];
      for (std::size_t i = 0; i < flows_.size(); ++i) {
        const auto& st = sim_->flow(flows_[i]);
        if (!st.admitted || st.finish >= 0 || st.aborted) continue;
        if (st.spec.src_host == dead || st.spec.dst_host == dead) {
          sim_->abort_flow(flows_[i]);
          ingest(ErrCqeEvent{sim_->now(), static_cast<QpId>(i), static_cast<int>(i),
                             "remote operation error / peer died"});
        }
      }
    } else if (f.manifestation == Manifestation::FailSlow &&
               f.cause != RootCause::PcieDegrade) {
      host_slow_[static_cast<std::size_t>(f.target_host_rank)] = 3.0;
    } else if (f.cause == RootCause::PcieDegrade) {
      apply_network_fault(f);
    }
  }
  return fr.index;
}

void JobEngine::note_inflight_reroute(int fault_index, int moved, bool all_moved) {
  if (!cfg_.recovery.enabled) return;
  FaultRt& fr = faults_[static_cast<std::size_t>(fault_index)];
  out_.reroutes += moved;
  if (metrics_) metrics_->add("runtime.inflight_reroutes",
                              static_cast<std::uint64_t>(moved));
  if (tracer_) {
    obs::TraceKeys k;
    k.fault = fr.index;
    k.job = cfg_.job_id;
    tracer_->instant(obs::Track::Fault, "fault.inflight_reroute", sim_->now(), k,
                     to_string(fr.spec.cause));
  }
  MitigationRecord rec;
  rec.fault_index = fr.index;
  rec.at_iteration = iter_;
  rec.observed = fr.spec.manifestation;
  rec.action = MitigationAction::Reroute;
  rec.succeeded = all_moved;
  out_.mitigations.push_back(rec);
  fr.mitigated = true;
}

void JobEngine::interrupt() {
  if (done_) return;
  if (handle_) {
    handle_.destroy();
    handle_ = nullptr;
  }
  done_ = true;
  if (!started_) {
    finalize_outcome();
    return;
  }
  for (net::FlowId fid : flows_) {
    const auto& st = sim_->flow(fid);
    if (st.admitted && st.finish < 0 && !st.aborted) sim_->abort_flow(fid);
  }
  // The incomplete attempt's wall clock is lost work; committed time is
  // already in iter_useful_ and mitigation stalls already in downtime.
  if (in_attempt_ && !at_boundary_) {
    out_.wasted_time += std::max(0.0, sim_->now() - iter_start_);
  }
  in_attempt_ = false;
  at_boundary_ = false;
  finalize_outcome();
}

int JobEngine::rewind_to_checkpoint(core::Seconds* moved) {
  assert(done_);
  int cp = checkpoint_iteration();
  Seconds m = 0.0;
  for (int k = cp; k < iter_; ++k) {
    m += iter_useful_[static_cast<std::size_t>(k)];
    iter_useful_[static_cast<std::size_t>(k)] = 0.0;
  }
  out_.wasted_time += m;
  out_.useful_time -= m;
  iter_ = cp;
  finalize_outcome();
  if (moved) *moved = m;
  return cp;
}

}  // namespace astral::monitor
