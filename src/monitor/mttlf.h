// Mean-Time-To-Locate-Failure experiment harness (Figs. 7 & 10): run a
// fault-injection campaign sampled from the production taxonomy, let the
// hierarchical analyzer localize each fault, and compare its locate time
// against a modeled manual (pre-deployment) process — the grep-logs /
// binary-search / replace-and-reboot workflow of §5.
#pragma once

#include <map>
#include <vector>

#include "monitor/analyzer.h"

namespace astral::monitor {

struct CampaignConfig {
  int faults = 100;
  topo::FabricParams fabric;
  JobConfig job;
  std::uint64_t seed = 2024;

  CampaignConfig() {
    fabric.rails = 2;
    fabric.hosts_per_block = 8;
    fabric.blocks_per_pod = 2;
    fabric.pods = 1;
    job.hosts = 12;
    job.iterations = 6;
    job.comm_bytes = 8ull * 1024 * 1024;
  }
};

struct CampaignEntry {
  RootCause injected_cause;
  Manifestation injected_manifestation;
  Manifestation observed;
  bool detected = false;
  bool cause_correct = false;
  bool needs_manual = false;
  core::Seconds analyzer_time = 0.0;
  core::Seconds manual_time = 0.0;
};

struct CampaignResult {
  std::vector<CampaignEntry> entries;

  std::map<RootCause, int> cause_counts() const;
  std::map<Manifestation, int> manifestation_counts() const;
  /// Mean locate time with the Astral monitoring system deployed.
  core::Seconds mttlf_with_system(Manifestation m) const;
  /// Mean locate time of the modeled manual process.
  core::Seconds mttlf_manual(Manifestation m) const;
  /// Fraction of entries whose root cause was identified correctly.
  double accuracy() const;
};

/// Modeled manual localization time (§5 experience: log trawling,
/// batch replace-and-reboot binary search — the 26-hour driver hunt).
core::Seconds manual_locate_time(RootCause cause, Manifestation m, int hosts,
                                 core::Rng& rng);

/// Runs the campaign: each fault gets a fresh job on a shared fabric.
CampaignResult run_campaign(const CampaignConfig& cfg);

}  // namespace astral::monitor
