// Mean-Time-To-Locate-Failure experiment harness (Figs. 7 & 10): run a
// fault-injection campaign sampled from the production taxonomy, let the
// hierarchical analyzer localize each fault, and compare its locate time
// against a modeled manual (pre-deployment) process — the grep-logs /
// binary-search / replace-and-reboot workflow of §5.
#pragma once

#include <map>
#include <vector>

#include "monitor/analyzer.h"
#include "monitor/cluster_runtime.h"

namespace astral::monitor {

struct CampaignConfig {
  int faults = 100;
  topo::FabricParams fabric;
  JobConfig job;
  std::uint64_t seed = 2024;

  CampaignConfig() {
    fabric.rails = 2;
    fabric.hosts_per_block = 8;
    fabric.blocks_per_pod = 2;
    fabric.pods = 1;
    job.hosts = 12;
    job.iterations = 6;
    job.comm_bytes = 8ull * 1024 * 1024;
  }
};

struct CampaignEntry {
  RootCause injected_cause;
  Manifestation injected_manifestation;
  Manifestation observed;
  bool detected = false;
  bool cause_correct = false;
  bool needs_manual = false;
  core::Seconds analyzer_time = 0.0;
  core::Seconds manual_time = 0.0;
};

struct CampaignResult {
  std::vector<CampaignEntry> entries;

  std::map<RootCause, int> cause_counts() const;
  std::map<Manifestation, int> manifestation_counts() const;
  /// Mean locate time with the Astral monitoring system deployed.
  core::Seconds mttlf_with_system(Manifestation m) const;
  /// Mean locate time of the modeled manual process.
  core::Seconds mttlf_manual(Manifestation m) const;
  /// Fraction of entries whose root cause was identified correctly.
  double accuracy() const;
};

/// Modeled manual localization time (§5 experience: log trawling,
/// batch replace-and-reboot binary search — the 26-hour driver hunt).
core::Seconds manual_locate_time(RootCause cause, Manifestation m, int hosts,
                                 core::Rng& rng);

/// Runs the campaign: each fault gets a fresh job on a shared fabric.
CampaignResult run_campaign(const CampaignConfig& cfg);

// ---------------------------------------------------------------------------
// Availability campaign: multi-fault runs with recovery enabled. Where
// the MTTLF campaign measures how fast the analyzer *finds* a fault, this
// one measures whether the job *survives* it — each run takes a sampled
// taxonomy fault plus a mid-transfer ToR death (the dual-ToR failover
// case), and reports MTTR, useful vs. wasted time, and effective goodput.

struct AvailabilityConfig {
  int runs = 40;
  /// Faults per run: the last is always the mid-transfer ToR death, the
  /// earlier ones are sampled from the Fig. 7 taxonomy.
  int faults_per_run = 2;
  double mid_transfer_fraction = 0.5;
  topo::FabricParams fabric;
  JobConfig job;
  std::uint64_t seed = 2024;

  AvailabilityConfig() {
    fabric.rails = 2;
    fabric.hosts_per_block = 8;
    fabric.blocks_per_pod = 2;
    fabric.pods = 1;
    job.hosts = 12;
    job.iterations = 8;
    job.comm_bytes = 8ull * 1024 * 1024;
    job.recovery.enabled = true;
  }
};

struct AvailabilityEntry {
  RunOutcome outcome;
  int faults_injected = 0;
  core::Seconds mttr = 0.0;   ///< Mean detect+locate+recover per mitigation.
  core::Seconds mttlf = 0.0;  ///< Mean analyzer locate time per mitigation.
};

struct AvailabilityResult {
  std::vector<AvailabilityEntry> entries;

  double completion_rate() const;
  double mean_goodput() const;        ///< Over completed runs.
  core::Seconds mean_mttr() const;    ///< Over runs that mitigated anything.
  core::Seconds mean_mttlf() const;
  core::Seconds mean_downtime() const;
  int total_reroutes() const;
  int total_restarts() const;
  int total_retries() const;
};

/// Runs the availability campaign on a shared fabric (ClusterRuntime
/// repairs fabric link state after every run).
AvailabilityResult run_availability_campaign(const AvailabilityConfig& cfg);

}  // namespace astral::monitor
