// Evolvable physical-layer detectors (Appendix D): the hierarchical
// analyzer's bottom layer maps device log patterns to root causes. New
// anomaly classes are handled by "patching the new detector at the lower
// level" — registering one more pattern — while the upper layers
// (manifestation classification, cross-host comparison, path
// localization) stay untouched. This registry is that patch point.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "monitor/faults.h"
#include "monitor/telemetry.h"

namespace astral::monitor {

struct LogDetector {
  std::string pattern;  ///< Substring matched against syslog messages.
  RootCause cause;
  /// How strongly this pattern pins its cause when matched. Device-fatal
  /// signatures (Xid, ECC) are near-certain; warn-level configuration and
  /// optics patterns leave a little room for a shared symptom.
  double confidence = 0.95;
};

/// A scored detector hit: the cause plus the detector's confidence in it,
/// consumed by the analyzer's confidence accounting.
struct Detection {
  RootCause cause;
  double confidence = 0.95;
};

class DetectorRegistry {
 public:
  /// The production detector set (everything the Fig. 7 taxonomy needs,
  /// including the PCIe detector added after the §5 incident).
  static DetectorRegistry with_defaults();

  /// The pre-incident detector set: like defaults but without the PCIe
  /// pattern — the state of the system when the PFC-storm outage hit.
  static DetectorRegistry without_pcie();

  /// Appends a detector; later registrations win over earlier ones so a
  /// refined pattern can shadow a coarse one.
  void register_detector(std::string pattern, RootCause cause,
                         double confidence = 0.95);

  /// First matching cause for a log line (newest detectors first).
  std::optional<RootCause> match(const SyslogEvent& ev) const;

  /// Like match, but carries the matched detector's confidence.
  std::optional<Detection> detect(const SyslogEvent& ev) const;

  std::size_t size() const { return detectors_.size(); }

 private:
  std::vector<LogDetector> detectors_;
};

}  // namespace astral::monitor
