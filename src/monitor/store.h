// The telemetry store: consolidated, queryable record streams from all
// four monitoring layers with the cross-layer keys preserved, so the
// analyzer can walk application -> transport -> network -> physical.
#pragma once

#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/json.h"
#include "monitor/telemetry.h"

namespace astral::monitor {

/// Subscriber at the TelemetryStore ingestion seam. The store invokes the
/// sink once per record it ACCEPTS, in acceptance order — after the
/// degrade-hardening logic ran, so a subscriber sees exactly the stream
/// the store itself believes (sFlow newest-by-timestamp winners only,
/// cumulative switch counters already delta'd with wrap/reset
/// resynchronization). This is the seam the streaming diagnosis service
/// (monitor::StreamAnalyzer) consumes record-by-record instead of
/// re-scanning raw streams after the fact.
class TelemetrySink {
 public:
  virtual ~TelemetrySink() = default;
  virtual void on_record(const NcclTimelineEvent&) {}
  virtual void on_record(const QpRateSample&) {}
  virtual void on_record(const ErrCqeEvent&) {}
  virtual void on_record(const SflowPathRecord&) {}
  virtual void on_record(const IntProbeResult&) {}
  /// `d_ecn`/`d_pfc` are the effective per-interval deltas the store
  /// credited for this sample (equal to the raw fields for delta-style
  /// samples; derived for SNMP-cumulative ones, zero when the sample was
  /// rejected as stale).
  virtual void on_link_counters(const LinkCounterSample& /*raw*/,
                                std::uint64_t /*d_ecn*/, std::uint64_t /*d_pfc*/) {}
  virtual void on_record(const SyslogEvent&) {}
  virtual void on_register_qp(const QpMeta&) {}
};

class TelemetryStore {
 public:
  // Ingestion (collectors append). Collector batches may arrive lossy,
  // duplicated, and reordered (see monitor/degrade.h), so ingestion of
  // keyed records is idempotent: sFlow paths keep the newest record by
  // collector timestamp, and cumulative switch counters are delta'd
  // against the last-seen total with wrap/reset resynchronization.
  void record(NcclTimelineEvent ev) {
    nccl_.push_back(ev);
    // Running max so last_iteration() is O(1) instead of a timeline scan.
    if (ev.iteration > last_iteration_) last_iteration_ = ev.iteration;
    if (sink_) sink_->on_record(ev);
  }
  void record(QpRateSample s) {
    // Per-QP index (arrival order preserved) so mean_qp_rate walks only
    // this QP's samples instead of every sample of the run.
    qp_sample_idx_[s.qp].push_back(static_cast<std::uint32_t>(qp_rates_.size()));
    qp_rates_.push_back(s);
    if (sink_) sink_->on_record(s);
  }
  void record(ErrCqeEvent ev) {
    err_cqes_.push_back(std::move(ev));
    if (sink_) sink_->on_record(err_cqes_.back());
  }
  void record(SflowPathRecord r) {
    // Newest-by-timestamp wins, not arrival order: a reordered or
    // re-delivered collector batch must never regress a QP's path to a
    // stale reconstruction. Ties go to the later arrival, which makes
    // exact duplicates idempotent.
    auto it = sflow_.find(r.qp);
    if (it == sflow_.end() || r.t >= it->second.t) {
      auto& slot = sflow_[r.qp];
      slot = std::move(r);
      if (sink_) sink_->on_record(slot);
    }
  }
  void record(IntProbeResult r) {
    int_probes_.push_back(std::move(r));
    if (sink_) sink_->on_record(int_probes_.back());
  }
  void record(LinkCounterSample s) {
    // Per-link running totals are maintained here so total_pfc/total_ecn
    // are O(1) lookups instead of a scan over every sample of the run —
    // the analyzer calls them per candidate link on the hot diagnosis
    // path of long campaigns.
    auto& agg = link_totals_[s.link];
    std::uint64_t d_ecn = 0;
    std::uint64_t d_pfc = 0;
    if (s.cumulative) {
      // Since-boot switch totals (the SNMP convention). Stale samples
      // (at or before the last accepted timestamp) are ignored so
      // duplicated or reordered batches cannot double-count; a total
      // running backwards at a newer timestamp is a counter wrap or a
      // switch reboot — resynchronize on the new baseline, counting only
      // what accumulated since the reset instead of adding garbage.
      if (!agg.have_cumulative || s.t > agg.last_t) {
        d_ecn = agg.have_cumulative && s.ecn_marks >= agg.last_ecn
                    ? s.ecn_marks - agg.last_ecn
                    : s.ecn_marks;
        d_pfc = agg.have_cumulative && s.pfc_pauses >= agg.last_pfc
                    ? s.pfc_pauses - agg.last_pfc
                    : s.pfc_pauses;
        agg.ecn_marks += d_ecn;
        agg.pfc_pauses += d_pfc;
        agg.last_ecn = s.ecn_marks;
        agg.last_pfc = s.pfc_pauses;
        agg.last_t = s.t;
        agg.have_cumulative = true;
      }
    } else {
      d_ecn = s.ecn_marks;
      d_pfc = s.pfc_pauses;
      agg.ecn_marks += d_ecn;
      agg.pfc_pauses += d_pfc;
    }
    link_counters_.push_back(s);
    if (sink_) sink_->on_link_counters(s, d_ecn, d_pfc);
  }
  void record(SyslogEvent ev) {
    syslog_.push_back(std::move(ev));
    if (sink_) sink_->on_record(syslog_.back());
  }
  void register_qp(QpMeta meta) {
    // host -> QP index, kept consistent under the re-registration the
    // runtime does when it learns a QP's 5-tuple (same host, updated
    // meta) and under a QP genuinely moving hosts.
    auto it = qp_meta_.find(meta.qp);
    if (it != qp_meta_.end() && it->second.src_host_rank != meta.src_host_rank) {
      auto& old = host_qps_[it->second.src_host_rank];
      std::erase(old, meta.qp);
    }
    if (it == qp_meta_.end() || it->second.src_host_rank != meta.src_host_rank) {
      host_qps_[meta.src_host_rank].push_back(meta.qp);
    }
    qp_meta_[meta.qp] = meta;
    if (sink_) sink_->on_register_qp(meta);
  }

  /// Subscribes `sink` at the ingestion seam (nullptr detaches). At most
  /// one sink; the caller guarantees it outlives the subscription.
  void set_sink(TelemetrySink* sink) { sink_ = sink; }
  TelemetrySink* sink() const { return sink_; }

  // Raw streams.
  std::span<const NcclTimelineEvent> nccl_timeline() const { return nccl_; }
  std::span<const QpRateSample> qp_rates() const { return qp_rates_; }
  std::span<const ErrCqeEvent> err_cqes() const { return err_cqes_; }
  std::span<const IntProbeResult> int_probes() const { return int_probes_; }
  std::span<const LinkCounterSample> link_counters() const { return link_counters_; }
  std::span<const SyslogEvent> syslog() const { return syslog_; }

  /// All sFlow winners by QP (unordered; sinks replay them on attach).
  const std::unordered_map<QpId, SflowPathRecord>& sflow_paths() const {
    return sflow_;
  }

  // Cross-layer lookups.
  std::optional<QpMeta> qp_meta(QpId qp) const;
  /// All registered QP metadata (unordered; sinks replay it on attach).
  const std::unordered_map<QpId, QpMeta>& qp_metas() const { return qp_meta_; }
  /// sFlow-reconstructed path for a QP (empty when never sampled).
  std::vector<topo::LinkId> path_of(QpId qp) const;
  /// All QPs whose source is the given host rank.
  std::vector<QpId> qps_of_host(int host_rank) const;

  // Derived queries used by the analyzer.
  /// Per-host compute/comm times of one iteration, indexed by host rank.
  std::vector<NcclTimelineEvent> iteration_events(int iteration) const;
  /// Mean QP rate over a window; 0 when no samples.
  double mean_qp_rate(QpId qp, core::Seconds from, core::Seconds to) const;
  /// Sum of PFC pauses recorded for a link over the whole run. O(1):
  /// served from running aggregates maintained by record().
  std::uint64_t total_pfc(topo::LinkId link) const;
  std::uint64_t total_ecn(topo::LinkId link) const;
  /// Syslog events for a job host rank.
  std::vector<SyslogEvent> host_syslog(int host_rank) const;
  /// Syslog events attached to an arbitrary node (e.g. a switch).
  std::vector<SyslogEvent> node_syslog(topo::NodeId node) const;
  /// Highest iteration index with any timeline event; -1 when none.
  int last_iteration() const;

  /// Approximate footprint in records (for the Appendix C overhead
  /// accounting).
  std::size_t record_count() const;

  /// Consolidated JSON snapshot of all layers (the "log consolidation"
  /// of §3.2); loadable by offline analysis tooling.
  core::Json to_json() const;

 private:
  std::vector<NcclTimelineEvent> nccl_;
  std::vector<QpRateSample> qp_rates_;
  std::vector<ErrCqeEvent> err_cqes_;
  std::unordered_map<QpId, SflowPathRecord> sflow_;
  std::vector<IntProbeResult> int_probes_;
  std::vector<LinkCounterSample> link_counters_;
  std::vector<SyslogEvent> syslog_;
  std::unordered_map<QpId, QpMeta> qp_meta_;
  /// src host rank -> QPs registered there (see register_qp).
  std::unordered_map<int, std::vector<QpId>> host_qps_;
  /// Per-QP positions into qp_rates_, in arrival order, so windowed rate
  /// queries touch only the QP's own samples (bitwise-identical sums to
  /// the old full scan: filtering preserves arrival order).
  std::unordered_map<QpId, std::vector<std::uint32_t>> qp_sample_idx_;
  int last_iteration_ = -1;  ///< Running max over nccl_ (empty: -1).
  TelemetrySink* sink_ = nullptr;

  /// Running per-link counter totals (see record(LinkCounterSample)).
  struct LinkTotals {
    std::uint64_t ecn_marks = 0;
    std::uint64_t pfc_pauses = 0;
    // Delta baseline for cumulative (SNMP-style) samples.
    std::uint64_t last_ecn = 0;
    std::uint64_t last_pfc = 0;
    core::Seconds last_t = 0.0;
    bool have_cumulative = false;
  };
  std::unordered_map<topo::LinkId, LinkTotals> link_totals_;
};

}  // namespace astral::monitor
