// Lossy-collector fault model for the monitoring plane itself (§3.2's
// unstated assumption, made explicit): the paper's hierarchical analysis
// presumes every layer's records arrive complete, ordered, and on one
// clock. Real collectors drop sampled sFlow mirrors, restart mid-campaign,
// skew against each other, and re-deliver batches — and the plane degrades
// hardest exactly when the fabric is sickest. TelemetryFaultModel sits
// between the in-simulator collectors and the TelemetryStore and injects
// those pathologies, seeded and independently parameterized, so the
// analyzer's accuracy and confidence calibration can be measured against
// monitoring-plane truth decay instead of assumed away.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/json.h"
#include "core/rng.h"
#include "monitor/analyzer.h"
#include "monitor/cluster_runtime.h"
#include "monitor/store.h"

namespace astral::obs {
class Tracer;
}

namespace astral::monitor {

/// Per-stream degradation knobs (i.i.d. per record, seeded).
struct StreamFaults {
  double drop_prob = 0.0;       ///< Record lost between collector and store.
  double duplicate_prob = 0.0;  ///< Batch re-delivery: record ingested twice.
  double reorder_prob = 0.0;    ///< Record held back, delivered after a
                                ///< later one (pairwise inversion).
};

/// A named, composable degradation scenario. Every dimension is
/// independent; the presets stack them the way real incidents do.
struct DegradationProfile {
  std::string name = "clean";

  // Per-stream loss/duplication/reordering, one knob set per layer.
  StreamFaults nccl;       ///< Application: per-iteration timeline.
  StreamFaults qp_rate;    ///< Transport: ms-level QP rates.
  StreamFaults err_cqe;    ///< Transport: completion-queue errors.
  StreamFaults sflow;      ///< Network: sampled path reconstructions.
  StreamFaults int_probe;  ///< Network: INT pingmesh probes.
  StreamFaults counters;   ///< Physical: switch counter scrapes.
  StreamFaults syslog;     ///< Physical: device logs.

  /// Whole-plane collector outages: `outages` windows of
  /// `outage_duration`, start times drawn uniformly in
  /// [0, outage_horizon); every record timestamped inside a window is
  /// silently discarded (the collector was down).
  int outages = 0;
  core::Seconds outage_duration = 0.0;
  core::Seconds outage_horizon = 1.0;

  /// Per-collector clock error: a fixed skew drawn once per collector in
  /// [-max_clock_skew, +max_clock_skew], plus i.i.d. per-record jitter in
  /// [-max_jitter, +max_jitter]. Applied to record timestamps only — the
  /// simulation itself keeps one true clock.
  core::Seconds max_clock_skew = 0.0;
  core::Seconds max_jitter = 0.0;

  /// sFlow reconstruction truncation: with this probability a path loses
  /// its tail hops (the samples past the cut were never mirrored).
  double sflow_truncate_prob = 0.0;

  /// Re-emit link counters as SNMP-style since-boot cumulative totals
  /// (the store deltas them itself) instead of per-interval deltas.
  bool cumulative_counters = false;
  /// Per cumulative sample: probability the switch rebooted since the
  /// last scrape, resetting its totals to the current interval.
  double counter_reset_prob = 0.0;

  /// True when every knob is zero — records pass through bit-identically.
  bool is_clean() const;

  // Presets, in escalating severity.
  static DegradationProfile clean();
  /// The ISSUE's calibration point: ~10% sample loss on the high-rate
  /// streams, one collector outage, <=5ms clock skew.
  static DegradationProfile mild();
  static DegradationProfile severe();
  /// Worst case the model can express: most of the plane is gone.
  static DegradationProfile adversarial();

  static std::optional<DegradationProfile> by_name(std::string_view name);
  static const std::vector<std::string>& names();
};

/// What the fault model did to the stream, for reporting and the
/// degradation Perfetto track.
struct DegradationStats {
  std::uint64_t delivered = 0;      ///< Records that reached the store.
  std::uint64_t dropped = 0;        ///< Lost to per-stream drop_prob.
  std::uint64_t outage_dropped = 0; ///< Lost to collector outage windows.
  std::uint64_t duplicated = 0;     ///< Extra deliveries.
  std::uint64_t reordered = 0;      ///< Held back past a later record.
  std::uint64_t truncated = 0;      ///< sFlow paths that lost their tail.
  std::uint64_t counter_resets = 0; ///< Simulated switch reboots.
  std::uint64_t total() const {
    return delivered + dropped + outage_dropped;
  }
};

/// The interposition layer. ClusterRuntime routes every telemetry record
/// through record(rec, store) when attached (set_telemetry_faults); a
/// clean profile short-circuits to plain ingestion, guaranteeing
/// bit-identical stores. All randomness comes from the explicit seed.
class TelemetryFaultModel {
 public:
  TelemetryFaultModel(DegradationProfile profile, std::uint64_t seed);

  void record(NcclTimelineEvent ev, TelemetryStore& store);
  void record(QpRateSample s, TelemetryStore& store);
  void record(ErrCqeEvent ev, TelemetryStore& store);
  void record(SflowPathRecord r, TelemetryStore& store);
  void record(IntProbeResult r, TelemetryStore& store);
  void record(LinkCounterSample s, TelemetryStore& store);
  void record(SyslogEvent ev, TelemetryStore& store);

  /// Delivers every held-back (reordered) record. Call at end of run;
  /// ClusterRuntime does when attached.
  void flush(TelemetryStore& store);

  const DegradationProfile& profile() const { return profile_; }
  const DegradationStats& stats() const { return stats_; }
  /// The materialized outage windows (start, end), for tests/reports.
  const std::vector<std::pair<core::Seconds, core::Seconds>>& outage_windows()
      const {
    return outages_;
  }

  /// Attaches the flight recorder: outage windows become spans and
  /// counter resets instants on Track::Telemetry; flush() emits the
  /// loss counters. nullptr detaches.
  void set_tracer(obs::Tracer* tracer);

 private:
  template <typename T>
  void process(T rec, const StreamFaults& sf, std::int64_t collector,
               TelemetryStore& store, std::vector<T>& held);
  bool in_outage(core::Seconds t) const;
  core::Seconds skew_for(std::int64_t collector);

  DegradationProfile profile_;
  core::Rng rng_;
  bool passthrough_ = false;
  DegradationStats stats_;
  std::vector<std::pair<core::Seconds, core::Seconds>> outages_;
  std::unordered_map<std::int64_t, core::Seconds> skews_;
  /// Per-switch since-boot totals for the cumulative re-emission.
  struct CumTotals {
    std::uint64_t ecn = 0;
    std::uint64_t pfc = 0;
  };
  std::unordered_map<topo::LinkId, CumTotals> cum_;
  // Hold-back buffers, one per stream.
  std::vector<NcclTimelineEvent> held_nccl_;
  std::vector<QpRateSample> held_qp_;
  std::vector<ErrCqeEvent> held_cqe_;
  std::vector<SflowPathRecord> held_sflow_;
  std::vector<IntProbeResult> held_int_;
  std::vector<LinkCounterSample> held_counters_;
  std::vector<SyslogEvent> held_syslog_;
  core::Seconds last_t_ = 0.0;
  obs::Tracer* tracer_ = nullptr;
};

// ---------------------------------------------------------------------------
// Degraded-diagnosis campaign: the MTTLF campaign re-run under each
// degradation profile with the *same* per-run fault schedules, so any
// accuracy or locate-time movement is attributable to the monitoring
// plane alone. Reports the accuracy/MTTLF-inflation curve and checks the
// calibration contract (no silently-wrong confident diagnosis; every
// miss flagged).

struct DegradedCampaignConfig {
  int runs = 40;
  std::vector<std::string> profiles = {"clean", "mild", "severe", "adversarial"};
  /// Every Nth run schedules a second, concurrent taxonomy fault (the
  /// PR 2 multi-fault schedules); 0 disables.
  int multi_fault_every = 4;
  topo::FabricParams fabric;
  JobConfig job;
  std::uint64_t seed = 2024;
  /// Misses at or above this confidence count as silently wrong.
  double confident_threshold = 0.9;
  /// Below this, a wrong answer is considered self-flagged.
  double flagged_threshold = 0.5;

  DegradedCampaignConfig() {
    fabric.rails = 2;
    fabric.hosts_per_block = 8;
    fabric.blocks_per_pod = 2;
    fabric.pods = 1;
    job.hosts = 12;
    job.iterations = 6;
    job.comm_bytes = 8ull * 1024 * 1024;
  }
};

struct DegradedRunEntry {
  std::vector<RootCause> injected;  ///< All scheduled causes, in order.
  Manifestation observed = Manifestation::FailStop;
  bool detected = false;
  bool root_cause_found = false;
  /// Diagnosed cause matches an injected one (or its accepted silent
  /// twin: LinkFlap/WireConnection/OpticalFiber may read as SwitchBug).
  bool cause_correct = false;
  bool needs_manual = false;
  double confidence = 0.0;
  std::size_t evidence_gaps = 0;
  std::size_t candidates = 0;
  /// Wrong confident (>= confident_threshold) named cause: the failure
  /// mode this PR exists to prevent.
  bool silently_wrong = false;
  /// Miss that announced itself (needs_manual or confidence below the
  /// flagged threshold).
  bool flagged_miss = false;
  core::Seconds locate_time = 0.0;  ///< Incl. manual surcharge on misses.
};

struct DegradedProfileResult {
  std::string profile;
  std::vector<DegradedRunEntry> entries;
  DegradationStats stats;  ///< Aggregated over the profile's runs.

  double accuracy() const;
  core::Seconds mean_locate_time() const;
  int silently_wrong_count() const;
  /// Of the misses, the fraction that flagged themselves.
  double flagged_miss_rate() const;
  double mean_confidence() const;
};

struct DegradedCampaignResult {
  std::vector<DegradedProfileResult> profiles;

  /// MTTLF inflation of `profile` relative to the clean profile (1.0 =
  /// no inflation; requires a "clean" entry, else returns 1.0).
  double mttlf_inflation(const DegradedProfileResult& p) const;
  /// The accuracy/MTTLF-inflation curve as a deterministic JSON document.
  core::Json to_json() const;
};

/// Acceptable-cause check shared by the campaign and the property tests:
/// exact match, or the silent-twin ambiguity for link-level faults.
bool cause_acceptable(RootCause injected, RootCause diagnosed);

/// Runs the campaign. `tracer`, when given, records the first run of
/// each profile (degradation events on Track::Telemetry alongside the
/// usual workload/fault tracks).
DegradedCampaignResult run_degraded_campaign(const DegradedCampaignConfig& cfg,
                                             obs::Tracer* tracer = nullptr);

}  // namespace astral::monitor
