// Offline toolsets (§3.2 "offline testing before delivery and after
// unhandled failure"): wiring verification against the topology rules,
// host configuration consistency checks, a Hostping-style latency sweep
// and a GPU-burn-style compute stress check.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "net/fluid_sim.h"
#include "monitor/cluster_runtime.h"

namespace astral::monitor {

// ---- Wiring verification (dmidecode + ARP -> switch-port/host-slot map,
// compared with the architecture's wiring rules).

struct WiringObservation {
  topo::LinkId link = topo::kInvalidLink;
  topo::NodeId observed_src = topo::kInvalidNode;
  topo::NodeId observed_dst = topo::kInvalidNode;
};

/// Reads the as-built cabling table off a (correctly built) fabric.
std::vector<WiringObservation> collect_wiring(const topo::Fabric& fabric);

/// Simulates an on-site mistake: the far ends of two cables swapped.
void swap_wires(std::vector<WiringObservation>& wiring, std::size_t a, std::size_t b);

struct WiringMismatch {
  topo::LinkId link = topo::kInvalidLink;
  topo::NodeId expected_dst = topo::kInvalidNode;
  topo::NodeId observed_dst = topo::kInvalidNode;
};

/// Compares observations against the fabric's wiring rules.
std::vector<WiringMismatch> verify_wiring(const topo::Fabric& fabric,
                                          std::span<const WiringObservation> observed);

// ---- Config verification (nvidia-smi / NCCL logs across rented hosts).

struct ConfigMismatch {
  int host_rank = -1;
  std::string field;
  std::string value;
  std::string majority_value;
};

/// Flags hosts whose configuration deviates from the majority.
std::vector<ConfigMismatch> verify_configs(
    std::span<const ClusterRuntime::HostConfig> configs);

// ---- Hostping-style pairwise latency sweep.

struct SlowPair {
  int src_rank = -1;
  int dst_rank = -1;
  core::Seconds latency = 0.0;
};

/// Probes all ordered host pairs of the job through the fabric and flags
/// pairs whose path latency exceeds `threshold`.
std::vector<SlowPair> hostping_sweep(net::FluidSim& sim,
                                     std::span<const topo::NodeId> hosts,
                                     core::Seconds threshold);

// ---- GPU-burn-style stress result screening.

/// Flags hosts whose measured GFLOPS fall more than `fraction` below the
/// fleet median.
std::vector<int> gpu_burn_outliers(std::span<const double> gflops, double fraction = 0.1);

}  // namespace astral::monitor
