#include "monitor/degrade.h"

#include <algorithm>

#include "monitor/mttlf.h"
#include "obs/trace.h"

namespace astral::monitor {

namespace {

// Collector identities for the per-collector clock skew: each simulated
// host agent, switch scraper, and central service keeps its own clock.
constexpr std::int64_t kSflowCollector = -2;
constexpr std::int64_t kPingmeshCollector = -3;
constexpr std::int64_t kCounterCollectorBase = 1'000'000;
constexpr std::int64_t kSyslogCollectorBase = 2'000'000;

}  // namespace

bool DegradationProfile::is_clean() const {
  auto zero = [](const StreamFaults& s) {
    return s.drop_prob == 0.0 && s.duplicate_prob == 0.0 && s.reorder_prob == 0.0;
  };
  return zero(nccl) && zero(qp_rate) && zero(err_cqe) && zero(sflow) &&
         zero(int_probe) && zero(counters) && zero(syslog) && outages == 0 &&
         max_clock_skew == 0.0 && max_jitter == 0.0 &&
         sflow_truncate_prob == 0.0 && !cumulative_counters &&
         counter_reset_prob == 0.0;
}

DegradationProfile DegradationProfile::clean() {
  DegradationProfile p;
  p.name = "clean";
  return p;
}

DegradationProfile DegradationProfile::mild() {
  DegradationProfile p;
  p.name = "mild";
  // ~10% sample loss on the high-rate streams; the low-rate streams the
  // diagnosis leans on hardest (syslog, errCQE, the iteration timeline)
  // ride more reliable channels and lose less.
  StreamFaults reliable{0.05, 0.02, 0.02};
  StreamFaults sampled{0.10, 0.03, 0.03};
  p.nccl = reliable;
  p.err_cqe = reliable;
  p.syslog = reliable;
  p.qp_rate = sampled;
  p.sflow = sampled;
  p.int_probe = sampled;
  p.counters = sampled;
  p.outages = 1;
  p.outage_duration = 0.05;
  p.outage_horizon = 1.0;
  p.max_clock_skew = 0.005;
  p.max_jitter = 0.001;
  p.sflow_truncate_prob = 0.05;
  p.cumulative_counters = true;
  p.counter_reset_prob = 0.01;
  return p;
}

DegradationProfile DegradationProfile::severe() {
  DegradationProfile p;
  p.name = "severe";
  StreamFaults reliable{0.20, 0.05, 0.08};
  StreamFaults sampled{0.35, 0.10, 0.10};
  p.nccl = reliable;
  p.err_cqe = reliable;
  p.syslog = reliable;
  p.qp_rate = sampled;
  p.sflow = sampled;
  p.int_probe = sampled;
  p.counters = sampled;
  p.outages = 2;
  p.outage_duration = 0.15;
  p.outage_horizon = 1.5;
  p.max_clock_skew = 0.05;
  p.max_jitter = 0.01;
  p.sflow_truncate_prob = 0.30;
  p.cumulative_counters = true;
  p.counter_reset_prob = 0.05;
  return p;
}

DegradationProfile DegradationProfile::adversarial() {
  DegradationProfile p;
  p.name = "adversarial";
  // The monitoring plane is mostly gone and what's left lies about
  // clocks and ordering. sFlow (sampled mirrors through the most
  // overloaded path) dies first; errCQE delivery is best-effort.
  p.nccl = {0.40, 0.15, 0.20};
  p.err_cqe = {0.70, 0.20, 0.25};
  p.syslog = {0.50, 0.20, 0.25};
  p.qp_rate = {0.60, 0.20, 0.25};
  p.sflow = {0.90, 0.20, 0.25};
  p.int_probe = {0.60, 0.20, 0.25};
  p.counters = {0.60, 0.20, 0.25};
  p.outages = 3;
  p.outage_duration = 0.25;
  p.outage_horizon = 2.0;
  p.max_clock_skew = 0.2;
  p.max_jitter = 0.05;
  p.sflow_truncate_prob = 0.60;
  p.cumulative_counters = true;
  p.counter_reset_prob = 0.15;
  return p;
}

std::optional<DegradationProfile> DegradationProfile::by_name(
    std::string_view name) {
  if (name == "clean") return clean();
  if (name == "mild") return mild();
  if (name == "severe") return severe();
  if (name == "adversarial") return adversarial();
  return std::nullopt;
}

const std::vector<std::string>& DegradationProfile::names() {
  static const std::vector<std::string> all = {"clean", "mild", "severe",
                                               "adversarial"};
  return all;
}

TelemetryFaultModel::TelemetryFaultModel(DegradationProfile profile,
                                         std::uint64_t seed)
    : profile_(std::move(profile)), rng_(seed) {
  passthrough_ = profile_.is_clean();
  for (int i = 0; i < profile_.outages; ++i) {
    core::Seconds start = rng_.uniform(0.0, profile_.outage_horizon);
    outages_.emplace_back(start, start + profile_.outage_duration);
  }
  std::sort(outages_.begin(), outages_.end());
}

void TelemetryFaultModel::set_tracer(obs::Tracer* tracer) {
  tracer_ = tracer;
  if (!tracer_) return;
  for (const auto& [start, end] : outages_) {
    tracer_->span(obs::Track::Telemetry, "telemetry.outage", start, end - start);
  }
}

bool TelemetryFaultModel::in_outage(core::Seconds t) const {
  for (const auto& [start, end] : outages_) {
    if (t >= start && t < end) return true;
  }
  return false;
}

core::Seconds TelemetryFaultModel::skew_for(std::int64_t collector) {
  if (profile_.max_clock_skew <= 0.0) return 0.0;
  auto it = skews_.find(collector);
  if (it != skews_.end()) return it->second;
  core::Seconds skew =
      rng_.uniform(-profile_.max_clock_skew, profile_.max_clock_skew);
  skews_.emplace(collector, skew);
  return skew;
}

template <typename T>
void TelemetryFaultModel::process(T rec, const StreamFaults& sf,
                                  std::int64_t collector, TelemetryStore& store,
                                  std::vector<T>& held) {
  last_t_ = std::max(last_t_, rec.t);
  if (in_outage(rec.t)) {
    ++stats_.outage_dropped;
    return;
  }
  if (sf.drop_prob > 0.0 && rng_.chance(sf.drop_prob)) {
    ++stats_.dropped;
    return;
  }
  rec.t += skew_for(collector);
  if (profile_.max_jitter > 0.0) {
    rec.t += rng_.uniform(-profile_.max_jitter, profile_.max_jitter);
  }
  bool dup = sf.duplicate_prob > 0.0 && rng_.chance(sf.duplicate_prob);
  if (sf.reorder_prob > 0.0 && rng_.chance(sf.reorder_prob)) {
    // Held back: delivered after the next record of this stream (or at
    // flush) — a pairwise inversion, the common collector-batch case.
    ++stats_.reordered;
    if (dup) {
      ++stats_.duplicated;
      held.push_back(rec);
    }
    held.push_back(std::move(rec));
    return;
  }
  store.record(rec);
  ++stats_.delivered;
  if (dup) {
    ++stats_.duplicated;
    store.record(rec);
  }
  if (!held.empty()) {
    for (auto& h : held) {
      store.record(std::move(h));
      ++stats_.delivered;
    }
    held.clear();
  }
}

void TelemetryFaultModel::record(NcclTimelineEvent ev, TelemetryStore& store) {
  if (passthrough_) return store.record(ev);
  process(ev, profile_.nccl, ev.host_rank, store, held_nccl_);
}

void TelemetryFaultModel::record(QpRateSample s, TelemetryStore& store) {
  if (passthrough_) return store.record(s);
  process(s, profile_.qp_rate, static_cast<std::int64_t>(s.qp), store, held_qp_);
}

void TelemetryFaultModel::record(ErrCqeEvent ev, TelemetryStore& store) {
  if (passthrough_) return store.record(std::move(ev));
  std::int64_t collector = ev.host_rank;
  process(std::move(ev), profile_.err_cqe, collector, store, held_cqe_);
}

void TelemetryFaultModel::record(SflowPathRecord r, TelemetryStore& store) {
  if (passthrough_) return store.record(std::move(r));
  if (profile_.sflow_truncate_prob > 0.0 && r.path.size() >= 2 &&
      rng_.chance(profile_.sflow_truncate_prob)) {
    // The mirrors past the cut never reached the collector; the
    // reconstruction ends mid-fabric.
    std::size_t keep = 1 + static_cast<std::size_t>(
                               rng_.uniform_int(r.path.size() - 1));
    r.path.resize(keep);
    ++stats_.truncated;
  }
  process(std::move(r), profile_.sflow, kSflowCollector, store, held_sflow_);
}

void TelemetryFaultModel::record(IntProbeResult r, TelemetryStore& store) {
  if (passthrough_) return store.record(std::move(r));
  process(std::move(r), profile_.int_probe, kPingmeshCollector, store, held_int_);
}

void TelemetryFaultModel::record(LinkCounterSample s, TelemetryStore& store) {
  if (passthrough_) return store.record(s);
  if (profile_.cumulative_counters) {
    auto& c = cum_[s.link];
    if (profile_.counter_reset_prob > 0.0 &&
        rng_.chance(profile_.counter_reset_prob)) {
      // Switch reboot: since-boot totals restart at this interval.
      c = {};
      ++stats_.counter_resets;
      if (tracer_) {
        obs::TraceKeys k;
        k.link = static_cast<std::int64_t>(s.link);
        tracer_->instant(obs::Track::Telemetry, "telemetry.counter_reset", s.t, k);
      }
    }
    c.ecn += s.ecn_marks;
    c.pfc += s.pfc_pauses;
    s.ecn_marks = c.ecn;
    s.pfc_pauses = c.pfc;
    s.cumulative = true;
  }
  process(s, profile_.counters,
          kCounterCollectorBase + static_cast<std::int64_t>(s.link), store,
          held_counters_);
}

void TelemetryFaultModel::record(SyslogEvent ev, TelemetryStore& store) {
  if (passthrough_) return store.record(std::move(ev));
  std::int64_t collector = kSyslogCollectorBase + static_cast<std::int64_t>(ev.node);
  process(std::move(ev), profile_.syslog, collector, store, held_syslog_);
}

void TelemetryFaultModel::flush(TelemetryStore& store) {
  auto drain = [&](auto& held) {
    for (auto& h : held) {
      store.record(std::move(h));
      ++stats_.delivered;
    }
    held.clear();
  };
  drain(held_nccl_);
  drain(held_qp_);
  drain(held_cqe_);
  drain(held_sflow_);
  drain(held_int_);
  drain(held_counters_);
  drain(held_syslog_);
  if (tracer_) {
    tracer_->counter(obs::Track::Telemetry, "telemetry.dropped", last_t_,
                     static_cast<double>(stats_.dropped + stats_.outage_dropped));
    tracer_->counter(obs::Track::Telemetry, "telemetry.delivered", last_t_,
                     static_cast<double>(stats_.delivered));
  }
}

// ---------------------------------------------------------------------------
// Degraded-diagnosis campaign.

bool cause_acceptable(RootCause injected, RootCause diagnosed) {
  if (injected == diagnosed) return true;
  // The silent-twin ambiguity the property tests accept: a flapping /
  // miswired / dimming link and a buggy switch present identically when
  // the only witness is the counters on the shared hop.
  if (injected == RootCause::LinkFlap || injected == RootCause::WireConnection ||
      injected == RootCause::OpticalFiber) {
    return diagnosed == RootCause::SwitchBug;
  }
  return false;
}

double DegradedProfileResult::accuracy() const {
  if (entries.empty()) return 0.0;
  int ok = 0;
  for (const auto& e : entries) ok += e.cause_correct ? 1 : 0;
  return static_cast<double>(ok) / static_cast<double>(entries.size());
}

core::Seconds DegradedProfileResult::mean_locate_time() const {
  if (entries.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& e : entries) sum += e.locate_time;
  return sum / static_cast<double>(entries.size());
}

int DegradedProfileResult::silently_wrong_count() const {
  int n = 0;
  for (const auto& e : entries) n += e.silently_wrong ? 1 : 0;
  return n;
}

double DegradedProfileResult::flagged_miss_rate() const {
  int misses = 0;
  int flagged = 0;
  for (const auto& e : entries) {
    if (e.cause_correct) continue;
    ++misses;
    flagged += e.flagged_miss ? 1 : 0;
  }
  return misses > 0 ? static_cast<double>(flagged) / static_cast<double>(misses)
                    : 1.0;
}

double DegradedProfileResult::mean_confidence() const {
  if (entries.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& e : entries) sum += e.confidence;
  return sum / static_cast<double>(entries.size());
}

double DegradedCampaignResult::mttlf_inflation(
    const DegradedProfileResult& p) const {
  for (const auto& base : profiles) {
    if (base.profile == "clean") {
      core::Seconds clean_t = base.mean_locate_time();
      return clean_t > 0.0 ? p.mean_locate_time() / clean_t : 1.0;
    }
  }
  return 1.0;
}

core::Json DegradedCampaignResult::to_json() const {
  core::Json doc = core::Json::object();
  core::Json rows = core::Json::array();
  for (const auto& p : profiles) {
    core::Json row = core::Json::object();
    row["profile"] = p.profile;
    row["runs"] = static_cast<std::int64_t>(p.entries.size());
    row["accuracy"] = p.accuracy();
    row["mean_locate_time_s"] = p.mean_locate_time();
    row["mttlf_inflation"] = mttlf_inflation(p);
    row["mean_confidence"] = p.mean_confidence();
    row["silently_wrong"] = static_cast<std::int64_t>(p.silently_wrong_count());
    row["flagged_miss_rate"] = p.flagged_miss_rate();
    core::Json stats = core::Json::object();
    stats["delivered"] = p.stats.delivered;
    stats["dropped"] = p.stats.dropped;
    stats["outage_dropped"] = p.stats.outage_dropped;
    stats["duplicated"] = p.stats.duplicated;
    stats["reordered"] = p.stats.reordered;
    stats["truncated"] = p.stats.truncated;
    stats["counter_resets"] = p.stats.counter_resets;
    row["telemetry"] = std::move(stats);
    rows.push_back(std::move(row));
  }
  doc["profiles"] = std::move(rows);
  return doc;
}

DegradedCampaignResult run_degraded_campaign(const DegradedCampaignConfig& cfg,
                                             obs::Tracer* tracer) {
  DegradedCampaignResult result;

  // The fault plan is drawn once, before any profile runs: every profile
  // replays the exact same schedules, so curve movement is attributable
  // to the monitoring plane alone.
  struct PlannedFault {
    RootCause cause;
    Manifestation m;
    int at_iter;
  };
  std::vector<std::vector<PlannedFault>> plans;
  core::Rng plan_rng(cfg.seed);
  for (int i = 0; i < cfg.runs; ++i) {
    int nfaults =
        cfg.multi_fault_every > 0 && (i + 1) % cfg.multi_fault_every == 0 ? 2 : 1;
    std::vector<PlannedFault> plan;
    for (int k = 0; k < nfaults; ++k) {
      RootCause cause = sample_root_cause(plan_rng);
      Manifestation m = sample_manifestation(cause, plan_rng);
      int at_iter =
          m == Manifestation::FailOnStart
              ? 0
              : 1 + static_cast<int>(plan_rng.uniform_int(static_cast<std::uint64_t>(
                        std::max(1, cfg.job.iterations - 2))));
      plan.push_back({cause, m, at_iter});
    }
    plans.push_back(std::move(plan));
  }

  for (const std::string& name : cfg.profiles) {
    auto profile = DegradationProfile::by_name(name);
    if (!profile) continue;
    topo::Fabric fabric(cfg.fabric);
    DegradedProfileResult pres;
    pres.profile = name;

    for (int i = 0; i < cfg.runs; ++i) {
      ClusterRuntime runtime(fabric, cfg.job,
                             cfg.seed + static_cast<std::uint64_t>(i));
      TelemetryFaultModel model(
          *profile, cfg.seed ^ (0xD15EA5Eull + static_cast<std::uint64_t>(i) *
                                                   1315423911ull));
      if (tracer && i == 0) {
        model.set_tracer(tracer);
        runtime.set_tracer(tracer);
      }
      runtime.set_telemetry_faults(&model);

      FaultSchedule schedule;
      for (const PlannedFault& f : plans[static_cast<std::size_t>(i)]) {
        schedule.add(runtime.make_fault(f.cause, f.m, f.at_iter));
      }
      runtime.inject(schedule);
      RunOutcome outcome = runtime.run();

      AnalyzerConfig acfg;
      // The operator knows the plane's NTP bound and configures the
      // analyzer's tolerance to it.
      acfg.clock_skew_tolerance = profile->max_clock_skew + profile->max_jitter;
      HierarchicalAnalyzer analyzer(runtime.telemetry(), fabric.topo(),
                                    runtime.expected_compute(),
                                    runtime.expected_comm(), acfg);
      Diagnosis d = analyzer.diagnose();

      DegradedRunEntry e;
      for (const PlannedFault& f : plans[static_cast<std::size_t>(i)]) {
        e.injected.push_back(f.cause);
      }
      e.observed =
          outcome.observed.value_or(plans[static_cast<std::size_t>(i)][0].m);
      e.detected = d.anomaly_detected;
      e.root_cause_found = d.root_cause_found;
      if (d.root_cause_found && d.root_cause) {
        for (const PlannedFault& f : plans[static_cast<std::size_t>(i)]) {
          e.cause_correct |= cause_acceptable(f.cause, *d.root_cause);
        }
      }
      e.needs_manual = d.needs_manual;
      e.confidence = d.confidence;
      e.evidence_gaps = d.evidence_gaps.size();
      e.candidates = d.candidates.size();
      // Degradation can wipe every witness of the fault: the analyzer
      // reads the surviving records as a healthy run. The job itself
      // still reports its death (application-level detection is the
      // training framework, not the plane), so an empty-handed analyzer
      // on a failed run is an automatic manual escalation, never a
      // silent clean bill.
      bool job_failed = outcome.observed.has_value() || !outcome.completed;
      if (job_failed && !d.anomaly_detected) {
        e.needs_manual = true;
        e.confidence = 0.0;
      }
      e.silently_wrong = d.root_cause_found && !e.cause_correct &&
                         e.confidence >= cfg.confident_threshold;
      e.flagged_miss = !e.cause_correct &&
                       (e.needs_manual || e.confidence < cfg.flagged_threshold);
      e.locate_time = d.locate_time;
      if (!d.root_cause_found) {
        // A dead-ended automation hands its evidence to a human; the
        // surcharge draw is seeded per run so profiles stay comparable.
        core::Rng manual_rng(cfg.seed ^
                             (0xABCDull + static_cast<std::uint64_t>(i) *
                                              2654435761ull));
        e.locate_time +=
            0.3 * manual_locate_time(plans[static_cast<std::size_t>(i)][0].cause,
                                     e.observed, cfg.job.hosts, manual_rng);
      }

      const DegradationStats& s = model.stats();
      pres.stats.delivered += s.delivered;
      pres.stats.dropped += s.dropped;
      pres.stats.outage_dropped += s.outage_dropped;
      pres.stats.duplicated += s.duplicated;
      pres.stats.reordered += s.reordered;
      pres.stats.truncated += s.truncated;
      pres.stats.counter_resets += s.counter_resets;
      pres.entries.push_back(std::move(e));
    }
    result.profiles.push_back(std::move(pres));
  }
  return result;
}

}  // namespace astral::monitor
