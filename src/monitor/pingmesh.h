// INT-armed pingmesh (§3.2, network layer; after Guo et al. SIGCOMM'15
// and R-Pingmesh): a proactive service that periodically probes host
// pairs with INT-instrumented pings, records hop-by-hop latency into the
// telemetry store, and surfaces hotspot links without waiting for a
// training job to notice. Complements the passive sFlow reconstruction.
#pragma once

#include <span>
#include <vector>

#include "monitor/store.h"
#include "net/fluid_sim.h"
#include "topo/topology.h"

namespace astral::monitor {

struct PingmeshConfig {
  int fanout = 8;  ///< Peers probed per host per sweep (log-ish set).
  core::Seconds hotspot_threshold = core::usec(50.0);
};

class IntPingmesh {
 public:
  using Config = PingmeshConfig;

  /// Probes travel through the given simulator's current network state;
  /// hosts are the probe endpoints (typically one agent per server).
  IntPingmesh(net::FluidSim& sim, std::span<const topo::NodeId> hosts, Config cfg = {});

  /// One probe round at the simulator's current time. Every host pings
  /// `fanout` deterministic peers (strided, so sweeps jointly cover all
  /// pairs); each probe is recorded into `store` as an IntProbeResult.
  /// Returns the number of probes sent.
  int sweep(TelemetryStore& store);

  struct Hotspot {
    topo::LinkId link = topo::kInvalidLink;
    core::Seconds latency = 0.0;
  };
  /// Links whose per-hop latency exceeded the threshold in the latest
  /// sweep, worst first.
  std::span<const Hotspot> hotspots() const { return hotspots_; }

  /// End-to-end latency of the probed pair from the latest sweep; <0 when
  /// the pair was not covered or unroutable.
  core::Seconds pair_latency(int src_index, int dst_index) const;

 private:
  net::FluidSim& sim_;
  std::vector<topo::NodeId> hosts_;
  Config cfg_;
  int sweep_count_ = 0;
  std::vector<Hotspot> hotspots_;
  std::vector<std::vector<core::Seconds>> latency_;  // [src][dst], -1 unknown
};

/// Fallback path inference for a QP whose sFlow reconstruction is missing
/// (sampled mirrors lost, collector restarted): among the recorded INT
/// probe paths, picks the newest one that leaves the QP's source host,
/// preferring one that also terminates at its destination host — the
/// pingmesh probes ride the same ECMP fabric, so a matching probe is the
/// best available stand-in for the flow's own path. Returns empty when no
/// probe ties the endpoints together.
std::vector<topo::LinkId> infer_path_from_probes(const TelemetryStore& store,
                                                 const QpMeta& meta,
                                                 const topo::Topology& topo);

}  // namespace astral::monitor
