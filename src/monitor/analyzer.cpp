#include "monitor/analyzer.h"

#include <algorithm>
#include <map>

#include "core/math.h"
#include "monitor/pingmesh.h"

namespace astral::monitor {

HierarchicalAnalyzer::HierarchicalAnalyzer(const TelemetryStore& store,
                                           const topo::Topology& topo,
                                           core::Seconds expected_compute,
                                           core::Seconds expected_comm, AnalyzerConfig cfg,
                                           DetectorRegistry detectors)
    : store_(store),
      topo_(topo),
      expected_compute_(expected_compute),
      expected_comm_(expected_comm),
      cfg_(cfg),
      detectors_(std::move(detectors)) {}

std::optional<RootCause> HierarchicalAnalyzer::cause_from_syslog(
    const SyslogEvent& ev) const {
  return detectors_.match(ev);
}

std::optional<Detection> HierarchicalAnalyzer::detection_from_syslog(
    const SyslogEvent& ev) const {
  return detectors_.detect(ev);
}

Manifestation HierarchicalAnalyzer::classify_manifestation(int last_iter,
                                                           Diagnosis& d) const {
  auto events = store_.iteration_events(last_iter);
  bool stalled = false;
  for (const auto& ev : events) stalled |= ev.comm_time < 0;

  if (stalled) {
    if (last_iter == 0) {
      for (const auto& ev : store_.syslog()) {
        if (ev.message.find("init") != std::string::npos) {
          d.evidence.push_back("app: job aborted during initialization");
          return Manifestation::FailOnStart;
        }
      }
    }
    if (!store_.err_cqes().empty()) {
      d.evidence.push_back("app: abrupt termination with transport errors");
      return Manifestation::FailStop;
    }
    for (const auto& ev : store_.syslog()) {
      if (ev.severity == "fatal") {
        d.evidence.push_back("app: abrupt termination with fatal device log");
        return Manifestation::FailStop;
      }
    }
    d.evidence.push_back("app: progress stagnated without termination or error logs");
    return Manifestation::FailHang;
  }

  // Completed: compare against the Seer-forecast thresholds.
  for (int iter = 0; iter <= last_iter; ++iter) {
    for (const auto& ev : store_.iteration_events(iter)) {
      if (ev.comm_time > cfg_.comm_slow_factor * expected_comm_ ||
          ev.compute_time > cfg_.compute_slow_factor * expected_compute_) {
        d.evidence.push_back("app: iteration time exceeds Seer forecast threshold");
        return Manifestation::FailSlow;
      }
    }
  }
  return Manifestation::FailSlow;  // caller guards: only reached when anomaly
}

void HierarchicalAnalyzer::branch_computation(int last_iter, Diagnosis& d) const {
  d.locate_time += cfg_.step_cross_host;
  auto events = store_.iteration_events(last_iter);

  // Horizontal comparison: compute-time outliers and ranks that never
  // issued their work request.
  std::vector<double> compute_times;
  for (const auto& ev : events) compute_times.push_back(ev.compute_time);
  auto z = core::zscores(compute_times);
  for (std::size_t i = 0; i < events.size(); ++i) {
    bool slow_outlier = z[i] > cfg_.compute_zscore &&
                        events[i].compute_time > 1.25 * expected_compute_;
    if (slow_outlier || events[i].wr_started == 0) {
      d.culprit_hosts.push_back(events[i].host_rank);
    }
  }
  // Slow-host check across all iterations (fail-slow compute).
  if (d.culprit_hosts.empty()) {
    std::map<int, std::vector<double>> per_host;
    for (const auto& ev : store_.nccl_timeline()) {
      per_host[ev.host_rank].push_back(ev.compute_time);
    }
    std::vector<double> means;
    std::vector<int> ranks;
    for (auto& [rank, xs] : per_host) {
      ranks.push_back(rank);
      means.push_back(core::mean(xs));
    }
    auto mz = core::zscores(means);
    for (std::size_t i = 0; i < ranks.size(); ++i) {
      if (mz[i] > cfg_.compute_zscore && means[i] > 1.25 * expected_compute_) {
        d.culprit_hosts.push_back(ranks[i]);
      }
    }
  }

  d.locate_time += cfg_.step_physical;
  if (d.culprit_hosts.size() == 1) {
    int host = d.culprit_hosts.front();
    d.evidence.push_back("cross-host: rank " + std::to_string(host) + " is the outlier");
    auto host_logs = store_.host_syslog(host);
    for (const auto& log : host_logs) {
      if (auto det = detection_from_syslog(log)) {
        d.root_cause = det->cause;
        d.root_cause_found = true;
        d.confidence = det->confidence;
        d.evidence.push_back("physical: matched log '" + log.message + "'");
        if (det->cause == RootCause::UserCode) d.needs_manual = true;
        return;
      }
    }
    // Outlier identified but no physical log: suspected software stack.
    // A lossy syslog collector is indistinguishable from genuinely clean
    // hardware here, so this stays a ranked guess, never a confident one.
    if (host_logs.empty()) {
      d.evidence_gaps.push_back(
          "syslog: no device log at all from outlier rank " + std::to_string(host) +
          " (collector outage?)");
    }
    d.root_cause = RootCause::CclBug;
    d.root_cause_found = false;
    d.needs_manual = true;
    d.confidence = 0.4;
    d.candidates = {{RootCause::CclBug, 0.4},
                    {RootCause::UserCode, 0.3},
                    {RootCause::HostEnvConfig, 0.3}};
    d.evidence.push_back("physical: no device log on outlier; suspected software, alarm");
    return;
  }
  if (d.culprit_hosts.size() > 1) {
    // Multiple devices: empirically software or user code (§3.3).
    for (const auto& log : store_.syslog()) {
      if (auto cause = cause_from_syslog(log); cause == RootCause::UserCode) {
        d.root_cause = RootCause::UserCode;
        d.root_cause_found = true;
        d.needs_manual = true;
        d.confidence = 0.95;
        d.evidence.push_back("physical: user-code exception on multiple ranks, alarm");
        return;
      }
    }
    d.root_cause = RootCause::CclBug;
    d.root_cause_found = false;
    d.needs_manual = true;
    d.confidence = 0.4;
    d.candidates = {{RootCause::UserCode, 0.4},
                    {RootCause::CclBug, 0.35},
                    {RootCause::HostEnvConfig, 0.25}};
    d.evidence.push_back("physical: multi-host anomaly without device logs, alarm");
    return;
  }
  // Compute anomaly flagged but cross-host comparison found no outlier —
  // the per-rank timeline is too thin (lost samples) to localize.
  d.evidence_gaps.push_back(
      "nccl: compute anomaly without a cross-host outlier; timeline too sparse");
  d.needs_manual = true;
  d.confidence = 0.3;
  d.candidates = {{RootCause::GpuHardware, 0.35},
                  {RootCause::CclBug, 0.35},
                  {RootCause::UserCode, 0.3}};
  d.evidence.push_back("cross-host: no outlier rank identified, alarm");
}

void HierarchicalAnalyzer::physical_drilldown(topo::LinkId culprit, Diagnosis& d,
                                              double path_conf) const {
  d.locate_time += cfg_.step_physical;
  d.culprit_links.push_back(culprit);
  const auto& link = topo_.link(culprit);

  // Switch internal metrics: PFC pauses / MOD drops around the culprit.
  std::uint64_t pfc = 0;
  for (topo::LinkId up : topo_.in_links(link.src)) pfc += store_.total_pfc(up);
  std::uint64_t drops = 0;
  for (const auto& s : store_.link_counters()) {
    if (s.link == culprit) drops += s.mod_drops;
  }

  // Syslog at either end of the link.
  for (topo::NodeId node : {link.src, link.dst}) {
    for (const auto& log : store_.node_syslog(node)) {
      if (auto det = detection_from_syslog(log)) {
        d.root_cause = det->cause;
        d.root_cause_found = true;
        d.confidence = det->confidence * path_conf;
        d.evidence.push_back("physical: switch/host log '" + log.message + "'");
        if (det->cause == RootCause::PcieDegrade) {
          // The culprit is the host behind the degraded downlink.
          if (log.host_rank >= 0) d.culprit_hosts.push_back(log.host_rank);
        }
        return;
      }
    }
  }

  if (drops > 0) {
    d.root_cause = RootCause::SwitchBug;
    d.root_cause_found = true;
    d.confidence = 0.85 * path_conf;
    d.evidence.push_back("physical: MOD reports drops with no error log -> switch bug");
    return;
  }
  // A switch-to-switch link persistently congested/queueing with clean
  // configuration logs is a silent switch malfunction. Host-adjacent
  // links stay unresolved here: the cause lives inside the host and
  // needs a deeper physical layer (the PCIe lesson of Section 5).
  bool touches_host = topo_.node(link.src).kind == topo::NodeKind::Host ||
                      topo_.node(link.dst).kind == topo::NodeKind::Host;
  if (!touches_host && store_.total_ecn(culprit) > 0) {
    // Counter-only attribution: no log names the device, so the queueing
    // could equally be collateral from a config rollout we never saw.
    d.root_cause = RootCause::SwitchBug;
    d.root_cause_found = true;
    d.confidence = 0.7 * path_conf;
    d.candidates = {{RootCause::SwitchBug, 0.7}, {RootCause::SwitchConfig, 0.3}};
    d.evidence.push_back(
        "physical: persistent queueing, clean config/optics logs -> suspected switch bug");
    return;
  }
  if (pfc >= cfg_.pfc_storm_threshold) {
    // PFC storm with no further physical evidence: congestion located,
    // but the root cause behind it is invisible (the §5 PCIe incident
    // before PCIe monitoring existed).
    d.evidence.push_back("physical: PFC storm at switch; no deeper counters available");
    d.evidence_gaps.push_back(
        "physical: no counters below the PFC layer at the storm's epicenter");
    d.root_cause_found = false;
    d.needs_manual = true;
    d.confidence = 0.4 * path_conf;
    d.candidates = {{RootCause::PcieDegrade, 0.5},
                    {RootCause::SwitchConfig, 0.3},
                    {RootCause::SwitchBug, 0.2}};
    return;
  }
  d.root_cause_found = false;
  d.needs_manual = true;
  d.confidence = 0.3 * path_conf;
  d.evidence_gaps.push_back(
      "physical: localized link " + std::to_string(culprit) +
      " has no corroborating counters or logs");
  d.candidates = {{RootCause::LinkFlap, 0.3},
                  {RootCause::WireConnection, 0.25},
                  {RootCause::OpticalFiber, 0.25},
                  {RootCause::SwitchBug, 0.2}};
  d.evidence.push_back("physical: no counters or logs implicate a device, alarm");
}

void HierarchicalAnalyzer::branch_communication(int last_iter, Diagnosis& d) const {
  d.locate_time += cfg_.step_transport;

  // errCQE-led path overlap (network device failures hit many flows).
  if (!store_.err_cqes().empty()) {
    std::map<topo::LinkId, int> overlap;
    int paths = 0;
    int missing = 0;
    for (const auto& err : store_.err_cqes()) {
      auto path = store_.path_of(err.qp);
      if (path.empty()) {
        ++missing;
        continue;
      }
      ++paths;
      for (topo::LinkId l : path) ++overlap[l];
    }
    d.evidence.push_back("transport: " + std::to_string(store_.err_cqes().size()) +
                         " errCQE events; overlapping " + std::to_string(paths) +
                         " sFlow paths");
    d.locate_time += cfg_.step_network;
    // Fallback rung 1: every erred QP lost its sFlow reconstruction
    // (sampled mirrors dropped, collector down). The INT pingmesh rides
    // the same fabric, so its probe paths stand in for the flows' own —
    // weaker (ECMP may hash the flow elsewhere), hence the discount.
    double path_conf = 1.0;
    if (paths == 0) {
      d.evidence_gaps.push_back(
          "sflow: no reconstructed path for any of the " +
          std::to_string(missing) + " erred QPs");
      int inferred = 0;
      for (const auto& err : store_.err_cqes()) {
        auto meta = store_.qp_meta(err.qp);
        if (!meta) continue;
        auto path = infer_path_from_probes(store_, *meta, topo_);
        if (path.empty()) continue;
        ++inferred;
        for (topo::LinkId l : path) ++overlap[l];
      }
      if (inferred > 0) {
        path_conf = 0.75;
        paths = inferred;
        d.evidence.push_back("network: sFlow paths lost; substituted " +
                             std::to_string(inferred) +
                             " INT pingmesh probe paths");
      } else {
        d.evidence_gaps.push_back(
            "pingmesh: no probe shares a source host with the erred QPs");
      }
    } else if (missing > 0) {
      d.evidence_gaps.push_back("sflow: path missing for " + std::to_string(missing) +
                                " of " + std::to_string(missing + paths) +
                                " erred QPs");
      // Partial loss thins the overlap vote but the surviving paths are
      // still first-class evidence; discount mildly.
      path_conf = 0.9;
    }
    int best_count = 0;
    for (const auto& [l, n] : overlap) best_count = std::max(best_count, n);
    std::vector<topo::LinkId> candidates;
    for (const auto& [l, n] : overlap) {
      if (n == best_count) candidates.push_back(l);
    }
    std::sort(candidates.begin(), candidates.end());
    if (candidates.size() == 1 && best_count >= std::max(1, paths / 2)) {
      d.evidence.push_back("network: paths overlap at link " +
                           std::to_string(candidates.front()));
      physical_drilldown(candidates.front(), d, path_conf);
      return;
    }
    if (!candidates.empty()) {
      // A single affected path cannot be disambiguated by overlap alone;
      // refine with INT per-hop latency, then MOD drop counters.
      topo::LinkId refined = topo::kInvalidLink;
      double worst = cfg_.hop_latency_threshold;
      for (const auto& probe : store_.int_probes()) {
        for (std::size_t h = 0; h < probe.path.size(); ++h) {
          bool candidate = std::binary_search(candidates.begin(), candidates.end(),
                                              probe.path[h]);
          if (candidate && probe.hop_latency[h] > worst) {
            worst = probe.hop_latency[h];
            refined = probe.path[h];
          }
        }
      }
      if (refined == topo::kInvalidLink) {
        for (const auto& s : store_.link_counters()) {
          if (s.mod_drops > 0 &&
              std::binary_search(candidates.begin(), candidates.end(), s.link)) {
            refined = s.link;
            break;
          }
        }
      }
      if (refined != topo::kInvalidLink) {
        d.evidence.push_back("network: INT/MOD refine the error paths to link " +
                             std::to_string(refined));
        physical_drilldown(refined, d, 0.85 * path_conf);
        return;
      }
    }
  }

  // QP-rate-led INT drilldown. Fallback rung 2: when the run stalled
  // outright yet the errCQE stream is silent, the transport layer's
  // primary witness was lost (collector outage) and the rate heuristics
  // below carry its weight — at a discount, they see symptoms, not the
  // NIC's own verdict.
  bool stalled_last = false;
  for (const auto& ev : store_.iteration_events(last_iter)) {
    stalled_last |= ev.comm_time < 0;
  }
  double rate_conf = 1.0;
  if (stalled_last && store_.err_cqes().empty()) {
    rate_conf = 0.8;
    d.evidence_gaps.push_back(
        "errcqe: run stalled but transport reported no errCQE; rate heuristics only");
  }
  auto events = store_.iteration_events(last_iter);
  std::vector<QpId> slow_qps;
  for (const auto& ev : events) {
    QpId qp = static_cast<QpId>(ev.host_rank);
    double rate =
        store_.mean_qp_rate(qp, ev.t - cfg_.clock_skew_tolerance, ev.t + 1e9);
    bool never_finished = ev.comm_time < 0;
    if ((rate > 0 && rate < cfg_.qp_rate_fraction * cfg_.link_bw) ||
        (never_finished && ev.wr_started > 0)) {
      slow_qps.push_back(qp);
    }
  }
  if (slow_qps.empty()) {
    // Look across all iterations for transient slowness (e.g. a flap).
    for (const auto& ev : store_.nccl_timeline()) {
      if (ev.comm_time > cfg_.comm_slow_factor * expected_comm_) {
        slow_qps.push_back(static_cast<QpId>(ev.host_rank));
      }
    }
    std::sort(slow_qps.begin(), slow_qps.end());
    slow_qps.erase(std::unique(slow_qps.begin(), slow_qps.end()), slow_qps.end());
  }
  if (slow_qps.empty()) {
    d.needs_manual = true;
    d.confidence = 0.3;
    d.evidence_gaps.push_back(
        "qp-rates: no per-QP rate anomaly recorded for an anomalous run");
    d.candidates = {{RootCause::NicError, 0.3},
                    {RootCause::LinkFlap, 0.25},
                    {RootCause::SwitchBug, 0.25},
                    {RootCause::CclBug, 0.2}};
    d.evidence.push_back("transport: no abnormal QP found, alarm");
    return;
  }
  d.evidence.push_back("transport: " + std::to_string(slow_qps.size()) +
                       " QPs below 50% of link bandwidth");

  d.locate_time += cfg_.step_network;
  // INT per-hop latency over the slow QPs' paths. Lost sFlow paths are
  // backfilled from pingmesh probes so the INT drilldown still has a
  // footprint to walk (rung 1 again, on the slow-QP side).
  topo::LinkId worst_link = topo::kInvalidLink;
  double worst_latency = 0.0;
  std::map<topo::LinkId, int> on_slow_paths;
  int missing_slow_paths = 0;
  for (QpId qp : slow_qps) {
    auto path = store_.path_of(qp);
    if (path.empty()) {
      ++missing_slow_paths;
      if (auto meta = store_.qp_meta(qp)) {
        path = infer_path_from_probes(store_, *meta, topo_);
      }
      if (!path.empty()) rate_conf = std::min(rate_conf, 0.75);
    }
    for (topo::LinkId l : path) ++on_slow_paths[l];
  }
  if (missing_slow_paths > 0) {
    d.evidence_gaps.push_back("sflow: path missing for " +
                              std::to_string(missing_slow_paths) + " of " +
                              std::to_string(slow_qps.size()) + " slow QPs");
  }
  for (const auto& probe : store_.int_probes()) {
    for (std::size_t h = 0; h < probe.path.size(); ++h) {
      if (!on_slow_paths.contains(probe.path[h])) continue;
      if (probe.hop_latency[h] > worst_latency) {
        worst_latency = probe.hop_latency[h];
        worst_link = probe.path[h];
      }
    }
  }
  if (worst_link != topo::kInvalidLink && worst_latency > cfg_.hop_latency_threshold) {
    d.evidence.push_back("network: INT hop latency " +
                         std::to_string(worst_latency * 1e6) + "us at link " +
                         std::to_string(worst_link));
    physical_drilldown(worst_link, d, rate_conf);
    return;
  }
  // No latency spike: a blackhole drops silently; find the slow-path
  // link with MOD drops, else overlap the slow paths.
  for (const auto& s : store_.link_counters()) {
    if (s.mod_drops > 0 && on_slow_paths.contains(s.link)) {
      d.evidence.push_back("network: MOD drops on slow path at link " +
                           std::to_string(s.link));
      physical_drilldown(s.link, d, rate_conf);
      return;
    }
  }
  topo::LinkId best = topo::kInvalidLink;
  int best_count = 0;
  for (const auto& [l, n] : on_slow_paths) {
    if (n > best_count) {
      best = l;
      best_count = n;
    }
  }
  if (best != topo::kInvalidLink && best_count > 1) {
    d.evidence.push_back("network: slow paths overlap at link " + std::to_string(best));
    physical_drilldown(best, d, 0.85 * rate_conf);
    return;
  }
  d.needs_manual = true;
  d.confidence = 0.3;
  d.evidence_gaps.push_back(
      "int: no probe crossed the slow paths and no counter implicates a hop");
  d.candidates = {{RootCause::LinkFlap, 0.3},
                  {RootCause::SwitchBug, 0.25},
                  {RootCause::NicError, 0.25},
                  {RootCause::SwitchConfig, 0.2}};
  d.evidence.push_back("network: no culprit hop identified, alarm");
}

Diagnosis HierarchicalAnalyzer::diagnose() const {
  Diagnosis d;
  d.locate_time += cfg_.step_application;
  int last_iter = store_.last_iteration();
  if (last_iter < 0) return d;

  auto events = store_.iteration_events(last_iter);
  bool stalled = false;
  bool slow = false;
  for (const auto& ev : events) stalled |= ev.comm_time < 0;
  for (int iter = 0; iter <= last_iter && !slow; ++iter) {
    for (const auto& ev : store_.iteration_events(iter)) {
      slow |= ev.comm_time > cfg_.comm_slow_factor * expected_comm_;
      slow |= ev.compute_time > cfg_.compute_slow_factor * expected_compute_;
    }
  }
  if (!stalled && !slow) {
    // Healthy by the application timeline — but a lossy collector can
    // hide a stall by dropping exactly the records that showed it. Fault
    // residue surviving in the lower layers contradicts the verdict.
    bool cqe_residue = !store_.err_cqes().empty();
    const SyslogEvent* fatal_residue = nullptr;
    for (const auto& log : store_.syslog()) {
      if (log.severity == "fatal" && fatal_residue == nullptr) fatal_residue = &log;
    }
    if (!cqe_residue && fatal_residue == nullptr) return d;  // healthy
    d.anomaly_detected = true;
    d.evidence_gaps.push_back(
        "nccl: timeline reads healthy yet lower layers carry fault residue");
    d.evidence.push_back(
        "app: timeline healthy but transport/physical streams disagree");
    d.manifestation =
        cqe_residue ? Manifestation::FailStop : Manifestation::FailHang;
    if (cqe_residue) {
      branch_communication(last_iter, d);
    } else {
      d.locate_time += cfg_.step_cross_host + cfg_.step_physical;
      if (auto det = detection_from_syslog(*fatal_residue)) {
        d.root_cause = det->cause;
        d.root_cause_found = true;
        d.confidence = det->confidence;
        if (fatal_residue->host_rank >= 0) {
          d.culprit_hosts.push_back(fatal_residue->host_rank);
        }
        d.evidence.push_back("physical: fatal log '" + fatal_residue->message + "'");
      } else {
        d.needs_manual = true;
        d.confidence = 0.35;
      }
    }
    // The contradiction itself caps trust: half the story is missing.
    d.confidence = std::min(d.confidence, 0.85);
    if (!d.root_cause_found) d.needs_manual = true;
    return d;
  }

  d.anomaly_detected = true;
  d.manifestation = classify_manifestation(last_iter, d);

  // Branch choice: computation anomaly when a rank lags in compute or
  // never posted its work request (and transport shows no errors);
  // otherwise communication anomaly.
  bool compute_anomaly = false;
  std::vector<double> compute_times;
  for (const auto& ev : events) compute_times.push_back(ev.compute_time);
  auto z = core::zscores(compute_times);
  for (std::size_t i = 0; i < events.size(); ++i) {
    // Z-scores are scale-free, so require the outlier to also be
    // materially slower than the Seer forecast — a 1% jitter blip must
    // not hijack the branch decision.
    compute_anomaly |= z[i] > cfg_.compute_zscore &&
                       events[i].compute_time > 1.25 * expected_compute_;
    compute_anomaly |= events[i].wr_started == 0;
    compute_anomaly |= events[i].compute_time > cfg_.compute_slow_factor * expected_compute_;
  }
  // Fatal host logs pull toward Branch #1 even when comm also stalled
  // (the crash takes the collective down with it).
  bool fatal_host_log = false;
  for (const auto& log : store_.syslog()) {
    fatal_host_log |= log.severity == "fatal" && log.host_rank >= 0;
  }
  bool user_code_log = false;
  for (const auto& log : store_.syslog()) {
    user_code_log |= log.message.find("user forward") != std::string::npos;
  }

  if ((compute_anomaly || fatal_host_log || user_code_log) && store_.err_cqes().empty()) {
    // Fail-stop with a fatal log: the culprit is the crashed rank.
    if (fatal_host_log && d.culprit_hosts.empty()) {
      for (const auto& log : store_.syslog()) {
        if (log.severity == "fatal" && log.host_rank >= 0) {
          d.culprit_hosts.push_back(log.host_rank);
        }
      }
      d.locate_time += cfg_.step_cross_host + cfg_.step_physical;
      for (const auto& log : store_.host_syslog(d.culprit_hosts.front())) {
        if (auto det = detection_from_syslog(log)) {
          d.root_cause = det->cause;
          d.root_cause_found = true;
          d.confidence = det->confidence;
          d.evidence.push_back("physical: fatal log '" + log.message + "'");
          return d;
        }
      }
    }
    if (user_code_log) {
      d.locate_time += cfg_.step_cross_host;
      d.root_cause = RootCause::UserCode;
      d.root_cause_found = true;
      d.needs_manual = true;
      d.confidence = 0.95;
      d.evidence.push_back("cross-host: user-code exception on multiple ranks, alarm");
      return d;
    }
    branch_computation(last_iter, d);
    return d;
  }

  branch_communication(last_iter, d);
  return d;
}

}  // namespace astral::monitor
