// Simulated production training job over a fabric, generating the
// telemetry of all four monitoring layers while faults are injected.
// This is the substitution for 18 months of production incidents (see
// DESIGN.md): each root cause perturbs the run the way its real
// counterpart does — degraded optics slow a link, a switch bug
// blackholes silently, a broken PCIe lane turns the receiver into a PFC
// storm source, a bad driver hangs collectives — and the corresponding
// layer emits (or pointedly fails to emit) its diagnostic records.
//
// With recovery enabled (JobConfig::recovery) the runtime is a full job
// lifecycle engine: faults come as a FaultSchedule (concurrent and
// cascading, transient and permanent, optionally striking mid-transfer),
// the analyzer localizes each failure, and a mitigation state machine
// decides between retry-with-backoff, routing around the dead
// link/switch, or isolating the host and restarting from the last
// checkpoint. The outcome carries the availability ledger: per-fault
// MTTR, useful vs. wasted iteration time, downtime, and effective
// goodput. With recovery disabled the runtime reproduces the legacy
// stop-at-first-fault behaviour bit for bit.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "coll/comm_group.h"
#include "monitor/faults.h"
#include "monitor/store.h"
#include "net/fluid_sim.h"

namespace astral::obs {
class Tracer;
class Metrics;
}  // namespace astral::obs

namespace astral::monitor {

class TelemetryFaultModel;

/// How the job reacts to a localized failure (§3.3 -> operations).
struct RecoveryConfig {
  bool enabled = false;
  /// A checkpoint is durable every this many committed iterations;
  /// restarts replay from the last multiple.
  int checkpoint_interval = 2;
  int max_restarts = 4;  ///< IsolateRestart budget before giving up.
  int max_retries = 3;   ///< Retry budget per transient fault.
  /// Modeled time from failure to the monitoring system noticing.
  core::Seconds detect_time = 5.0;
  /// Scheduler + framework time to relaunch from a checkpoint.
  core::Seconds restart_time = 60.0;
  core::Seconds backoff_base = 2.0;  ///< First retry wait.
  double backoff_factor = 2.0;       ///< Exponential backoff multiplier.
};

struct JobConfig {
  int hosts = 16;         ///< Job hosts (taken from the fabric in order).
  int iterations = 10;
  core::Seconds compute_time = 0.05;  ///< Healthy per-iteration compute.
  core::Bytes comm_bytes = 32 * 1024 * 1024;  ///< Per ring QP per iteration.
  core::Seconds qp_sample_interval = core::msec(2.0);
  /// Communication exceeding this multiple of the expected time is a
  /// hang (the job's collective timeout).
  double hang_timeout_factor = 50.0;
  /// §5 PCIe incident: physical-layer PCIe monitoring was added only
  /// after the first occurrence; before that the root cause is invisible.
  bool pcie_monitoring = true;
  RecoveryConfig recovery;
  /// Ambient trace key identifying this job in a campaign-wide flight
  /// recording (see obs::TraceKeys); purely observational.
  std::int64_t job_id = 0;
};

enum class MitigationAction : std::uint8_t {
  None,            ///< No mitigation ran (recovery disabled).
  RetryBackoff,    ///< Transient fault: wait it out, retry the iteration.
  Reroute,         ///< Network fault: route around the dead link/switch.
  IsolateRestart,  ///< Host fault: cordon the host, restart from checkpoint.
  Abort,           ///< Budget exhausted; job gives up (legacy behaviour).
};

const char* to_string(MitigationAction a);

/// One mitigation attempt. MTTR decomposes per the paper's pipeline:
/// detect (monitoring latency) + locate (hierarchical analyzer) +
/// recover (backoff / failover / restart-from-checkpoint).
struct MitigationRecord {
  int fault_index = 0;   ///< Index into the injected schedule.
  int at_iteration = 0;  ///< Iteration the failure surfaced in.
  Manifestation observed = Manifestation::FailStop;
  MitigationAction action = MitigationAction::None;
  bool succeeded = false;
  core::Seconds detect_time = 0.0;
  core::Seconds locate_time = 0.0;
  core::Seconds recover_time = 0.0;
  core::Seconds mttr() const { return detect_time + locate_time + recover_time; }
};

struct RunOutcome {
  bool completed = false;
  int stopped_at_iteration = -1;  ///< Iteration of abort/hang; -1 if none.
  std::optional<Manifestation> observed;  ///< Empty for a healthy run.

  // ---- Recovery ledger (zeros when recovery is disabled).
  std::vector<MitigationRecord> mitigations;
  int restarts = 0;  ///< IsolateRestart mitigations taken.
  int retries = 0;   ///< RetryBackoff mitigations taken.
  int reroutes = 0;  ///< Flows moved by in-flight failover.
  int committed_iterations = 0;  ///< Iterations done and checkpoint-safe.
  core::Seconds useful_time = 0.0;  ///< Time in iterations that committed.
  core::Seconds wasted_time = 0.0;  ///< Failed attempts + replayed work.
  core::Seconds downtime = 0.0;     ///< Detect + locate + recover stalls.
  core::Seconds makespan = 0.0;     ///< Wall clock of the whole run.
  /// committed * healthy-iteration-time / makespan: the fraction of wall
  /// clock converted into training progress (1.0 = no faults, no noise).
  double goodput = 0.0;
};

class ClusterRuntime {
 public:
  ClusterRuntime(topo::Fabric& fabric, JobConfig cfg, std::uint64_t seed = 1);

  /// Schedules one fault; call before run(). May be called repeatedly —
  /// each call appends to the run's schedule. Throws std::invalid_argument
  /// when the spec fails validate_fault (out-of-range rank, network cause
  /// without a target link, ...).
  void inject(const FaultSpec& fault);

  /// Schedules a whole multi-fault scenario (validated spec by spec).
  void inject(const FaultSchedule& schedule);

  /// Picks a deterministic injection target for a fault of this cause
  /// (a host rank or a fabric link on a job path) and returns the spec.
  FaultSpec make_fault(RootCause cause, Manifestation m, int at_iteration);

  /// A ToR-death scenario striking `fraction` into `at_iteration`'s
  /// transfer: the whole switch over the job's rail-0 uplink goes down
  /// with flows in flight — the case dual-ToR failover exists for.
  FaultSpec make_mid_transfer_tor_death(int at_iteration, double fraction = 0.5);

  RunOutcome run();

  const TelemetryStore& telemetry() const { return store_; }
  const JobConfig& config() const { return cfg_; }
  const std::vector<topo::NodeId>& job_hosts() const { return hosts_; }
  net::FluidSim& sim() { return *sim_; }

  /// Expected healthy per-iteration times ("thresholds obtained by fast
  /// forecasts using the Seer", §3.3).
  core::Seconds expected_compute() const { return cfg_.compute_time; }
  core::Seconds expected_comm() const;

  /// Host config fingerprints for the offline config-verify tool; the
  /// HostEnvConfig fault plants an inconsistency.
  struct HostConfig {
    std::string nccl_version = "2.21.5";
    std::string driver_version = "535.161.08";
    bool pfc_enabled = true;
    int dcqcn_k = 55;
    bool operator==(const HostConfig&) const = default;
  };
  const std::vector<HostConfig>& host_configs() const { return host_configs_; }

  /// Attaches the flight recorder to the runtime and its FluidSim: the
  /// runtime stamps the ambient job key (JobConfig::job_id), emits
  /// Workload iteration spans, Collective-track ring-phase spans, and
  /// Fault-track injection/detection/location/mitigation events carrying
  /// the MTTR phase breakdown. nullptr detaches.
  void set_tracer(obs::Tracer* tracer);

  /// Attaches a metrics registry to the runtime and its FluidSim:
  /// mitigation counters and the "runtime.mttr_s" histogram, on top of
  /// the sim's solver metrics. nullptr detaches.
  void set_metrics(obs::Metrics* metrics);

  /// Interposes a lossy-collector fault model between the in-simulator
  /// collectors and the TelemetryStore (see monitor/degrade.h): every
  /// telemetry record is routed through it, and run() flushes held-back
  /// records at the end. A clean profile is bit-identical to no model.
  /// nullptr detaches. The model must outlive the runtime's run() calls.
  void set_telemetry_faults(TelemetryFaultModel* model) { degrade_ = model; }

 private:
  /// Runtime state of one scheduled fault.
  struct FaultRt {
    FaultSpec spec;
    bool applied = false;  ///< Syslog emitted / network effect active.
    bool healed = false;   ///< Self-repaired or healed by a mitigation.
    bool mitigated = false;  ///< A mitigation has dealt with it.
    int active_iters = 0;  ///< Iteration attempts survived while active.
    int retries = 0;       ///< RetryBackoff attempts spent on it.
    bool resolved() const { return healed || mitigated; }
  };

  RunOutcome run_job();
  void emit_injection_syslog(const FaultSpec& f, core::Seconds t);
  void apply_network_fault(const FaultSpec& f);
  /// Takes a link (or, with switch_scope, its whole fabric-side switch)
  /// down in both routing and the solver, remembering it for restore.
  void fail_links(const FaultSpec& f);
  void heal_fault(FaultRt& fr);
  topo::LinkId pick_job_path_link(int hops_from_src) const;
  /// Runs the hierarchical analyzer on the telemetry recorded so far and
  /// returns its modeled localization latency.
  core::Seconds analyzer_locate_time() const;
  /// Routes one telemetry record through the degradation model when one
  /// is attached, else straight into the store.
  template <typename T>
  void ingest(T rec);

  topo::Fabric& fabric_;
  JobConfig cfg_;
  core::Rng rng_;
  std::unique_ptr<net::FluidSim> sim_;
  TelemetryStore store_;
  std::vector<topo::NodeId> hosts_;
  std::vector<HostConfig> host_configs_;
  std::vector<FaultRt> faults_;
  std::vector<double> host_slow_;  ///< Compute slow-down factor per host.
  std::vector<topo::LinkId> downed_links_;  ///< Fabric state to restore.
  obs::Tracer* tracer_ = nullptr;
  obs::Metrics* metrics_ = nullptr;
  TelemetryFaultModel* degrade_ = nullptr;
};

}  // namespace astral::monitor
