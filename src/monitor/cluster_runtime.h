// Simulated production training job over a fabric, generating the
// telemetry of all four monitoring layers while faults are injected.
// This is the substitution for 18 months of production incidents (see
// DESIGN.md): each root cause perturbs the run the way its real
// counterpart does — degraded optics slow a link, a switch bug
// blackholes silently, a broken PCIe lane turns the receiver into a PFC
// storm source, a bad driver hangs collectives — and the corresponding
// layer emits (or pointedly fails to emit) its diagnostic records.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "coll/comm_group.h"
#include "monitor/faults.h"
#include "monitor/store.h"
#include "net/fluid_sim.h"

namespace astral::monitor {

struct JobConfig {
  int hosts = 16;         ///< Job hosts (taken from the fabric in order).
  int iterations = 10;
  core::Seconds compute_time = 0.05;  ///< Healthy per-iteration compute.
  core::Bytes comm_bytes = 32 * 1024 * 1024;  ///< Per ring QP per iteration.
  core::Seconds qp_sample_interval = core::msec(2.0);
  /// Communication exceeding this multiple of the expected time is a
  /// hang (the job's collective timeout).
  double hang_timeout_factor = 50.0;
  /// §5 PCIe incident: physical-layer PCIe monitoring was added only
  /// after the first occurrence; before that the root cause is invisible.
  bool pcie_monitoring = true;
};

struct RunOutcome {
  bool completed = false;
  int stopped_at_iteration = -1;  ///< Iteration of abort/hang; -1 if none.
  std::optional<Manifestation> observed;  ///< Empty for a healthy run.
};

class ClusterRuntime {
 public:
  ClusterRuntime(topo::Fabric& fabric, JobConfig cfg, std::uint64_t seed = 1);

  /// Schedules a fault; call before run(). At most one fault per run.
  void inject(const FaultSpec& fault);

  /// Picks a deterministic injection target for a fault of this cause
  /// (a host rank or a fabric link on a job path) and returns the spec.
  FaultSpec make_fault(RootCause cause, Manifestation m, int at_iteration);

  RunOutcome run();

  const TelemetryStore& telemetry() const { return store_; }
  const JobConfig& config() const { return cfg_; }
  const std::vector<topo::NodeId>& job_hosts() const { return hosts_; }
  net::FluidSim& sim() { return *sim_; }

  /// Expected healthy per-iteration times ("thresholds obtained by fast
  /// forecasts using the Seer", §3.3).
  core::Seconds expected_compute() const { return cfg_.compute_time; }
  core::Seconds expected_comm() const;

  /// Host config fingerprints for the offline config-verify tool; the
  /// HostEnvConfig fault plants an inconsistency.
  struct HostConfig {
    std::string nccl_version = "2.21.5";
    std::string driver_version = "535.161.08";
    bool pfc_enabled = true;
    int dcqcn_k = 55;
    bool operator==(const HostConfig&) const = default;
  };
  const std::vector<HostConfig>& host_configs() const { return host_configs_; }

 private:
  void emit_injection_syslog(core::Seconds t);
  void apply_network_fault();
  topo::LinkId pick_job_path_link(int hops_from_src) const;

  topo::Fabric& fabric_;
  JobConfig cfg_;
  core::Rng rng_;
  std::unique_ptr<net::FluidSim> sim_;
  TelemetryStore store_;
  std::vector<topo::NodeId> hosts_;
  std::vector<HostConfig> host_configs_;
  std::optional<FaultSpec> fault_;
  std::vector<double> host_slow_;  ///< Compute slow-down factor per host.
};

}  // namespace astral::monitor
