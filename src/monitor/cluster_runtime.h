// Simulated production training job over a fabric, generating the
// telemetry of all four monitoring layers while faults are injected.
// This is the substitution for 18 months of production incidents (see
// DESIGN.md): each root cause perturbs the run the way its real
// counterpart does — degraded optics slow a link, a switch bug
// blackholes silently, a broken PCIe lane turns the receiver into a PFC
// storm source, a bad driver hangs collectives — and the corresponding
// layer emits (or pointedly fails to emit) its diagnostic records.
//
// With recovery enabled (JobConfig::recovery) the runtime is a full job
// lifecycle engine: faults come as a FaultSchedule (concurrent and
// cascading, transient and permanent, optionally striking mid-transfer),
// the analyzer localizes each failure, and a mitigation state machine
// decides between retry-with-backoff, routing around the dead
// link/switch, or isolating the host and restarting from the last
// checkpoint. The outcome carries the availability ledger: per-fault
// MTTR, useful vs. wasted iteration time, downtime, and effective
// goodput. With recovery disabled the runtime reproduces the legacy
// stop-at-first-fault behaviour bit for bit.
//
// The lifecycle logic itself lives in monitor::JobEngine (the resumable
// coroutine form the fleet scheduler multiplexes); ClusterRuntime is the
// single-job shell over it: it owns the FluidSim, acquires hosts through
// the placement-policy seam (JobConfig::placement; InOrder reproduces
// the legacy first-n acquisition), and drives the engine to completion.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "coll/comm_group.h"
#include "monitor/faults.h"
#include "monitor/job_engine.h"
#include "monitor/store.h"
#include "net/fluid_sim.h"

namespace astral::obs {
class Tracer;
class Metrics;
}  // namespace astral::obs

namespace astral::monitor {

class TelemetryFaultModel;
class StreamAnalyzer;

class ClusterRuntime {
 public:
  /// Acquires cfg.hosts fabric hosts through the placement policy
  /// (cfg.placement; the default InOrder takes the first n in fabric
  /// order, the legacy behaviour). Throws std::invalid_argument when
  /// the job does not fit the fabric or cfg.recovery is enabled and
  /// invalid (see validate_recovery).
  ClusterRuntime(topo::Fabric& fabric, JobConfig cfg, std::uint64_t seed = 1);

  /// Schedules one fault; call before run(). May be called repeatedly —
  /// each call appends to the run's schedule. Throws std::invalid_argument
  /// when the spec fails validate_fault (out-of-range rank, network cause
  /// without a target link, ...).
  void inject(const FaultSpec& fault) { engine_->inject(fault); }

  /// Schedules a whole multi-fault scenario (validated spec by spec).
  void inject(const FaultSchedule& schedule) { engine_->inject(schedule); }

  /// Picks a deterministic injection target for a fault of this cause
  /// (a host rank or a fabric link on a job path) and returns the spec.
  FaultSpec make_fault(RootCause cause, Manifestation m, int at_iteration) {
    return engine_->make_fault(cause, m, at_iteration);
  }

  /// A ToR-death scenario striking `fraction` into `at_iteration`'s
  /// transfer: the whole switch over the job's rail-0 uplink goes down
  /// with flows in flight — the case dual-ToR failover exists for.
  FaultSpec make_mid_transfer_tor_death(int at_iteration, double fraction = 0.5) {
    return engine_->make_mid_transfer_tor_death(at_iteration, fraction);
  }

  /// A seeded gray fault on the job's path: flapping link, partial
  /// capacity degrade, or slow-NIC straggler (see GrayKind). Distinct
  /// `hops_from_src` values target distinct path links, keeping a
  /// multi-gray schedule clear of the overlap validator.
  FaultSpec make_gray_fault(GrayKind kind, int at_iteration,
                            int hops_from_src = 2) {
    return engine_->make_gray_fault(kind, at_iteration, hops_from_src);
  }

  RunOutcome run();

  /// Simulation time a scheduled fault activated (by schedule index;
  /// -1 until it strikes). Gray-campaign lead-time accounting compares
  /// this against the stream analyzer's first precursor alarm.
  core::Seconds fault_applied_time(int index) const {
    return engine_->fault_applied_time(index);
  }

  const TelemetryStore& telemetry() const { return engine_->store(); }
  const JobConfig& config() const { return engine_->config(); }
  const std::vector<topo::NodeId>& job_hosts() const { return engine_->hosts(); }
  net::FluidSim& sim() { return *sim_; }

  /// Expected healthy per-iteration times ("thresholds obtained by fast
  /// forecasts using the Seer", §3.3).
  core::Seconds expected_compute() const { return engine_->expected_compute(); }
  core::Seconds expected_comm() const { return engine_->expected_comm(); }

  /// Host config fingerprints for the offline config-verify tool; the
  /// HostEnvConfig fault plants an inconsistency. (The definition moved
  /// to job_engine.h; the alias keeps ClusterRuntime::HostConfig working.)
  using HostConfig = monitor::HostConfig;
  const std::vector<HostConfig>& host_configs() const {
    return engine_->host_configs();
  }

  /// Attaches the flight recorder to the runtime and its FluidSim: the
  /// runtime stamps the ambient job key (JobConfig::job_id), emits
  /// Workload iteration spans, Collective-track ring-phase spans, and
  /// Fault-track injection/detection/location/mitigation events carrying
  /// the MTTR phase breakdown. nullptr detaches.
  void set_tracer(obs::Tracer* tracer);

  /// Attaches a metrics registry to the runtime and its FluidSim:
  /// mitigation counters and the "runtime.mttr_s" histogram, on top of
  /// the sim's solver metrics. nullptr detaches.
  void set_metrics(obs::Metrics* metrics);

  /// Interposes a lossy-collector fault model between the in-simulator
  /// collectors and the TelemetryStore (see monitor/degrade.h): every
  /// telemetry record is routed through it, and run() flushes held-back
  /// records at the end. A clean profile is bit-identical to no model.
  /// nullptr detaches. The model must outlive the runtime's run() calls.
  void set_telemetry_faults(TelemetryFaultModel* model) {
    engine_->set_telemetry_faults(model);
  }

  /// Subscribes the always-on streaming diagnosis service at the job's
  /// telemetry store: every record the store accepts (post-degrade)
  /// streams into its rollups and online triggers as it is ingested,
  /// and completed mitigations feed its MTTR histograms. nullptr
  /// detaches (finalizing the job's online diagnosis). The analyzer
  /// must outlive the runtime or be detached first.
  void set_stream_analyzer(StreamAnalyzer* stream);

 private:
  topo::Fabric& fabric_;
  std::unique_ptr<net::FluidSim> sim_;
  std::unique_ptr<JobEngine> engine_;
};

}  // namespace astral::monitor
