#include "monitor/mttlf.h"

#include <algorithm>
#include <cmath>

namespace astral::monitor {

std::map<RootCause, int> CampaignResult::cause_counts() const {
  std::map<RootCause, int> out;
  for (const auto& e : entries) ++out[e.injected_cause];
  return out;
}

std::map<Manifestation, int> CampaignResult::manifestation_counts() const {
  std::map<Manifestation, int> out;
  for (const auto& e : entries) ++out[e.observed];
  return out;
}

core::Seconds CampaignResult::mttlf_with_system(Manifestation m) const {
  double sum = 0.0;
  int n = 0;
  for (const auto& e : entries) {
    if (e.observed == m) {
      sum += e.analyzer_time;
      ++n;
    }
  }
  return n > 0 ? sum / n : 0.0;
}

core::Seconds CampaignResult::mttlf_manual(Manifestation m) const {
  double sum = 0.0;
  int n = 0;
  for (const auto& e : entries) {
    if (e.observed == m) {
      sum += e.manual_time;
      ++n;
    }
  }
  return n > 0 ? sum / n : 0.0;
}

double CampaignResult::accuracy() const {
  if (entries.empty()) return 0.0;
  int ok = 0;
  for (const auto& e : entries) ok += e.cause_correct ? 1 : 0;
  return static_cast<double>(ok) / static_cast<double>(entries.size());
}

core::Seconds manual_locate_time(RootCause cause, Manifestation m, int hosts,
                                 core::Rng& rng) {
  // Base effort per manifestation. Fail-stop leaves error logs (grep +
  // correlate by hand: ~1h). Fail-hang leaves nothing: batch replace-and-
  // reboot binary search, ~1h per round over log2-ish rounds (the 26-hour
  // §5 hunt at 8K GPUs). Fail-slow needs repeated profiling runs.
  double base = 0.0;
  switch (m) {
    case Manifestation::FailStop: base = 3300.0; break;
    // No logs to grep: replace-and-reboot rounds of ~1h over a binary
    // search of the fleet (the paper's 26-hour hunt at 8K GPUs).
    case Manifestation::FailHang:
      base = 14400.0 + 3600.0 * std::log2(std::max(2, hosts));
      break;
    // Repeated profiling runs to catch a transient slowdown.
    case Manifestation::FailSlow: base = 3600.0; break;
    case Manifestation::FailOnStart: base = 1800.0; break;
  }
  // Network-side causes take longer by hand: host tools don't see them.
  if (!is_host_side(cause)) base *= 1.3;
  return base * (0.85 + 0.3 * rng.uniform());
}

double AvailabilityResult::completion_rate() const {
  if (entries.empty()) return 0.0;
  int done = 0;
  for (const auto& e : entries) done += e.outcome.completed ? 1 : 0;
  return static_cast<double>(done) / static_cast<double>(entries.size());
}

double AvailabilityResult::mean_goodput() const {
  double sum = 0.0;
  int n = 0;
  for (const auto& e : entries) {
    if (e.outcome.completed) {
      sum += e.outcome.goodput;
      ++n;
    }
  }
  return n > 0 ? sum / n : 0.0;
}

core::Seconds AvailabilityResult::mean_mttr() const {
  double sum = 0.0;
  int n = 0;
  for (const auto& e : entries) {
    if (!e.outcome.mitigations.empty()) {
      sum += e.mttr;
      ++n;
    }
  }
  return n > 0 ? sum / n : 0.0;
}

core::Seconds AvailabilityResult::mean_mttlf() const {
  double sum = 0.0;
  int n = 0;
  for (const auto& e : entries) {
    if (!e.outcome.mitigations.empty()) {
      sum += e.mttlf;
      ++n;
    }
  }
  return n > 0 ? sum / n : 0.0;
}

core::Seconds AvailabilityResult::mean_downtime() const {
  double sum = 0.0;
  for (const auto& e : entries) sum += e.outcome.downtime;
  return entries.empty() ? 0.0 : sum / static_cast<double>(entries.size());
}

int AvailabilityResult::total_reroutes() const {
  int n = 0;
  for (const auto& e : entries) n += e.outcome.reroutes;
  return n;
}

int AvailabilityResult::total_restarts() const {
  int n = 0;
  for (const auto& e : entries) n += e.outcome.restarts;
  return n;
}

int AvailabilityResult::total_retries() const {
  int n = 0;
  for (const auto& e : entries) n += e.outcome.retries;
  return n;
}

AvailabilityResult run_availability_campaign(const AvailabilityConfig& cfg) {
  AvailabilityResult result;
  topo::Fabric fabric(cfg.fabric);
  core::Rng rng(cfg.seed);

  for (int i = 0; i < cfg.runs; ++i) {
    ClusterRuntime runtime(fabric, cfg.job,
                           cfg.seed + static_cast<std::uint64_t>(i));
    FaultSchedule schedule;
    int last_iter = 0;
    for (int k = 0; k + 1 < cfg.faults_per_run; ++k) {
      RootCause cause = sample_root_cause(rng);
      Manifestation m = sample_manifestation(cause, rng);
      int at_iter = m == Manifestation::FailOnStart
                        ? 0
                        : 1 + static_cast<int>(rng.uniform_int(2));
      last_iter = std::max(last_iter, at_iter);
      schedule.add(runtime.make_fault(cause, m, at_iter));
    }
    // The closing act of every run: a whole ToR dies mid-transfer, which
    // only dual-homing plus in-flight failover survives.
    int tor_iter = std::min(cfg.job.iterations - 1,
                            last_iter + 2 + static_cast<int>(rng.uniform_int(2)));
    schedule.add(
        runtime.make_mid_transfer_tor_death(tor_iter, cfg.mid_transfer_fraction));

    runtime.inject(schedule);
    AvailabilityEntry entry;
    entry.outcome = runtime.run();
    entry.faults_injected = static_cast<int>(schedule.size());
    if (!entry.outcome.mitigations.empty()) {
      double mttr = 0.0, locate = 0.0;
      for (const auto& m : entry.outcome.mitigations) {
        mttr += m.mttr();
        locate += m.locate_time;
      }
      entry.mttr = mttr / static_cast<double>(entry.outcome.mitigations.size());
      entry.mttlf = locate / static_cast<double>(entry.outcome.mitigations.size());
    }
    result.entries.push_back(entry);
  }
  return result;
}

CampaignResult run_campaign(const CampaignConfig& cfg) {
  CampaignResult result;
  topo::Fabric fabric(cfg.fabric);
  core::Rng rng(cfg.seed);

  for (int i = 0; i < cfg.faults; ++i) {
    RootCause cause = sample_root_cause(rng);
    Manifestation m = sample_manifestation(cause, rng);
    int at_iter = m == Manifestation::FailOnStart
                      ? 0
                      : 1 + static_cast<int>(rng.uniform_int(
                                static_cast<std::uint64_t>(cfg.job.iterations - 2)));

    ClusterRuntime runtime(fabric, cfg.job, cfg.seed + static_cast<std::uint64_t>(i));
    FaultSpec fault = runtime.make_fault(cause, m, at_iter);
    runtime.inject(fault);
    auto outcome = runtime.run();

    HierarchicalAnalyzer analyzer(runtime.telemetry(), fabric.topo(),
                                  runtime.expected_compute(), runtime.expected_comm());
    Diagnosis d = analyzer.diagnose();

    CampaignEntry entry;
    entry.injected_cause = cause;
    entry.injected_manifestation = m;
    entry.observed = outcome.observed.value_or(m);
    entry.detected = d.anomaly_detected;
    entry.cause_correct = d.root_cause_found && d.root_cause == cause;
    entry.needs_manual = d.needs_manual;
    entry.manual_time = manual_locate_time(cause, entry.observed, cfg.job.hosts, rng);
    // When automation dead-ends, a human picks up with the analyzer's
    // evidence in hand — faster than from scratch, but not minutes.
    entry.analyzer_time = d.locate_time;
    if (!d.root_cause_found) entry.analyzer_time += entry.manual_time * 0.3;
    result.entries.push_back(entry);
  }
  return result;
}

}  // namespace astral::monitor
