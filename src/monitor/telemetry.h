// Telemetry record types of the full-stack monitoring system (§3.2,
// Fig. 8), one family per layer, plus the cross-layer keys (job -> hosts
// & comm groups -> QP -> 5-tuple -> path -> hops) that make hierarchical
// correlation possible.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/units.h"
#include "net/hash.h"
#include "topo/types.h"

namespace astral::monitor {

using QpId = std::uint64_t;

enum class Layer : std::uint8_t { Application, Transport, Network, Physical };
const char* to_string(Layer layer);

// ---- Application layer: training-progress monitoring.

/// One host's view of one iteration (the NCCL timeline of Fig. 9a).
struct NcclTimelineEvent {
  core::Seconds t = 0.0;  ///< Iteration start.
  int host_rank = 0;      ///< Rank within the job's host list.
  int iteration = 0;
  core::Seconds compute_time = 0.0;
  core::Seconds comm_time = 0.0;  ///< < 0: communication never finished.
  int wr_started = 0;   ///< Work requests issued this iteration.
  int wr_finished = 0;  ///< Work requests completed; lag => hang.
};

// ---- Transport layer: millisecond-level flow monitoring.

struct QpRateSample {
  core::Seconds t = 0.0;
  QpId qp = 0;
  double rate_bps = 0.0;
};

/// Completion-queue error event (errCQE), carrying the QP of the failed
/// transmission.
struct ErrCqeEvent {
  core::Seconds t = 0.0;
  QpId qp = 0;
  int host_rank = 0;
  std::string error;  ///< e.g. "transport retry counter exceeded".
};

// ---- Network layer: end-to-end path telemetry.

/// sFlow-reconstructed path of a flow (sampled packet mirrors).
struct SflowPathRecord {
  core::Seconds t = 0.0;  ///< Reconstruction time at the collector.
  QpId qp = 0;
  net::FiveTuple tuple;
  std::vector<topo::LinkId> path;
};

/// INT-armed ping result: per-hop forwarding latency along a path.
struct IntProbeResult {
  core::Seconds t = 0.0;
  std::vector<topo::LinkId> path;
  std::vector<core::Seconds> hop_latency;  ///< Same length as path.
};

// ---- Physical layer: per-node internal state.

struct LinkCounterSample {
  core::Seconds t = 0.0;
  topo::LinkId link = topo::kInvalidLink;
  std::uint64_t ecn_marks = 0;
  std::uint64_t pfc_pauses = 0;
  std::uint64_t mod_drops = 0;  ///< Mirror-on-Drop packet-loss bytes.
  double utilization = 0.0;
  /// SNMP counter convention: when true, ecn_marks/pfc_pauses are
  /// since-boot switch totals and the store derives deltas itself (with
  /// wrap/reset resynchronization); when false (the in-simulator
  /// collectors) they are already per-collection-interval deltas.
  bool cumulative = false;
};

struct SyslogEvent {
  core::Seconds t = 0.0;
  topo::NodeId node = topo::kInvalidNode;
  int host_rank = -1;  ///< Set when the node is a job host.
  std::string severity;  ///< "fatal" / "error" / "warn".
  std::string message;
};

// ---- Cross-layer keys.

/// QP metadata maintained at job setup: the link from application-layer
/// communication groups down to transport 5-tuples (§3.2).
struct QpMeta {
  QpId qp = 0;
  int src_host_rank = 0;
  int dst_host_rank = 0;
  topo::NodeId src_host = topo::kInvalidNode;
  topo::NodeId dst_host = topo::kInvalidNode;
  net::FiveTuple tuple;
};

}  // namespace astral::monitor
